// Package needle is a from-scratch Go reproduction of "Needle: Leveraging
// Program Analysis to Analyze and Extract Accelerators from Whole Programs"
// (HPCA 2017).
//
// The implementation lives under internal/: a compiler IR and interpreter
// substrate (ir, interp, analysis), Ball-Larus path profiling (ballarus,
// profile), offload-region formation including the paper's Braids (region),
// software frames with speculation support (frame, spec), hardware models
// (ooo, mem, cgra, energy, hls), the whole-system simulator (sim), 29
// benchmark kernels (workloads), and the pipeline plus experiment harness
// (core, tables). See README.md and DESIGN.md.
package needle
