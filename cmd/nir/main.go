// Command nir is the IR tool: it parses, verifies, prints, profiles, and
// runs .nir files (the textual IR format of internal/ir).
//
// Usage:
//
//	nir verify file.nir
//	nir print file.nir
//	nir run file.nir [-f func] [-mem words] [args...]
//	nir paths file.nir [-f func] [-mem words] [args...]
//	nir stats file.nir [-f func]
//	nir vet file.nir [-f func] [-mem words] [-json]
//
// Arguments are int64 literals, or float literals prefixed with "f:"
// (e.g. f:3.5). The run exit prints the return value; paths additionally
// prints the Ball-Larus path profile of the executed function.
//
// vet runs the static-analysis diagnostic suite (SCCP, reachability,
// value ranges, memory dependence) without executing the program and
// exits non-zero when any error-severity diagnostic is present; its
// -json output matches `needle -vet -json` for the same program.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"needle/internal/analysis"
	"needle/internal/ballarus"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/pm"
	"needle/internal/profile"
	"needle/internal/program"
	"needle/internal/region"
	"needle/internal/vet"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, file := os.Args[1], os.Args[2]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	funcName := fs.String("f", "", "function to run (default: first)")
	memWords := fs.Int("mem", 4096, "memory size in words")
	jsonOut := fs.Bool("json", false, "emit the vet report as JSON (vet only)")
	if err := fs.Parse(os.Args[3:]); err != nil {
		fatal("%v", err)
	}

	// The same loader the needle CLI and the needled service use; the zero
	// Limits is unlimited (local files are trusted input).
	src, err := os.ReadFile(file)
	if err != nil {
		fatal("%v", err)
	}
	m, err := program.ParseModule(string(src), program.Limits{})
	if err != nil {
		fatal("%v", err)
	}

	switch cmd {
	case "stats":
		f := pick(m, *funcName)
		am := pm.NewManager()
		st := region.Characterize(am, f)
		dag, derr := ballarus.Build(am, f)
		fmt.Printf("%s: %d blocks, %d instructions, %d branches, %d back edges\n",
			f.Name, len(f.Blocks), f.NumInstrs(), st.Branches, st.BackwardBranches)
		fmt.Printf("predication bits for full if-conversion: %d\n", st.PredicationBits)
		fmt.Printf("avg mem ops control-dependent per branch: %.1f\n", st.AvgBranchMem)
		fmt.Printf("avg loads feeding a branch condition:     %.1f\n", st.AvgMemBranch)
		if derr != nil {
			fmt.Printf("Ball-Larus: not profilable (%v)\n", derr)
		} else {
			fmt.Printf("Ball-Larus: %d static acyclic paths\n", dag.NumPaths())
		}
		_ = memWords
	case "vet":
		// Route through the same Program materialization the needle CLI and
		// the needled service use so all three frontends produce identical
		// reports for identical input.
		p, err := program.FromModule(m, program.LoadOptions{Entry: *funcName, MemWords: *memWords})
		if err != nil {
			fatal("%v", err)
		}
		rep := vet.Check(nil, p)
		if *jsonOut {
			out, err := vet.MarshalReport(rep)
			if err != nil {
				fatal("%v", err)
			}
			fmt.Println(string(out))
		} else {
			fmt.Print(rep.Text())
		}
		if rep.HasErrors() {
			os.Exit(1)
		}
	case "verify":
		for _, f := range m.Funcs {
			if err := analysis.VerifySSA(f); err != nil {
				fatal("%v", err)
			}
		}
		fmt.Printf("%s: %d function(s) OK\n", file, len(m.Funcs))
	case "print":
		fmt.Print(ir.PrintModule(m))
	case "run", "paths":
		f := pick(m, *funcName)
		args := parseArgs(fs.Args(), f)
		mem := make([]uint64, *memWords)
		if cmd == "run" {
			res, err := interp.Run(f, args, mem, nil, 0)
			if err != nil {
				fatal("%v", err)
			}
			printResult(f, res)
			return
		}
		fp, err := profile.CollectFunction(nil, f, args, mem, false, 0)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("%s: %d executed paths, %d dynamic instructions\n",
			f.Name, fp.NumExecutedPaths(), fp.TotalWeight)
		for i, p := range fp.TopK(10) {
			var names []string
			for _, b := range p.Blocks {
				names = append(names, b.Name)
			}
			fmt.Printf("  #%d id=%d freq=%d ops=%d cov=%.1f%%  %s\n",
				i+1, p.ID, p.Freq, p.Ops, p.Coverage(fp)*100, strings.Join(names, ">"))
		}
	default:
		usage()
	}
}

func pick(m *ir.Module, name string) *ir.Function {
	if name == "" {
		if len(m.Funcs) == 0 {
			fatal("module has no functions")
		}
		return m.Funcs[0]
	}
	f := m.Func(name)
	if f == nil {
		fatal("no function %q", name)
	}
	return f
}

func parseArgs(raw []string, f *ir.Function) []uint64 {
	// The interactive tool keeps its historical strictness: every parameter
	// must be supplied (program.ArgValues zero-fills missing ones).
	if len(raw) != f.NumParams() {
		fatal("%s wants %d arguments, got %d", f.Name, f.NumParams(), len(raw))
	}
	out, err := program.ArgValues(f, raw)
	if err != nil {
		fatal("%v", err)
	}
	return out
}

func printResult(f *ir.Function, res interp.Result) {
	// Infer the printed form from the returning block's type where possible.
	asFloat := false
	for _, b := range f.Blocks {
		if t := b.Term(); t != nil && t.Op == ir.OpRet && len(t.Args) == 1 {
			asFloat = t.Type == ir.F64
		}
	}
	if asFloat {
		fmt.Printf("ret = %g (%d instructions)\n", interp.F(res.Ret), res.Steps)
	} else {
		fmt.Printf("ret = %d (%d instructions)\n", interp.I(res.Ret), res.Steps)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nir {verify|print|run|paths|stats|vet} file.nir [-f func] [-mem words] [-json] [args...]")
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nir: "+format+"\n", args...)
	os.Exit(1)
}
