// Command needle runs the Needle pipeline: it profiles the benchmark
// workloads, extracts and ranks Ball-Larus paths and braids, builds
// software frames, and regenerates the paper's tables and figures.
//
// Usage:
//
//	needle -list                      list workloads
//	needle -table II [-n 8000]        regenerate a table (I, II, III, IV, V, HLS)
//	needle -figure 9 [-n 8000]        regenerate a figure (2, 3, 4, 5, 6, 9, 10)
//	needle -all                       regenerate everything
//	needle -workload 470.lbm          detailed single-workload report
//	needle -nir prog.nir              analyze a user .nir program from disk
//	  [-entry f] [-mem 8192] [-args 5,f:2.5]   entry point, memory, arguments
//	needle -vet -nir prog.nir         static-analysis diagnostics only [-json]
//	needle -O -nir prog.nir           optimize (SCCP fold + DCE) before profiling
//	needle -trace out.json            full sweep + Chrome trace timeline
//	needle -all -metrics              any mode + counter dump on stderr
//	needle -all -cache-dir ~/.needle  persist stage artifacts; warm-starts reruns
//
// -nir analyzes an arbitrary program through the exact pipeline the
// built-in workloads use; combine with -json, -dot, or the default report.
// `needle -nir file -json` is byte-identical to POSTing the same source to
// a needled daemon's /v1/analyze.
//
// -vet runs the static-analysis suite (SCCP, reachability, value ranges,
// memory dependence) over a -nir program or a -workload kernel without
// executing it, prints the diagnostics (-json for the machine-readable
// report, byte-identical to /v1/vet), and exits non-zero when any
// error-severity diagnostic is present.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"needle/internal/core"
	"needle/internal/ir"
	"needle/internal/obs"
	"needle/internal/pipeline"
	"needle/internal/program"
	"needle/internal/tables"
	"needle/internal/vet"
	"needle/internal/workloads"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available workloads")
		table      = flag.String("table", "", "regenerate a table: I, II, III, IV, V, HLS")
		figure     = flag.String("figure", "", "regenerate a figure: 2, 3, 4, 5, 6, 9, 10")
		all        = flag.Bool("all", false, "regenerate every table and figure")
		workload   = flag.String("workload", "", "detailed report for one workload")
		nirFile    = flag.String("nir", "", "analyze a user program: path to a .nir file")
		entry      = flag.String("entry", "", "entry function of the -nir program (default: first)")
		memWords   = flag.Int("mem", 0, "memory words for the -nir program (0 = 4096)")
		argList    = flag.String("args", "", "comma-separated -nir entry arguments: int64, or f:-prefixed float64")
		n          = flag.Int("n", 0, "problem size override (0 = workload default)")
		vetMode    = flag.Bool("vet", false, "run static-analysis diagnostics instead of analyzing (with -nir/-workload)")
		optMode    = flag.Bool("O", false, "run the SCCP fold + DCE optimization stage before profiling")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON (with -workload/-nir or alone for all)")
		dotOut     = flag.Bool("dot", false, "emit the hot braid frame's dataflow graph as Graphviz DOT (with -workload/-nir)")
		emitNIR    = flag.Bool("emit-nir", false, "emit the workload's kernel as textual .nir (with -workload)")
		jobs       = flag.Int("j", 0, "parallel analysis workers (0 = GOMAXPROCS, 1 = serial)")
		benchOut   = flag.Bool("bench-json", false, "run the full suite and emit wall-clock timings as JSON")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON timeline of the run to this file (alone: runs the full sweep)")
		metricsOut = flag.Bool("metrics", false, "dump pipeline counters and span aggregates to stderr after the run")
		cacheDir   = flag.String("cache-dir", "", "persist stage artifacts to this directory; later runs warm-start from it")
		cacheMaxMB = flag.Int("cache-max-mb", 0, "evict least-recently-used artifacts when -cache-dir exceeds this size (0 = unbounded)")
	)
	flag.Parse()

	// Observability is recorded only when an exporter will consume it; the
	// instrumentation is a no-op otherwise.
	observing := *traceOut != "" || *metricsOut
	if observing {
		obs.Enable()
	}
	// Sweeps honor interruption: ^C or SIGTERM cancels the context and the
	// sweep stops between workloads instead of running all 29 to the end.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var store pipeline.Store
	if *cacheDir != "" {
		ds, err := pipeline.NewDiskStore(*cacheDir, *cacheMaxMB)
		if err != nil {
			fatal("cache: %v", err)
		}
		store = ds
	}
	dispatch(ctx, options{
		list: *list, table: *table, figure: *figure, all: *all,
		workload: *workload, nirFile: *nirFile, entry: *entry,
		memWords: *memWords, argList: *argList, n: *n,
		vet: *vetMode, opt: *optMode,
		jsonOut: *jsonOut, dotOut: *dotOut, emitNIR: *emitNIR,
		jobs: *jobs, benchOut: *benchOut, observing: observing,
	}, store)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal("trace: %v", err)
		}
		if err := obs.WriteChromeTrace(f); err != nil {
			fatal("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "needle: wrote %s (open at https://ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
	if *metricsOut {
		if err := obs.WriteMetrics(os.Stderr); err != nil {
			fatal("metrics: %v", err)
		}
		if store != nil {
			writeCacheStats(os.Stderr, store)
		}
	}
}

// writeCacheStats prints the store's per-stage cache behaviour, stage
// order matching the pipeline.
func writeCacheStats(w *os.File, store pipeline.Store) {
	stats := store.Stats()
	fmt.Fprintln(w, "cache stats (per stage):")
	for _, name := range pipeline.StageNames() {
		cs, ok := stats[name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-8s hits=%d misses=%d disk_hits=%d evictions=%d\n",
			name, cs.Hits, cs.Misses, cs.DiskHits, cs.Evictions)
	}
}

// options carries the parsed command line into dispatch.
type options struct {
	list                    bool
	table, figure           string
	all                     bool
	workload                string
	nirFile, entry, argList string
	memWords, n             int
	vet, opt                bool
	jsonOut, dotOut         bool
	emitNIR                 bool
	jobs                    int
	benchOut, observing     bool
}

// splitArgs parses the -args flag: a comma-separated list of argument
// literals (whitespace around entries is ignored; empty means no args).
func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// dispatch runs the selected mode to completion; the observability
// exporters run after it returns.
func dispatch(ctx context.Context, o options, store pipeline.Store) {
	if o.list {
		for _, w := range workloads.All() {
			fmt.Printf("%-20s %-8s %s\n", w.Name, w.Suite, w.Notes)
		}
		return
	}

	cfg := core.DefaultConfig()
	cfg.N = o.n
	cfg.Opt = o.opt
	az := core.New(core.WithStore(store), core.WithJobs(o.jobs))

	switch {
	case o.vet:
		runVet(o)
	case o.benchOut:
		benchJSON(ctx, cfg, o.jobs, store)
	case o.nirFile != "":
		p, err := program.LoadFile(o.nirFile, program.LoadOptions{
			Entry:    o.entry,
			MemWords: o.memWords,
			Args:     splitArgs(o.argList),
		})
		if err != nil {
			fatal("load %s: %v", o.nirFile, err)
		}
		a, err := az.Run(ctx, p, cfg)
		if err != nil {
			fatal("analyze: %v", err)
		}
		emit(a, o, p.Name)
	case o.workload != "":
		w := workloads.ByName(o.workload)
		if w == nil {
			fatal("unknown workload %q (try -list)", o.workload)
		}
		if o.emitNIR {
			fmt.Print(ir.PrintModule(ir.ModuleOf(w.Function())))
			return
		}
		a, err := az.RunWorkload(ctx, w, cfg)
		if err != nil {
			fatal("analyze: %v", err)
		}
		emit(a, o, o.workload)
	case o.jsonOut:
		as, err := az.RunAll(ctx, cfg)
		if err != nil {
			fatal("analysis sweep: %v", err)
		}
		out, err := core.MarshalSummaries(as)
		if err != nil {
			fatal("json: %v", err)
		}
		fmt.Println(string(out))
	case o.figure == "3":
		fmt.Println(tables.Figure3())
	case o.table != "" || o.figure != "" || o.all:
		s, err := tables.RunCtx(ctx, cfg, core.Options{Jobs: o.jobs, Store: store})
		if err != nil {
			fatal("analysis sweep: %v", err)
		}
		switch {
		case o.all:
			fmt.Println(s.All())
		case o.table != "":
			switch strings.ToUpper(o.table) {
			case "I":
				fmt.Println(s.TableI())
			case "II":
				fmt.Println(s.TableII())
			case "III":
				fmt.Println(s.TableIII())
			case "IV":
				fmt.Println(s.TableIV())
			case "V":
				fmt.Println(s.TableV())
			case "HLS":
				fmt.Println(s.TableHLS())
			default:
				fatal("unknown table %q", o.table)
			}
		default:
			switch o.figure {
			case "2":
				fmt.Println(s.Figure2())
			case "4":
				fmt.Println(s.Figure4())
			case "5":
				fmt.Println(s.Figure5())
			case "6":
				fmt.Println(s.Figure6())
			case "9":
				fmt.Println(s.Figure9())
			case "10":
				fmt.Println(s.Figure10())
			default:
				fatal("unknown figure %q", o.figure)
			}
		}
	case o.observing:
		// Observability-only run (`needle -trace out.json`): sweep every
		// workload so the exported timeline covers the whole pipeline, but
		// emit no table output.
		as, err := az.RunAll(ctx, cfg)
		if err != nil {
			fatal("analysis sweep: %v", err)
		}
		fmt.Fprintf(os.Stderr, "needle: analyzed %d workloads (observability run)\n", len(as))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runVet loads the selected program (a -nir file or a -workload kernel),
// runs the static-analysis diagnostic suite over it, prints the report
// (-json for the machine-readable form, byte-identical to the needled
// daemon's /v1/vet response), and exits non-zero when any error-severity
// diagnostic is present.
func runVet(o options) {
	var p *program.Program
	switch {
	case o.nirFile != "":
		var err error
		p, err = program.LoadFile(o.nirFile, program.LoadOptions{
			Entry:    o.entry,
			MemWords: o.memWords,
			Args:     splitArgs(o.argList),
		})
		if err != nil {
			fatal("load %s: %v", o.nirFile, err)
		}
	case o.workload != "":
		w := workloads.ByName(o.workload)
		if w == nil {
			fatal("unknown workload %q (try -list)", o.workload)
		}
		var err error
		p, err = w.Program(o.n)
		if err != nil {
			fatal("workload %s: %v", o.workload, err)
		}
	default:
		fatal("-vet needs a program: combine with -nir or -workload")
	}
	rep := vet.Check(nil, p)
	if o.jsonOut {
		out, err := vet.MarshalReport(rep)
		if err != nil {
			fatal("json: %v", err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(rep.Text())
	}
	if rep.HasErrors() {
		os.Exit(1)
	}
}

// emit renders one analysis the way the single-run flags ask for: -json,
// -dot, or the default human-readable report.
func emit(a *core.Analysis, o options, name string) {
	switch {
	case o.jsonOut:
		out, err := core.MarshalSummaries([]*core.Analysis{a})
		if err != nil {
			fatal("json: %v", err)
		}
		fmt.Println(string(out))
	case o.dotOut:
		if a.HotBraidFrame == nil {
			fatal("no frame to render for %s", name)
		}
		fmt.Print(a.HotBraidFrame.Dot())
	default:
		report(a)
	}
}

// benchJSON runs the full analysis sweep and every table/figure renderer,
// emitting wall-clock timings as JSON — the perf-trajectory artifact future
// changes are measured against.
func benchJSON(ctx context.Context, cfg core.Config, jobs int, store pipeline.Store) {
	type timing struct {
		Name string  `json:"name"`
		Ms   float64 `json:"ms"`
	}
	start := time.Now()
	s, err := tables.RunCtx(ctx, cfg, core.Options{Jobs: jobs, Store: store})
	if err != nil {
		fatal("analysis sweep: %v", err)
	}
	sweepMs := time.Since(start).Seconds() * 1000

	var timings []timing
	renderers := []struct {
		name string
		fn   func() string
	}{
		{"TableI", s.TableI}, {"TableII", s.TableII}, {"TableIII", s.TableIII},
		{"TableIV", s.TableIV}, {"TableV", s.TableV}, {"TableHLS", s.TableHLS},
		{"Figure2", s.Figure2}, {"Figure3", tables.Figure3}, {"Figure4", s.Figure4},
		{"Figure5", s.Figure5}, {"Figure6", s.Figure6}, {"Figure9", s.Figure9},
		{"Figure10", s.Figure10},
	}
	for _, r := range renderers {
		t0 := time.Now()
		_ = r.fn()
		timings = append(timings, timing{Name: r.name, Ms: time.Since(t0).Seconds() * 1000})
	}
	out, err := json.MarshalIndent(struct {
		Jobs      int      `json:"jobs"`
		Workloads int      `json:"workloads"`
		SweepMs   float64  `json:"sweep_ms"`
		TotalMs   float64  `json:"total_ms"`
		Tables    []timing `json:"tables"`
	}{jobs, len(s.Analyses), sweepMs, time.Since(start).Seconds() * 1000, timings}, "", "  ")
	if err != nil {
		fatal("json: %v", err)
	}
	fmt.Println(string(out))
}

func report(a *core.Analysis) {
	if w := a.Workload; w != nil {
		fmt.Printf("workload %s (%s): %s\n\n", w.Name, w.Suite, w.Notes)
	} else {
		fmt.Printf("program %s (%s)\n\n", a.Program.Name, a.Program.Suite)
	}
	fmt.Printf("profile: %d executed paths, top-1 coverage %.0f%%, top-5 %.0f%%\n",
		a.Profile.NumExecutedPaths(), a.Profile.CoverageTopK(1)*100, a.Profile.CoverageTopK(5)*100)
	st := a.CFStats
	fmt.Printf("control flow: %d branches, %d back edges, Branch=>Mem %.1f, Mem=>Branch %.1f\n",
		st.Branches, st.BackwardBranches, st.AvgBranchMem, st.AvgMemBranch)
	hot := a.Profile.HottestPath()
	fmt.Printf("hottest path: %d ops, %d branches, %d mem ops, freq %d\n",
		hot.Ops, hot.Branches, hot.MemOps, hot.Freq)
	if fr, err := a.PathFrame(0); err == nil {
		fmt.Printf("path frame: %d dataflow ops, %d guards, %d phis cancelled, live %d in / %d out\n",
			fr.NumOps(), fr.Guards, fr.Cancelled, len(fr.LiveIn), len(fr.LiveOut))
	}
	if br := a.HottestBraid(); br != nil {
		fmt.Printf("hot braid: merges %d paths, coverage %.0f%%, %d ops, %d guards, %d IFs\n",
			br.MergedPathCount(), br.Coverage(a.Profile)*100, br.NumOps(), br.Guards, br.IFs)
	}
	fmt.Printf("\noffload (host baseline %d cycles):\n", a.Trace.BaselineCycles)
	fmt.Printf("  path+oracle : %+6.1f%%\n", a.PathOracle.Improvement*100)
	fmt.Printf("  path+history: %+6.1f%% (precision %.2f)\n",
		a.PathHistory.Improvement*100, a.PathHistory.Precision)
	fmt.Printf("  braid (%s): %+6.1f%%, energy %+.1f%%, coverage %.0f%%\n",
		a.BraidChoice.Policy, a.BraidChoice.Result.Improvement*100,
		a.BraidChoice.Result.EnergyReduction*100, a.BraidChoice.Result.Coverage*100)
	if a.HotBraidFrame != nil {
		fmt.Printf("\nHLS estimate: %d ALMs (%.0f%% of Cyclone V), %.0f mW\n",
			a.HLS.ALMs, a.HLS.Utilization*100, a.HLS.PowerMW)
	}
	if a.FrameErr != nil {
		fmt.Printf("\nframe: hot braid frame construction FAILED: %v\n", a.FrameErr)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "needle: "+format+"\n", args...)
	os.Exit(1)
}
