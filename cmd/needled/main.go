// Command needled is the long-running Needle analysis service: the same
// staged pipeline the needle CLI runs, kept warm behind HTTP so repeated
// queries — ablation sweeps, dashboards, CI regressions — share one
// artifact store instead of recomputing from scratch per process.
//
// Usage:
//
//	needled                                    serve on :8917, in-memory store
//	needled -addr :9000 -jobs 8 -queue-depth 128
//	needled -cache-dir ~/.needle               persist artifacts across restarts
//	needled -timeout 2m                        cap per-request deadlines
//	needled -max-source-kb 1024 -max-instrs 100000   raise inline-source caps
//
// Endpoints (see docs/SERVICE.md for payloads):
//
//	POST /v1/analyze     one workload+config, or inline .nir source;
//	                     bytes match `needle -json` / `needle -nir -json`
//	POST /v1/sweep       all workloads, streamed as NDJSON
//	GET  /v1/workloads   the registered workload set
//	GET  /healthz        200 serving, 503 draining
//	GET  /metrics        text counters, span aggregates, cache stats
//
// SIGINT/SIGTERM triggers a graceful drain: health checks flip to 503, new
// analyses are rejected, in-flight requests finish (bounded by
// -drain-grace), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"needle/internal/obs"
	"needle/internal/pipeline"
	"needle/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8917", "listen address")
		jobs       = flag.Int("jobs", 0, "analysis worker-pool size (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 64, "queued requests beyond the pool before 429s")
		timeout    = flag.Duration("timeout", 0, "server-side cap on per-request deadlines (0 = none)")
		cacheDir   = flag.String("cache-dir", "", "persist stage artifacts to this directory; restarts warm-start from it")
		cacheMaxMB = flag.Int("cache-max-mb", 0, "evict least-recently-used artifacts when -cache-dir exceeds this size (0 = unbounded)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "how long shutdown waits for in-flight requests")

		// Inline-source ingestion caps (0 = the serve-layer default shown).
		def         = serve.DefaultLimits()
		maxBodyKB   = flag.Int("max-body-kb", 0, fmt.Sprintf("request-body cap in KiB (0 = %d)", 1<<10))
		maxSourceKB = flag.Int("max-source-kb", 0, fmt.Sprintf("inline .nir source cap in KiB (0 = %d)", def.MaxSourceBytes>>10))
		maxInstrs   = flag.Int("max-instrs", 0, fmt.Sprintf("static instruction cap for inline source (0 = %d)", def.MaxInstrs))
		maxMemWords = flag.Int("max-mem-words", 0, fmt.Sprintf("memory-image cap in words for inline source (0 = %d)", def.MaxMemWords))
		maxSteps    = flag.Int64("max-steps", 0, fmt.Sprintf("interpreter step cap for inline source (0 = %d)", def.MaxSteps))
	)
	flag.Parse()

	// The daemon always records observability: /metrics is an endpoint, not
	// an opt-in flag.
	obs.Enable()

	var store pipeline.Store
	if *cacheDir != "" {
		ds, err := pipeline.NewDiskStore(*cacheDir, *cacheMaxMB)
		if err != nil {
			fatal("cache: %v", err)
		}
		store = ds
	}
	limits := def
	if *maxSourceKB > 0 {
		limits.MaxSourceBytes = *maxSourceKB << 10
	}
	if *maxInstrs > 0 {
		limits.MaxInstrs = *maxInstrs
	}
	if *maxMemWords > 0 {
		limits.MaxMemWords = *maxMemWords
	}
	if *maxSteps > 0 {
		limits.MaxSteps = *maxSteps
	}
	var bodyBytes int64
	if *maxBodyKB > 0 {
		bodyBytes = int64(*maxBodyKB) << 10
	}
	srv := serve.New(serve.Config{
		Jobs:         *jobs,
		QueueDepth:   *queueDepth,
		Timeout:      *timeout,
		Store:        store,
		MaxBodyBytes: bodyBytes,
		Limits:       limits,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "needled: serving on %s\n", *addr)

	select {
	case err := <-errc:
		fatal("listen: %v", err)
	case <-ctx.Done():
	}

	// Drain: reject new work (healthz goes 503 so load balancers eject us),
	// let in-flight handlers and the queue settle, then stop the pool.
	fmt.Fprintln(os.Stderr, "needled: draining")
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "needled: shutdown: %v\n", err)
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "needled: stopped")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "needled: "+format+"\n", args...)
	os.Exit(1)
}
