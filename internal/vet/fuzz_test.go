package vet

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"needle/internal/program"
)

// FuzzVetAnalyses drives untrusted .nir text through the full vet stack —
// parse/verify ingestion, then SCCP, reachability, value ranges, memory
// dependence, and the diagnostic walk. The /v1/vet endpoint feeds these
// analyses attacker-controlled programs, so the contract is: any input the
// loader accepts vets without panicking, and vetting the same program twice
// yields byte-identical reports (the ordering the JSON golden files pin is
// deterministic, not map-order luck).
func FuzzVetAnalyses(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "nir", "*.nir"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no example corpus: %v", err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	// Adversarial shapes aimed at the analyses rather than the parser:
	// div/rem by zero (SCCP must not fold the trap away), address arithmetic
	// that wraps int64, self-referential phi cycles (range widening and the
	// memdep form walk must terminate), a provably out-of-bounds access, and
	// a constant branch into an unreachable diamond.
	f.Add("func @f() {\nentry:\n  r1 = const.i64 7\n  r2 = const.i64 0\n  r3 = div r1, r2\n  ret r3\n}\n")
	f.Add("func @f() {\nentry:\n  r1 = const.i64 9223372036854775807\n  r2 = add r1, r1\n  r3 = load.i64 r2\n  ret r3\n}\n")
	f.Add("func @f(i64) {\nentry:\n  br %loop\nloop:\n  r2 = phi.i64 [entry: r1] [loop: r3]\n  r3 = add r2, r2\n  condbr r3, %loop, %done\ndone:\n  ret r2\n}\n")
	f.Add("func @f() {\nentry:\n  r1 = const.i64 -1\n  r2 = load.i64 r1\n  ret r2\n}\n")
	f.Add("func @f() {\nentry:\n  r1 = const.i64 0\n  condbr r1, %a, %b\na:\n  br %c\nb:\n  br %c\nc:\n  r2 = phi.i64 [a: r1] [b: r1]\n  ret r2\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := program.Load(src, program.LoadOptions{})
		if err != nil {
			return // rejected input is fine; panics are not
		}
		rep := Check(nil, p)
		out, err := MarshalReport(rep)
		if err != nil {
			t.Fatalf("report does not marshal: %v", err)
		}
		// Fresh analyses over the same program must reproduce the bytes.
		again, err := MarshalReport(Check(nil, p))
		if err != nil {
			t.Fatalf("second report does not marshal: %v", err)
		}
		if !bytes.Equal(out, again) {
			t.Fatalf("vet is nondeterministic:\nfirst:\n%s\nsecond:\n%s", out, again)
		}
		if rep.Errors < 0 || rep.Warnings < 0 || rep.Infos < 0 ||
			rep.Errors+rep.Warnings+rep.Infos != len(rep.Diagnostics) {
			t.Fatalf("severity counts inconsistent: %d/%d/%d over %d diagnostics",
				rep.Errors, rep.Warnings, rep.Infos, len(rep.Diagnostics))
		}
	})
}
