// Package vet is the typed diagnostics engine over the semantic static
// analyses (SCCP, reachability, value ranges, memory dependence): it turns
// their facts into a deterministic, machine-readable report. The same
// Check/MarshalReport pair backs `needle -vet`, `nir vet`, and the
// needled service's POST /v1/vet, so all three emit byte-identical JSON
// for the same program.
package vet

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"needle/internal/analysis"
	"needle/internal/ir"
	"needle/internal/pm"
	"needle/internal/program"
)

// Severity ranks a diagnostic. Errors are provable runtime faults;
// warnings are almost-certain mistakes that cannot fault by themselves;
// infos are analysis facts worth surfacing (offload candidates).
type Severity uint8

const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the lowercase severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = SevError
	case "warning":
		*s = SevWarning
	case "info":
		*s = SevInfo
	default:
		return fmt.Errorf("vet: unknown severity %q", name)
	}
	return nil
}

// Diagnostic codes. Stable strings: golden tests and service clients key
// on them.
const (
	CodeUnreachableBlock = "unreachable-block" // block no execution reaches
	CodeConstantBranch   = "constant-branch"   // condbr with a proven-constant condition
	CodeDeadStore        = "dead-store"        // store overwritten before any aliasing read
	CodeDeadCode         = "dead-code"         // pure def never read
	CodeOOBAccess        = "oob-access"        // address range (partly) outside memory
	CodeSelfAliasStore   = "self-alias-store"  // load-derived store address in a loop
)

// Diagnostic is one finding, anchored to a function, block, and
// instruction. Instr is the index within the block's instruction list, or
// -1 for block-level findings.
type Diagnostic struct {
	Severity Severity `json:"severity"`
	Func     string   `json:"func"`
	Block    string   `json:"block"`
	Instr    int      `json:"instr"`
	Code     string   `json:"code"`
	Msg      string   `json:"msg"`
}

func (d Diagnostic) String() string {
	at := d.Func + "/" + d.Block
	if d.Instr >= 0 {
		at = fmt.Sprintf("%s:%d", at, d.Instr)
	}
	return fmt.Sprintf("%s: %s: [%s] %s", d.Severity, at, d.Code, d.Msg)
}

// ReportSchemaVersion is bumped whenever the JSON report layout changes
// incompatibly.
const ReportSchemaVersion = 1

// Report is the full vet result for one program.
type Report struct {
	SchemaVersion int          `json:"schemaVersion"`
	Program       string       `json:"program"`
	MemWords      int          `json:"memWords"`
	Errors        int          `json:"errors"`
	Warnings      int          `json:"warnings"`
	Infos         int          `json:"infos"`
	Diagnostics   []Diagnostic `json:"diagnostics"`
}

// HasErrors reports whether any diagnostic is error-severity (the CLI's
// non-zero-exit condition).
func (r *Report) HasErrors() bool { return r.Errors > 0 }

// MarshalReport renders the report as the canonical indented JSON all
// frontends share. The result has no trailing newline; callers append one.
func MarshalReport(r *Report) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Text renders the report in human-readable form, one diagnostic per line.
func (r *Report) Text() string {
	var b strings.Builder
	for _, d := range r.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%s: %d error(s), %d warning(s), %d info(s)\n",
		r.Program, r.Errors, r.Warnings, r.Infos)
	return b.String()
}

// Check runs every analysis over the program's entry function and its
// transitive callees and returns the diagnostics in deterministic order
// (module function order, then block index, instruction index, code). The
// analyses are pulled through am so repeated checks and the optimizer
// share cached fixpoints; a nil am gets a fresh manager.
func Check(am *pm.Manager, p *program.Program) *Report {
	am = pm.Ensure(am)
	memWords := len(p.Memory)
	rep := &Report{
		SchemaVersion: ReportSchemaVersion,
		Program:       p.Name,
		MemWords:      memWords,
	}
	for _, f := range ir.ModuleOf(p.F).Funcs {
		rep.Diagnostics = append(rep.Diagnostics, checkFunc(am, f, memWords)...)
	}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []Diagnostic{} // JSON: [] rather than null
	}
	for _, d := range rep.Diagnostics {
		switch d.Severity {
		case SevError:
			rep.Errors++
		case SevWarning:
			rep.Warnings++
		default:
			rep.Infos++
		}
	}
	return rep
}

// checkFunc produces the per-function diagnostics, sorted.
func checkFunc(am *pm.Manager, f *ir.Function, memWords int) []Diagnostic {
	sccp := am.SCCP(f)
	facts := analysis.DeriveDeadCode(f, sccp)
	rg := am.Ranges(f)
	md := am.MemDep(f)
	loops := am.NaturalLoops(f)

	inLoop := func(b *ir.Block) bool {
		for _, l := range loops {
			if l.Contains(b) {
				return true
			}
		}
		return false
	}
	instrIndex := func(b *ir.Block, in *ir.Instr) int {
		for i, x := range b.Instrs {
			if x == in {
				return i
			}
		}
		return -1
	}

	var ds []Diagnostic
	add := func(sev Severity, b *ir.Block, instr int, code, msg string) {
		ds = append(ds, Diagnostic{
			Severity: sev, Func: f.Name, Block: b.Name, Instr: instr,
			Code: code, Msg: msg,
		})
	}

	// Reachability: unreachable blocks, constant branches.
	for _, b := range facts.UnreachableBlocks {
		add(SevWarning, b, -1, CodeUnreachableBlock, "block is unreachable (no execution can enter it)")
	}
	for _, b := range f.Blocks {
		if taken, ok := sccp.ConstBranch(b); ok {
			t := b.Term()
			cond := sccp.Value(t.Args[0])
			add(SevWarning, b, instrIndex(b, t), CodeConstantBranch,
				fmt.Sprintf("branch condition is always %d; always goes to %%%s",
					int64(cond.Bits), t.Blocks[taken].Name))
		}
	}

	// Dead pure defs (SCCP-derived; executable blocks only).
	for _, in := range facts.DeadDefs {
		b := blockOf(f, in)
		add(SevInfo, b, instrIndex(b, in), CodeDeadCode,
			fmt.Sprintf("r%d is never read", in.Dst))
	}

	// Memory diagnostics: per executable block.
	for _, b := range f.Blocks {
		if !sccp.BlockExecutable(b) {
			continue
		}
		for i, in := range b.Instrs {
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				continue
			}
			kind := "load"
			if in.Op == ir.OpStore {
				kind = "store"
			}
			// Out-of-bounds: the address range vs the memory size. Errors
			// only when the access provably faults on every execution;
			// warnings only on finite bounds (a widened loop index is not
			// evidence of a bug).
			iv := rangeOfAddr(sccp, rg, in.Args[0])
			switch {
			case iv.Hi < 0 || (memWords >= 0 && iv.Lo >= int64(memWords)):
				add(SevError, b, i, CodeOOBAccess,
					fmt.Sprintf("%s of word%s is always out of bounds (mem size %d)",
						kind, fmtRange(iv), memWords))
			case (iv.Lo < 0 && iv.Lo != math.MinInt64) ||
				(iv.Hi >= int64(memWords) && iv.Hi != math.MaxInt64):
				add(SevWarning, b, i, CodeOOBAccess,
					fmt.Sprintf("%s of word%s may be out of bounds (mem size %d)",
						kind, fmtRange(iv), memWords))
			}
			if in.Op == ir.OpStore {
				// Dead store: a later store in the same block provably
				// overwrites this one before any aliasing read or call.
				if j := overwrittenBy(b, i, md); j >= 0 {
					add(SevWarning, b, i, CodeDeadStore,
						fmt.Sprintf("store is overwritten by the store at instruction %d before any read", j))
				}
				// Self-aliasing offload candidate: a store in a loop whose
				// address depends on a loaded value (data-dependent
				// addressing — the pattern the paper's braids target).
				if inLoop(b) && md.LoadDerived(in.Args[0]) {
					add(SevInfo, b, i, CodeSelfAliasStore,
						"store address is load-derived inside a loop (self-aliasing offload candidate)")
				}
			}
		}
	}

	sort.SliceStable(ds, func(i, j int) bool {
		bi, bj := blockIndexByName(f, ds[i].Block), blockIndexByName(f, ds[j].Block)
		if bi != bj {
			return bi < bj
		}
		if ds[i].Instr != ds[j].Instr {
			return ds[i].Instr < ds[j].Instr
		}
		return ds[i].Code < ds[j].Code
	})
	return ds
}

// rangeOfAddr returns the tightest interval for an address register,
// preferring an SCCP constant (exact) over the interval analysis.
func rangeOfAddr(sccp *analysis.SCCP, rg *analysis.Ranges, r ir.Reg) analysis.Interval {
	if v := sccp.Value(r); v.IsConst() {
		c := int64(v.Bits)
		return analysis.Interval{Lo: c, Hi: c}
	}
	return rg.At(r)
}

func fmtRange(iv analysis.Interval) string {
	if iv.Lo == iv.Hi {
		return fmt.Sprintf(" %d", iv.Lo)
	}
	lo, hi := "-inf", "+inf"
	if iv.Lo != math.MinInt64 {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.Hi != math.MaxInt64 {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return fmt.Sprintf("s [%s, %s]", lo, hi)
}

// overwrittenBy returns the index of a later store in b that must-alias
// the store at index i with no possibly-aliasing load or call between
// them, or -1. Control flow cannot intervene inside a block, so the
// overwrite is unconditional.
func overwrittenBy(b *ir.Block, i int, md *analysis.MemDep) int {
	addr := b.Instrs[i].Args[0]
	for j := i + 1; j < len(b.Instrs); j++ {
		in := b.Instrs[j]
		switch in.Op {
		case ir.OpCall:
			return -1 // callee may read memory
		case ir.OpLoad:
			if md.ClassifyRegs(addr, in.Args[0]) != analysis.NoAlias {
				return -1
			}
		case ir.OpStore:
			switch md.ClassifyRegs(addr, in.Args[0]) {
			case analysis.MustAlias:
				return j
			case analysis.MayAlias:
				return -1 // partial overwrite cannot be proven dead
			}
		}
	}
	return -1
}

func blockOf(f *ir.Function, in *ir.Instr) *ir.Block {
	for _, b := range f.Blocks {
		for _, x := range b.Instrs {
			if x == in {
				return b
			}
		}
	}
	return f.Entry()
}

func blockIndexByName(f *ir.Function, name string) int {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b.Index
		}
	}
	return math.MaxInt
}
