package vet

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"needle/internal/program"
)

var update = flag.Bool("update", false, "rewrite golden vet reports")

// load builds a Program from source with the default memory size.
func load(t testing.TB, src string) *program.Program {
	t.Helper()
	p, err := program.Load(src, program.LoadOptions{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

func find(rep *Report, code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range rep.Diagnostics {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

func TestCheckDeadStore(t *testing.T) {
	rep := Check(nil, load(t, `func @f(i64) {
entry:
  r2 = const.i64 7
  r3 = const.i64 1
  store.i64 r2, r3
  store.i64 r2, r1
  ret r1
}`))
	ds := find(rep, CodeDeadStore)
	if len(ds) != 1 {
		t.Fatalf("dead stores = %v, want exactly the first store", ds)
	}
	if ds[0].Instr != 2 || ds[0].Severity != SevWarning {
		t.Fatalf("dead store anchored wrong: %+v", ds[0])
	}
}

func TestCheckDeadStoreBlockedByAliasingRead(t *testing.T) {
	rep := Check(nil, load(t, `func @f(i64) {
entry:
  r2 = const.i64 7
  r3 = const.i64 1
  store.i64 r2, r3
  r4 = load.i64 r2
  store.i64 r2, r4
  ret r4
}`))
	if ds := find(rep, CodeDeadStore); len(ds) != 0 {
		t.Fatalf("store read back before overwrite flagged dead: %v", ds)
	}
	// A may-aliasing read (unknown address) must also block the report.
	rep = Check(nil, load(t, `func @g(i64) {
entry:
  r2 = const.i64 7
  r3 = const.i64 1
  store.i64 r2, r3
  r4 = load.i64 r1
  store.i64 r2, r4
  ret r4
}`))
	if ds := find(rep, CodeDeadStore); len(ds) != 0 {
		t.Fatalf("may-aliasing read did not block dead-store: %v", ds)
	}
}

func TestCheckOOBProvableIsError(t *testing.T) {
	rep := Check(nil, load(t, `func @f() {
entry:
  r1 = const.i64 5000
  r2 = load.i64 r1
  ret r2
}`))
	oob := find(rep, CodeOOBAccess)
	if len(oob) != 1 || oob[0].Severity != SevError {
		t.Fatalf("oob = %v, want one error (mem size %d)", oob, program.DefaultMemWords)
	}
	if !rep.HasErrors() {
		t.Fatal("report must count the error")
	}
}

func TestCheckOOBFinitePartialIsWarning(t *testing.T) {
	// r2 = r1 & 8191 is in [0, 8191]: finite, partly past the 4096-word
	// memory — a warning, not an error (some executions are fine).
	rep := Check(nil, load(t, `func @f(i64) {
entry:
  r3 = const.i64 8191
  r2 = and r1, r3
  r4 = load.i64 r2
  ret r4
}`))
	oob := find(rep, CodeOOBAccess)
	if len(oob) != 1 || oob[0].Severity != SevWarning {
		t.Fatalf("oob = %v, want one warning", oob)
	}
}

func TestCheckOOBWidenedLoopIsSilent(t *testing.T) {
	// A widened loop index has an infinite upper bound; that is ignorance,
	// not evidence, so no diagnostic.
	rep := Check(nil, load(t, `func @f(i64) {
entry:
  r2 = const.i64 0
  r3 = const.i64 1
  br %head
head:
  r4 = phi.i64 [entry: r2] [body: r5]
  r6 = cmp.lt r4, r1
  condbr r6, %body, %exit
body:
  r7 = load.i64 r4
  r5 = add r4, r3
  br %head
exit:
  ret r4
}`))
	if oob := find(rep, CodeOOBAccess); len(oob) != 0 {
		t.Fatalf("widened loop index flagged: %v", oob)
	}
}

func TestCheckUnreachableAndConstantBranch(t *testing.T) {
	rep := Check(nil, load(t, `func @f(i64) {
entry:
  r2 = const.i64 0
  condbr r2, %dead, %live
dead:
  r3 = add r1, r1
  br %live
live:
  ret r1
}`))
	if u := find(rep, CodeUnreachableBlock); len(u) != 1 || u[0].Block != "dead" {
		t.Fatalf("unreachable = %v, want [dead]", u)
	}
	if c := find(rep, CodeConstantBranch); len(c) != 1 || c[0].Block != "entry" {
		t.Fatalf("constant-branch = %v, want [entry]", c)
	}
}

func TestCheckSelfAliasStore(t *testing.T) {
	// Bucket increment: the store address comes from a loaded value inside
	// the loop — the canonical self-aliasing offload candidate.
	rep := Check(nil, load(t, `func @f(i64, i64) {
entry:
  r3 = const.i64 0
  r4 = const.i64 1
  br %head
head:
  r5 = phi.i64 [entry: r3] [body: r6]
  r7 = cmp.lt r5, r2
  condbr r7, %body, %exit
body:
  r8 = add r1, r5
  r9 = load.i64 r8
  r10 = load.i64 r9
  r11 = add r10, r4
  store.i64 r9, r11
  r6 = add r5, r4
  br %head
exit:
  ret r5
}`))
	sa := find(rep, CodeSelfAliasStore)
	if len(sa) != 1 || sa[0].Severity != SevInfo {
		t.Fatalf("self-alias = %v, want one info", sa)
	}
}

func TestCheckDeterministic(t *testing.T) {
	src, err := os.ReadFile(example("histogram.nir"))
	if err != nil {
		t.Fatal(err)
	}
	p := load(t, string(src))
	a, err := MarshalReport(Check(nil, p))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalReport(Check(nil, p))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("vet output not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestCheckCoversCallees(t *testing.T) {
	rep := Check(nil, load(t, `func @main(i64) {
entry:
  r2 = call.i64 @helper r1
  ret r2
}
func @helper(i64) {
entry:
  r2 = const.i64 9999
  r3 = load.i64 r2
  ret r3
}`))
	oob := find(rep, CodeOOBAccess)
	if len(oob) != 1 || oob[0].Func != "helper" {
		t.Fatalf("callee diagnostics missing: %v", oob)
	}
}

func example(name string) string {
	return filepath.Join("..", "..", "examples", "nir", name)
}

// TestGoldenExamples pins the exact `needle -vet -json` bytes for the
// checked-in examples: the two clean kernels and the two deliberately
// buggy ones. Regenerate with `go test ./internal/vet -update`.
func TestGoldenExamples(t *testing.T) {
	for _, name := range []string{"saxpy", "histogram", "deadstore", "oob"} {
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(example(name + ".nir"))
			if err != nil {
				t.Fatal(err)
			}
			p, err := program.Load(string(src), program.LoadOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := MarshalReport(Check(nil, p))
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			golden := filepath.Join("testdata", name+".vet.json")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("vet report for %s drifted:\n got: %s\nwant: %s", name, got, want)
			}
		})
	}
}

// TestExamplesVetClean: the two real example kernels must produce no
// errors and no warnings (infos — offload-candidate facts — are fine).
func TestExamplesVetClean(t *testing.T) {
	for _, name := range []string{"saxpy", "histogram"} {
		src, err := os.ReadFile(example(name + ".nir"))
		if err != nil {
			t.Fatal(err)
		}
		p, err := program.Load(string(src), program.LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rep := Check(nil, p)
		if rep.Errors != 0 || rep.Warnings != 0 {
			t.Errorf("%s not vet-clean:\n%s", name, rep.Text())
		}
	}
}
