package sim

import (
	"testing"

	"needle/internal/interp"
	"needle/internal/region"
	"needle/internal/spec"
	"needle/internal/workloads"
)

func capture(t testing.TB, name string, n int) *Trace {
	t.Helper()
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("unknown workload %s", name)
	}
	f, args, memory := w.Instance(n)
	tr, err := Capture(nil, f, args, memory, DefaultConfig())
	if err != nil {
		t.Fatalf("Capture(%s): %v", name, err)
	}
	return tr
}

func TestCaptureAttributionSumsToBaseline(t *testing.T) {
	tr := capture(t, "181.mcf", 800)
	var sum int64
	for _, occ := range tr.Occ {
		sum += occ.Cycles
	}
	// Occurrence cycles partition the baseline (the last path completion
	// coincides with the function return).
	if sum != tr.BaselineCycles {
		t.Fatalf("occurrence cycles sum to %d, baseline %d", sum, tr.BaselineCycles)
	}
	if tr.BaselineEnergyPJ <= 0 {
		t.Fatal("no baseline energy")
	}
	if int64(len(tr.Occ)) != tr.Profile.HottestPath().Freq+sumOtherFreqs(tr) {
		t.Fatal("occurrence count mismatch with profile")
	}
}

func sumOtherFreqs(tr *Trace) int64 {
	var n int64
	for _, p := range tr.Profile.Paths[1:] {
		n += p.Freq
	}
	return n
}

func TestOracleNeverFails(t *testing.T) {
	tr := capture(t, "164.gzip", 1500)
	oracle, history, err := EvaluateHottestPath(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Invocations != oracle.Successes {
		t.Fatalf("oracle failed %d times", oracle.Invocations-oracle.Successes)
	}
	if oracle.Precision != 1.0 && oracle.Invocations > 0 {
		t.Fatalf("oracle precision = %v", oracle.Precision)
	}
	// The oracle bound dominates the history predictor on cycles.
	if history.OffloadCycles < oracle.OffloadCycles {
		t.Fatalf("history (%d) beat the oracle (%d)", history.OffloadCycles, oracle.OffloadCycles)
	}
	if oracle.Opportunities == 0 {
		t.Fatal("no opportunities seen")
	}
}

func TestBraidCoverageAtLeastPathCoverage(t *testing.T) {
	tr := capture(t, "456.hmmer", 1500)
	cfg := DefaultConfig()
	braid, br, err := EvaluateHottestBraid(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, _, err := EvaluateHottestPath(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if br.MergedPathCount() < 2 {
		t.Skipf("braid merged only %d paths at this scale", br.MergedPathCount())
	}
	if braid.Coverage < oracle.Coverage {
		t.Fatalf("braid coverage %v below path coverage %v", braid.Coverage, oracle.Coverage)
	}
	// Under always-invoke every opportunity is an invocation, and the braid
	// accepts every in-region flow.
	always, _, err := EvaluateBraidAlways(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if always.Invocations != always.Opportunities {
		t.Fatal("always predictor must invoke on every opportunity")
	}
}

func TestEvaluateAccountsFailures(t *testing.T) {
	// bodytrack's noisy branches make single-path offload fail often under
	// always-invoke; failures must cost more than the baseline occurrences.
	tr := capture(t, "bodytrack", 1200)
	cfg := DefaultConfig()
	hot := tr.Profile.HottestPath()
	tgt, err := NewPathTarget(nil, tr.Profile, hot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	always := Evaluate(tr, tgt, spec.Always{}, cfg)
	if always.Invocations != always.Opportunities {
		t.Fatal("always must invoke at every opportunity")
	}
	if always.Successes == always.Invocations {
		t.Skip("no failures at this scale; nothing to check")
	}
	oracle := Evaluate(tr, tgt, &spec.Oracle{}, cfg)
	if always.OffloadCycles <= oracle.OffloadCycles {
		t.Fatal("failures must cost cycles versus the oracle")
	}
	if always.OffloadEnergyPJ <= oracle.OffloadEnergyPJ {
		t.Fatal("failures must cost energy versus the oracle")
	}
}

func TestHighCoverageWorkloadImproves(t *testing.T) {
	// lbm: two paths, huge straight-line FP body — the paper's best case.
	tr := capture(t, "470.lbm", 500)
	cfg := DefaultConfig()
	braid, _, err := EvaluateHottestBraid(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if braid.Improvement <= 0 {
		t.Fatalf("lbm braid improvement = %v, want > 0", braid.Improvement)
	}
	if braid.EnergyReduction <= 0 {
		t.Fatalf("lbm braid energy reduction = %v, want > 0", braid.EnergyReduction)
	}
	if braid.Coverage < 0.5 {
		t.Fatalf("lbm braid coverage = %v, want > 0.5", braid.Coverage)
	}
}

func TestResultInternalConsistency(t *testing.T) {
	for _, name := range []string{"403.gcc", "dwt53", "450.soplex"} {
		tr := capture(t, name, 1000)
		cfg := DefaultConfig()
		braid, _, err := EvaluateHottestBraid(tr, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if braid.Successes > braid.Invocations || braid.Invocations > braid.Opportunities {
			t.Fatalf("%s: counts inconsistent: %+v", name, braid)
		}
		if braid.Coverage < 0 || braid.Coverage > 1 {
			t.Fatalf("%s: coverage out of range: %v", name, braid.Coverage)
		}
		wantImp := float64(braid.BaselineCycles-braid.OffloadCycles) / float64(braid.BaselineCycles)
		if diff := wantImp - braid.Improvement; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: improvement bookkeeping wrong", name)
		}
	}
}

// TestFunctionalOffloadMatchesPureExecution is the end-to-end correctness
// contract of software speculation: interleaving host execution with
// speculative frames (including failures and rollbacks) must produce
// bit-identical results and memory to a pure host run.
func TestFunctionalOffloadMatchesPureExecution(t *testing.T) {
	for _, tc := range []struct {
		workload string
		braid    bool
	}{
		{"181.mcf", false},
		{"456.hmmer", true},
		{"bodytrack", true}, // noisy: exercises failures+rollbacks
		{"164.gzip", false}, // early-exit chains
		{"470.lbm", true},   // store-heavy
		{"freqmine", false}, // store-bearing divergent paths
	} {
		tc := tc
		t.Run(tc.workload, func(t *testing.T) {
			w := workloads.ByName(tc.workload)
			f, args, mem1 := w.Instance(900)
			pure, err := interp.Run(f, args, mem1, nil, 0)
			if err != nil {
				t.Fatal(err)
			}

			// Fresh memory for profiling, then a third copy for the
			// functional offload run.
			_, args2, memProfile := w.Instance(900)
			cfg := DefaultConfig()
			tr, err := Capture(nil, f, args2, memProfile, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var tgt *Target
			if tc.braid {
				braids := region.BuildBraids(tr.Profile, 0)
				tgt, err = NewBraidTarget(nil, tr.Profile, braids[0], cfg)
			} else {
				tgt, err = NewPathTarget(nil, tr.Profile, tr.Profile.HottestPath(), cfg)
			}
			if err != nil {
				t.Fatal(err)
			}

			_, args3, mem3 := w.Instance(900)
			res, err := FunctionalOffload(f, args3, mem3, tgt, spec.Always{}, 0)
			if err != nil {
				t.Fatalf("FunctionalOffload: %v", err)
			}
			if res.Ret != pure.Ret {
				t.Fatalf("offloaded result %d != pure result %d", res.Ret, pure.Ret)
			}
			for i := range mem1 {
				if mem1[i] != mem3[i] {
					t.Fatalf("memory diverged at word %d", i)
				}
			}
			if res.Invocations == 0 {
				t.Fatal("the target was never invoked")
			}
			t.Logf("%s: %d invocations, %d successes, %d rollbacks, %d frame ops",
				tc.workload, res.Invocations, res.Successes, res.Rollbacks, res.FrameOps)
		})
	}
}

func TestEvaluateHyperblockBaseline(t *testing.T) {
	tr := capture(t, "186.crafty", 1500)
	cfg := DefaultConfig()
	hb, err := EvaluateHyperblock(tr, cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Non-speculative predication cannot fail.
	if hb.Successes != hb.Invocations {
		t.Fatalf("hyperblock failed %d times; predication cannot fail", hb.Invocations-hb.Successes)
	}
	// On dispatch-heavy code the predicated baseline burns energy executing
	// everything; Needle's selected braid must beat it on cycles.
	braid, _, err := EvaluateHottestBraid(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hb.Improvement > braid.Improvement && braid.Improvement > 0 {
		t.Fatalf("hyperblock (%.2f) should not beat the braid (%.2f) on crafty",
			hb.Improvement, braid.Improvement)
	}
}

func TestSelectBraidRejectsEnergyLosers(t *testing.T) {
	// Selection must never return a candidate that increases energy, even
	// when it would win cycles.
	for _, name := range []string{"186.crafty", "458.sjeng", "401.bzip2"} {
		tr := capture(t, name, 1500)
		cand, err := SelectBraid(tr, DefaultConfig(), 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cand.Result.OffloadEnergyPJ > cand.Result.BaselineEnergyPJ+1e-6 {
			t.Fatalf("%s: selected braid loses energy", name)
		}
		if cand.Result.OffloadCycles > cand.Result.BaselineCycles {
			t.Fatalf("%s: selected braid loses cycles", name)
		}
	}
}

func TestSelectPathTriesLowerRanks(t *testing.T) {
	tr := capture(t, "453.povray", 2000)
	cfg := DefaultConfig()
	// topK=1 must never beat topK=3 (the search is monotone in candidates).
	h1, o1, err := SelectPath(tr, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	h3, o3, err := SelectPath(tr, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h3.OffloadCycles > h1.OffloadCycles || o3.OffloadCycles > o1.OffloadCycles {
		t.Fatal("widening the candidate search made the result worse")
	}
}
