package sim

import (
	"reflect"
	"testing"

	"needle/internal/energy"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/mem"
	"needle/internal/ooo"
	"needle/internal/pm"
	"needle/internal/profile"
	"needle/internal/spec"
	"needle/internal/workloads"
)

// captureHooked is Capture with the compiled fast path disabled: the
// collector is committed to the hook path before running, and the timing
// model, history tracker, and profiler are wired through CombineHooks. It
// is the oracle the fast path must match event for event.
func captureHooked(f *ir.Function, args, memory []uint64, cfg Config) (*Trace, error) {
	am := pm.NewManager()
	collector, err := profile.NewCollector(am, f, true)
	if err != nil {
		return nil, err
	}
	cache := mem.New(cfg.Mem)
	model := ooo.New(cfg.OOO, f.NumRegs(), cache)
	hist := &spec.HistoryTracker{}

	tr := &Trace{AM: am}
	var lastCycles int64
	var histBefore uint64
	collector.SetOnPath(func(id int64) {
		now := model.Cycles()
		tr.Occ = append(tr.Occ, Occurrence{Path: id, Hist: histBefore, Cycles: now - lastCycles})
		lastCycles = now
		histBefore = hist.H
	})
	all := interp.CombineHooks(collector.Hooks(), model.Hooks(), hist.Hooks())
	if collector.Fast() {
		return nil, errSimImpossible
	}
	if _, err := interp.Run(f, args, memory, all, cfg.MaxSteps); err != nil {
		return nil, err
	}
	fp, err := collector.Finish()
	if err != nil {
		return nil, err
	}
	tr.Profile = fp
	tr.BaselineCycles = model.Cycles()
	tr.Mix = model.Mix
	tr.CacheStats = cache.Stats
	tr.BaselineEnergyPJ = energy.HostEnergyPJ(cfg.CPU, model.Mix, cache.Stats)
	return tr, nil
}

var errSimImpossible = &simTestErr{"collector still fast after Hooks()"}

type simTestErr struct{ s string }

func (e *simTestErr) Error() string { return e.s }

// assertCaptureEquivalent runs the system-simulator capture both ways on one
// workload and demands byte-identical traces: same per-occurrence cycle
// attribution and history snapshots, same baseline cycles, op mix, cache
// stats, energy, and the same finished profile.
func assertCaptureEquivalent(t *testing.T, w *workloads.Workload, n int, requireFast bool) {
	t.Helper()
	name := w.Name
	cfg := DefaultConfig()

	f, args, memory := w.Instance(n)
	if c, err := profile.NewCollector(nil, f, true); err != nil {
		t.Fatalf("%s: NewCollector: %v", name, err)
	} else if !c.Fast() && requireFast {
		t.Fatalf("%s: workload did not take the fast path; test is vacuous", name)
	}
	fast, err := Capture(nil, f, args, memory, cfg)
	if err != nil {
		t.Fatalf("%s: fast capture: %v", name, err)
	}

	f2, args2, memory2 := w.Instance(n)
	slow, err := captureHooked(f2, args2, memory2, cfg)
	if err != nil {
		t.Fatalf("%s: hooked capture: %v", name, err)
	}

	if !reflect.DeepEqual(fast.Occ, slow.Occ) {
		t.Fatalf("%s: occurrence streams differ (fast %d, hooked %d)", name, len(fast.Occ), len(slow.Occ))
	}
	if fast.BaselineCycles != slow.BaselineCycles {
		t.Errorf("%s: baseline cycles fast=%d hooked=%d", name, fast.BaselineCycles, slow.BaselineCycles)
	}
	if fast.Mix != slow.Mix {
		t.Errorf("%s: op mix fast=%+v hooked=%+v", name, fast.Mix, slow.Mix)
	}
	if fast.CacheStats != slow.CacheStats {
		t.Errorf("%s: cache stats fast=%+v hooked=%+v", name, fast.CacheStats, slow.CacheStats)
	}
	if fast.BaselineEnergyPJ != slow.BaselineEnergyPJ {
		t.Errorf("%s: energy fast=%v hooked=%v", name, fast.BaselineEnergyPJ, slow.BaselineEnergyPJ)
	}
	fp, sp := fast.Profile, slow.Profile
	if fp.TotalWeight != sp.TotalWeight || len(fp.Paths) != len(sp.Paths) {
		t.Fatalf("%s: profile shape differs", name)
	}
	for i := range fp.Paths {
		if fp.Paths[i].ID != sp.Paths[i].ID || fp.Paths[i].Freq != sp.Paths[i].Freq {
			t.Fatalf("%s: path %d differs", name, i)
		}
	}
	if !reflect.DeepEqual(fp.Trace, sp.Trace) {
		t.Fatalf("%s: path traces differ", name)
	}
	if !reflect.DeepEqual(fp.BlockCounts, sp.BlockCounts) {
		t.Fatalf("%s: block counts differ", name)
	}
	if !reflect.DeepEqual(fp.EdgeCounts, sp.EdgeCounts) {
		t.Fatalf("%s: edge counts differ", name)
	}
}

// TestCaptureFastMatchesHooked exercises the three biggest captures at a
// deeper iteration count than the whole-suite sweep below.
func TestCaptureFastMatchesHooked(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
	}{
		{"456.hmmer", 800},
		{"164.gzip", 800},
		{"183.equake", 500},
	} {
		w := workloads.ByName(tc.name)
		if w == nil {
			t.Fatalf("unknown workload %s", tc.name)
		}
		assertCaptureEquivalent(t, w, tc.n, true)
	}
}

// TestCaptureFastMatchesHookedAllWorkloads runs the batched-vs-hooked
// differential over the entire workload suite at a modest iteration count,
// so every block shape in the corpus (wide phis, dense float kernels,
// irregular control flow) crosses the packet fast path at least once.
// Workloads that cannot take the compiled fast path (444.namd) still run:
// there the comparison pins the hooked fallback against itself, which keeps
// the test from silently going vacuous if the fast-path predicate changes.
func TestCaptureFastMatchesHookedAllWorkloads(t *testing.T) {
	all := workloads.All()
	if len(all) < 29 {
		t.Fatalf("workload suite shrank: %d workloads, want >= 29", len(all))
	}
	for _, w := range all {
		assertCaptureEquivalent(t, w, 400, w.Name != "444.namd")
	}
}
