package sim

import (
	"fmt"

	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/spec"
)

// FunctionalResult summarizes a functional offload run.
type FunctionalResult struct {
	Ret         uint64
	Invocations int64
	Successes   int64
	Rollbacks   int64
	FrameOps    int64 // dynamic instructions executed inside frames
	HostBlocks  int64 // blocks executed on the host path
}

// FunctionalOffload executes the program *functionally* with the offload
// target in the loop: whenever control reaches the target region's entry
// and the predictor says offload, the region runs through the speculative
// frame executor (undo log and all); a guard failure rolls memory back and
// the host re-executes the region block by block. The final return value
// and memory must be bit-identical to a pure host run — the correctness
// contract of the paper's software speculation, checked end to end by the
// test suite.
func FunctionalOffload(f *ir.Function, args []uint64, mem []uint64, tgt *Target, pred spec.Predictor, maxBlocks int64) (FunctionalResult, error) {
	var res FunctionalResult
	if len(args) != f.NumParams() {
		return res, fmt.Errorf("sim: %s wants %d args, got %d", f.Name, f.NumParams(), len(args))
	}
	if maxBlocks <= 0 {
		maxBlocks = 1 << 28
	}
	regs := make([]uint64, len(f.RegType))
	for i, a := range args {
		regs[f.Param(i)] = a
	}
	ht := &spec.HistoryTracker{}
	hooks := ht.Hooks()
	// One scratch buffer set for the whole run keeps the per-block stepper
	// allocation-free.
	var bx interp.BlockExec

	cur := f.Entry()
	var prev *ir.Block
	var steps int64
	for {
		steps++
		if steps > maxBlocks {
			return res, fmt.Errorf("sim: functional offload exceeded %d blocks", maxBlocks)
		}
		if cur == tgt.Region.Entry && pred.Predict(ht.H) {
			res.Invocations++
			hist := ht.H
			// The frame receives a copy of the register file: no
			// architectural state is shared with the host (Section V), so a
			// failed frame leaks nothing — memory reverts via the undo log
			// and registers were never the frame's to change.
			fregs := append([]uint64(nil), regs...)
			out, err := spec.ExecuteFrame(tgt.Frame, fregs, mem, prev)
			if err != nil {
				return res, err
			}
			res.FrameOps += int64(out.Ops)
			pred.Update(hist, out.Success)
			if out.Success {
				res.Successes++
				if out.Returned {
					res.Ret = out.Ret
					return res, nil
				}
				// Commit live values back to the host: everything the frame
				// defined, plus the region entry phis it resolved.
				for r := range tgt.Frame.Def {
					regs[r] = fregs[r]
				}
				for _, phi := range tgt.Region.Entry.Phis() {
					regs[phi.Dst] = fregs[phi.Dst]
				}
				prev, cur = out.Prev, out.Next
				continue
			}
			// Memory was rolled back inside ExecuteFrame; the host
			// re-executes the region (and whatever follows) block by block.
			res.Rollbacks++
		}
		next, ret, returned, err := bx.Step(f, cur, prev, regs, mem, hooks)
		if err != nil {
			return res, err
		}
		res.HostBlocks++
		if returned {
			res.Ret = ret
			return res, nil
		}
		prev, cur = cur, next
	}
}
