package sim

import (
	"needle/internal/ir"
	"needle/internal/mem"
	"needle/internal/ooo"
	"needle/internal/pm"
	"needle/internal/profile"
)

// TraceData is the pure serializable core of a captured Trace: the profile
// counts plus the host-model observations, with no pointers into the traced
// function and no analysis manager. TraceFromData rehydrates a Trace from it
// against a (re-parsed or rebuilt) function.
type TraceData struct {
	Profile *profile.Data
	Occ     []Occurrence

	BaselineCycles   int64
	BaselineEnergyPJ float64
	Mix              ooo.OpMix
	CacheStats       mem.Stats
}

// Data extracts the serializable core of the trace.
func (tr *Trace) Data() *TraceData {
	return &TraceData{
		Profile:          tr.Profile.Data(),
		Occ:              tr.Occ,
		BaselineCycles:   tr.BaselineCycles,
		BaselineEnergyPJ: tr.BaselineEnergyPJ,
		Mix:              tr.Mix,
		CacheStats:       tr.CacheStats,
	}
}

// TraceFromData rehydrates a Trace: the profile is rebuilt against f (see
// profile.FromData) and the trace adopts am as its analysis manager, exactly
// as a live Capture would. f must be structurally identical to the function
// the trace was captured from.
func TraceFromData(am *pm.Manager, f *ir.Function, d *TraceData) (*Trace, error) {
	am = pm.Ensure(am)
	fp, err := profile.FromData(am, f, d.Profile)
	if err != nil {
		return nil, err
	}
	return &Trace{
		Profile:          fp,
		Occ:              d.Occ,
		AM:               am,
		BaselineCycles:   d.BaselineCycles,
		BaselineEnergyPJ: d.BaselineEnergyPJ,
		Mix:              d.Mix,
		CacheStats:       d.CacheStats,
	}, nil
}
