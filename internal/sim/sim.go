// Package sim is the whole-system simulator of Section VI: it runs a
// workload once on the modeled host to capture a cycle- and history-
// annotated path trace, then evaluates offload targets (BL-Path or Braid
// frames on the CGRA) against that trace under different invocation
// predictors. The evaluation follows the paper's conservative model: guard
// failures are detected only at the end of an invocation, the undo log is
// rolled back, and the host re-executes the failed region.
package sim

import (
	"fmt"

	"needle/internal/cgra"
	"needle/internal/energy"
	"needle/internal/frame"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/mem"
	"needle/internal/obs"
	"needle/internal/ooo"
	"needle/internal/pm"
	"needle/internal/profile"
	"needle/internal/region"
	"needle/internal/spec"
)

// Observability counters (no-ops until obs.Enable): baseline captures and
// the modeled L1 behaviour they observed.
var (
	obsCaptures   = obs.GetCounter("sim.captures")
	obsL1Hits     = obs.GetCounter("sim.cache.l1.hits")
	obsL1Misses   = obs.GetCounter("sim.cache.l1.misses")
	obsHostCycles = obs.GetCounter("sim.host.cycles")
)

// Config gathers the hardware parameters.
type Config struct {
	OOO      ooo.Config
	Mem      mem.Config
	CGRA     cgra.Config
	CPU      energy.CPU
	Frame    frame.Options
	HistBits uint
	MaxSteps int64
}

// DefaultConfig returns the Table V system.
func DefaultConfig() Config {
	return Config{
		OOO:      ooo.DefaultConfig(),
		Mem:      mem.Config{},
		CGRA:     cgra.DefaultConfig(),
		CPU:      energy.DefaultCPU(),
		HistBits: 12,
	}
}

// Occurrence is one executed Ball-Larus path instance with its host cost
// and the branch history observed before it began.
type Occurrence struct {
	Path   int64
	Hist   uint64
	Cycles int64
}

// Trace is the captured baseline execution.
type Trace struct {
	Profile *profile.FunctionProfile
	Occ     []Occurrence

	// AM is the analysis manager the capture used; target construction and
	// evaluation against this trace reuse it, so dominators/liveness for the
	// traced function are computed once per trace.
	AM *pm.Manager

	BaselineCycles   int64
	BaselineEnergyPJ float64
	Mix              ooo.OpMix
	CacheStats       mem.Stats
}

// Capture runs the workload function once on the modeled host, collecting
// the path profile, per-occurrence cycle attribution, branch history
// snapshots, and the host energy baseline. Analyses are served by am (nil
// for a one-shot manager); the trace keeps the manager for downstream
// target evaluation.
func Capture(am *pm.Manager, f *ir.Function, args []uint64, memory []uint64, cfg Config) (*Trace, error) {
	am = pm.Ensure(am)
	sp := am.Span().Child("capture")
	defer sp.End()
	obsCaptures.Add(1)
	csp := sp.Child("capture: collector")
	collector, err := profile.NewCollector(am, f, true)
	csp.End()
	if err != nil {
		return nil, err
	}
	cache := mem.New(cfg.Mem)
	model := ooo.New(cfg.OOO, f.NumRegs(), cache)
	hist := &spec.HistoryTracker{}

	tr := &Trace{AM: am}
	var lastCycles int64
	var histBefore uint64
	// The collector's profiler fires OnPath at every completion; snapshot
	// the host cycle counter and history register around each occurrence.
	// Only the primitive snapshots accumulate during the run — the
	// Occurrence structs are assembled afterwards in one exact allocation
	// from the collector's path-completion count (the recorded path trace).
	occCycles := make([]int64, 0, 1024)
	occHists := make([]uint64, 0, 1024)
	hookProfiler(collector, func(id int64) {
		now := model.Cycles()
		occCycles = append(occCycles, now-lastCycles)
		occHists = append(occHists, histBefore)
		lastCycles = now
		histBefore = hist.H
	})

	// The fast path feeds the timing model by block-batched FeedBlock calls
	// over the plan's precompiled timing packets, and the history register by
	// direct updates inside the compiled plan loop; the hook combination
	// below is the general fallback (call-bearing functions, irregular CFG
	// shapes) and produces byte-identical traces — see the capture
	// equivalence tests (single-workload and the 29-workload differential).
	xsp := sp.Child("capture: execute").SetArg("fast", collector.Fast())
	if collector.Fast() {
		if _, err := collector.RunTimed(args, memory, model, &hist.H, cfg.MaxSteps); err != nil {
			xsp.End()
			return nil, err
		}
	} else {
		all := interp.CombineHooks(collector.Hooks(), model.Hooks(), hist.Hooks())
		if _, err := interp.Run(f, args, memory, all, cfg.MaxSteps); err != nil {
			xsp.End()
			return nil, err
		}
	}
	xsp.End()
	fsp := sp.Child("capture: finish")
	fp, err := collector.Finish()
	fsp.End()
	if err != nil {
		return nil, err
	}
	// One exact allocation: the recorded path trace enumerates completed
	// occurrences in order, so its length is the occurrence count.
	if len(fp.Trace) != len(occCycles) {
		return nil, fmt.Errorf("sim: capture recorded %d occurrences but traced %d paths", len(occCycles), len(fp.Trace))
	}
	tr.Occ = make([]Occurrence, len(fp.Trace))
	for i, id := range fp.Trace {
		tr.Occ[i] = Occurrence{Path: id, Hist: occHists[i], Cycles: occCycles[i]}
	}
	tr.Profile = fp
	tr.BaselineCycles = model.Cycles()
	tr.Mix = model.Mix
	tr.CacheStats = cache.Stats
	tr.BaselineEnergyPJ = energy.HostEnergyPJ(cfg.CPU, model.Mix, cache.Stats)
	obsL1Hits.Add(cache.Stats.L1Hits)
	obsL1Misses.Add(cache.Stats.L1Misses)
	obsHostCycles.Add(tr.BaselineCycles)
	return tr, nil
}

// hookProfiler attaches an OnPath callback to a collector's profiler.
// (Kept as a seam so tests can observe attribution.)
func hookProfiler(c *profile.Collector, fn func(id int64)) { c.SetOnPath(fn) }

// Target is an offload candidate: a framed region scheduled on the CGRA,
// plus the acceptance test deciding whether an executed path completes on
// the accelerator.
type Target struct {
	Region *region.Region
	Frame  *frame.Frame
	Sched  *cgra.Sched

	accepts map[int64]bool  // path id -> completes on accelerator
	isOpp   map[int64]bool  // path id -> starts at the region entry
	ops     map[int64]int64 // path id -> dynamic op count, prebuilt so the
	// non-dense Evaluate fallback pays one map load per occurrence instead of
	// a PathByID walk over the profile's path list.
	// Dense mirrors of accepts/isOpp/path-ops indexed by path ID, built when
	// the function's path space is small enough; Evaluate replays traces with
	// one occurrence per path completion, so these replace three map lookups
	// per occurrence. Nil when the ID space is too large.
	acceptsD []bool
	isOppD   []bool
	opsD     []int64
	// fullExec marks non-speculative predicated targets: every frame op
	// executes (and pays energy) on every invocation, with no gating.
	fullExec bool
}

// NewPathTarget builds the offload target for a single BL-Path region.
func NewPathTarget(am *pm.Manager, fp *profile.FunctionProfile, p *profile.Path, cfg Config) (*Target, error) {
	r := region.FromPath(fp.F, p)
	return newTarget(am, fp, r, map[int64]bool{p.ID: true}, cfg)
}

// NewBraidTarget builds the offload target for a braid. Any executed path
// that starts at the braid entry, ends at the braid exit, and stays within
// the braid's blocks completes on the accelerator — including block
// combinations never seen during profiling, the coverage bonus of
// Section IV-B.
func NewBraidTarget(am *pm.Manager, fp *profile.FunctionProfile, br *region.Braid, cfg Config) (*Target, error) {
	accepts := make(map[int64]bool)
	for _, p := range fp.Paths {
		accepts[p.ID] = braidAccepts(br, p)
	}
	return newTarget(am, fp, &br.Region, accepts, cfg)
}

func braidAccepts(br *region.Braid, p *profile.Path) bool {
	if len(p.Blocks) == 0 {
		return false
	}
	if p.Blocks[0] != br.Entry || p.Blocks[len(p.Blocks)-1] != br.Exit {
		return false
	}
	for _, b := range p.Blocks {
		if !br.Set[b] {
			return false
		}
	}
	return true
}

func newTarget(am *pm.Manager, fp *profile.FunctionProfile, r *region.Region, accepts map[int64]bool, cfg Config) (*Target, error) {
	fr, err := frame.Build(am, r, cfg.Frame)
	if err != nil {
		return nil, err
	}
	t := &Target{
		Region:  r,
		Frame:   fr,
		Sched:   cgra.Schedule(fr, cfg.CGRA),
		accepts: accepts,
		isOpp:   make(map[int64]bool),
		ops:     make(map[int64]int64, len(fp.Paths)),
	}
	for _, p := range fp.Paths {
		t.isOpp[p.ID] = len(p.Blocks) > 0 && p.Blocks[0] == r.Entry
		t.ops[p.ID] = p.Ops
	}
	t.buildDense(fp)
	return t, nil
}

// buildDense mirrors the accepts/isOpp/path-ops maps into arrays indexed by
// path ID when the ID space is small enough; Evaluate replays one trace
// occurrence per path completion, so this turns three map lookups per
// occurrence into array loads.
func (t *Target) buildDense(fp *profile.FunctionProfile) {
	t.opsD = fp.DenseOps(interp.MaxDensePaths) // shared across targets
	if t.opsD == nil {
		return
	}
	n := fp.DAG.NumPaths()
	t.acceptsD = make([]bool, n)
	t.isOppD = make([]bool, n)
	for id, v := range t.accepts {
		t.acceptsD[id] = v
	}
	for id, v := range t.isOpp {
		t.isOppD[id] = v
	}
}

// Result is the outcome of evaluating one target under one predictor.
type Result struct {
	Predictor string

	BaselineCycles int64
	OffloadCycles  int64
	// Improvement is the fractional cycle reduction (Figure 9's metric;
	// negative values are degradations).
	Improvement float64

	Opportunities int64 // region entries seen
	Invocations   int64 // times the predictor offloaded
	Successes     int64 // invocations that committed
	// Precision is Successes/Invocations (the predictor precision shown on
	// Figure 9's upper axis).
	Precision float64

	BaselineEnergyPJ float64
	OffloadEnergyPJ  float64
	// EnergyReduction is the net fractional energy saving (Figure 10).
	EnergyReduction float64

	// Coverage is the fraction of baseline dynamic instructions the
	// accelerated occurrences account for.
	Coverage float64
}

// Evaluate replays the captured trace, offloading accepted occurrences of
// the target under the given predictor. Passing a *spec.Oracle predictor
// evaluates the oracle bound (invoke exactly when the invocation would
// succeed).
//
// Consecutive successful invocations pipeline on the resident fabric at the
// schedule's initiation interval; a failure, a declined invocation, or an
// occurrence of a different region drains the pipeline, and the next
// invocation pays the full frame latency again. Failures additionally pay
// the rollback walk and the host's re-execution of the region, per the
// paper's conservative Section VI-A model.
func Evaluate(tr *Trace, tgt *Target, pred spec.Predictor, cfg Config) Result {
	res := Result{
		Predictor:        pred.Name(),
		BaselineCycles:   tr.BaselineCycles,
		BaselineEnergyPJ: tr.BaselineEnergyPJ,
	}
	if tr.BaselineCycles == 0 {
		return res
	}
	perOpPJ := energy.PerOpPJ(cfg.CPU, tr.Mix, tr.CacheStats)

	oracle, isOracle := pred.(*spec.Oracle)
	// The replay loop calls the predictor twice per opportunity; the common
	// predictors are resolved to concrete types here so those calls inline
	// instead of dispatching through the interface per occurrence.
	histPred, _ := pred.(*spec.History)
	var cycles int64
	energyPJ := tr.BaselineEnergyPJ // adjusted incrementally
	var acceleratedWeight int64
	reconfigured := false
	inRun := false

	dense := tgt.isOppD != nil
	for _, occ := range tr.Occ {
		opp := false
		if dense {
			opp = tgt.isOppD[occ.Path]
		} else {
			opp = tgt.isOpp[occ.Path]
		}
		if !opp {
			cycles += occ.Cycles
			inRun = false
			continue
		}
		res.Opportunities++
		var success bool
		if dense {
			success = tgt.acceptsD[occ.Path]
		} else {
			success = tgt.accepts[occ.Path]
		}
		if isOracle {
			oracle.SetNext(success)
		}
		var invoke bool
		switch {
		case histPred != nil:
			invoke = histPred.Predict(occ.Hist)
		case isOracle:
			invoke = success
		default:
			invoke = pred.Predict(occ.Hist)
		}
		if invoke {
			res.Invocations++
			if !reconfigured {
				cycles += cfg.CGRA.ReconfigCycles
				reconfigured = true
			}
			occOps := int64(0)
			if dense {
				occOps = tgt.opsD[occ.Path]
			} else {
				occOps = tgt.ops[occ.Path]
			}
			if success {
				res.Successes++
				if inRun {
					cycles += tgt.Sched.II
				} else {
					cycles += tgt.Sched.InvokeCycles()
					energyPJ += tgt.Sched.TransferPJ
					inRun = true
				}
				// The host stops paying for these ops; the accelerator pays
				// its own, with predicated-off frame ops gated (speculative
				// frames) or fully powered (non-speculative hyperblocks).
				execOps := occOps
				if tgt.fullExec {
					execOps = int64(len(tgt.Frame.Ops))
				}
				energyPJ -= float64(occOps) * perOpPJ
				energyPJ += tgt.Sched.InvokeEnergyPJ(execOps)
				acceleratedWeight += occOps
			} else {
				// Wasted accelerator work, rollback, then host re-execution.
				cycles += tgt.Sched.FailCycles() + occ.Cycles
				energyPJ += tgt.Sched.FailEnergyPJ() + tgt.Sched.TransferPJ
				inRun = false
			}
		} else {
			cycles += occ.Cycles
			inRun = false
		}
		switch {
		case histPred != nil:
			histPred.Update(occ.Hist, success)
		case isOracle: // no-op update
		default:
			pred.Update(occ.Hist, success)
		}
	}

	res.OffloadCycles = cycles
	res.Improvement = float64(tr.BaselineCycles-cycles) / float64(tr.BaselineCycles)
	res.OffloadEnergyPJ = energyPJ
	res.EnergyReduction = energy.Reduction(tr.BaselineEnergyPJ, energyPJ)
	if res.Invocations > 0 {
		res.Precision = float64(res.Successes) / float64(res.Invocations)
	}
	if tr.Profile.TotalWeight > 0 {
		res.Coverage = float64(acceleratedWeight) / float64(tr.Profile.TotalWeight)
	}
	return res
}

// EvaluateHottestPath is a convenience wrapper: oracle and history results
// for the hottest BL-Path.
func EvaluateHottestPath(tr *Trace, cfg Config) (oracle, history Result, err error) {
	hot := tr.Profile.HottestPath()
	if hot == nil {
		return oracle, history, fmt.Errorf("sim: no executed paths")
	}
	tgt, err := NewPathTarget(tr.AM, tr.Profile, hot, cfg)
	if err != nil {
		return oracle, history, err
	}
	oracle = Evaluate(tr, tgt, &spec.Oracle{}, cfg)
	history = Evaluate(tr, tgt, spec.NewHistory(cfg.HistBits), cfg)
	return oracle, history, nil
}

// EvaluateHottestBraid evaluates the top-ranked braid under the invocation
// history table. Per Section V, prediction matters less for braids than for
// paths (fewer guards), and workloads whose braid never fails effectively
// degenerate to the always-invoke policy the paper reports for nine
// applications.
func EvaluateHottestBraid(tr *Trace, cfg Config) (Result, *region.Braid, error) {
	braids := region.BuildBraids(tr.Profile, 0)
	if len(braids) == 0 {
		return Result{}, nil, fmt.Errorf("sim: no braids")
	}
	br := braids[0]
	tgt, err := NewBraidTarget(tr.AM, tr.Profile, br, cfg)
	if err != nil {
		return Result{}, nil, err
	}
	return Evaluate(tr, tgt, spec.NewHistory(cfg.HistBits), cfg), br, nil
}

// EvaluateBraidAlways evaluates the top braid under always-invoke, the
// policy the paper's nine fully-predictable applications use; kept for the
// predictor ablation.
func EvaluateBraidAlways(tr *Trace, cfg Config) (Result, *region.Braid, error) {
	braids := region.BuildBraids(tr.Profile, 0)
	if len(braids) == 0 {
		return Result{}, nil, fmt.Errorf("sim: no braids")
	}
	br := braids[0]
	tgt, err := NewBraidTarget(tr.AM, tr.Profile, br, cfg)
	if err != nil {
		return Result{}, nil, err
	}
	return Evaluate(tr, tgt, spec.Always{}, cfg), br, nil
}

// Candidate pairs an offload decision with its evaluation.
type Candidate struct {
	Result Result
	Braid  *region.Braid // nil for the no-offload baseline
	Policy string        // "history", "always", or "none"
}

// SelectBraid reproduces Needle's filter-and-rank stage for braids: it
// evaluates the top-k braids under both invocation policies and returns the
// candidate with the fewest cycles, falling back to no offload when nothing
// profits (Section IV-B: "NEEDLE provides a methodical framework to reason
// about this tradeoff").
func SelectBraid(tr *Trace, cfg Config, topK int) (Candidate, error) {
	braids := region.BuildBraids(tr.Profile, 0)
	if len(braids) == 0 {
		return Candidate{}, fmt.Errorf("sim: no braids")
	}
	if topK <= 0 {
		topK = 3
	}
	best := Candidate{
		Result: Result{
			Predictor:        "none",
			BaselineCycles:   tr.BaselineCycles,
			OffloadCycles:    tr.BaselineCycles,
			BaselineEnergyPJ: tr.BaselineEnergyPJ,
			OffloadEnergyPJ:  tr.BaselineEnergyPJ,
		},
		Policy: "none",
	}
	for i := 0; i < topK && i < len(braids); i++ {
		br := braids[i]
		tgt, err := NewBraidTarget(tr.AM, tr.Profile, br, cfg)
		if err != nil {
			continue // e.g. unframeable region; skip candidate
		}
		for _, pred := range []spec.Predictor{spec.NewHistory(cfg.HistBits), spec.Always{}} {
			res := Evaluate(tr, tgt, pred, cfg)
			// A candidate must not trade energy for speed: offload exists to
			// save energy (Section I), so the filter requires both axes to
			// be no worse than the host baseline.
			if res.OffloadEnergyPJ > res.BaselineEnergyPJ {
				continue
			}
			if res.OffloadCycles < best.Result.OffloadCycles {
				best = Candidate{Result: res, Braid: br, Policy: pred.Name()}
			}
		}
	}
	return best, nil
}

// SelectPath is the path-side filter: it evaluates the top-k paths under the
// history predictor (plus the oracle bound for reporting) and returns the
// best history-policy candidate, falling back to no offload.
func SelectPath(tr *Trace, cfg Config, topK int) (history, oracle Result, err error) {
	if len(tr.Profile.Paths) == 0 {
		return history, oracle, fmt.Errorf("sim: no executed paths")
	}
	if topK <= 0 {
		topK = 3
	}
	hot := tr.Profile.HottestPath()
	tgt, err := NewPathTarget(tr.AM, tr.Profile, hot, cfg)
	if err != nil {
		return history, oracle, err
	}
	oracle = Evaluate(tr, tgt, &spec.Oracle{}, cfg)
	history = Evaluate(tr, tgt, spec.NewHistory(cfg.HistBits), cfg)
	for i := 1; i < topK && i < len(tr.Profile.Paths); i++ {
		t2, err := NewPathTarget(tr.AM, tr.Profile, tr.Profile.Paths[i], cfg)
		if err != nil {
			continue
		}
		if r := Evaluate(tr, t2, spec.NewHistory(cfg.HistBits), cfg); r.OffloadCycles < history.OffloadCycles {
			history = r
		}
		if r := Evaluate(tr, t2, &spec.Oracle{}, cfg); r.OffloadCycles < oracle.OffloadCycles {
			oracle = r
		}
	}
	return history, oracle, nil
}

// NewHyperblockTarget builds the non-speculative predicated baseline of
// Figure 2's middle column: the hyperblock executes all its (predicated)
// operations on every invocation, cannot fail or roll back, and is invoked
// only for flows it fully contains — everything else stays on the host.
func NewHyperblockTarget(am *pm.Manager, fp *profile.FunctionProfile, hb *region.Hyperblock, cfg Config) (*Target, error) {
	accepts := make(map[int64]bool)
	for _, p := range fp.Paths {
		ok := len(p.Blocks) > 0 && p.Blocks[0] == hb.Entry
		for _, b := range p.Blocks {
			if !hb.Set[b] {
				ok = false
				break
			}
		}
		accepts[p.ID] = ok
	}
	fr, err := frame.Build(am, &hb.Region, cfg.Frame)
	if err != nil {
		return nil, err
	}
	t := &Target{
		Region:  &hb.Region,
		Frame:   fr,
		Sched:   cgra.Schedule(fr, cfg.CGRA),
		accepts: accepts,
		// Only covered flows are offload opportunities: uncovered paths run
		// on the host with no penalty (non-speculative regions exit cleanly).
		isOpp:    accepts,
		ops:      make(map[int64]int64, len(fp.Paths)),
		fullExec: true,
	}
	for _, p := range fp.Paths {
		t.ops[p.ID] = p.Ops
	}
	t.buildDense(fp)
	return t, nil
}

// EvaluateHyperblock evaluates the non-speculative hyperblock baseline
// seeded at the hottest path's entry, under always-invoke (it cannot fail).
func EvaluateHyperblock(tr *Trace, cfg Config, coldFraction float64) (Result, error) {
	hot := tr.Profile.HottestPath()
	if hot == nil {
		return Result{}, fmt.Errorf("sim: no executed paths")
	}
	hb := region.BuildTunedHyperblock(tr.AM, tr.Profile, hot.Blocks[0], coldFraction, 0.05)
	tgt, err := NewHyperblockTarget(tr.AM, tr.Profile, hb, cfg)
	if err != nil {
		return Result{}, err
	}
	return Evaluate(tr, tgt, spec.Always{}, cfg), nil
}
