// Package ooo is the host-core timing model: a streaming, dependence-based
// out-of-order scheduler with the Table V parameters (4-wide issue, 96-entry
// ROB, 6 ALUs, 2 FPUs, perfect branch prediction). It consumes the dynamic
// instruction stream from interpreter hooks and reports the cycle count the
// modeled core would need — the same first-order model the paper's
// macsim-based simulator provides.
package ooo

import (
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/mem"
)

// Config holds the core parameters.
type Config struct {
	Width int // fetch/issue width per cycle
	ROB   int // reorder-buffer entries
	ALUs  int // integer units
	FPUs  int // floating-point units

	// RealBranchPredictor disables the paper's perfect-branch-prediction
	// assumption (Table V) and models a gshare-style predictor with the
	// given misprediction penalty. Kept for the ablation benchmarks; the
	// default evaluation follows the paper and leaves this off.
	RealBranchPredictor bool
	BPBits              uint  // history bits indexing the predictor table
	MispredictPenalty   int64 // pipeline refill cycles per misprediction
}

// DefaultConfig returns the Table V host core (perfect branch prediction).
func DefaultConfig() Config {
	return Config{Width: 4, ROB: 96, ALUs: 6, FPUs: 2, BPBits: 12, MispredictPenalty: 12}
}

// Latency returns the execution latency of an opcode on the host core,
// excluding memory (loads take their latency from the cache model).
func Latency(op ir.Op) int64 {
	switch op {
	case ir.OpMul:
		return 3
	case ir.OpDiv, ir.OpRem:
		return 12
	case ir.OpFAdd, ir.OpFSub:
		return 4
	case ir.OpFMul:
		return 5
	case ir.OpFDiv, ir.OpSqrt:
		return 12
	case ir.OpExp, ir.OpLog:
		return 20
	case ir.OpSIToFP, ir.OpFPToSI:
		return 4
	}
	return 1
}

// Per-opcode class and latency tables: Feed runs once per dynamic
// instruction, so the predicates and the Latency switch are folded into two
// array lookups. Sized generously past the last opcode (OpRet).
const (
	classInt = iota
	classFP
	classMem
)

var (
	opClass [64]uint8
	opLat   [64]int64
)

func init() {
	for op := ir.Op(0); op <= ir.OpRet; op++ {
		opLat[op] = Latency(op)
		switch {
		case op.IsMemory():
			opClass[op] = classMem
		case op.IsFloat():
			opClass[op] = classFP
		}
	}
}

// OpMix counts executed instructions by class, for the energy model.
type OpMix struct {
	Int   int64 // integer ALU ops (compares, moves, branches included)
	FP    int64 // floating-point ops
	Mem   int64 // loads and stores
	Total int64
}

// Model is the streaming timing model. Feed it the dynamic instruction
// stream (via Hooks or direct Feed calls) and read Cycles at the end.
type Model struct {
	cfg   Config
	cache *mem.Cache

	regReady []int64 // cycle each register's value becomes available
	aluFree  []int64 // next free cycle per ALU
	fpuFree  []int64 // next free cycle per FPU
	rob      []int64 // ring buffer of finish times of in-flight instrs
	robHead  int

	count    int64 // instructions fed
	fetch    int64 // count / Width, maintained incrementally
	fetchRem int64 // count % Width
	lastDone int64 // max finish time
	pendAddr int64 // address captured by the Mem hook for the next instr

	// Branch predictor state (RealBranchPredictor only).
	bpTable    []int8
	bpHistory  uint64
	stallUntil int64 // fetch stalls until this cycle after a misprediction
	lastBranch int64 // finish time of the most recent conditional branch

	Mix OpMix

	// Mispredicts counts wrong predictions when the real predictor is on.
	Mispredicts int64
	Branches    int64
}

// New creates a model over a register file of the given size, using the
// cache for load latencies. A nil cache gets the default hierarchy.
func New(cfg Config, numRegs int, cache *mem.Cache) *Model {
	if cfg.Width <= 0 {
		cfg = DefaultConfig()
	}
	if cache == nil {
		cache = mem.New(mem.Config{})
	}
	m := &Model{
		cfg:      cfg,
		cache:    cache,
		regReady: make([]int64, numRegs+1),
		aluFree:  make([]int64, cfg.ALUs),
		fpuFree:  make([]int64, cfg.FPUs),
		rob:      make([]int64, cfg.ROB),
	}
	if cfg.RealBranchPredictor {
		bits := cfg.BPBits
		if bits == 0 || bits > 20 {
			bits = 12
		}
		m.bpTable = make([]int8, 1<<bits)
		for i := range m.bpTable {
			m.bpTable[i] = 2
		}
	}
	return m
}

// Cache returns the cache model in use.
func (m *Model) Cache() *mem.Cache { return m.cache }

// Hooks returns interpreter hooks that stream execution into the model.
func (m *Model) Hooks() *interp.Hooks {
	return &interp.Hooks{
		Mem:   func(_ *ir.Instr, addr int64) { m.pendAddr = addr },
		Instr: func(in *ir.Instr) { m.Feed(in, m.pendAddr) },
		Edge: func(from, to *ir.Block) {
			t := from.Term()
			if t == nil || t.Op != ir.OpCondBr {
				return
			}
			m.NoteBranch(t.Blocks[0] == to)
		},
	}
}

// NoteBranch informs the (optional) branch predictor of a conditional
// branch outcome; call it right after feeding the branch instruction.
func (m *Model) NoteBranch(taken bool) {
	if m.bpTable == nil {
		return
	}
	m.Branches++
	idx := m.bpHistory & uint64(len(m.bpTable)-1)
	predictTaken := m.bpTable[idx] >= 2
	if predictTaken != taken {
		m.Mispredicts++
		// Fetch refills after the branch resolves.
		if t := m.lastBranch + m.cfg.MispredictPenalty; t > m.stallUntil {
			m.stallUntil = t
		}
	}
	if taken {
		if m.bpTable[idx] < 3 {
			m.bpTable[idx]++
		}
	} else if m.bpTable[idx] > 0 {
		m.bpTable[idx]--
	}
	m.bpHistory = m.bpHistory<<1 | b2u(taken)
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// Feed schedules one dynamic instruction. addr is the effective word
// address for memory operations (ignored otherwise).
func (m *Model) Feed(in *ir.Instr, addr int64) {
	// fetch is count/Width, maintained incrementally to keep the integer
	// division out of the per-instruction path.
	fetch := m.fetch
	m.fetchRem++
	if m.fetchRem == int64(m.cfg.Width) {
		m.fetchRem = 0
		m.fetch++
	}
	m.count++
	m.Mix.Total++

	// ROB constraint: this instruction needs the slot of the instruction
	// ROB-entries older, which must have completed.
	slot := m.robHead
	windowReady := m.rob[slot]

	ready := fetch
	if windowReady > ready {
		ready = windowReady
	}
	if m.stallUntil > ready {
		ready = m.stallUntil
	}
	regReady := m.regReady
	for _, r := range in.Args {
		if r != ir.NoReg && int(r) < len(regReady) && regReady[r] > ready {
			ready = regReady[r]
		}
	}

	var lat int64
	var pool []int64
	switch opClass[in.Op] {
	case classMem:
		m.Mix.Mem++
		lat = m.cache.Access(addr)
		pool = m.aluFree // address generation occupies an ALU slot
	case classFP:
		m.Mix.FP++
		lat = opLat[in.Op]
		pool = m.fpuFree
	default:
		m.Mix.Int++
		lat = opLat[in.Op]
		pool = m.aluFree
	}

	// Pick the earliest-free unit (units are pipelined: busy for 1 cycle).
	best, bestT := 0, pool[0]
	for i := 1; i < len(pool); i++ {
		if t := pool[i]; t < bestT {
			best, bestT = i, t
		}
	}
	issue := ready
	if bestT > issue {
		issue = bestT
	}
	pool[best] = issue + 1
	finish := issue + lat

	if in.Op.HasDest() && int(in.Dst) < len(m.regReady) {
		m.regReady[in.Dst] = finish
	}
	m.rob[slot] = finish
	m.robHead = slot + 1
	if m.robHead == len(m.rob) {
		m.robHead = 0
	}
	if finish > m.lastDone {
		m.lastDone = finish
	}
	if in.Op == ir.OpCondBr {
		m.lastBranch = finish
	}
}

// FeedBlock schedules the first n entries of a precompiled timing packet —
// the batched equivalent of n sequential Feed calls, and the entry point the
// capture fast path uses once per executed block. addrs holds the effective
// word addresses of the packet's memory entries in order (trailing extras
// are ignored). All per-instruction state (fetch group, ROB slot, unit
// pools, register-ready times) is walked with plain array indexing and
// hoisted locals; no *ir.Instr is touched. Interleaving FeedBlock with Feed
// and NoteBranch is legal — the hooked per-instruction path is the
// equivalence oracle the ooo packet tests pin this against.
func (m *Model) FeedBlock(pk *interp.TimingPacket, n int, addrs []int64) {
	if n <= 0 {
		return
	}
	regReady := m.regReady
	aluFree, fpuFree := m.aluFree, m.fpuFree
	rob := m.rob
	robHead := m.robHead
	fetch, fetchRem, width := m.fetch, m.fetchRem, int64(m.cfg.Width)
	lastDone := m.lastDone
	stall := m.stallUntil
	ents := pk.Ent[:n]
	var nFP, nMem int64
	mi := 0
	var finish int64
	for i := range ents {
		e := &ents[i]
		ready := fetch
		fetchRem++
		if fetchRem == width {
			fetchRem = 0
			fetch++
		}
		// ROB constraint: the slot of the instruction ROB-entries older.
		if w := rob[robHead]; w > ready {
			ready = w
		}
		if stall > ready {
			ready = stall
		}
		// Dependences: the two inlined sources cover everything but wide phi
		// moves, which spill to the packet's overflow span. Absent slots
		// hold NoReg (register 0), whose ready time is pinned at zero — so
		// both reads are unconditional and the max is exact without
		// branching on the source count.
		if r := e.Src0; int(r) < len(regReady) && regReady[r] > ready {
			ready = regReady[r]
		}
		if r := e.Src1; int(r) < len(regReady) && regReady[r] > ready {
			ready = regReady[r]
		}
		if e.NSrc > 2 {
			offs, srcs := pk.SrcOff, pk.Srcs
			for k, end := offs[i]+2, offs[i+1]; k < end; k++ {
				if r := srcs[k]; int(r) < len(regReady) && regReady[r] > ready {
					ready = regReady[r]
				}
			}
		}

		// Unit class: bit 0 selects the pool (Int=0, Mem=2 -> ALUs;
		// FP=1 -> FPUs), and only memory ops leave the static latency table
		// for the cache model.
		var lat int64
		pool := aluFree
		if e.Class&1 != 0 {
			nFP++
			pool = fpuFree
		}
		if e.Class == interp.TimingClassMem {
			nMem++
			lat = m.cache.Access(addrs[mi])
			mi++
		} else {
			lat = opLat[e.Op]
		}

		// Earliest-free-unit argmin, unrolled for the Table V pool sizes
		// (6 ALUs, 2 FPUs); ties pick the lowest index, as the generic scan
		// does.
		var best int
		var bestT int64
		switch len(pool) {
		case 6:
			best, bestT = 0, pool[0]
			if t := pool[1]; t < bestT {
				best, bestT = 1, t
			}
			if t := pool[2]; t < bestT {
				best, bestT = 2, t
			}
			if t := pool[3]; t < bestT {
				best, bestT = 3, t
			}
			if t := pool[4]; t < bestT {
				best, bestT = 4, t
			}
			if t := pool[5]; t < bestT {
				best, bestT = 5, t
			}
		case 2:
			best, bestT = 0, pool[0]
			if t := pool[1]; t < bestT {
				best, bestT = 1, t
			}
		default:
			best, bestT = 0, pool[0]
			for u := 1; u < len(pool); u++ {
				if t := pool[u]; t < bestT {
					best, bestT = u, t
				}
			}
		}
		issue := ready
		if bestT > issue {
			issue = bestT
		}
		pool[best] = issue + 1
		finish = issue + lat

		if d := e.Dst; d >= 0 && int(d) < len(regReady) {
			regReady[d] = finish
		}
		rob[robHead] = finish
		robHead++
		if robHead == len(rob) {
			robHead = 0
		}
		if finish > lastDone {
			lastDone = finish
		}
	}
	m.fetch, m.fetchRem = fetch, fetchRem
	m.robHead = robHead
	m.lastDone = lastDone
	m.count += int64(n)
	m.Mix.Total += int64(n)
	m.Mix.FP += nFP
	m.Mix.Mem += nMem
	m.Mix.Int += int64(n) - nFP - nMem
	if pk.CondBr && n == pk.Len() {
		m.lastBranch = finish
	}
}

// Cycles returns the cycle count of everything fed so far.
func (m *Model) Cycles() int64 { return m.lastDone }

// Instructions returns the number of instructions fed.
func (m *Model) Instructions() int64 { return m.count }

// IPC returns retired instructions per cycle.
func (m *Model) IPC() float64 {
	if m.lastDone == 0 {
		return 0
	}
	return float64(m.count) / float64(m.lastDone)
}
