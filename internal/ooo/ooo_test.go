package ooo

import (
	"math/rand"
	"reflect"
	"testing"

	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/mem"
)

// feedN feeds n copies of a simple independent int op.
func indepInstr(dst ir.Reg) *ir.Instr {
	return &ir.Instr{Op: ir.OpConst, Type: ir.I64, Dst: dst, Imm: 1}
}

func TestWidthBoundsIndependentOps(t *testing.T) {
	m := New(DefaultConfig(), 300, nil)
	for i := 0; i < 200; i++ {
		m.Feed(indepInstr(ir.Reg(i+1)), 0)
	}
	// 200 independent 1-cycle ops, 4-wide, 6 ALUs: fetch-limited at 4/cycle
	// -> about 50 cycles.
	if c := m.Cycles(); c < 50 || c > 55 {
		t.Fatalf("cycles = %d, want ~50", c)
	}
	if ipc := m.IPC(); ipc < 3.5 || ipc > 4.1 {
		t.Fatalf("IPC = %v, want ~4", ipc)
	}
}

func TestDependenceChainSerializes(t *testing.T) {
	m := New(DefaultConfig(), 300, nil)
	m.Feed(indepInstr(1), 0)
	for i := 2; i <= 100; i++ {
		in := &ir.Instr{Op: ir.OpAdd, Type: ir.I64, Dst: ir.Reg(i), Args: []ir.Reg{ir.Reg(i - 1), ir.Reg(i - 1)}}
		m.Feed(in, 0)
	}
	// A 100-deep chain of 1-cycle adds takes >= 100 cycles.
	if c := m.Cycles(); c < 100 {
		t.Fatalf("cycles = %d, want >= 100 for a dependence chain", c)
	}
	if ipc := m.IPC(); ipc > 1.05 {
		t.Fatalf("IPC = %v, want ~1", ipc)
	}
}

func TestFPUThroughputLimit(t *testing.T) {
	m := New(DefaultConfig(), 300, nil)
	for i := 0; i < 100; i++ {
		in := &ir.Instr{Op: ir.OpFAdd, Type: ir.F64, Dst: ir.Reg(i + 1), Args: []ir.Reg{ir.Reg(i + 1), ir.Reg(i + 1)}}
		// Self-referential args resolve to ready time of an unset reg: fine,
		// the constraint under test is the 2-FPU structural limit.
		m.Feed(in, 0)
	}
	// 100 FP ops over 2 FPUs >= 50 cycles regardless of independence.
	if c := m.Cycles(); c < 50 {
		t.Fatalf("cycles = %d, want >= 50 (2 FPUs)", c)
	}
	if m.Mix.FP != 100 {
		t.Fatalf("FP mix = %d", m.Mix.FP)
	}
}

func TestROBWindowStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROB = 8
	small := New(cfg, 300, nil)
	big := New(DefaultConfig(), 300, nil)
	// One very slow op followed by many independent ops: the small window
	// must stall behind the slow op.
	for _, m := range []*Model{small, big} {
		slow := &ir.Instr{Op: ir.OpDiv, Type: ir.I64, Dst: 1, Args: []ir.Reg{2, 2}}
		m.Feed(slow, 0)
		for i := 0; i < 64; i++ {
			m.Feed(indepInstr(ir.Reg(i+10)), 0)
		}
	}
	if small.Cycles() <= big.Cycles() {
		t.Fatalf("small ROB (%d cycles) should be slower than big ROB (%d)",
			small.Cycles(), big.Cycles())
	}
}

func TestMemoryLatencyFromCache(t *testing.T) {
	cache := mem.New(mem.Config{})
	m := New(DefaultConfig(), 300, cache)
	ld := &ir.Instr{Op: ir.OpLoad, Type: ir.I64, Dst: 1, Args: []ir.Reg{2}}
	m.Feed(ld, 100) // cold miss: 22 cycles
	use := &ir.Instr{Op: ir.OpAdd, Type: ir.I64, Dst: 3, Args: []ir.Reg{1, 1}}
	m.Feed(use, 0)
	if c := m.Cycles(); c < 23 {
		t.Fatalf("cycles = %d, want >= 23 (load miss + dependent add)", c)
	}
	if m.Mix.Mem != 1 {
		t.Fatalf("mem mix = %d", m.Mix.Mem)
	}
}

func TestHooksDriveModel(t *testing.T) {
	src := `func @k(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [body: r5]
  r4 = cmp.lt r3, r1
  condbr r4, %body, %exit
body:
  r6 = add r3, r3
  r7 = const.i64 1
  r5 = add r3, r7
  br %head
exit:
  ret r3
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig(), f.NumRegs(), nil)
	res, err := interp.Run(f, []uint64{interp.IBits(50)}, nil, m.Hooks(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Instructions() != res.Steps {
		t.Fatalf("model saw %d instrs, interpreter ran %d", m.Instructions(), res.Steps)
	}
	if m.Cycles() <= 0 {
		t.Fatal("no cycles accumulated")
	}
	if m.Mix.Total != res.Steps {
		t.Fatalf("mix total = %d", m.Mix.Total)
	}
}

func TestLatencyTable(t *testing.T) {
	if Latency(ir.OpAdd) != 1 || Latency(ir.OpMul) != 3 || Latency(ir.OpFDiv) != 12 {
		t.Fatal("latency table broken")
	}
	if Latency(ir.OpExp) <= Latency(ir.OpFMul) {
		t.Fatal("transcendentals should be slower than multiplies")
	}
}

func TestRealBranchPredictorCostsCycles(t *testing.T) {
	src := `func @noisy(i64, i64) {
entry:
  r3 = const.i64 0
  br %head
head:
  r4 = phi.i64 [entry: r3] [latch: r5]
  r6 = phi.i64 [entry: r3] [latch: r7]
  r8 = cmp.lt r4, r2
  condbr r8, %body, %exit
body:
  r9 = add r1, r4
  r10 = load.i64 r9
  r11 = const.i64 1
  r12 = and r10, r11
  r13 = cmp.eq r12, r3
  condbr r13, %even, %odd
even:
  r14 = add r6, r10
  br %latch
odd:
  r15 = sub r6, r10
  br %latch
latch:
  r7 = phi.i64 [even: r14] [odd: r15]
  r5 = add r4, r11
  br %head
exit:
  ret r6
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	memory := make([]uint64, 256)
	for i := range memory {
		memory[i] = uint64(i * 2654435761) // noisy parity
	}
	args := []uint64{interp.IBits(0), interp.IBits(256)}

	run := func(cfg Config) *Model {
		m := New(cfg, f.NumRegs(), nil)
		work := make([]uint64, len(memory))
		copy(work, memory)
		if _, err := interp.Run(f, args, work, m.Hooks(), 0); err != nil {
			t.Fatal(err)
		}
		return m
	}
	perfect := run(DefaultConfig())
	realCfg := DefaultConfig()
	realCfg.RealBranchPredictor = true
	real := run(realCfg)

	if real.Mispredicts == 0 {
		t.Fatal("noisy parity should cause mispredictions")
	}
	if real.Cycles() <= perfect.Cycles() {
		t.Fatalf("real BP (%d cycles) should be slower than perfect (%d)", real.Cycles(), perfect.Cycles())
	}
	if perfect.Mispredicts != 0 {
		t.Fatal("perfect BP should not count mispredictions")
	}
}

// randBlock generates a random straight-line instruction sequence ending
// (sometimes) in a conditional branch, using 1-based registers only: the
// packet fast path encodes absent source slots as NoReg (register 0), whose
// ready time must stay pinned at zero.
func randBlock(rng *rand.Rand, numRegs int) ([]*ir.Instr, bool) {
	reg := func() ir.Reg { return ir.Reg(1 + rng.Intn(numRegs)) }
	n := 1 + rng.Intn(12)
	instrs := make([]*ir.Instr, 0, n+1)
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			instrs = append(instrs, &ir.Instr{Op: ir.OpConst, Type: ir.I64, Dst: reg(), Imm: int64(rng.Intn(100))})
		case 1:
			instrs = append(instrs, &ir.Instr{Op: ir.OpMul, Type: ir.I64, Dst: reg(), Args: []ir.Reg{reg(), reg()}})
		case 2:
			instrs = append(instrs, &ir.Instr{Op: ir.OpFMul, Type: ir.F64, Dst: reg(), Args: []ir.Reg{reg(), reg()}})
		case 3:
			instrs = append(instrs, &ir.Instr{Op: ir.OpLoad, Type: ir.I64, Dst: reg(), Args: []ir.Reg{reg()}})
		case 4:
			instrs = append(instrs, &ir.Instr{Op: ir.OpStore, Type: ir.I64, Args: []ir.Reg{reg(), reg()}})
		case 5:
			// Wide phi move: 3+ sources spill to the packet's overflow span.
			args := make([]ir.Reg, 3+rng.Intn(4))
			for j := range args {
				args[j] = reg()
			}
			instrs = append(instrs, &ir.Instr{Op: ir.OpPhi, Type: ir.I64, Dst: reg(), Args: args})
		case 6:
			instrs = append(instrs, &ir.Instr{Op: ir.OpCopy, Type: ir.I64, Dst: reg(), Args: []ir.Reg{reg()}})
		default:
			instrs = append(instrs, &ir.Instr{Op: ir.OpAdd, Type: ir.I64, Dst: reg(), Args: []ir.Reg{reg(), reg()}})
		}
	}
	condBr := rng.Intn(2) == 0
	if condBr {
		instrs = append(instrs, &ir.Instr{Op: ir.OpCondBr, Type: ir.I64, Args: []ir.Reg{reg()}})
	}
	return instrs, condBr
}

// stateOf snapshots every piece of model state the batched path touches.
func stateOf(m *Model) map[string]any {
	return map[string]any{
		"regReady":    append([]int64(nil), m.regReady...),
		"aluFree":     append([]int64(nil), m.aluFree...),
		"fpuFree":     append([]int64(nil), m.fpuFree...),
		"rob":         append([]int64(nil), m.rob...),
		"robHead":     m.robHead,
		"count":       m.count,
		"fetch":       m.fetch,
		"fetchRem":    m.fetchRem,
		"lastDone":    m.lastDone,
		"bpTable":     append([]int8(nil), m.bpTable...),
		"bpHistory":   m.bpHistory,
		"stallUntil":  m.stallUntil,
		"lastBranch":  m.lastBranch,
		"Mix":         m.Mix,
		"Mispredicts": m.Mispredicts,
		"Branches":    m.Branches,
		"cacheStats":  m.cache.Stats,
	}
}

// TestFeedBlockMatchesSequentialFeed pins the batched-vs-hooked equivalence
// contract: feeding a timing packet through FeedBlock must leave the model in
// exactly the state that feeding its instructions one Feed call at a time
// does — including the gshare predictor path, small-ROB stalls, and partial
// packets (a block abandoned mid-body by a fault or step limit).
func TestFeedBlockMatchesSequentialFeed(t *testing.T) {
	configs := []Config{
		DefaultConfig(),
		{Width: 2, ROB: 4, ALUs: 1, FPUs: 1}, // tiny ROB: window stalls
		{Width: 4, ROB: 96, ALUs: 6, FPUs: 2, RealBranchPredictor: true,
			BPBits: 6, MispredictPenalty: 12},
	}
	const numRegs = 24 // small register file: dense dependence chains
	for ci, cfg := range configs {
		rng := rand.New(rand.NewSource(int64(1000 + ci)))
		batched := New(cfg, numRegs, mem.New(mem.Config{}))
		oracle := New(cfg, numRegs, mem.New(mem.Config{}))
		for blk := 0; blk < 300; blk++ {
			instrs, condBr := randBlock(rng, numRegs)
			pk := interp.NewTimingPacket(instrs)
			// Occasionally feed a partial packet, as the capture loop does
			// when a block faults or hits the step limit mid-body.
			n := len(instrs)
			partial := rng.Intn(8) == 0
			if partial {
				n = rng.Intn(len(instrs) + 1)
			}
			addrs := make([]int64, 0, pk.NumMem)
			for _, in := range instrs[:n] {
				if in.Op.IsMemory() {
					addrs = append(addrs, int64(rng.Intn(4096)))
				}
			}
			batched.FeedBlock(pk, n, addrs)
			ai := 0
			for _, in := range instrs[:n] {
				addr := int64(0)
				if in.Op.IsMemory() {
					addr = addrs[ai]
					ai++
				}
				oracle.Feed(in, addr)
			}
			if condBr && !partial {
				taken := rng.Intn(2) == 0
				batched.NoteBranch(taken)
				oracle.NoteBranch(taken)
			}
			if got, want := stateOf(batched), stateOf(oracle); !reflect.DeepEqual(got, want) {
				for k := range got {
					if !reflect.DeepEqual(got[k], want[k]) {
						t.Errorf("config %d block %d: %s diverged: batched %v, oracle %v",
							ci, blk, k, got[k], want[k])
					}
				}
				t.Fatalf("config %d: FeedBlock diverged from sequential Feed at block %d", ci, blk)
			}
		}
		if batched.Cycles() == 0 || batched.Instructions() == 0 {
			t.Fatalf("config %d: degenerate run (cycles=%d instrs=%d)",
				ci, batched.Cycles(), batched.Instructions())
		}
	}
}
