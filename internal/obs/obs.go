// Package obs is the pipeline's observability layer: hierarchical wall-clock
// spans and named counters recorded into a registry, with exporters for the
// Chrome trace-event format (export.go) consumed by Perfetto and
// chrome://tracing, and a plain-text metrics dump.
//
// The registry is a true no-op until enabled: Start returns a nil *Span whose
// methods are all nil-safe, and Counter.Add is a single atomic load and
// branch. Instrumented packages therefore hold package-level *Counter values
// and create spans unconditionally; a run that never calls Enable pays
// effectively nothing (the sweep benchmark gate pins this down).
//
// Spans form a hierarchy two ways: explicitly via (*Span).Child, which also
// inherits the parent's track, and implicitly in the trace rendering, where
// events on the same track nest by time. Tracks map to Chrome trace "thread"
// lanes; the parallel sweep gives each worker its own track so the exported
// timeline shows per-worker utilization directly.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is one finished span as recorded by the registry.
type SpanData struct {
	Name  string
	Track int
	Start time.Duration // offset since the registry was enabled
	Dur   time.Duration
	Args  map[string]any
}

// Counter is a named monotonic counter. Add is atomic and safe for
// concurrent use; when the owning registry is disabled it is a no-op, so
// counters only ever reflect observed runs.
type Counter struct {
	r    *Registry
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n when the registry is enabled.
func (c *Counter) Add(n int64) {
	if c == nil || !c.r.enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry collects spans and counters. The zero value is usable and starts
// disabled; most code uses the process-wide Default registry through the
// package-level functions.
type Registry struct {
	enabled atomic.Bool

	mu     sync.Mutex
	epoch  time.Time
	spans  []SpanData
	tracks map[int]string

	cmu      sync.Mutex
	counters map[string]*Counter
}

var def Registry

// Default returns the process-wide registry the package-level functions
// operate on.
func Default() *Registry { return &def }

// Enable turns recording on. The first Enable (or the first after a Reset)
// fixes the trace epoch that span timestamps are relative to.
func (r *Registry) Enable() {
	r.mu.Lock()
	if r.epoch.IsZero() {
		r.epoch = time.Now()
	}
	r.mu.Unlock()
	r.enabled.Store(true)
}

// Disable turns recording off. Recorded spans and counter values are kept
// until Reset, so exporters can run after Disable.
func (r *Registry) Disable() { r.enabled.Store(false) }

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Reset drops all recorded spans, zeroes every counter, and clears the trace
// epoch. Registered counters keep their identity (package-level *Counter
// values stay valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	r.spans = nil
	r.tracks = nil
	r.epoch = time.Time{}
	r.mu.Unlock()
	r.cmu.Lock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	r.cmu.Unlock()
}

// GetCounter returns the counter registered under name, creating it on first
// use. The same name always yields the same *Counter.
func (r *Registry) GetCounter(name string) *Counter {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{r: r, name: name}
		r.counters[name] = c
	}
	return c
}

// Start begins a root span on track 0. It returns nil when the registry is
// disabled; every *Span method is nil-safe, so callers never check.
func (r *Registry) Start(name string) *Span { return r.start(name, 0) }

// StartOnTrack begins a root span on the given track and names the track's
// lane in the exported timeline after the span.
func (r *Registry) StartOnTrack(name string, track int) *Span {
	s := r.start(name, track)
	if s != nil {
		r.noteTrack(track, name)
	}
	return s
}

// noteTrack names a track's lane after the first span started on it.
func (r *Registry) noteTrack(track int, name string) {
	r.mu.Lock()
	if r.tracks == nil {
		r.tracks = make(map[int]string)
	}
	if _, ok := r.tracks[track]; !ok {
		r.tracks[track] = name
	}
	r.mu.Unlock()
}

func (r *Registry) start(name string, track int) *Span {
	if r == nil || !r.enabled.Load() {
		return nil
	}
	return &Span{r: r, name: name, track: track, start: time.Now()}
}

// Span is one in-flight timed operation. Spans are created by Start/Child,
// optionally annotated with SetArg, and recorded by End. A Span must not be
// shared across goroutines; give concurrent work its own child spans.
type Span struct {
	r     *Registry
	name  string
	track int
	start time.Time
	args  map[string]any
	ended bool
}

// Child begins a span nested under s, inheriting its track. On a nil parent
// it begins a root span on the Default registry, so instrumented layers that
// may run without an enclosing span (e.g. a bare PassManager) still record.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return Default().Start(name)
	}
	return s.r.start(name, s.track)
}

// ChildOnTrack begins a span nested under s on an explicit track, naming the
// track's lane after it (first span wins, as with StartOnTrack). It keeps a
// multi-lane hierarchy — a sweep root with one lane per worker — inside
// whatever registry s records to, so a request-scoped sweep exports per-worker
// utilization exactly like a process-wide one. On a nil parent it falls back
// to StartOnTrack on the Default registry.
func (s *Span) ChildOnTrack(name string, track int) *Span {
	if s == nil {
		return Default().StartOnTrack(name, track)
	}
	c := s.r.start(name, track)
	if c != nil {
		s.r.noteTrack(track, name)
	}
	return c
}

// SetArg attaches a key/value annotation exported with the span. It returns
// s for chaining and is a no-op on nil spans.
func (s *Span) SetArg(key string, v any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]any)
	}
	s.args[key] = v
	return s
}

// End records the span's duration into the registry. End is idempotent and
// nil-safe.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := time.Now()
	r := s.r
	r.mu.Lock()
	r.spans = append(r.spans, SpanData{
		Name:  s.name,
		Track: s.track,
		Start: s.start.Sub(r.epoch),
		Dur:   end.Sub(s.start),
		Args:  s.args,
	})
	r.mu.Unlock()
}

// Spans returns a copy of every recorded span in end order.
func (r *Registry) Spans() []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanData, len(r.spans))
	copy(out, r.spans)
	return out
}

// Counters returns every registered counter sorted by name.
func (r *Registry) Counters() []*Counter {
	r.cmu.Lock()
	out := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		out = append(out, c)
	}
	r.cmu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Package-level conveniences over the Default registry.

// Enable turns on the Default registry.
func Enable() { def.Enable() }

// Disable turns off the Default registry.
func Disable() { def.Disable() }

// Enabled reports whether the Default registry is recording.
func Enabled() bool { return def.Enabled() }

// Reset clears the Default registry's spans and counter values.
func Reset() { def.Reset() }

// GetCounter returns a named counter on the Default registry.
func GetCounter(name string) *Counter { return def.GetCounter(name) }

// Start begins a root span on the Default registry (nil when disabled).
func Start(name string) *Span { return def.Start(name) }

// StartOnTrack begins a root span on the given track of the Default registry.
func StartOnTrack(name string, track int) *Span { return def.StartOnTrack(name, track) }
