package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledRegistryIsNoOp(t *testing.T) {
	var r Registry
	if s := r.Start("root"); s != nil {
		t.Fatal("disabled registry produced a span")
	}
	c := r.GetCounter("x")
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("disabled counter advanced to %d", c.Value())
	}
	// Nil-span methods must all be safe.
	var s *Span
	s.SetArg("k", 1)
	s.Child("child").End()
	s.End()
	if got := r.Spans(); len(got) != 0 {
		t.Fatalf("disabled registry recorded %d spans", len(got))
	}
}

func TestSpansRecordHierarchyAndTracks(t *testing.T) {
	var r Registry
	r.Enable()
	defer r.Disable()

	root := r.StartOnTrack("worker-1", 1)
	child := root.Child("analyze").SetArg("workload", "164.gzip")
	time.Sleep(time.Millisecond)
	child.End()
	child.End() // idempotent
	root.End()

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "analyze" || spans[1].Name != "worker-1" {
		t.Fatalf("unexpected end order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Track != 1 {
		t.Fatalf("child did not inherit track: %d", spans[0].Track)
	}
	if spans[0].Dur <= 0 {
		t.Fatalf("child has no duration: %v", spans[0].Dur)
	}
	if spans[0].Args["workload"] != "164.gzip" {
		t.Fatalf("lost span arg: %v", spans[0].Args)
	}
	// The child must nest inside the parent in time.
	if spans[0].Start < spans[1].Start ||
		spans[0].Start+spans[0].Dur > spans[1].Start+spans[1].Dur {
		t.Fatal("child span does not nest within its parent")
	}
}

func TestCountersAreConcurrencySafe(t *testing.T) {
	var r Registry
	r.Enable()
	defer r.Disable()
	c := r.GetCounter("hits")
	if r.GetCounter("hits") != c {
		t.Fatal("GetCounter is not idempotent")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("got %d, want 8000", c.Value())
	}
}

func TestResetKeepsCounterIdentity(t *testing.T) {
	var r Registry
	r.Enable()
	c := r.GetCounter("n")
	c.Add(3)
	r.Start("s").End()
	r.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset left counter at %d", c.Value())
	}
	if len(r.Spans()) != 0 {
		t.Fatal("reset left spans behind")
	}
	if r.GetCounter("n") != c {
		t.Fatal("reset dropped the registered counter")
	}
	if !r.Enabled() {
		t.Fatal("reset must not disable the registry")
	}
	c.Add(2)
	if c.Value() != 2 {
		t.Fatalf("counter dead after reset: %d", c.Value())
	}
}

func TestChromeTraceExport(t *testing.T) {
	var r Registry
	r.Enable()
	w := r.StartOnTrack("worker-1", 1)
	w.Child("analyze 179.art").End()
	w.End()
	r.Start("sweep").End()
	r.Disable()

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Args map[string]any
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var haveProc, haveThread, haveX bool
	for _, ev := range out.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			haveProc = true
		case ev.Ph == "M" && ev.Name == "thread_name" && ev.Tid == 1:
			haveThread = true
		case ev.Ph == "X" && ev.Name == "analyze 179.art" && ev.Tid == 1:
			haveX = true
		}
	}
	if !haveProc || !haveThread || !haveX {
		t.Fatalf("missing events (proc=%v thread=%v span=%v):\n%s",
			haveProc, haveThread, haveX, buf.String())
	}
}

func TestMetricsDump(t *testing.T) {
	var r Registry
	r.Enable()
	r.GetCounter("pm.cache.hits").Add(7)
	r.GetCounter("pm.cache.misses") // registered, zero
	sp := r.Start("inline")
	sp.End()
	r.Disable()

	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"counter pm.cache.hits 7\n",
		"counter pm.cache.misses 0\n",
		"span inline count=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "pm.cache.hits") > strings.Index(out, "pm.cache.misses") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	defer func() {
		Disable()
		Reset()
	}()
	if Enabled() {
		t.Fatal("default registry must start disabled")
	}
	if s := Start("x"); s != nil {
		t.Fatal("disabled Start must return nil")
	}
	Enable()
	if !Enabled() {
		t.Fatal("Enable did not stick")
	}
	// Child on a nil parent starts a root span on the default registry, so
	// layers without an enclosing span still record.
	var parent *Span
	parent.Child("orphan").End()
	GetCounter("default.test").Add(1)
	spans := Default().Spans()
	if len(spans) != 1 || spans[0].Name != "orphan" {
		t.Fatalf("nil-parent child not recorded: %+v", spans)
	}
	if GetCounter("default.test").Value() != 1 {
		t.Fatal("default counter lost its increment")
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
}
