// Exporters: the Chrome trace-event format (a JSON object with a
// traceEvents array of "X" complete events, loadable in Perfetto and
// chrome://tracing) and a plain-text metrics dump of every counter plus
// per-name span aggregates. Formats are documented in docs/OBSERVABILITY.md.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one entry of the Chrome trace-event format. Timestamps and
// durations are in microseconds; ph "X" is a complete (begin+end) event and
// ph "M" is metadata (process/thread names).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders every recorded span as Chrome trace-event JSON.
// Each obs track becomes one "thread" lane; events on a lane nest by time,
// which reproduces the Child hierarchy because children start after and end
// before their parent.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	r.mu.Lock()
	spans := make([]SpanData, len(r.spans))
	copy(spans, r.spans)
	tracks := make(map[int]string, len(r.tracks))
	for t, name := range r.tracks {
		tracks[t] = name
	}
	r.mu.Unlock()

	events := make([]traceEvent, 0, len(spans)+len(tracks)+1)
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "needle"},
	})
	trackIDs := make([]int, 0, len(tracks))
	for t := range tracks {
		trackIDs = append(trackIDs, t)
	}
	sort.Ints(trackIDs)
	for _, t := range trackIDs {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: t,
			Args: map[string]any{"name": tracks[t]},
		})
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, s := range spans {
		events = append(events, traceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  s.Track,
			Args: s.Args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// spanAgg accumulates the per-name span statistics of the metrics dump.
type spanAgg struct {
	name    string
	count   int64
	totalNS int64
}

// WriteMetrics writes a plain-text dump: one "counter <name> <value>" line
// per registered counter (zeros included, so the available counter set is
// visible) followed by one "span <name> count=<n> total_ms=<t> mean_ms=<m>"
// line per distinct span name. Both sections are sorted by name.
func (r *Registry) WriteMetrics(w io.Writer) error {
	for _, c := range r.Counters() {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", c.Name(), c.Value()); err != nil {
			return err
		}
	}
	aggs := make(map[string]*spanAgg)
	for _, s := range r.Spans() {
		a := aggs[s.Name]
		if a == nil {
			a = &spanAgg{name: s.Name}
			aggs[s.Name] = a
		}
		a.count++
		a.totalNS += s.Dur.Nanoseconds()
	}
	names := make([]string, 0, len(aggs))
	for name := range aggs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := aggs[name]
		total := float64(a.totalNS) / 1e6
		_, err := fmt.Fprintf(w, "span %s count=%d total_ms=%.3f mean_ms=%.3f\n",
			a.name, a.count, total, total/float64(a.count))
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace exports the Default registry's spans.
func WriteChromeTrace(w io.Writer) error { return def.WriteChromeTrace(w) }

// WriteMetrics exports the Default registry's counters and span aggregates.
func WriteMetrics(w io.Writer) error { return def.WriteMetrics(w) }
