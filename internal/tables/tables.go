// Package tables regenerates every table and figure of the paper's
// evaluation from a single analysis sweep over the 29 workloads. Each
// TableX/FigureX method returns the formatted rows the paper reports;
// structured accessors back the regression tests and benchmarks.
package tables

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"needle/internal/cgra"
	"needle/internal/core"
	"needle/internal/frame"
	"needle/internal/ir"
	"needle/internal/region"
	"needle/internal/workloads"
)

// Suite is one full analysis sweep.
type Suite struct {
	Cfg      core.Config
	Analyses []*core.Analysis
}

// Run analyzes every workload at the configured problem size with the
// default degree of parallelism (GOMAXPROCS).
func Run(cfg core.Config) (*Suite, error) {
	return RunCtx(context.Background(), cfg, core.Options{})
}

// RunJobs analyzes every workload on a bounded pool of `jobs` workers
// (GOMAXPROCS when jobs <= 0, serial when jobs == 1). Row order and values
// are identical regardless of jobs.
func RunJobs(cfg core.Config, jobs int) (*Suite, error) {
	return RunCtx(context.Background(), cfg, core.Options{Jobs: jobs})
}

// RunCtx analyzes every workload under ctx: cancelling it stops the sweep
// between workloads and returns ctx.Err(). Options selects the
// core.Analyzer the sweep runs on — a bounded worker pool via Jobs, and
// stage-artifact sharing across configs via Store/Cache. Row order and
// values are independent of both.
func RunCtx(ctx context.Context, cfg core.Config, opts core.Options) (*Suite, error) {
	as, err := opts.Analyzer().RunAll(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &Suite{Cfg: cfg, Analyses: as}, nil
}

// ByName returns the analysis for a workload name, or nil.
func (s *Suite) ByName(name string) *core.Analysis {
	for _, a := range s.Analyses {
		if a.Workload.Name == name {
			return a
		}
	}
	return nil
}

func header(title, cols string) string {
	return title + "\n" + cols + "\n" + strings.Repeat("-", len(cols)) + "\n"
}

// bar renders v (a fraction) as an ASCII bar scaled so that full == maxFrac.
func bar(v, maxFrac float64, width int) string {
	if v < 0 {
		return "!" + strings.Repeat(".", width-1)
	}
	n := int(v / maxFrac * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// TableI renders the control-flow characteristics of every hot function
// (Branch=>Mem, Mem=>Branch, predication bits, backward branches) plus the
// paper's bucket summaries.
func (s *Suite) TableI() string {
	var sb strings.Builder
	sb.WriteString(header("Table I: control flow characteristics (hot function)",
		fmt.Sprintf("%-20s %12s %12s %10s %8s", "workload", "Branch=>Mem", "Mem=>Branch", "PredBits", "Loops")))
	var brMemBig, memBrBig, pred10, loops3 []string
	for _, a := range s.Analyses {
		st := a.CFStats
		fmt.Fprintf(&sb, "%-20s %12.1f %12.1f %10d %8d\n",
			a.Workload.Name, st.AvgBranchMem, st.AvgMemBranch, st.PredicationBits, st.BackwardBranches)
		if st.AvgBranchMem > 1.5 {
			brMemBig = append(brMemBig, a.Workload.Name)
		}
		if st.AvgMemBranch > 1.5 {
			memBrBig = append(memBrBig, a.Workload.Name)
		}
		if st.PredicationBits >= 10 {
			pred10 = append(pred10, a.Workload.Name)
		}
		if st.BackwardBranches >= 3 {
			loops3 = append(loops3, a.Workload.Name)
		}
	}
	fmt.Fprintf(&sb, "\nBranch=>Mem > 1.5 ops: %d apps (%s)\n", len(brMemBig), strings.Join(brMemBig, ", "))
	fmt.Fprintf(&sb, "Mem=>Branch > 1.5 ops: %d apps (%s)\n", len(memBrBig), strings.Join(memBrBig, ", "))
	fmt.Fprintf(&sb, "Predication >= 10 bits: %d apps\n", len(pred10))
	fmt.Fprintf(&sb, "Backward branches >= 3: %d apps\n", len(loops3))
	return sb.String()
}

// Figure4 renders the branch-bias distribution: the fraction of executed
// branches below 80%% bias per workload.
func (s *Suite) Figure4() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 4: distribution of biased branches",
		fmt.Sprintf("%-20s %10s %10s %10s %10s %8s", "workload", "[.5,.6)", "[.6,.7)", "[.7,.8)", "[.8,1]", "<80%")))
	count24 := 0
	for _, a := range s.Analyses {
		h := a.Profile.BiasHistogram()
		below := a.Profile.FractionBelow80()
		fmt.Fprintf(&sb, "%-20s %10.2f %10.2f %10.2f %10.2f %7.0f%%\n",
			a.Workload.Name, h[0], h[1], h[2], h[3], below*100)
		if below > 0 {
			count24++
		}
	}
	fmt.Fprintf(&sb, "\nworkloads with some branches <80%% biased: %d of %d\n", count24, len(s.Analyses))
	return sb.String()
}

// Figure5 renders the fraction of cold ops folded into hyperblocks.
func (s *Suite) Figure5() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 5: fraction of cold ops included in Hyperblocks",
		fmt.Sprintf("%-20s %10s %10s %10s", "workload", "ops", "coldOps", "fraction")))
	for _, a := range s.Analyses {
		hb := a.Hyperblock()
		if hb == nil {
			continue
		}
		fmt.Fprintf(&sb, "%-20s %10d %10d %9.0f%%\n",
			a.Workload.Name, hb.NumOps(), hb.ColdOps, hb.ColdOpFraction()*100)
	}
	return sb.String()
}

// Figure6 renders the stacked path coverage of the top five paths.
func (s *Suite) Figure6() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 6: path coverage (Pwt) by rank",
		fmt.Sprintf("%-20s %7s %7s %7s %7s %7s %8s", "workload", "top1", "top2", "top3", "top4", "top5", "sum5")))
	var covs []float64
	top20 := 0
	for _, a := range s.Analyses {
		var cum [5]float64
		for k := 1; k <= 5; k++ {
			cum[k-1] = a.Profile.CoverageTopK(k)
		}
		fmt.Fprintf(&sb, "%-20s %6.0f%% %6.0f%% %6.0f%% %6.0f%% %6.0f%% %7.0f%%\n",
			a.Workload.Name, cum[0]*100, (cum[1]-cum[0])*100, (cum[2]-cum[1])*100,
			(cum[3]-cum[2])*100, (cum[4]-cum[3])*100, cum[4]*100)
		covs = append(covs, cum[4])
		if cum[0] >= 0.20 {
			top20++
		}
	}
	sort.Float64s(covs)
	fmt.Fprintf(&sb, "\nmedian top-5 coverage: %.0f%%; workloads with top path >= 20%%: %d of %d\n",
		covs[len(covs)/2]*100, top20, len(s.Analyses))
	return sb.String()
}

// TableII renders the per-workload path characteristics C1-C8.
func (s *Suite) TableII() string {
	var sb strings.Builder
	sb.WriteString(header("Table II: path characteristics",
		fmt.Sprintf("%-20s %8s %7s %6s %4s %9s %5s %5s %5s",
			"workload", "C1:exec", "C2:cov5", "C3:ins", "C4:b", "C5:in,out", "C6:ph", "C7:mem", "C8:ov")))
	for _, a := range s.Analyses {
		hot := a.Profile.HottestPath()
		fr, err := a.PathFrame(0)
		phiCancel := 0
		liveIn, liveOut := 0, 0
		if err == nil {
			phiCancel = fr.Cancelled
			liveIn, liveOut = len(fr.LiveIn), len(fr.LiveOut)
		}
		fmt.Fprintf(&sb, "%-20s %8d %6.0f%% %6d %4d %4d,%-4d %5d %5d %5d\n",
			a.Workload.Name, a.Profile.NumExecutedPaths(), a.Profile.CoverageTopK(5)*100,
			hot.Ops, hot.Branches, liveIn, liveOut, phiCancel, hot.MemOps, a.Profile.OverlapCount(5))
	}
	return sb.String()
}

// TableIII renders the next-path target expansion buckets.
func (s *Suite) TableIII() string {
	type row struct {
		name   string
		bias   float64
		same   bool
		expand float64
	}
	var rows []row
	for _, a := range s.Analyses {
		hot := a.Profile.HottestPath()
		st, ok := a.Profile.SequenceBias(hot.ID)
		if !ok {
			continue
		}
		rows = append(rows, row{a.Workload.Name, st.Bias, st.SamePath, st.ExpandFrac})
	}
	var sb strings.Builder
	sb.WriteString("Table III: next path target expansion\n")
	buckets := []struct {
		label    string
		lo, hi   float64
		names    []string
		samePath int
	}{
		{label: "90-100%", lo: 0.9, hi: 1.01},
		{label: "70-90%", lo: 0.7, hi: 0.9},
		{label: "<70%", lo: -1, hi: 0.7},
	}
	sameTotal := 0
	for _, r := range rows {
		for i := range buckets {
			if r.bias >= buckets[i].lo && r.bias < buckets[i].hi {
				buckets[i].names = append(buckets[i].names, r.name)
				if r.same {
					buckets[i].samePath++
				}
			}
		}
		if r.same {
			sameTotal++
		}
	}
	for _, b := range buckets {
		fmt.Fprintf(&sb, "%-8s %2d workloads (%d repeat the same path): %s\n",
			b.label, len(b.names), b.samePath, strings.Join(b.names, " "))
	}
	fmt.Fprintf(&sb, "\nsame path repeats in %d of %d workloads\n", sameTotal, len(rows))
	return sb.String()
}

// TableIV renders the braid characteristics C1-C7.
func (s *Suite) TableIV() string {
	var sb strings.Builder
	sb.WriteString(header("Table IV: braid characteristics",
		fmt.Sprintf("%-20s %8s %7s %6s %6s %4s %4s %9s",
			"workload", "#braids", "paths/b", "cov%", "ins", "grd", "IFs", "in,out")))
	for _, a := range s.Analyses {
		if len(a.Braids) == 0 {
			continue
		}
		top := a.Braids[0]
		var merged float64
		for _, br := range a.Braids {
			merged += float64(br.MergedPathCount())
		}
		merged /= float64(len(a.Braids))
		liveIn, liveOut := top.LiveValues(a.AM)
		fmt.Fprintf(&sb, "%-20s %8d %7.1f %5.0f%% %6d %4d %4d %4d,%-4d\n",
			a.Workload.Name, len(a.Braids), merged, top.Coverage(a.Profile)*100,
			top.NumOps(), top.Guards, top.IFs, len(liveIn), len(liveOut))
	}
	return sb.String()
}

// Figure2 renders the design-space comparison of the paper's Figure 2 with
// measured numbers: the non-speculative predicated hyperblock (middle
// column) versus Needle's speculative BL-Path and Braid offloads.
func (s *Suite) Figure2() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 2: spatial-accelerator design space (measured)",
		fmt.Sprintf("%-20s %12s %12s %12s %12s", "workload", "compoundFU", "hyperblock", "path/hist", "braid")))
	var cfMean, hbMean, brMean float64
	for _, a := range s.Analyses {
		hb := a.HyperblockResult
		cf := compoundFUImprovement(a)
		fmt.Fprintf(&sb, "%-20s %+11.1f%% %+11.1f%% %+11.1f%% %+11.1f%%\n",
			a.Workload.Name, cf*100, hb.Improvement*100, a.PathHistory.Improvement*100,
			a.BraidChoice.Result.Improvement*100)
		cfMean += cf
		hbMean += hb.Improvement
		brMean += a.BraidChoice.Result.Improvement
	}
	n := float64(len(s.Analyses))
	fmt.Fprintf(&sb, "\nMEAN: compoundFU=%.1f%% hyperblock=%.1f%% braid=%.1f%%\n",
		cfMean/n*100, hbMean/n*100, brMean/n*100)
	return sb.String()
}

// compoundFUImprovement estimates Figure 2's first column: offload at basic
// block granularity, with a host interaction (live-value transfer + sync)
// on every invocation and no pipelining across invocations — the structure
// prior work criticizes for frequent OOO interactions and low ILP. The
// estimate offloads the hottest block: improvement =
// (hostShare - accelCost) / baseline, clamped below by never offloading.
func compoundFUImprovement(a *core.Analysis) float64 {
	fp := a.Profile
	var hot *ir.Block
	var hotCount int64
	for _, b := range fp.F.Blocks {
		c := fp.BlockCounts[b.Index]
		if hot == nil || c*int64(b.NumOps()) > hotCount*int64(hot.NumOps()) {
			hot, hotCount = b, c
		}
	}
	if hot == nil || hotCount == 0 || hot.NumOps() == 0 {
		return 0
	}
	fr, err := frame.Build(a.AM, region.FromBlock(fp.F, hot), a.Config.Sim.Frame)
	if err != nil {
		return 0
	}
	sched := cgra.Schedule(fr, a.Config.Sim.CGRA)
	// Host cycles attributable to the block: its share of dynamic ops at
	// the measured baseline rate.
	dynOps := hotCount * int64(len(hot.Instrs))
	hostShare := float64(a.Trace.BaselineCycles) * float64(dynOps) / float64(fp.TotalWeight)
	accel := float64(hotCount * sched.InvokeCycles()) // cold every time: no pipelining
	gain := (hostShare - accel) / float64(a.Trace.BaselineCycles)
	if gain < 0 {
		return 0 // the compiler declines block offload at a loss
	}
	return gain
}

// Figure9 renders the performance improvements: BL-Path under oracle and
// history prediction, and the selected braid.
func (s *Suite) Figure9() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 9: performance improvement (% cycle reduction)",
		fmt.Sprintf("%-20s %10s %10s %6s %10s %8s  %s", "workload", "path/orac", "path/hist", "prec", "braid", "policy", "braid bar (0-100%)")))
	var so, sh, sbr float64
	for _, a := range s.Analyses {
		fmt.Fprintf(&sb, "%-20s %9.1f%% %9.1f%% %6.2f %9.1f%% %8s  %s\n",
			a.Workload.Name, a.PathOracle.Improvement*100, a.PathHistory.Improvement*100,
			a.PathHistory.Precision, a.BraidChoice.Result.Improvement*100, a.BraidChoice.Policy,
			bar(a.BraidChoice.Result.Improvement, 1.0, 25))
		so += a.PathOracle.Improvement
		sh += a.PathHistory.Improvement
		sbr += a.BraidChoice.Result.Improvement
	}
	n := float64(len(s.Analyses))
	fmt.Fprintf(&sb, "\nMEAN: path(oracle)=%.1f%% path(history)=%.1f%% braid=%.1f%%\n",
		so/n*100, sh/n*100, sbr/n*100)
	return sb.String()
}

// Figure10 renders the net energy reduction for the selected braid,
// annotated with coverage as in the paper.
func (s *Suite) Figure10() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 10: net energy reduction for Braid",
		fmt.Sprintf("%-20s %10s %10s  %s", "workload", "energy", "coverage", "energy bar (0-60%)")))
	var se float64
	for _, a := range s.Analyses {
		fmt.Fprintf(&sb, "%-20s %9.1f%% %9.0f%%  %s\n",
			a.Workload.Name, a.BraidChoice.Result.EnergyReduction*100, a.BraidChoice.Result.Coverage*100,
			bar(a.BraidChoice.Result.EnergyReduction, 0.6, 25))
		se += a.BraidChoice.Result.EnergyReduction
	}
	fmt.Fprintf(&sb, "\nMEAN energy reduction: %.1f%%\n", se/float64(len(s.Analyses))*100)
	return sb.String()
}

// TableHLS renders the FPGA synthesis estimates of the hot braid frames
// (Section VI, "HLS for NEEDLE identified Braids").
func (s *Suite) TableHLS() string {
	var sb strings.Builder
	sb.WriteString(header("HLS estimates (Altera Cyclone V, ~85K ALMs)",
		fmt.Sprintf("%-20s %8s %8s %9s %6s", "workload", "ALMs", "util", "power", "fits")))
	under20 := 0
	total := 0
	for _, a := range s.Analyses {
		if a.HotBraidFrame == nil {
			continue
		}
		total++
		r := a.HLS
		if r.Utilization < 0.20 {
			under20++
		}
		fmt.Fprintf(&sb, "%-20s %8d %7.0f%% %7.0fmW %6v\n",
			a.Workload.Name, r.ALMs, r.Utilization*100, r.PowerMW, r.Fits)
	}
	fmt.Fprintf(&sb, "\nworkloads under 20%% utilization: %d of %d\n", under20, total)
	return sb.String()
}

// TableV renders the system parameters in use.
func (s *Suite) TableV() string {
	c := s.Cfg.Sim
	var sb strings.Builder
	sb.WriteString("Table V: system parameters\n")
	fmt.Fprintf(&sb, "Host core: %d-wide OOO, %d-entry ROB, %d ALU, %d FPU, perfect BP\n",
		c.OOO.Width, c.OOO.ROB, c.OOO.ALUs, c.OOO.FPUs)
	mem := c.Mem
	if mem.L1Words == 0 {
		fmt.Fprintf(&sb, "L1: 64K 4-way, 2 cycles; shared L2 (NUCA), 20 cycles\n")
	} else {
		fmt.Fprintf(&sb, "L1: %d words %d-way, %d cycles; L2 %d cycles\n",
			mem.L1Words, mem.L1Ways, mem.L1Latency, mem.L2Latency)
	}
	fmt.Fprintf(&sb, "CGRA: %dx%d FUs, %d-cycle reconfig, %d mem ports, %d-cycle loads\n",
		c.CGRA.Rows, c.CGRA.Cols, c.CGRA.ReconfigCycles, c.CGRA.MemPorts, c.CGRA.MemLatency)
	fmt.Fprintf(&sb, "CGRA energy: %gpJ switch+link, %gpJ INT, %gpJ FP, %gpJ latch\n",
		c.CGRA.SwitchLinkPJ, c.CGRA.IntPJ, c.CGRA.FPPJ, c.CGRA.LatchPJ)
	fmt.Fprintf(&sb, "CPU energy: %gpJ front-end/instr, %gpJ INT, %gpJ FP, %gpJ L1, %gpJ L2\n",
		c.CPU.FrontEndPJ, c.CPU.IntPJ, c.CPU.FPPJ, c.CPU.L1PJ, c.CPU.L2PJ)
	return sb.String()
}

// Figure3 demonstrates the Superblock/Hyperblock construction pitfall on
// the overlapping-path example (Section II-B): the edge-profile superblock
// is infeasible while the path profile identifies both hot paths exactly.
// It is self-contained (builds its own kernel) so it does not need a Suite.
func Figure3() string {
	a, err := core.Analyze(figure3Workload, core.DefaultConfig())
	if err != nil {
		return "figure 3 kernel failed: " + err.Error()
	}
	sb := a.Superblock()
	hb := a.Hyperblock()
	hot := a.Profile.HottestPath()
	braid := a.HottestBraid()

	var out strings.Builder
	out.WriteString("Figure 3: overlapping paths vs region formation\n")
	fmt.Fprintf(&out, "executed paths: %d; hottest path coverage: %.0f%%\n",
		a.Profile.NumExecutedPaths(), hot.Coverage(a.Profile)*100)
	fmt.Fprintf(&out, "superblock: blocks=%d feasible=%v matches-hottest=%v\n",
		len(sb.Blocks), sb.Feasible, sb.HottestPath)
	if hb != nil {
		fmt.Fprintf(&out, "hyperblock: ops=%d coldOps=%d (wasted %.0f%%)\n",
			hb.NumOps(), hb.ColdOps, hb.ColdOpFraction()*100)
	}
	if braid != nil {
		fmt.Fprintf(&out, "braid: merges %d paths, coverage %.0f%%, no wasted blocks\n",
			braid.MergedPathCount(), braid.Coverage(a.Profile)*100)
	}
	return out.String()
}

// All renders every table and figure.
func (s *Suite) All() string {
	parts := []string{
		s.TableV(), s.TableI(), s.Figure2(), Figure3(), s.Figure4(), s.Figure5(),
		s.Figure6(), s.TableII(), s.TableIII(), s.TableIV(), s.Figure9(),
		s.Figure10(), s.TableHLS(),
	}
	return strings.Join(parts, "\n")
}

// figure3Workload is the alternating-outcome kernel of Figure 3: two
// sequential diamonds whose outcomes are anti-correlated, so the hottest
// edge-profile trace never executes.
var figure3Workload = &workloads.Workload{
	Name: "figure3", Suite: "demo",
	Notes:    "anti-correlated diamonds: infeasible superblock demo",
	DefaultN: 4000,
	MemWords: func(n int) int { return 16 },
	Build:    workloads.BuildFigure3Kernel,
	Setup: func(mem []uint64, n int) []uint64 {
		return []uint64{uint64(n)}
	},
}
