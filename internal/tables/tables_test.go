package tables

import (
	"strings"
	"testing"

	"needle/internal/core"
)

// smallSuite runs the sweep at a reduced problem size to keep tests fast.
func smallSuite(t testing.TB) *Suite {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.N = 2500
	s, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return s
}

var cached *Suite

func suite(t testing.TB) *Suite {
	if cached == nil {
		cached = smallSuite(t)
	}
	return cached
}

func TestSuiteCoversAllWorkloads(t *testing.T) {
	s := suite(t)
	if len(s.Analyses) != 29 {
		t.Fatalf("analyzed %d workloads, want 29", len(s.Analyses))
	}
	if s.ByName("470.lbm") == nil || s.ByName("swaptions") == nil {
		t.Fatal("ByName lookup failed")
	}
	if s.ByName("missing") != nil {
		t.Fatal("phantom workload")
	}
}

func TestAllTablesRender(t *testing.T) {
	s := suite(t)
	for name, fn := range map[string]func() string{
		"TableI": s.TableI, "Figure4": s.Figure4, "Figure5": s.Figure5,
		"Figure6": s.Figure6, "TableII": s.TableII, "TableIII": s.TableIII,
		"TableIV": s.TableIV, "Figure9": s.Figure9, "Figure10": s.Figure10,
		"TableHLS": s.TableHLS, "TableV": s.TableV,
	} {
		out := fn()
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short:\n%s", name, out)
		}
		if strings.Count(out, "\n") < 5 {
			t.Errorf("%s has too few rows", name)
		}
	}
}

func TestFigure3Demonstration(t *testing.T) {
	out := Figure3()
	if !strings.Contains(out, "feasible=false") {
		t.Errorf("Figure 3 superblock should be infeasible:\n%s", out)
	}
	if !strings.Contains(out, "merges 2 paths") {
		t.Errorf("Figure 3 braid should merge the two alternating paths:\n%s", out)
	}
}

// TestPaperShapeConstraints checks the qualitative claims the paper makes
// about its own numbers, at reduced scale.
func TestPaperShapeConstraints(t *testing.T) {
	s := suite(t)
	var braidMean, oracleMean, energyMean float64
	braidBeatsOracle := 0
	for _, a := range s.Analyses {
		braidMean += a.BraidChoice.Result.Improvement
		oracleMean += a.PathOracle.Improvement
		energyMean += a.BraidChoice.Result.EnergyReduction
		// "In all but one workload, the highest ranked Braid provides equal
		// or greater performance than a BL-Path with the Oracle predictor."
		// We allow a small slack band at reduced problem size.
		if a.BraidChoice.Result.Improvement >= a.PathOracle.Improvement-0.05 {
			braidBeatsOracle++
		}
	}
	n := float64(len(s.Analyses))
	braidMean /= n
	oracleMean /= n
	energyMean /= n
	if braidMean <= 0.10 {
		t.Errorf("braid mean improvement = %.1f%%, want clearly positive", braidMean*100)
	}
	if oracleMean <= 0.10 {
		t.Errorf("path oracle mean improvement = %.1f%%, want clearly positive", oracleMean*100)
	}
	if energyMean <= 0.05 {
		t.Errorf("braid mean energy reduction = %.1f%%, want positive", energyMean*100)
	}
	if braidBeatsOracle < len(s.Analyses)*3/5 {
		t.Errorf("braid >= oracle-path in only %d of %d workloads", braidBeatsOracle, len(s.Analyses))
	}
	// Selected braids must never degrade much: the filter stage falls back
	// to no offload.
	for _, a := range s.Analyses {
		if a.BraidChoice.Result.Improvement < -1e-9 && a.BraidChoice.Policy != "none" {
			t.Errorf("%s: selected braid degrades by %.1f%%", a.Workload.Name, -a.BraidChoice.Result.Improvement*100)
		}
	}
}

func TestPathCountOrdering(t *testing.T) {
	s := suite(t)
	// The chess engines and bzip2 must execute far more paths than the
	// streaming kernels (Table II's defining contrast).
	crafty := s.ByName("186.crafty").Profile.NumExecutedPaths()
	lbm := s.ByName("470.lbm").Profile.NumExecutedPaths()
	if crafty < 50*lbm {
		t.Errorf("crafty paths (%d) should dwarf lbm paths (%d)", crafty, lbm)
	}
}

func TestFigure2Shape(t *testing.T) {
	s := suite(t)
	out := s.Figure2()
	if !strings.Contains(out, "hyperblock") {
		t.Fatalf("figure 2 missing columns:\n%s", out)
	}
	// The design-space claim: speculative braids beat the non-speculative
	// predicated baseline on average.
	var hb, br float64
	for _, a := range s.Analyses {
		hb += a.HyperblockResult.Improvement
		br += a.BraidChoice.Result.Improvement
	}
	if br <= hb {
		t.Fatalf("braid mean (%.2f) should beat hyperblock mean (%.2f)", br, hb)
	}
}

// TestDefaultScaleSoak runs the whole suite at the workloads' default
// problem sizes — the exact configuration `needle -all` uses — unless
// -short is set.
func TestDefaultScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	s, err := Run(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var braid, energy float64
	for _, a := range s.Analyses {
		braid += a.BraidChoice.Result.Improvement
		energy += a.BraidChoice.Result.EnergyReduction
		if a.BraidChoice.Result.Improvement < -1e-9 {
			t.Errorf("%s: selected braid degrades", a.Workload.Name)
		}
		if a.BraidChoice.Result.EnergyReduction < -1e-9 {
			t.Errorf("%s: selected braid loses energy", a.Workload.Name)
		}
	}
	n := float64(len(s.Analyses))
	braid /= n
	energy /= n
	// The paper's headline bands, with generous slack for model evolution.
	if braid < 0.25 || braid > 0.70 {
		t.Errorf("braid mean improvement %.1f%% outside the expected band", braid*100)
	}
	if energy < 0.10 || energy > 0.35 {
		t.Errorf("mean energy reduction %.1f%% outside the expected band", energy*100)
	}
}

// TestParallelMatchesSerial runs the full sweep with a worker pool and
// checks every rendered table and figure is byte-identical to the serial
// result. Run under -race this also exercises the harness's concurrency.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.N = 1500
	serial, err := RunJobs(cfg, 1)
	if err != nil {
		t.Fatalf("serial RunJobs: %v", err)
	}
	par, err := RunJobs(cfg, 4)
	if err != nil {
		t.Fatalf("parallel RunJobs: %v", err)
	}
	if len(serial.Analyses) != len(par.Analyses) {
		t.Fatalf("analysis counts differ: %d vs %d", len(serial.Analyses), len(par.Analyses))
	}
	for i := range serial.Analyses {
		if serial.Analyses[i].Workload.Name != par.Analyses[i].Workload.Name {
			t.Fatalf("row %d order differs: %s vs %s",
				i, serial.Analyses[i].Workload.Name, par.Analyses[i].Workload.Name)
		}
	}
	renders := map[string]func(*Suite) string{
		"TableI": (*Suite).TableI, "TableII": (*Suite).TableII,
		"TableIII": (*Suite).TableIII, "TableIV": (*Suite).TableIV,
		"TableV": (*Suite).TableV, "TableHLS": (*Suite).TableHLS,
		"Figure2": (*Suite).Figure2, "Figure4": (*Suite).Figure4,
		"Figure5": (*Suite).Figure5, "Figure6": (*Suite).Figure6,
		"Figure9": (*Suite).Figure9, "Figure10": (*Suite).Figure10,
	}
	for name, fn := range renders {
		if got, want := fn(par), fn(serial); got != want {
			t.Errorf("%s differs between parallel and serial runs", name)
		}
	}
}
