package region

import (
	"testing"

	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/profile"
)

func parse(t testing.TB, src string) *ir.Function {
	t.Helper()
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatalf("ParseFunction: %v", err)
	}
	return f
}

func collect(t testing.TB, f *ir.Function, args ...uint64) *profile.FunctionProfile {
	t.Helper()
	fp, err := profile.CollectFunction(nil, f, args, nil, true, 0)
	if err != nil {
		t.Fatalf("CollectFunction: %v", err)
	}
	return fp
}

// loopDiamondSrc: loop whose body splits into odd/rare multiply vs pass
// through; iterations with i%4==0 take the rare side.
const loopDiamondSrc = `func @ld(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [latch: r9]
  r4 = phi.i64 [entry: r2] [latch: r10]
  r5 = cmp.lt r3, r1
  condbr r5, %body, %exit
body:
  r6 = const.i64 4
  r7 = rem r3, r6
  r8 = cmp.eq r7, r2
  condbr r8, %rare, %latch
rare:
  r11 = mul r4, r6
  br %latch
latch:
  r13 = phi.i64 [body: r4] [rare: r11]
  r10 = add r13, r3
  r14 = const.i64 1
  r9 = add r3, r14
  br %head
exit:
  ret r4
}
`

// alternatingSrc reproduces the Figure 3 scenario: two sequential diamonds
// whose outcomes alternate by iteration parity, so the block sequences
// (b1taken, b2taken) and (b1not, b2not) never execute even though every
// individual edge runs 50% of the time.
const alternatingSrc = `func @alt(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [join2: r9]
  r4 = phi.i64 [entry: r2] [join2: r10]
  r5 = cmp.lt r3, r1
  condbr r5, %d1, %exit
d1:
  r6 = const.i64 2
  r7 = rem r3, r6
  r8 = cmp.eq r7, r2
  r18 = cmp.ne r7, r2
  condbr r8, %t1, %f1
t1:
  r11 = add r4, r6
  br %join1
f1:
  r12 = sub r4, r6
  br %join1
join1:
  r13 = phi.i64 [t1: r11] [f1: r12]
  condbr r18, %t2, %f2
t2:
  r14 = mul r13, r6
  br %join2
f2:
  r15 = add r13, r3
  br %join2
join2:
  r16 = phi.i64 [t2: r14] [f2: r15]
  r10 = add r16, r2
  r17 = const.i64 1
  r9 = add r3, r17
  br %head
exit:
  ret r4
}
`

func TestFromPathRegion(t *testing.T) {
	f := parse(t, loopDiamondSrc)
	fp := collect(t, f, interp.IBits(100))
	hot := fp.HottestPath()
	r := FromPath(f, hot)
	if r.Kind != KindPath {
		t.Fatalf("kind = %v", r.Kind)
	}
	if r.Entry != hot.Blocks[0] || r.Exit != hot.Blocks[len(hot.Blocks)-1] {
		t.Fatal("entry/exit mismatch")
	}
	if r.NumOps() <= 0 || r.NumBranches() != 2 {
		t.Fatalf("ops=%d branches=%d", r.NumOps(), r.NumBranches())
	}
	// The common iteration path head->body->latch has one phi at latch that
	// cancels (single flow of control).
	if got := r.PhiCancel(); got != 1 {
		t.Fatalf("PhiCancel = %d, want 1", got)
	}
	if cov := r.Coverage(fp); cov <= 0 || cov > 1 {
		t.Fatalf("coverage = %v", cov)
	}
}

func TestLiveValues(t *testing.T) {
	f := parse(t, loopDiamondSrc)
	fp := collect(t, f, interp.IBits(100))
	hot := fp.HottestPath() // iteration path starting at head
	r := FromPath(f, hot)
	liveIn, liveOut := r.LiveValues(nil)
	// Live-ins include the loop bound r1 and the phi inputs (r2 consts from
	// entry plus r9/r10 from latch — but r9/r10 are defined inside latch,
	// which is in the region, so the cross-iteration values come in via the
	// entry phis' external incomings only).
	hasParam := false
	for _, reg := range liveIn {
		if reg == 1 {
			hasParam = true
		}
	}
	if !hasParam {
		t.Errorf("live-ins %v missing parameter r1", liveIn)
	}
	if len(liveOut) == 0 {
		t.Error("expected live-outs for loop-carried values")
	}
}

func TestBuildBraids(t *testing.T) {
	f := parse(t, loopDiamondSrc)
	fp := collect(t, f, interp.IBits(100))
	braids := BuildBraids(fp, 0)
	if len(braids) == 0 {
		t.Fatal("no braids built")
	}
	top := braids[0]
	// The two iteration paths (head..latch with and without rare) share
	// entry=head and exit=latch, so they merge.
	if top.MergedPathCount() != 2 {
		t.Fatalf("merged paths = %d, want 2", top.MergedPathCount())
	}
	if top.Entry.Name != "head" || top.Exit.Name != "latch" {
		t.Fatalf("braid entry/exit = %s/%s", top.Entry, top.Exit)
	}
	// Internal diamond (body->rare/latch)... body's branch has both targets
	// in the braid, but latch is the exit so the edge body->latch with exit
	// source rule: body is not the exit, so body's branch targets rare
	// (inside) and latch (inside, not entry) => IF.
	if top.IFs != 1 {
		t.Errorf("IFs = %d, want 1", top.IFs)
	}
	// head's branch: body inside, exit block outside => guard. latch is the
	// exit block: its branch (unconditional br) is not counted.
	if top.Guards != 1 {
		t.Errorf("Guards = %d, want 1", top.Guards)
	}
	// Braid coverage equals the sum of merged path coverage.
	var want float64
	for _, p := range top.Paths {
		want += p.Coverage(fp)
	}
	if got := top.Coverage(fp); got != want {
		t.Errorf("coverage = %v, want %v", got, want)
	}
	// Merging never decreases coverage versus the hottest constituent.
	if top.Coverage(fp) < fp.HottestPath().Coverage(fp) {
		t.Error("braid coverage below hottest path coverage")
	}
}

func TestBraidGuardsFewerThanPathGuards(t *testing.T) {
	f := parse(t, alternatingSrc)
	fp := collect(t, f, interp.IBits(200))
	braids := BuildBraids(fp, 0)
	if len(braids) == 0 {
		t.Fatal("no braids")
	}
	top := braids[0]
	if top.MergedPathCount() < 2 {
		t.Fatalf("merged = %d, want >= 2", top.MergedPathCount())
	}
	pathGuards := 0
	for _, p := range top.Paths {
		pathGuards += p.Branches
	}
	if top.Guards >= pathGuards {
		t.Errorf("braid guards %d not fewer than summed path guards %d", top.Guards, pathGuards)
	}
	if top.IFs == 0 {
		t.Error("merging alternating paths must introduce IFs")
	}
}

func TestBraidBranchMemDeps(t *testing.T) {
	f := parse(t, loopDiamondSrc)
	fp := collect(t, f, interp.IBits(100))
	top := BuildBraids(fp, 0)[0]
	// No memory ops at all in this kernel.
	if got := top.BranchMemDeps(); got != 0 {
		t.Errorf("BranchMemDeps = %d, want 0", got)
	}
}

func TestBuildBraidsMaxPaths(t *testing.T) {
	f := parse(t, alternatingSrc)
	fp := collect(t, f, interp.IBits(200))
	braids := BuildBraids(fp, 1)
	for _, b := range braids {
		if b.MergedPathCount() > 1 {
			t.Fatalf("maxPaths=1 violated: %d", b.MergedPathCount())
		}
	}
}

func TestSuperblockInfeasibleOnAlternatingPaths(t *testing.T) {
	f := parse(t, alternatingSrc)
	fp := collect(t, f, interp.IBits(200))
	hot := fp.HottestPath()
	sb := BuildSuperblock(fp, hot.Blocks[0], 0)
	if sb.Feasible {
		t.Errorf("superblock %v should be infeasible on alternating paths", sb.Blocks)
	}
	if sb.HottestPath {
		t.Error("superblock cannot be the hottest path here")
	}
}

func TestSuperblockFeasibleOnBiasedLoop(t *testing.T) {
	f := parse(t, loopDiamondSrc)
	fp := collect(t, f, interp.IBits(100))
	hot := fp.HottestPath()
	sb := BuildSuperblock(fp, hot.Blocks[0], 0)
	if !sb.Feasible {
		t.Fatalf("superblock %v should be feasible", sb.Blocks)
	}
	if !sb.HottestPath {
		t.Errorf("superblock %v should match hottest path %v", sb.Blocks, hot.Blocks)
	}
	if sb.Kind != KindSuperblock {
		t.Fatal("wrong kind")
	}
}

func TestSuperblockStopsAtMinBias(t *testing.T) {
	f := parse(t, alternatingSrc)
	fp := collect(t, f, interp.IBits(200))
	sb := BuildSuperblock(fp, f.BlockByName("d1"), 0.9)
	// Both sides of d1's branch run 50/50, so growth stops immediately.
	if len(sb.Blocks) != 1 {
		t.Fatalf("blocks = %v, want just the seed", sb.Blocks)
	}
}

func TestHyperblock(t *testing.T) {
	f := parse(t, loopDiamondSrc)
	fp := collect(t, f, interp.IBits(100))
	hb := BuildHyperblock(nil, fp, f.BlockByName("body"), 0.1)
	// Region: body, rare, latch (latch joins, both preds inside).
	if !hb.Contains(f.BlockByName("rare")) || !hb.Contains(f.BlockByName("latch")) {
		t.Fatalf("hyperblock missing blocks: %v", hb.Blocks)
	}
	if hb.Contains(f.BlockByName("head")) {
		t.Error("hyperblock crossed a back edge")
	}
	if hb.PredBits != 1 {
		t.Errorf("PredBits = %d, want 1", hb.PredBits)
	}
	if hb.SizeVsBlock() <= 1 {
		t.Errorf("SizeVsBlock = %v, want > 1", hb.SizeVsBlock())
	}
}

func TestHyperblockColdOps(t *testing.T) {
	f := parse(t, loopDiamondSrc)
	// Run long enough that rare executes 25% of iterations: with
	// coldFraction 0.5, rare (25%) is cold.
	fp := collect(t, f, interp.IBits(100))
	hb := BuildHyperblock(nil, fp, f.BlockByName("body"), 0.5)
	if hb.ColdOps == 0 {
		t.Error("expected cold ops from the rare block")
	}
	if frac := hb.ColdOpFraction(); frac <= 0 || frac >= 1 {
		t.Errorf("ColdOpFraction = %v", frac)
	}
}

func TestCharacterize(t *testing.T) {
	src := `func @c(i64, i64) {
entry:
  r3 = const.i64 0
  br %head
head:
  r4 = phi.i64 [entry: r3] [join: r9]
  r5 = cmp.lt r4, r2
  condbr r5, %body, %exit
body:
  r6 = add r1, r4
  r7 = load.i64 r6
  r8 = cmp.gt r7, r3
  condbr r8, %pos, %join
pos:
  store.i64 r6, r3
  br %join
join:
  r10 = const.i64 1
  r9 = add r4, r10
  br %head
exit:
  ret
}
`
	f := parse(t, src)
	st := Characterize(nil, f)
	if st.Branches != 2 || st.PredicationBits != 2 {
		t.Fatalf("branches=%d predbits=%d, want 2,2", st.Branches, st.PredicationBits)
	}
	if st.BackwardBranches != 1 {
		t.Fatalf("backward branches = %d, want 1", st.BackwardBranches)
	}
	// The body branch depends on one load; head's doesn't. Avg = 0.5.
	if st.AvgMemBranch < 0.49 || st.AvgMemBranch > 0.51 {
		t.Errorf("AvgMemBranch = %v, want 0.5", st.AvgMemBranch)
	}
	// The store in pos is control-dependent on the body branch; the load in
	// body is control-dependent on head's branch (body side only).
	if st.AvgBranchMem <= 0 {
		t.Errorf("AvgBranchMem = %v, want > 0", st.AvgBranchMem)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindPath: "bl-path", KindBraid: "braid",
		KindSuperblock: "superblock", KindHyperblock: "hyperblock",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestTunedHyperblockExcludesColdBlocks(t *testing.T) {
	f := parse(t, loopDiamondSrc)
	fp := collect(t, f, interp.IBits(100))
	naive := BuildHyperblock(nil, fp, f.BlockByName("body"), 0.5)
	tuned := BuildTunedHyperblock(nil, fp, f.BlockByName("body"), 0.5, 0.5)
	// rare runs 25% of iterations: excluded at a 50% inclusion threshold.
	if !naive.Contains(f.BlockByName("rare")) {
		t.Fatal("naive hyperblock should include the rare block")
	}
	if tuned.Contains(f.BlockByName("rare")) {
		t.Fatal("tuned hyperblock should exclude the rare block")
	}
	if tuned.NumOps() >= naive.NumOps() {
		t.Fatal("tuned hyperblock should be smaller")
	}
}

func TestFromBlock(t *testing.T) {
	f := parse(t, loopDiamondSrc)
	b := f.BlockByName("body")
	r := FromBlock(f, b)
	if r.Entry != b || r.Exit != b || len(r.Blocks) != 1 {
		t.Fatal("single-block region malformed")
	}
	if r.NumOps() != b.NumOps() {
		t.Fatal("ops mismatch")
	}
}

func TestPathTreesVsBraids(t *testing.T) {
	// A loop with two latches: braids split the groups, path trees merge
	// them under the shared entry and fan out to two exits.
	src := `func @pt(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [lA: r4] [lB: r5]
  r6 = phi.i64 [entry: r2] [lA: r7] [lB: r8]
  r9 = cmp.lt r3, r1
  condbr r9, %body, %exit
body:
  r10 = const.i64 2
  r11 = rem r3, r10
  r12 = cmp.eq r11, r2
  condbr r12, %lA, %lB
lA:
  r7 = add r6, r3
  r13 = const.i64 1
  r4 = add r3, r13
  br %head
lB:
  r8 = sub r6, r3
  r14 = const.i64 1
  r5 = add r3, r14
  br %head
exit:
  ret r6
}
`
	f := parse(t, src)
	fp := collect(t, f, interp.IBits(100))
	braids := BuildBraids(fp, 0)
	trees := BuildPathTrees(fp, 0)

	// Braids: the head-entry iteration paths split into two groups (exit lA
	// vs exit lB); trees merge them into one.
	topTree := trees[0]
	if topTree.LiveOutSpread() < 2 {
		t.Fatalf("path tree should fan out to 2 exits, got %d", topTree.LiveOutSpread())
	}
	for _, br := range braids {
		if br.LiveOutSpread() != 1 {
			t.Fatalf("braid with %d exits violates the same-exit invariant", br.LiveOutSpread())
		}
	}
	// The tree's coverage >= any single braid's (it merged more paths), the
	// tradeoff the paper discusses.
	if topTree.Coverage(fp) < braids[0].Coverage(fp) {
		t.Fatal("path tree coverage should dominate the braid's")
	}
}
