package region

import (
	"sort"

	"needle/internal/ir"
	"needle/internal/profile"
)

// Braid is the paper's new offload abstraction (Section IV-B): the merge of
// several BL-Paths that share both their entry and their exit block. The
// merged region is acyclic, single entry, single exit, and contains multiple
// flows of control. Because the constituent paths agree on entry and exit,
// the live-in/live-out interface is unchanged, and coverage is exactly the
// sum of the merged paths' coverage.
type Braid struct {
	Region

	// Guards is the number of conditional branches with at least one
	// successor leaving the braid; these become guards in the software frame
	// (the ♦ column of Table IV).
	Guards int
	// IFs is the number of conditional branches whose both successors stay
	// inside the braid: control flow introduced by merging paths, handled by
	// non-speculative predication on the accelerator (the IFs column).
	IFs int
}

// braidKey groups paths by (entry block, exit block).
type braidKey struct{ entry, exit int }

// BuildBraids merges every executed path of the profile into braids keyed by
// shared entry and exit blocks, ranked by total coverage (weight) descending.
// maxPaths bounds how many paths merge into one braid (<=0 means unlimited);
// the paper merges all overlapping hot paths, which is the default used by
// the pipeline.
func BuildBraids(fp *profile.FunctionProfile, maxPaths int) []*Braid {
	groups := make(map[braidKey][]*profile.Path)
	var order []braidKey
	// fp.Paths is already ranked by weight, so each group's slice is too.
	for _, p := range fp.Paths {
		if len(p.Blocks) == 0 {
			continue
		}
		k := braidKey{p.Blocks[0].Index, p.Blocks[len(p.Blocks)-1].Index}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		if maxPaths > 0 && len(groups[k]) >= maxPaths {
			continue
		}
		groups[k] = append(groups[k], p)
	}

	braids := make([]*Braid, 0, len(order))
	for _, k := range order {
		braids = append(braids, buildBraid(fp, groups[k]))
	}
	sort.SliceStable(braids, func(i, j int) bool {
		return braidWeight(braids[i]) > braidWeight(braids[j])
	})
	return braids
}

func braidWeight(b *Braid) int64 {
	var w int64
	for _, p := range b.Paths {
		w += p.Weight
	}
	return w
}

func buildBraid(fp *profile.FunctionProfile, paths []*profile.Path) *Braid {
	set := make(map[*ir.Block]bool)
	for _, p := range paths {
		for _, b := range p.Blocks {
			set[b] = true
		}
	}
	// Topological order within the braid: function block order restricted to
	// the set, with entry forced first and exit last. Function blocks are in
	// construction order which our builders keep topological for acyclic
	// sub-regions; sorting by index is deterministic regardless.
	entry := paths[0].Blocks[0]
	exit := paths[0].Blocks[len(paths[0].Blocks)-1]
	blocks := make([]*ir.Block, 0, len(set))
	for b := range set {
		blocks = append(blocks, b)
	}
	rank := func(b *ir.Block) int {
		switch b {
		case entry:
			return 0
		case exit:
			return 2
		}
		return 1
	}
	sort.Slice(blocks, func(i, j int) bool {
		bi, bj := blocks[i], blocks[j]
		if ri, rj := rank(bi), rank(bj); ri != rj {
			return ri < rj
		}
		return bi.Index < bj.Index
	})

	br := &Braid{Region: *newRegion(fp.F, KindBraid, blocks)}
	br.Entry = entry
	br.Exit = exit
	br.Paths = paths
	br.classifyBranches()
	return br
}

// classifyBranches splits the braid's conditional branches into guards and
// internal IFs. An edge "stays inside" only if its target is a braid block
// other than the entry (a branch back to the entry is the loop back edge,
// which ends the braid occurrence) and the source is not the exit block
// (the exit block's branch decides whether the braid completed, i.e. it is
// a guard).
func (br *Braid) classifyBranches() {
	for _, b := range br.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		inside := 0
		for _, s := range t.Blocks {
			if br.Set[s] && s != br.Entry && b != br.Exit {
				inside++
			}
		}
		if inside == 2 {
			br.IFs++
		} else {
			br.Guards++
		}
	}
}

// MergedPathCount returns how many paths were merged into the braid.
func (br *Braid) MergedPathCount() int { return len(br.Paths) }

// BranchMemDeps counts memory operations in the braid that remain
// control-dependent on an internal IF: memory ops in blocks that are not
// on every merged path (Section IV-B "Braids enable memory speculation").
// Memory ops in common blocks become control independent once the guards
// speculate the region as a unit.
func (br *Braid) BranchMemDeps() int {
	if len(br.Paths) == 0 {
		return 0
	}
	common := make(map[*ir.Block]int)
	for _, p := range br.Paths {
		seen := make(map[*ir.Block]bool)
		for _, b := range p.Blocks {
			if !seen[b] {
				seen[b] = true
				common[b]++
			}
		}
	}
	n := 0
	for _, b := range br.Blocks {
		if common[b] == len(br.Paths) {
			continue // on every path: control independent after framing
		}
		for _, in := range b.Instrs {
			if in.Op.IsMemory() {
				n++
			}
		}
	}
	return n
}

// BuildPathTrees implements the DySER-style merge policy the paper
// contrasts braids with (Section IV-B "Relationship to Hyperblocks,
// Path-Trees"): paths are grouped by shared *entry only*, so a tree may
// fan out to different exit blocks with different live-out sets — the
// property that forces extra live-out plumbing and makes the paper prefer
// braids. Returned trees are ranked by total weight.
func BuildPathTrees(fp *profile.FunctionProfile, maxPaths int) []*Braid {
	groups := make(map[int][]*profile.Path)
	var order []int
	for _, p := range fp.Paths {
		if len(p.Blocks) == 0 {
			continue
		}
		k := p.Blocks[0].Index
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		if maxPaths > 0 && len(groups[k]) >= maxPaths {
			continue
		}
		groups[k] = append(groups[k], p)
	}
	trees := make([]*Braid, 0, len(order))
	for _, k := range order {
		trees = append(trees, buildBraid(fp, groups[k]))
	}
	sort.SliceStable(trees, func(i, j int) bool {
		return braidWeight(trees[i]) > braidWeight(trees[j])
	})
	return trees
}

// LiveOutSpread returns how many distinct exit blocks a merged region's
// constituent paths end at: 1 for braids by construction, possibly more
// for path trees (each exit implies its own live-out set).
func (br *Braid) LiveOutSpread() int {
	exits := make(map[*ir.Block]bool)
	for _, p := range br.Paths {
		if len(p.Blocks) > 0 {
			exits[p.Blocks[len(p.Blocks)-1]] = true
		}
	}
	return len(exits)
}
