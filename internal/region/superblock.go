package region

import (
	"needle/internal/ir"
	"needle/internal/profile"
)

// Superblock is the edge-profile-guided trace baseline (Section II-B):
// starting from a seed block, the trace repeatedly follows the most
// frequently executed successor edge. Superblocks are single entry,
// multiple exit, with a single flow of control.
//
// Because each extension decision is local to one branch, overlapping paths
// can mislead construction: the resulting block sequence may never occur in
// actual execution ("infeasible" superblocks, Figure 3), or may not be the
// hottest executed path.
type Superblock struct {
	Region

	// Feasible reports whether the superblock's block sequence occurs
	// contiguously in at least one executed Ball-Larus path.
	Feasible bool
	// HottestPath reports whether the sequence equals the hottest path.
	HottestPath bool
}

// BuildSuperblock grows a superblock from seed using the edge profile.
// Growth follows the highest-frequency successor edge and stops at back
// edges, at blocks already in the trace, at returns, and when the best
// edge's bias falls below minBias (pass 0 to grow maximally).
func BuildSuperblock(fp *profile.FunctionProfile, seed *ir.Block, minBias float64) *Superblock {
	var blocks []*ir.Block
	in := make(map[*ir.Block]bool)
	cur := seed
	for cur != nil && !in[cur] {
		blocks = append(blocks, cur)
		in[cur] = true
		t := cur.Term()
		if t == nil || t.Op == ir.OpRet {
			break
		}
		var best *ir.Block
		var bestCount, total int64
		for _, s := range t.Blocks {
			c := fp.EdgeCounts[profile.Edge{From: cur.Index, To: s.Index}]
			total += c
			if best == nil || c > bestCount {
				best, bestCount = s, c
			}
		}
		if best == nil || bestCount == 0 {
			break
		}
		if minBias > 0 && float64(bestCount) < minBias*float64(total) {
			break
		}
		if fp.DAG.IsBackEdge(cur, best) {
			break
		}
		cur = best
	}

	sb := &Superblock{Region: *newRegion(fp.F, KindSuperblock, blocks)}
	sb.Feasible = sequenceExecuted(fp, blocks)
	if hot := fp.HottestPath(); hot != nil {
		sb.HottestPath = sameBlockSeq(blocks, hot.Blocks)
	}
	return sb
}

// sequenceExecuted reports whether seq appears as a contiguous subsequence
// of some executed path's block sequence.
func sequenceExecuted(fp *profile.FunctionProfile, seq []*ir.Block) bool {
	if len(seq) == 0 {
		return false
	}
	for _, p := range fp.Paths {
		if containsSeq(p.Blocks, seq) {
			return true
		}
	}
	return false
}

func containsSeq(haystack, needle []*ir.Block) bool {
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j := range needle {
			if haystack[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

func sameBlockSeq(a, b []*ir.Block) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
