package region

import (
	"fmt"

	"needle/internal/profile"
)

// BraidData is the pure serializable core of a Braid: the IDs of its merged
// paths, in merge order. Everything else about a braid — block set, entry
// and exit, topological order, guard/IF classification — is a deterministic
// function of those paths, recomputed by BraidFromData.
type BraidData struct {
	PathIDs []int64
}

// Data extracts the serializable core of the braid.
func (br *Braid) Data() BraidData {
	d := BraidData{PathIDs: make([]int64, len(br.Paths))}
	for i, p := range br.Paths {
		d.PathIDs[i] = p.ID
	}
	return d
}

// BraidFromData rebuilds a braid from its merged-path IDs against a
// (possibly rehydrated) profile, reproducing buildBraid exactly. The paths
// must all exist in fp and agree on entry and exit blocks, as the original
// braid's did.
func BraidFromData(fp *profile.FunctionProfile, d BraidData) (*Braid, error) {
	if len(d.PathIDs) == 0 {
		return nil, fmt.Errorf("region: braid data has no paths")
	}
	paths := make([]*profile.Path, len(d.PathIDs))
	for i, id := range d.PathIDs {
		p := fp.PathByID(id)
		if p == nil {
			return nil, fmt.Errorf("region: braid path %d not in profile of %s", id, fp.F.Name)
		}
		paths[i] = p
	}
	return buildBraid(fp, paths), nil
}
