package region

import (
	"needle/internal/ir"
	"needle/internal/pm"
)

// ControlFlowStats is the static characterization of one (hot) function
// reported in Table I.
type ControlFlowStats struct {
	// AvgBranchMem is the average number of memory operations
	// control-dependent on a conditional branch (the Branch=>Mem rows).
	AvgBranchMem float64
	// AvgMemBranch is the average number of memory operations feeding a
	// conditional branch's condition through data dependences (Mem=>Branch).
	AvgMemBranch float64
	// PredicationBits is the number of conditional branches that full
	// if-conversion of the function would predicate (Max. predication).
	PredicationBits int
	// BackwardBranches is the number of loop back edges (Loops row).
	BackwardBranches int
	// Branches is the total number of conditional branches.
	Branches int
}

// Characterize computes the Table I statistics for a function. Dominator,
// post-dominator, and control-dependence facts are served by am (nil for a
// one-shot manager), so callers that already analyzed f pay nothing extra.
func Characterize(am *pm.Manager, f *ir.Function) ControlFlowStats {
	am = pm.Ensure(am)
	stats := ControlFlowStats{
		BackwardBranches: len(am.BackEdges(f)),
	}

	// Map from register to defining instruction for backward slicing.
	defs := make(map[ir.Reg]*ir.Instr)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op.HasDest() {
				defs[in.Dst] = in
			}
		}
	}

	// Exact control dependence via the post-dominator tree
	// (Ferrante/Ottenstein/Warren).
	ctrlDeps := am.ControlDependents(f)

	var sumBranchMem, sumMemBranch int
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		stats.Branches++
		stats.PredicationBits++ // one predicate per if-converted branch
		sumMemBranch += loadsInSlice(t.Args[0], defs)
		for _, dep := range ctrlDeps[b] {
			for _, in := range dep.Instrs {
				if in.Op.IsMemory() {
					sumBranchMem++
				}
			}
		}
	}
	if stats.Branches > 0 {
		stats.AvgBranchMem = float64(sumBranchMem) / float64(stats.Branches)
		stats.AvgMemBranch = float64(sumMemBranch) / float64(stats.Branches)
	}
	return stats
}

// loadsInSlice counts load instructions in the backward data-dependence
// slice of reg (phi operands included, cycles broken with a visited set).
func loadsInSlice(reg ir.Reg, defs map[ir.Reg]*ir.Instr) int {
	visited := make(map[ir.Reg]bool)
	var walk func(r ir.Reg) int
	walk = func(r ir.Reg) int {
		if visited[r] {
			return 0
		}
		visited[r] = true
		in, ok := defs[r]
		if !ok {
			return 0 // parameter
		}
		n := 0
		if in.Op == ir.OpLoad {
			n++
		}
		for _, a := range in.Args {
			n += walk(a)
		}
		return n
	}
	return walk(reg)
}
