package region

import (
	"needle/internal/ir"
	"needle/internal/pm"
	"needle/internal/profile"
)

// Hyperblock is the if-conversion baseline (Mahlke et al., MICRO 1992;
// Section II-B of the paper): a single-entry acyclic region that folds both
// sides of branches in via predication. Construction makes local decisions,
// so hyperblocks can absorb blocks that rarely execute — the "cold ops" that
// Figure 5 charges against them — and they require predicate bits for every
// if-converted branch.
type Hyperblock struct {
	Region

	// PredBits is the number of conditional branches if-converted inside the
	// region; each needs a predicate (Table I's "Max. predication" counts
	// these for the fully inlined hot function).
	PredBits int
	// ColdOps is the number of operations in included blocks whose dynamic
	// execution count is below coldFraction of the entry block's count
	// (Figure 5's wasted work).
	ColdOps int
	// TailDup is the number of candidate blocks excluded because they had
	// side entries and would need tail duplication.
	TailDup int
	// ColdFraction is the threshold used for the ColdOps classification.
	ColdFraction float64
}

// BuildHyperblock if-converts the forward-reachable, single-entry region
// rooted at entry. A block joins the region when every one of its forward
// predecessors is already inside (so the region keeps a single entry);
// blocks with outside predecessors are tallied as tail-duplication
// candidates instead. Growth never crosses back edges, keeping the region
// acyclic. coldFraction classifies included blocks executed less than that
// fraction of the entry count as cold (the paper's "infrequently executed"
// operations).
//
// BuildHyperblock includes every reconvergent block regardless of
// frequency — the local-decision behaviour Figure 5 charges with wasted
// operations. BuildTunedHyperblock applies the classic inclusion heuristic
// instead.
func BuildHyperblock(am *pm.Manager, fp *profile.FunctionProfile, entry *ir.Block, coldFraction float64) *Hyperblock {
	return buildHyperblock(am, fp, entry, coldFraction, 0)
}

// BuildTunedHyperblock excludes blocks executed less than includeFraction
// of the entry count (side exits form there), the heuristic real
// hyperblock compilers use to bound wasted work. Used by the Figure 2
// design-space baseline.
func BuildTunedHyperblock(am *pm.Manager, fp *profile.FunctionProfile, entry *ir.Block, coldFraction, includeFraction float64) *Hyperblock {
	return buildHyperblock(am, fp, entry, coldFraction, includeFraction)
}

func buildHyperblock(am *pm.Manager, fp *profile.FunctionProfile, entry *ir.Block, coldFraction, includeFraction float64) *Hyperblock {
	if coldFraction <= 0 {
		coldFraction = 0.1
	}
	f := fp.F
	dom := pm.Ensure(am).Dominators(f)
	isBack := func(u, v *ir.Block) bool { return dom.Dominates(v, u) }

	set := map[*ir.Block]bool{entry: true}
	order := []*ir.Block{entry}
	tailDup := 0
	// Iterate to a fixed point: a successor is admitted once all its forward
	// predecessors are in the region.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(order); i++ {
			b := order[i]
			for _, s := range b.Succs() {
				if set[s] || isBack(b, s) || s == entry {
					continue
				}
				if includeFraction > 0 &&
					float64(fp.BlockCounts[s.Index]) < includeFraction*float64(fp.BlockCounts[entry.Index]) {
					continue // heuristic exclusion: too cold to if-convert
				}
				allIn := true
				for _, p := range s.Preds {
					if isBack(p, s) {
						continue
					}
					if !set[p] {
						allIn = false
						break
					}
				}
				if !allIn {
					continue
				}
				// Never grow past a returning block's successors implicitly;
				// returning blocks simply have none.
				set[s] = true
				order = append(order, s)
				changed = true
			}
		}
	}
	// Count tail-duplication candidates: blocks with at least one forward
	// predecessor inside and at least one outside.
	for _, b := range f.Blocks {
		if set[b] {
			continue
		}
		in, out := false, false
		for _, p := range b.Preds {
			if isBack(p, b) {
				continue
			}
			if set[p] {
				in = true
			} else {
				out = true
			}
		}
		if in && out {
			tailDup++
		}
	}

	hb := &Hyperblock{Region: *newRegion(f, KindHyperblock, order), TailDup: tailDup, ColdFraction: coldFraction}
	hb.Entry = entry
	hb.Exit = order[len(order)-1]

	entryCount := fp.BlockCounts[entry.Index]
	threshold := coldFraction * float64(entryCount)
	for _, b := range order {
		t := b.Term()
		if t != nil && t.Op == ir.OpCondBr {
			bothIn := set[t.Blocks[0]] && set[t.Blocks[1]] &&
				!isBack(b, t.Blocks[0]) && !isBack(b, t.Blocks[1])
			if bothIn {
				hb.PredBits++
			}
		}
		if float64(fp.BlockCounts[b.Index]) < threshold {
			hb.ColdOps += b.NumOps()
		}
	}
	return hb
}

// ColdOpFraction returns ColdOps relative to the hyperblock's size, the
// quantity Figure 5 plots.
func (hb *Hyperblock) ColdOpFraction() float64 {
	n := hb.NumOps()
	if n == 0 {
		return 0
	}
	return float64(hb.ColdOps) / float64(n)
}

// SizeVsBlock returns the ratio of hyperblock operations to the operations
// of its entry block alone — the "Hyperblocks only attain ~2.2x the basic
// block granularity" comparison of Section II-A.
func (hb *Hyperblock) SizeVsBlock() float64 {
	base := hb.Entry.NumOps()
	if base == 0 {
		return 0
	}
	return float64(hb.NumOps()) / float64(base)
}
