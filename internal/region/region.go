// Package region implements Needle's offload-region formation: BL-Path
// regions (Section III), Braids (Section IV-B), and the Superblock and
// Hyperblock baselines it is evaluated against (Section II-B). It also
// provides the static control-flow characterization behind Table I.
package region

import (
	"fmt"

	"needle/internal/analysis"
	"needle/internal/ir"
	"needle/internal/pm"
	"needle/internal/profile"
)

// Kind distinguishes the region formation strategies.
type Kind uint8

const (
	KindPath Kind = iota
	KindBraid
	KindSuperblock
	KindHyperblock
)

func (k Kind) String() string {
	switch k {
	case KindPath:
		return "bl-path"
	case KindBraid:
		return "braid"
	case KindSuperblock:
		return "superblock"
	case KindHyperblock:
		return "hyperblock"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Region is a single-entry single-exit set of basic blocks selected for
// offload. Blocks is ordered: path order for BL-Paths and Superblocks,
// topological order for Braids and Hyperblocks.
type Region struct {
	F      *ir.Function
	Kind   Kind
	Blocks []*ir.Block
	Set    map[*ir.Block]bool
	Entry  *ir.Block
	Exit   *ir.Block

	// Paths holds the constituent profiled paths (BL-Path and Braid kinds).
	Paths []*profile.Path
}

func newRegion(f *ir.Function, kind Kind, blocks []*ir.Block) *Region {
	r := &Region{F: f, Kind: kind, Blocks: blocks, Set: make(map[*ir.Block]bool, len(blocks))}
	for _, b := range blocks {
		r.Set[b] = true
	}
	if len(blocks) > 0 {
		r.Entry = blocks[0]
		r.Exit = blocks[len(blocks)-1]
	}
	return r
}

// Contains reports whether the region includes b.
func (r *Region) Contains(b *ir.Block) bool { return r.Set[b] }

// NumOps returns the number of non-terminator instructions in the region
// (the "#Ins." columns of Tables II and IV).
func (r *Region) NumOps() int {
	n := 0
	for _, b := range r.Blocks {
		n += b.NumOps()
	}
	return n
}

// NumBranches returns the number of conditional branches in the region
// (the ♦ columns).
func (r *Region) NumBranches() int {
	n := 0
	for _, b := range r.Blocks {
		if t := b.Term(); t != nil && t.Op == ir.OpCondBr {
			n++
		}
	}
	return n
}

// NumMemOps returns the number of loads and stores in the region.
func (r *Region) NumMemOps() int {
	n := 0
	for _, b := range r.Blocks {
		for _, in := range b.Instrs {
			if in.Op.IsMemory() {
				n++
			}
		}
	}
	return n
}

// PhiCancel returns the number of phi instructions in non-entry region
// blocks. When a single flow of control is extracted (a BL-Path frame),
// every such phi resolves to a plain copy and disappears from the dataflow
// graph — the C6 "φ ops cancel" column of Table II and the hardware-
// selection-operator saving discussed in Section III-B.
func (r *Region) PhiCancel() int {
	n := 0
	for _, b := range r.Blocks {
		if b == r.Entry {
			continue
		}
		n += len(b.Phis())
	}
	return n
}

// LiveValues computes the live-in and live-out registers of the region
// (the ↓,↑ columns): live-ins are registers read inside the region but
// defined outside it (parameters included); live-outs are registers defined
// inside the region that are consumed after it. Function liveness is served
// by am (nil for a one-shot manager).
func (r *Region) LiveValues(am *pm.Manager) (liveIn, liveOut []ir.Reg) {
	nr := r.F.NumRegs()
	defsIn := analysis.NewRegSet(nr)
	for _, b := range r.Blocks {
		for _, in := range b.Instrs {
			if in.Op.HasDest() {
				defsIn.Add(in.Dst)
			}
		}
	}
	inSet := analysis.NewRegSet(nr)
	for _, b := range r.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi && b == r.Entry {
				// Entry phis draw their value from outside the region at
				// invocation time: every incoming value is a live-in, even
				// when its defining block is inside the region (the region
				// is acyclic, so such a value comes from the previous
				// dynamic instance).
				for _, a := range in.Args {
					inSet.Add(a)
				}
				continue
			}
			in.Uses(func(reg ir.Reg) {
				if !defsIn.Has(reg) {
					inSet.Add(reg)
				}
			})
		}
	}

	lv := pm.Ensure(am).Liveness(r.F)
	outSet := analysis.NewRegSet(nr)
	// A region-defined value is live-out if it is live on any edge leaving
	// the region (including the exit block's successors): word-AND the
	// successor's live-in set against the region's defs.
	for _, b := range r.Blocks {
		for _, s := range b.Succs() {
			if r.Set[s] && b != r.Exit {
				continue
			}
			for w, v := range lv.In[s.Index] {
				outSet[w] |= v & defsIn[w]
			}
			// Phi uses in the successor attributed to this edge.
			for _, phi := range s.Phis() {
				for i, from := range phi.Blocks {
					if from == b && defsIn.Has(phi.Args[i]) {
						outSet.Add(phi.Args[i])
					}
				}
			}
		}
	}
	// Exit via return: the returned value is live-out.
	if t := r.Exit.Term(); t != nil && t.Op == ir.OpRet && len(t.Args) == 1 && defsIn.Has(t.Args[0]) {
		outSet.Add(t.Args[0])
	}

	return inSet.Regs(), outSet.Regs()
}

// FromBlock builds a single-basic-block region: the offload granularity of
// the compound-function-unit designs in Figure 2's first column (BERET-like
// accelerators that terminate fusion at branches).
func FromBlock(f *ir.Function, b *ir.Block) *Region {
	return newRegion(f, KindPath, []*ir.Block{b})
}

// FromPath builds a single-flow region from a profiled BL-Path.
func FromPath(f *ir.Function, p *profile.Path) *Region {
	r := newRegion(f, KindPath, p.Blocks)
	r.Paths = []*profile.Path{p}
	return r
}

// Coverage returns the fraction of the function's dynamic instructions the
// region's constituent paths cover (0 for superblocks/hyperblocks, which
// carry no path attribution).
func (r *Region) Coverage(fp *profile.FunctionProfile) float64 {
	var c float64
	for _, p := range r.Paths {
		c += p.Coverage(fp)
	}
	return c
}
