package workloads

import (
	"fmt"

	"needle/internal/ir"
)

// Loop scaffolds a counted loop with loop-carried values. Usage:
//
//	l := NewLoop(b, "main", n, init0, init1)
//	... body emitted into l.Body using l.I and l.Carried(k) ...
//	l.End(next0, next1)   // wires the latch; builder continues in l.Exit
//
// The body may branch internally; End is called with the builder positioned
// at the single block that re-enters the loop. Early exits may branch
// directly to l.Exit.
type Loop struct {
	b       *ir.Builder
	Head    *ir.Block
	Body    *ir.Block
	Exit    *ir.Block
	I       ir.Reg
	carried []ir.Reg
	inits   []ir.Reg
	entry   *ir.Block
	one     ir.Reg
	n       ir.Reg
}

// NewLoop starts a loop running i = 0..n-1 with the given loop-carried
// initial values. The builder must be positioned in the preheader; on
// return it is positioned at the top of the loop body.
func NewLoop(b *ir.Builder, name string, n ir.Reg, inits ...ir.Reg) *Loop {
	l := &Loop{b: b, inits: inits, n: n, entry: b.Block()}
	zero := b.ConstI(0)
	l.one = b.ConstI(1)
	l.Head = b.NewBlock(name + ".head")
	l.Body = b.NewBlock(name + ".body")
	l.Exit = b.NewBlock(name + ".exit")
	b.Br(l.Head)

	b.SetBlock(l.Head)
	l.I = b.Phi(ir.I64)
	b.AddIncoming(l.I, l.entry, zero)
	for _, init := range inits {
		p := b.Phi(b.Func().RegType[init])
		b.AddIncoming(p, l.entry, init)
		l.carried = append(l.carried, p)
	}
	cond := b.CmpLT(l.I, n)
	b.CondBr(cond, l.Body, l.Exit)
	b.SetBlock(l.Body)
	return l
}

// Carried returns the phi for the k-th loop-carried value.
func (l *Loop) Carried(k int) ir.Reg { return l.carried[k] }

// Latch closes the builder's current block as a loop latch, passing the
// next iteration's carried values. A loop may have several latches
// (C-style `continue` paths); Ball-Larus paths through different latches
// end at different blocks and therefore form different braid groups.
func (l *Loop) Latch(next ...ir.Reg) {
	if len(next) != len(l.carried) {
		panic(fmt.Sprintf("workloads: loop carries %d values, Latch got %d", len(l.carried), len(next)))
	}
	latch := l.b.Block()
	i2 := l.b.Add(l.I, l.one)
	l.b.Br(l.Head)
	l.b.AddIncoming(l.I, latch, i2)
	for k, nx := range next {
		l.b.AddIncoming(l.carried[k], latch, nx)
	}
}

// Done positions the builder at the loop exit after all latches are wired.
func (l *Loop) Done() { l.b.SetBlock(l.Exit) }

// End closes the loop from the builder's current block, passing the next
// iteration's carried values. The builder continues in l.Exit.
func (l *Loop) End(next ...ir.Reg) {
	l.Latch(next...)
	l.Done()
}

// ContinueIf emits a top-of-iteration split: when cond holds, the iteration
// runs the short light() body and re-enters the loop through a dedicated
// latch; otherwise control falls through into the heavy body that follows.
// light returns the carried next values for the light latch. The builder
// continues in the heavy block.
func (l *Loop) ContinueIf(name string, cond ir.Reg, light func() []ir.Reg) {
	b := l.b
	lightB := b.NewBlock(name + ".light")
	heavyB := b.NewBlock(name + ".heavy")
	b.CondBr(cond, lightB, heavyB)
	b.SetBlock(lightB)
	l.Latch(light()...)
	b.SetBlock(heavyB)
}

// LatchSwitch routes the iteration's re-entry through one of several tiny
// latch variants selected by sel in [0, n), splitting the loop's paths into
// n braid groups (the shape of interpreter-style code whose iterations end
// in many different places). Each variant adds a small distinct operation
// to the first carried value (which must be i64).
func (l *Loop) LatchSwitch(name string, sel ir.Reg, n int, next ...ir.Reg) {
	b := l.b
	cases := make([]func() ir.Reg, n)
	for c := 0; c < n; c++ {
		cval := int64(c)
		cases[c] = func() ir.Reg { return b.Add(next[0], b.ConstI(cval)) }
	}
	merged := switchTree(b, name, sel, cases)
	// The switch tree reconverges; to split braid groups we need distinct
	// latch blocks, so dispatch again into n latch stubs.
	latchSel := b.And(sel, b.ConstI(int64(n-1)))
	remaining := next[1:]
	var emit func(lo, hi int, tag string)
	emit = func(lo, hi int, tag string) {
		if hi-lo == 1 {
			vals := append([]ir.Reg{b.Add(merged, b.ConstI(int64(lo)))}, remaining...)
			l.Latch(vals...)
			return
		}
		mid := (lo + hi) / 2
		lb := b.NewBlock(fmt.Sprintf("%s.%s.a", name, tag))
		rb := b.NewBlock(fmt.Sprintf("%s.%s.b", name, tag))
		c := b.CmpLT(latchSel, b.ConstI(int64(mid)))
		b.CondBr(c, lb, rb)
		b.SetBlock(lb)
		emit(lo, mid, tag+"a")
		b.SetBlock(rb)
		emit(mid, hi, tag+"b")
	}
	emit(0, n, "d")
}

// diamond emits an if/else producing a merged value:
//
//	merged := diamond(b, name, cond, func() taken, func() notTaken)
//
// Each side function emits its block's body and returns the value flowing to
// the merge. Sides must not terminate their blocks.
func diamond(b *ir.Builder, name string, cond ir.Reg, taken, notTaken func() ir.Reg) ir.Reg {
	tb := b.NewBlock(name + ".t")
	fb := b.NewBlock(name + ".f")
	join := b.NewBlock(name + ".j")
	b.CondBr(cond, tb, fb)

	b.SetBlock(tb)
	tv := taken()
	tEnd := b.Block()
	b.Br(join)

	b.SetBlock(fb)
	fv := notTaken()
	fEnd := b.Block()
	b.Br(join)

	b.SetBlock(join)
	p := b.Phi(b.Func().RegType[tv])
	b.AddIncoming(p, tEnd, tv)
	b.AddIncoming(p, fEnd, fv)
	return p
}

// sideEffectIf emits an if-then (no else) whose taken side only performs
// side effects (stores) and produces no merged value.
func sideEffectIf(b *ir.Builder, name string, cond ir.Reg, taken func()) {
	tb := b.NewBlock(name + ".t")
	join := b.NewBlock(name + ".j")
	b.CondBr(cond, tb, join)
	b.SetBlock(tb)
	taken()
	b.Br(join)
	b.SetBlock(join)
}

// lcgStep emits one step of a 64-bit linear congruential generator in
// registers: x' = x*6364136223846793005 + 1442695040888963407. It produces
// data-dependent branch conditions without touching memory (used by the
// kernels whose namesakes have register-resident hot paths).
func lcgStep(b *ir.Builder, x ir.Reg) ir.Reg {
	a := b.ConstI(6364136223846793005)
	c := b.ConstI(1442695040888963407)
	return b.Add(b.Mul(x, a), c)
}

// bits extracts ((x >> shift) & mask) as an i64.
func bits(b *ir.Builder, x ir.Reg, shift, mask int64) ir.Reg {
	return b.And(b.Shr(x, b.ConstI(shift)), b.ConstI(mask))
}

// switchTree emits a balanced binary dispatch tree over sel in [0, len(cases))
// and returns the merged i64 result. Each case function emits its leaf body
// and returns a value; leaves reconverge at a single join block. This is the
// interpreter/game-engine control-flow shape (crafty, sjeng, gcc): many
// branches, path count linear in the number of leaves.
func switchTree(b *ir.Builder, name string, sel ir.Reg, cases []func() ir.Reg) ir.Reg {
	join := b.NewBlock(name + ".j")
	type incoming struct {
		from *ir.Block
		val  ir.Reg
	}
	var incomings []incoming

	var emit func(lo, hi int, tag string)
	emit = func(lo, hi int, tag string) {
		if hi-lo == 1 {
			v := cases[lo]()
			incomings = append(incomings, incoming{b.Block(), v})
			b.Br(join)
			return
		}
		mid := (lo + hi) / 2
		lb := b.NewBlock(fmt.Sprintf("%s.%s.l", name, tag))
		rb := b.NewBlock(fmt.Sprintf("%s.%s.r", name, tag))
		c := b.CmpLT(sel, b.ConstI(int64(mid)))
		b.CondBr(c, lb, rb)
		b.SetBlock(lb)
		emit(lo, mid, tag+"l")
		b.SetBlock(rb)
		emit(mid, hi, tag+"r")
	}
	emit(0, len(cases), "n")

	b.SetBlock(join)
	phi := b.Phi(ir.I64)
	for _, inc := range incomings {
		b.AddIncoming(phi, inc.from, inc.val)
	}
	return phi
}

// BuildFigure3Kernel constructs the paper's Figure 3 scenario: a loop with
// two sequential diamonds whose outcomes alternate by iteration parity, so
// the block sequences that pure edge profiles splice together (taken,taken
// and not-taken,not-taken) never execute. Ball-Larus profiling identifies
// the two real paths exactly; a braid merges them without waste.
func BuildFigure3Kernel() *ir.Function {
	b := ir.NewBuilder("figure3", ir.I64)
	n := b.Param(0)
	l := NewLoop(b, "it", n, b.ConstI(0))

	two := b.ConstI(2)
	par := b.Rem(l.I, two)
	isEven := b.CmpEQ(par, b.ConstI(0))
	isOdd := b.CmpNE(par, b.ConstI(0))

	v1 := diamond(b, "d1", isEven,
		func() ir.Reg { return b.Add(l.Carried(0), two) },
		func() ir.Reg { return b.Sub(l.Carried(0), two) })
	v2 := diamond(b, "d2", isOdd,
		func() ir.Reg { return b.Mul(v1, two) },
		func() ir.Reg { return b.Add(v1, l.I) })
	masked := b.And(v2, b.ConstI(1048575))
	l.End(masked)
	b.Ret(l.Carried(0))
	return b.MustFinish()
}
