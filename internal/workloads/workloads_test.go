package workloads

import (
	"testing"

	"needle/internal/analysis"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/passes"
	"needle/internal/profile"
)

// collectAll profiles every workload once at a reduced size and caches the
// results for the characterization tests below.
var profiles = map[string]*profile.FunctionProfile{}

func prof(t testing.TB, name string, n int) *profile.FunctionProfile {
	t.Helper()
	if fp, ok := profiles[name]; ok {
		return fp
	}
	w := ByName(name)
	if w == nil {
		t.Fatalf("unknown workload %q", name)
	}
	f, args, mem := w.Instance(n)
	fp, err := profile.CollectFunction(nil, f, args, mem, true, 0)
	if err != nil {
		t.Fatalf("profile %s: %v", name, err)
	}
	profiles[name] = fp
	return fp
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 29 {
		t.Fatalf("registered %d workloads, want 29 (the paper's suite)", len(all))
	}
	suites := map[string]int{}
	for _, w := range all {
		suites[w.Suite]++
		if ByName(w.Name) != w {
			t.Errorf("ByName(%s) broken", w.Name)
		}
		if w.Notes == "" || w.DefaultN <= 0 {
			t.Errorf("%s: missing metadata", w.Name)
		}
	}
	if suites[SPEC] != 18 || suites[PARSEC] != 7 || suites[PERFECT] != 4 {
		t.Fatalf("suite split = %v, want SPEC 18 / PARSEC 7 / PERFECT 4", suites)
	}
	if len(Names()) != 29 {
		t.Fatal("Names() incomplete")
	}
}

func TestEveryKernelIsWellFormed(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			f := w.Function()
			if err := analysis.VerifySSA(f); err != nil {
				t.Fatalf("SSA dominance: %v", err)
			}
			if f2 := w.Function(); f2 != f {
				t.Fatal("Function() should cache")
			}
		})
	}
}

func TestEveryKernelRunsDeterministically(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			f, args, mem1 := w.Instance(300)
			r1, err := interp.Run(f, args, mem1, nil, 0)
			if err != nil {
				t.Fatalf("run 1: %v", err)
			}
			_, args2, mem2 := w.Instance(300)
			r2, err := interp.Run(f, args2, mem2, nil, 0)
			if err != nil {
				t.Fatalf("run 2: %v", err)
			}
			if r1.Ret != r2.Ret || r1.Steps != r2.Steps {
				t.Fatalf("nondeterministic: %v/%v vs %v/%v", r1.Ret, r1.Steps, r2.Ret, r2.Steps)
			}
			if r1.Steps < 1000 {
				t.Fatalf("suspiciously short run: %d steps", r1.Steps)
			}
		})
	}
}

// TestPathCountSignatures checks the defining Table II contrast: dispatch-
// style workloads execute orders of magnitude more paths than streaming
// ones.
func TestPathCountSignatures(t *testing.T) {
	const n = 2500
	many := []string{"186.crafty", "458.sjeng", "401.bzip2"}
	few := []string{"470.lbm", "183.equake", "482.sphinx3", "dwt53"}
	for _, name := range many {
		if got := prof(t, name, n).NumExecutedPaths(); got < 100 {
			t.Errorf("%s executed %d paths, want >= 100", name, got)
		}
	}
	for _, name := range few {
		if got := prof(t, name, n).NumExecutedPaths(); got > 10 {
			t.Errorf("%s executed %d paths, want <= 10", name, got)
		}
	}
}

// TestCoverageSignatures checks Table IV's coverage spread: lbm ~100%,
// the chess engines tiny.
func TestCoverageSignatures(t *testing.T) {
	const n = 2500
	if cov := prof(t, "470.lbm", n).CoverageTopK(1); cov < 0.9 {
		t.Errorf("lbm top-path coverage = %.2f, want ~1", cov)
	}
	if cov := prof(t, "186.crafty", n).CoverageTopK(5); cov > 0.2 {
		t.Errorf("crafty top-5 coverage = %.2f, want tiny", cov)
	}
}

// TestBiasSignatures checks Figure 4's contrast: the chess engines carry
// many unbiased branches; the streaming kernels almost none.
func TestBiasSignatures(t *testing.T) {
	const n = 2500
	if frac := prof(t, "186.crafty", n).FractionBelow80(); frac < 0.5 {
		t.Errorf("crafty fraction <80%% bias = %.2f, want > 0.5", frac)
	}
	if frac := prof(t, "470.lbm", n).FractionBelow80(); frac > 0.1 {
		t.Errorf("lbm fraction <80%% bias = %.2f, want ~0", frac)
	}
}

// TestFPSignatures: the FP-flagged kernels actually execute FP work.
func TestFPSignatures(t *testing.T) {
	for _, name := range []string{"470.lbm", "blackscholes", "444.namd"} {
		w := ByName(name)
		if !w.FP {
			t.Errorf("%s should be FP-flagged", name)
		}
		f := w.Function()
		hasFP := false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op.IsFloat() {
					hasFP = true
				}
			}
		}
		if !hasFP {
			t.Errorf("%s has no FP instructions", name)
		}
	}
}

// TestMemorySignatures: lbm is the most memory-intense hot path; the
// register-resident blackscholes hot path touches no memory at all.
func TestMemorySignatures(t *testing.T) {
	const n = 2500
	lbm := prof(t, "470.lbm", n).HottestPath()
	if lbm.MemOps < 30 {
		t.Errorf("lbm hot path has %d mem ops, want ~38", lbm.MemOps)
	}
	bs := prof(t, "blackscholes", n)
	// The pricing path (not the cached-skip path) carries no loads/stores;
	// find the biggest path and check.
	var biggest = bs.HottestPath()
	for _, p := range bs.TopK(10) {
		if p.Ops > biggest.Ops {
			biggest = p
		}
	}
	if biggest.MemOps != 0 {
		t.Errorf("blackscholes pricing path has %d mem ops, want 0", biggest.MemOps)
	}
}

// TestSequenceSignature: temporal runs make the hottest path repeat
// back-to-back in the vast majority of kernels (Table III).
func TestSequenceSignature(t *testing.T) {
	const n = 2500
	repeats := 0
	checked := 0
	for _, name := range []string{"164.gzip", "470.lbm", "183.equake", "456.hmmer", "streamcluster", "403.gcc"} {
		fp := prof(t, name, n)
		st, ok := fp.SequenceBias(fp.HottestPath().ID)
		if !ok {
			continue
		}
		checked++
		if st.SamePath && st.Bias > 0.8 {
			repeats++
		}
	}
	if repeats < checked-1 {
		t.Errorf("hot path repeats in only %d of %d streaming kernels", repeats, checked)
	}
}

func TestInstanceDefaultN(t *testing.T) {
	w := ByName("dwt53")
	_, args, _ := w.Instance(0)
	if interp.I(args[0]) != int64(w.DefaultN) {
		t.Fatalf("Instance(0) should use DefaultN, got %d", interp.I(args[0]))
	}
}

// TestNamdUsesCallsUntilInlined: namd's raw kernel contains a call (the LJ
// helper), which the pipeline flattens before profiling.
func TestNamdUsesCallsUntilInlined(t *testing.T) {
	f := ByName("444.namd").Function()
	calls := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				calls++
			}
		}
	}
	if calls == 0 {
		t.Fatal("namd should call the LJ helper")
	}
	inlined, err := passes.InlineAll(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range inlined.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				t.Fatal("inlining left a call behind")
			}
		}
	}
	// Same results either way.
	_, args, mem1 := ByName("444.namd").Instance(500)
	r1, err := interp.Run(f, args, mem1, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, args2, mem2 := ByName("444.namd").Instance(500)
	r2, err := interp.Run(inlined, args2, mem2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ret != r2.Ret {
		t.Fatalf("inlining changed namd's result: %v vs %v", r1.Ret, r2.Ret)
	}
}

// TestKernelsRoundTripTextualIR: every workload kernel (callees included)
// prints to .nir and parses back — the kernels double as a parser/printer
// stress corpus. The parser renumbers registers densely in definition
// order, so the textual form stabilizes after one normalization pass:
// parse∘print must be idempotent, and semantics must be preserved.
func TestKernelsRoundTripTextualIR(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m := ir.ModuleOf(w.Function())
			text := ir.PrintModule(m)
			m2, err := ir.Parse(text)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			norm := ir.PrintModule(m2)
			m3, err := ir.Parse(norm)
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			if ir.PrintModule(m3) != norm {
				t.Fatal("parse∘print not idempotent")
			}
			// Semantics preserved: run both on the workload's inputs.
			_, args, mem1 := w.Instance(200)
			r1, err := interp.Run(w.Function(), args, mem1, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			_, args2, mem2 := w.Instance(200)
			r2, err := interp.Run(m2.Funcs[0], args2, mem2, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if r1.Ret != r2.Ret || r1.Steps != r2.Steps {
				t.Fatal("textual round trip changed semantics")
			}
		})
	}
}
