package workloads

import (
	"math"

	"needle/internal/ir"
)

// SPEC FP kernels: floating-point dominated hot loops. Light `continue`
// paths split the loop's Ball-Larus paths into separate braid groups so the
// hottest braid's coverage lands near the namesake's Table IV value.

func fbits(v float64) uint64 { return math.Float64bits(v) }

// art: adaptive resonance F1 update — losing neurons skip via two light
// paths; winners run the FP update. Hot-braid coverage ~0.36.
var Art = register(&Workload{
	Name: "179.art", Suite: SPEC, FP: true,
	Notes:    "neural match: two skip continues, FP winner update",
	DefaultN: 12000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("art_match", ir.I64, ir.I64, ir.I64)
		n, wts, ins := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(4095)
		l := NewLoop(b, "f1", n, b.ConstF(0))

		idx := b.And(l.I, mask)
		w := b.Load(ir.F64, b.Add(wts, idx))
		x := b.Load(ir.F64, b.Add(ins, idx))
		prod := b.FMul(w, x)
		// Far-losers and near-losers leave through distinct latches.
		l.ContinueIf("f1.far", b.FCmpLT(prod, b.ConstF(0.25)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		l.ContinueIf("f1.near", b.FCmpLT(prod, b.ConstF(0.8)), func() []ir.Reg {
			return []ir.Reg{b.FAdd(l.Carried(0), b.ConstF(0.001))}
		})
		y := b.FAdd(l.Carried(0), prod)
		y = b.FMul(y, b.ConstF(0.995))
		y = b.FAdd(y, b.FMul(prod, b.ConstF(0.01)))
		res := diamond(b, "vig", b.FCmpGT(y, b.ConstF(1e6)),
			func() ir.Reg { return b.FMul(y, b.ConstF(0.5)) },
			func() ir.Reg { return y })
		l.End(res)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("179.art")
		fillRuns(r, mem[:4096], 30, func() uint64 { return fbits(r.Float64()) })
		fillRuns(r, mem[4096:], 30, func() uint64 { return fbits(r.Float64() * 2) })
		return []uint64{uint64(n), 0, 4096}
	},
})

// equake: sparse matrix-vector product — empty rows skip; full rows run a
// long unrolled FP body. Coverage ~0.77.
var Equake = register(&Workload{
	Name: "183.equake", Suite: SPEC, FP: true,
	Notes:    "sparse matvec: empty-row continue, long unrolled FP body",
	DefaultN: 4000,
	MemWords: func(n int) int { return 16384 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("equake_smvp", ir.I64, ir.I64, ir.I64)
		n, a, v := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(8191)
		l := NewLoop(b, "row", n, b.ConstF(0))

		base := b.And(b.Mul(l.I, b.ConstI(8)), mask)
		first := b.Load(ir.F64, b.Add(a, base))
		l.ContinueIf("row.empty", b.FCmpLT(first, b.ConstF(0.12)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		sum := b.FMul(first, b.Load(ir.F64, b.Add(v, base)))
		for k := 1; k < 8; k++ {
			off := b.ConstI(int64(k))
			av := b.Load(ir.F64, b.Add(a, b.And(b.Add(base, off), mask)))
			vv := b.Load(ir.F64, b.Add(v, b.And(b.Add(base, b.Shl(off, b.ConstI(1))), mask)))
			sum = b.FAdd(sum, b.FMul(av, vv))
		}
		res := diamond(b, "anc", b.FCmpGT(sum, b.ConstF(60)),
			func() ir.Reg { return b.FMul(sum, b.ConstF(0.25)) },
			func() ir.Reg { return sum })
		l.End(b.FAdd(l.Carried(0), res))
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("183.equake")
		fillRuns(r, mem, 40, func() uint64 { return fbits(r.Float64()) })
		return []uint64{uint64(n), 0, 8192}
	},
})

// buildLJHelper constructs the Lennard-Jones evaluation as a separate
// function: namd's hot loop calls it, and the pipeline's aggressive
// inlining (passes.InlineAll in core.Analyze) flattens it before profiling
// — the paper's "fully inlined hottest function" flow, exercised on a real
// workload rather than only in tests.
func buildLJHelper() *ir.Function {
	b := ir.NewBuilder("lj_eval", ir.F64)
	r2 := b.Param(0)
	r1 := b.Sqrt(r2)
	inv := b.FDiv(b.ConstF(1), b.FAdd(r1, b.ConstF(1e-9)))
	inv2 := b.FMul(inv, inv)
	inv6 := b.FMul(b.FMul(inv2, inv2), inv2)
	lj := b.FSub(b.FMul(inv6, inv6), inv6)
	b.Ret(b.FMul(lj, b.ConstF(4)))
	return b.MustFinish()
}

// namd: pairwise force — out-of-cutoff pairs (the majority) take two light
// exits; in-cutoff pairs call the Lennard-Jones helper (inlined by the
// pipeline before profiling). Coverage ~0.42.
var Namd = register(&Workload{
	Name: "444.namd", Suite: SPEC, FP: true,
	Notes:    "pair force: cutoff continues, LJ helper call inlined by the pipeline",
	DefaultN: 8000,
	MemWords: func(n int) int { return 12288 },
	Build: func() *ir.Function {
		lj := buildLJHelper()
		b := ir.NewBuilder("namd_pairforce", ir.I64, ir.I64, ir.I64, ir.I64)
		n, xsArr, ysArr, zsArr := b.Param(0), b.Param(1), b.Param(2), b.Param(3)
		mask := b.ConstI(4095)
		l := NewLoop(b, "pair", n, b.ConstF(0))

		i1 := b.And(l.I, mask)
		i2 := b.And(b.Add(l.I, b.ConstI(91)), mask)
		x1 := b.Load(ir.F64, b.Add(xsArr, i1))
		x2 := b.Load(ir.F64, b.Add(xsArr, i2))
		dx := b.FSub(x1, x2)
		dx2 := b.FMul(dx, dx)
		// Quick reject on the x component alone.
		l.ContinueIf("pair.farx", b.FCmpGT(dx2, b.ConstF(1.1)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		y1 := b.Load(ir.F64, b.Add(ysArr, i1))
		y2 := b.Load(ir.F64, b.Add(ysArr, i2))
		z1 := b.Load(ir.F64, b.Add(zsArr, i1))
		z2 := b.Load(ir.F64, b.Add(zsArr, i2))
		dy := b.FSub(y1, y2)
		dz := b.FSub(z1, z2)
		r2 := b.FAdd(b.FAdd(dx2, b.FMul(dy, dy)), b.FMul(dz, dz))
		l.ContinueIf("pair.far", b.FCmpGE(r2, b.ConstF(1.2)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})

		force := b.Call(lj, r2)
		fin := diamond(b, "exc", b.FCmpGT(force, b.ConstF(1e5)),
			func() ir.Reg { return b.ConstF(0) },
			func() ir.Reg { return force })
		l.End(b.FAdd(l.Carried(0), fin))
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("444.namd")
		fillRuns(r, mem, 16, func() uint64 { return fbits(r.Float64() * 1.5) })
		return []uint64{uint64(n), 0, 4096, 8192}
	},
})

// soplex: steepest-edge pricing — fixed columns skip; candidate columns run
// the ratio test. Coverage ~0.57.
var Soplex = register(&Workload{
	Name: "450.soplex", Suite: SPEC, FP: true,
	Notes:    "simplex pricing: fixed-column continue, FP ratio test",
	DefaultN: 10000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("soplex_price", ir.I64, ir.I64, ir.I64)
		n, objArr, normArr := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(4095)
		l := NewLoop(b, "col", n, b.ConstF(-1))

		idx := b.And(l.I, mask)
		obj := b.Load(ir.F64, b.Add(objArr, idx))
		l.ContinueIf("col.fixed", b.FCmpLT(obj, b.ConstF(0.42)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		nrm := b.Load(ir.F64, b.Add(normArr, idx))
		ratio := b.FDiv(b.FMul(obj, obj), b.FAdd(nrm, b.ConstF(1e-9)))
		best := diamond(b, "imp", b.FCmpGT(ratio, l.Carried(0)),
			func() ir.Reg { return ratio },
			func() ir.Reg { return l.Carried(0) })
		dec := diamond(b, "dec", b.FCmpGT(best, b.ConstF(500)),
			func() ir.Reg { return b.FMul(best, b.ConstF(0.99)) },
			func() ir.Reg { return best })
		l.End(dec)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("450.soplex")
		fillRuns(r, mem, 26, func() uint64 { return fbits(r.Float64() + 0.1) })
		return []uint64{uint64(n), 0, 4096}
	},
})

// povray: ray-primitive intersection — an empty-cell continue, then a
// battery of discriminant tests. Coverage ~0.85.
var Povray = register(&Workload{
	Name: "453.povray", Suite: SPEC, FP: true,
	Notes:    "ray intersection: empty-cell continue, 8-branch FP body",
	DefaultN: 10000,
	MemWords: func(n int) int { return 16384 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("povray_intersect", ir.I64, ir.I64, ir.I64)
		n, sph, ray := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(8191)
		l := NewLoop(b, "ray", n, b.ConstF(0))

		probe := b.Load(ir.F64, b.Add(ray, b.And(l.I, mask)))
		l.ContinueIf("ray.empty", b.FCmpGT(probe, b.ConstF(0.8)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})

		hit := b.ConstF(0)
		for s := 0; s < 4; s++ {
			si := b.And(b.Add(l.I, b.ConstI(int64(s*511))), mask)
			cx := b.Load(ir.F64, b.Add(sph, si))
			dx := b.Load(ir.F64, b.Add(ray, si))
			bq := b.FMul(cx, dx)
			cq := b.FSub(b.FMul(cx, cx), b.ConstF(0.25))
			disc := b.FSub(b.FMul(bq, bq), cq)
			tag := string(rune('0' + s))
			hit = diamond(b, "disc"+tag, b.FCmpGT(disc, b.ConstF(0)),
				func() ir.Reg {
					root := b.Sqrt(disc)
					t0 := b.FSub(bq, root)
					return diamond(b, "clip"+tag, b.FCmpGT(t0, b.ConstF(0.01)),
						func() ir.Reg { return b.FAdd(hit, t0) },
						func() ir.Reg { return hit })
				},
				func() ir.Reg { return hit })
		}
		l.End(b.FAdd(l.Carried(0), hit))
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("453.povray")
		fillRuns(r, mem[:8192], 22, func() uint64 { return fbits(r.Float64()*2 - 1) })
		fillRuns(r, mem[8192:], 22, func() uint64 { return fbits(r.Float64()*2 - 1) })
		return []uint64{uint64(n), 0, 8192}
	},
})

// hmmer: Viterbi inner loop — a skip for masked cells, then the unrolled
// max-chain body. Coverage ~0.85.
var Hmmer = register(&Workload{
	Name: "456.hmmer", Suite: SPEC,
	Notes:    "viterbi: masked-cell continue, 6-branch max-chain, ~30 mem ops",
	DefaultN: 8000,
	MemWords: func(n int) int { return 20480 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("hmmer_viterbi", ir.I64, ir.I64, ir.I64, ir.I64)
		n, mm, im, dm := b.Param(0), b.Param(1), b.Param(2), b.Param(3)
		mask := b.ConstI(4095)
		l := NewLoop(b, "k", n, b.ConstI(0))

		probe := b.Load(ir.I64, b.Add(dm, b.And(l.I, mask)))
		l.ContinueIf("k.masked", b.CmpGE(probe, b.ConstI(880)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})

		acc := l.Carried(0)
		for u := 0; u < 2; u++ {
			idx := b.And(b.Add(l.I, b.ConstI(int64(u))), mask)
			mv := b.Load(ir.I64, b.Add(mm, idx))
			iv := b.Load(ir.I64, b.Add(im, idx))
			dv := b.Load(ir.I64, b.Add(dm, idx))
			tag := string(rune('0' + u))
			best := diamond(b, "mi"+tag, b.CmpGT(mv, iv),
				func() ir.Reg { return mv },
				func() ir.Reg { return iv })
			best2 := diamond(b, "md"+tag, b.CmpGT(best, dv),
				func() ir.Reg { return best },
				func() ir.Reg { return dv })
			sc := b.Add(best2, b.ConstI(3))
			b.Store(b.Add(mm, idx), sc)
			prev := b.Load(ir.I64, b.Add(im, b.And(b.Add(idx, b.ConstI(1)), mask)))
			upd := diamond(b, "ins"+tag, b.CmpGT(sc, prev),
				func() ir.Reg {
					b.Store(b.Add(im, idx), sc)
					return b.Add(acc, sc)
				},
				func() ir.Reg { return acc })
			acc = upd
		}
		l.End(acc)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("456.hmmer")
		fillRuns(r, mem, 18, func() uint64 { return uint64(r.Intn(1000)) })
		return []uint64{uint64(n), 0, 8192, 16384}
	},
})

// lbm: lattice-Boltzmann stream-collide — the largest straight-line FP body
// in the suite; a single braid covers essentially everything (paper: 100%).
var Lbm = register(&Workload{
	Name: "470.lbm", Suite: SPEC, FP: true,
	Notes:    "stream-collide: ~200-op straight-line FP body, 2 paths",
	DefaultN: 2500,
	MemWords: func(n int) int { return 40960 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("lbm_collide", ir.I64, ir.I64, ir.I64)
		n, grid, dst := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(16383)
		l := NewLoop(b, "cell", n, b.ConstF(0))

		base := b.And(b.Mul(l.I, b.ConstI(19)), mask)
		var fs []ir.Reg
		rho := b.ConstF(0)
		for k := 0; k < 19; k++ {
			fv := b.Load(ir.F64, b.Add(grid, b.And(b.Add(base, b.ConstI(int64(k))), mask)))
			fs = append(fs, fv)
			rho = b.FAdd(rho, fv)
		}
		ux := b.FSub(fs[1], fs[2])
		uy := b.FSub(fs[3], fs[4])
		uz := b.FSub(fs[5], fs[6])
		u2 := b.FAdd(b.FAdd(b.FMul(ux, ux), b.FMul(uy, uy)), b.FMul(uz, uz))
		omega := b.ConstF(1.85)
		for k := 0; k < 19; k++ {
			wk := b.ConstF(1.0 / 19.0)
			eq := b.FMul(wk, b.FAdd(rho, b.FMul(u2, b.ConstF(-1.5))))
			relaxed := b.FAdd(fs[k], b.FMul(omega, b.FSub(eq, fs[k])))
			b.Store(b.Add(dst, b.And(b.Add(base, b.ConstI(int64(k))), mask)), relaxed)
		}
		acc := diamond(b, "obst", b.FCmpLT(rho, b.ConstF(-1)),
			func() ir.Reg { return l.Carried(0) },
			func() ir.Reg { return b.FAdd(l.Carried(0), rho) })
		l.End(acc)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("470.lbm")
		for i := 0; i < 16384; i++ {
			mem[i] = fbits(r.Float64() * 0.1)
		}
		return []uint64{uint64(n), 0, 16384}
	},
})

// sphinx3: Gaussian mixture scoring — pruned mixtures skip early.
// Coverage ~0.82.
var Sphinx3 = register(&Workload{
	Name: "482.sphinx3", Suite: SPEC, FP: true,
	Notes:    "GMM scoring: prune continue, short FP body",
	DefaultN: 10000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("sphinx_gmm", ir.I64, ir.I64, ir.I64)
		n, mean, varr := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(4095)
		l := NewLoop(b, "mix", n, b.ConstF(0))

		idx := b.And(l.I, mask)
		m := b.Load(ir.F64, b.Add(mean, idx))
		l.ContinueIf("mix.prune", b.FCmpGT(m, b.ConstF(0.86)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		v := b.Load(ir.F64, b.Add(varr, idx))
		d := b.FSub(m, b.ConstF(0.5))
		score := b.FMul(b.FMul(d, d), v)
		score = b.FAdd(score, b.FMul(m, b.ConstF(0.125)))
		acc := diamond(b, "keep", b.FCmpLT(score, b.ConstF(0.4)),
			func() ir.Reg { return b.FAdd(l.Carried(0), score) },
			func() ir.Reg { return l.Carried(0) })
		l.End(acc)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("482.sphinx3")
		fillRuns(r, mem, 24, func() uint64 { return fbits(r.Float64()) })
		return []uint64{uint64(n), 0, 4096}
	},
})
