package workloads_test

import (
	"testing"

	"needle/internal/ir"
	"needle/internal/passes"
	"needle/internal/pm"
	"needle/internal/workloads"
)

// roundTrip asserts Parse(Print(m)) is an identity: the reparsed module
// verifies and re-prints to exactly the original text. This property is
// what lets the artifact store reference registers by number and blocks by
// position in persisted stage artifacts.
func roundTrip(t *testing.T, name string, m *ir.Module) {
	t.Helper()
	text := ir.PrintModule(m)
	m2, err := ir.Parse(text) // Parse verifies every function
	if err != nil {
		t.Fatalf("%s: reparse failed: %v\n%s", name, err, text)
	}
	if re := ir.PrintModule(m2); re != text {
		t.Errorf("%s: round trip is not an identity\n--- printed ---\n%s\n--- reprinted ---\n%s", name, text, re)
	}
}

// TestNIRRoundTripAllKernels prints and reparses every registered workload
// kernel, both as authored and after aggressive inlining (the form the
// pipeline persists), asserting print → parse → print is an identity.
func TestNIRRoundTripAllKernels(t *testing.T) {
	ws := workloads.All()
	if len(ws) != 29 {
		t.Fatalf("expected 29 registered workloads, got %d", len(ws))
	}
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			f, _, _ := w.Instance(256)
			roundTrip(t, w.Name+"/raw", ir.ModuleOf(f))

			f2, _, _ := w.Instance(256)
			inlined, err := pm.NewPassManager(pm.NewManager()).Add(passes.InlinePass(0)).Run(f2)
			if err != nil {
				t.Fatalf("inlining: %v", err)
			}
			roundTrip(t, w.Name+"/inlined", ir.ModuleOf(inlined))
		})
	}
}
