package workloads

import "needle/internal/ir"

// SPEC INT kernels. Each models the published hot-function shape of its
// namesake: region size, branch count, memory intensity, braid coverage
// (via light `continue` paths and multi-latch exits), and the relative
// magnitude of the executed-path count (Tables II and IV). Input data is
// generated with temporal runs so consecutive iterations tend to repeat
// paths, the property Table III measures.

// gzip: LZ77 longest-match loop — an early-exit compare chain over the
// window, with a cheap "no candidate" continue path.
var Gzip = register(&Workload{
	Name: "164.gzip", Suite: SPEC,
	Notes:    "LZ77 match loop: early-exit compare chain, few hot paths",
	DefaultN: 12000,
	MemWords: func(n int) int { return 4096 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("gzip_longest_match", ir.I64, ir.I64)
		n, win := b.Param(0), b.Param(1)
		mask := b.ConstI(4095)
		zero := b.ConstI(0)
		l := NewLoop(b, "pos", n, zero)

		i := l.I
		cand := b.Load(ir.I64, b.And(b.Add(win, i), mask))
		here := b.Load(ir.I64, b.And(b.Add(win, b.Add(i, b.ConstI(64))), mask))

		// No plausible candidate: skip the match attempt entirely.
		l.ContinueIf("pos.skip", b.CmpGE(here, b.ConstI(100)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})

		// Early-exit chain: extend the match while bytes agree.
		latch := b.NewBlock("pos.latch")
		type inc struct {
			from *ir.Block
			val  ir.Reg
		}
		var accum []inc
		cur := b.CmpEQ(cand, here)
		run := zero
		for k := 0; k < 4; k++ {
			next := b.NewBlock("pos.ext" + string(rune('0'+k)))
			accum = append(accum, inc{b.Block(), run})
			b.CondBr(cur, next, latch)
			b.SetBlock(next)
			off := b.ConstI(int64(65 + k))
			c2 := b.Load(ir.I64, b.And(b.Add(win, b.Add(i, off)), mask))
			c3 := b.Load(ir.I64, b.And(b.Add(win, b.Add(i, b.ConstI(int64(1+k)))), mask))
			run = b.Add(run, b.ConstI(1))
			cur = b.CmpEQ(c2, c3)
		}
		accum = append(accum, inc{b.Block(), run})
		b.Br(latch)

		b.SetBlock(latch)
		best := b.Phi(ir.I64)
		for _, a := range accum {
			b.AddIncoming(best, a.from, a.val)
		}
		l.End(b.Add(l.Carried(0), best))
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("164.gzip")
		// Mostly-repetitive text in runs: first compares succeed often and
		// consecutive positions behave alike.
		fillRuns(r, mem, 40, func() uint64 {
			if r.Intn(10) < 7 {
				return uint64(r.Intn(3))
			}
			return uint64(r.Intn(200))
		})
		return []uint64{uint64(n), 0}
	},
})

// vpr: placement swap cost evaluation — most moves are rejected by a cheap
// bounding-box test (light path); accepted moves run the full 8-branch,
// load-heavy cost body. Hot-braid coverage lands near the namesake's 28%.
var Vpr = register(&Workload{
	Name: "175.vpr", Suite: SPEC,
	Notes:    "placement cost: trivial-reject continue, heavy 8-branch body",
	DefaultN: 10000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("vpr_try_swap", ir.I64, ir.I64, ir.I64)
		n, xs, ys := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(4095)
		l := NewLoop(b, "move", n, b.ConstI(0))

		idx := b.And(l.I, mask)
		x1 := b.Load(ir.I64, b.Add(xs, idx))
		y1 := b.Load(ir.I64, b.Add(ys, idx))

		// Trivial reject: the move obviously cannot help.
		l.ContinueIf("move.rej", b.CmpGT(x1, b.ConstI(80)), func() []ir.Reg {
			return []ir.Reg{b.Add(l.Carried(0), b.And(y1, b.ConstI(3)))}
		})

		idx2 := b.And(b.Add(l.I, b.ConstI(17)), mask)
		x2 := b.Load(ir.I64, b.Add(xs, idx2))
		y2 := b.Load(ir.I64, b.Add(ys, idx2))

		dx := diamond(b, "dx", b.CmpGT(x1, x2),
			func() ir.Reg { return b.Sub(x1, x2) },
			func() ir.Reg { return b.Sub(x2, x1) })
		dy := diamond(b, "dy", b.CmpGT(y1, y2),
			func() ir.Reg { return b.Sub(y1, y2) },
			func() ir.Reg { return b.Sub(y2, y1) })
		edgeX := diamond(b, "ex", b.CmpGT(dx, b.ConstI(30)),
			func() ir.Reg {
				c1 := b.Load(ir.I64, b.Add(xs, b.And(b.Add(idx, b.ConstI(1)), mask)))
				return b.Add(dx, c1)
			},
			func() ir.Reg { return dx })
		edgeY := diamond(b, "ey", b.CmpGT(dy, b.ConstI(30)),
			func() ir.Reg {
				c2 := b.Load(ir.I64, b.Add(ys, b.And(b.Add(idx, b.ConstI(1)), mask)))
				return b.Add(dy, c2)
			},
			func() ir.Reg { return dy })

		cost := b.Add(edgeX, edgeY)
		occ1 := b.Load(ir.I64, b.Add(xs, b.And(b.Add(idx, b.ConstI(2048)), mask)))
		occ2 := b.Load(ir.I64, b.Add(ys, b.And(b.Add(idx2, b.ConstI(2048)), mask)))
		cost = b.Add(cost, b.And(b.Add(occ1, occ2), b.ConstI(63)))

		penalized := diamond(b, "occ", b.CmpGT(b.Add(occ1, occ2), b.ConstI(220)),
			func() ir.Reg { return b.Add(cost, b.ConstI(100)) },
			func() ir.Reg { return cost })
		total := diamond(b, "acc", b.CmpLT(penalized, b.ConstI(260)),
			func() ir.Reg { return b.Add(l.Carried(0), penalized) },
			func() ir.Reg { return l.Carried(0) })
		h1 := b.Load(ir.I64, b.Add(xs, b.And(b.Add(idx, b.ConstI(1024)), mask)))
		h2 := b.Load(ir.I64, b.Add(ys, b.And(b.Add(idx2, b.ConstI(1024)), mask)))
		total = b.Add(total, b.And(b.Add(h1, h2), b.ConstI(7)))

		l.End(total)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("175.vpr")
		fillRuns(r, mem, 24, func() uint64 { return uint64(r.Intn(128)) })
		return []uint64{uint64(n), 0, 4096}
	},
})

// mcf (SPEC 2000): network simplex arc scan — most arcs fail the pricing
// test cheaply; profitable arcs run the update body.
var Mcf2000 = register(&Workload{
	Name: "181.mcf", Suite: SPEC,
	Notes:    "arc scan: cheap reject continue, update body on profitable arcs",
	DefaultN: 16000,
	MemWords: func(n int) int { return 12288 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("mcf_price_out", ir.I64, ir.I64, ir.I64)
		n, costs, flows := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(4095)
		l := NewLoop(b, "arc", n, b.ConstI(0))

		idx := b.And(l.I, mask)
		cost := b.Load(ir.I64, b.Add(costs, idx))
		// Unprofitable arc: skip.
		l.ContinueIf("arc.skip", b.CmpGE(cost, b.ConstI(60)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})

		flow := b.Load(ir.I64, b.Add(flows, idx))
		red := b.Sub(cost, flow)
		picked := diamond(b, "neg", b.CmpLT(red, b.ConstI(0)),
			func() ir.Reg {
				b.Store(b.Add(flows, idx), b.Add(flow, b.ConstI(1)))
				return b.Sub(l.Carried(0), red)
			},
			func() ir.Reg { return l.Carried(0) })
		upd := diamond(b, "basis", b.CmpGT(picked, b.ConstI(1000000)),
			func() ir.Reg { return b.Sub(picked, b.ConstI(1000000)) },
			func() ir.Reg { return picked })
		tail1 := b.Load(ir.I64, b.Add(costs, b.And(b.Add(idx, b.ConstI(2048)), mask)))
		tail2 := b.Load(ir.I64, b.Add(flows, b.And(b.Add(idx, b.ConstI(1024)), mask)))
		upd = b.Add(upd, b.And(b.Add(tail1, tail2), b.ConstI(15)))
		l.End(upd)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("181.mcf")
		fillRuns(r, mem[:4096], 32, func() uint64 { return uint64(r.Intn(100)) })
		fillRuns(r, mem[4096:8192], 32, func() uint64 { return uint64(r.Intn(100) + 40) })
		return []uint64{uint64(n), 0, 4096}
	},
})

// crafty: move generation — stacked dispatch trees and a 16-way latch
// switch spread the weight over many braid groups, giving the chess-engine
// signature: tens of thousands of paths, tiny per-braid coverage.
var Crafty = register(&Workload{
	Name: "186.crafty", Suite: SPEC,
	Notes:    "move gen: stacked trees + 16-way latch split, huge path count",
	DefaultN: 30000,
	MemWords: func(n int) int { return 4096 },
	Build:    func() *ir.Function { return buildChessKernel("crafty_genmoves", 4, 32, 16) },
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("186.crafty")
		fillRuns(r, mem, 8, func() uint64 { return uint64(r.Int63()) })
		return []uint64{uint64(n), 0}
	},
})

// sjeng: same family as crafty with fewer latch groups.
var Sjeng = register(&Workload{
	Name: "458.sjeng", Suite: SPEC,
	Notes:    "search dispatch: stacked trees + 4-way latch split",
	DefaultN: 36000,
	MemWords: func(n int) int { return 4096 },
	Build:    func() *ir.Function { return buildChessKernel("sjeng_search", 4, 24, 4) },
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("458.sjeng")
		fillRuns(r, mem, 8, func() uint64 { return uint64(r.Int63()) })
		return []uint64{uint64(n), 0}
	},
})

// buildChessKernel builds `trees` sequential dispatch trees with `leaves`
// leaves each, selected by board-state loads, re-entering the loop through
// one of `latches` latch groups.
func buildChessKernel(name string, trees, leaves, latches int) *ir.Function {
	b := ir.NewBuilder(name, ir.I64, ir.I64)
	n, board := b.Param(0), b.Param(1)
	mask := b.ConstI(4095)
	l := NewLoop(b, "ply", n, b.ConstI(0))

	state := b.Load(ir.I64, b.Add(board, b.And(l.I, mask)))
	acc := l.Carried(0)
	for t := 0; t < trees; t++ {
		state = lcgStep(b, b.Xor(state, b.Shr(l.I, b.ConstI(3))))
		sel := bits(b, state, int64(8+t*6), int64(leaves-1))
		cases := make([]func() ir.Reg, leaves)
		for c := 0; c < leaves; c++ {
			cval := int64(c)
			tt := t
			cases[c] = func() ir.Reg {
				v := b.Add(state, b.ConstI(cval*3+int64(tt)))
				if cval%3 == 0 {
					v = b.Xor(v, b.Shl(v, b.ConstI(2)))
				}
				if cval%4 == 1 {
					w := b.Load(ir.I64, b.Add(board, b.And(v, mask)))
					v = b.Add(v, b.And(w, b.ConstI(255)))
				}
				return v
			}
		}
		picked := switchTree(b, "t"+string(rune('0'+t)), sel, cases)
		acc = b.Add(acc, b.And(picked, b.ConstI(1023)))
	}
	if latches > 1 {
		// Search phases re-enter through phase-dependent latches; the phase
		// changes slowly, so the invocation predictor can track it.
		phase := b.Shr(l.I, b.ConstI(6))
		l.LatchSwitch("ply.ret", b.And(phase, b.ConstI(int64(latches-1))), latches, acc)
		l.Done()
	} else {
		l.End(acc)
	}
	b.Ret(l.Carried(0))
	return b.MustFinish()
}

// parser: dictionary lookup — a hash-cache hit skips the binary search.
var Parser = register(&Workload{
	Name: "197.parser", Suite: SPEC,
	Notes:    "dictionary probe: cache-hit continue, 3-branch binary search",
	DefaultN: 12000,
	MemWords: func(n int) int { return 4096 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("parser_dict_lookup", ir.I64, ir.I64)
		n, dict := b.Param(0), b.Param(1)
		mask := b.ConstI(2047)
		l := NewLoop(b, "word", n, b.ConstI(0))

		key := b.And(b.Mul(l.I, b.ConstI(2654435761)), mask)
		cached := b.Load(ir.I64, b.Add(dict, b.And(key, b.ConstI(255))))
		// Words arrive in sentence batches that alternate between cached and
		// uncached vocabulary.
		batch := b.And(b.Shr(l.I, b.ConstI(4)), b.ConstI(3))
		l.ContinueIf("word.hit", b.CmpEQ(batch, b.ConstI(0)), func() []ir.Reg {
			return []ir.Reg{b.Add(l.Carried(0), b.And(cached, b.ConstI(255)))}
		})

		lo := b.ConstI(0)
		hi := b.ConstI(2047)
		for d := 0; d < 3; d++ {
			midIdx := b.Shr(b.Add(lo, hi), b.ConstI(1))
			entry := b.Load(ir.I64, b.Add(dict, midIdx))
			goLeft := b.CmpLT(key, entry)
			curLo := lo
			lo = diamond(b, "lo"+string(rune('0'+d)), goLeft,
				func() ir.Reg { return curLo },
				func() ir.Reg { return midIdx })
			hi = b.Select(goLeft, midIdx, hi)
		}
		found := b.Load(ir.I64, b.Add(dict, b.And(lo, mask)))
		l.End(b.Add(l.Carried(0), b.And(found, b.ConstI(255))))
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("197.parser")
		for i := range mem {
			mem[i] = uint64(i*3) ^ uint64(r.Intn(7))
		}
		return []uint64{uint64(n), 0}
	},
})

// bzip2: block-sort suffix comparison — deep early-exit chains plus a
// 16-way latch split: thousands of paths, minuscule per-braid coverage.
var Bzip2 = register(&Workload{
	Name: "401.bzip2", Suite: SPEC,
	Notes:    "suffix compare: early-exit chains, 16-way latch split",
	DefaultN: 24000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("bzip2_fullgtu", ir.I64, ir.I64)
		n, block := b.Param(0), b.Param(1)
		mask := b.ConstI(8191)
		l := NewLoop(b, "cmp", n, b.ConstI(0))

		i1 := b.And(b.Mul(l.I, b.ConstI(7)), mask)
		i2 := b.And(b.Mul(b.Add(l.I, b.ConstI(3)), b.ConstI(11)), mask)
		latch := b.NewBlock("cmp.latch")
		type inc struct {
			from *ir.Block
			val  ir.Reg
		}
		var incs []inc
		a1, a2 := i1, i2
		depth := b.ConstI(0)
		for k := 0; k < 12; k++ {
			v1 := b.Load(ir.I64, b.Add(block, a1))
			v2 := b.Load(ir.I64, b.Add(block, a2))
			eq := b.CmpEQ(v1, v2)
			next := b.NewBlock("cmp.k" + string(rune('a'+k)))
			incs = append(incs, inc{b.Block(), b.Add(depth, b.Sub(v1, v2))})
			b.CondBr(eq, next, latch)
			b.SetBlock(next)
			a1 = b.And(b.Add(a1, b.ConstI(1)), mask)
			a2 = b.And(b.Add(a2, b.ConstI(1)), mask)
			depth = b.Add(depth, b.ConstI(1))
		}
		incs = append(incs, inc{b.Block(), depth})
		b.Br(latch)
		b.SetBlock(latch)
		res := b.Phi(ir.I64)
		for _, in := range incs {
			b.AddIncoming(res, in.from, in.val)
		}
		r1 := diamond(b, "b1", b.CmpLT(res, b.ConstI(0)),
			func() ir.Reg { return b.Sub(l.Carried(0), res) },
			func() ir.Reg { return b.Add(l.Carried(0), res) })
		r2 := diamond(b, "b2", b.CmpGT(res, b.ConstI(6)),
			func() ir.Reg {
				b.Store(b.Add(block, b.And(res, mask)), r1)
				return b.Add(r1, b.ConstI(2))
			},
			func() ir.Reg { return r1 })
		phase := b.Shr(l.I, b.ConstI(5))
		l.LatchSwitch("cmp.ret", b.And(phase, b.ConstI(15)), 16, r2)
		l.Done()
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("401.bzip2")
		fillRuns(r, mem, 6, func() uint64 { return uint64(r.Intn(3)) })
		return []uint64{uint64(n), 0}
	},
})

// gcc: RTL pattern dispatch — a nop-class continue path, then the serial
// dispatch body; few executed paths with very high coverage.
var Gcc = register(&Workload{
	Name: "403.gcc", Suite: SPEC,
	Notes:    "RTL dispatch: nop continue, serial body (no ILP), ~20 paths",
	DefaultN: 10000,
	MemWords: func(n int) int { return 2048 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("gcc_combine", ir.I64, ir.I64)
		n, insns := b.Param(0), b.Param(1)
		mask := b.ConstI(2047)
		l := NewLoop(b, "insn", n, b.ConstI(0))

		op := b.Load(ir.I64, b.Add(insns, b.And(l.I, mask)))
		// Notes/nops: skip cheaply.
		l.ContinueIf("insn.nop", b.CmpGE(op, b.ConstI(14)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		sel := b.And(op, b.ConstI(15))
		cases := make([]func() ir.Reg, 16)
		for c := 0; c < 16; c++ {
			cval := int64(c)
			cases[c] = func() ir.Reg {
				v := b.Add(op, b.ConstI(cval))
				v = b.Mul(v, b.ConstI(3))
				v = b.Xor(v, b.Shr(v, b.ConstI(5)))
				v = b.Add(v, b.ConstI(cval*7))
				return v
			}
		}
		res := switchTree(b, "op", sel, cases)
		l.End(b.Add(l.Carried(0), b.And(res, b.ConstI(4095))))
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("403.gcc")
		fillRuns(r, mem, 20, func() uint64 {
			k := r.Intn(100)
			switch {
			case k < 35:
				return 2
			case k < 58:
				return 7
			case k < 74:
				return 11
			case k < 86:
				return 4
			case k < 93:
				return 14 // nop class -> light path
			default:
				return uint64(r.Intn(16))
			}
		})
		return []uint64{uint64(n), 0}
	},
})

// mcf (SPEC 2006): shorter body, same cheap-reject shape.
var Mcf2006 = register(&Workload{
	Name: "429.mcf", Suite: SPEC,
	Notes:    "arc pricing: reject continue, 2-branch update body",
	DefaultN: 16000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("mcf06_refresh", ir.I64, ir.I64)
		n, arcs := b.Param(0), b.Param(1)
		mask := b.ConstI(4095)
		l := NewLoop(b, "arc", n, b.ConstI(0))
		idx := b.And(b.Mul(l.I, b.ConstI(5)), mask)
		c := b.Load(ir.I64, b.Add(arcs, idx))
		l.ContinueIf("arc.skip", b.CmpGE(c, b.ConstI(24)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		picked := diamond(b, "neg", b.CmpLT(c, b.ConstI(12)),
			func() ir.Reg { return b.Add(l.Carried(0), c) },
			func() ir.Reg { return b.Sub(l.Carried(0), c) })
		c2 := b.Load(ir.I64, b.Add(arcs, b.And(b.Add(idx, b.ConstI(1)), mask)))
		skip := diamond(b, "fix", b.CmpEQ(b.And(c2, b.ConstI(127)), b.ConstI(0)),
			func() ir.Reg {
				b.Store(b.Add(arcs, idx), b.Add(c, b.ConstI(1)))
				return b.Add(picked, b.ConstI(1))
			},
			func() ir.Reg { return picked })
		l.End(skip)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("429.mcf")
		fillRuns(r, mem, 28, func() uint64 { return uint64(r.Intn(40)) })
		return []uint64{uint64(n), 0}
	},
})

// h264ref: SAD with early termination — a skip-block continue path, then
// unrolled abs-diff with a mid-chain cutoff.
var H264ref = register(&Workload{
	Name: "464.h264ref", Suite: SPEC,
	Notes:    "motion SAD: skip continue, unrolled abs-diff, early cutoff",
	DefaultN: 12000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("h264_sad", ir.I64, ir.I64, ir.I64)
		n, ref, cur := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(4095)
		l := NewLoop(b, "blk", n, b.ConstI(0))

		base := b.And(b.Mul(l.I, b.ConstI(4)), mask)
		first := b.Load(ir.I64, b.Add(ref, base))
		// Skip blocks flagged as already matched.
		l.ContinueIf("blk.skip", b.CmpGE(first, b.ConstI(140)), func() []ir.Reg {
			return []ir.Reg{b.Add(l.Carried(0), b.And(first, b.ConstI(7)))}
		})

		sad := b.ConstI(0)
		exit := b.NewBlock("blk.cut")
		type inc struct {
			from *ir.Block
			val  ir.Reg
		}
		var incs []inc
		for k := 0; k < 4; k++ {
			off := b.ConstI(int64(k))
			rv := b.Load(ir.I64, b.Add(ref, b.And(b.Add(base, off), mask)))
			cv := b.Load(ir.I64, b.Add(cur, b.And(b.Add(base, off), mask)))
			d := diamond(b, "abs"+string(rune('0'+k)), b.CmpGT(rv, cv),
				func() ir.Reg { return b.Sub(rv, cv) },
				func() ir.Reg { return b.Sub(cv, rv) })
			sad = b.Add(sad, d)
			if k == 1 {
				over := b.CmpGT(sad, b.ConstI(400))
				cont := b.NewBlock("blk.cont")
				incs = append(incs, inc{b.Block(), sad})
				b.CondBr(over, exit, cont)
				b.SetBlock(cont)
			}
		}
		incs = append(incs, inc{b.Block(), sad})
		b.Br(exit)
		b.SetBlock(exit)
		total := b.Phi(ir.I64)
		for _, in := range incs {
			b.AddIncoming(total, in.from, in.val)
		}
		l.End(b.Add(l.Carried(0), total))
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("464.h264ref")
		v := uint64(0)
		for i := 0; i < 4096; i++ {
			if r.Intn(20) == 0 {
				v = uint64(r.Intn(200))
			}
			mem[i] = v
			mem[4096+i] = v + uint64(r.Intn(30))
		}
		return []uint64{uint64(n), 0, 4096}
	},
})
