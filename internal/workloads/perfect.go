package workloads

import "needle/internal/ir"

// PERFECT suite kernels (radar/image processing).

// dwt53: 5/3 lifting wavelet — integer straight-line body with a single
// boundary branch; total coverage from one path.
var Dwt53 = register(&Workload{
	Name: "dwt53", Suite: PERFECT,
	Notes:    "5/3 lifting: straight-line int body, 1 boundary branch",
	DefaultN: 10000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("dwt53_lift", ir.I64, ir.I64, ir.I64)
		n, src, dst := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(4095)
		l := NewLoop(b, "px", n, b.ConstI(0))

		i0 := b.And(b.Mul(l.I, b.ConstI(2)), mask)
		i1 := b.And(b.Add(i0, b.ConstI(1)), mask)
		i2 := b.And(b.Add(i0, b.ConstI(2)), mask)
		even0 := b.Load(ir.I64, b.Add(src, i0))
		// Zero coefficients short-circuit through two light latches,
		// splitting the lifting braid's coverage (paper: ~37%).
		l.ContinueIf("px.zero", b.CmpLT(even0, b.ConstI(90)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		l.ContinueIf("px.small", b.CmpLT(even0, b.ConstI(150)), func() []ir.Reg {
			return []ir.Reg{b.Add(l.Carried(0), b.And(even0, b.ConstI(7)))}
		})
		odd := b.Load(ir.I64, b.Add(src, i1))
		even1 := b.Load(ir.I64, b.Add(src, i2))
		// Predict: high = odd - (even0+even1)/2.
		pred := b.Shr(b.Add(even0, even1), b.ConstI(1))
		high := b.Sub(odd, pred)
		// Update: low = even0 + (high+2)/4.
		low := b.Add(even0, b.Shr(b.Add(high, b.ConstI(2)), b.ConstI(2)))
		b.Store(b.Add(dst, i0), low)
		b.Store(b.Add(dst, i1), high)
		// Boundary clamp: taken only at tile edges.
		acc := diamond(b, "bound", b.CmpEQ(b.And(i0, b.ConstI(1022)), b.ConstI(1022)),
			func() ir.Reg { return b.Add(l.Carried(0), low) },
			func() ir.Reg { return b.Add(l.Carried(0), high) })
		l.End(acc)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("dwt53")
		fillRuns(r, mem[:4096], 26, func() uint64 { return uint64(r.Intn(256)) })
		return []uint64{uint64(n), 0, 4096}
	},
})

// fft-2d: radix-2 butterfly — FP twiddle multiply with a bit-reverse swap
// branch.
var FFT2D = register(&Workload{
	Name: "fft-2d", Suite: PERFECT, FP: true,
	Notes:    "butterfly: FP twiddle, bit-reverse branch",
	DefaultN: 10000,
	MemWords: func(n int) int { return 16384 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("fft2d_butterfly", ir.I64, ir.I64, ir.I64)
		n, re, im := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(8191)
		l := NewLoop(b, "bf", n, b.ConstF(0))

		i0 := b.And(b.Mul(l.I, b.ConstI(2)), mask)
		i1 := b.And(b.Add(i0, b.ConstI(512)), mask)
		ar := b.Load(ir.F64, b.Add(re, i0))
		// Zero-padded spectrum regions skip the butterfly (paper: ~51%).
		l.ContinueIf("bf.pad", b.FCmpLT(ar, b.ConstF(-0.55)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		ai := b.Load(ir.F64, b.Add(im, i0))
		br_ := b.Load(ir.F64, b.Add(re, i1))
		bi := b.Load(ir.F64, b.Add(im, i1))
		// Twiddle (constant angle per call keeps the body acyclic).
		wr := b.ConstF(0.7071067811865476)
		wi := b.ConstF(-0.7071067811865476)
		tr := b.FSub(b.FMul(br_, wr), b.FMul(bi, wi))
		ti := b.FAdd(b.FMul(br_, wi), b.FMul(bi, wr))
		b.Store(b.Add(re, i0), b.FAdd(ar, tr))
		b.Store(b.Add(im, i0), b.FAdd(ai, ti))
		b.Store(b.Add(re, i1), b.FSub(ar, tr))
		b.Store(b.Add(im, i1), b.FSub(ai, ti))
		// Bit-reverse swap branch (quarter of indices).
		swapped := diamond(b, "rev", b.CmpEQ(b.And(l.I, b.ConstI(3)), b.ConstI(0)),
			func() ir.Reg { return b.FAdd(l.Carried(0), tr) },
			func() ir.Reg { return l.Carried(0) })
		scaled := diamond(b, "norm", b.FCmpGT(swapped, b.ConstF(1e9)),
			func() ir.Reg { return b.FMul(swapped, b.ConstF(0.5)) },
			func() ir.Reg { return swapped })
		l.End(scaled)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("fft-2d")
		fillRuns(r, mem, 22, func() uint64 { return fbits(r.Float64()*2 - 1) })
		return []uint64{uint64(n), 0, 8192}
	},
})

// sar-backprojection: per-pixel backprojection — range-bin chain with
// several interpolation branches.
var SarBackprojection = register(&Workload{
	Name: "sar-backprojection", Suite: PERFECT, FP: true,
	Notes:    "backprojection: range-bin branch chain + FP accumulate",
	DefaultN: 10000,
	MemWords: func(n int) int { return 16384 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("sar_bp", ir.I64, ir.I64, ir.I64)
		n, data, img := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(8191)
		l := NewLoop(b, "px", n, b.ConstI(0))

		// Range computation.
		fx := b.SIToFP(b.And(l.I, b.ConstI(1023)))
		r2 := b.FAdd(b.FMul(fx, fx), b.ConstF(1e4))
		rng := b.Sqrt(r2)
		bin := b.FPToSI(b.FMul(rng, b.ConstF(0.5)))
		binC := b.And(bin, mask)

		// Range gate: a 3-deep early-exit chain over gate boundaries.
		latch := b.NewBlock("px.latch")
		type inc struct {
			from *ir.Block
			val  ir.Reg
		}
		var incs []inc
		gates := []int64{900, 2600, 5200}
		cur := binC
		for g, lim := range gates {
			within := b.CmpLT(cur, b.ConstI(lim))
			inb := b.NewBlock("px.g" + string(rune('0'+g)))
			incs = append(incs, inc{b.Block(), b.ConstI(int64(g))})
			b.CondBr(within, latch, inb)
			b.SetBlock(inb)
			cur = b.Sub(cur, b.ConstI(lim/2))
		}
		incs = append(incs, inc{b.Block(), b.ConstI(3)})
		b.Br(latch)
		b.SetBlock(latch)
		gate := b.Phi(ir.I64)
		for _, in := range incs {
			b.AddIncoming(gate, in.from, in.val)
		}

		// Linear interpolation between two samples with a nearest-neighbor
		// fallback branch.
		s0 := b.Load(ir.F64, b.Add(data, binC))
		s1 := b.Load(ir.F64, b.Add(data, b.And(b.Add(binC, b.ConstI(1)), mask)))
		fracRaw := b.FSub(rng, b.SIToFP(bin))
		interp := diamond(b, "near", b.FCmpLT(fracRaw, b.ConstF(0.1)),
			func() ir.Reg { return s0 },
			func() ir.Reg {
				d := b.FSub(s1, s0)
				return b.FAdd(s0, b.FMul(d, fracRaw))
			})
		// Phase correction branch per gate parity.
		contrib := diamond(b, "ph", b.CmpEQ(b.And(gate, b.ConstI(1)), b.ConstI(0)),
			func() ir.Reg { return interp },
			func() ir.Reg { return b.FSub(b.ConstF(0), interp) })
		b.Store(b.Add(img, b.And(l.I, mask)), contrib)
		acc := b.Add(l.Carried(0), b.FPToSI(b.FMul(contrib, b.ConstF(1000))))
		// Pixels re-enter through one of 8 gate-dependent latches, spreading
		// the weight across braid groups (paper coverage: ~19%).
		fold := b.Add(gate, b.Shr(l.I, b.ConstI(6)))
		l.LatchSwitch("px.ret", b.And(fold, b.ConstI(7)), 8, acc)
		l.Done()
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("sar-backprojection")
		for i := 0; i < 8192; i++ {
			mem[i] = fbits(r.Float64()*2 - 1)
		}
		return []uint64{uint64(n), 0, 8192}
	},
})

// sar-pfa-interp1: polar-format interpolation — window-selection branch
// chain feeding a wide FP filter; the biggest PERFECT body.
var SarPfaInterp1 = register(&Workload{
	Name: "sar-pfa-interp1", Suite: PERFECT, FP: true,
	Notes:    "polar interp: window-selection chain + 8-tap FP filter",
	DefaultN: 8000,
	MemWords: func(n int) int { return 16384 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("sar_pfa_interp", ir.I64, ir.I64, ir.I64)
		n, samp, out := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(8191)
		l := NewLoop(b, "k", n, b.ConstF(0), b.Param(0))

		x := lcgStep(b, b.Xor(l.Carried(1), b.Shr(l.I, b.ConstI(2))))
		// Out-of-swath samples skip interpolation (paper coverage: ~88%).
		skipSel := b.And(b.Shr(l.I, b.ConstI(5)), b.ConstI(7))
		l.ContinueIf("k.swath", b.CmpEQ(skipSel, b.ConstI(0)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0), x}
		})
		// Window selection: 5-deep chain on the resampling offset.
		offs := bits(b, x, 12, 127)
		latch := b.NewBlock("k.wsel")
		type inc struct {
			from *ir.Block
			val  ir.Reg
		}
		var incs []inc
		limits := []int64{8, 24, 48, 80, 112}
		for g, lim := range limits {
			hit := b.CmpLT(offs, b.ConstI(lim))
			nxt := b.NewBlock("k.w" + string(rune('0'+g)))
			incs = append(incs, inc{b.Block(), b.ConstI(int64(g))})
			b.CondBr(hit, latch, nxt)
			b.SetBlock(nxt)
		}
		incs = append(incs, inc{b.Block(), b.ConstI(5)})
		b.Br(latch)
		b.SetBlock(latch)
		win := b.Phi(ir.I64)
		for _, in := range incs {
			b.AddIncoming(win, in.from, in.val)
		}

		// 8-tap filter around the selected window.
		base := b.And(b.Add(b.Mul(win, b.ConstI(911)), offs), mask)
		sum := b.ConstF(0)
		for t := 0; t < 8; t++ {
			sv := b.Load(ir.F64, b.Add(samp, b.And(b.Add(base, b.ConstI(int64(t))), mask)))
			w := b.ConstF([]float64{0.02, 0.08, 0.2, 0.7, 0.7, 0.2, 0.08, 0.02}[t])
			sum = b.FAdd(sum, b.FMul(sv, w))
		}
		// Sidelobe suppression branches.
		s1 := diamond(b, "lobe", b.FCmpGT(sum, b.ConstF(1.2)),
			func() ir.Reg { return b.FMul(sum, b.ConstF(0.8)) },
			func() ir.Reg { return sum })
		s2 := diamond(b, "zero", b.FCmpLT(s1, b.ConstF(-1.2)),
			func() ir.Reg { return b.ConstF(-1.2) },
			func() ir.Reg { return s1 })
		b.Store(b.Add(out, b.And(l.I, mask)), s2)
		acc := b.FAdd(l.Carried(0), s2)
		l.End(acc, x)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("sar-pfa-interp1")
		for i := 0; i < 8192; i++ {
			mem[i] = fbits(r.Float64()*2 - 1)
		}
		return []uint64{uint64(n), 0, 8192}
	},
})
