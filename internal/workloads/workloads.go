// Package workloads provides the 29 benchmark kernels the evaluation runs:
// one per workload of the paper's SPEC, PARSEC, and PERFECT suites. Each
// kernel is a from-scratch IR program whose fully-inlined hot function is
// modeled on the published control-flow characteristics of its namesake
// (Table I/II: executed path counts, region sizes, branch counts, memory
// intensity, floating-point content, and branch-bias distribution). The
// paper's results are functions of control-flow shape, not of the exact
// arithmetic, so these synthetic equivalents exercise the same pipeline
// behaviour end to end.
package workloads

import (
	"fmt"
	"math/rand"
	"sync"

	"needle/internal/ir"
	"needle/internal/program"
)

// Suite names.
const (
	SPEC    = "SPEC"
	PARSEC  = "PARSEC"
	PERFECT = "PERFECT"
)

// Workload describes one benchmark kernel.
type Workload struct {
	Name  string
	Suite string
	// Notes describes which published characteristic the kernel models.
	Notes string
	// FP marks floating-point-dominated kernels.
	FP bool
	// DefaultN is the problem size used by the full evaluation harness;
	// tests use smaller sizes for speed.
	DefaultN int
	// MemWords returns the memory footprint for a problem size.
	MemWords func(n int) int
	// Build constructs the hot function.
	Build func() *ir.Function
	// Setup fills memory deterministically and returns the function
	// arguments for a problem size.
	Setup func(mem []uint64, n int) []uint64

	buildOnce sync.Once
	cached    *ir.Function

	progMu sync.Mutex
	progs  map[int]*program.Program
}

// Function returns the kernel's hot function, building it on first use.
// Safe for concurrent callers: the parallel harness may analyze many
// workloads at once.
func (w *Workload) Function() *ir.Function {
	w.buildOnce.Do(func() { w.cached = w.Build() })
	return w.cached
}

// Instance prepares a run: function, arguments, and initialized memory.
// n <= 0 selects DefaultN.
func (w *Workload) Instance(n int) (*ir.Function, []uint64, []uint64) {
	if n <= 0 {
		n = w.DefaultN
	}
	mem := make([]uint64, w.MemWords(n))
	args := w.Setup(mem, n)
	return w.Function(), args, mem
}

// Program materializes the workload at problem size n (n <= 0 selects
// DefaultN) as the pipeline's first-class input: the built kernel plus its
// deterministic initial state, content-digested. Setup is deterministic, so
// the instance for a given n never changes within a process; the Program
// (and its lazily computed digest) is cached per size, making repeated
// analyses — a config sweep, the warm-start benchmark — share one
// materialization. The returned Program's Args/Memory are the pristine
// read-only images the pipeline contract requires.
func (w *Workload) Program(n int) (*program.Program, error) {
	if n <= 0 {
		n = w.DefaultN
	}
	w.progMu.Lock()
	defer w.progMu.Unlock()
	if p, ok := w.progs[n]; ok {
		return p, nil
	}
	f, args, mem := w.Instance(n)
	p, err := program.New(w.Name, w.Suite, f, args, mem)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s at n=%d: %w", w.Name, n, err)
	}
	if w.progs == nil {
		w.progs = make(map[int]*program.Program)
	}
	w.progs[n] = p
	return p, nil
}

// rngFor returns the deterministic random stream for a workload name, so
// every run of the harness reproduces the same profile.
func rngFor(name string) *rand.Rand {
	var seed int64 = 0x51F15EED
	for _, c := range name {
		seed = seed*31 + int64(c)
	}
	return rand.New(rand.NewSource(seed))
}

// fillRuns fills a with generated values held constant across runs whose
// expected length is runLen, modeling the temporal locality of real inputs:
// consecutive loop iterations tend to take the same path, which is what
// makes path repetition (Table III) and invocation prediction work.
func fillRuns(r *rand.Rand, a []uint64, runLen int, gen func() uint64) {
	v := gen()
	for i := range a {
		if r.Intn(runLen) == 0 {
			v = gen()
		}
		a[i] = v
	}
}

var registry []*Workload

func register(w *Workload) *Workload {
	for _, e := range registry {
		if e.Name == w.Name {
			panic(fmt.Sprintf("workloads: duplicate workload %q", w.Name))
		}
	}
	registry = append(registry, w)
	return w
}

// All returns every registered workload in suite order.
func All() []*Workload {
	out := make([]*Workload, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the named workload, or nil.
func ByName(name string) *Workload {
	for _, w := range registry {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// Names returns all workload names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, w := range registry {
		out[i] = w.Name
	}
	return out
}
