package workloads

import "needle/internal/ir"

// PARSEC kernels.

// blackscholes: option pricing with a 4x-unrolled loop. Everything lives in
// registers (the paper reports zero memory ops on the hot path); cached
// options skip via a light path so the pricing braid covers ~half the
// dynamic work, as in Table IV.
var Blackscholes = register(&Workload{
	Name: "blackscholes", Suite: PARSEC, FP: true,
	Notes:    "4x-unrolled pricing: ~19 branches, no memory ops",
	DefaultN: 3000,
	MemWords: func(n int) int { return 16 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("bs_price", ir.I64, ir.I64)
		n, seed := b.Param(0), b.Param(1)
		l := NewLoop(b, "opt", n, b.ConstF(0), seed)

		x0 := lcgStep(b, l.Carried(1))
		// Batch already priced: skip (selector changes slowly with i so the
		// skip decision runs in long streaks).
		sel := b.And(b.Shr(l.I, b.ConstI(5)), b.ConstI(15))
		l.ContinueIf("opt.cached", b.CmpLT(sel, b.ConstI(14)), func() []ir.Reg {
			light := b.FAdd(l.Carried(0), b.ConstF(0.25))
			return []ir.Reg{light, x0}
		})

		acc := l.Carried(0)
		x := x0
		for u := 0; u < 4; u++ {
			tag := string(rune('a' + u))
			x = lcgStep(b, x)
			sRaw := bits(b, x, 16, 1023)
			kRaw := bits(b, x, 32, 1023)
			spot := b.FAdd(b.SIToFP(sRaw), b.ConstF(1))
			strike := b.FAdd(b.SIToFP(kRaw), b.ConstF(1))
			ratio := b.FDiv(spot, strike)
			d1 := b.FMul(b.Log(ratio), b.ConstF(2.5))

			cnd := diamond(b, "sgn"+tag, b.FCmpLT(d1, b.ConstF(0)),
				func() ir.Reg {
					a := b.FSub(b.ConstF(0), d1)
					e := b.Exp(b.FMul(b.FMul(a, a), b.ConstF(-0.5)))
					return b.FMul(e, b.ConstF(0.4))
				},
				func() ir.Reg {
					e := b.Exp(b.FMul(b.FMul(d1, d1), b.ConstF(-0.5)))
					return b.FSub(b.ConstF(1), b.FMul(e, b.ConstF(0.4)))
				})
			price := diamond(b, "itm"+tag, b.FCmpGT(ratio, b.ConstF(16)),
				func() ir.Reg { return b.FSub(spot, strike) },
				func() ir.Reg {
					return diamond(b, "otm"+tag, b.FCmpLT(ratio, b.ConstF(0.0625)),
						func() ir.Reg { return b.ConstF(0.01) },
						func() ir.Reg { return b.FMul(b.FMul(spot, cnd), b.ConstF(0.9)) })
				})
			adj := diamond(b, "pc"+tag, b.CmpEQ(b.And(x, b.ConstI(15)), b.ConstI(0)),
				func() ir.Reg { return b.FSub(b.FAdd(price, strike), spot) },
				func() ir.Reg { return price })
			acc = b.FAdd(acc, adj)
		}
		l.End(acc, x)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		return []uint64{uint64(n), 12345}
	},
})

// bodytrack: particle likelihood — occluded particles skip via two light
// paths; visible ones run the noisy-branch weight body (one of the paper's
// "pathologically unpredictable" workloads). Coverage ~0.27.
var Bodytrack = register(&Workload{
	Name: "bodytrack", Suite: PARSEC, FP: true,
	Notes:    "particle weights: noisy branches, low braid coverage",
	DefaultN: 10000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("bt_weight", ir.I64, ir.I64, ir.I64)
		n, edgeArr, fgArr := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(4095)
		l := NewLoop(b, "pt", n, b.ConstF(0))

		idx := b.And(b.Mul(l.I, b.ConstI(13)), mask)
		// Occlusion flags are per-camera-region and change slowly; the noisy
		// per-pixel weights stay inside the braid as if-converted diamonds.
		occl := b.Load(ir.F64, b.Add(edgeArr, b.And(b.Shr(l.I, b.ConstI(4)), b.ConstI(255))))
		l.ContinueIf("pt.occl", b.FCmpLT(occl, b.ConstF(0.45)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		l.ContinueIf("pt.edge", b.FCmpLT(occl, b.ConstF(0.68)), func() []ir.Reg {
			return []ir.Reg{b.FAdd(l.Carried(0), b.ConstF(0.05))}
		})
		e := b.Load(ir.F64, b.Add(edgeArr, idx))
		g := b.Load(ir.F64, b.Add(fgArr, idx))
		we := diamond(b, "edge", b.FCmpGT(e, b.ConstF(0.8)),
			func() ir.Reg { return b.FMul(e, e) },
			func() ir.Reg { return b.FMul(e, b.ConstF(0.1)) })
		wg := diamond(b, "fg", b.FCmpGT(g, b.ConstF(0.5)),
			func() ir.Reg { return g },
			func() ir.Reg { return b.ConstF(0.05) })
		wsum := b.FAdd(we, wg)
		clamped := diamond(b, "clamp", b.FCmpGT(wsum, b.ConstF(1.5)),
			func() ir.Reg { return b.ConstF(1.5) },
			func() ir.Reg { return wsum })
		acc := diamond(b, "mul", b.FCmpLT(b.FMul(e, g), b.ConstF(0.01)),
			func() ir.Reg { return l.Carried(0) },
			func() ir.Reg { return b.FAdd(l.Carried(0), clamped) })
		l.End(acc)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("bodytrack")
		// Short runs: noisy, hard-to-predict branch behaviour.
		fillRuns(r, mem, 3, func() uint64 { return fbits(r.Float64()) })
		return []uint64{uint64(n), 0, 4096}
	},
})

// ferret: similarity ranking — most images are filtered out early by a
// coarse distance bound; survivors run the full distance plus an early-exit
// insertion scan. Coverage ~0.39.
var Ferret = register(&Workload{
	Name: "ferret", Suite: PARSEC,
	Notes:    "rank insert: coarse-filter continues, early-exit scan",
	DefaultN: 10000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("ferret_rank", ir.I64, ir.I64, ir.I64)
		n, feat, top := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(4095)
		l := NewLoop(b, "img", n, b.ConstI(0))

		probe := b.Load(ir.I64, b.Add(feat, b.And(b.Shr(l.I, b.ConstI(3)), b.ConstI(511))))
		l.ContinueIf("img.coarse", b.CmpGT(probe, b.ConstI(820)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		l.ContinueIf("img.medium", b.CmpGT(probe, b.ConstI(640)), func() []ir.Reg {
			return []ir.Reg{b.Add(l.Carried(0), b.ConstI(1))}
		})

		d := b.ConstI(0)
		for k := 0; k < 4; k++ {
			idx := b.And(b.Add(b.Mul(l.I, b.ConstI(4)), b.ConstI(int64(k))), mask)
			fv := b.Load(ir.I64, b.Add(feat, idx))
			diff := b.Sub(fv, b.ConstI(500))
			d = b.Add(d, b.Mul(diff, diff))
		}
		latch := b.NewBlock("img.latch")
		type inc struct {
			from *ir.Block
			val  ir.Reg
		}
		var incs []inc
		for s := 0; s < 6; s++ {
			slot := b.Load(ir.I64, b.Add(top, b.ConstI(int64(s))))
			better := b.CmpLT(d, slot)
			insert := b.NewBlock("img.ins" + string(rune('0'+s)))
			next := b.NewBlock("img.nxt" + string(rune('0'+s)))
			b.CondBr(better, insert, next)
			b.SetBlock(insert)
			b.Store(b.Add(top, b.ConstI(int64(s))), d)
			incs = append(incs, inc{b.Block(), b.ConstI(int64(s + 1))})
			b.Br(latch)
			b.SetBlock(next)
		}
		incs = append(incs, inc{b.Block(), b.ConstI(0)})
		b.Br(latch)
		b.SetBlock(latch)
		rank := b.Phi(ir.I64)
		for _, in := range incs {
			b.AddIncoming(rank, in.from, in.val)
		}
		l.End(b.Add(l.Carried(0), rank))
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("ferret")
		fillRuns(r, mem[:4096], 14, func() uint64 { return uint64(r.Intn(1000)) })
		for s := 0; s < 6; s++ {
			mem[4096+s] = uint64(200000 + s*150000)
		}
		return []uint64{uint64(n), 0, 4096}
	},
})

// fluidanimate: neighbor-cell force — out-of-range pairs skip via two light
// exits. Coverage ~0.25.
var Fluidanimate = register(&Workload{
	Name: "fluidanimate", Suite: PARSEC, FP: true,
	Notes:    "cell forces: range-reject continues, FP pressure body",
	DefaultN: 10000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("fluid_force", ir.I64, ir.I64, ir.I64)
		n, pos, vel := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(4095)
		l := NewLoop(b, "p", n, b.ConstF(0))

		i1 := b.And(b.Mul(l.I, b.ConstI(3)), mask)
		i2 := b.And(b.Add(i1, b.ConstI(37)), mask)
		p1 := b.Load(ir.F64, b.Add(pos, i1))
		p2 := b.Load(ir.F64, b.Add(pos, i2))
		dx := b.FSub(p1, p2)
		dist2 := b.FMul(dx, dx)
		l.ContinueIf("p.far", b.FCmpGE(dist2, b.ConstF(0.3)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		l.ContinueIf("p.mid", b.FCmpGE(dist2, b.ConstF(0.09)), func() []ir.Reg {
			return []ir.Reg{b.FAdd(l.Carried(0), b.ConstF(0.01))}
		})
		v1 := b.Load(ir.F64, b.Add(vel, i1))
		w := b.FSub(b.ConstF(0.09), dist2)
		press := b.FMul(b.FMul(w, w), b.ConstF(30))
		f := diamond(b, "visc", b.FCmpGT(v1, b.ConstF(0.8)),
			func() ir.Reg { return b.FMul(press, b.ConstF(0.5)) },
			func() ir.Reg { return press })
		bounced := diamond(b, "wall", b.FCmpLT(p1, b.ConstF(0.02)),
			func() ir.Reg { return b.FAdd(f, b.ConstF(5)) },
			func() ir.Reg { return f })
		l.End(b.FAdd(l.Carried(0), bounced))
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("fluidanimate")
		fillRuns(r, mem, 34, func() uint64 { return fbits(r.Float64()) })
		return []uint64{uint64(n), 0, 4096}
	},
})

// freqmine: FP-growth header-table update — hot items take a short counted
// path; the table-growth body is rare. Coverage ~0.17.
var Freqmine = register(&Workload{
	Name: "freqmine", Suite: PARSEC,
	Notes:    "FP-growth count: hot-item continues, rare growth body",
	DefaultN: 12000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("fpgrowth_count", ir.I64, ir.I64)
		n, table := b.Param(0), b.Param(1)
		mask := b.ConstI(8191)
		l := NewLoop(b, "tx", n, b.ConstI(0))

		h := b.And(b.Mul(l.I, b.ConstI(2654435761)), mask)
		// Transactions arrive grouped by item class; hot classes take the
		// short counting path in long streaks.
		cls := b.Load(ir.I64, b.Add(table, b.And(b.Shr(l.I, b.ConstI(5)), b.ConstI(127))))
		cnt := b.Load(ir.I64, b.Add(table, h))
		l.ContinueIf("tx.hot", b.CmpGT(cls, b.ConstI(8)), func() []ir.Reg {
			b.Store(b.Add(table, h), b.Add(cnt, b.ConstI(1)))
			return []ir.Reg{b.Add(l.Carried(0), b.ConstI(1))}
		})
		l.ContinueIf("tx.cold", b.CmpLT(cls, b.ConstI(4)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		neighbor := b.Load(ir.I64, b.Add(table, b.And(b.Add(h, b.ConstI(1)), mask)))
		upd := diamond(b, "grow", b.CmpEQ(b.And(cnt, b.ConstI(3)), b.ConstI(0)),
			func() ir.Reg {
				b.Store(b.Add(table, h), b.Add(cnt, b.ConstI(2)))
				return b.Add(l.Carried(0), b.And(neighbor, b.ConstI(7)))
			},
			func() ir.Reg { return l.Carried(0) })
		l.End(upd)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("freqmine")
		fillRuns(r, mem, 5, func() uint64 { return uint64(r.Intn(25)) })
		return []uint64{uint64(n), 0}
	},
})

// streamcluster: point assignment — distance plus a strongly biased
// reassignment test; near-total coverage (paper: 91%).
var Streamcluster = register(&Workload{
	Name: "streamcluster", Suite: PARSEC, FP: true,
	Notes:    "assign points: 3 branches, ~90% braid coverage",
	DefaultN: 10000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("sc_assign", ir.I64, ir.I64, ir.I64)
		n, pts, ctr := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(4095)
		l := NewLoop(b, "pt", n, b.ConstF(0))

		idx := b.And(l.I, mask)
		px := b.Load(ir.F64, b.Add(pts, idx))
		l.ContinueIf("pt.same", b.FCmpLT(px, b.ConstF(0.04)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0)}
		})
		cx := b.Load(ir.F64, b.Add(ctr, b.And(idx, b.ConstI(63))))
		d := b.FSub(px, cx)
		d2 := b.FMul(d, d)
		moved := diamond(b, "near", b.FCmpLT(d2, b.ConstF(0.9)),
			func() ir.Reg { return b.FAdd(l.Carried(0), d2) },
			func() ir.Reg {
				return diamond(b, "open", b.FCmpGT(d2, b.ConstF(3.0)),
					func() ir.Reg { return b.FAdd(l.Carried(0), b.ConstF(3)) },
					func() ir.Reg { return b.FAdd(l.Carried(0), b.FMul(d2, b.ConstF(0.5))) })
			})
		l.End(moved)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("streamcluster")
		fillRuns(r, mem, 30, func() uint64 { return fbits(r.Float64() * 0.7) })
		return []uint64{uint64(n), 0, 4096}
	},
})

// swaptions: HJM simulation — the suite's largest body: 4 unrolled
// simulation steps with many data-dependent branches; barrier-knockout
// paths leave early. Coverage ~0.38.
var Swaptions = register(&Workload{
	Name: "swaptions", Suite: PARSEC, FP: true,
	Notes:    "HJM steps: ~400-op body, ~29 branches, thousands of paths",
	DefaultN: 12000,
	MemWords: func(n int) int { return 8192 },
	Build: func() *ir.Function {
		b := ir.NewBuilder("swaptions_hjm", ir.I64, ir.I64, ir.I64)
		n, fwd, seed := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstI(4095)
		l := NewLoop(b, "sim", n, b.ConstF(0), seed)

		x0 := lcgStep(b, l.Carried(1))
		// Knocked-out scenario batches leave through two light latches.
		koSel := b.And(b.Shr(l.I, b.ConstI(4)), b.ConstI(7))
		l.ContinueIf("sim.ko", b.CmpLT(koSel, b.ConstI(4)), func() []ir.Reg {
			return []ir.Reg{l.Carried(0), x0}
		})
		l.ContinueIf("sim.ko2", b.CmpLT(koSel, b.ConstI(6)), func() []ir.Reg {
			return []ir.Reg{b.FAdd(l.Carried(0), b.ConstF(0.001)), x0}
		})

		acc := l.Carried(0)
		x := x0
		for u := 0; u < 6; u++ {
			tag := string(rune('a' + u))
			x = lcgStep(b, x)
			idx := b.And(b.Add(l.I, bits(b, x, 20, 255)), mask)
			f0 := b.Load(ir.F64, b.Add(fwd, idx))
			shock := b.FMul(b.SIToFP(bits(b, x, 8, 255)), b.ConstF(1.0/256))
			drift := b.FMul(f0, b.ConstF(0.01))
			rate := b.FAdd(f0, b.FAdd(drift, shock))

			r1 := diamond(b, "neg"+tag, b.FCmpLT(rate, b.ConstF(0.05)),
				func() ir.Reg { return b.ConstF(0.05) },
				func() ir.Reg { return rate })
			r2 := diamond(b, "cap"+tag, b.FCmpGT(r1, b.ConstF(0.9)),
				func() ir.Reg { return b.ConstF(0.9) },
				func() ir.Reg { return r1 })
			disc := diamond(b, "exp"+tag, b.FCmpGT(r2, b.ConstF(0.4)),
				func() ir.Reg { return b.Exp(b.FSub(b.ConstF(0), r2)) },
				func() ir.Reg { return b.FSub(b.ConstF(1), r2) })
			pay := diamond(b, "itm"+tag, b.FCmpGT(disc, b.ConstF(0.62)),
				func() ir.Reg { return b.FMul(b.FSub(disc, b.ConstF(0.62)), b.ConstF(100)) },
				func() ir.Reg { return b.ConstF(0) })
			sm := diamond(b, "smile"+tag, b.CmpEQ(b.And(x, b.ConstI(7)), b.ConstI(0)),
				func() ir.Reg { return b.FMul(pay, b.ConstF(1.1)) },
				func() ir.Reg { return pay })
			b.Store(b.Add(fwd, idx), r2)
			acc = b.FAdd(acc, sm)
		}
		l.End(acc, x)
		b.Ret(l.Carried(0))
		return b.MustFinish()
	},
	Setup: func(mem []uint64, n int) []uint64 {
		r := rngFor("swaptions")
		fillRuns(r, mem, 20, func() uint64 { return fbits(r.Float64() * 0.8) })
		return []uint64{uint64(n), 0, 98765}
	},
})
