package frame

import (
	"strings"
	"testing"

	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/profile"
	"needle/internal/region"
)

// memLoopSrc walks an array; values above a threshold are doubled in place.
// Parameters: base address, length, threshold.
const memLoopSrc = `func @memloop(i64, i64, i64) {
entry:
  r4 = const.i64 0
  br %head
head:
  r5 = phi.i64 [entry: r4] [latch: r6]
  r7 = cmp.lt r5, r2
  condbr r7, %body, %exit
body:
  r8 = add r1, r5
  r9 = load.i64 r8
  r10 = cmp.gt r9, r3
  condbr r10, %big, %latch
big:
  r11 = const.i64 2
  r12 = mul r9, r11
  store.i64 r8, r12
  br %latch
latch:
  r13 = const.i64 1
  r6 = add r5, r13
  br %head
exit:
  ret
}
`

func setup(t testing.TB) (*ir.Function, *profile.FunctionProfile) {
	t.Helper()
	f, err := ir.ParseFunction(memLoopSrc)
	if err != nil {
		t.Fatalf("ParseFunction: %v", err)
	}
	mem := make([]uint64, 64)
	for i := range mem {
		mem[i] = interp.IBits(int64(i % 10))
	}
	fp, err := profile.CollectFunction(nil, f,
		[]uint64{interp.IBits(0), interp.IBits(64), interp.IBits(4)}, mem, true, 0)
	if err != nil {
		t.Fatalf("CollectFunction: %v", err)
	}
	return f, fp
}

func TestBuildPathFrame(t *testing.T) {
	f, fp := setup(t)
	hot := fp.HottestPath()
	r := region.FromPath(f, hot)
	fr, err := Build(nil, r, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if fr.Guards != hot.Branches {
		t.Errorf("guards = %d, want %d (all path branches become guards)", fr.Guards, hot.Branches)
	}
	if fr.Selects != 0 {
		t.Errorf("path frame has %d selects, want 0", fr.Selects)
	}
	if fr.HoistedMemOps != r.NumMemOps() {
		t.Errorf("hoisted mem ops = %d, want %d (all of them)", fr.HoistedMemOps, r.NumMemOps())
	}
	// Stores are instrumented with undo bookkeeping.
	if fr.Stores > 0 && fr.UndoOps != 2*fr.Stores {
		t.Errorf("undo ops = %d, want %d", fr.UndoOps, 2*fr.Stores)
	}
	if fr.TotalOps() != fr.NumOps()+fr.UndoOps {
		t.Error("TotalOps bookkeeping wrong")
	}
	// Live-ins must include the frame arguments: base (r1), len (r2),
	// threshold (r3) and the induction phi.
	if len(fr.LiveIn) < 3 {
		t.Errorf("live-ins = %v, want at least the 3 parameters", fr.LiveIn)
	}
}

func TestBuildBraidFrame(t *testing.T) {
	_, fp := setup(t)
	braids := region.BuildBraids(fp, 0)
	if len(braids) == 0 {
		t.Fatal("no braids")
	}
	top := braids[0]
	if top.MergedPathCount() < 2 {
		t.Fatalf("merged = %d, want >= 2", top.MergedPathCount())
	}
	fr, err := Build(nil, &top.Region, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if fr.Guards != top.Guards+top.IFs {
		// Frame conversion turns every condbr into either a guard or a
		// predicate source; Build counts all condbrs as guards plus keeps
		// the braid's split available on the region.
		t.Logf("frame guards=%d braid guards=%d IFs=%d", fr.Guards, top.Guards, top.IFs)
	}
	// Braid keeps the divergent store control dependent.
	if fr.HoistedMemOps >= top.NumMemOps() {
		t.Errorf("hoisted=%d of %d mem ops; divergent store should stay dependent",
			fr.HoistedMemOps, top.NumMemOps())
	}
}

func TestBraidFrameSelects(t *testing.T) {
	// A value-merging diamond inside a loop: the join phi must become a
	// select in the braid frame.
	src := `func @vm(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [join: r9]
  r4 = phi.i64 [entry: r2] [join: r10]
  r5 = cmp.lt r3, r1
  condbr r5, %body, %exit
body:
  r6 = const.i64 3
  r7 = rem r3, r6
  r8 = cmp.eq r7, r2
  condbr r8, %a, %b
a:
  r11 = add r4, r3
  br %join
b:
  r12 = sub r4, r3
  br %join
join:
  r13 = phi.i64 [a: r11] [b: r12]
  r10 = add r13, r2
  r14 = const.i64 1
  r9 = add r3, r14
  br %head
exit:
  ret r4
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := profile.CollectFunction(nil, f, []uint64{interp.IBits(60)}, nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	top := region.BuildBraids(fp, 0)[0]
	if top.MergedPathCount() < 2 {
		t.Fatalf("merged = %d", top.MergedPathCount())
	}
	fr, err := Build(nil, &top.Region, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Selects == 0 {
		t.Error("braid frame should convert merge phis to selects")
	}
	if fr.Cancelled != 0 {
		t.Errorf("braid frame cancelled %d phis; braids keep merges", fr.Cancelled)
	}
}

func TestBuildRejectsSuperblock(t *testing.T) {
	f, fp := setup(t)
	sb := region.BuildSuperblock(fp, f.Entry(), 0)
	if _, err := Build(nil, &sb.Region, Options{}); err == nil {
		t.Fatal("expected error framing a superblock")
	}
}

func TestDependencesRespectProgramOrder(t *testing.T) {
	f, fp := setup(t)
	// Braid containing load+store: store must depend on load (same address
	// conservative ordering), and later loads on the store.
	braids := region.BuildBraids(fp, 0)
	fr, err := Build(nil, &braids[0].Region, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	_ = f
	loadIdx, storeIdx := -1, -1
	for i, op := range fr.Ops {
		switch op.Instr.Op {
		case ir.OpLoad:
			if loadIdx < 0 {
				loadIdx = i
			}
		case ir.OpStore:
			storeIdx = i
		}
	}
	if loadIdx < 0 || storeIdx < 0 {
		t.Fatal("expected load and store ops in frame")
	}
	// Every dep index must be smaller than the op's own index (topological).
	for i, op := range fr.Ops {
		for _, d := range op.Deps {
			if d >= i {
				t.Fatalf("op %d depends on later op %d", i, d)
			}
		}
	}
	// The store depends (transitively) on the load via the address/value
	// registers; check direct or indirect reachability.
	if !reaches(fr, storeIdx, loadIdx) {
		t.Error("store should depend on the load feeding it")
	}
}

func reaches(fr *Frame, from, to int) bool {
	seen := make(map[int]bool)
	var walk func(i int) bool
	walk = func(i int) bool {
		if i == to {
			return true
		}
		if seen[i] {
			return false
		}
		seen[i] = true
		for _, d := range fr.Ops[i].Deps {
			if walk(d) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestGuardPlacementAffectsCriticalPath(t *testing.T) {
	f, fp := setup(t)
	_ = f
	hot := fp.HottestPath()
	r := region.FromPath(fp.F, hot)
	async, err := Build(nil, r, Options{Placement: GuardsAsync})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Build(nil, r, Options{Placement: GuardsSerialize})
	if err != nil {
		t.Fatal(err)
	}
	if serial.CriticalPath() < async.CriticalPath() {
		t.Errorf("serialized guards shortened the critical path: %d < %d",
			serial.CriticalPath(), async.CriticalPath())
	}
	if async.ILP() < serial.ILP() {
		t.Errorf("async guards should not reduce ILP: %v < %v", async.ILP(), serial.ILP())
	}
}

func TestCriticalPathSanity(t *testing.T) {
	_, fp := setup(t)
	hot := fp.HottestPath()
	fr, err := Build(nil, region.FromPath(fp.F, hot), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp := fr.CriticalPath()
	if cp <= 0 || cp > len(fr.Ops) {
		t.Fatalf("critical path = %d with %d ops", cp, len(fr.Ops))
	}
	if fr.ILP() < 1 {
		t.Fatalf("ILP = %v, want >= 1", fr.ILP())
	}
}

func TestPhiCancellationForwardsProducer(t *testing.T) {
	// A path through a diamond: consumers after the merge must depend on the
	// producer from the taken side, through the cancelled phi.
	src := `func @d(i64) {
entry:
  r2 = const.i64 0
  r3 = cmp.gt r1, r2
  condbr r3, %pos, %neg
pos:
  r4 = add r1, r1
  br %join
neg:
  r5 = sub r2, r1
  br %join
join:
  r6 = phi.i64 [pos: r4] [neg: r5]
  r7 = mul r6, r6
  ret r7
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := profile.CollectFunction(nil, f, []uint64{interp.IBits(5)}, nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := fp.HottestPath() // entry->pos->join
	fr, err := Build(nil, region.FromPath(f, hot), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", fr.Cancelled)
	}
	// Find mul and add ops; mul must reach add through deps.
	mulIdx, addIdx := -1, -1
	for i, op := range fr.Ops {
		switch op.Instr.Op {
		case ir.OpMul:
			mulIdx = i
		case ir.OpAdd:
			addIdx = i
		}
	}
	if mulIdx < 0 || addIdx < 0 {
		t.Fatal("missing ops")
	}
	if !reaches(fr, mulIdx, addIdx) {
		t.Error("mul should depend on add through the cancelled phi")
	}
}

func TestPredicatedHyperblockFrame(t *testing.T) {
	f, fp := setup(t)
	hb := region.BuildHyperblock(nil, fp, f.BlockByName("body"), 0.1)
	fr, err := Build(nil, &hb.Region, Options{})
	if err != nil {
		t.Fatalf("Build(hyperblock): %v", err)
	}
	if fr.Guards != 0 {
		t.Fatalf("predicated frame has %d guards, want 0", fr.Guards)
	}
	if fr.Predicates == 0 {
		t.Fatal("predicated frame should count predicates")
	}
	if fr.UndoOps != 0 || fr.Stores == 0 {
		t.Fatalf("non-speculative frame must not log stores (undo=%d stores=%d)", fr.UndoOps, fr.Stores)
	}
	if fr.HoistedMemOps != 0 {
		t.Fatal("predication hoists nothing above branches")
	}
	// Ops in control-dependent blocks must depend on their predicate: the
	// store in `big` depends on body's branch op.
	var brIdx, storeIdx int = -1, -1
	for i, op := range fr.Ops {
		switch op.Instr.Op {
		case ir.OpCondBr:
			brIdx = i
		case ir.OpStore:
			storeIdx = i
		}
	}
	if brIdx < 0 || storeIdx < 0 {
		t.Fatal("expected a predicate and a store")
	}
	if !reaches(fr, storeIdx, brIdx) {
		t.Fatal("predicated store must depend on its controlling predicate")
	}
}

func TestPredicatedFrameSerializesMemory(t *testing.T) {
	f, fp := setup(t)
	_ = f
	hb := region.BuildHyperblock(nil, fp, fp.F.BlockByName("body"), 0.1)
	pr, err := Build(nil, &hb.Region, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The same blocks as a braid (speculative) expose more parallelism.
	braids := region.BuildBraids(fp, 0)
	sp, err := Build(nil, &braids[0].Region, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.ILP() > sp.ILP() {
		t.Fatalf("predicated ILP %.2f should not beat speculative ILP %.2f", pr.ILP(), sp.ILP())
	}
}

func TestDotExport(t *testing.T) {
	_, fp := setup(t)
	fr, err := Build(nil, region.FromPath(fp.F, fp.HottestPath()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dot := fr.Dot()
	if !strings.HasPrefix(dot, "digraph frame {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatal("malformed DOT output")
	}
	if strings.Count(dot, "[label=") != len(fr.Ops) {
		t.Fatalf("DOT node count mismatch: %d vs %d ops", strings.Count(dot, "[label="), len(fr.Ops))
	}
	if !strings.Contains(dot, "diamond") {
		t.Fatal("guards should render as diamonds")
	}
}

func TestConservativeOrderingDisambiguates(t *testing.T) {
	// a[i] and a[i+1]: same base, different constant offsets — provably
	// distinct, so even conservative ordering lets the load bypass the
	// store. a[i] vs b[j] (different bases) must stay ordered.
	src := `func @d(i64, i64) {
entry:
  r3 = const.i64 0
  br %head
head:
  r4 = phi.i64 [entry: r3] [body: r5]
  r6 = cmp.lt r4, r2
  condbr r6, %body, %exit
body:
  r7 = add r1, r4
  store.i64 r7, r4
  r8 = const.i64 1
  r9 = add r7, r8
  r10 = load.i64 r9
  r11 = add r4, r10
  r12 = xor r11, r4
  store.i64 r12, r4
  r13 = load.i64 r7
  r5 = add r4, r8
  br %head
exit:
  ret
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]uint64, 128)
	fp, err := profile.CollectFunction(nil, f, []uint64{interp.IBits(0), interp.IBits(32)}, mem, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Build(nil, region.FromPath(f, fp.HottestPath()), Options{Ordering: MemConservative})
	if err != nil {
		t.Fatal(err)
	}
	// Locate ops: store@r7, load@r9 (=r7+1), store@r12 (opaque), load@r7.
	var memIdx []int
	for i, op := range fr.Ops {
		if op.Instr.Op.IsMemory() {
			memIdx = append(memIdx, i)
		}
	}
	if len(memIdx) != 4 {
		t.Fatalf("expected 4 memory ops, got %d", len(memIdx))
	}
	st1, ld1, st2, ld2 := memIdx[0], memIdx[1], memIdx[2], memIdx[3]
	depOn := func(i, j int) bool {
		for _, d := range fr.Ops[i].Deps {
			if d == j {
				return true
			}
		}
		return false
	}
	if depOn(ld1, st1) {
		t.Error("load a[i+1] should not be ordered after store a[i] (disjoint words)")
	}
	if !depOn(st2, ld1) || !depOn(ld2, st2) {
		t.Error("opaque-address store must stay ordered against surrounding accesses")
	}
}
