// Package frame implements Needle's software frames (Section V): the
// accelerator-microarchitecture-independent offload unit generated from a
// BL-Path or Braid. A frame is an atomic block of dataflow operations with
// branches converted to asynchronous guards, phis cancelled (paths) or
// turned into selects (braids), stores instrumented for a software undo
// log, and live-in/live-out marshalling at the boundary.
package frame

import (
	"fmt"
	"strings"

	"needle/internal/analysis"
	"needle/internal/ir"
	"needle/internal/pm"
	"needle/internal/region"
)

// GuardPlacement selects where guard checks constrain the dataflow graph.
// This is the "regulate when the guard checks are inserted" knob of the
// paper's Section I, exercised by the ablation benchmarks.
type GuardPlacement uint8

const (
	// GuardsAsync detaches guards from the dataflow: every hoisted operation
	// may execute before any guard resolves, failures are detected at the
	// end of the invocation. Maximum ILP, maximum wasted work on failure.
	// This is the paper's default evaluation model.
	GuardsAsync GuardPlacement = iota
	// GuardsSerialize makes each operation depend on the most recent guard
	// in region order: less hoisting, earlier failure detection.
	GuardsSerialize
)

// MemOrdering selects how memory operations are ordered inside a frame.
type MemOrdering uint8

const (
	// MemSpeculative imposes no ordering edges between frame memory
	// operations: the undo log makes the frame atomic, and the paper's
	// frames "permit all operations to be speculative, including memory
	// operations" (Section V). This is the default and exposes the
	// memory-level parallelism the accelerator needs.
	MemSpeculative MemOrdering = iota
	// MemConservative serializes stores and orders loads around stores in
	// program order, modeling an accelerator without memory speculation.
	// Kept for the ablation benchmarks.
	MemConservative
)

// Options controls frame construction.
type Options struct {
	Placement GuardPlacement
	Ordering  MemOrdering
	// UndoOpsPerStore is the number of bookkeeping operations the software
	// undo log adds per instrumented store (read old value + append to log).
	// Zero selects the default of 2.
	UndoOpsPerStore int
}

// Op is one node of the frame's dataflow graph.
type Op struct {
	Instr *ir.Instr
	Block *ir.Block
	// Deps are indices (into Frame.Ops) of operations this one must follow:
	// register producers, memory ordering, and — under GuardsSerialize —
	// the preceding guard.
	Deps []int
	// Guard marks converted branches.
	Guard bool
	// Select marks phis converted to selection operations (braid merges).
	Select bool
}

// Frame is a constructed software frame.
type Frame struct {
	Region *region.Region
	Ops    []Op

	// LiveIn lists registers the frame consumes from the host: ordinary
	// live-ins plus the destinations of entry-block phis (whose incoming
	// values the host marshals at invocation).
	LiveIn []ir.Reg
	// LiveOut lists registers the host reads back after a successful
	// invocation.
	LiveOut []ir.Reg

	Guards     int // branches converted to guards
	Selects    int // phis converted to selects
	Cancelled  int // phis cancelled by single-flow extraction
	Stores     int // stores instrumented with undo logging
	UndoOps    int // total bookkeeping ops added for the undo log
	Predicates int // branches converted to predicate computations (hyperblocks)

	// HoistedMemOps counts memory operations that became control
	// independent inside the frame (C7 of Table II: all of them for a
	// path; common-block ones for a braid).
	HoistedMemOps int

	// Carried records the loop-carried value pairs of the region: for each
	// entry-block phi (a frame input), the in-region register that produces
	// its value for the next consecutive invocation. The accelerator's
	// initiation interval is bounded by the latency of these recurrences.
	Carried []CarriedPair

	// Def maps every register defined inside the frame to the index of the
	// producing op in Ops. Cancelled phis alias their forwarded producer.
	Def map[ir.Reg]int

	// Unroll is the target-expansion factor (Section IV-A); 0 or 1 means a
	// single path instance per invocation.
	Unroll int

	opts Options
}

// CarriedPair links an entry phi (frame input) to the in-region register
// feeding it on the next iteration.
type CarriedPair struct {
	Phi  ir.Reg
	Next ir.Reg
}

// Build constructs the offload unit for a region. Path and braid regions
// become speculative software frames. Hyperblock regions become the
// non-speculative predicated configuration of Figure 2's middle column:
// branches turn into predicate computations every subsequent operation
// depends on, memory stays conservatively ordered, and there is no undo
// log — the design Needle's software speculation is compared against.
// Superblocks have multiple exits with a single flow of control and cannot
// be framed. Liveness and control-dependence facts are served by am (nil
// for a one-shot manager).
func Build(am *pm.Manager, r *region.Region, opts Options) (*Frame, error) {
	am = pm.Ensure(am)
	predicated := r.Kind == region.KindHyperblock
	if r.Kind != region.KindPath && r.Kind != region.KindBraid && !predicated {
		return nil, fmt.Errorf("frame: cannot frame a %s region", r.Kind)
	}
	if predicated {
		// Non-speculative execution: per-op predication, conservative
		// memory ordering, no undo bookkeeping.
		opts.Ordering = MemConservative
		opts.UndoOpsPerStore = -1
	}
	for _, blk := range r.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpCall {
				return nil, fmt.Errorf("frame: region in %s contains a call; inline with passes.InlineAll first", r.F.Name)
			}
		}
	}
	if opts.UndoOpsPerStore == 0 {
		opts.UndoOpsPerStore = 2
	}
	if opts.UndoOpsPerStore < 0 {
		opts.UndoOpsPerStore = 0
	}
	fr := &Frame{Region: r, opts: opts}

	numRegs := r.F.NumRegs()
	liveIn, liveOut := r.LiveValues(am)
	// Entry phis become frame arguments: their destinations join the
	// live-in set and their incoming operands (already counted live-in by
	// the region analysis) are what the host marshals.
	seen := analysis.NewRegSet(numRegs)
	for _, reg := range liveIn {
		if !seen.Has(reg) {
			seen.Add(reg)
			fr.LiveIn = append(fr.LiveIn, reg)
		}
	}
	for _, phi := range r.Entry.Phis() {
		if !seen.Has(phi.Dst) {
			seen.Add(phi.Dst)
			fr.LiveIn = append(fr.LiveIn, phi.Dst)
		}
	}
	fr.LiveOut = liveOut

	// Linearize the region into dataflow ops. Sizing the op list and the
	// def map up front (region instructions plus undo-log headroom) keeps
	// the emit loop from repeatedly regrowing both.
	nInstr, nStore := 0, 0
	for _, blk := range r.Blocks {
		nInstr += len(blk.Instrs)
		for _, in := range blk.Instrs {
			if in.Op == ir.OpStore {
				nStore++
			}
		}
	}
	fr.Ops = make([]Op, 0, nInstr+nStore*opts.UndoOpsPerStore+8)
	// Register -> producing op index, dense over the function's register
	// space for the emit loop (every use probes it); the exported map view
	// is materialized once at the end.
	defIdx := make([]int32, numRegs+1)
	for i := range defIdx {
		defIdx[i] = -1
	}
	lastStore := -1
	var loadsSinceStore []int
	lastGuard := -1

	// Static memory disambiguation for the conservative ordering: two
	// accesses provably touch different words when their addresses are the
	// same base register plus different constant offsets (or two different
	// constants). Symbolic addresses are recovered by walking Add/Const
	// chains in the region.
	addrOf := buildAddrMap(r)
	mayAlias := func(a, b ir.Reg) bool {
		ka, oka := addrOf.get(a)
		kb, okb := addrOf.get(b)
		if !oka || !okb {
			return true
		}
		if ka.base != kb.base {
			return true // different bases: unknown relation
		}
		return ka.off == kb.off
	}

	// For predicated frames, each op depends on the predicates of the
	// branches its block is control dependent on — not on every preceding
	// branch (dataflow predication resolves in parallel).
	var ctrlOf map[*ir.Block][]*ir.Block // block -> controlling branch blocks
	branchOpIdx := make(map[*ir.Block]int)
	if predicated {
		ctrlOf = make(map[*ir.Block][]*ir.Block)
		for br, deps := range am.ControlDependents(r.F) {
			for _, dep := range deps {
				ctrlOf[dep] = append(ctrlOf[dep], br)
			}
		}
	}

	addDep := func(deps []int, idx int) []int {
		for _, d := range deps {
			if d == idx {
				return deps
			}
		}
		return append(deps, idx)
	}

	emit := func(op Op, in *ir.Instr) int {
		// Register dependences.
		in.Uses(func(reg ir.Reg) {
			if idx := defIdx[reg]; idx >= 0 {
				op.Deps = addDep(op.Deps, int(idx))
			}
		})
		if predicated {
			for _, br := range ctrlOf[op.Block] {
				if idx, ok := branchOpIdx[br]; ok {
					op.Deps = addDep(op.Deps, idx)
				}
			}
		} else if opts.Placement == GuardsSerialize && lastGuard >= 0 && !op.Guard {
			op.Deps = addDep(op.Deps, lastGuard)
		}
		fr.Ops = append(fr.Ops, op)
		idx := len(fr.Ops) - 1
		if in.Op.HasDest() {
			defIdx[in.Dst] = int32(idx)
		}
		return idx
	}

	for _, b := range r.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpPhi:
				if b == r.Entry {
					continue // frame argument
				}
				if r.Kind == region.KindHyperblock {
					// Predicated merges need a selection operation.
					fr.Selects++
					emit(Op{Instr: in, Block: b, Select: true}, in)
					continue
				}
				if r.Kind == region.KindPath {
					// Single flow of control: the phi resolves statically to
					// the value arriving along the path; it costs nothing.
					fr.Cancelled++
					// Forward the producing op so consumers depend on it.
					if prev := pathPhiIncoming(r, b, in); prev != ir.NoReg {
						if idx := defIdx[prev]; idx >= 0 {
							defIdx[in.Dst] = idx
						}
					}
					continue
				}
				// Braid: the merge needs a hardware selection operation.
				fr.Selects++
				emit(Op{Instr: in, Block: b, Select: true}, in)
			case ir.OpCondBr:
				if predicated {
					fr.Predicates++
				} else {
					fr.Guards++
				}
				idx := emit(Op{Instr: in, Block: b, Guard: !predicated}, in)
				lastGuard = idx
				if predicated {
					branchOpIdx[b] = idx
				}
			case ir.OpBr, ir.OpRet:
				// Control transfers disappear inside the frame.
			case ir.OpStore:
				fr.Stores++
				fr.UndoOps += opts.UndoOpsPerStore
				op := Op{Instr: in, Block: b}
				if opts.Ordering == MemConservative {
					if lastStore >= 0 && mayAlias(in.Args[0], fr.Ops[lastStore].Instr.Args[0]) {
						op.Deps = addDep(op.Deps, lastStore)
					}
					for _, l := range loadsSinceStore {
						if mayAlias(in.Args[0], fr.Ops[l].Instr.Args[0]) {
							op.Deps = addDep(op.Deps, l)
						}
					}
				}
				idx := emit(op, in)
				lastStore = idx
				loadsSinceStore = loadsSinceStore[:0]
			case ir.OpLoad:
				op := Op{Instr: in, Block: b}
				if opts.Ordering == MemConservative && lastStore >= 0 &&
					mayAlias(in.Args[0], fr.Ops[lastStore].Instr.Args[0]) {
					op.Deps = addDep(op.Deps, lastStore)
				}
				idx := emit(op, in)
				loadsSinceStore = append(loadsSinceStore, idx)
			default:
				emit(Op{Instr: in, Block: b}, in)
			}
		}
	}

	fr.Def = make(map[ir.Reg]int, nInstr)
	for reg, idx := range defIdx {
		if idx >= 0 {
			fr.Def[ir.Reg(reg)] = int(idx)
		}
	}

	// Loop-carried recurrences: entry phis whose incoming value is defined
	// inside the region (arriving over a back edge from a region block).
	defsIn := analysis.NewRegSet(numRegs)
	for _, blk := range r.Blocks {
		for _, in := range blk.Instrs {
			if in.Op.HasDest() {
				defsIn.Add(in.Dst)
			}
		}
	}
	for _, phi := range r.Entry.Phis() {
		for _, a := range phi.Args {
			if defsIn.Has(a) {
				fr.Carried = append(fr.Carried, CarriedPair{Phi: phi.Dst, Next: a})
			}
		}
	}

	// Memory speculation accounting: inside an atomic frame every memory op
	// in a block common to all constituent paths is hoisted above the
	// guards and becomes control independent. Predicated hyperblocks hoist
	// nothing.
	if predicated {
		fr.HoistedMemOps = 0
	} else if r.Kind == region.KindPath {
		fr.HoistedMemOps = r.NumMemOps()
	} else {
		fr.HoistedMemOps = r.NumMemOps() - braidDependentMemOps(r)
	}
	return fr, nil
}

// symAddr is a symbolic word address: base register (NoReg for absolute
// constants) plus a constant offset.
type symAddr struct {
	base ir.Reg
	off  int64
}

// addrTable holds recovered symbolic addresses, dense over the function's
// register space: have[r] marks registers whose address is known.
type addrTable struct {
	addr []symAddr
	have []bool
}

func (t *addrTable) get(r ir.Reg) (symAddr, bool) {
	if int(r) >= len(t.addr) {
		return symAddr{}, false
	}
	return t.addr[r], t.have[r]
}

// buildAddrMap recovers symbolic addresses for registers defined in the
// region by folding Add-with-constant and Const chains. Registers whose
// value cannot be expressed as base+constant are simply absent.
func buildAddrMap(r *region.Region) *addrTable {
	n := r.F.NumRegs() + 1
	defs := make([]*ir.Instr, n)
	for _, b := range r.Blocks {
		for _, in := range b.Instrs {
			if in.Op.HasDest() {
				defs[in.Dst] = in
			}
		}
	}
	t := &addrTable{addr: make([]symAddr, n), have: make([]bool, n)}
	set := func(reg ir.Reg, a symAddr) (symAddr, bool) {
		t.addr[reg] = a
		t.have[reg] = true
		return a, true
	}
	var walk func(reg ir.Reg, depth int) (symAddr, bool)
	walk = func(reg ir.Reg, depth int) (symAddr, bool) {
		if t.have[reg] {
			return t.addr[reg], true
		}
		if depth > 16 {
			return symAddr{}, false
		}
		in := defs[reg]
		if in == nil {
			// Defined outside the region: itself a base.
			return set(reg, symAddr{base: reg})
		}
		switch in.Op {
		case ir.OpConst:
			return set(reg, symAddr{base: ir.NoReg, off: in.Imm})
		case ir.OpAdd:
			// base + const (either order).
			for i := 0; i < 2; i++ {
				if c, ok := walk(in.Args[i], depth+1); ok && c.base == ir.NoReg {
					if b, ok := walk(in.Args[1-i], depth+1); ok {
						return set(reg, symAddr{base: b.base, off: b.off + c.off})
					}
				}
			}
		case ir.OpCopy:
			if a, ok := walk(in.Args[0], depth+1); ok {
				return set(reg, a)
			}
		}
		// Opaque computation: treat the register itself as a fresh base.
		return set(reg, symAddr{base: reg})
	}
	for _, b := range r.Blocks {
		for _, in := range b.Instrs {
			if in.Op.IsMemory() {
				walk(in.Args[0], 0)
			}
		}
	}
	return t
}

// pathPhiIncoming returns the incoming value of a phi along a single path
// region: the value flowing from the path predecessor of the phi's block.
func pathPhiIncoming(r *region.Region, b *ir.Block, phi *ir.Instr) ir.Reg {
	var prev *ir.Block
	for i, blk := range r.Blocks {
		if blk == b && i > 0 {
			prev = r.Blocks[i-1]
			break
		}
	}
	if prev == nil {
		return ir.NoReg
	}
	for i, from := range phi.Blocks {
		if from == prev {
			return phi.Args[i]
		}
	}
	return ir.NoReg
}

// braidDependentMemOps counts memory ops in blocks not shared by all merged
// paths (these stay control dependent on the braid's internal IFs).
func braidDependentMemOps(r *region.Region) int {
	if len(r.Paths) == 0 {
		return 0
	}
	// Dense per-block counters indexed by Block.Index (all blocks belong to
	// one function, so indices are unique here).
	maxIdx := 0
	for _, b := range r.Blocks {
		if b.Index > maxIdx {
			maxIdx = b.Index
		}
	}
	for _, p := range r.Paths {
		for _, b := range p.Blocks {
			if b.Index > maxIdx {
				maxIdx = b.Index
			}
		}
	}
	onAll := make([]int, maxIdx+1)
	lastSeen := make([]int, maxIdx+1)
	for i, p := range r.Paths {
		for _, b := range p.Blocks {
			if lastSeen[b.Index] != i+1 {
				lastSeen[b.Index] = i + 1
				onAll[b.Index]++
			}
		}
	}
	n := 0
	for _, b := range r.Blocks {
		if onAll[b.Index] == len(r.Paths) {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op.IsMemory() {
				n++
			}
		}
	}
	return n
}

// NumOps returns the number of dataflow operations in the frame, excluding
// undo-log bookkeeping.
func (fr *Frame) NumOps() int { return len(fr.Ops) }

// TotalOps returns dataflow operations plus undo-log bookkeeping: the work
// the accelerator actually performs per invocation.
func (fr *Frame) TotalOps() int { return len(fr.Ops) + fr.UndoOps }

// CriticalPath returns the length (in ops) of the longest dependence chain
// through the frame: the dataflow-limited lower bound on execution.
func (fr *Frame) CriticalPath() int {
	depth := make([]int, len(fr.Ops))
	max := 0
	for i, op := range fr.Ops {
		d := 1
		for _, dep := range op.Deps {
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		depth[i] = d
		if d > max {
			max = d
		}
	}
	return max
}

// ILP returns ops divided by critical path length: the average dataflow
// parallelism the frame exposes.
func (fr *Frame) ILP() float64 {
	cp := fr.CriticalPath()
	if cp == 0 {
		return 0
	}
	return float64(len(fr.Ops)) / float64(cp)
}

// Dot renders the frame's dataflow graph in Graphviz DOT format: one node
// per op (guards as diamonds, selects as trapezia, memory shaded) and one
// edge per dependence. Useful for inspecting what a region compiles to:
//
//	needle -workload 470.lbm -dot | dot -Tsvg > frame.svg
func (fr *Frame) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph frame {\n  rankdir=TB;\n  node [fontsize=9];\n")
	for i, op := range fr.Ops {
		label := op.Instr.Op.String()
		if op.Instr.Dst != ir.NoReg {
			label = op.Instr.Dst.String() + " = " + label
		}
		attr := "shape=box"
		switch {
		case op.Guard:
			attr = "shape=diamond, style=filled, fillcolor=lightyellow"
		case op.Select:
			attr = "shape=trapezium"
		case op.Instr.Op.IsMemory():
			attr = "shape=box, style=filled, fillcolor=lightgrey"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q, %s];\n", i, label, attr)
		for _, d := range op.Deps {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", d, i)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
