package frame

import (
	"fmt"

	"needle/internal/ir"
)

// Expand implements BL-Path target expansion (Section IV-A): when the path
// trace shows the same path (or a strongly biased successor) executing
// back-to-back, Needle sequences multiple path instances into one larger
// offload unit, reducing host interactions. The expanded frame contains
// `unroll` copies of the original dataflow graph, with each copy's
// loop-carried inputs wired to the previous copy's outputs — the dataflow
// equivalent of unrolling the path across the loop back edge.
//
// Guards, stores, and undo bookkeeping scale with the unroll factor; the
// live-in/live-out interface does not (intermediate carried values stay on
// the fabric). A guard failure in any copy rolls the whole unit back, which
// is why expansion is only applied to paths with high sequence bias
// (Table III).
func Expand(fr *Frame, unroll int) (*Frame, error) {
	if unroll < 1 {
		return nil, fmt.Errorf("frame: unroll factor %d out of range", unroll)
	}
	if unroll == 1 {
		return fr, nil
	}
	out := &Frame{
		Region:        fr.Region,
		LiveIn:        fr.LiveIn,
		LiveOut:       fr.LiveOut,
		Guards:        fr.Guards * unroll,
		Selects:       fr.Selects * unroll,
		Cancelled:     fr.Cancelled * unroll,
		Stores:        fr.Stores * unroll,
		UndoOps:       fr.UndoOps * unroll,
		HoistedMemOps: fr.HoistedMemOps * unroll,
		Carried:       fr.Carried,
		Unroll:        unroll,
		Def:           make(map[ir.Reg]int),
		opts:          fr.opts,
	}

	n := len(fr.Ops)
	// carriedNext[phi] = op index (within a copy) producing the phi's next
	// value; used to stitch copy c's phi uses to copy c-1's producer.
	carriedNext := make(map[ir.Reg]int)
	for _, cp := range fr.Carried {
		if idx, ok := fr.Def[cp.Next]; ok {
			carriedNext[cp.Phi] = idx
		}
	}

	for c := 0; c < unroll; c++ {
		base := c * n
		for _, op := range fr.Ops {
			nop := Op{Instr: op.Instr, Block: op.Block, Guard: op.Guard, Select: op.Select}
			for _, d := range op.Deps {
				nop.Deps = append(nop.Deps, base+d)
			}
			if c > 0 {
				// Wire carried-phi uses to the previous copy's producers.
				op.Instr.Uses(func(r ir.Reg) {
					if prev, ok := carriedNext[r]; ok {
						nop.Deps = append(nop.Deps, (c-1)*n+prev)
					}
				})
			}
			out.Ops = append(out.Ops, nop)
		}
	}
	// Def maps to the last copy (the values the host reads back).
	for r, idx := range fr.Def {
		out.Def[r] = (unroll-1)*n + idx
	}
	return out, nil
}

// IterationsPerInvocation returns how many path instances one invocation of
// the frame executes (1 for unexpanded frames).
func (fr *Frame) IterationsPerInvocation() int {
	if fr.Unroll < 1 {
		return 1
	}
	return fr.Unroll
}
