package frame

import (
	"fmt"

	"needle/internal/ir"
	"needle/internal/region"
)

// OpData is one frame op with its instruction referenced positionally:
// the block's index within the function and the instruction's index within
// that block. Positional references survive serialization because the .nir
// round trip preserves block order and per-block instruction order exactly.
type OpData struct {
	Block  int // ir.Block.Index within the frame's function
	Instr  int // index into that block's Instrs
	Deps   []int
	Guard  bool
	Select bool
}

// Data is the pure serializable core of a Frame: every op positionally
// encoded plus the counters, interface registers, and construction options.
// The Region is deliberately absent — a frame is rehydrated against the
// region its braid decodes to, via FromData.
type Data struct {
	Ops     []OpData
	LiveIn  []ir.Reg
	LiveOut []ir.Reg

	Guards        int
	Selects       int
	Cancelled     int
	Stores        int
	UndoOps       int
	Predicates    int
	HoistedMemOps int

	Carried []CarriedPair
	Def     map[ir.Reg]int
	Unroll  int
	Opts    Options
}

// Data extracts the serializable core of the frame.
func (fr *Frame) Data() *Data {
	d := &Data{
		Ops:           make([]OpData, len(fr.Ops)),
		LiveIn:        fr.LiveIn,
		LiveOut:       fr.LiveOut,
		Guards:        fr.Guards,
		Selects:       fr.Selects,
		Cancelled:     fr.Cancelled,
		Stores:        fr.Stores,
		UndoOps:       fr.UndoOps,
		Predicates:    fr.Predicates,
		HoistedMemOps: fr.HoistedMemOps,
		Carried:       fr.Carried,
		Def:           fr.Def,
		Unroll:        fr.Unroll,
		Opts:          fr.opts,
	}
	for i, op := range fr.Ops {
		od := OpData{Block: op.Block.Index, Deps: op.Deps, Guard: op.Guard, Select: op.Select}
		od.Instr = -1
		for j, in := range op.Block.Instrs {
			if in == op.Instr {
				od.Instr = j
				break
			}
		}
		d.Ops[i] = od
	}
	return d
}

// BuildOptions returns the options the frame was constructed with (after
// normalization — defaults filled, predicated overrides applied).
func (fr *Frame) BuildOptions() Options { return fr.opts }

// FromData rehydrates a frame against r, re-resolving every positional op
// reference to the region function's blocks and instructions. r must be the
// same region (structurally) the frame was built from.
func FromData(r *region.Region, d *Data) (*Frame, error) {
	fr := &Frame{
		Region:        r,
		Ops:           make([]Op, len(d.Ops)),
		LiveIn:        d.LiveIn,
		LiveOut:       d.LiveOut,
		Guards:        d.Guards,
		Selects:       d.Selects,
		Cancelled:     d.Cancelled,
		Stores:        d.Stores,
		UndoOps:       d.UndoOps,
		Predicates:    d.Predicates,
		HoistedMemOps: d.HoistedMemOps,
		Carried:       d.Carried,
		Def:           d.Def,
		Unroll:        d.Unroll,
		opts:          d.Opts,
	}
	for i, od := range d.Ops {
		if od.Block < 0 || od.Block >= len(r.F.Blocks) {
			return nil, fmt.Errorf("frame: op %d references block %d of %d", i, od.Block, len(r.F.Blocks))
		}
		b := r.F.Blocks[od.Block]
		if od.Instr < 0 || od.Instr >= len(b.Instrs) {
			return nil, fmt.Errorf("frame: op %d references instr %d of %d in %s", i, od.Instr, len(b.Instrs), b.Name)
		}
		for _, dep := range od.Deps {
			if dep < 0 || dep >= i {
				return nil, fmt.Errorf("frame: op %d has forward or negative dep %d", i, dep)
			}
		}
		fr.Ops[i] = Op{Instr: b.Instrs[od.Instr], Block: b, Deps: od.Deps, Guard: od.Guard, Select: od.Select}
	}
	return fr, nil
}
