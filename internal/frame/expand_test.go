package frame

import (
	"testing"

	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/profile"
	"needle/internal/region"
)

// accumLoop: a loop with a floating accumulator (real recurrence) and
// independent per-iteration work.
const accumLoopSrc = `func @acc(i64, i64) {
entry:
  r3 = const.f64 0
  r5 = const.i64 0
  br %head
head:
  r4 = phi.i64 [entry: r5] [body: r6]
  r7 = phi.f64 [entry: r3] [body: r8]
  r9 = cmp.lt r4, r2
  condbr r9, %body, %exit
body:
  r10 = add r1, r4
  r11 = load.f64 r10
  r12 = fmul r11, r11
  r8 = fadd r7, r12
  r13 = const.i64 1
  r6 = add r4, r13
  br %head
exit:
  ret r7
}
`

func expandSetup(t testing.TB) *Frame {
	t.Helper()
	m, err := ir.Parse(accumLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Funcs[0]
	mem := make([]uint64, 64)
	for i := range mem {
		mem[i] = interp.FBits(float64(i) * 0.25)
	}
	fp, err := profile.CollectFunction(nil, f, []uint64{interp.IBits(0), interp.IBits(64)}, mem, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Build(nil, region.FromPath(f, fp.HottestPath()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func TestExpandScalesCounts(t *testing.T) {
	fr := expandSetup(t)
	ex, err := Expand(fr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Ops) != 4*len(fr.Ops) {
		t.Fatalf("ops = %d, want %d", len(ex.Ops), 4*len(fr.Ops))
	}
	if ex.Guards != 4*fr.Guards || ex.Stores != 4*fr.Stores {
		t.Fatal("guard/store counts must scale with unroll")
	}
	if len(ex.LiveIn) != len(fr.LiveIn) || len(ex.LiveOut) != len(fr.LiveOut) {
		t.Fatal("live interface must not scale with unroll")
	}
	if ex.IterationsPerInvocation() != 4 || fr.IterationsPerInvocation() != 1 {
		t.Fatal("IterationsPerInvocation wrong")
	}
}

func TestExpandWiresRecurrence(t *testing.T) {
	fr := expandSetup(t)
	ex, err := Expand(fr, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The accumulator chain must cross the copy boundary: the second copy's
	// fadd depends (transitively) on the first copy's fadd.
	n := len(fr.Ops)
	var faddIdx []int
	for i, op := range ex.Ops {
		if op.Instr.Op == ir.OpFAdd {
			faddIdx = append(faddIdx, i)
		}
	}
	if len(faddIdx) != 2 {
		t.Fatalf("fadds = %d, want 2", len(faddIdx))
	}
	second := ex.Ops[faddIdx[1]]
	crossCopy := false
	for _, d := range second.Deps {
		if d < n {
			crossCopy = true
		}
	}
	if !crossCopy {
		t.Fatal("expanded recurrence not wired across copies")
	}
	// Deps stay topological.
	for i, op := range ex.Ops {
		for _, d := range op.Deps {
			if d >= i {
				t.Fatalf("op %d depends on later op %d", i, d)
			}
		}
	}
	// Expansion grows the critical path by roughly the recurrence length,
	// not by the whole body: ILP per iteration is preserved or better.
	if ex.CriticalPath() >= 2*fr.CriticalPath() {
		t.Fatalf("expansion serialized the whole body: %d vs %d", ex.CriticalPath(), fr.CriticalPath())
	}
}

func TestExpandIdentityAndErrors(t *testing.T) {
	fr := expandSetup(t)
	same, err := Expand(fr, 1)
	if err != nil || same != fr {
		t.Fatal("unroll=1 must return the frame unchanged")
	}
	if _, err := Expand(fr, 0); err == nil {
		t.Fatal("unroll=0 must error")
	}
}
