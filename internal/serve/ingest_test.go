// Ingestion tests for inline-source analysis: request caps (413), invalid
// programs (422), mutual exclusion with workload requests (400), and the
// CLI byte-identity contract for accepted source.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"needle/internal/core"
	"needle/internal/obs"
	"needle/internal/program"
)

// ingestSrc is a small terminating kernel used across the ingestion tests.
const ingestSrc = `func @count(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [body: r4]
  r5 = cmp.lt r3, r1
  condbr r5, %body, %exit
body:
  r6 = const.i64 1
  r4 = add r3, r6
  br %head
exit:
  ret r3
}
`

func sourceReq(t *testing.T, req analyzeRequest) string {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestAnalyzeSourceRejections pins the ingestion status mapping: over-cap
// payloads and programs are 413, malformed programs are 422, shape
// conflicts are 400 — and none of them reach the pipeline.
func TestAnalyzeSourceRejections(t *testing.T) {
	lim := DefaultLimits()
	lim.MaxSourceBytes = 1 << 10
	lim.MaxInstrs = 64
	lim.MaxMemWords = 1 << 16
	s := New(Config{Jobs: 1, MaxBodyBytes: 16 << 10, Limits: lim})
	defer s.Close()
	ran := false
	s.analyze = func(context.Context, *obs.Span, *program.Program, core.Config) (*core.Analysis, error) {
		ran = true
		return nil, nil
	}

	cases := []struct {
		name string
		body string
		want int
	}{
		{"oversized request body", sourceReq(t, analyzeRequest{Source: ingestSrc + strings.Repeat(";x\n", 8<<10)}), http.StatusRequestEntityTooLarge},
		{"oversized source", sourceReq(t, analyzeRequest{Source: "; pad\n" + strings.Repeat("; padding line\n", 80) + ingestSrc}), http.StatusRequestEntityTooLarge},
		{"oversized memory image", sourceReq(t, analyzeRequest{Source: ingestSrc, MemWords: 1 << 20}), http.StatusRequestEntityTooLarge},
		{"unparsable source", sourceReq(t, analyzeRequest{Source: "this is not nir"}), http.StatusUnprocessableEntity},
		{"unverifiable source", sourceReq(t, analyzeRequest{Source: "func @f(i64) {\nentry:\n  condbr r1, %a, %b\na:\n  ret r1\nb:\n  ret\n}\n"}), http.StatusUnprocessableEntity},
		{"unknown entry", sourceReq(t, analyzeRequest{Source: ingestSrc, Entry: "missing"}), http.StatusUnprocessableEntity},
		{"excess arguments", sourceReq(t, analyzeRequest{Source: ingestSrc, Args: []string{"1", "2"}}), http.StatusUnprocessableEntity},
		{"bad argument literal", sourceReq(t, analyzeRequest{Source: ingestSrc, Args: []string{"zebra"}}), http.StatusUnprocessableEntity},
		{"workload and source", sourceReq(t, analyzeRequest{Workload: "164.gzip", Source: ingestSrc}), http.StatusBadRequest},
		{"source options on workload", sourceReq(t, analyzeRequest{Workload: "164.gzip", Args: []string{"1"}}), http.StatusBadRequest},
		{"neither workload nor source", `{"n":100}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rr := doReq(s, http.MethodPost, "/v1/analyze", tc.body)
		if rr.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body %q)", tc.name, rr.Code, tc.want, rr.Body.String())
		}
		var e map[string]string
		if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e["error"] == "" {
			t.Errorf("%s: rejection body is not an error object: %q", tc.name, rr.Body.String())
		}
	}
	if ran {
		t.Error("a rejected request reached the analyze seam")
	}

	// A static-instruction bomb: many tiny functions under the source cap.
	var instrBomb strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&instrBomb, "func @f%d() {\nentry:\n  r1 = const.i64 %d\n  ret r1\n}\n", i, i)
	}
	rr := doReq(s, http.MethodPost, "/v1/analyze", sourceReq(t, analyzeRequest{Source: instrBomb.String()}))
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("instruction bomb: status %d, want 413 (body %q)", rr.Code, rr.Body.String())
	}
}

// TestAnalyzeSourceStepCap: an explicit interpreter bound above the server
// cap is rejected with 422; an absent bound is clamped and the request
// succeeds.
func TestAnalyzeSourceStepCap(t *testing.T) {
	lim := DefaultLimits()
	lim.MaxSteps = 1_000_000
	s := New(Config{Jobs: 1, Limits: lim})
	defer s.Close()

	over := core.DefaultConfig()
	over.Sim.MaxSteps = lim.MaxSteps + 1
	rr := doReq(s, http.MethodPost, "/v1/analyze", sourceReq(t, analyzeRequest{Source: ingestSrc, Config: &over}))
	if rr.Code != http.StatusUnprocessableEntity {
		t.Errorf("over-cap maxSteps: status %d, want 422 (body %q)", rr.Code, rr.Body.String())
	}

	rr = doReq(s, http.MethodPost, "/v1/analyze", sourceReq(t, analyzeRequest{Source: ingestSrc, Args: []string{"10"}}))
	if rr.Code != http.StatusOK {
		t.Errorf("clamped request: status %d (body %q)", rr.Code, rr.Body.String())
	}
}

// nirCLIBytes returns exactly what `needle -nir <file> -json` prints for
// this source and options: the shared loader into the program-first core
// API, MarshalSummaries plus Println's newline.
func nirCLIBytes(t *testing.T, src string, opts program.LoadOptions, cfg core.Config) []byte {
	t.Helper()
	p, err := program.Load(src, opts)
	if err != nil {
		t.Fatalf("reference load: %v", err)
	}
	a, err := core.New().Run(context.Background(), p, cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	out, err := core.MarshalSummaries([]*core.Analysis{a})
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestAnalyzeSourceMatchesCLIBytes is the inline-source differential test:
// POSTing a program as source must respond with the exact bytes
// `needle -nir <file> -json` prints for the same program, arguments, and
// config.
func TestAnalyzeSourceMatchesCLIBytes(t *testing.T) {
	s := New(Config{Jobs: 1})
	defer s.Close()

	rr := doReq(s, http.MethodPost, "/v1/analyze",
		sourceReq(t, analyzeRequest{Source: ingestSrc, Args: []string{"25"}}))
	if rr.Code != http.StatusOK {
		t.Fatalf("source analyze: status %d (body %q)", rr.Code, rr.Body.String())
	}
	if v := rr.Header().Get("X-Needle-Schema-Version"); v != fmt.Sprint(core.SummarySchemaVersion) {
		t.Errorf("schema version header %q, want %d", v, core.SummarySchemaVersion)
	}
	want := nirCLIBytes(t, ingestSrc, program.LoadOptions{Args: []string{"25"}}, core.DefaultConfig())
	if !bytes.Equal(rr.Body.Bytes(), want) {
		t.Errorf("source response diverges from CLI bytes:\n got %s\nwant %s", rr.Body.Bytes(), want)
	}

	var sums []core.Summary
	if err := json.Unmarshal(rr.Body.Bytes(), &sums); err != nil || len(sums) != 1 {
		t.Fatalf("response is not a one-summary array: %v", err)
	}
	if sums[0].Workload != "count" || sums[0].Suite != program.SuiteUser {
		t.Errorf("summary identity = %s/%s, want count/%s", sums[0].Workload, sums[0].Suite, program.SuiteUser)
	}

	// Entry selection and explicit memory also travel byte-identically.
	two := ingestSrc + "\nfunc @late(i64) {\nentry:\n  r2 = const.i64 3\n  r3 = mul r1, r2\n  ret r3\n}\n"
	opts := program.LoadOptions{Entry: "late", MemWords: 8192, Args: []string{"7"}}
	rr = doReq(s, http.MethodPost, "/v1/analyze",
		sourceReq(t, analyzeRequest{Source: two, Entry: "late", MemWords: 8192, Args: []string{"7"}}))
	if rr.Code != http.StatusOK {
		t.Fatalf("entry-selected analyze: status %d (body %q)", rr.Code, rr.Body.String())
	}
	if want := nirCLIBytes(t, two, opts, core.DefaultConfig()); !bytes.Equal(rr.Body.Bytes(), want) {
		t.Errorf("entry-selected response diverges from CLI bytes:\n got %s\nwant %s", rr.Body.Bytes(), want)
	}
}
