// Differential tests: the service runs the real pipeline and must be
// byte-identical to the CLI's -json output, collapse identical concurrent
// requests onto one run, stream real sweeps, and never let an expired
// deadline poison the shared store.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"needle/internal/core"
	"needle/internal/obs"
	"needle/internal/program"
	"needle/internal/workloads"
)

// cliBytes returns exactly what `needle -json -workload <w>` prints for
// this workload and config: MarshalSummaries plus Println's newline.
func cliBytes(t *testing.T, w *workloads.Workload, cfg core.Config) []byte {
	t.Helper()
	a, err := core.New().RunWorkload(context.Background(), w, cfg)
	if err != nil {
		t.Fatalf("reference run %s: %v", w.Name, err)
	}
	out, err := core.MarshalSummaries([]*core.Analysis{a})
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestAnalyzeMatchesCLIBytes pins the core API contract across several
// workloads: POST /v1/analyze responds with the exact bytes the CLI emits.
func TestAnalyzeMatchesCLIBytes(t *testing.T) {
	s := New(Config{Jobs: 2})
	defer s.Close()
	ws := workloads.All()
	if len(ws) < 5 {
		t.Fatalf("differential test needs >= 5 workloads, have %d", len(ws))
	}
	for _, w := range ws[:5] {
		rr := doReq(s, http.MethodPost, "/v1/analyze", fmt.Sprintf(`{"workload":%q,"n":500}`, w.Name))
		if rr.Code != http.StatusOK {
			t.Fatalf("%s: status %d (body %q)", w.Name, rr.Code, rr.Body.String())
		}
		if v := rr.Header().Get("X-Needle-Schema-Version"); v != fmt.Sprint(core.SummarySchemaVersion) {
			t.Errorf("%s: schema version header %q, want %d", w.Name, v, core.SummarySchemaVersion)
		}
		cfg := core.DefaultConfig()
		cfg.N = 500
		if want := cliBytes(t, w, cfg); !bytes.Equal(rr.Body.Bytes(), want) {
			t.Errorf("%s: response diverges from CLI bytes:\n got %s\nwant %s", w.Name, rr.Body.Bytes(), want)
		}
	}
}

// TestAnalyzeMatchesCLIBytesCustomConfig: a fully explicit config travels
// through the JSON payload and still reproduces the CLI bytes.
func TestAnalyzeMatchesCLIBytesCustomConfig(t *testing.T) {
	s := New(Config{Jobs: 1})
	defer s.Close()
	w := workloads.All()[0]
	cfg := core.DefaultConfig()
	cfg.N = 600
	cfg.Sim.HistBits = 16
	body, err := json.Marshal(analyzeRequest{Workload: w.Name, Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	rr := doReq(s, http.MethodPost, "/v1/analyze", string(body))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d (body %q)", rr.Code, rr.Body.String())
	}
	if want := cliBytes(t, w, cfg); !bytes.Equal(rr.Body.Bytes(), want) {
		t.Errorf("custom config diverges from CLI bytes:\n got %s\nwant %s", rr.Body.Bytes(), want)
	}
}

// TestConcurrentIdenticalRequestsCollapse: several identical requests
// against the real pipeline produce one run (the leader is gated until
// every follower has joined) and byte-identical responses for all callers.
func TestConcurrentIdenticalRequestsCollapse(t *testing.T) {
	s := New(Config{Jobs: 2})
	defer s.Close()
	const followers = 2
	real := s.analyze
	var runs int32
	s.analyze = func(ctx context.Context, parent *obs.Span, p *program.Program, cfg core.Config) (*core.Analysis, error) {
		atomic.AddInt32(&runs, 1)
		waitUntil(t, func() bool { return s.Collapsed() >= followers })
		return real(ctx, parent, p, cfg)
	}
	var wg sync.WaitGroup
	bodies := make([][]byte, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr := doReq(s, http.MethodPost, "/v1/analyze", `{"workload":"164.gzip","n":700}`)
			if rr.Code != http.StatusOK {
				t.Errorf("request %d: status %d (body %q)", i, rr.Code, rr.Body.String())
				return
			}
			bodies[i] = rr.Body.Bytes()
		}(i)
	}
	wg.Wait()
	if n := atomic.LoadInt32(&runs); n != 1 {
		t.Errorf("identical concurrent requests ran %d pipelines, want 1", n)
	}
	if c := s.Collapsed(); c != followers {
		t.Errorf("Collapsed() = %d, want %d", c, followers)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("request %d body diverges from request 0", i)
		}
	}
	cfg := core.DefaultConfig()
	cfg.N = 700
	if want := cliBytes(t, workloads.ByName("164.gzip"), cfg); !bytes.Equal(bodies[0], want) {
		t.Error("collapsed response diverges from CLI bytes")
	}
}

// TestSweepStreamsNDJSON: a real sweep streams one compact summary line per
// workload, each carrying the schema version, covering the whole suite.
func TestSweepStreamsNDJSON(t *testing.T) {
	s := New(Config{Jobs: 4})
	defer s.Close()
	rr := doReq(s, http.MethodPost, "/v1/sweep", `{"n":400}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("sweep: status %d (body %q)", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("sweep content type %q", ct)
	}
	lines := strings.Split(strings.TrimRight(rr.Body.String(), "\n"), "\n")
	ws := workloads.All()
	if len(lines) != len(ws) {
		t.Fatalf("streamed %d lines, want %d", len(lines), len(ws))
	}
	seen := make(map[string]bool)
	for i, line := range lines {
		var sum core.Summary
		if err := json.Unmarshal([]byte(line), &sum); err != nil {
			t.Fatalf("line %d is not a summary: %v (%q)", i, err, line)
		}
		if sum.SchemaVersion != core.SummarySchemaVersion {
			t.Errorf("line %d: schemaVersion %d, want %d", i, sum.SchemaVersion, core.SummarySchemaVersion)
		}
		if sum.N != 400 {
			t.Errorf("line %d: n = %d, want 400", i, sum.N)
		}
		seen[sum.Workload] = true
	}
	for _, w := range ws {
		if !seen[w.Name] {
			t.Errorf("sweep stream missing workload %s", w.Name)
		}
	}
}

// TestDeadlineDoesNotPoisonStore: a request that dies on its deadline must
// not memoize the interruption — the next identical request on the same
// warm store succeeds with the correct bytes.
func TestDeadlineDoesNotPoisonStore(t *testing.T) {
	s := New(Config{Jobs: 1})
	defer s.Close()
	// The problem size must be large enough that the run cannot finish
	// inside the 1ms deadline (the synthetic kernels are fast; at the
	// default sizes a whole run beats a millisecond on a warm machine).
	const n = 200000
	rr := doReq(s, http.MethodPost, "/v1/analyze", fmt.Sprintf(`{"workload":"456.hmmer","n":%d,"timeoutMs":1}`, n))
	if rr.Code != statusClientClosedRequest {
		t.Fatalf("expired request: status %d, want %d (body %q)", rr.Code, statusClientClosedRequest, rr.Body.String())
	}
	rr = doReq(s, http.MethodPost, "/v1/analyze", fmt.Sprintf(`{"workload":"456.hmmer","n":%d}`, n))
	if rr.Code != http.StatusOK {
		t.Fatalf("retry after deadline: status %d (body %q)", rr.Code, rr.Body.String())
	}
	cfg := core.DefaultConfig()
	cfg.N = n
	if want := cliBytes(t, workloads.ByName("456.hmmer"), cfg); !bytes.Equal(rr.Body.Bytes(), want) {
		t.Error("post-deadline retry diverges from CLI bytes")
	}
}

// TestTraceDownload: ?trace=1 responds with a request-scoped Chrome trace
// whose events cover the pipeline stages of exactly this run.
func TestTraceDownload(t *testing.T) {
	s := New(Config{Jobs: 1})
	defer s.Close()
	rr := doReq(s, http.MethodPost, "/v1/analyze?trace=1", `{"workload":"164.gzip","n":500}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("trace request: status %d (body %q)", rr.Code, rr.Body.String())
	}
	if cd := rr.Header().Get("Content-Disposition"); !strings.Contains(cd, "164.gzip") {
		t.Errorf("trace Content-Disposition %q", cd)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &trace); err != nil {
		t.Fatalf("trace body is not Chrome trace JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, e := range trace.TraceEvents {
		if e.Ph == "X" {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"request: analyze 164.gzip", "inline", "profile", "select", "frame", "target"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}
