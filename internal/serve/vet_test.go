// Vet endpoint tests: POST /v1/vet runs the static-analysis suite under
// the same ingestion rules as /v1/analyze and must be byte-identical to
// `needle -vet -json` for the same program.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"needle/internal/program"
	"needle/internal/vet"
	"needle/internal/workloads"
)

// cliVetBytes returns exactly what `needle -vet -json` prints for this
// program: MarshalReport plus Println's newline.
func cliVetBytes(t *testing.T, p *program.Program) []byte {
	t.Helper()
	out, err := vet.MarshalReport(vet.Check(nil, p))
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func vetReqBody(t *testing.T, src string) string {
	t.Helper()
	b, err := json.Marshal(map[string]string{"source": src})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestVetMatchesCLIBytes: for every checked-in example — including the
// deliberately diagnostic-heavy ones — the endpoint responds with the
// exact bytes the CLI emits.
func TestVetMatchesCLIBytes(t *testing.T) {
	s := New(Config{Jobs: 1})
	defer s.Close()
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "nir", "*.nir"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no examples found: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		rr := doReq(s, http.MethodPost, "/v1/vet", vetReqBody(t, string(src)))
		if rr.Code != http.StatusOK {
			t.Fatalf("%s: status %d (body %q)", file, rr.Code, rr.Body.String())
		}
		if v := rr.Header().Get("X-Needle-Vet-Schema-Version"); v != fmt.Sprint(vet.ReportSchemaVersion) {
			t.Errorf("%s: vet schema version header %q, want %d", file, v, vet.ReportSchemaVersion)
		}
		p, err := program.Load(string(src), program.LoadOptions{})
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if want := cliVetBytes(t, p); !bytes.Equal(rr.Body.Bytes(), want) {
			t.Errorf("%s: response diverges from CLI bytes:\n got %s\nwant %s", file, rr.Body.Bytes(), want)
		}
	}
}

// TestVetWorkload: workload selection works exactly as /v1/analyze's and
// reproduces `needle -vet -workload <w> -json`.
func TestVetWorkload(t *testing.T) {
	s := New(Config{Jobs: 1})
	defer s.Close()
	w := workloads.All()[0]
	rr := doReq(s, http.MethodPost, "/v1/vet", fmt.Sprintf(`{"workload":%q,"n":500}`, w.Name))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d (body %q)", rr.Code, rr.Body.String())
	}
	p, err := w.Program(500)
	if err != nil {
		t.Fatal(err)
	}
	if want := cliVetBytes(t, p); !bytes.Equal(rr.Body.Bytes(), want) {
		t.Errorf("workload vet diverges from CLI bytes:\n got %s\nwant %s", rr.Body.Bytes(), want)
	}
}

// TestVetIngestionRules: vet shares analyze's ingestion: bad methods,
// invalid source, unknown workloads, and mutually exclusive selectors all
// fail with the same statuses.
func TestVetIngestionRules(t *testing.T) {
	s := New(Config{Jobs: 1})
	defer s.Close()
	cases := []struct {
		name, method, body string
		want               int
	}{
		{"get", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"empty", http.MethodPost, "", http.StatusBadRequest},
		{"no program", http.MethodPost, `{}`, http.StatusBadRequest},
		{"both", http.MethodPost, `{"workload":"164.gzip","source":"x"}`, http.StatusBadRequest},
		{"unknown workload", http.MethodPost, `{"workload":"nope"}`, http.StatusNotFound},
		{"invalid source", http.MethodPost, `{"source":"func @f( {"}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		rr := doReq(s, tc.method, "/v1/vet", tc.body)
		if rr.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body %q)", tc.name, rr.Code, tc.want, rr.Body.String())
		}
	}
}

// TestVetDeterministicAcrossRequests: two identical requests produce
// byte-identical responses (vet bypasses the singleflight; determinism is
// a property of the analyses themselves).
func TestVetDeterministicAcrossRequests(t *testing.T) {
	s := New(Config{Jobs: 2})
	defer s.Close()
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "nir", "histogram.nir"))
	if err != nil {
		t.Fatal(err)
	}
	a := doReq(s, http.MethodPost, "/v1/vet", vetReqBody(t, string(src)))
	b := doReq(s, http.MethodPost, "/v1/vet", vetReqBody(t, string(src)))
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("statuses %d / %d", a.Code, b.Code)
	}
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Error("identical vet requests produced different bytes")
	}
}
