// Request collapsing: concurrent /v1/analyze requests for the same
// (workload, config-fingerprint) share one pipeline run and one marshalled
// response instead of queuing duplicate work. The key is
// pipeline.Fingerprint — the exact cumulative cache key the staged pipeline
// uses — so two requests collapse precisely when their runs would produce
// byte-identical artifacts.
package serve

import (
	"context"
	"errors"
	"sync"
)

// flight is one in-progress analyze computation; followers wait on done and
// then share body/err.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// flightGroup deduplicates in-flight computations by key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// do returns the response bytes for key, computing them with fn exactly
// once across all concurrent callers. leader reports whether this caller
// ran fn. A follower whose own ctx expires stops waiting and returns the
// context error; a follower whose leader was cancelled (the leader's
// deadline, not the follower's) retries as a fresh flight rather than
// inheriting an interruption that says nothing about its own request.
func (g *flightGroup) do(ctx context.Context, key string, joined func(), fn func() ([]byte, error)) (body []byte, err error, leader bool) {
	for {
		g.mu.Lock()
		if f, ok := g.m[key]; ok {
			g.mu.Unlock()
			if joined != nil {
				joined()
			}
			select {
			case <-f.done:
				if isCancellation(f.err) && ctx.Err() == nil {
					continue
				}
				return f.body, f.err, false
			case <-ctx.Done():
				return nil, ctx.Err(), false
			}
		}
		f := &flight{done: make(chan struct{})}
		g.m[key] = f
		g.mu.Unlock()

		f.body, f.err = fn()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
		return f.body, f.err, true
	}
}

// isCancellation reports whether err describes an interrupted run rather
// than a property of the requested analysis.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
