// Behavioural tests for the serving layer: request validation, queue
// bounds, deadlines, drain, and singleflight — pinned deterministically by
// substituting the analyze/sweep seams so no real pipeline runs.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"needle/internal/core"
	"needle/internal/obs"
	"needle/internal/program"
	"needle/internal/workloads"
)

// doReq runs one request through the full handler stack.
func doReq(s *Server, method, path, body string) *httptest.ResponseRecorder {
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, r)
	return rr
}

func TestAnalyzeRejectsBadRequests(t *testing.T) {
	s := New(Config{Jobs: 1})
	defer s.Close()
	var runs int32
	s.analyze = func(context.Context, *obs.Span, *program.Program, core.Config) (*core.Analysis, error) {
		atomic.AddInt32(&runs, 1)
		return nil, errors.New("must not run")
	}
	cases := []struct {
		name   string
		method string
		body   string
		want   int
	}{
		{"wrong method", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"empty body", http.MethodPost, "", http.StatusBadRequest},
		{"malformed json", http.MethodPost, "{nope", http.StatusBadRequest},
		{"unknown field", http.MethodPost, `{"workload":"164.gzip","bogus":1}`, http.StatusBadRequest},
		{"missing workload", http.MethodPost, `{"n":100}`, http.StatusBadRequest},
		{"trailing data", http.MethodPost, `{"workload":"164.gzip"}{}`, http.StatusBadRequest},
		{"unknown workload", http.MethodPost, `{"workload":"999.nope"}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		rr := doReq(s, tc.method, "/v1/analyze", tc.body)
		if rr.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body %q)", tc.name, rr.Code, tc.want, rr.Body.String())
		}
		var e map[string]string
		if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e["error"] == "" {
			t.Errorf("%s: rejection body is not an error object: %q", tc.name, rr.Body.String())
		}
	}
	if n := atomic.LoadInt32(&runs); n != 0 {
		t.Errorf("rejected requests ran %d analyses", n)
	}
}

func TestSweepRejectsBadRequests(t *testing.T) {
	s := New(Config{Jobs: 1})
	defer s.Close()
	s.sweep = func(context.Context, core.Config, core.ProgressFunc) error {
		return errors.New("must not run")
	}
	if rr := doReq(s, http.MethodGet, "/v1/sweep", ""); rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET sweep: status %d, want 405", rr.Code)
	}
	// The sweep payload has no workload field; a strict decoder rejects it.
	if rr := doReq(s, http.MethodPost, "/v1/sweep", `{"workload":"164.gzip"}`); rr.Code != http.StatusBadRequest {
		t.Errorf("sweep with workload field: status %d, want 400", rr.Code)
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	s := New(Config{Jobs: 1})
	defer s.Close()
	if rr := doReq(s, http.MethodPost, "/v1/workloads", "{}"); rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST workloads: status %d, want 405", rr.Code)
	}
	rr := doReq(s, http.MethodGet, "/v1/workloads", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET workloads: status %d", rr.Code)
	}
	var got []struct {
		Name     string `json:"name"`
		Suite    string `json:"suite"`
		DefaultN int    `json:"defaultN"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("decoding workload list: %v", err)
	}
	ws := workloads.All()
	if len(got) != len(ws) {
		t.Fatalf("listed %d workloads, want %d", len(got), len(ws))
	}
	for i, w := range ws {
		if got[i].Name != w.Name || got[i].Suite != w.Suite || got[i].DefaultN != w.DefaultN {
			t.Errorf("entry %d = %+v, want %s/%s/%d", i, got[i], w.Name, w.Suite, w.DefaultN)
		}
	}
}

// TestQueueOverflowRejectsWith429: with one worker and queue depth one, a
// third concurrent request finds no slot and is rejected immediately.
func TestQueueOverflowRejectsWith429(t *testing.T) {
	s := New(Config{Jobs: 1, QueueDepth: 1})
	defer s.Close()
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.analyze = func(ctx context.Context, _ *obs.Span, _ *program.Program, _ core.Config) (*core.Analysis, error) {
		started <- struct{}{}
		<-release
		return nil, errors.New("stub finished")
	}
	// Distinct n values keep the three requests on distinct fingerprints so
	// the singleflight cannot collapse them into one queue slot.
	codes := make(chan int, 2)
	post := func(n int) {
		rr := doReq(s, http.MethodPost, "/v1/analyze", fmt.Sprintf(`{"workload":"164.gzip","n":%d}`, n))
		codes <- rr.Code
	}
	go post(101) // occupies the worker
	<-started
	go post(102) // occupies the queue slot
	waitUntil(t, func() bool { return len(s.queue) == 1 })

	rr := doReq(s, http.MethodPost, "/v1/analyze", `{"workload":"164.gzip","n":103}`)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429 (body %q)", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	close(release)
	for i := 0; i < 2; i++ {
		if c := <-codes; c != http.StatusInternalServerError {
			t.Errorf("accepted request %d: status %d, want 500 from the stub error", i, c)
		}
	}
}

// TestDeadlineCancelsWith499: a request whose deadline expires mid-run gets
// the 499 client-closed-request status.
func TestDeadlineCancelsWith499(t *testing.T) {
	s := New(Config{Jobs: 1})
	defer s.Close()
	s.analyze = func(ctx context.Context, _ *obs.Span, _ *program.Program, _ core.Config) (*core.Analysis, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	rr := doReq(s, http.MethodPost, "/v1/analyze", `{"workload":"164.gzip","timeoutMs":20}`)
	if rr.Code != statusClientClosedRequest {
		t.Fatalf("expired request: status %d, want %d (body %q)", rr.Code, statusClientClosedRequest, rr.Body.String())
	}
}

// TestServerTimeoutCapsRequestDeadline: the server-wide cap applies even
// when the request asks for no (or a longer) deadline.
func TestServerTimeoutCapsRequestDeadline(t *testing.T) {
	s := New(Config{Jobs: 1, Timeout: 20 * time.Millisecond})
	defer s.Close()
	s.analyze = func(ctx context.Context, _ *obs.Span, _ *program.Program, _ core.Config) (*core.Analysis, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	rr := doReq(s, http.MethodPost, "/v1/analyze", `{"workload":"164.gzip","timeoutMs":60000}`)
	if rr.Code != statusClientClosedRequest {
		t.Fatalf("capped request: status %d, want %d", rr.Code, statusClientClosedRequest)
	}
}

// TestGracefulDrain: Drain flips health to 503 and rejects new work while
// the in-flight request still runs to completion, and Close then settles
// the pool without hanging.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Jobs: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	s.analyze = func(ctx context.Context, _ *obs.Span, _ *program.Program, _ core.Config) (*core.Analysis, error) {
		close(started)
		<-release
		return nil, errors.New("inflight finished")
	}
	if rr := doReq(s, http.MethodGet, "/healthz", ""); rr.Code != http.StatusOK {
		t.Fatalf("healthz before drain: status %d", rr.Code)
	}
	inflight := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		inflight <- doReq(s, http.MethodPost, "/v1/analyze", `{"workload":"164.gzip"}`)
	}()
	<-started
	s.Drain()
	if rr := doReq(s, http.MethodGet, "/healthz", ""); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", rr.Code)
	}
	// The rejected request must use a fingerprint distinct from the
	// in-flight one: an identical request would join its singleflight
	// flight (no new work, so drain does not apply) and wait instead of
	// being rejected.
	if rr := doReq(s, http.MethodPost, "/v1/analyze", `{"workload":"164.gzip","n":999}`); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("POST /v1/analyze while draining: status %d, want 503 (body %q)", rr.Code, rr.Body.String())
	}
	if rr := doReq(s, http.MethodPost, "/v1/sweep", `{}`); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("POST /v1/sweep while draining: status %d, want 503 (body %q)", rr.Code, rr.Body.String())
	}
	close(release)
	rr := <-inflight
	if rr.Code != http.StatusInternalServerError || !strings.Contains(rr.Body.String(), "inflight finished") {
		t.Errorf("in-flight request: status %d body %q, want the stub to have completed", rr.Code, rr.Body.String())
	}
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not settle after drain")
	}
}

// TestSingleflightCollapsesStub: three identical concurrent requests share
// one seam invocation; the leader is held open until both followers have
// joined, so the collapse is deterministic.
func TestSingleflightCollapsesStub(t *testing.T) {
	s := New(Config{Jobs: 2})
	defer s.Close()
	var runs int32
	s.analyze = func(ctx context.Context, _ *obs.Span, _ *program.Program, _ core.Config) (*core.Analysis, error) {
		atomic.AddInt32(&runs, 1)
		waitUntil(t, func() bool { return s.Collapsed() >= 2 })
		return nil, errors.New("shared result")
	}
	var wg sync.WaitGroup
	results := make(chan *httptest.ResponseRecorder, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- doReq(s, http.MethodPost, "/v1/analyze", `{"workload":"164.gzip","n":555}`)
		}()
	}
	wg.Wait()
	close(results)
	for rr := range results {
		if rr.Code != http.StatusInternalServerError || !strings.Contains(rr.Body.String(), "shared result") {
			t.Errorf("collapsed request: status %d body %q", rr.Code, rr.Body.String())
		}
	}
	if n := atomic.LoadInt32(&runs); n != 1 {
		t.Errorf("analyze seam ran %d times, want 1", n)
	}
	if c := s.Collapsed(); c != 2 {
		t.Errorf("Collapsed() = %d, want 2", c)
	}
}

func TestMetricsAndHealthEndpoints(t *testing.T) {
	s := New(Config{Jobs: 1})
	defer s.Close()
	rr := doReq(s, http.MethodGet, "/metrics", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	if rr := doReq(s, http.MethodGet, "/healthz", ""); rr.Code != http.StatusOK || rr.Body.String() != "ok\n" {
		t.Errorf("healthz: status %d body %q", rr.Code, rr.Body.String())
	}
	if rr := doReq(s, http.MethodGet, "/nope", ""); rr.Code != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", rr.Code)
	}
}

// waitUntil polls cond with a generous deadline; the tests that use it only
// need eventual consistency, not timing precision.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Error("condition not reached within deadline")
			return
		}
		time.Sleep(time.Millisecond)
	}
}
