// HTTP endpoint handlers. Payload shapes and status codes are documented
// in docs/SERVICE.md; the summary bytes themselves are pinned by the golden
// files under internal/core/testdata and the serve differential tests.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"needle/internal/core"
	"needle/internal/ir"
	"needle/internal/obs"
	"needle/internal/pipeline"
	"needle/internal/program"
	"needle/internal/vet"
	"needle/internal/workloads"
)

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/v1/vet", s.handleVet)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
}

// analyzeRequest is the POST /v1/analyze payload. Exactly one of Workload
// and Source selects the program.
type analyzeRequest struct {
	// Workload names a built-in kernel to analyze (see GET /v1/workloads).
	Workload string `json:"workload"`
	// Source is inline .nir program text to analyze instead of a built-in
	// workload. It is parsed and verified under the server's limits
	// (unprocessable source → 422, over-limit source → 413) and analyzed
	// byte-identically to `needle -nir <file> -json`.
	Source string `json:"source"`
	// Entry names Source's entry function; empty selects its first.
	Entry string `json:"entry"`
	// MemWords sizes Source's memory image in 64-bit words; 0 selects the
	// loader default (program.DefaultMemWords).
	MemWords int `json:"memWords"`
	// Args are Source's entry-function arguments as literals (int64, or
	// "f:"-prefixed float64), exactly as `needle -args` takes them.
	Args []string `json:"args"`
	// N overrides the problem size; 0 keeps the workload default. It is a
	// convenience alias for config.N and wins when both are set. Workload
	// requests only.
	N int `json:"n"`
	// Config is a full pipeline configuration; absent fields are filled
	// from the paper's defaults exactly as the CLI fills them.
	Config *core.Config `json:"config"`
	// TimeoutMs tightens (never extends) the server's per-request deadline.
	TimeoutMs int64 `json:"timeoutMs"`
}

// sweepRequest is the POST /v1/sweep payload; an empty body is a default
// sweep.
type sweepRequest struct {
	N         int          `json:"n"`
	Config    *core.Config `json:"config"`
	TimeoutMs int64        `json:"timeoutMs"`
}

// decodeBody strictly decodes a JSON request body into dst, bounded by the
// server's body cap. An empty body is accepted when allowEmpty is set (dst
// is left zero). An over-cap body surfaces as *http.MaxBytesError in the
// chain, which requestStatus maps to 413.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any, allowEmpty bool) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return fmt.Errorf("reading request body: %w", err)
	}
	if len(body) == 0 {
		if allowEmpty {
			return nil
		}
		return errors.New("empty request body")
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return errors.New("trailing data after request object")
	}
	return nil
}

// resolveConfig builds the effective pipeline config from a request, the
// same way cmd/needle does (explicit config, then the n override).
func resolveConfig(cfg *core.Config, n int) core.Config {
	out := core.DefaultConfig()
	if cfg != nil {
		out = *cfg
	}
	if n != 0 {
		out.N = n
	}
	return out
}

// requestContext applies the effective deadline: the server cap, tightened
// by the request's own timeoutMs.
func (s *Server) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if timeoutMs > 0 {
		t := time.Duration(timeoutMs) * time.Millisecond
		if d == 0 || t < d {
			d = t
		}
	}
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// requestStatus maps an ingestion error to its HTTP status: over-cap
// payloads and over-limit programs are 413, structurally invalid programs
// are 422, everything else is a plain 400.
func requestStatus(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig), errors.Is(err, program.ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, program.ErrInvalid):
		return http.StatusUnprocessableEntity
	}
	var verr *ir.VerifyError
	if errors.As(err, &verr) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

// writeError emits a JSON error object with the status code err maps to.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, errQueueFull):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, errDraining):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "5")
	case isCancellation(err):
		// 499 (nginx convention): the request's deadline or client
		// connection ended the run before it produced a response.
		status = statusClientClosedRequest
		obsCancelled.Add(1)
	}
	writeJSONError(w, status, err.Error())
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck // response write
}

// handleAnalyze serves POST /v1/analyze: one program — a built-in workload
// or inline .nir source — one config, the exact bytes `needle -json` would
// print for the same input. With ?trace=1 the response is instead a
// request-scoped Chrome trace of the run.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req analyzeRequest
	if err := s.decodeBody(w, r, &req, false); err != nil {
		writeJSONError(w, requestStatus(err), err.Error())
		return
	}
	p, cfg, errStatus, err := s.resolveProgram(&req)
	if err != nil {
		writeJSONError(w, errStatus, err.Error())
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	if wantTrace(r) {
		s.handleAnalyzeTrace(w, ctx, p, cfg)
		return
	}

	// Identical concurrent requests collapse onto one pipeline run: the key
	// is the pipeline's own cumulative fingerprint (program content digest
	// included), so two requests share a flight exactly when their runs
	// would be byte-identical — same-named but different-bodied inline
	// programs never collapse onto each other.
	key := pipeline.Fingerprint(p, cfg)
	body, err, _ := s.flights.do(ctx, key,
		func() { s.collapsed.Add(1); obsCollapsed.Add(1) },
		func() ([]byte, error) { return s.analyzeBytes(ctx, nil, p, cfg) })
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Needle-Schema-Version", fmt.Sprint(core.SummarySchemaVersion))
	w.Write(body) //nolint:errcheck // response write
}

// handleVet serves POST /v1/vet: the static-analysis diagnostic suite over
// one program — a built-in workload or inline .nir source, selected exactly
// like /v1/analyze and under the same ingestion limits — without executing
// it. The response is the vet report, byte-identical to
// `needle -vet -json` for the same program (plus the trailing newline
// Println emits). Diagnostics, including error severity, are the payload:
// the HTTP status is 200 whenever the program ingests.
func (s *Server) handleVet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req analyzeRequest
	if err := s.decodeBody(w, r, &req, false); err != nil {
		writeJSONError(w, requestStatus(err), err.Error())
		return
	}
	p, _, errStatus, err := s.resolveProgram(&req)
	if err != nil {
		writeJSONError(w, errStatus, err.Error())
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	body, err := s.vetBytes(ctx, p)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Needle-Vet-Schema-Version", fmt.Sprint(vet.ReportSchemaVersion))
	w.Write(body) //nolint:errcheck // response write
}

// vetBytes queues one vet run and marshals its report into the
// CLI-identical payload. Vet is pure static analysis — cheap relative to a
// pipeline run — but it still parses and walks untrusted programs, so it
// occupies a pool slot like every other unit of work.
func (s *Server) vetBytes(ctx context.Context, p *program.Program) ([]byte, error) {
	var (
		body []byte
		rerr error
		ran  bool
	)
	j := &job{ctx: ctx, done: make(chan struct{})}
	j.run = func() {
		ran = true
		rep := vet.Check(nil, p)
		out, err := vet.MarshalReport(rep)
		if err != nil {
			rerr = err
			return
		}
		body = append(out, '\n')
	}
	if err := s.submit(j); err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		if !ran {
			return nil, ctx.Err()
		}
		if rerr == nil {
			obsVetOK.Add(1)
		}
		return body, rerr
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// resolveProgram turns an analyze request into the program to run and the
// effective config, applying the server's ingestion limits. On failure it
// returns the HTTP status the error maps to.
func (s *Server) resolveProgram(req *analyzeRequest) (*program.Program, core.Config, int, error) {
	cfg := resolveConfig(req.Config, req.N)
	switch {
	case req.Workload != "" && req.Source != "":
		return nil, cfg, http.StatusBadRequest, errors.New("workload and source are mutually exclusive")
	case req.Workload != "":
		if req.Entry != "" || req.MemWords != 0 || len(req.Args) != 0 {
			return nil, cfg, http.StatusBadRequest, errors.New("entry/memWords/args apply only to source requests")
		}
		wl := workloads.ByName(req.Workload)
		if wl == nil {
			return nil, cfg, http.StatusNotFound, fmt.Errorf("unknown workload %q (see /v1/workloads)", req.Workload)
		}
		p, err := wl.Program(cfg.N)
		if err != nil {
			return nil, cfg, http.StatusInternalServerError, err
		}
		return p, cfg, 0, nil
	case req.Source != "":
		// Untrusted source must not run unbounded: the effective config is
		// materialized so the step cap can be enforced — an explicit bound
		// over the cap is rejected, an absent (unlimited) one is clamped.
		// The cap changes only how a runaway program fails, never the
		// summary bytes of one that terminates, so CLI/serve byte-identity
		// holds for every program that completes under it.
		cfg = cfg.WithDefaults()
		if max := s.cfg.Limits.MaxSteps; max > 0 {
			if cfg.Sim.MaxSteps > max {
				return nil, cfg, http.StatusUnprocessableEntity,
					fmt.Errorf("config.sim maxSteps %d exceeds the server cap %d", cfg.Sim.MaxSteps, max)
			}
			if cfg.Sim.MaxSteps == 0 {
				cfg.Sim.MaxSteps = max
			}
		}
		p, err := program.Load(req.Source, program.LoadOptions{
			Entry:    req.Entry,
			MemWords: req.MemWords,
			Args:     req.Args,
			Limits:   s.cfg.Limits,
		})
		if err != nil {
			return nil, cfg, requestStatus(err), err
		}
		return p, cfg, 0, nil
	default:
		return nil, cfg, http.StatusBadRequest, errors.New("missing workload name or source")
	}
}

// handleAnalyzeTrace runs the analysis under a private observability
// registry and responds with its Chrome trace-event timeline. Trace
// requests bypass the singleflight (a collapsed request would download
// another tenant's spans) but still occupy a pool slot.
func (s *Server) handleAnalyzeTrace(w http.ResponseWriter, ctx context.Context, p *program.Program, cfg core.Config) {
	reg := &obs.Registry{}
	reg.Enable()
	root := reg.StartOnTrack("request: analyze "+p.Name, 0)
	_, err := s.analyzeBytes(ctx, root, p, cfg)
	root.End()
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", "needle-trace-"+p.Name+".json"))
	reg.WriteChromeTrace(w) //nolint:errcheck // response write
}

// wantTrace reports whether the request asked for a per-request Chrome
// trace instead of the summary payload.
func wantTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// analyzeBytes queues one pipeline run and marshals its summary into the
// CLI-identical payload (MarshalSummaries plus the trailing newline
// `needle -json`'s Println emits).
func (s *Server) analyzeBytes(ctx context.Context, parent *obs.Span, p *program.Program, cfg core.Config) ([]byte, error) {
	var (
		body []byte
		rerr error
		ran  bool
	)
	j := &job{ctx: ctx, done: make(chan struct{})}
	j.run = func() {
		ran = true
		a, err := s.analyze(ctx, parent, p, cfg)
		if err != nil {
			rerr = err
			return
		}
		out, err := core.MarshalSummaries([]*core.Analysis{a})
		if err != nil {
			rerr = err
			return
		}
		body = append(out, '\n')
	}
	if err := s.submit(j); err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		if !ran {
			// The worker skipped the job because the context had already
			// ended while it sat in the queue.
			return nil, ctx.Err()
		}
		if rerr == nil {
			obsAnalyzeOK.Add(1)
		}
		return body, rerr
	case <-ctx.Done():
		// The job keeps its queue slot; the worker will skip it (or the
		// pipeline will stop between stages) now that the context is done.
		return nil, ctx.Err()
	}
}

// handleSweep serves POST /v1/sweep: the full whole-program sweep over
// every registered workload, streamed as NDJSON — one compact summary
// object per workload in completion order, flushed as each analysis
// finishes. A failed workload contributes an {"workload", "error"} line
// instead; a sweep-level failure terminates the stream with an {"error"}
// line.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req sweepRequest
	if err := s.decodeBody(w, r, &req, true); err != nil {
		writeJSONError(w, requestStatus(err), err.Error())
		return
	}
	cfg := resolveConfig(req.Config, req.N)
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	// The sweep occupies a single pool slot and parallelizes internally
	// with the server's worker count, so the queue bounds concurrent
	// sweeps exactly like single analyses.
	var (
		wmu   sync.Mutex
		wrote bool
		werr  error
		ran   bool
	)
	flusher, _ := w.(http.Flusher)
	writeLine := func(v any) {
		line, err := json.Marshal(v)
		if err != nil {
			return
		}
		wmu.Lock()
		defer wmu.Unlock()
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Needle-Schema-Version", fmt.Sprint(core.SummarySchemaVersion))
			wrote = true
		}
		w.Write(append(line, '\n')) //nolint:errcheck // streaming response
		if flusher != nil {
			flusher.Flush()
		}
	}
	j := &job{ctx: ctx, done: make(chan struct{})}
	j.run = func() {
		ran = true
		obsSweeps.Add(1)
		werr = s.sweep(ctx, cfg, func(p core.Progress) {
			if p.Err != nil {
				writeLine(map[string]string{"workload": p.Workload.Name, "error": p.Err.Error()})
				return
			}
			writeLine(core.Summarize(p.Analysis))
		})
	}
	if err := s.submit(j); err != nil {
		s.writeError(w, err)
		return
	}
	// Unlike analyze, the handler must outlive the job unconditionally:
	// the worker goroutine writes to the ResponseWriter, which dies when
	// this handler returns. Cancellation still ends the job promptly — the
	// sweep stops between stages and workloads once ctx is done.
	<-j.done
	if !ran {
		s.writeError(w, ctx.Err())
		return
	}
	if werr != nil {
		wmu.Lock()
		headersSent := wrote
		wmu.Unlock()
		if !headersSent {
			s.writeError(w, werr)
			return
		}
		writeLine(map[string]string{"error": werr.Error()})
		if isCancellation(werr) {
			obsCancelled.Add(1)
		}
	}
}

// handleWorkloads serves GET /v1/workloads: the registered workload set.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	type workloadInfo struct {
		Name     string `json:"name"`
		Suite    string `json:"suite"`
		Notes    string `json:"notes"`
		FP       bool   `json:"fp"`
		DefaultN int    `json:"defaultN"`
	}
	ws := workloads.All()
	out := make([]workloadInfo, len(ws))
	for i, wl := range ws {
		out[i] = workloadInfo{Name: wl.Name, Suite: wl.Suite, Notes: wl.Notes, FP: wl.FP, DefaultN: wl.DefaultN}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // response write
}

// handleHealthz serves GET /healthz: 200 while serving, 503 once draining
// so load balancers eject the instance ahead of shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n") //nolint:errcheck // response write
		return
	}
	io.WriteString(w, "ok\n") //nolint:errcheck // response write
}

// handleMetrics serves GET /metrics: the obs registry's text dump (every
// counter plus per-span-name aggregates) followed by the shared store's
// per-stage cache behaviour.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	obs.WriteMetrics(w) //nolint:errcheck // response write
	stats := s.store.Stats()
	for _, name := range pipeline.StageNames() {
		cs, ok := stats[name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "cache %s hits=%d misses=%d disk_hits=%d evictions=%d\n",
			name, cs.Hits, cs.Misses, cs.DiskHits, cs.Evictions)
	}
}
