// Package serve is needled's HTTP serving layer: a long-running analysis
// service over a shared warm pipeline.Store, fronted by the consolidated
// core.Analyzer API. It turns the one-shot CLI flow into a multi-tenant
// system — many workloads, many configs, repeated queries over shared
// cached artifacts — with the serving concerns a daemon needs:
//
//   - a bounded worker pool with a request queue (429 on overflow),
//   - per-request deadlines propagated as context into the pipeline,
//   - singleflight collapsing of identical (program, config-fingerprint)
//     requests onto one pipeline run,
//   - inline-source ingestion: /v1/analyze accepts untrusted .nir text,
//     loaded through program.Load under configurable size/memory/step caps
//     (413/422 on violation) so hostile input cannot wedge the pool,
//   - request-scoped observability spans with an optional per-request
//     Chrome-trace download,
//   - graceful drain (in-flight and queued requests finish; new ones get
//     503) for SIGTERM handling.
//
// Endpoints, payloads, and deployment flags are documented in
// docs/SERVICE.md. The /v1/analyze response is byte-identical to
// `needle -json -workload <name>` for the same workload and config — the
// differential tests pin that contract.
package serve

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"sync"
	"time"

	"needle/internal/core"
	"needle/internal/obs"
	"needle/internal/pipeline"
	"needle/internal/program"
)

// Observability counters (no-ops until obs.Enable; needled always enables
// the Default registry so /metrics reflects them).
var (
	obsRequests      = obs.GetCounter("serve.requests")
	obsAnalyzeOK     = obs.GetCounter("serve.analyze.ok")
	obsVetOK         = obs.GetCounter("serve.vet.ok")
	obsSweeps        = obs.GetCounter("serve.sweeps")
	obsCollapsed     = obs.GetCounter("serve.singleflight.collapsed")
	obsRejectedQueue = obs.GetCounter("serve.rejected.queue")
	obsRejectedDrain = obs.GetCounter("serve.rejected.drain")
	obsCancelled     = obs.GetCounter("serve.cancelled")
)

// statusClientClosedRequest is the nginx-convention status for a request
// the client abandoned (disconnect or deadline) before a response existed.
const statusClientClosedRequest = 499

var (
	// errQueueFull rejects a submission when every worker is busy and the
	// queue is at depth; the client should back off and retry (429).
	errQueueFull = errors.New("serve: analysis queue full")
	// errDraining rejects new work while the server drains toward shutdown
	// (503).
	errDraining = errors.New("serve: server is draining")
)

// Config parameterizes a Server.
type Config struct {
	// Jobs is the analysis worker-pool size: the number of pipeline runs
	// (or sweeps) in flight at once. <= 0 selects GOMAXPROCS.
	Jobs int
	// QueueDepth bounds how many accepted requests may wait for a worker
	// beyond those executing; a full queue rejects with 429. <= 0 selects
	// 64.
	QueueDepth int
	// Timeout caps every request's deadline; a request's own timeoutMs may
	// tighten but never extend it. Zero means no server-imposed deadline.
	Timeout time.Duration
	// Store is the shared warm artifact store every request runs against
	// (a pipeline.DiskStore to persist across restarts). Nil selects a
	// process-lifetime in-memory pipeline.Cache.
	Store pipeline.Store
	// MaxBodyBytes caps every request body (413 beyond it). <= 0 selects
	// 1 MiB.
	MaxBodyBytes int64
	// Limits bounds inline-source analysis requests (the "source" field of
	// /v1/analyze): source size, static instruction count, memory image,
	// and interpreter steps. The zero value selects DefaultLimits — a
	// service facing untrusted input is never accidentally unbounded.
	Limits program.Limits
}

// DefaultLimits is the inline-source request bound the server applies when
// Config.Limits is zero: generous enough for any of the built-in kernels'
// printed forms, small enough that a hostile request cannot exhaust the
// process.
func DefaultLimits() program.Limits {
	return program.Limits{
		MaxSourceBytes: 512 << 10,   // 512 KiB of .nir text
		MaxInstrs:      1 << 16,     // 65536 static instructions
		MaxMemWords:    1 << 22,     // 4M words (32 MiB image)
		MaxSteps:       100_000_000, // interpreter step bound
	}
}

// Server is the HTTP handler plus its worker pool. Create with New, serve
// with net/http, and on shutdown call Drain (stop accepting), then let
// http.Server.Shutdown settle in-flight handlers, then Close (stop the
// workers).
type Server struct {
	cfg   Config
	store pipeline.Store
	mux   *http.ServeMux

	queue chan *job
	wg    sync.WaitGroup

	qmu      sync.RWMutex // guards queue close vs. submit
	closed   bool
	draining bool

	flights   flightGroup
	collapsed counter

	// analyze and sweep are the pipeline entry points; tests substitute
	// stubs to pin queue/deadline/drain behaviour without running real
	// analyses.
	analyze func(ctx context.Context, parent *obs.Span, p *program.Program, cfg core.Config) (*core.Analysis, error)
	sweep   func(ctx context.Context, cfg core.Config, progress core.ProgressFunc) error
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Limits == (program.Limits{}) {
		cfg.Limits = DefaultLimits()
	}
	s := &Server{
		cfg:   cfg,
		store: cfg.Store,
		queue: make(chan *job, cfg.QueueDepth),
	}
	if s.store == nil {
		s.store = pipeline.NewCache()
	}
	s.flights.m = make(map[string]*flight)
	s.analyze = func(ctx context.Context, parent *obs.Span, p *program.Program, cfg core.Config) (*core.Analysis, error) {
		return core.New(core.WithStore(s.store), core.WithObsSpan(parent)).Run(ctx, p, cfg)
	}
	s.sweep = func(ctx context.Context, cfg core.Config, progress core.ProgressFunc) error {
		_, err := core.New(core.WithStore(s.store), core.WithJobs(s.cfg.Jobs),
			core.WithProgress(progress)).RunAll(ctx, cfg)
		return err
	}
	s.routes()
	for i := 0; i < cfg.Jobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Store returns the shared artifact store requests run against.
func (s *Server) Store() pipeline.Store { return s.store }

// Collapsed returns how many requests were collapsed onto another
// request's pipeline run by the singleflight layer.
func (s *Server) Collapsed() int64 { return s.collapsed.Load() }

// job is one unit of queued work. run executes on a worker unless ctx is
// already done by then; done closes when the job is finished or skipped.
type job struct {
	ctx  context.Context
	run  func()
	done chan struct{}
}

// worker drains the queue until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		// A request that gave up while queued (client gone, deadline past)
		// is skipped, so abandoned work cannot clog the pool.
		if j.ctx.Err() == nil {
			j.run()
		}
		close(j.done)
	}
}

// submit enqueues a job, rejecting with errDraining during drain and
// errQueueFull when the queue is at depth.
func (s *Server) submit(j *job) error {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.draining || s.closed {
		obsRejectedDrain.Add(1)
		return errDraining
	}
	select {
	case s.queue <- j:
		return nil
	default:
		obsRejectedQueue.Add(1)
		return errQueueFull
	}
}

// Drain stops accepting new analysis and sweep requests (they get 503 with
// a Retry-After); already-accepted work, queued included, still completes.
// Health checks start failing so load balancers eject the instance.
func (s *Server) Drain() {
	s.qmu.Lock()
	s.draining = true
	s.qmu.Unlock()
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	return s.draining
}

// Close drains, stops the worker pool, and waits for it to finish the
// remaining queue. Call after the HTTP listener has shut down.
func (s *Server) Close() {
	s.qmu.Lock()
	s.draining = true
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.qmu.Unlock()
	s.wg.Wait()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	obsRequests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// counter is a tiny always-on atomic counter (the obs counters are no-ops
// unless the registry is enabled; the singleflight tests need an
// unconditional count).
type counter struct {
	mu sync.Mutex
	v  int64
}

func (c *counter) Add(n int64) {
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

func (c *counter) Load() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}
