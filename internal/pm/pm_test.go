package pm_test

import (
	"reflect"
	"testing"

	"needle/internal/analysis"
	"needle/internal/ir"
	"needle/internal/irgen"
	"needle/internal/passes"
	"needle/internal/pm"
)

func parse(t testing.TB, src string) *ir.Function {
	t.Helper()
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatalf("ParseFunction: %v", err)
	}
	return f
}

// loopSrc exercises every analysis kind: a loop (back edge, natural loop)
// containing a diamond (branch, control dependence, phi).
const loopSrc = `func @k(i64) {
entry:
  r2 = const.i64 0
  r3 = const.i64 1
  br %head
head:
  r4 = phi.i64 [entry: r2] [latch: r7]
  r5 = cmp.lt r4, r1
  condbr r5, %body, %exit
body:
  r6 = cmp.lt r4, r3
  condbr r6, %latch, %other
other:
  br %latch
latch:
  r7 = add r4, r3
  br %head
exit:
  ret r4
}
`

func TestCacheHitIdentity(t *testing.T) {
	f := parse(t, loopSrc)
	am := pm.NewManager()

	dom1, dom2 := am.Dominators(f), am.Dominators(f)
	if dom1 != dom2 {
		t.Errorf("Dominators returned distinct pointers: %p vs %p", dom1, dom2)
	}
	pdom1, pdom2 := am.PostDominators(f), am.PostDominators(f)
	if pdom1 != pdom2 {
		t.Errorf("PostDominators returned distinct pointers: %p vs %p", pdom1, pdom2)
	}
	lv1, lv2 := am.Liveness(f), am.Liveness(f)
	if lv1 != lv2 {
		t.Errorf("Liveness returned distinct pointers: %p vs %p", lv1, lv2)
	}
	rpo1, rpo2 := am.RPO(f), am.RPO(f)
	if len(rpo1) == 0 || &rpo1[0] != &rpo2[0] {
		t.Errorf("RPO returned distinct slices")
	}
	loops1, loops2 := am.NaturalLoops(f), am.NaturalLoops(f)
	if len(loops1) != 1 || &loops1[0] != &loops2[0] {
		t.Errorf("NaturalLoops returned distinct slices (len %d)", len(loops1))
	}
	cd1, cd2 := am.ControlDependents(f), am.ControlDependents(f)
	if reflect.ValueOf(cd1).Pointer() != reflect.ValueOf(cd2).Pointer() {
		t.Errorf("ControlDependents returned distinct maps")
	}
	db1, db2 := am.DefBlocks(f), am.DefBlocks(f)
	if len(db1) == 0 || &db1[0] != &db2[0] {
		t.Errorf("DefBlocks returned distinct slices")
	}

	st := am.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}

	// Full invalidation forces recomputation.
	am.Invalidate(f)
	if dom3 := am.Dominators(f); dom3 == dom1 {
		t.Errorf("Dominators survived Invalidate")
	}
	if am.Stats().Invalidations == 0 {
		t.Errorf("Invalidate not counted")
	}
}

// TestExecPlanCaching checks the compiled execution plan's cache contract:
// identity on repeated queries, survival only under PreserveAll (an
// instruction rewrite changes the flattened bodies even when the CFG is
// untouched, so PreserveCFG must drop it), and recomputation afterwards.
func TestExecPlanCaching(t *testing.T) {
	f := parse(t, loopSrc)
	am := pm.NewManager()

	p1 := am.ExecPlan(f)
	if !p1.Runnable() {
		t.Fatal("loopSrc should have a runnable plan")
	}
	if p2 := am.ExecPlan(f); p2 != p1 {
		t.Errorf("ExecPlan returned distinct pointers: %p vs %p", p1, p2)
	}

	am.InvalidateExcept(f, pm.PreserveAll())
	if p2 := am.ExecPlan(f); p2 != p1 {
		t.Errorf("PreserveAll dropped the execution plan")
	}

	am.InvalidateExcept(f, pm.PreserveCFG())
	if p2 := am.ExecPlan(f); p2 == p1 {
		t.Errorf("PreserveCFG kept a stale execution plan")
	}

	p1 = am.ExecPlan(f)
	am.Invalidate(f)
	if p2 := am.ExecPlan(f); p2 == p1 {
		t.Errorf("Invalidate kept a stale execution plan")
	}
}

func TestInvalidateExcept(t *testing.T) {
	f := parse(t, loopSrc)
	am := pm.NewManager()
	dom := am.Dominators(f)
	lv := am.Liveness(f)

	am.InvalidateExcept(f, pm.PreserveCFG())
	if got := am.Dominators(f); got != dom {
		t.Errorf("PreserveCFG dropped the dominator tree")
	}
	if got := am.Liveness(f); got == lv {
		t.Errorf("PreserveCFG kept liveness")
	}

	// PreserveNone behaves like a full invalidation.
	dom = am.Dominators(f)
	am.InvalidateExcept(f, pm.PreserveNone)
	if got := am.Dominators(f); got == dom {
		t.Errorf("PreserveNone kept the dominator tree")
	}
}

// invalidationCase pairs one transform with IR it changes and the
// expectation for the dominator tree after the run.
type invalidationCase struct {
	name     string
	src      string
	pass     func() pm.Pass
	keepsDom bool
}

func invalidationCases() []invalidationCase {
	return []invalidationCase{
		{
			name: "constfold",
			src: `func @cf(i64) {
entry:
  r2 = const.i64 2
  r3 = const.i64 3
  r4 = add r2, r3
  r5 = add r4, r1
  ret r5
}
`,
			pass:     passes.ConstFoldPass,
			keepsDom: true,
		},
		{
			name: "cse",
			src: `func @cse(i64) {
entry:
  r2 = add r1, r1
  r3 = add r1, r1
  r4 = add r2, r3
  ret r4
}
`,
			pass:     passes.CSEPass,
			keepsDom: true,
		},
		{
			name: "dce",
			src: `func @dce(i64) {
entry:
  r2 = add r1, r1
  r3 = mul r1, r1
  ret r2
}
`,
			pass:     passes.DCEPass,
			keepsDom: true,
		},
		{
			name: "simplifycfg",
			src: `func @sc(i64) {
entry:
  br %mid
mid:
  r2 = add r1, r1
  br %tail
tail:
  ret r2
}
`,
			pass:     passes.SimplifyCFGPass,
			keepsDom: false,
		},
	}
}

func TestPassInvalidation(t *testing.T) {
	for _, tc := range invalidationCases() {
		t.Run(tc.name, func(t *testing.T) {
			f := parse(t, tc.src)
			am := pm.NewManager()
			dom := am.Dominators(f)
			lv := am.Liveness(f)

			out, err := pm.NewPassManager(am).Add(tc.pass()).Run(f)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if out != f {
				t.Fatalf("in-place pass returned a different function")
			}
			if got := am.Liveness(f); got == lv {
				t.Errorf("%s: liveness not invalidated", tc.name)
			}
			if got := am.Dominators(f); tc.keepsDom && got != dom {
				t.Errorf("%s: dominator tree dropped despite CFG preservation", tc.name)
			} else if !tc.keepsDom && got == dom {
				t.Errorf("%s: stale dominator tree survived a CFG change", tc.name)
			}
		})
	}
}

func TestInlinePassInvalidatesOldFunction(t *testing.T) {
	m, err := ir.Parse(`func @inc(i64) {
entry:
  r2 = const.i64 1
  r3 = add r1, r2
  ret r3
}

func @main(i64) {
entry:
  r2 = call.i64 @inc r1
  r3 = call.i64 @inc r2
  ret r3
}
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	f := m.Func("main")
	am := pm.NewManager()
	am.Dominators(f) // warm the old function's cache

	out, err := pm.NewPassManager(am).Add(passes.InlinePass(0)).Run(f)
	if err != nil {
		t.Fatalf("inline: %v", err)
	}
	if out == f {
		t.Fatalf("inlining a function with calls should rebuild it")
	}
	if am.Stats().Invalidations == 0 {
		t.Errorf("old function's cache not invalidated after inlining")
	}
	if err := analysis.VerifySSA(out); err != nil {
		t.Fatalf("inlined output invalid: %v", err)
	}
	// The new function's analyses are computed on demand and cached.
	if am.Dominators(out) != am.Dominators(out) {
		t.Errorf("no cache identity for the inlined function")
	}
}

// TestLivenessMatchesFreshOnRandomCFGs is the irgen property test: across
// hundreds of random structured CFGs, the manager's cached liveness must
// agree exactly with a freshly computed one, before and after partial
// invalidation and transform runs.
func TestLivenessMatchesFreshOnRandomCFGs(t *testing.T) {
	const seeds = 300
	cfg := irgen.DefaultConfig()
	for seed := int64(0); seed < seeds; seed++ {
		p := irgen.Generate(seed, cfg)
		am := pm.NewManager()

		got := am.Liveness(p.F)
		want := analysis.ComputeLiveness(p.F)
		if !reflect.DeepEqual(got.In, want.In) || !reflect.DeepEqual(got.Out, want.Out) {
			t.Fatalf("seed %d: cached liveness disagrees with fresh computation", seed)
		}
		if again := am.Liveness(p.F); again != got {
			t.Fatalf("seed %d: cache identity lost", seed)
		}

		// Run the cleanup pipeline through the manager, then re-check: the
		// invalidation discipline must leave no stale liveness behind.
		if _, err := pm.NewPassManager(am).Add(passes.CleanupPasses()...).RunFixedPoint(p.F); err != nil {
			t.Fatalf("seed %d: cleanup: %v", seed, err)
		}
		got = am.Liveness(p.F)
		want = analysis.ComputeLiveness(p.F)
		if !reflect.DeepEqual(got.In, want.In) || !reflect.DeepEqual(got.Out, want.Out) {
			t.Fatalf("seed %d: stale liveness after transforms", seed)
		}
	}
}
