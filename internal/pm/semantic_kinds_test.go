package pm_test

import (
	"testing"

	"needle/internal/pm"
)

// TestSemanticKindsCachedAndInvalidated: the three semantic analyses are
// cached like every other kind, survive a PreserveAll round, and drop on
// any invalidation short of it (they read instructions, so PreserveCFG —
// what const-fold/DCE/CSE declare — must not keep them).
func TestSemanticKindsCachedAndInvalidated(t *testing.T) {
	f := parse(t, loopSrc)
	am := pm.NewManager()

	s1, r1, d1 := am.SCCP(f), am.Ranges(f), am.MemDep(f)
	if s2 := am.SCCP(f); s2 != s1 {
		t.Fatal("SCCP not cached")
	}
	if r2 := am.Ranges(f); r2 != r1 {
		t.Fatal("Ranges not cached")
	}
	if d2 := am.MemDep(f); d2 != d1 {
		t.Fatal("MemDep not cached")
	}

	am.InvalidateExcept(f, pm.PreserveAll())
	if am.SCCP(f) != s1 || am.Ranges(f) != r1 || am.MemDep(f) != d1 {
		t.Fatal("PreserveAll dropped a semantic analysis")
	}

	am.InvalidateExcept(f, pm.PreserveCFG())
	if am.SCCP(f) == s1 {
		t.Fatal("PreserveCFG must not keep SCCP (it reads instructions)")
	}
	if am.Ranges(f) == r1 {
		t.Fatal("PreserveCFG must not keep Ranges")
	}
	if am.MemDep(f) == d1 {
		t.Fatal("PreserveCFG must not keep MemDep")
	}
}

func TestSemanticKindStrings(t *testing.T) {
	for k, want := range map[pm.Kind]string{
		pm.KindSCCP:   "sccp",
		pm.KindRanges: "ranges",
		pm.KindMemDep: "memdep",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
