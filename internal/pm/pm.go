// Package pm provides pass and analysis management for the Needle pipeline,
// mirroring the PassManager/AnalysisManager idiom of LLVM-derived systems:
// a per-function Manager lazily computes and caches the dataflow analyses
// the middle layers consume (reverse postorder, dominators, post-dominators,
// liveness, def-use, natural loops, control dependence), and a PassManager
// runs IR transforms through it so each transform declares which analyses it
// preserves. Consumers share one Manager per pipeline run instead of
// recomputing the same facts for the same function many times.
//
// The Manager is safe for concurrent use; the experiment harness runs one
// Manager per workload analysis, so contention is nil in practice.
package pm

import (
	"fmt"
	"sync"

	"needle/internal/analysis"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/obs"
)

// Observability counters (no-ops until obs.Enable): analysis cache
// behaviour across every Manager in the process.
var (
	obsHits   = obs.GetCounter("pm.cache.hits")
	obsMisses = obs.GetCounter("pm.cache.misses")
	obsInval  = obs.GetCounter("pm.cache.invalidations")
)

// Kind identifies one cached analysis.
type Kind uint8

const (
	// KindRPO is the reverse-postorder block sequence.
	KindRPO Kind = iota
	// KindDominators is the dominator tree.
	KindDominators
	// KindPostDominators is the post-dominator tree.
	KindPostDominators
	// KindLiveness is per-block live-in/live-out register sets.
	KindLiveness
	// KindDefUse is the register -> defining block map.
	KindDefUse
	// KindLoops is the natural-loop nest.
	KindLoops
	// KindControlDeps is the branch -> control-dependent-blocks map.
	KindControlDeps
	// KindExecPlan is the interpreter's compiled execution plan.
	KindExecPlan
	// KindSCCP is the sparse-conditional-constant-propagation fixpoint.
	KindSCCP
	// KindRanges is the per-register value-range (interval) analysis.
	KindRanges
	// KindMemDep is the base+offset memory-dependence classifier.
	KindMemDep

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindRPO:
		return "rpo"
	case KindDominators:
		return "dom"
	case KindPostDominators:
		return "postdom"
	case KindLiveness:
		return "liveness"
	case KindDefUse:
		return "defuse"
	case KindLoops:
		return "loops"
	case KindControlDeps:
		return "ctrldeps"
	case KindExecPlan:
		return "execplan"
	case KindSCCP:
		return "sccp"
	case KindRanges:
		return "ranges"
	case KindMemDep:
		return "memdep"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Preserved is the set of analyses a transform keeps valid when it reports
// a change — the PreservedAnalyses idiom. The zero value preserves nothing.
type Preserved uint32

// PreserveNone invalidates every cached analysis of the transformed function.
const PreserveNone Preserved = 0

// PreserveAll keeps every cached analysis (the transform did not touch the
// function in any way an analysis can observe).
func PreserveAll() Preserved { return Preserved(1<<numKinds - 1) }

// PreserveCFG keeps the analyses that depend only on the block graph: RPO,
// dominators, post-dominators, loops, and control dependence. Transforms
// that rewrite instructions without adding, removing, or re-wiring blocks
// (constant folding, DCE, CSE) preserve these.
func PreserveCFG() Preserved {
	return PreserveNone.Plus(KindRPO, KindDominators, KindPostDominators, KindLoops, KindControlDeps)
}

// Plus returns p with the given kinds additionally preserved.
func (p Preserved) Plus(kinds ...Kind) Preserved {
	for _, k := range kinds {
		p |= 1 << k
	}
	return p
}

// Has reports whether kind k is preserved.
func (p Preserved) Has(k Kind) bool { return p&(1<<k) != 0 }

// Stats counts cache behaviour, for tests and the perf harness.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// funcCache holds the cached analyses of one function.
type funcCache struct {
	rpo      []*ir.Block
	dom      *analysis.DomTree
	pdom     *analysis.PostDomTree
	live     *analysis.Liveness
	defBlock []*ir.Block
	loops    []*analysis.Loop
	ctrlDeps map[*ir.Block][]*ir.Block
	plan     *interp.Plan
	sccp     *analysis.SCCP
	ranges   *analysis.Ranges
	memdep   *analysis.MemDep
	// present tracks which fields are valid (a computed-but-empty result is
	// still a cache hit).
	present [numKinds]bool
}

// Manager lazily computes and caches per-function analyses with explicit
// invalidation. The zero value is not usable; construct with NewManager.
type Manager struct {
	mu    sync.Mutex
	cache map[*ir.Function]*funcCache
	stats Stats
	span  *obs.Span
}

// NewManager returns an empty analysis manager.
func NewManager() *Manager {
	return &Manager{cache: make(map[*ir.Function]*funcCache)}
}

// Ensure returns am, or a fresh Manager when am is nil. Entry points accept
// nil managers so one-shot callers need not construct one; pipelines that
// analyze the same function repeatedly should share a single Manager.
func Ensure(am *Manager) *Manager {
	if am == nil {
		return NewManager()
	}
	return am
}

// SetSpan attaches an observability span to the manager. Pipeline layers
// that hold the per-run manager but not the run's root span (the pass
// manager, trace capture) parent their own spans under it; a nil span (the
// default) makes their spans roots, which the disabled registry drops.
func (m *Manager) SetSpan(s *obs.Span) {
	m.mu.Lock()
	m.span = s
	m.mu.Unlock()
}

// Span returns the span attached with SetSpan, or nil.
func (m *Manager) Span() *obs.Span {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.span
}

// Stats returns a snapshot of cache behaviour.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

func (m *Manager) entry(f *ir.Function) *funcCache {
	c := m.cache[f]
	if c == nil {
		c = &funcCache{}
		m.cache[f] = c
	}
	return c
}

func (m *Manager) hit(c *funcCache, k Kind) bool {
	if c.present[k] {
		m.stats.Hits++
		obsHits.Add(1)
		return true
	}
	m.stats.Misses++
	obsMisses.Add(1)
	c.present[k] = true
	return false
}

// RPO returns the cached reverse postorder of f.
func (m *Manager) RPO(f *ir.Function) []*ir.Block {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rpo(f)
}

func (m *Manager) rpo(f *ir.Function) []*ir.Block {
	c := m.entry(f)
	if !m.hit(c, KindRPO) {
		// The dominator computation produces the RPO as a by-product; reuse
		// it when the tree is already cached.
		if c.present[KindDominators] {
			c.rpo = c.dom.RPO()
		} else {
			c.rpo = analysis.ReversePostorder(f)
		}
	}
	return c.rpo
}

// Dominators returns the cached dominator tree of f.
func (m *Manager) Dominators(f *ir.Function) *analysis.DomTree {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dom(f)
}

func (m *Manager) dom(f *ir.Function) *analysis.DomTree {
	c := m.entry(f)
	if !m.hit(c, KindDominators) {
		c.dom = analysis.Dominators(f)
	}
	return c.dom
}

// PostDominators returns the cached post-dominator tree of f.
func (m *Manager) PostDominators(f *ir.Function) *analysis.PostDomTree {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pdom(f)
}

func (m *Manager) pdom(f *ir.Function) *analysis.PostDomTree {
	c := m.entry(f)
	if !m.hit(c, KindPostDominators) {
		c.pdom = analysis.PostDominators(f)
	}
	return c.pdom
}

// Liveness returns the cached live-in/live-out sets of f.
func (m *Manager) Liveness(f *ir.Function) *analysis.Liveness {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.entry(f)
	if !m.hit(c, KindLiveness) {
		c.live = analysis.ComputeLiveness(f)
	}
	return c.live
}

// DefBlocks returns the cached register -> defining block map of f.
func (m *Manager) DefBlocks(f *ir.Function) []*ir.Block {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.entry(f)
	if !m.hit(c, KindDefUse) {
		c.defBlock = analysis.DefBlock(f)
	}
	return c.defBlock
}

// NaturalLoops returns the cached natural-loop nest of f.
func (m *Manager) NaturalLoops(f *ir.Function) []*analysis.Loop {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.entry(f)
	if !m.hit(c, KindLoops) {
		c.loops = analysis.NaturalLoops(f, m.dom(f))
	}
	return c.loops
}

// ControlDependents returns the cached branch -> control-dependent-blocks
// map of f (Ferrante/Ottenstein/Warren over the post-dominator tree).
func (m *Manager) ControlDependents(f *ir.Function) map[*ir.Block][]*ir.Block {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.entry(f)
	if !m.hit(c, KindControlDeps) {
		c.ctrlDeps = analysis.ControlDependents(f, m.pdom(f))
	}
	return c.ctrlDeps
}

// ExecPlan returns the cached compiled execution plan of f (interp.BuildPlan).
// Plans flatten per-block instruction lists as well as the block graph, so
// they are invalidated by anything short of PreserveAll — including
// PreserveCFG, since an instruction rewrite changes the planned bodies.
func (m *Manager) ExecPlan(f *ir.Function) *interp.Plan {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.entry(f)
	if !m.hit(c, KindExecPlan) {
		c.plan = interp.BuildPlan(f)
	}
	return c.plan
}

// SCCP returns the cached sparse-conditional-constant-propagation fixpoint
// of f: per-register lattice values plus block/edge executability.
func (m *Manager) SCCP(f *ir.Function) *analysis.SCCP {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.entry(f)
	if !m.hit(c, KindSCCP) {
		c.sccp = analysis.ComputeSCCP(f)
	}
	return c.sccp
}

// Ranges returns the cached value-range analysis of f (interval lattice
// with widening at loop headers).
func (m *Manager) Ranges(f *ir.Function) *analysis.Ranges {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.entry(f)
	if !m.hit(c, KindRanges) {
		c.ranges = analysis.ComputeRanges(f, m.dom(f))
	}
	return c.ranges
}

// MemDep returns the cached base+offset memory-dependence classifier of f.
func (m *Manager) MemDep(f *ir.Function) *analysis.MemDep {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.entry(f)
	if !m.hit(c, KindMemDep) {
		c.memdep = analysis.ComputeMemDep(f)
	}
	return c.memdep
}

// BackEdges returns the dominance back edges of f. The walk is linear in the
// CFG and derived from the cached dominator tree, so it is recomputed per
// call rather than cached.
func (m *Manager) BackEdges(f *ir.Function) []analysis.Edge {
	return analysis.BackEdges(f, m.Dominators(f))
}

// Invalidate drops every cached analysis of f.
func (m *Manager) Invalidate(f *ir.Function) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.cache[f]; ok {
		delete(m.cache, f)
		m.stats.Invalidations++
		obsInval.Add(1)
	}
}

// InvalidateExcept drops the cached analyses of f that are not in the
// preserved set. InvalidateExcept(f, PreserveNone) equals Invalidate(f).
func (m *Manager) InvalidateExcept(f *ir.Function, p Preserved) {
	if p == PreserveAll() {
		return
	}
	if p == PreserveNone {
		m.Invalidate(f)
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cache[f]
	if !ok {
		return
	}
	dropped := false
	for k := Kind(0); k < numKinds; k++ {
		if p.Has(k) || !c.present[k] {
			continue
		}
		c.present[k] = false
		dropped = true
		switch k {
		case KindRPO:
			c.rpo = nil
		case KindDominators:
			c.dom = nil
		case KindPostDominators:
			c.pdom = nil
		case KindLiveness:
			c.live = nil
		case KindDefUse:
			c.defBlock = nil
		case KindLoops:
			c.loops = nil
		case KindControlDeps:
			c.ctrlDeps = nil
		case KindExecPlan:
			c.plan = nil
		case KindSCCP:
			c.sccp = nil
		case KindRanges:
			c.ranges = nil
		case KindMemDep:
			c.memdep = nil
		}
	}
	if dropped {
		m.stats.Invalidations++
		obsInval.Add(1)
	}
}

// Reset drops every cached analysis of every function.
func (m *Manager) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.cache) > 0 {
		m.stats.Invalidations += uint64(len(m.cache))
		obsInval.Add(int64(len(m.cache)))
	}
	m.cache = make(map[*ir.Function]*funcCache)
}

// Pass is one IR transform registered with a PassManager. Run returns the
// resulting function — f itself for in-place transforms, a fresh function
// for rebuilding transforms like inlining — plus whether anything changed.
// Preserves declares which analyses of the *result* stay valid when Run
// reports a change; it is ignored when nothing changed.
type Pass struct {
	Name      string
	Run       func(f *ir.Function) (*ir.Function, bool, error)
	Preserves Preserved
}

// PassManager runs a sequence of passes through an analysis Manager,
// invalidating non-preserved analyses after every transform that changes
// the IR.
type PassManager struct {
	am     *Manager
	passes []Pass
}

// NewPassManager returns a pass manager bound to am (a fresh Manager when
// am is nil).
func NewPassManager(am *Manager) *PassManager {
	return &PassManager{am: Ensure(am)}
}

// Manager returns the underlying analysis manager.
func (p *PassManager) Manager() *Manager { return p.am }

// Add appends passes to the pipeline and returns p for chaining.
func (p *PassManager) Add(passes ...Pass) *PassManager {
	p.passes = append(p.passes, passes...)
	return p
}

// Run executes the pipeline once in order and returns the resulting
// function. Cached analyses are invalidated per each changing pass's
// Preserves declaration; a pass that returns a new function drops the old
// function's cache entirely.
func (p *PassManager) Run(f *ir.Function) (*ir.Function, error) {
	out, _, err := p.runOnce(f)
	return out, err
}

// RunFixedPoint executes the pipeline repeatedly until a full round reports
// no change, then returns the resulting function.
func (p *PassManager) RunFixedPoint(f *ir.Function) (*ir.Function, error) {
	for {
		out, changed, err := p.runOnce(f)
		if err != nil {
			return out, err
		}
		f = out
		if !changed {
			return f, nil
		}
	}
}

func (p *PassManager) runOnce(f *ir.Function) (*ir.Function, bool, error) {
	changed := false
	for _, ps := range p.passes {
		sp := p.am.Span().Child("pass " + ps.Name)
		out, ch, err := ps.Run(f)
		sp.SetArg("function", f.Name).SetArg("changed", ch).End()
		if err != nil {
			return f, changed, fmt.Errorf("pm: pass %q on %s: %w", ps.Name, f.Name, err)
		}
		if out == nil {
			out = f
		}
		if ch {
			changed = true
			if out != f {
				p.am.Invalidate(f)
			}
			p.am.InvalidateExcept(out, ps.Preserves)
		}
		f = out
	}
	return f, changed, nil
}
