// Package mem models the memory hierarchy of Table V: a private L1 data
// cache in front of a shared NUCA L2. The uncore accelerator bypasses the
// host L1 and talks to the L2 directly, exactly as the paper's CGRA does.
// The model is a latency/energy model: it tracks hit/miss state for the L1
// and charges fixed latencies per level, which is all the evaluation needs.
package mem

import "math/bits"

// Config describes the hierarchy. Addresses are word (8-byte) indices.
type Config struct {
	L1Words     int   // total L1 capacity in words (64 KiB = 8192 words)
	L1Ways      int   // associativity
	L1LineWords int   // line size in words
	L1Latency   int64 // hit latency, cycles
	L2Latency   int64 // L2 hit latency, cycles (NUCA average)
	MemLatency  int64 // DRAM latency, cycles

	// L2Words bounds the L2 capacity; accesses beyond it go to memory.
	// Zero means "always hits in L2", the common configuration because the
	// paper's working sets fit in the LLC.
	L2Words int
}

// DefaultConfig returns the Table V hierarchy: 64K 4-way L1 with 2-cycle
// hits and a 20-cycle shared L2.
func DefaultConfig() Config {
	return Config{
		L1Words:     8192,
		L1Ways:      4,
		L1LineWords: 8,
		L1Latency:   2,
		L2Latency:   20,
		MemLatency:  200,
	}
}

// Stats accumulates access counts.
type Stats struct {
	Accesses int64
	L1Hits   int64
	L1Misses int64
}

// Cache is a set-associative L1 model with LRU replacement backed by a
// fixed-latency L2.
type Cache struct {
	cfg  Config
	sets [][]line // [set][way]
	// lineShift/setMask implement the line and set computation by shift and
	// mask when line size and set count are powers of two (the default
	// configuration); lineShift < 0 selects the general divide/modulo path.
	lineShift int
	setMask   int64
	Stats
}

type line struct {
	tag   int64
	valid bool
	lru   int64 // last-use tick
}

// New creates a cache for the given configuration. Zero-valued fields fall
// back to DefaultConfig entries.
func New(cfg Config) *Cache {
	def := DefaultConfig()
	if cfg.L1Words <= 0 {
		cfg.L1Words = def.L1Words
	}
	if cfg.L1Ways <= 0 {
		cfg.L1Ways = def.L1Ways
	}
	if cfg.L1LineWords <= 0 {
		cfg.L1LineWords = def.L1LineWords
	}
	if cfg.L1Latency <= 0 {
		cfg.L1Latency = def.L1Latency
	}
	if cfg.L2Latency <= 0 {
		cfg.L2Latency = def.L2Latency
	}
	if cfg.MemLatency <= 0 {
		cfg.MemLatency = def.MemLatency
	}
	nLines := cfg.L1Words / cfg.L1LineWords
	nSets := nLines / cfg.L1Ways
	if nSets < 1 {
		nSets = 1
	}
	sets := make([][]line, nSets)
	for i := range sets {
		sets[i] = make([]line, cfg.L1Ways)
	}
	c := &Cache{cfg: cfg, sets: sets, lineShift: -1}
	if isPow2(cfg.L1LineWords) && isPow2(nSets) {
		c.lineShift = bits.TrailingZeros(uint(cfg.L1LineWords))
		c.setMask = int64(nSets - 1)
	}
	return c
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Config returns the active configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access simulates one L1 access to a word address and returns its latency.
// Writes allocate like reads (write-allocate, write-back; dirty eviction
// latency is folded into the miss penalty).
func (c *Cache) Access(addr int64) int64 {
	c.Accesses++
	var lineAddr int64
	var set int
	if c.lineShift >= 0 && addr >= 0 {
		// Shift/mask equals the divide/modulo below for non-negative
		// addresses when line size and set count are powers of two.
		lineAddr = addr >> uint(c.lineShift)
		set = int(lineAddr & c.setMask)
	} else {
		lineAddr = addr / int64(c.cfg.L1LineWords)
		set = int(lineAddr % int64(len(c.sets)))
		if set < 0 {
			set = -set
		}
	}
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == lineAddr {
			c.L1Hits++
			ways[i].lru = c.Accesses
			return c.cfg.L1Latency
		}
	}
	// Miss: fill via L2 (or memory if the address is outside the modeled
	// L2 span), evicting LRU.
	c.L1Misses++
	victim := 0
	for i := 1; i < len(ways); i++ {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	ways[victim] = line{tag: lineAddr, valid: true, lru: c.Accesses}
	if c.cfg.L2Words > 0 && addr >= int64(c.cfg.L2Words) {
		return c.cfg.L1Latency + c.cfg.MemLatency
	}
	return c.cfg.L1Latency + c.cfg.L2Latency
}

// UncoreAccess returns the latency of an accelerator-side access, which
// bypasses the host L1 and pays the shared-L2 latency.
func (c *Cache) UncoreAccess(addr int64) int64 {
	if c.cfg.L2Words > 0 && addr >= int64(c.cfg.L2Words) {
		return c.cfg.MemLatency
	}
	return c.cfg.L2Latency
}

// HitRate returns the L1 hit rate over all accesses so far.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.L1Hits) / float64(c.Accesses)
}

// Reset clears stats and contents.
func (c *Cache) Reset() {
	c.Stats = Stats{}
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
}
