package mem

import "testing"

func TestHitAfterMiss(t *testing.T) {
	c := New(Config{})
	lat1 := c.Access(100)
	lat2 := c.Access(100)
	if lat1 != 2+20 {
		t.Fatalf("cold miss latency = %d, want 22", lat1)
	}
	if lat2 != 2 {
		t.Fatalf("hit latency = %d, want 2", lat2)
	}
	if c.L1Hits != 1 || c.L1Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestSpatialLocalityWithinLine(t *testing.T) {
	c := New(Config{})
	c.Access(0)
	for a := int64(1); a < 8; a++ { // same 8-word line
		if lat := c.Access(a); lat != 2 {
			t.Fatalf("addr %d latency = %d, want hit", a, lat)
		}
	}
	if lat := c.Access(8); lat == 2 {
		t.Fatal("next line should miss")
	}
}

func TestLRUEviction(t *testing.T) {
	// Tiny cache: 4 lines of 1 word, 2 ways -> 2 sets.
	c := New(Config{L1Words: 4, L1Ways: 2, L1LineWords: 1})
	c.Access(0) // set 0
	c.Access(2) // set 0
	c.Access(0) // refresh 0
	c.Access(4) // set 0: evicts 2 (LRU)
	if lat := c.Access(0); lat != 2 {
		t.Fatalf("0 should still hit, got %d", lat)
	}
	if lat := c.Access(2); lat == 2 {
		t.Fatal("2 should have been evicted")
	}
}

func TestUncoreAccessBypassesL1(t *testing.T) {
	c := New(Config{})
	if got := c.UncoreAccess(123); got != 20 {
		t.Fatalf("uncore latency = %d, want 20", got)
	}
	// Uncore accesses must not touch L1 stats.
	if c.Accesses != 0 {
		t.Fatal("uncore access polluted L1 stats")
	}
}

func TestL2CapacitySpillsToMemory(t *testing.T) {
	c := New(Config{L2Words: 1000})
	if lat := c.Access(5000); lat != 2+200 {
		t.Fatalf("beyond-L2 miss latency = %d, want 202", lat)
	}
	if lat := c.UncoreAccess(5000); lat != 200 {
		t.Fatalf("beyond-L2 uncore latency = %d, want 200", lat)
	}
}

func TestHitRateAndReset(t *testing.T) {
	c := New(Config{})
	c.Access(0)
	c.Access(0)
	c.Access(0)
	if hr := c.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %v, want 2/3", hr)
	}
	c.Reset()
	if c.Accesses != 0 || c.HitRate() != 0 {
		t.Fatal("reset failed")
	}
	if lat := c.Access(0); lat == 2 {
		t.Fatal("contents must be cleared by Reset")
	}
}

func TestNegativeAddressDoesNotPanic(t *testing.T) {
	c := New(Config{})
	_ = c.Access(-17)
}
