// Package passes provides the IR transformations the Needle pipeline runs
// before profiling: aggressive call inlining — the paper's analyses operate
// on "the fully inlined hottest function" (Section II-A), which is what
// reveals the predication and path statistics prior work misses — plus the
// standard cleanups (constant folding, dead-code elimination, CFG
// simplification) that keep frames small for the accelerator.
package passes

import (
	"fmt"
	"math"

	"needle/internal/ir"
	"needle/internal/pm"
)

// InlineAll clones f with every call (transitively) inlined, up to maxDepth
// nested levels. Functions without calls are returned unchanged. Recursive
// call chains exceeding maxDepth are an error: Needle's offload regions
// cannot contain calls.
func InlineAll(f *ir.Function, maxDepth int) (*ir.Function, error) {
	if maxDepth <= 0 {
		maxDepth = 8
	}
	if !hasCalls(f) {
		return f, nil
	}
	cur := f
	for depth := 0; ; depth++ {
		if depth >= maxDepth {
			return nil, fmt.Errorf("passes: %s still has calls after %d inlining rounds (recursion?)", f.Name, maxDepth)
		}
		next, changed, err := inlineOnce(cur)
		if err != nil {
			return nil, err
		}
		cur = next
		if !changed {
			return cur, nil
		}
	}
}

func hasCalls(f *ir.Function) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				return true
			}
		}
	}
	return false
}

// inlineOnce inlines every direct call site of f (one level) into a fresh
// function.
func inlineOnce(f *ir.Function) (*ir.Function, bool, error) {
	out := &ir.Function{
		Name:    f.Name,
		Params:  append([]ir.Type(nil), f.Params...),
		RegType: append([]ir.Type(nil), f.RegType...),
	}
	newReg := func(t ir.Type) ir.Reg {
		out.RegType = append(out.RegType, t)
		return ir.Reg(len(out.RegType) - 1)
	}

	// Clone the skeleton: every original block maps to a block in out.
	blockMap := make(map[*ir.Block]*ir.Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &ir.Block{Name: b.Name}
		blockMap[b] = nb
		out.Blocks = append(out.Blocks, nb)
	}

	changed := false
	uniq := 0
	// tailMap records, for each cloned caller block, the block holding its
	// terminator after call-site splitting; phi incomings are retargeted to
	// these tails below.
	tailMap := make(map[*ir.Block]*ir.Block, len(f.Blocks))
	for _, b := range f.Blocks {
		cur := blockMap[b]
		for _, in := range b.Instrs {
			if in.Op != ir.OpCall {
				cur.Instrs = append(cur.Instrs, cloneInstr(in, blockMap))
				continue
			}
			changed = true
			uniq++
			callee := in.Callee
			prefix := fmt.Sprintf("%s.in%d.", callee.Name, uniq)

			// Map callee registers into fresh registers of out; parameters
			// map directly to the call arguments.
			regMap := make([]ir.Reg, len(callee.RegType))
			for pi := 0; pi < callee.NumParams(); pi++ {
				regMap[callee.Param(pi)] = in.Args[pi]
			}
			for r := callee.NumParams() + 1; r < len(callee.RegType); r++ {
				regMap[r] = newReg(callee.RegType[r])
			}

			// Clone callee blocks.
			calleeMap := make(map[*ir.Block]*ir.Block, len(callee.Blocks))
			for _, cb := range callee.Blocks {
				nb := &ir.Block{Name: prefix + cb.Name}
				calleeMap[cb] = nb
				out.Blocks = append(out.Blocks, nb)
			}
			// Continuation block receives the rest of the caller block.
			cont := &ir.Block{Name: prefix + "cont"}
			out.Blocks = append(out.Blocks, cont)

			// Jump from the current position into the callee entry.
			cur.Instrs = append(cur.Instrs, &ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{calleeMap[callee.Entry()]}})

			// Clone callee bodies; rets become branches to cont feeding a phi.
			type retSite struct {
				from *ir.Block
				val  ir.Reg
			}
			var rets []retSite
			for _, cb := range callee.Blocks {
				nb := calleeMap[cb]
				for _, ci := range cb.Instrs {
					if ci.Op == ir.OpRet {
						rets = append(rets, retSite{nb, regMap[ci.Args[0]]})
						nb.Instrs = append(nb.Instrs, &ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{cont}})
						continue
					}
					ni := &ir.Instr{Op: ci.Op, Type: ci.Type, Imm: ci.Imm, Callee: ci.Callee}
					if ci.Op.HasDest() {
						ni.Dst = regMap[ci.Dst]
					}
					for _, a := range ci.Args {
						ni.Args = append(ni.Args, regMap[a])
					}
					for _, t := range ci.Blocks {
						ni.Blocks = append(ni.Blocks, calleeMap[t])
					}
					nb.Instrs = append(nb.Instrs, ni)
				}
			}

			// The call's destination becomes a phi over the return sites (or
			// a copy when there is exactly one).
			if len(rets) == 1 {
				cont.Instrs = append(cont.Instrs, &ir.Instr{
					Op: ir.OpCopy, Type: in.Type, Dst: in.Dst, Args: []ir.Reg{rets[0].val},
				})
			} else {
				phi := &ir.Instr{Op: ir.OpPhi, Type: in.Type, Dst: in.Dst}
				for _, rs := range rets {
					phi.Args = append(phi.Args, rs.val)
					phi.Blocks = append(phi.Blocks, rs.from)
				}
				cont.Instrs = append(cont.Instrs, phi)
			}
			// Subsequent caller instructions continue in cont...
			cur = cont
		}
		// ...and phi incomings that named the original block must now name
		// the block that ends with its terminator. Fix in a post-pass below
		// using tailMap.
		tailMap[blockMap[b]] = cur
	}

	// Retarget phi incoming blocks: an incoming edge from original block B
	// now arrives from B's tail (the last continuation block).
	for _, b := range out.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpPhi {
				continue
			}
			for i, from := range in.Blocks {
				if tail, ok := tailMap[from]; ok && tail != from {
					in.Blocks[i] = tail
				}
			}
		}
	}
	out.Finish()
	if err := ir.Verify(out); err != nil {
		return nil, false, fmt.Errorf("passes: inlining %s produced invalid IR: %w", f.Name, err)
	}
	return out, changed, nil
}

func cloneInstr(in *ir.Instr, blockMap map[*ir.Block]*ir.Block) *ir.Instr {
	ni := &ir.Instr{Op: in.Op, Type: in.Type, Dst: in.Dst, Imm: in.Imm, Callee: in.Callee}
	ni.Args = append(ni.Args, in.Args...)
	for _, b := range in.Blocks {
		ni.Blocks = append(ni.Blocks, blockMap[b])
	}
	return ni
}

// DeadCodeElim removes instructions whose results are never used and that
// have no side effects (stores, calls, and terminators are kept; so are
// div/rem, which can trap, and loads, which can fault out of bounds). It
// mutates f in place and returns the number of instructions removed.
func DeadCodeElim(f *ir.Function) int {
	used := make([]bool, len(f.RegType))
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.Uses(func(r ir.Reg) { used[r] = true })
		}
	}
	removed := 0
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				dead := in.Op.HasDest() && in.Op != ir.OpCall && in.Op != ir.OpLoad &&
					in.Op != ir.OpDiv && in.Op != ir.OpRem && !used[in.Dst]
				if dead {
					removed++
					changed = true
					// Operand uses may now be dead too; recompute next round.
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = append([]*ir.Instr(nil), kept...)
		}
		if changed {
			for i := range used {
				used[i] = false
			}
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					in.Uses(func(r ir.Reg) { used[r] = true })
				}
			}
		}
	}
	f.Finish()
	return removed
}

// ConstFold evaluates instructions whose operands are all constants,
// rewriting them into OpConst. It mutates f in place and returns the number
// of folded instructions. Division by a zero constant is left untouched
// (the interpreter reports it at run time).
func ConstFold(f *ir.Function) int {
	konst := make(map[ir.Reg]uint64)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpConst {
				konst[in.Dst] = uint64(in.Imm)
			}
		}
	}
	folded := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !foldable(in.Op) {
				continue
			}
			vals := make([]uint64, len(in.Args))
			all := true
			for i, a := range in.Args {
				v, ok := konst[a]
				if !ok {
					all = false
					break
				}
				vals[i] = v
			}
			if !all {
				continue
			}
			v, ok := evalConst(in.Op, vals)
			if !ok {
				continue
			}
			in.Op = ir.OpConst
			in.Args = nil
			in.Imm = int64(v)
			konst[in.Dst] = v
			folded++
		}
	}
	return folded
}

func foldable(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE,
		ir.OpCmpGT, ir.OpCmpGE, ir.OpFAdd, ir.OpFSub, ir.OpFMul,
		ir.OpSIToFP, ir.OpCopy:
		return true
	}
	return false
}

func evalConst(op ir.Op, v []uint64) (uint64, bool) {
	b := func(x bool) uint64 {
		if x {
			return 1
		}
		return 0
	}
	switch op {
	case ir.OpAdd:
		return uint64(int64(v[0]) + int64(v[1])), true
	case ir.OpSub:
		return uint64(int64(v[0]) - int64(v[1])), true
	case ir.OpMul:
		return uint64(int64(v[0]) * int64(v[1])), true
	case ir.OpAnd:
		return v[0] & v[1], true
	case ir.OpOr:
		return v[0] | v[1], true
	case ir.OpXor:
		return v[0] ^ v[1], true
	case ir.OpShl:
		return uint64(int64(v[0]) << (v[1] & 63)), true
	case ir.OpShr:
		return uint64(int64(v[0]) >> (v[1] & 63)), true
	case ir.OpCmpEQ:
		return b(int64(v[0]) == int64(v[1])), true
	case ir.OpCmpNE:
		return b(int64(v[0]) != int64(v[1])), true
	case ir.OpCmpLT:
		return b(int64(v[0]) < int64(v[1])), true
	case ir.OpCmpLE:
		return b(int64(v[0]) <= int64(v[1])), true
	case ir.OpCmpGT:
		return b(int64(v[0]) > int64(v[1])), true
	case ir.OpCmpGE:
		return b(int64(v[0]) >= int64(v[1])), true
	case ir.OpFAdd:
		return math.Float64bits(math.Float64frombits(v[0]) + math.Float64frombits(v[1])), true
	case ir.OpFSub:
		return math.Float64bits(math.Float64frombits(v[0]) - math.Float64frombits(v[1])), true
	case ir.OpFMul:
		return math.Float64bits(math.Float64frombits(v[0]) * math.Float64frombits(v[1])), true
	case ir.OpSIToFP:
		return math.Float64bits(float64(int64(v[0]))), true
	case ir.OpCopy:
		return v[0], true
	}
	return 0, false
}

// SimplifyCFG merges straight-line block chains: a block whose single
// successor has it as its single predecessor absorbs that successor
// (provided the successor carries no phis). It also drops unreachable
// blocks. Returns the number of blocks eliminated.
func SimplifyCFG(f *ir.Function) int {
	removedTotal := 0
	for {
		f.Finish()
		removed := 0

		// Drop unreachable blocks.
		reach := map[*ir.Block]bool{}
		var stack []*ir.Block
		if e := f.Entry(); e != nil {
			stack = append(stack, e)
			reach[e] = true
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range b.Succs() {
				if !reach[s] {
					reach[s] = true
					stack = append(stack, s)
				}
			}
		}
		var kept []*ir.Block
		for _, b := range f.Blocks {
			if reach[b] {
				kept = append(kept, b)
			} else {
				removed++
				// Phi edges from dropped blocks must disappear too.
				for _, s := range b.Succs() {
					for _, phi := range s.Phis() {
						for i := 0; i < len(phi.Blocks); i++ {
							if phi.Blocks[i] == b {
								phi.Blocks = append(phi.Blocks[:i], phi.Blocks[i+1:]...)
								phi.Args = append(phi.Args[:i], phi.Args[i+1:]...)
								i--
							}
						}
					}
				}
			}
		}
		f.Blocks = kept
		f.Finish()

		// Merge b -> s where b's only successor is s and s's only
		// predecessor is b.
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			s := t.Blocks[0]
			if s == b || len(s.Preds) != 1 || len(s.Phis()) > 0 || s == f.Entry() {
				continue
			}
			// Absorb s.
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], s.Instrs...)
			// Phi incomings naming s must now name b.
			for _, nxt := range s.Succs() {
				for _, phi := range nxt.Phis() {
					for i, from := range phi.Blocks {
						if from == s {
							phi.Blocks[i] = b
						}
					}
				}
			}
			var kept2 []*ir.Block
			for _, blk := range f.Blocks {
				if blk != s {
					kept2 = append(kept2, blk)
				}
			}
			f.Blocks = kept2
			removed++
			break // CFG changed; restart scan
		}

		removedTotal += removed
		if removed == 0 {
			return removedTotal
		}
	}
}

// InlinePass wraps InlineAll as a managed pass. Inlining rebuilds the
// function, so nothing of the old function's analyses carries over.
func InlinePass(maxDepth int) pm.Pass {
	return pm.Pass{
		Name: "inline",
		Run: func(f *ir.Function) (*ir.Function, bool, error) {
			out, err := InlineAll(f, maxDepth)
			if err != nil {
				return f, false, err
			}
			return out, out != f, nil
		},
		Preserves: pm.PreserveNone,
	}
}

// ConstFoldPass wraps ConstFold. Folding rewrites instructions in place
// without touching the block graph or def locations, so every CFG-shape
// analysis and the def-use map stay valid.
func ConstFoldPass() pm.Pass {
	return pm.Pass{
		Name: "constfold",
		Run: func(f *ir.Function) (*ir.Function, bool, error) {
			return f, ConstFold(f) > 0, nil
		},
		Preserves: pm.PreserveCFG().Plus(pm.KindDefUse),
	}
}

// CSEPass wraps LocalCSE. Eliminating duplicates removes instructions
// (invalidating liveness and def-use) but never blocks.
func CSEPass() pm.Pass {
	return pm.Pass{
		Name: "cse",
		Run: func(f *ir.Function) (*ir.Function, bool, error) {
			return f, LocalCSE(f) > 0, nil
		},
		Preserves: pm.PreserveCFG(),
	}
}

// DCEPass wraps DeadCodeElim. Like CSE, it removes instructions but keeps
// the block graph intact.
func DCEPass() pm.Pass {
	return pm.Pass{
		Name: "dce",
		Run: func(f *ir.Function) (*ir.Function, bool, error) {
			return f, DeadCodeElim(f) > 0, nil
		},
		Preserves: pm.PreserveCFG(),
	}
}

// SimplifyCFGPass wraps SimplifyCFG, which merges and drops blocks and so
// preserves nothing.
func SimplifyCFGPass() pm.Pass {
	return pm.Pass{
		Name: "simplifycfg",
		Run: func(f *ir.Function) (*ir.Function, bool, error) {
			return f, SimplifyCFG(f) > 0, nil
		},
		Preserves: pm.PreserveNone,
	}
}

// CleanupPasses returns the standard cleanup pipeline in canonical order:
// constant folding, local CSE, DCE, and CFG simplification.
func CleanupPasses() []pm.Pass {
	return []pm.Pass{ConstFoldPass(), CSEPass(), DCEPass(), SimplifyCFGPass()}
}

// Optimize runs the standard cleanup pipeline to a fixed point through a
// pass manager bound to am (nil for a one-shot manager), so cached analyses
// of f are invalidated exactly as each transform declares.
func Optimize(am *pm.Manager, f *ir.Function) {
	mgr := pm.NewPassManager(am).Add(CleanupPasses()...)
	// The cleanup passes mutate in place and cannot fail.
	if _, err := mgr.RunFixedPoint(f); err != nil {
		panic(fmt.Sprintf("passes: cleanup pipeline failed: %v", err))
	}
}

// LocalCSE performs per-block common-subexpression elimination: pure
// instructions (no loads, stores, calls, or phis) computing the same
// (opcode, operands, immediate) as an earlier instruction in the same block
// are removed and their uses rewritten to the earlier result. Because the
// canonical definition precedes the duplicate in the same block, dominance
// of every rewritten use is preserved. Returns the number of instructions
// eliminated.
func LocalCSE(f *ir.Function) int {
	type key struct {
		op   ir.Op
		typ  ir.Type
		imm  int64
		a    [3]ir.Reg
		argc int
	}
	pure := func(op ir.Op) bool {
		switch op {
		case ir.OpLoad, ir.OpStore, ir.OpCall, ir.OpPhi,
			ir.OpBr, ir.OpCondBr, ir.OpRet:
			return false
		case ir.OpDiv, ir.OpRem:
			return false // can trap; keep execution counts identical
		}
		return true
	}

	alias := make(map[ir.Reg]ir.Reg)
	resolve := func(r ir.Reg) ir.Reg {
		for {
			n, ok := alias[r]
			if !ok {
				return r
			}
			r = n
		}
	}

	removed := 0
	for _, b := range f.Blocks {
		seen := make(map[key]ir.Reg)
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			// Rewrite operands through the alias map first.
			for i, a := range in.Args {
				in.Args[i] = resolve(a)
			}
			if !pure(in.Op) || !in.Op.HasDest() || len(in.Args) > 3 {
				kept = append(kept, in)
				continue
			}
			k := key{op: in.Op, typ: in.Type, imm: in.Imm, argc: len(in.Args)}
			copy(k.a[:], in.Args)
			if canon, ok := seen[k]; ok {
				alias[in.Dst] = canon
				removed++
				continue
			}
			seen[k] = in.Dst
			kept = append(kept, in)
		}
		b.Instrs = append([]*ir.Instr(nil), kept...)
	}
	if removed > 0 {
		// Rewrite any remaining uses (later blocks) through the alias map.
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for i, a := range in.Args {
					in.Args[i] = resolve(a)
				}
			}
		}
	}
	f.Finish()
	return removed
}
