package passes_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"needle/internal/analysis"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/irgen"
	"needle/internal/passes"
	"needle/internal/pm"
	"needle/internal/program"
	"needle/internal/workloads"
)

func parseFn(t testing.TB, src string) *ir.Function {
	t.Helper()
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatalf("ParseFunction: %v", err)
	}
	return f
}

// optimize runs the -O pipeline (the exact passes the pipeline's Opt stage
// uses) to a fixed point on a clone of f and verifies the result.
func optimize(t testing.TB, f *ir.Function) *ir.Function {
	t.Helper()
	clone := ir.CloneFunction(f)
	mgr := pm.NewPassManager(nil).Add(passes.SCCPPasses()...)
	out, err := mgr.RunFixedPoint(clone)
	if err != nil {
		t.Fatalf("SCCP pipeline: %v", err)
	}
	if err := analysis.VerifySSA(out); err != nil {
		t.Fatalf("optimized SSA invalid: %v\n%s", err, ir.Print(out))
	}
	return out
}

func TestSCCPFoldRemovesProvablyUntakenBranch(t *testing.T) {
	f := parseFn(t, `func @f(i64) {
entry:
  r2 = const.i64 1
  r3 = const.i64 10
  condbr r2, %left, %right
left:
  r4 = add r3, r3
  br %join
right:
  r5 = mul r3, r3
  br %join
join:
  r6 = phi.i64 [left: r4] [right: r5]
  ret r6
}`)
	out := optimize(t, f)
	if len(out.Blocks) != 1 {
		t.Fatalf("optimized to %d blocks, want 1 (everything folds into entry):\n%s",
			len(out.Blocks), ir.Print(out))
	}
	// The phi must have become the constant 20.
	mem := make([]uint64, 8)
	res, err := interp.Run(out, []uint64{0}, mem, nil, 0)
	if err != nil || interp.I(res.Ret) != 20 {
		t.Fatalf("optimized run = %d, %v; want 20", interp.I(res.Ret), err)
	}
}

func TestSCCPFoldKeepsDivideByZeroTrap(t *testing.T) {
	f := parseFn(t, `func @f() {
entry:
  r1 = const.i64 7
  r2 = const.i64 0
  r3 = div r1, r2
  ret r1
}`)
	out := optimize(t, f)
	_, err := interp.Run(out, nil, make([]uint64, 8), nil, 0)
	if !errors.Is(err, interp.ErrDivideByZero) {
		t.Fatalf("optimizer erased the divide-by-zero trap (err = %v):\n%s", err, ir.Print(out))
	}
}

func TestSCCPFoldKeepsOutOfBoundsFault(t *testing.T) {
	f := parseFn(t, `func @f() {
entry:
  r1 = const.i64 5000
  r2 = load.i64 r1
  ret r1
}`)
	out := optimize(t, f)
	_, err := interp.Run(out, nil, make([]uint64, 64), nil, 0)
	if !errors.Is(err, interp.ErrOutOfBounds) {
		t.Fatalf("optimizer erased the out-of-bounds fault (err = %v):\n%s", err, ir.Print(out))
	}
}

func TestSCCPFoldCleansAbandonedPhiIncoming(t *testing.T) {
	// The constant-false branch abandons the entry->join edge, but join
	// stays reachable through body: its phi must lose exactly the entry
	// incoming, a case SimplifyCFG alone does not handle.
	f := parseFn(t, `func @f(i64) {
entry:
  r2 = const.i64 0
  r3 = const.i64 5
  condbr r2, %join, %body
body:
  r4 = add r1, r3
  br %join
join:
  r5 = phi.i64 [entry: r3] [body: r4]
  ret r5
}`)
	out := optimize(t, f)
	mem := make([]uint64, 8)
	res, err := interp.Run(out, []uint64{100}, mem, nil, 0)
	if err != nil || interp.I(res.Ret) != 105 {
		t.Fatalf("optimized run = %d, %v; want 105", interp.I(res.Ret), err)
	}
}

// faultClass collapses an interpreter error to the sentinel the harness
// compares: optimization may change step counts but never which fault (if
// any) a program produces.
func faultClass(err error) error {
	for _, sentinel := range []error{
		interp.ErrDivideByZero, interp.ErrOutOfBounds,
		interp.ErrStepLimit, interp.ErrCallDepth,
	} {
		if errors.Is(err, sentinel) {
			return sentinel
		}
	}
	return err
}

// checkEquivalent interprets f unoptimized and optimized with the same
// inputs and asserts identical return value, fault class, and final
// memory image.
func checkEquivalent(t *testing.T, label string, f *ir.Function, args []uint64, memImage []uint64, maxSteps int64) {
	t.Helper()
	mem1 := append([]uint64(nil), memImage...)
	r1, err1 := interp.Run(f, args, mem1, nil, maxSteps)

	opt := optimize(t, f)
	mem2 := append([]uint64(nil), memImage...)
	r2, err2 := interp.Run(opt, args, mem2, nil, maxSteps)

	if faultClass(err1) != faultClass(err2) {
		t.Fatalf("%s: fault changed under -O: %v vs %v", label, err1, err2)
	}
	if err1 == nil && r1.Ret != r2.Ret {
		t.Fatalf("%s: return changed under -O: %#x vs %#x", label, r1.Ret, r2.Ret)
	}
	for i := range mem1 {
		if mem1[i] != mem2[i] {
			t.Fatalf("%s: memory word %d changed under -O: %#x vs %#x", label, i, mem1[i], mem2[i])
		}
	}
	if err1 == nil && r2.Steps > r1.Steps {
		t.Fatalf("%s: -O made execution longer (%d -> %d steps)", label, r1.Steps, r2.Steps)
	}
}

// TestOptEquivalenceAllWorkloads: the -O pipeline preserves semantics on
// every built-in workload, inlined exactly as the pipeline's inline stage
// would hand it to Opt.
func TestOptEquivalenceAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		p, err := w.Program(200)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		inlined, err := passes.InlineAll(p.F, 8)
		if err != nil {
			t.Fatalf("%s: inline: %v", w.Name, err)
		}
		checkEquivalent(t, w.Name, inlined, p.Args, p.Memory, 1<<28)
	}
}

// TestOptEquivalenceExamples covers every checked-in .nir example,
// including the deliberately faulting ones (the fault must survive -O).
func TestOptEquivalenceExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "nir", "*.nir"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no examples found: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p, err := program.Load(string(src), program.LoadOptions{Args: []string{"f:2.0", "0", "128", "64"}})
		if err != nil {
			// Arg shapes differ per example; fall back to zero args.
			p, err = program.Load(string(src), program.LoadOptions{})
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
		}
		checkEquivalent(t, filepath.Base(file), p.F, p.Args, p.Memory, 1<<24)
	}
}

// TestOptEquivalenceRandomCFGs is the 300-seed property test over the PR 2
// random reducible-CFG generator.
func TestOptEquivalenceRandomCFGs(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		p := irgen.Generate(seed, irgen.Config{})
		checkEquivalent(t, "seed", p.F, []uint64{interp.IBits(11)}, p.NewMem(), 1<<22)
	}
}
