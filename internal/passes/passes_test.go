package passes

import (
	"strings"
	"testing"
	"testing/quick"

	"needle/internal/analysis"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/profile"
)

// moduleSrc: a caller invoking two small helpers, one of them with internal
// control flow (two return sites).
const moduleSrc = `func @absdiff(i64, i64) {
entry:
  r3 = cmp.gt r1, r2
  condbr r3, %gt, %le
gt:
  r4 = sub r1, r2
  ret r4
le:
  r5 = sub r2, r1
  ret r5
}

func @scale(i64) {
entry:
  r2 = const.i64 3
  r3 = mul r1, r2
  ret r3
}

func @main(i64, i64) {
entry:
  r3 = call.i64 @absdiff r1 r2
  r4 = call.i64 @scale r3
  r5 = add r3, r4
  ret r5
}
`

func parseMain(t testing.TB) *ir.Function {
	t.Helper()
	m, err := ir.Parse(moduleSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return m.Func("main")
}

func TestInlineAllPreservesSemantics(t *testing.T) {
	f := parseMain(t)
	inlined, err := InlineAll(f, 0)
	if err != nil {
		t.Fatalf("InlineAll: %v", err)
	}
	if err := analysis.VerifySSA(inlined); err != nil {
		t.Fatalf("inlined SSA invalid: %v", err)
	}
	for _, b := range inlined.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				t.Fatal("calls remain after InlineAll")
			}
		}
	}
	check := func(x, y int16) bool {
		a := []uint64{interp.IBits(int64(x)), interp.IBits(int64(y))}
		r1, err1 := interp.Run(f, a, nil, nil, 0)
		r2, err2 := interp.Run(inlined, a, nil, nil, 0)
		return err1 == nil && err2 == nil && r1.Ret == r2.Ret
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInlineMultipleReturnSitesBecomePhi(t *testing.T) {
	f := parseMain(t)
	inlined, err := InlineAll(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	// absdiff has two return sites -> its continuation must start with a phi.
	found := false
	for _, b := range inlined.Blocks {
		if strings.Contains(b.Name, "absdiff") && strings.HasSuffix(b.Name, "cont") {
			if len(b.Phis()) == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("expected a merge phi at the absdiff continuation")
	}
}

func TestInlineNoCallsIsIdentity(t *testing.T) {
	src := `func @f(i64) {
entry:
  r2 = add r1, r1
  ret r2
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := InlineAll(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g != f {
		t.Fatal("call-free function should be returned unchanged")
	}
}

func TestInlineRejectsRecursion(t *testing.T) {
	// rec(n) = rec(n): direct recursion, assembled by hand because the
	// builder cannot reference a function's own (not yet known) return type.
	f := &ir.Function{Name: "rec", Params: []ir.Type{ir.I64}, RegType: []ir.Type{ir.I64, ir.I64, ir.I64}}
	blk := &ir.Block{Name: "entry"}
	blk.Instrs = []*ir.Instr{
		{Op: ir.OpCall, Type: ir.I64, Dst: 2, Args: []ir.Reg{1}, Callee: f},
		{Op: ir.OpRet, Type: ir.I64, Args: []ir.Reg{2}},
	}
	f.Blocks = []*ir.Block{blk}
	f.Finish()
	if _, err := InlineAll(f, 3); err == nil {
		t.Fatal("expected recursion error")
	}
}

func TestDeadCodeElim(t *testing.T) {
	src := `func @f(i64) {
entry:
  r2 = add r1, r1
  r3 = mul r2, r2
  r4 = xor r1, r2
  ret r2
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	// r3 and r4 are dead.
	if removed := DeadCodeElim(f); removed != 2 {
		t.Fatalf("removed %d, want 2", removed)
	}
	res, err := interp.Run(f, []uint64{interp.IBits(21)}, nil, nil, 0)
	if err != nil || interp.I(res.Ret) != 42 {
		t.Fatalf("semantics broken: %v %v", res, err)
	}
}

func TestDeadCodeElimCascades(t *testing.T) {
	src := `func @f(i64) {
entry:
  r2 = add r1, r1
  r3 = mul r2, r2
  r4 = xor r3, r3
  ret r1
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	// r4 dead -> r3 dead -> r2 dead: the whole chain goes.
	if removed := DeadCodeElim(f); removed != 3 {
		t.Fatalf("removed %d, want 3 (cascade)", removed)
	}
}

func TestDeadCodeKeepsStoresAndLoads(t *testing.T) {
	src := `func @f(i64) {
entry:
  r2 = load.i64 r1
  store.i64 r1, r1
  ret r1
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	if removed := DeadCodeElim(f); removed != 0 {
		t.Fatalf("removed %d memory ops, want 0", removed)
	}
}

func TestConstFold(t *testing.T) {
	src := `func @f() {
entry:
  r1 = const.i64 6
  r2 = const.i64 7
  r3 = mul r1, r2
  r4 = cmp.lt r1, r2
  r5 = add r3, r4
  ret r5
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	if folded := ConstFold(f); folded != 3 {
		t.Fatalf("folded %d, want 3", folded)
	}
	res, err := interp.Run(f, nil, nil, nil, 0)
	if err != nil || interp.I(res.Ret) != 43 {
		t.Fatalf("semantics broken: ret=%d err=%v", interp.I(res.Ret), err)
	}
	// After folding, the mul must literally be a constant instruction.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpMul {
				t.Fatal("mul not folded")
			}
		}
	}
}

func TestConstFoldFloat(t *testing.T) {
	src := `func @f() {
entry:
  r1 = const.f64 1.5
  r2 = const.f64 2.5
  r3 = fmul r1, r2
  ret r3
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	if folded := ConstFold(f); folded != 1 {
		t.Fatalf("folded %d, want 1", folded)
	}
	res, _ := interp.Run(f, nil, nil, nil, 0)
	if interp.F(res.Ret) != 3.75 {
		t.Fatalf("fmul folded wrong: %v", interp.F(res.Ret))
	}
}

func TestSimplifyCFGMergesChains(t *testing.T) {
	src := `func @f(i64) {
entry:
  r2 = add r1, r1
  br %mid
mid:
  r3 = mul r2, r2
  br %end
end:
  ret r3
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	if removed := SimplifyCFG(f); removed != 2 {
		t.Fatalf("removed %d blocks, want 2", removed)
	}
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(f.Blocks))
	}
	res, _ := interp.Run(f, []uint64{interp.IBits(3)}, nil, nil, 0)
	if interp.I(res.Ret) != 36 {
		t.Fatalf("semantics broken: %d", interp.I(res.Ret))
	}
}

func TestSimplifyCFGDropsUnreachable(t *testing.T) {
	src := `func @f(i64) {
entry:
  ret r1
dead:
  r2 = add r1, r1
  br %dead2
dead2:
  ret r2
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	SimplifyCFG(f)
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(f.Blocks))
	}
}

func TestOptimizePipelinePreservesSemantics(t *testing.T) {
	f := parseMain(t)
	inlined, err := InlineAll(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	before, err := interp.Run(inlined, []uint64{interp.IBits(10), interp.IBits(4)}, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(nil, inlined)
	if err := ir.Verify(inlined); err != nil {
		t.Fatalf("optimized IR invalid: %v", err)
	}
	if err := analysis.VerifySSA(inlined); err != nil {
		t.Fatalf("optimized SSA invalid: %v", err)
	}
	after, err := interp.Run(inlined, []uint64{interp.IBits(10), interp.IBits(4)}, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if before.Ret != after.Ret {
		t.Fatalf("Optimize changed the result: %d -> %d", interp.I(before.Ret), interp.I(after.Ret))
	}
	if after.Steps >= before.Steps {
		t.Fatalf("Optimize did not shrink execution: %d -> %d steps", before.Steps, after.Steps)
	}
}

func TestInlinedFunctionProfilesCleanly(t *testing.T) {
	// The real purpose of inlining: Ball-Larus profiling over the whole
	// (formerly inter-procedural) flow. The inlined main must profile and
	// its path count must reflect the absdiff branch.
	f := parseMain(t)
	inlined, err := InlineAll(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Inline-produced CFGs profile after simplification too.
	Optimize(nil, inlined)
	fp, err := profile.CollectFunction(nil, inlined, []uint64{interp.IBits(9), interp.IBits(2)}, nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fp.NumExecutedPaths() < 1 {
		t.Fatal("no paths recorded")
	}
	// The absdiff branch makes (9,2) take the gt path; (2,9) the le path:
	// two distinct Ball-Larus paths across inputs.
	fp2, err := profile.CollectFunction(nil, inlined, []uint64{interp.IBits(2), interp.IBits(9)}, nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fp.HottestPath().ID == fp2.HottestPath().ID {
		t.Fatal("expected different paths for opposite absdiff outcomes")
	}
}

func TestLocalCSE(t *testing.T) {
	src := `func @f(i64, i64) {
entry:
  r3 = add r1, r2
  r4 = add r1, r2
  r5 = mul r3, r4
  r6 = add r1, r2
  r7 = add r5, r6
  ret r7
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := interp.Run(f, []uint64{interp.IBits(6), interp.IBits(7)}, nil, nil, 0)
	if removed := LocalCSE(f); removed != 2 {
		t.Fatalf("removed %d duplicates, want 2", removed)
	}
	if err := analysis.VerifySSA(f); err != nil {
		t.Fatalf("CSE broke SSA: %v", err)
	}
	after, err := interp.Run(f, []uint64{interp.IBits(6), interp.IBits(7)}, nil, nil, 0)
	if err != nil || after.Ret != before.Ret {
		t.Fatalf("CSE changed semantics: %v vs %v (%v)", after.Ret, before.Ret, err)
	}
	if after.Steps >= before.Steps {
		t.Fatal("CSE did not shorten execution")
	}
}

func TestLocalCSEKeepsImpureOps(t *testing.T) {
	src := `func @f(i64) {
entry:
  r2 = load.i64 r1
  r3 = load.i64 r1
  r4 = add r2, r3
  ret r4
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	// Loads may see different values (stores between them elsewhere): never
	// merged by the local pass.
	if removed := LocalCSE(f); removed != 0 {
		t.Fatalf("CSE merged loads: %d", removed)
	}
}

func TestLocalCSECrossBlockUses(t *testing.T) {
	src := `func @f(i64) {
entry:
  r2 = add r1, r1
  r3 = add r1, r1
  r4 = cmp.gt r2, r1
  condbr r4, %a, %b
a:
  r5 = mul r3, r2
  ret r5
b:
  ret r3
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := interp.Run(f, []uint64{interp.IBits(5)}, nil, nil, 0)
	if removed := LocalCSE(f); removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	if err := analysis.VerifySSA(f); err != nil {
		t.Fatalf("cross-block rewrite broke SSA: %v", err)
	}
	after, _ := interp.Run(f, []uint64{interp.IBits(5)}, nil, nil, 0)
	if after.Ret != before.Ret {
		t.Fatal("cross-block CSE changed semantics")
	}
}
