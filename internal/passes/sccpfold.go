// SCCP-driven folding: the transform half of the sparse conditional
// constant propagation analysis. Where the in-place ConstFold only sees
// constants that are syntactically obvious, SCCPFold acts on the full
// optimistic fixpoint — phis that are constant because the other incoming
// edge is provably untaken, and conditional branches whose condition the
// lattice decided.
package passes

import (
	"needle/internal/analysis"
	"needle/internal/ir"
	"needle/internal/pm"
)

// SCCPFold rewrites f using an SCCP fixpoint: every executable
// instruction whose lattice value is a proven constant becomes an OpConst,
// and every conditional branch with a constant condition becomes an
// unconditional branch to the taken target (with the abandoned target's
// phi incomings cleaned up). Blocks SCCP proved non-executable are left
// for SimplifyCFG, which becomes able to drop them once the branches are
// folded. Returns the number of rewrites.
//
// Legality: the lattice evaluator mirrors the interpreter exactly, and a
// potentially-trapping div/rem is never constant (its lattice value is
// bottom unless the divisor is a proven non-zero constant, which cannot
// trap), so no fold can change an observable result or erase a fault.
func SCCPFold(f *ir.Function) int {
	s := analysis.ComputeSCCP(f)
	changed := 0
	for _, b := range f.Blocks {
		if !s.BlockExecutable(b) {
			continue
		}
		hadPhis := false
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				hadPhis = true
			}
			if !in.Op.HasDest() || in.Op == ir.OpConst {
				continue
			}
			v := s.Value(in.Dst)
			if !v.IsConst() {
				continue
			}
			in.Op = ir.OpConst
			in.Type = f.RegType[in.Dst]
			in.Imm = int64(v.Bits)
			in.Args = nil
			in.Blocks = nil
			in.Callee = nil
			changed++
		}
		if hadPhis {
			// Folding a phi into a const breaks the phis-first block layout;
			// stable-partition the remaining phis back to the front. Sound
			// because a const has no operands and only phis move earlier.
			var phis, rest []*ir.Instr
			for _, in := range b.Instrs {
				if in.Op == ir.OpPhi {
					phis = append(phis, in)
				} else {
					rest = append(rest, in)
				}
			}
			if len(phis) > 0 {
				b.Instrs = append(phis, rest...)
			}
		}

		// Fold constant conditional branches.
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		taken, ok := s.ConstBranch(b)
		if !ok {
			continue
		}
		keep, drop := t.Blocks[taken], t.Blocks[1-taken]
		if drop != keep {
			// The abandoned successor loses its edge from b: remove the phi
			// incomings naming b (SimplifyCFG only fixes phis of blocks it
			// drops entirely, and drop may stay reachable another way).
			for _, phi := range drop.Phis() {
				for i := 0; i < len(phi.Blocks); i++ {
					if phi.Blocks[i] == b {
						phi.Blocks = append(phi.Blocks[:i], phi.Blocks[i+1:]...)
						phi.Args = append(phi.Args[:i], phi.Args[i+1:]...)
						i--
					}
				}
			}
		}
		t.Op = ir.OpBr
		t.Args = nil
		t.Blocks = []*ir.Block{keep}
		changed++
	}
	if changed > 0 {
		f.Finish()
	}
	return changed
}

// SCCPFoldPass wraps SCCPFold. Branch folding rewires the CFG, so nothing
// is preserved.
func SCCPFoldPass() pm.Pass {
	return pm.Pass{
		Name: "sccpfold",
		Run: func(f *ir.Function) (*ir.Function, bool, error) {
			return f, SCCPFold(f) > 0, nil
		},
		Preserves: pm.PreserveNone,
	}
}

// SCCPPasses returns the `-O` optimization pipeline the pipeline's Opt
// stage and the equivalence harness share: SCCP folding, dead-code
// elimination, and CFG simplification (which deletes the blocks the folded
// branches made unreachable). Run to a fixed point.
func SCCPPasses() []pm.Pass {
	return []pm.Pass{SCCPFoldPass(), DCEPass(), SimplifyCFGPass()}
}
