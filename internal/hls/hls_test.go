package hls

import (
	"testing"

	"needle/internal/frame"
	"needle/internal/ir"
	"needle/internal/profile"
	"needle/internal/region"
	"needle/internal/workloads"
)

func hotFrame(t testing.TB, name string) *frame.Frame {
	t.Helper()
	w := workloads.ByName(name)
	f, args, memory := w.Instance(600)
	fp, err := profile.CollectFunction(nil, f, args, memory, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := frame.Build(nil, region.FromPath(f, fp.HottestPath()), frame.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func TestIntegerKernelIsSmall(t *testing.T) {
	fr := hotFrame(t, "429.mcf")
	r := Synthesize(fr, CycloneV())
	if !r.Fits {
		t.Fatal("small integer frame must fit the device")
	}
	if r.Utilization > 0.20 {
		t.Fatalf("mcf utilization = %.0f%%, want < 20%% (the paper's common case)", r.Utilization*100)
	}
	if r.PowerMW <= 0 || r.PowerMW > 60 {
		t.Fatalf("mcf power = %v mW, want in the paper's 5-60mW band", r.PowerMW)
	}
}

func TestDoublePrecisionKernelIsLarge(t *testing.T) {
	small := Synthesize(hotFrame(t, "429.mcf"), CycloneV())
	big := Synthesize(hotFrame(t, "470.lbm"), CycloneV())
	if big.ALMs <= 3*small.ALMs {
		t.Fatalf("lbm (%d ALMs) should dwarf mcf (%d ALMs)", big.ALMs, small.ALMs)
	}
	if big.Utilization < 0.20 {
		t.Fatalf("lbm utilization = %.0f%%, expected one of the large outliers", big.Utilization*100)
	}
	if big.PowerMW <= small.PowerMW {
		t.Fatal("FP-heavy frame should burn more power")
	}
}

func TestALMCostOrdering(t *testing.T) {
	if ALMCost(ir.OpAdd) >= ALMCost(ir.OpMul) {
		t.Error("multiplier should cost more than adder")
	}
	if ALMCost(ir.OpFAdd) <= ALMCost(ir.OpAdd) {
		t.Error("FP adder should cost more than integer adder")
	}
	if ALMCost(ir.OpFDiv) <= ALMCost(ir.OpFMul) {
		t.Error("FP divider should cost more than FP multiplier")
	}
	if ALMCost(ir.OpConst) >= ALMCost(ir.OpLoad) {
		t.Error("constants should be nearly free")
	}
}

func TestZeroDeviceDefaults(t *testing.T) {
	fr := hotFrame(t, "429.mcf")
	r := Synthesize(fr, Device{})
	if r.Utilization <= 0 {
		t.Fatal("zero device should default to the Cyclone V")
	}
}

func TestEveryOpcodeHasACost(t *testing.T) {
	// Any opcode must produce a positive ALM estimate (the default branch
	// catches additions to the opcode set).
	for op := ir.Op(0); op < ir.OpRet+1; op++ {
		if ALMCost(op) <= 0 {
			t.Errorf("ALMCost(%v) = %d", op, ALMCost(op))
		}
	}
}

func TestSynthesizeChargesLiveValuesAndStores(t *testing.T) {
	fr := hotFrame(t, "456.hmmer") // has stores and a wide live set
	dev := CycloneV()
	full := Synthesize(fr, dev)
	// Rebuild a copy with no undo overhead to isolate store port charge.
	var opsOnly int
	for _, op := range fr.Ops {
		opsOnly += ALMCost(op.Instr.Op)
	}
	if full.ALMs <= opsOnly {
		t.Fatal("synthesis should charge stores and live-value registers beyond raw op cost")
	}
}
