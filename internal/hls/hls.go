// Package hls estimates FPGA synthesis results for Needle frames, standing
// in for the paper's LegUp-style RTL backend targeting an Altera Cyclone V
// SoC (Section VI, "HLS for NEEDLE identified Braids"). The estimator maps
// each dataflow operation to an Adaptive Logic Module (ALM) budget and a
// dynamic-power contribution, reproducing the reported shape: most
// workloads below 20% of the ~85K ALM device, with double-precision
// floating-point frames (e.g. 470.lbm) far above, and power in the
// 5-305 mW band.
package hls

import (
	"needle/internal/frame"
	"needle/internal/ir"
)

// Device describes the target FPGA fabric.
type Device struct {
	ALMs    int     // total adaptive logic modules (~85K on the Cyclone V)
	ClockMW float64 // baseline clock-tree dynamic power, mW
}

// CycloneV returns the paper's target device.
func CycloneV() Device { return Device{ALMs: 85000, ClockMW: 4} }

// ALMCost returns the ALM budget of one operation's datapath.
func ALMCost(op ir.Op) int {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
		return 32
	case ir.OpShl, ir.OpShr:
		return 64 // barrel shifter
	case ir.OpMul:
		return 180 // DSP-assisted, ALM equivalent
	case ir.OpDiv, ir.OpRem:
		return 1100
	case ir.OpFAdd, ir.OpFSub, ir.OpFCmpEQ, ir.OpFCmpNE,
		ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE:
		return 380 // LegUp-style FU sharing amortizes the adder network
	case ir.OpFMul:
		return 460
	case ir.OpFDiv, ir.OpSqrt:
		return 2000
	case ir.OpExp, ir.OpLog:
		return 2200 // shared CORDIC core
	case ir.OpSIToFP, ir.OpFPToSI:
		return 280
	case ir.OpLoad, ir.OpStore:
		return 70 // Avalon/AXI port adapter share
	case ir.OpSelect, ir.OpPhi:
		return 24
	case ir.OpCondBr:
		return 16 // guard comparator + exit mux
	case ir.OpConst, ir.OpCopy:
		return 4
	}
	return 8
}

// powerUW returns the per-op dynamic power contribution in microwatts,
// assuming the unit toggles every cycle at the synthesized clock.
func powerUW(op ir.Op) float64 {
	switch {
	case op == ir.OpFDiv || op == ir.OpSqrt || op == ir.OpExp || op == ir.OpLog:
		return 2400
	case op.IsFloat():
		return 900
	case op == ir.OpDiv || op == ir.OpRem:
		return 700
	case op == ir.OpMul:
		return 350
	case op.IsMemory():
		return 240
	}
	return 60
}

// Report is the synthesis estimate for one frame.
type Report struct {
	ALMs        int
	Utilization float64 // fraction of the device
	PowerMW     float64
	Fits        bool
}

// Synthesize estimates mapping a frame onto the device.
func Synthesize(fr *frame.Frame, dev Device) Report {
	if dev.ALMs == 0 {
		dev = CycloneV()
	}
	alms := 0
	power := dev.ClockMW
	for _, op := range fr.Ops {
		alms += ALMCost(op.Instr.Op)
		power += powerUW(op.Instr.Op) / 1000
	}
	// Undo-log ports and live-value marshalling registers.
	alms += fr.Stores * 120
	alms += (len(fr.LiveIn) + len(fr.LiveOut)) * 40
	return Report{
		ALMs:        alms,
		Utilization: float64(alms) / float64(dev.ALMs),
		PowerMW:     power,
		Fits:        alms <= dev.ALMs,
	}
}
