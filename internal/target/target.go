// Package target provides the pluggable evaluation backends of the Needle
// pipeline's Target stage. Each backend wraps one evaluation substrate —
// the whole-system offload simulator (sim), the CGRA mapper (cgra), the
// Cyclone V synthesis estimator (hls), and the host energy model (energy) —
// behind the Backend interface, and registers itself with the pipeline at
// init. The pipeline invokes targets only through this interface, so a new
// accelerator model plugs in by adding a backend here (or anywhere) and
// registering it; the pipeline and core packages never change.
//
// Backend and Report are aliases of the pipeline's interfaces: the
// interface contract lives with the stage that calls it, the
// implementations and their typed reports live here.
package target

import "needle/internal/pipeline"

// Report is the typed result of one backend's evaluation.
type Report = pipeline.Report

// Backend is a pluggable evaluation target (Name + Evaluate).
type Backend = pipeline.Backend

// Register adds a backend to the pipeline's Target stage.
func Register(b Backend) { pipeline.Register(b) }

// All returns the registered backends in registration (= evaluation) order.
func All() []Backend { return pipeline.Backends() }

func init() {
	// Registration order is evaluation order; sim first, since its results
	// are the paper's headline tables.
	pipeline.Register(Sim{})
	pipeline.Register(CGRA{})
	pipeline.Register(HLS{})
	pipeline.Register(Energy{})
}
