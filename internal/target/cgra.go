package target

import (
	"needle/internal/cgra"
	"needle/internal/pipeline"
)

// CGRA is the spatial-fabric mapping backend: it schedules the hot braid
// frame on the configured CGRA and reports the mapping's timing and energy
// characteristics (Table V fabric).
type CGRA struct{}

// Name implements Backend.
func (CGRA) Name() string { return "cgra" }

// CGRAReport is the CGRA backend's typed report. Scheduled is false (and
// every other field zero) when the workload has no hot braid frame to map.
type CGRAReport struct {
	Scheduled bool

	// DataflowCycles is the dependence-height schedule length; II the
	// initiation interval of pipelined back-to-back invocations.
	DataflowCycles int64
	II             int64
	// InvokeCycles is the full cost of one cold invocation (transfer +
	// dataflow); FailCycles adds the rollback walk on a guard failure.
	InvokeCycles int64
	FailCycles   int64
	// OpPJ is the fabric's per-op energy including routing; TransferPJ the
	// live-value marshalling energy per invocation.
	OpPJ       float64
	TransferPJ float64
}

// BackendName implements Report.
func (*CGRAReport) BackendName() string { return "cgra" }

// Evaluate implements Backend.
func (CGRA) Evaluate(a *pipeline.Artifacts) (pipeline.Report, error) {
	fr := a.Frame.HotBraidFrame
	if fr == nil {
		return &CGRAReport{}, nil
	}
	s := cgra.Schedule(fr, a.Config.Sim.CGRA)
	return &CGRAReport{
		Scheduled:      true,
		DataflowCycles: s.DataflowCycles,
		II:             s.II,
		InvokeCycles:   s.InvokeCycles(),
		FailCycles:     s.FailCycles(),
		OpPJ:           s.OpPJ,
		TransferPJ:     s.TransferPJ,
	}, nil
}
