package target

import (
	"testing"

	"needle/internal/pipeline"
)

func TestBackendsRegisteredInOrder(t *testing.T) {
	want := []string{"sim", "cgra", "hls", "energy"}
	bs := All()
	if len(bs) != len(want) {
		t.Fatalf("got %d backends, want %d", len(bs), len(want))
	}
	for i, b := range bs {
		if b.Name() != want[i] {
			t.Errorf("backend %d = %q, want %q", i, b.Name(), want[i])
		}
	}
}

func TestReportBackendNamesMatch(t *testing.T) {
	reports := []pipeline.Report{&SimReport{}, &CGRAReport{}, &HLSReport{}, &EnergyReport{}}
	for i, b := range All() {
		if got := reports[i].BackendName(); got != b.Name() {
			t.Errorf("report %d names backend %q, want %q", i, got, b.Name())
		}
	}
}

// Backends that map the hot braid frame must degrade to an explicit
// zero-valued report — not an error — when the workload formed none.
func TestFrameBackendsWithoutFrame(t *testing.T) {
	a := &pipeline.Artifacts{
		Config: pipeline.DefaultConfig(),
		Frame:  &pipeline.FrameArtifact{},
	}
	rep, err := CGRA{}.Evaluate(a)
	if err != nil {
		t.Fatalf("CGRA: %v", err)
	}
	if cr := rep.(*CGRAReport); cr.Scheduled || cr.DataflowCycles != 0 {
		t.Fatalf("CGRA report not zero: %+v", cr)
	}
	rep, err = HLS{}.Evaluate(a)
	if err != nil {
		t.Fatalf("HLS: %v", err)
	}
	if hr := rep.(*HLSReport); hr.Synthesized || hr.ALMs != 0 {
		t.Fatalf("HLS report not zero: %+v", hr)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Sim{})
}
