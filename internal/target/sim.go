package target

import (
	"fmt"

	"needle/internal/pipeline"
	"needle/internal/sim"
)

// Sim is the whole-system offload backend: it reproduces the paper's
// filter-and-rank selection over the captured trace — best BL-Path under
// the oracle bound and the invocation history table (Figure 9), the braid
// choice (Figures 9, 10), and the non-speculative predicated hyperblock
// baseline of Figure 2's middle column.
type Sim struct{}

// Name implements Backend.
func (Sim) Name() string { return "sim" }

// SimReport is the Sim backend's typed report.
type SimReport struct {
	// PathOracle and PathHistory evaluate the best BL-Path offload under
	// the oracle bound and the invocation history table.
	PathOracle  sim.Result
	PathHistory sim.Result
	// BraidChoice is the filter-and-rank braid selection.
	BraidChoice sim.Candidate
	// Hyperblock is the non-speculative predicated baseline.
	Hyperblock sim.Result
}

// BackendName implements Report.
func (*SimReport) BackendName() string { return "sim" }

// Evaluate implements Backend.
func (Sim) Evaluate(a *pipeline.Artifacts) (pipeline.Report, error) {
	tr, cfg := a.Profile.Trace, a.Config
	rep := &SimReport{}
	var err error

	psp := a.Span.Child("select: path")
	rep.PathHistory, rep.PathOracle, err = sim.SelectPath(tr, cfg.Sim, cfg.SelectTopK)
	psp.End()
	if err != nil {
		return nil, fmt.Errorf("evaluating paths: %w", err)
	}
	bsp := a.Span.Child("select: braid")
	rep.BraidChoice, err = sim.SelectBraid(tr, cfg.Sim, cfg.SelectTopK)
	bsp.End()
	if err != nil {
		return nil, fmt.Errorf("evaluating braids: %w", err)
	}
	hsp := a.Span.Child("select: hyperblock")
	rep.Hyperblock, err = sim.EvaluateHyperblock(tr, cfg.Sim, cfg.ColdFraction)
	hsp.End()
	if err != nil {
		return nil, fmt.Errorf("evaluating hyperblock: %w", err)
	}
	return rep, nil
}
