package target

import (
	"needle/internal/hls"
	"needle/internal/pipeline"
)

// HLS is the FPGA synthesis backend: it estimates mapping the hot braid
// frame onto the paper's Altera Cyclone V device (Section VI, "HLS for
// NEEDLE identified Braids").
type HLS struct{}

// Name implements Backend.
func (HLS) Name() string { return "hls" }

// HLSReport is the HLS backend's typed report. Synthesized is false (and
// the embedded report zero) when the workload has no hot braid frame.
type HLSReport struct {
	Synthesized bool
	hls.Report
}

// BackendName implements Report.
func (*HLSReport) BackendName() string { return "hls" }

// Evaluate implements Backend.
func (HLS) Evaluate(a *pipeline.Artifacts) (pipeline.Report, error) {
	fr := a.Frame.HotBraidFrame
	if fr == nil {
		return &HLSReport{}, nil
	}
	return &HLSReport{Synthesized: true, Report: hls.Synthesize(fr, hls.CycloneV())}, nil
}
