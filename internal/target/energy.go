package target

import (
	"needle/internal/energy"
	"needle/internal/pipeline"
)

// Energy is the host energy backend: it reports the McPAT-style energy
// baseline of the captured run, the denominator of every Figure 10 net
// energy reduction.
type Energy struct{}

// Name implements Backend.
func (Energy) Name() string { return "energy" }

// EnergyReport is the Energy backend's typed report.
type EnergyReport struct {
	// BaselinePJ is the host-only energy of the captured baseline run.
	BaselinePJ float64
	// PerOpPJ is the marginal host energy per dynamic operation at the
	// captured op mix and cache behaviour — the credit an accelerated op
	// earns when it leaves the host.
	PerOpPJ float64
}

// BackendName implements Report.
func (*EnergyReport) BackendName() string { return "energy" }

// Evaluate implements Backend.
func (Energy) Evaluate(a *pipeline.Artifacts) (pipeline.Report, error) {
	tr := a.Profile.Trace
	return &EnergyReport{
		BaselinePJ: tr.BaselineEnergyPJ,
		PerOpPJ:    energy.PerOpPJ(a.Config.Sim.CPU, tr.Mix, tr.CacheStats),
	}, nil
}
