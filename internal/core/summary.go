package core

import (
	"encoding/json"

	"needle/internal/sim"
)

// SummarySchemaVersion identifies the layout of the Summary payload that
// `needle -json` and the needled HTTP API emit. Bump it whenever a field is
// added, renamed, removed, or changes meaning, so consumers can gate on the
// contract instead of sniffing fields; the golden files under testdata pin
// the exact bytes of the current version.
const SummarySchemaVersion = 1

// Summary is the machine-readable digest of one workload's analysis, used
// by `needle -json` and the needled daemon's /v1/analyze and /v1/sweep
// endpoints so external tooling (plotting scripts, regression dashboards)
// can consume the reproduction's numbers without scraping the table
// renderings.
type Summary struct {
	SchemaVersion int `json:"schemaVersion"`

	Workload string `json:"workload"`
	Suite    string `json:"suite"`
	N        int    `json:"n"`

	ExecutedPaths int     `json:"executedPaths"`
	Top1Coverage  float64 `json:"top1Coverage"`
	Top5Coverage  float64 `json:"top5Coverage"`
	HotPathOps    int64   `json:"hotPathOps"`
	HotPathBr     int     `json:"hotPathBranches"`
	HotPathMemOps int     `json:"hotPathMemOps"`

	Branches        int     `json:"branches"`
	BackEdges       int     `json:"backEdges"`
	PredicationBits int     `json:"predicationBits"`
	AvgBranchMem    float64 `json:"avgBranchMem"`
	AvgMemBranch    float64 `json:"avgMemBranch"`

	Braids        int     `json:"braids"`
	BraidMerged   int     `json:"braidMergedPaths"`
	BraidCoverage float64 `json:"braidCoverage"`
	BraidGuards   int     `json:"braidGuards"`
	BraidIFs      int     `json:"braidIFs"`

	BaselineCycles int64 `json:"baselineCycles"`

	PathOracle  OffloadSummary `json:"pathOracle"`
	PathHistory OffloadSummary `json:"pathHistory"`
	Braid       OffloadSummary `json:"braid"`
	Hyperblock  OffloadSummary `json:"hyperblock"`

	HLSALMs        int     `json:"hlsALMs"`
	HLSUtilization float64 `json:"hlsUtilization"`
	HLSPowerMW     float64 `json:"hlsPowerMW"`

	// FrameError records a hot-braid frame construction failure (empty on
	// success or when no braid was framed), so JSON consumers can tell a
	// legitimately zero HLS block from a failed one.
	FrameError string `json:"frameError,omitempty"`
}

// OffloadSummary condenses one sim.Result.
type OffloadSummary struct {
	Improvement     float64 `json:"improvement"`
	EnergyReduction float64 `json:"energyReduction"`
	Precision       float64 `json:"precision"`
	Coverage        float64 `json:"coverage"`
	Policy          string  `json:"policy,omitempty"`
}

func offloadSummary(r sim.Result, policy string) OffloadSummary {
	return OffloadSummary{
		Improvement:     r.Improvement,
		EnergyReduction: r.EnergyReduction,
		Precision:       r.Precision,
		Coverage:        r.Coverage,
		Policy:          policy,
	}
}

// Summarize flattens an Analysis into its Summary.
func Summarize(a *Analysis) Summary {
	s := Summary{
		SchemaVersion: SummarySchemaVersion,

		Workload: a.Program.Name,
		Suite:    a.Program.Suite,
		N:        a.Config.N,

		ExecutedPaths: a.Profile.NumExecutedPaths(),
		Top1Coverage:  a.Profile.CoverageTopK(1),
		Top5Coverage:  a.Profile.CoverageTopK(5),

		Branches:        a.CFStats.Branches,
		BackEdges:       a.CFStats.BackwardBranches,
		PredicationBits: a.CFStats.PredicationBits,
		AvgBranchMem:    a.CFStats.AvgBranchMem,
		AvgMemBranch:    a.CFStats.AvgMemBranch,

		Braids:         len(a.Braids),
		BaselineCycles: a.Trace.BaselineCycles,

		PathOracle:  offloadSummary(a.PathOracle, "oracle"),
		PathHistory: offloadSummary(a.PathHistory, "history"),
		Braid:       offloadSummary(a.BraidChoice.Result, a.BraidChoice.Policy),
		Hyperblock:  offloadSummary(a.HyperblockResult, "always"),

		HLSALMs:        a.HLS.ALMs,
		HLSUtilization: a.HLS.Utilization,
		HLSPowerMW:     a.HLS.PowerMW,
	}
	if hot := a.Profile.HottestPath(); hot != nil {
		s.HotPathOps = hot.Ops
		s.HotPathBr = hot.Branches
		s.HotPathMemOps = hot.MemOps
	}
	if a.FrameErr != nil {
		s.FrameError = a.FrameErr.Error()
	}
	if br := a.HottestBraid(); br != nil {
		s.BraidMerged = br.MergedPathCount()
		s.BraidCoverage = br.Coverage(a.Profile)
		s.BraidGuards = br.Guards
		s.BraidIFs = br.IFs
	}
	return s
}

// MarshalSummaries renders summaries as indented JSON.
func MarshalSummaries(as []*Analysis) ([]byte, error) {
	out := make([]Summary, len(as))
	for i, a := range as {
		out[i] = Summarize(a)
	}
	return json.MarshalIndent(out, "", "  ")
}
