package core

import (
	"bytes"
	"context"
	"testing"

	"needle/internal/pipeline"
)

// TestSweepWarmStartByteIdentical is the acceptance test for the persistent
// artifact store: a full sweep persisted to disk, then re-run through a
// second DiskStore on the same directory (fresh memory tier — a new
// process's view), must produce byte-identical JSON summaries, with every
// cacheable stage of every workload served from disk. Both must also match
// a storeless fresh sweep.
func TestSweepWarmStartByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-sweep differential; skipped in -short")
	}
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.N = 900
	ctx := context.Background()

	cold, err := pipeline.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	as1, err := AnalyzeAllCtx(ctx, cfg, Options{Jobs: 2, Store: cold})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := MarshalSummaries(as1)
	if err != nil {
		t.Fatal(err)
	}

	warm, err := pipeline.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	as2, err := AnalyzeAllCtx(ctx, cfg, Options{Jobs: 2, Store: warm})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := MarshalSummaries(as2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("warm-start sweep JSON differs from cold sweep\ncold: %d bytes\nwarm: %d bytes", len(j1), len(j2))
	}

	// Every cacheable stage of every workload must have come off disk.
	var diskHits, misses int64
	for _, cs := range warm.Stats() {
		diskHits += cs.DiskHits
		misses += cs.Misses
	}
	want := int64(len(as1) * 4) // 4 cacheable stages per workload
	if diskHits != want {
		t.Errorf("warm sweep had %d disk hits, want %d (stats %+v)", diskHits, want, warm.Stats())
	}
	if misses != want {
		t.Errorf("warm sweep memory misses = %d, want %d (each key missed once, then filled from disk)", misses, want)
	}

	// A storeless run is the ground truth both tiers must reproduce.
	as3, err := AnalyzeAllCtx(ctx, cfg, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	j3, err := MarshalSummaries(as3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j3) {
		t.Error("stored sweep JSON differs from storeless sweep")
	}
}
