package core

import (
	"bytes"
	"context"
	"testing"

	"needle/internal/obs"
	"needle/internal/pipeline"
	"needle/internal/workloads"
)

// TestCachedSweepByteIdenticalToFresh is the refactor's differential gate:
// the staged pipeline with artifact sharing must produce byte-identical
// JSON summaries to fresh per-workload analyses, across every registered
// workload.
func TestCachedSweepByteIdenticalToFresh(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 1200

	fresh, err := AnalyzeAllCtx(context.Background(), cfg, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	freshJSON, err := MarshalSummaries(fresh)
	if err != nil {
		t.Fatal(err)
	}

	cache := pipeline.NewCache()
	cached, err := AnalyzeAllCtx(context.Background(), cfg, Options{Jobs: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	cachedJSON, err := MarshalSummaries(cached)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(freshJSON, cachedJSON) {
		t.Fatalf("cached sweep diverges from fresh analyses:\nfresh:\n%s\ncached:\n%s",
			freshJSON, cachedJSON)
	}

	// A second sweep through the same cache reuses every cacheable artifact
	// and still reproduces the same bytes.
	again, err := AnalyzeAllCtx(context.Background(), cfg, Options{Jobs: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	againJSON, err := MarshalSummaries(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(freshJSON, againJSON) {
		t.Fatal("warm-cache sweep diverges from fresh analyses")
	}
	nw := len(workloads.All())
	st := cache.Stats()
	for _, stage := range []string{"inline", "profile", "select", "frame"} {
		s := st[stage]
		if s.Misses != int64(nw) {
			t.Errorf("stage %s: %d misses, want %d (one per workload)", stage, s.Misses, nw)
		}
		if s.Hits != int64(nw) {
			t.Errorf("stage %s: %d hits, want %d (full reuse on second sweep)", stage, s.Hits, nw)
		}
	}
	if _, ok := st["target"]; ok {
		t.Error("target stage artifacts must never be cached")
	}
}

// TestDownstreamKnobSweepReusesUpstream pins the cross-config reuse
// contract: sweeping a downstream-only knob (predictor history bits)
// through one cache profiles the workload exactly once and shares the
// captured trace across every configuration.
func TestDownstreamKnobSweepReusesUpstream(t *testing.T) {
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	obs.Reset()

	w := workloads.ByName("186.crafty")
	if w == nil {
		t.Fatal("no 186.crafty workload")
	}
	cache := pipeline.NewCache()
	histBits := []uint{2, 4, 8, 12, 16}
	as := make([]*Analysis, len(histBits))
	for i, hb := range histBits {
		cfg := DefaultConfig()
		cfg.N = 1200
		cfg.Sim.HistBits = hb
		a, err := AnalyzeWith(cache, w, cfg)
		if err != nil {
			t.Fatalf("HistBits=%d: %v", hb, err)
		}
		as[i] = a
	}

	// One capture serves the whole sweep...
	if v := obs.GetCounter("sim.captures").Value(); v != 1 {
		t.Errorf("sim.captures = %d, want 1 (profile artifact shared)", v)
	}
	// ...because every upstream stage hit the cache after the first run.
	runs := int64(len(histBits))
	for _, stage := range []string{"inline", "profile", "select", "frame"} {
		s := cache.Stats()[stage]
		if s.Misses != 1 || s.Hits != runs-1 {
			t.Errorf("stage %s: %+v, want 1 miss / %d hits", stage, s, runs-1)
		}
	}
	if v := obs.GetCounter("pipeline.cache.hits").Value(); v < 4*(runs-1) {
		t.Errorf("pipeline.cache.hits = %d, want >= %d", v, 4*(runs-1))
	}

	// The shared artifacts are literally shared, not recomputed equals.
	for i := 1; i < len(as); i++ {
		if as[i].Trace != as[0].Trace {
			t.Fatalf("run %d recaptured its trace", i)
		}
		if as[i].AM != as[0].AM {
			t.Fatalf("run %d rebuilt its analysis manager", i)
		}
		if as[i].HotBraidFrame != as[0].HotBraidFrame {
			t.Fatalf("run %d rebuilt the hot braid frame", i)
		}
	}

	// The knob still does its job downstream: each config re-evaluates the
	// predictor against the shared trace, and the history-bits choice is
	// visible in the results (degenerate 2-bit histories must not match the
	// 16-bit run everywhere on this path-rich workload).
	if as[0].PathHistory == as[len(as)-1].PathHistory &&
		as[0].BraidChoice.Result == as[len(as)-1].BraidChoice.Result {
		t.Log("warning: HistBits sweep produced identical results; knob may be inert on this workload")
	}
}
