package core

import (
	"context"
	"errors"
	"testing"

	"needle/internal/obs"
	"needle/internal/pipeline"
	"needle/internal/workloads"
)

// TestAnalyzerProgressEvents pins the WithProgress contract: one serialized
// event per workload with a monotonically increasing Done count, carrying
// the completed analysis.
func TestAnalyzerProgressEvents(t *testing.T) {
	var events []Progress
	az := New(WithJobs(4), WithProgress(func(p Progress) {
		// Serialization is part of the contract: appending without a lock
		// is safe exactly because calls never overlap (the race detector
		// checks the rest).
		events = append(events, p)
	}))
	as, err := az.RunAll(context.Background(), Config{N: 600})
	if err != nil {
		t.Fatal(err)
	}
	ws := workloads.All()
	if len(events) != len(ws) {
		t.Fatalf("got %d progress events, want %d", len(events), len(ws))
	}
	seen := make(map[int]bool)
	for i, p := range events {
		if p.Done != i+1 {
			t.Errorf("event %d: Done = %d, want %d", i, p.Done, i+1)
		}
		if p.Total != len(ws) {
			t.Errorf("event %d: Total = %d, want %d", i, p.Total, len(ws))
		}
		if p.Err != nil {
			t.Errorf("event %d: unexpected error %v", i, p.Err)
		}
		if p.Analysis == nil || p.Analysis.Workload != p.Workload {
			t.Errorf("event %d: analysis/workload mismatch", i)
		}
		if p.Workload != ws[p.Index] {
			t.Errorf("event %d: Index %d does not match workload %s", i, p.Index, p.Workload.Name)
		}
		if seen[p.Index] {
			t.Errorf("event %d: duplicate index %d", i, p.Index)
		}
		seen[p.Index] = true
		if p.Analysis != as[p.Index] {
			t.Errorf("event %d: analysis is not the one RunAll returned", i)
		}
	}
}

// TestAnalyzerRequestScopedSpans pins the WithObsSpan contract the daemon's
// per-request Chrome traces rely on: handing the Analyzer a span from a
// private registry routes the entire run's span tree into that registry and
// records nothing on the (disabled) Default registry.
func TestAnalyzerRequestScopedSpans(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("test assumes the Default registry starts disabled")
	}
	defBefore := len(obs.Default().Spans())

	reg := &obs.Registry{}
	reg.Enable()
	root := reg.StartOnTrack("request", 0)
	w := workloads.ByName("164.gzip")
	if _, err := New(WithObsSpan(root)).RunWorkload(context.Background(), w, Config{N: 800}); err != nil {
		t.Fatal(err)
	}
	root.End()

	names := make(map[string]int)
	for _, s := range reg.Spans() {
		names[s.Name]++
	}
	for _, stage := range []string{"inline", "profile", "select", "frame", "target", "capture"} {
		if names[stage] != 1 {
			t.Errorf("request registry: %d %q spans, want 1", names[stage], stage)
		}
	}
	if names["analyze 164.gzip"] != 1 {
		t.Errorf("request registry: missing the analyze root span: %v", names)
	}
	if got := len(obs.Default().Spans()); got != defBefore {
		t.Errorf("Default registry gained %d spans from a request-scoped run", got-defBefore)
	}
}

// TestAnalyzerRunCancellation: a done context stops a single Run between
// stages, and the interruption is never memoized — the same store serves a
// later run correctly.
func TestAnalyzerRunCancellation(t *testing.T) {
	cache := pipeline.NewCache()
	az := New(WithStore(cache))
	w := workloads.ByName("456.hmmer")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := az.RunWorkload(ctx, w, Config{N: 800}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	a, err := az.RunWorkload(context.Background(), w, Config{N: 800})
	if err != nil {
		t.Fatalf("run after cancelled run: %v", err)
	}
	fresh, err := Analyze(w, Config{N: 800})
	if err != nil {
		t.Fatal(err)
	}
	got, want := Summarize(a), Summarize(fresh)
	if got != want {
		t.Fatalf("post-cancellation run diverges from fresh analysis:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestOptionsAnalyzer: the Options→Analyzer bridge honors the Store-wins
// precedence the sweep wrappers documented.
func TestOptionsAnalyzer(t *testing.T) {
	cache := pipeline.NewCache()
	store, err := pipeline.NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if az := (Options{Cache: cache}).Analyzer(); az.store != pipeline.Store(cache) {
		t.Error("Cache-only options must select the cache")
	}
	if az := (Options{Store: store, Cache: cache}).Analyzer(); az.store != pipeline.Store(store) {
		t.Error("Store must win over Cache")
	}
	if az := (Options{}).Analyzer(); az.store != nil {
		t.Error("empty options must leave the store nil")
	}
}
