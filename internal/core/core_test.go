package core

import (
	"encoding/json"
	"testing"

	"needle/internal/workloads"
)

func analyze(t testing.TB, name string, n int) *Analysis {
	t.Helper()
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("unknown workload %q", name)
	}
	cfg := DefaultConfig()
	cfg.N = n
	a, err := Analyze(w, cfg)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", name, err)
	}
	return a
}

func TestAnalyzeProducesEverything(t *testing.T) {
	a := analyze(t, "456.hmmer", 1500)
	if a.Profile == nil || a.Trace == nil {
		t.Fatal("missing profile/trace")
	}
	if a.Profile.NumExecutedPaths() == 0 {
		t.Fatal("no paths executed")
	}
	if len(a.Braids) == 0 {
		t.Fatal("no braids formed")
	}
	if a.CFStats.Branches == 0 {
		t.Fatal("characterization empty")
	}
	if a.HotBraidFrame == nil {
		t.Fatal("no hot braid frame")
	}
	if a.HLS.ALMs <= 0 {
		t.Fatal("no HLS estimate")
	}
	if a.PathOracle.BaselineCycles != a.Trace.BaselineCycles {
		t.Fatal("oracle result disconnected from trace")
	}
}

func TestAnalyzeSupportingRegions(t *testing.T) {
	a := analyze(t, "164.gzip", 1500)
	sb := a.Superblock()
	if sb == nil || len(sb.Blocks) == 0 {
		t.Fatal("no superblock")
	}
	hb := a.Hyperblock()
	if hb == nil || hb.NumOps() == 0 {
		t.Fatal("no hyperblock")
	}
	// The hyperblock never shrinks below its seed block.
	if hb.SizeVsBlock() < 1 {
		t.Fatalf("hyperblock smaller than its entry block: %v", hb.SizeVsBlock())
	}
}

func TestPathFrameRanks(t *testing.T) {
	a := analyze(t, "453.povray", 1500)
	fr0, err := a.PathFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if fr0.NumOps() == 0 {
		t.Fatal("empty frame")
	}
	if _, err := a.PathFrame(1); err != nil {
		t.Fatalf("rank-1 frame: %v", err)
	}
	if _, err := a.PathFrame(1 << 20); err == nil {
		t.Fatal("expected error for absurd rank")
	}
	if _, err := a.PathFrame(-1); err == nil {
		t.Fatal("expected error for negative rank")
	}
}

func TestSelectionNeverDegrades(t *testing.T) {
	// The filter-and-rank stage must fall back to no-offload rather than
	// commit to a losing braid.
	for _, name := range []string{"186.crafty", "401.bzip2", "179.art"} {
		a := analyze(t, name, 1500)
		if a.BraidChoice.Result.Improvement < -0.01 {
			t.Errorf("%s: selected braid degrades by %.1f%% (policy %s)",
				name, -a.BraidChoice.Result.Improvement*100, a.BraidChoice.Policy)
		}
	}
}

func TestDefaultConfigFillsZeroValue(t *testing.T) {
	w := workloads.ByName("482.sphinx3")
	a, err := Analyze(w, Config{N: 800})
	if err != nil {
		t.Fatal(err)
	}
	if a.Config.TopPaths == 0 {
		t.Fatal("zero-value config should be replaced by defaults")
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	a := analyze(t, "164.gzip", 1200)
	data, err := MarshalSummaries([]*Analysis{a})
	if err != nil {
		t.Fatal(err)
	}
	var back []Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back) != 1 || back[0].Workload != "164.gzip" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	s := back[0]
	if s.ExecutedPaths == 0 || s.BaselineCycles == 0 || s.Braids == 0 {
		t.Fatalf("summary incomplete: %+v", s)
	}
	if s.Braid.Coverage < 0 || s.Braid.Coverage > 1 {
		t.Fatalf("braid coverage out of range: %v", s.Braid.Coverage)
	}
}
