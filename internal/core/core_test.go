package core

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"needle/internal/obs"
	"needle/internal/sim"
	"needle/internal/workloads"
)

func analyze(t testing.TB, name string, n int) *Analysis {
	t.Helper()
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("unknown workload %q", name)
	}
	cfg := DefaultConfig()
	cfg.N = n
	a, err := Analyze(w, cfg)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", name, err)
	}
	return a
}

func TestAnalyzeProducesEverything(t *testing.T) {
	a := analyze(t, "456.hmmer", 1500)
	if a.Profile == nil || a.Trace == nil {
		t.Fatal("missing profile/trace")
	}
	if a.Profile.NumExecutedPaths() == 0 {
		t.Fatal("no paths executed")
	}
	if len(a.Braids) == 0 {
		t.Fatal("no braids formed")
	}
	if a.CFStats.Branches == 0 {
		t.Fatal("characterization empty")
	}
	if a.HotBraidFrame == nil {
		t.Fatal("no hot braid frame")
	}
	if a.HLS.ALMs <= 0 {
		t.Fatal("no HLS estimate")
	}
	if a.PathOracle.BaselineCycles != a.Trace.BaselineCycles {
		t.Fatal("oracle result disconnected from trace")
	}
}

func TestAnalyzeSupportingRegions(t *testing.T) {
	a := analyze(t, "164.gzip", 1500)
	sb := a.Superblock()
	if sb == nil || len(sb.Blocks) == 0 {
		t.Fatal("no superblock")
	}
	hb := a.Hyperblock()
	if hb == nil || hb.NumOps() == 0 {
		t.Fatal("no hyperblock")
	}
	// The hyperblock never shrinks below its seed block.
	if hb.SizeVsBlock() < 1 {
		t.Fatalf("hyperblock smaller than its entry block: %v", hb.SizeVsBlock())
	}
}

func TestPathFrameRanks(t *testing.T) {
	a := analyze(t, "453.povray", 1500)
	fr0, err := a.PathFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if fr0.NumOps() == 0 {
		t.Fatal("empty frame")
	}
	if _, err := a.PathFrame(1); err != nil {
		t.Fatalf("rank-1 frame: %v", err)
	}
	if _, err := a.PathFrame(1 << 20); err == nil {
		t.Fatal("expected error for absurd rank")
	}
	if _, err := a.PathFrame(-1); err == nil {
		t.Fatal("expected error for negative rank")
	}
}

func TestSelectionNeverDegrades(t *testing.T) {
	// The filter-and-rank stage must fall back to no-offload rather than
	// commit to a losing braid.
	for _, name := range []string{"186.crafty", "401.bzip2", "179.art"} {
		a := analyze(t, name, 1500)
		if a.BraidChoice.Result.Improvement < -0.01 {
			t.Errorf("%s: selected braid degrades by %.1f%% (policy %s)",
				name, -a.BraidChoice.Result.Improvement*100, a.BraidChoice.Policy)
		}
	}
}

func TestDefaultConfigFillsZeroValue(t *testing.T) {
	w := workloads.ByName("482.sphinx3")
	a, err := Analyze(w, Config{N: 800})
	if err != nil {
		t.Fatal(err)
	}
	if a.Config.TopPaths == 0 {
		t.Fatal("zero-value config should be replaced by defaults")
	}
}

func TestConfigNormalizationKeepsCallerFields(t *testing.T) {
	// A caller-supplied Sim and N must survive normalization even when
	// TopPaths is zero — the old sentinel swap silently replaced the whole
	// Config with DefaultConfig().
	custom := sim.DefaultConfig()
	custom.HistBits = 4
	custom.OOO.Width = 2
	w := workloads.ByName("164.gzip")
	a, err := Analyze(w, Config{Sim: custom, N: 900})
	if err != nil {
		t.Fatal(err)
	}
	if a.Config.Sim.OOO.Width != 2 || a.Config.Sim.HistBits != 4 {
		t.Fatalf("caller Sim discarded: %+v", a.Config.Sim)
	}
	if a.Config.N != 900 {
		t.Fatalf("caller N discarded: %d", a.Config.N)
	}
	d := DefaultConfig()
	if a.Config.TopPaths != d.TopPaths || a.Config.SelectTopK != d.SelectTopK ||
		a.Config.ColdFraction != d.ColdFraction {
		t.Fatalf("zero fields not defaulted: %+v", a.Config)
	}
}

func TestAnalyzeAllCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	as, err := AnalyzeAllCtx(ctx, Config{N: 600}, Options{Jobs: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (results %v)", err, as != nil)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation not prompt: took %v", elapsed)
	}
	// Serial path honors cancellation too.
	if _, err := AnalyzeAllCtx(ctx, Config{N: 600}, Options{Jobs: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial path: want context.Canceled, got %v", err)
	}
}

func TestAnalyzeAllCtxMidSweepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
		close(done)
	}()
	_, err := AnalyzeAllCtx(ctx, Config{N: 1200}, Options{Jobs: 2})
	<-done
	// Either the sweep finished before the cancel landed (nil) or it must
	// report context.Canceled — never a partial, unexplained result.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAnalyzerRunAllRegistrationOrder(t *testing.T) {
	as, err := New(WithJobs(2)).RunAll(context.Background(), Config{N: 1500})
	if err != nil {
		t.Fatal(err)
	}
	ws := workloads.All()
	if len(as) != len(ws) {
		t.Fatalf("got %d analyses, want %d", len(as), len(ws))
	}
	for i, a := range as {
		if a.Workload != ws[i] {
			t.Fatalf("result %d out of registration order", i)
		}
	}
}

func TestObservabilitySpansAndCounters(t *testing.T) {
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	obs.Reset()
	if _, err := AnalyzeAllCtx(context.Background(), Config{N: 1500}, Options{Jobs: 2}); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]int)
	for _, s := range obs.Default().Spans() {
		names[s.Name]++
	}
	nw := len(workloads.All())
	// One span per pipeline stage per workload ("inline", "profile",
	// "select", "frame", "target"), their characteristic children
	// ("capture" under profile, "characterize"/"braids" under select,
	// "select: *" and "target: *" under target), plus the sweep root and
	// the per-worker utilization spans.
	for _, stage := range []string{
		"inline", "profile", "select", "frame", "target",
		"capture", "characterize", "braids",
		"select: path", "select: braid", "select: hyperblock",
		"target: sim", "target: cgra", "target: hls", "target: energy",
	} {
		if names[stage] != nw {
			t.Errorf("stage %q: %d spans, want %d", stage, names[stage], nw)
		}
	}
	if names["sweep"] != 1 {
		t.Errorf("sweep root spans: %d, want 1", names["sweep"])
	}
	if names["worker-1"] != 1 || names["worker-2"] != 1 {
		t.Errorf("worker spans missing: %v / %v", names["worker-1"], names["worker-2"])
	}
	if got := names["analyze 164.gzip"]; got != 1 {
		t.Errorf("analyze span for 164.gzip: %d, want 1", got)
	}
	for _, c := range []string{"core.analyses", "pipeline.runs", "pm.cache.hits",
		"pm.cache.misses", "interp.runs.fast", "interp.instrs.fast", "sim.captures"} {
		if v := obs.GetCounter(c).Value(); v <= 0 {
			t.Errorf("counter %s = %d, want > 0", c, v)
		}
	}
	for _, c := range []string{"core.analyses", "pipeline.runs"} {
		if v := obs.GetCounter(c).Value(); v != int64(nw) {
			t.Errorf("%s = %d, want %d", c, v, nw)
		}
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	a := analyze(t, "164.gzip", 1200)
	data, err := MarshalSummaries([]*Analysis{a})
	if err != nil {
		t.Fatal(err)
	}
	var back []Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back) != 1 || back[0].Workload != "164.gzip" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	s := back[0]
	if s.ExecutedPaths == 0 || s.BaselineCycles == 0 || s.Braids == 0 {
		t.Fatalf("summary incomplete: %+v", s)
	}
	if s.Braid.Coverage < 0 || s.Braid.Coverage > 1 {
		t.Fatalf("braid coverage out of range: %v", s.Braid.Coverage)
	}
}
