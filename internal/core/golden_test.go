package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden summary files")

// TestSummaryGolden pins the exact machine-readable output of Summarize —
// the schema and values `needle -json` emits and scripts/bench.sh-style
// tooling consumes — on two fixed workloads. An API refactor that changes
// a field name, drops a field, or perturbs the pipeline's numbers fails
// here instead of silently breaking downstream consumers. After an
// intentional change, regenerate with:
//
//	go test ./internal/core -run TestSummaryGolden -update
func TestSummaryGolden(t *testing.T) {
	for _, tc := range []struct {
		workload string
		n        int
	}{
		{"164.gzip", 1200},
		{"456.hmmer", 1500},
	} {
		t.Run(tc.workload, func(t *testing.T) {
			a := analyze(t, tc.workload, tc.n)
			got, err := MarshalSummaries([]*Analysis{a})
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			golden := filepath.Join("testdata", "summary_"+tc.workload+".golden.json")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("summary drifted from golden file %s\n(run with -update after an intentional change)\ngot:\n%s\nwant:\n%s",
					golden, got, want)
			}
		})
	}
}
