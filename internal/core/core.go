// Package core ties the Needle pipeline together: profile a program's hot
// function, enumerate and rank its Ball-Larus paths, characterize its
// control flow, form braids and baseline regions, construct software
// frames, and evaluate offload on the modeled system. It is the programmatic
// equivalent of the paper's Figure 1 flow and the entry point used by the
// command-line tools, the needled daemon, the examples, and the experiment
// harness.
//
// The entry point is the Analyzer (analyzer.go): core.New(opts...) with
// functional options (WithStore, WithJobs, WithProgress, WithObsSpan) and
// the Run/RunWorkload/RunAll methods. Run takes a *program.Program — any
// verified NIR program, whether a built-in workload instance or source a
// user just loaded — making "analyze this workload" and "analyze this
// file" the same operation; RunWorkload is the registry-backed adapter.
// The heavy lifting lives in internal/pipeline (named stages over typed
// artifacts) and internal/target (pluggable evaluation backends); the
// Analyzer flattens the staged artifacts into the Analysis struct,
// byte-for-byte identical to the old monolith. The historical
// package-level functions in this file — Analyze, AnalyzeWith,
// AnalyzeWithStore, AnalyzeAllCtx — remain as thin wrappers over a
// one-shot Analyzer.
package core

import (
	"context"
	"fmt"

	"needle/internal/frame"
	"needle/internal/hls"
	"needle/internal/obs"
	"needle/internal/pipeline"
	"needle/internal/pm"
	"needle/internal/profile"
	"needle/internal/program"
	"needle/internal/region"
	"needle/internal/sim"
	"needle/internal/target"
	"needle/internal/workloads"
)

// Observability counters (no-ops until obs.Enable).
var (
	obsAnalyses   = obs.GetCounter("core.analyses")
	obsSweepUnits = obs.GetCounter("core.sweep.workloads")
)

// Config controls an analysis run. It is an alias of pipeline.Config, so
// the staged API and these compatibility wrappers interoperate freely.
type Config = pipeline.Config

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// Analysis is the complete result of running the pipeline on one program.
type Analysis struct {
	// Program is the analyzed program — always set.
	Program *program.Program
	// Workload is the registry entry the program was materialized from, or
	// nil when the analysis ran on a raw Program (needle -nir, the needled
	// service's inline-source requests).
	Workload *workloads.Workload
	Config   Config

	// AM is the analysis manager that served this run; later frame or
	// region construction against the analyzed function should reuse it.
	// Analyses that shared artifacts through a pipeline.Cache share it.
	AM *pm.Manager

	// Artifacts is the staged artifact set this analysis was flattened
	// from; Artifacts.Report exposes the typed report of every registered
	// target backend (including cgra and energy, which have no flattened
	// field here).
	Artifacts *pipeline.Artifacts

	// Trace is the captured baseline execution (profile + host costs).
	Trace *sim.Trace
	// Profile is the ranked Ball-Larus path profile.
	Profile *profile.FunctionProfile
	// CFStats is the static control-flow characterization (Table I).
	CFStats region.ControlFlowStats
	// Braids holds every braid, ranked by weight (Table IV).
	Braids []*region.Braid

	// PathOracle and PathHistory evaluate the best BL-Path offload under
	// the oracle bound and the invocation history table (Figure 9).
	PathOracle  sim.Result
	PathHistory sim.Result
	// BraidChoice is the filter-and-rank braid selection (Figures 9, 10).
	BraidChoice sim.Candidate
	// HyperblockResult is the non-speculative predicated baseline of
	// Figure 2's design-space comparison.
	HyperblockResult sim.Result

	// HotBraidFrame is the software frame of the top braid, and HLS its
	// estimated FPGA synthesis (Section VI). HotBraidFrame is nil when the
	// workload formed no braids, or when frame construction for the hot
	// braid failed — FrameErr distinguishes the two: it records the
	// frame.Build error, and is nil when no build was attempted or the
	// build succeeded. When HotBraidFrame is nil, HLS is the zero Report.
	HotBraidFrame *frame.Frame
	FrameErr      error
	HLS           hls.Report
}

// Analyze runs the full pipeline on a workload with a fresh one-shot
// Analyzer. It is equivalent to New().RunWorkload(context.Background(), w,
// cfg).
func Analyze(w *workloads.Workload, cfg Config) (*Analysis, error) {
	return New().RunWorkload(context.Background(), w, cfg)
}

// AnalyzeWith runs the pipeline with stage-artifact reuse through an
// in-memory cache: upstream artifacts (inlined function, captured profile,
// braids, hot-braid frame) are shared with every other run whose program
// key and upstream config fingerprints match, so a sweep over downstream
// knobs — predictor history bits, CGRA parameters, selection bounds —
// re-profiles nothing. A nil cache computes everything fresh; results are
// identical either way.
func AnalyzeWith(cache *pipeline.Cache, w *workloads.Workload, cfg Config) (*Analysis, error) {
	var store pipeline.Store
	if cache != nil {
		store = cache
	}
	return New(WithStore(store)).RunWorkload(context.Background(), w, cfg)
}

// AnalyzeWithStore is AnalyzeWith over any artifact store — in particular a
// pipeline.DiskStore, which warm-starts the run from artifacts a previous
// process persisted. A nil store computes everything fresh; results are
// byte-identical either way.
func AnalyzeWithStore(store pipeline.Store, w *workloads.Workload, cfg Config) (*Analysis, error) {
	return New(WithStore(store)).RunWorkload(context.Background(), w, cfg)
}

// fromArtifacts flattens the staged artifacts into the Analysis struct the
// pre-refactor monolith produced, pulling the typed reports of the sim and
// hls backends into their dedicated fields.
func fromArtifacts(arts *pipeline.Artifacts) (*Analysis, error) {
	a := &Analysis{
		Program:       arts.Program,
		Config:        arts.Config,
		AM:            arts.Inline.AM,
		Artifacts:     arts,
		Trace:         arts.Profile.Trace,
		Profile:       arts.Profile.Trace.Profile,
		CFStats:       arts.Select.CFStats,
		Braids:        arts.Select.Braids,
		HotBraidFrame: arts.Frame.HotBraidFrame,
		FrameErr:      arts.Frame.FrameErr,
	}
	rep, ok := arts.Report("sim").(*target.SimReport)
	if !ok {
		return nil, fmt.Errorf("core: %s: no sim target report (backend not registered?)", a.Program.Name)
	}
	a.PathOracle = rep.PathOracle
	a.PathHistory = rep.PathHistory
	a.BraidChoice = rep.BraidChoice
	a.HyperblockResult = rep.Hyperblock
	if h, ok := arts.Report("hls").(*target.HLSReport); ok && h.Synthesized {
		a.HLS = h.Report
	}
	return a, nil
}

// Options configures a sweep over the registered workloads — the
// pre-Analyzer way to spell New(WithJobs(...), WithStore(...)). It remains
// the argument type of AnalyzeAllCtx and tables.RunCtx.
type Options struct {
	// Jobs bounds the worker pool: GOMAXPROCS when <= 0, serial when 1.
	Jobs int
	// Store shares stage artifacts across the sweep's analyses — and with
	// any other run handed the same store. A pipeline.DiskStore persists
	// them, so a later process's sweep warm-starts from disk. Nil falls
	// back to Cache, then to analyzing everything fresh.
	Store pipeline.Store
	// Cache is the pre-Store way to share artifacts, kept for
	// compatibility; it is consulted only when Store is nil.
	Cache *pipeline.Cache
}

// store returns the effective artifact store (Store wins, then Cache).
func (o Options) store() pipeline.Store {
	if o.Store != nil {
		return o.Store
	}
	if o.Cache != nil {
		return o.Cache
	}
	return nil
}

// Analyzer returns the Analyzer these options describe.
func (o Options) Analyzer() *Analyzer {
	return New(WithStore(o.store()), WithJobs(o.Jobs))
}

// AnalyzeAllCtx runs the pipeline over every registered workload on a
// bounded worker pool; it is Options.Analyzer().RunAll(ctx, cfg). See
// Analyzer.RunAll for the ordering, error, and cancellation contract.
func AnalyzeAllCtx(ctx context.Context, cfg Config, opts Options) ([]*Analysis, error) {
	return opts.Analyzer().RunAll(ctx, cfg)
}

// HottestBraid returns the top-ranked braid, or nil.
func (a *Analysis) HottestBraid() *region.Braid {
	if len(a.Braids) == 0 {
		return nil
	}
	return a.Braids[0]
}

// PathFrame builds the software frame for one of the profile's paths.
func (a *Analysis) PathFrame(rank int) (*frame.Frame, error) {
	paths := a.Profile.Paths
	if rank < 0 || rank >= len(paths) {
		return nil, fmt.Errorf("core: %s has no path of rank %d", a.Program.Name, rank)
	}
	r := region.FromPath(a.Profile.F, paths[rank])
	return frame.Build(a.AM, r, a.Config.Sim.Frame)
}

// Superblock builds the edge-profile baseline region seeded at the hottest
// path's entry (Section II-B comparison).
func (a *Analysis) Superblock() *region.Superblock {
	hot := a.Profile.HottestPath()
	if hot == nil {
		return nil
	}
	return region.BuildSuperblock(a.Profile, hot.Blocks[0], 0)
}

// Hyperblock builds the if-conversion baseline region at the hottest path's
// entry (Figure 5).
func (a *Analysis) Hyperblock() *region.Hyperblock {
	hot := a.Profile.HottestPath()
	if hot == nil {
		return nil
	}
	return region.BuildHyperblock(a.AM, a.Profile, hot.Blocks[0], a.Config.ColdFraction)
}
