// Package core ties the Needle pipeline together: profile a workload's hot
// function, enumerate and rank its Ball-Larus paths, characterize its
// control flow, form braids and baseline regions, construct software
// frames, and evaluate offload on the modeled system. It is the programmatic
// equivalent of the paper's Figure 1 flow and the entry point used by the
// command-line tools, the examples, and the experiment harness.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"needle/internal/frame"
	"needle/internal/hls"
	"needle/internal/obs"
	"needle/internal/passes"
	"needle/internal/pm"
	"needle/internal/profile"
	"needle/internal/region"
	"needle/internal/sim"
	"needle/internal/workloads"
)

// Observability counters (no-ops until obs.Enable).
var (
	obsAnalyses   = obs.GetCounter("core.analyses")
	obsFrameErrs  = obs.GetCounter("core.frame.errors")
	obsSweepUnits = obs.GetCounter("core.sweep.workloads")
)

// Config controls an analysis run.
type Config struct {
	// Sim holds the hardware model parameters (Table V defaults).
	Sim sim.Config
	// N overrides the workload problem size; 0 keeps the default.
	N int
	// TopPaths bounds how many ranked paths detailed reports include.
	TopPaths int
	// ColdFraction is the hyperblock cold-op threshold (Figure 5).
	ColdFraction float64
	// SelectTopK bounds the filter-and-rank candidate search.
	SelectTopK int
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Sim:          sim.DefaultConfig(),
		TopPaths:     5,
		ColdFraction: 0.1,
		SelectTopK:   3,
	}
}

// withDefaults normalizes a config field by field: every zero-valued field
// takes its DefaultConfig value, and every field the caller set survives. A
// partially-filled Config (say, a custom Sim with TopPaths left zero) is
// therefore honored rather than silently replaced wholesale — N is the one
// exception, where zero legitimately means "the workload's default size".
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Sim == (sim.Config{}) {
		c.Sim = d.Sim
	}
	if c.TopPaths == 0 {
		c.TopPaths = d.TopPaths
	}
	if c.ColdFraction == 0 {
		c.ColdFraction = d.ColdFraction
	}
	if c.SelectTopK == 0 {
		c.SelectTopK = d.SelectTopK
	}
	return c
}

// Analysis is the complete result of running the pipeline on one workload.
type Analysis struct {
	Workload *workloads.Workload
	Config   Config

	// AM is the analysis manager that served this run; later frame or
	// region construction against the analyzed function should reuse it.
	AM *pm.Manager

	// Trace is the captured baseline execution (profile + host costs).
	Trace *sim.Trace
	// Profile is the ranked Ball-Larus path profile.
	Profile *profile.FunctionProfile
	// CFStats is the static control-flow characterization (Table I).
	CFStats region.ControlFlowStats
	// Braids holds every braid, ranked by weight (Table IV).
	Braids []*region.Braid

	// PathOracle and PathHistory evaluate the best BL-Path offload under
	// the oracle bound and the invocation history table (Figure 9).
	PathOracle  sim.Result
	PathHistory sim.Result
	// BraidChoice is the filter-and-rank braid selection (Figures 9, 10).
	BraidChoice sim.Candidate
	// HyperblockResult is the non-speculative predicated baseline of
	// Figure 2's design-space comparison.
	HyperblockResult sim.Result

	// HotBraidFrame is the software frame of the top braid, and HLS its
	// estimated FPGA synthesis (Section VI). HotBraidFrame is nil when the
	// workload formed no braids, or when frame construction for the hot
	// braid failed — FrameErr distinguishes the two: it records the
	// frame.Build error, and is nil when no build was attempted or the
	// build succeeded. When HotBraidFrame is nil, HLS is the zero Report.
	HotBraidFrame *frame.Frame
	FrameErr      error
	HLS           hls.Report
}

// Analyze runs the full pipeline on a workload. Kernels with calls are
// aggressively inlined first, exactly as the paper's LLVM front half does
// before profiling (Section II-A). Zero-valued Config fields are filled
// from DefaultConfig field by field, so a partially-specified Config keeps
// every field the caller did set.
func Analyze(w *workloads.Workload, cfg Config) (*Analysis, error) {
	return analyzeSpanned(w, cfg, nil)
}

// analyzeSpanned is Analyze parented under an observability span (nil for a root
// span; the sweep passes each worker's span so per-workload timelines land
// on the worker's track).
func analyzeSpanned(w *workloads.Workload, cfg Config, parent *obs.Span) (*Analysis, error) {
	cfg = cfg.withDefaults()
	sp := parent.Child("analyze " + w.Name)
	defer sp.End()
	obsAnalyses.Add(1)

	f, args, memory := w.Instance(cfg.N)
	// Each run owns a fresh analysis manager: results stay independent of
	// any shared mutable state, so runs can proceed in parallel. The
	// manager carries the run's span, parenting the pass-manager and
	// capture spans recorded below it.
	am := pm.NewManager()
	am.SetSpan(sp)
	ist := sp.Child("inline")
	f, err := pm.NewPassManager(am).Add(passes.InlinePass(0)).Run(f)
	ist.End()
	if err != nil {
		return nil, fmt.Errorf("core: inlining %s: %w", w.Name, err)
	}
	// sim.Capture records its own "capture" span (with collector/execute/
	// finish children) under the manager's span.
	tr, err := sim.Capture(am, f, args, memory, cfg.Sim)
	if err != nil {
		return nil, fmt.Errorf("core: capturing %s: %w", w.Name, err)
	}
	a := &Analysis{
		Workload: w,
		Config:   cfg,
		AM:       am,
		Trace:    tr,
		Profile:  tr.Profile,
	}
	cst := sp.Child("characterize")
	a.CFStats = region.Characterize(am, f)
	cst.End()
	bst := sp.Child("braids")
	a.Braids = region.BuildBraids(tr.Profile, 0)
	bst.End()

	pst := sp.Child("select: path")
	a.PathHistory, a.PathOracle, err = sim.SelectPath(tr, cfg.Sim, cfg.SelectTopK)
	pst.End()
	if err != nil {
		return nil, fmt.Errorf("core: evaluating paths of %s: %w", w.Name, err)
	}
	brt := sp.Child("select: braid")
	a.BraidChoice, err = sim.SelectBraid(tr, cfg.Sim, cfg.SelectTopK)
	brt.End()
	if err != nil {
		return nil, fmt.Errorf("core: evaluating braids of %s: %w", w.Name, err)
	}
	hst := sp.Child("select: hyperblock")
	a.HyperblockResult, err = sim.EvaluateHyperblock(tr, cfg.Sim, cfg.ColdFraction)
	hst.End()
	if err != nil {
		return nil, fmt.Errorf("core: evaluating hyperblock of %s: %w", w.Name, err)
	}

	if len(a.Braids) > 0 {
		fst := sp.Child("frame+hls")
		fr, err := frame.Build(am, &a.Braids[0].Region, cfg.Sim.Frame)
		if err != nil {
			// Frame construction failing for the hot braid is survivable —
			// the offload evaluation above already ran — but it must not be
			// silent: record it for the caller (see the FrameErr contract).
			a.FrameErr = fmt.Errorf("core: framing hot braid of %s: %w", w.Name, err)
			obsFrameErrs.Add(1)
			fst.SetArg("error", err.Error())
		} else {
			a.HotBraidFrame = fr
			a.HLS = hls.Synthesize(fr, hls.CycloneV())
		}
		fst.End()
	}
	return a, nil
}

// Options configures a sweep over the registered workloads.
type Options struct {
	// Jobs bounds the worker pool: GOMAXPROCS when <= 0, serial when 1.
	Jobs int
}

// AnalyzeAllCtx runs the pipeline over every registered workload on a
// bounded worker pool. Each workload's analysis owns its manager and shares
// no mutable state with the others, so the result slice is in registration
// order and identical to a serial run; on failure the error of the
// earliest-registered failing workload is returned.
//
// Cancelling ctx stops the sweep between workloads (a workload analysis
// already in flight runs to completion) and returns ctx.Err().
func AnalyzeAllCtx(ctx context.Context, cfg Config, opts Options) ([]*Analysis, error) {
	ws := workloads.All()
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(ws) {
		jobs = len(ws)
	}
	root := obs.StartOnTrack("sweep", 0).
		SetArg("workloads", len(ws)).SetArg("jobs", jobs)
	defer root.End()

	out := make([]*Analysis, len(ws))
	errs := make([]error, len(ws))
	if jobs <= 1 {
		for i, w := range ws {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			a, err := analyzeSpanned(w, cfg, root)
			if err != nil {
				return nil, err
			}
			obsSweepUnits.Add(1)
			out[i] = a
		}
		return out, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			// One span per worker on its own track: the exported timeline
			// shows each worker's utilization as one lane.
			wsp := obs.StartOnTrack(fmt.Sprintf("worker-%d", j+1), j+1)
			defer wsp.End()
			for i := range idx {
				if ctx.Err() != nil {
					continue
				}
				out[i], errs[i] = analyzeSpanned(ws[i], cfg, wsp)
				if errs[i] == nil {
					obsSweepUnits.Add(1)
				}
			}
		}(j)
	}
feed:
	for i := range ws {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AnalyzeAll runs the pipeline over every registered workload with the
// default degree of parallelism (GOMAXPROCS).
//
// Deprecated: use AnalyzeAllCtx, which adds cancellation.
func AnalyzeAll(cfg Config) ([]*Analysis, error) {
	return AnalyzeAllCtx(context.Background(), cfg, Options{})
}

// AnalyzeAllJobs runs the pipeline over every registered workload on a
// bounded worker pool of `jobs` goroutines.
//
// Deprecated: use AnalyzeAllCtx, which subsumes the jobs parameter via
// Options and adds cancellation.
func AnalyzeAllJobs(cfg Config, jobs int) ([]*Analysis, error) {
	return AnalyzeAllCtx(context.Background(), cfg, Options{Jobs: jobs})
}

// HottestBraid returns the top-ranked braid, or nil.
func (a *Analysis) HottestBraid() *region.Braid {
	if len(a.Braids) == 0 {
		return nil
	}
	return a.Braids[0]
}

// PathFrame builds the software frame for one of the profile's paths.
func (a *Analysis) PathFrame(rank int) (*frame.Frame, error) {
	paths := a.Profile.Paths
	if rank < 0 || rank >= len(paths) {
		return nil, fmt.Errorf("core: %s has no path of rank %d", a.Workload.Name, rank)
	}
	r := region.FromPath(a.Profile.F, paths[rank])
	return frame.Build(a.AM, r, a.Config.Sim.Frame)
}

// Superblock builds the edge-profile baseline region seeded at the hottest
// path's entry (Section II-B comparison).
func (a *Analysis) Superblock() *region.Superblock {
	hot := a.Profile.HottestPath()
	if hot == nil {
		return nil
	}
	return region.BuildSuperblock(a.Profile, hot.Blocks[0], 0)
}

// Hyperblock builds the if-conversion baseline region at the hottest path's
// entry (Figure 5).
func (a *Analysis) Hyperblock() *region.Hyperblock {
	hot := a.Profile.HottestPath()
	if hot == nil {
		return nil
	}
	return region.BuildHyperblock(a.AM, a.Profile, hot.Blocks[0], a.Config.ColdFraction)
}
