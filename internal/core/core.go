// Package core ties the Needle pipeline together: profile a workload's hot
// function, enumerate and rank its Ball-Larus paths, characterize its
// control flow, form braids and baseline regions, construct software
// frames, and evaluate offload on the modeled system. It is the programmatic
// equivalent of the paper's Figure 1 flow and the entry point used by the
// command-line tools, the examples, and the experiment harness.
package core

import (
	"fmt"

	"needle/internal/frame"
	"needle/internal/hls"
	"needle/internal/passes"
	"needle/internal/profile"
	"needle/internal/region"
	"needle/internal/sim"
	"needle/internal/workloads"
)

// Config controls an analysis run.
type Config struct {
	// Sim holds the hardware model parameters (Table V defaults).
	Sim sim.Config
	// N overrides the workload problem size; 0 keeps the default.
	N int
	// TopPaths bounds how many ranked paths detailed reports include.
	TopPaths int
	// ColdFraction is the hyperblock cold-op threshold (Figure 5).
	ColdFraction float64
	// SelectTopK bounds the filter-and-rank candidate search.
	SelectTopK int
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Sim:          sim.DefaultConfig(),
		TopPaths:     5,
		ColdFraction: 0.1,
		SelectTopK:   3,
	}
}

// Analysis is the complete result of running the pipeline on one workload.
type Analysis struct {
	Workload *workloads.Workload
	Config   Config

	// Trace is the captured baseline execution (profile + host costs).
	Trace *sim.Trace
	// Profile is the ranked Ball-Larus path profile.
	Profile *profile.FunctionProfile
	// CFStats is the static control-flow characterization (Table I).
	CFStats region.ControlFlowStats
	// Braids holds every braid, ranked by weight (Table IV).
	Braids []*region.Braid

	// PathOracle and PathHistory evaluate the best BL-Path offload under
	// the oracle bound and the invocation history table (Figure 9).
	PathOracle  sim.Result
	PathHistory sim.Result
	// BraidChoice is the filter-and-rank braid selection (Figures 9, 10).
	BraidChoice sim.Candidate
	// HyperblockResult is the non-speculative predicated baseline of
	// Figure 2's design-space comparison.
	HyperblockResult sim.Result

	// HotBraidFrame is the software frame of the top braid, and HLS its
	// estimated FPGA synthesis (Section VI).
	HotBraidFrame *frame.Frame
	HLS           hls.Report
}

// Analyze runs the full pipeline on a workload. Kernels with calls are
// aggressively inlined first, exactly as the paper's LLVM front half does
// before profiling (Section II-A).
func Analyze(w *workloads.Workload, cfg Config) (*Analysis, error) {
	if cfg.TopPaths == 0 {
		cfg = DefaultConfig()
	}
	f, args, memory := w.Instance(cfg.N)
	f, err := passes.InlineAll(f, 0)
	if err != nil {
		return nil, fmt.Errorf("core: inlining %s: %w", w.Name, err)
	}
	tr, err := sim.Capture(f, args, memory, cfg.Sim)
	if err != nil {
		return nil, fmt.Errorf("core: capturing %s: %w", w.Name, err)
	}
	a := &Analysis{
		Workload: w,
		Config:   cfg,
		Trace:    tr,
		Profile:  tr.Profile,
		CFStats:  region.Characterize(f),
		Braids:   region.BuildBraids(tr.Profile, 0),
	}

	a.PathHistory, a.PathOracle, err = sim.SelectPath(tr, cfg.Sim, cfg.SelectTopK)
	if err != nil {
		return nil, fmt.Errorf("core: evaluating paths of %s: %w", w.Name, err)
	}
	a.BraidChoice, err = sim.SelectBraid(tr, cfg.Sim, cfg.SelectTopK)
	if err != nil {
		return nil, fmt.Errorf("core: evaluating braids of %s: %w", w.Name, err)
	}
	a.HyperblockResult, err = sim.EvaluateHyperblock(tr, cfg.Sim, cfg.ColdFraction)
	if err != nil {
		return nil, fmt.Errorf("core: evaluating hyperblock of %s: %w", w.Name, err)
	}

	if len(a.Braids) > 0 {
		fr, err := frame.Build(&a.Braids[0].Region, cfg.Sim.Frame)
		if err == nil {
			a.HotBraidFrame = fr
			a.HLS = hls.Synthesize(fr, hls.CycloneV())
		}
	}
	return a, nil
}

// AnalyzeAll runs the pipeline over every registered workload.
func AnalyzeAll(cfg Config) ([]*Analysis, error) {
	var out []*Analysis
	for _, w := range workloads.All() {
		a, err := Analyze(w, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// HottestBraid returns the top-ranked braid, or nil.
func (a *Analysis) HottestBraid() *region.Braid {
	if len(a.Braids) == 0 {
		return nil
	}
	return a.Braids[0]
}

// PathFrame builds the software frame for one of the profile's paths.
func (a *Analysis) PathFrame(rank int) (*frame.Frame, error) {
	paths := a.Profile.Paths
	if rank < 0 || rank >= len(paths) {
		return nil, fmt.Errorf("core: %s has no path of rank %d", a.Workload.Name, rank)
	}
	r := region.FromPath(a.Profile.F, paths[rank])
	return frame.Build(r, a.Config.Sim.Frame)
}

// Superblock builds the edge-profile baseline region seeded at the hottest
// path's entry (Section II-B comparison).
func (a *Analysis) Superblock() *region.Superblock {
	hot := a.Profile.HottestPath()
	if hot == nil {
		return nil
	}
	return region.BuildSuperblock(a.Profile, hot.Blocks[0], 0)
}

// Hyperblock builds the if-conversion baseline region at the hottest path's
// entry (Figure 5).
func (a *Analysis) Hyperblock() *region.Hyperblock {
	hot := a.Profile.HottestPath()
	if hot == nil {
		return nil
	}
	return region.BuildHyperblock(a.Profile, hot.Blocks[0], a.Config.ColdFraction)
}
