// Package core ties the Needle pipeline together: profile a workload's hot
// function, enumerate and rank its Ball-Larus paths, characterize its
// control flow, form braids and baseline regions, construct software
// frames, and evaluate offload on the modeled system. It is the programmatic
// equivalent of the paper's Figure 1 flow and the entry point used by the
// command-line tools, the examples, and the experiment harness.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"needle/internal/frame"
	"needle/internal/hls"
	"needle/internal/passes"
	"needle/internal/pm"
	"needle/internal/profile"
	"needle/internal/region"
	"needle/internal/sim"
	"needle/internal/workloads"
)

// Config controls an analysis run.
type Config struct {
	// Sim holds the hardware model parameters (Table V defaults).
	Sim sim.Config
	// N overrides the workload problem size; 0 keeps the default.
	N int
	// TopPaths bounds how many ranked paths detailed reports include.
	TopPaths int
	// ColdFraction is the hyperblock cold-op threshold (Figure 5).
	ColdFraction float64
	// SelectTopK bounds the filter-and-rank candidate search.
	SelectTopK int
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Sim:          sim.DefaultConfig(),
		TopPaths:     5,
		ColdFraction: 0.1,
		SelectTopK:   3,
	}
}

// Analysis is the complete result of running the pipeline on one workload.
type Analysis struct {
	Workload *workloads.Workload
	Config   Config

	// AM is the analysis manager that served this run; later frame or
	// region construction against the analyzed function should reuse it.
	AM *pm.Manager

	// Trace is the captured baseline execution (profile + host costs).
	Trace *sim.Trace
	// Profile is the ranked Ball-Larus path profile.
	Profile *profile.FunctionProfile
	// CFStats is the static control-flow characterization (Table I).
	CFStats region.ControlFlowStats
	// Braids holds every braid, ranked by weight (Table IV).
	Braids []*region.Braid

	// PathOracle and PathHistory evaluate the best BL-Path offload under
	// the oracle bound and the invocation history table (Figure 9).
	PathOracle  sim.Result
	PathHistory sim.Result
	// BraidChoice is the filter-and-rank braid selection (Figures 9, 10).
	BraidChoice sim.Candidate
	// HyperblockResult is the non-speculative predicated baseline of
	// Figure 2's design-space comparison.
	HyperblockResult sim.Result

	// HotBraidFrame is the software frame of the top braid, and HLS its
	// estimated FPGA synthesis (Section VI).
	HotBraidFrame *frame.Frame
	HLS           hls.Report
}

// Analyze runs the full pipeline on a workload. Kernels with calls are
// aggressively inlined first, exactly as the paper's LLVM front half does
// before profiling (Section II-A).
func Analyze(w *workloads.Workload, cfg Config) (*Analysis, error) {
	if cfg.TopPaths == 0 {
		cfg = DefaultConfig()
	}
	f, args, memory := w.Instance(cfg.N)
	// Each run owns a fresh analysis manager: results stay independent of
	// any shared mutable state, so runs can proceed in parallel.
	am := pm.NewManager()
	f, err := pm.NewPassManager(am).Add(passes.InlinePass(0)).Run(f)
	if err != nil {
		return nil, fmt.Errorf("core: inlining %s: %w", w.Name, err)
	}
	tr, err := sim.Capture(am, f, args, memory, cfg.Sim)
	if err != nil {
		return nil, fmt.Errorf("core: capturing %s: %w", w.Name, err)
	}
	a := &Analysis{
		Workload: w,
		Config:   cfg,
		AM:       am,
		Trace:    tr,
		Profile:  tr.Profile,
		CFStats:  region.Characterize(am, f),
		Braids:   region.BuildBraids(tr.Profile, 0),
	}

	a.PathHistory, a.PathOracle, err = sim.SelectPath(tr, cfg.Sim, cfg.SelectTopK)
	if err != nil {
		return nil, fmt.Errorf("core: evaluating paths of %s: %w", w.Name, err)
	}
	a.BraidChoice, err = sim.SelectBraid(tr, cfg.Sim, cfg.SelectTopK)
	if err != nil {
		return nil, fmt.Errorf("core: evaluating braids of %s: %w", w.Name, err)
	}
	a.HyperblockResult, err = sim.EvaluateHyperblock(tr, cfg.Sim, cfg.ColdFraction)
	if err != nil {
		return nil, fmt.Errorf("core: evaluating hyperblock of %s: %w", w.Name, err)
	}

	if len(a.Braids) > 0 {
		fr, err := frame.Build(am, &a.Braids[0].Region, cfg.Sim.Frame)
		if err == nil {
			a.HotBraidFrame = fr
			a.HLS = hls.Synthesize(fr, hls.CycloneV())
		}
	}
	return a, nil
}

// AnalyzeAll runs the pipeline over every registered workload with the
// default degree of parallelism (GOMAXPROCS).
func AnalyzeAll(cfg Config) ([]*Analysis, error) {
	return AnalyzeAllJobs(cfg, 0)
}

// AnalyzeAllJobs runs the pipeline over every registered workload on a
// bounded worker pool of `jobs` goroutines (GOMAXPROCS when jobs <= 0,
// serial when jobs == 1). Each workload's analysis owns its manager and
// shares no mutable state with the others, so the result slice is in
// registration order and identical to a serial run; on failure the error
// of the earliest-registered failing workload is returned.
func AnalyzeAllJobs(cfg Config, jobs int) ([]*Analysis, error) {
	ws := workloads.All()
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(ws) {
		jobs = len(ws)
	}
	out := make([]*Analysis, len(ws))
	errs := make([]error, len(ws))
	if jobs <= 1 {
		for i, w := range ws {
			a, err := Analyze(w, cfg)
			if err != nil {
				return nil, err
			}
			out[i] = a
		}
		return out, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = Analyze(ws[i], cfg)
			}
		}()
	}
	for i := range ws {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// HottestBraid returns the top-ranked braid, or nil.
func (a *Analysis) HottestBraid() *region.Braid {
	if len(a.Braids) == 0 {
		return nil
	}
	return a.Braids[0]
}

// PathFrame builds the software frame for one of the profile's paths.
func (a *Analysis) PathFrame(rank int) (*frame.Frame, error) {
	paths := a.Profile.Paths
	if rank < 0 || rank >= len(paths) {
		return nil, fmt.Errorf("core: %s has no path of rank %d", a.Workload.Name, rank)
	}
	r := region.FromPath(a.Profile.F, paths[rank])
	return frame.Build(a.AM, r, a.Config.Sim.Frame)
}

// Superblock builds the edge-profile baseline region seeded at the hottest
// path's entry (Section II-B comparison).
func (a *Analysis) Superblock() *region.Superblock {
	hot := a.Profile.HottestPath()
	if hot == nil {
		return nil
	}
	return region.BuildSuperblock(a.Profile, hot.Blocks[0], 0)
}

// Hyperblock builds the if-conversion baseline region at the hottest path's
// entry (Figure 5).
func (a *Analysis) Hyperblock() *region.Hyperblock {
	hot := a.Profile.HottestPath()
	if hot == nil {
		return nil
	}
	return region.BuildHyperblock(a.AM, a.Profile, hot.Blocks[0], a.Config.ColdFraction)
}
