// The consolidated core entry point. Analyzer replaces the accreted zoo of
// package-level functions (Analyze, AnalyzeWith, AnalyzeWithStore,
// AnalyzeAllCtx, and the deleted AnalyzeAll/AnalyzeAllJobs) with one
// configured value: construct it once with New and the functional options,
// then Run single workloads or RunAll sweeps against it. The old names
// survive as thin wrappers in core.go; embedders — the CLI, the tables
// harness, and the needled daemon — hold an Analyzer.

package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"needle/internal/obs"
	"needle/internal/pipeline"
	"needle/internal/program"
	"needle/internal/workloads"
)

// Analyzer runs Needle analyses against one shared configuration: an
// optional artifact store, a sweep worker-pool bound, a progress sink, and
// an observability span to parent runs under. The zero value (New with no
// options) analyzes everything fresh with GOMAXPROCS sweep parallelism.
//
// An Analyzer is immutable after New and safe for concurrent use: the
// needled daemon serves every request through a single Analyzer over a
// shared warm store.
type Analyzer struct {
	store    pipeline.Store
	jobs     int
	progress ProgressFunc
	span     *obs.Span
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// New returns an Analyzer configured by the given options. Nil options are
// ignored, so callers can pass conditionally-built option values directly.
func New(opts ...Option) *Analyzer {
	az := &Analyzer{}
	for _, o := range opts {
		if o != nil {
			o(az)
		}
	}
	return az
}

// WithStore shares stage artifacts across every run of the Analyzer — and
// with any other Analyzer handed the same store. An in-memory
// pipeline.Cache shares within the process; a pipeline.DiskStore also
// warm-starts from artifacts a previous process persisted. A nil store
// computes everything fresh; results are byte-identical either way.
func WithStore(s pipeline.Store) Option {
	return func(az *Analyzer) { az.store = s }
}

// WithJobs bounds RunAll's worker pool: GOMAXPROCS when n <= 0, serial when
// n == 1. Run ignores it.
func WithJobs(n int) Option {
	return func(az *Analyzer) { az.jobs = n }
}

// WithProgress registers a callback RunAll invokes once per workload as its
// analysis completes (in completion order, which under a parallel pool is
// not registration order). Calls are serialized — the callback never runs
// concurrently with itself — so it may write to a stream without locking;
// the needled daemon's NDJSON sweep endpoint is exactly that.
func WithProgress(fn ProgressFunc) Option {
	return func(az *Analyzer) { az.progress = fn }
}

// WithObsSpan parents every run's observability spans under sp instead of
// recording root spans on the Default registry. Because child spans inherit
// the parent's registry, handing a span from a private enabled
// obs.Registry scopes the entire run's timeline to that registry — the
// daemon uses this for per-request Chrome traces that don't interleave with
// other tenants' requests.
func WithObsSpan(sp *obs.Span) Option {
	return func(az *Analyzer) { az.span = sp }
}

// Progress reports one workload analysis completed by RunAll.
type Progress struct {
	// Workload is the analyzed workload; Index is its registration-order
	// position in workloads.All().
	Workload *workloads.Workload
	Index    int
	// Done counts analyses completed so far, this one included; Total is
	// the sweep size.
	Done  int
	Total int
	// Analysis is the completed analysis, nil when Err is non-nil.
	Analysis *Analysis
	Err      error
}

// ProgressFunc consumes RunAll progress events.
type ProgressFunc func(Progress)

// Run executes the full pipeline on one program: aggressive inlining of
// call-bearing kernels (Section II-A), profiling, braid/path selection,
// frame construction, and every registered target backend. The program can
// come from anywhere — the workload registry (see RunWorkload) or
// program.Load over user source. Zero-valued Config fields are filled from
// DefaultConfig field by field. Cancelling ctx stops the run between
// pipeline stages and returns ctx.Err(); a cancelled run never memoizes
// its interruption in the store.
func (az *Analyzer) Run(ctx context.Context, p *program.Program, cfg Config) (*Analysis, error) {
	return az.run(ctx, p, cfg, az.span)
}

// RunWorkload materializes a registered workload at the config's problem
// size (cfg.N, 0 selecting the workload default) and Runs it. The returned
// Analysis carries the registry entry in Workload.
func (az *Analyzer) RunWorkload(ctx context.Context, w *workloads.Workload, cfg Config) (*Analysis, error) {
	return az.runWorkload(ctx, w, cfg, az.span)
}

// run is Run parented under an explicit span (the sweep passes each
// worker's span so per-program timelines land on the worker's lane).
func (az *Analyzer) run(ctx context.Context, p *program.Program, cfg Config, parent *obs.Span) (*Analysis, error) {
	obsAnalyses.Add(1)
	arts, err := pipeline.Run(p, cfg, pipeline.RunOptions{Parent: parent, Store: az.store, Ctx: ctx})
	if err != nil {
		return nil, err
	}
	return fromArtifacts(arts)
}

func (az *Analyzer) runWorkload(ctx context.Context, w *workloads.Workload, cfg Config, parent *obs.Span) (*Analysis, error) {
	p, err := w.Program(cfg.N)
	if err != nil {
		return nil, err
	}
	a, err := az.run(ctx, p, cfg, parent)
	if err != nil {
		return nil, err
	}
	a.Workload = w
	return a, nil
}

// RunAll runs the pipeline over every registered workload on the bounded
// worker pool. Each workload's analysis owns its manager and shares no
// mutable state with the others (beyond store-shared read-only artifacts),
// so the result slice is in registration order and identical to a serial
// run; on failure the error of the earliest-registered failing workload is
// returned.
//
// Cancelling ctx stops the sweep promptly — between workloads and between
// the stages of any analysis in flight — and returns ctx.Err().
func (az *Analyzer) RunAll(ctx context.Context, cfg Config) ([]*Analysis, error) {
	ws := workloads.All()
	jobs := az.jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(ws) {
		jobs = len(ws)
	}
	root := az.span.ChildOnTrack("sweep", 0).
		SetArg("workloads", len(ws)).SetArg("jobs", jobs)
	defer root.End()

	var (
		pmu  sync.Mutex
		done int
	)
	report := func(i int, a *Analysis, err error) {
		if az.progress == nil {
			return
		}
		pmu.Lock()
		defer pmu.Unlock()
		done++
		az.progress(Progress{Workload: ws[i], Index: i, Done: done, Total: len(ws), Analysis: a, Err: err})
	}

	out := make([]*Analysis, len(ws))
	errs := make([]error, len(ws))
	if jobs <= 1 {
		for i, w := range ws {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			a, err := az.runWorkload(ctx, w, cfg, root)
			report(i, a, err)
			if err != nil {
				return nil, err
			}
			obsSweepUnits.Add(1)
			out[i] = a
		}
		return out, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			// One span per worker on its own track: the exported timeline
			// shows each worker's utilization as one lane.
			wsp := root.ChildOnTrack(fmt.Sprintf("worker-%d", j+1), j+1)
			defer wsp.End()
			for i := range idx {
				if ctx.Err() != nil {
					continue
				}
				out[i], errs[i] = az.runWorkload(ctx, ws[i], cfg, wsp)
				report(i, out[i], errs[i])
				if errs[i] == nil {
					obsSweepUnits.Add(1)
				}
			}
		}(j)
	}
feed:
	for i := range ws {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
