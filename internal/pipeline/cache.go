package pipeline

import (
	"sync"

	"needle/internal/obs"
)

// Observability counters (no-ops until obs.Enable): stage-artifact cache
// behaviour across every Cache in the process.
var (
	obsCacheHits   = obs.GetCounter("pipeline.cache.hits")
	obsCacheMisses = obs.GetCounter("pipeline.cache.misses")
)

// Cache shares cacheable stage artifacts across pipeline runs. Artifacts
// are keyed by (workload, cumulative upstream-config fingerprint), so runs
// that differ only in downstream knobs — predictor history bits, CGRA
// parameters, selection bounds — reuse the expensive Inline/Profile/Select
// artifacts instead of recomputing them.
//
// A Cache is safe for concurrent use; concurrent runs that miss on the
// same key compute the artifact once (the laggards block and share the
// result). Stage errors are cached too, so a deterministic failure is
// reported identically on reuse. The zero value is not usable; call
// NewCache.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	stats   map[string]*CacheStats
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

// CacheStats counts one stage's cache behaviour.
type CacheStats struct {
	Hits   int64
	Misses int64
}

// NewCache returns an empty artifact cache.
func NewCache() *Cache {
	return &Cache{
		entries: make(map[string]*cacheEntry),
		stats:   make(map[string]*CacheStats),
	}
}

// do returns the cached artifact for key, computing it with f on first
// use. hit reports whether the artifact (or its error) already existed —
// a concurrent first computation counts as a hit for the waiters.
func (c *Cache) do(stage, key string, f func() (any, error)) (val any, err error, hit bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	st := c.stats[stage]
	if st == nil {
		st = &CacheStats{}
		c.stats[stage] = st
	}
	if ok {
		st.Hits++
	} else {
		st.Misses++
	}
	c.mu.Unlock()
	if ok {
		obsCacheHits.Add(1)
	} else {
		obsCacheMisses.Add(1)
	}
	e.once.Do(func() { e.val, e.err = f() })
	return e.val, e.err, ok
}

// Stats returns a copy of the per-stage hit/miss counts, keyed by stage
// name.
func (c *Cache) Stats() map[string]CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]CacheStats, len(c.stats))
	for k, v := range c.stats {
		out[k] = *v
	}
	return out
}

// Len returns the number of cached stage artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
