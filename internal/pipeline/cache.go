package pipeline

import (
	"context"
	"errors"
	"sync"

	"needle/internal/obs"
)

// Observability counters (no-ops until obs.Enable): stage-artifact cache
// behaviour across every Cache in the process, in aggregate and per stage
// (pipeline.cache.<stage>.hits / .misses).
var (
	obsCacheHits   = obs.GetCounter("pipeline.cache.hits")
	obsCacheMisses = obs.GetCounter("pipeline.cache.misses")

	obsStageCache = func() map[string][2]*obs.Counter {
		m := make(map[string][2]*obs.Counter, len(stages))
		for _, name := range StageNames() {
			m[name] = [2]*obs.Counter{
				obs.GetCounter("pipeline.cache." + name + ".hits"),
				obs.GetCounter("pipeline.cache." + name + ".misses"),
			}
		}
		return m
	}()
)

// Cache shares cacheable stage artifacts across pipeline runs. Artifacts
// are keyed by (workload, cumulative upstream-config fingerprint), so runs
// that differ only in downstream knobs — predictor history bits, CGRA
// parameters, selection bounds — reuse the expensive Inline/Profile/Select
// artifacts instead of recomputing them.
//
// A Cache is safe for concurrent use; concurrent runs that miss on the
// same key compute the artifact once (the laggards block and share the
// result). Stage errors are cached too, so a deterministic failure is
// reported identically on reuse — except context cancellation errors
// (context.Canceled, context.DeadlineExceeded), which describe the
// interrupted run rather than the artifact and are never memoized: a ^C'd
// stage does not poison its key for later runs. The zero value is not
// usable; call NewCache.
//
// Cache is the in-memory tier of the Store interface; NewDiskStore wraps
// one with a persistent content-addressed tier.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	stats   map[string]*CacheStats
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

// CacheStats counts one stage's cache behaviour.
type CacheStats struct {
	Hits   int64
	Misses int64
	// DiskHits counts memory-tier misses that were served by a persistent
	// disk tier instead of recomputation (always 0 for a plain Cache).
	DiskHits int64
	// Evictions counts on-disk artifacts evicted under the disk tier's
	// size cap (always 0 for a plain Cache).
	Evictions int64
}

// NewCache returns an empty artifact cache.
func NewCache() *Cache {
	return &Cache{
		entries: make(map[string]*cacheEntry),
		stats:   make(map[string]*CacheStats),
	}
}

// Do implements Store: it serves st's artifact from memory, computing it
// once per key.
func (c *Cache) Do(st *Stage, _ *Artifacts, key string, compute func() (any, error)) (any, error, bool) {
	return c.do(st.Name, key, compute)
}

// do returns the cached artifact for key, computing it with f on first
// use. hit reports whether the artifact (or its error) already existed —
// a concurrent first computation counts as a hit for the waiters.
func (c *Cache) do(stage, key string, f func() (any, error)) (val any, err error, hit bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	st := c.stats[stage]
	if st == nil {
		st = &CacheStats{}
		c.stats[stage] = st
	}
	if ok {
		st.Hits++
	} else {
		st.Misses++
	}
	c.mu.Unlock()
	if sc, found := obsStageCache[stage]; found {
		if ok {
			sc[0].Add(1)
		} else {
			sc[1].Add(1)
		}
	}
	if ok {
		obsCacheHits.Add(1)
	} else {
		obsCacheMisses.Add(1)
	}
	e.once.Do(func() { e.val, e.err = f() })
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		// Cancellation describes this run, not the artifact: drop the entry
		// so a later, uncancelled run recomputes instead of inheriting the
		// interruption forever.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.val, e.err, ok
}

// Stats returns a copy of the per-stage hit/miss counts, keyed by stage
// name.
func (c *Cache) Stats() map[string]CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]CacheStats, len(c.stats))
	for k, v := range c.stats {
		out[k] = *v
	}
	return out
}

// Len returns the number of cached stage artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
