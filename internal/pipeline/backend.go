package pipeline

import (
	"fmt"
	"sync"
)

// Report is the typed result of one target backend's evaluation. Concrete
// report types live next to their backends (internal/target); consumers
// retrieve them with Artifacts.Report and a type assertion.
type Report interface {
	// BackendName echoes the producing backend's Name.
	BackendName() string
}

// Backend is a pluggable evaluation target. The Target stage calls every
// registered backend against the run's artifacts; sim, cgra, hls, and
// energy are the built-in implementations (internal/target), and new
// accelerator models plug in by registering here — the pipeline itself
// never changes.
//
// Evaluate must treat the artifacts as read-only: with a Cache in play the
// upstream artifacts are shared across runs and goroutines.
type Backend interface {
	Name() string
	Evaluate(a *Artifacts) (Report, error)
}

var registry struct {
	mu       sync.RWMutex
	backends []Backend
}

// Register adds a backend to the Target stage's evaluation set. Backends
// run in registration order; registering two backends with the same name
// panics (it is a wiring bug, like a duplicate flag registration).
func Register(b Backend) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, x := range registry.backends {
		if x.Name() == b.Name() {
			panic(fmt.Sprintf("pipeline: backend %q registered twice", b.Name()))
		}
	}
	registry.backends = append(registry.backends, b)
}

// Backends returns the registered backends in registration order.
func Backends() []Backend {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return append([]Backend(nil), registry.backends...)
}
