// Stage artifact codecs: the encode/decode pair each cacheable stage
// declares so a DiskStore can persist its artifact. The split follows the
// pure-data / rehydratable-state decomposition:
//
//   - The serializable core of each artifact lives next to its type
//     (profile.Data, sim.TraceData, region.BraidData, frame.Data) and holds
//     no pointers into IR or analysis state.
//   - Function bodies travel as .nir text; the parser preserves canonical
//     r<N> register numbering and block order, so every downstream artifact
//     references registers by number and blocks/instructions by position.
//   - Decoding rehydrates attached state against the in-context upstream
//     artifacts (a.Inline.F, a.Inline.AM, a.Profile.Trace.Profile), so an
//     artifact decoded from disk plugs into upstream artifacts of any
//     provenance — memory-cached, disk-decoded, or freshly computed — and
//     the pipeline's output is byte-identical in all combinations.
//
// codecVersion participates in every artifact's content address and header;
// bump it whenever any payload layout or any encoding-relevant IR semantics
// change, and old entries silently become misses.
package pipeline

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"needle/internal/frame"
	"needle/internal/ir"
	"needle/internal/pm"
	"needle/internal/region"
	"needle/internal/sim"
)

// codecVersion versions every on-disk artifact payload.
const codecVersion = 1

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// inlinePayload carries the Inline artifact: the inlined function as .nir
// text plus the workload's pristine initial state.
type inlinePayload struct {
	NIR    string
	Args   []uint64
	Memory []uint64
}

func inlineEncode(_ *Artifacts, out any) ([]byte, error) {
	art := out.(*InlineArtifact)
	text := ir.PrintModule(ir.ModuleOf(art.F))
	// Self-check the positional foundation: downstream artifacts reference
	// this function's registers by number and blocks by index, so refuse to
	// persist any function whose printed form does not round-trip exactly.
	m, err := ir.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("pipeline: inline artifact does not re-parse: %w", err)
	}
	if re := ir.PrintModule(m); re != text {
		return nil, errors.New("pipeline: inline artifact round-trip is not an identity")
	}
	return gobEncode(inlinePayload{NIR: text, Args: art.Args, Memory: art.Memory})
}

func inlineDecode(a *Artifacts, data []byte) (any, error) {
	var p inlinePayload
	if err := gobDecode(data, &p); err != nil {
		return nil, err
	}
	m, err := ir.Parse(p.NIR)
	if err != nil {
		return nil, err
	}
	if len(m.Funcs) == 0 {
		return nil, errors.New("pipeline: inline artifact has no functions")
	}
	// ModuleOf printed the inlined function first; Parse verified all of
	// them. Rehydrate a fresh analysis manager parented on this run's span.
	am := pm.NewManager()
	am.SetSpan(a.Span)
	return &InlineArtifact{AM: am, F: m.Funcs[0], Args: p.Args, Memory: p.Memory}, nil
}

// optPayload carries the Opt artifact: the optimized function as .nir text
// plus the removal summary.
type optPayload struct {
	NIR                       string
	InstrsBefore, InstrsAfter int
	BlocksBefore, BlocksAfter int
}

func optEncode(_ *Artifacts, out any) ([]byte, error) {
	art := out.(*OptArtifact)
	text := ir.PrintModule(ir.ModuleOf(art.F))
	// Same positional self-check as the inline artifact: downstream
	// artifacts reference the optimized function by register number and
	// block index.
	m, err := ir.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("pipeline: opt artifact does not re-parse: %w", err)
	}
	if re := ir.PrintModule(m); re != text {
		return nil, errors.New("pipeline: opt artifact round-trip is not an identity")
	}
	return gobEncode(optPayload{
		NIR:          text,
		InstrsBefore: art.InstrsBefore, InstrsAfter: art.InstrsAfter,
		BlocksBefore: art.BlocksBefore, BlocksAfter: art.BlocksAfter,
	})
}

func optDecode(a *Artifacts, data []byte) (any, error) {
	var p optPayload
	if err := gobDecode(data, &p); err != nil {
		return nil, err
	}
	m, err := ir.Parse(p.NIR)
	if err != nil {
		return nil, err
	}
	if len(m.Funcs) == 0 {
		return nil, errors.New("pipeline: opt artifact has no functions")
	}
	am := pm.NewManager()
	am.SetSpan(a.Span)
	return &OptArtifact{
		AM: am, F: m.Funcs[0],
		InstrsBefore: p.InstrsBefore, InstrsAfter: p.InstrsAfter,
		BlocksBefore: p.BlocksBefore, BlocksAfter: p.BlocksAfter,
	}, nil
}

func profileEncode(_ *Artifacts, out any) ([]byte, error) {
	return gobEncode(out.(*ProfileArtifact).Trace.Data())
}

func profileDecode(a *Artifacts, data []byte) (any, error) {
	var d sim.TraceData
	if err := gobDecode(data, &d); err != nil {
		return nil, err
	}
	// Attach to the function the profile was captured over: the optimized
	// one when the Opt stage ran (its fingerprint is in this artifact's
	// key, so the pairing can never be stale).
	am, f := a.HotFunc()
	tr, err := sim.TraceFromData(am, f, &d)
	if err != nil {
		return nil, err
	}
	return &ProfileArtifact{Trace: tr}, nil
}

// selectPayload carries the Select artifact: the characterization verbatim
// (pure data already) and each braid as its merged-path IDs, in rank order.
type selectPayload struct {
	CFStats region.ControlFlowStats
	Braids  []region.BraidData
}

func selectEncode(_ *Artifacts, out any) ([]byte, error) {
	art := out.(*SelectArtifact)
	p := selectPayload{CFStats: art.CFStats, Braids: make([]region.BraidData, len(art.Braids))}
	for i, br := range art.Braids {
		p.Braids[i] = br.Data()
	}
	return gobEncode(p)
}

func selectDecode(a *Artifacts, data []byte) (any, error) {
	var p selectPayload
	if err := gobDecode(data, &p); err != nil {
		return nil, err
	}
	art := &SelectArtifact{CFStats: p.CFStats, Braids: make([]*region.Braid, len(p.Braids))}
	// The stored order is the rank order BuildBraids produced; rebuild each
	// braid from its paths and keep that order rather than re-sorting.
	for i, bd := range p.Braids {
		br, err := region.BraidFromData(a.Profile.Trace.Profile, bd)
		if err != nil {
			return nil, err
		}
		art.Braids[i] = br
	}
	return art, nil
}

// framePayload carries the Frame artifact: the positional frame data when a
// frame was built, and the build error's message when it failed (rebuilt as
// a flat error, preserving the reported text byte for byte).
type framePayload struct {
	Frame *frame.Data
	Err   string
}

func frameEncode(_ *Artifacts, out any) ([]byte, error) {
	art := out.(*FrameArtifact)
	p := framePayload{}
	if art.HotBraidFrame != nil {
		p.Frame = art.HotBraidFrame.Data()
	}
	if art.FrameErr != nil {
		p.Err = art.FrameErr.Error()
	}
	return gobEncode(p)
}

func frameDecode(a *Artifacts, data []byte) (any, error) {
	var p framePayload
	if err := gobDecode(data, &p); err != nil {
		return nil, err
	}
	art := &FrameArtifact{}
	if p.Err != "" {
		art.FrameErr = errors.New(p.Err)
	}
	if p.Frame != nil {
		if len(a.Select.Braids) == 0 {
			return nil, errors.New("pipeline: frame artifact with no braid to attach to")
		}
		fr, err := frame.FromData(&a.Select.Braids[0].Region, p.Frame)
		if err != nil {
			return nil, err
		}
		art.HotBraidFrame = fr
	}
	return art, nil
}
