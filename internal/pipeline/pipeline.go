// Package pipeline is the staged decomposition of the Needle flow (the
// paper's Figure 1): Inline → Profile → Select → Frame → Target. Each stage
// is a pure (artifacts, config) → artifacts step with a typed artifact
// struct, and each declares a fingerprint over exactly the Config fields it
// reads. That split buys two things the old monolithic core.Analyze could
// not offer:
//
//   - Pluggable targets: the Target stage evaluates every registered
//     Backend (internal/target provides sim, cgra, hls, and energy), so new
//     accelerator models plug in without touching the pipeline.
//   - Cross-config artifact reuse: a Cache keys each stage's artifact by
//     (program key, cumulative upstream fingerprint), so a sweep over
//     downstream knobs — predictor history bits, guard placement, CGRA
//     parameters — shares the expensive Inline/Profile/Select artifacts
//     instead of re-profiling the program per configuration. The program
//     key embeds a content digest of the IR and initial state, so a
//     persistent DiskStore never serves a stale artifact after a
//     same-named program's body changes across binary versions.
//
// core.Analyze and friends remain as thin compatibility wrappers over Run
// and produce byte-identical output.
package pipeline

import (
	"context"
	"fmt"

	"needle/internal/frame"
	"needle/internal/ir"
	"needle/internal/obs"
	"needle/internal/passes"
	"needle/internal/pm"
	"needle/internal/program"
	"needle/internal/region"
	"needle/internal/sim"
)

// Observability counters (no-ops until obs.Enable).
var (
	obsRuns       = obs.GetCounter("pipeline.runs")
	obsFrameErrs  = obs.GetCounter("pipeline.frame.errors")
	obsOptRuns    = obs.GetCounter("pipeline.opt.runs")
	obsOptRemoved = obs.GetCounter("pipeline.opt.removed")
)

// Config controls an analysis run. It is the same type the core package
// exposes as core.Config (a type alias), so callers can move between the
// staged API and the compatibility wrappers freely.
type Config struct {
	// Sim holds the hardware model parameters (Table V defaults).
	Sim sim.Config
	// N overrides the workload problem size; 0 keeps the default.
	N int
	// TopPaths bounds how many ranked paths detailed reports include.
	TopPaths int
	// ColdFraction is the hyperblock cold-op threshold (Figure 5).
	ColdFraction float64
	// SelectTopK bounds the filter-and-rank candidate search.
	SelectTopK int
	// Opt enables the opt-in optimization pre-pass (`needle -O`): SCCP
	// folding plus dead-code and unreachable-block elimination between the
	// Inline and Profile stages. Default off — the baseline profiles the
	// program exactly as written. The flag is part of every downstream
	// stage's fingerprint, so optimized and unoptimized artifacts never
	// cross-hit a store.
	Opt bool
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Sim:          sim.DefaultConfig(),
		TopPaths:     5,
		ColdFraction: 0.1,
		SelectTopK:   3,
	}
}

// WithDefaults normalizes a config field by field: every zero-valued field
// takes its DefaultConfig value, and every field the caller set survives. A
// partially-filled Config (say, a custom Sim with TopPaths left zero) is
// therefore honored rather than silently replaced wholesale — N is the one
// exception, where zero legitimately means "the workload's default size".
//
// Run normalizes before fingerprinting, so a zero Config and an explicit
// DefaultConfig() hit the same cache entries.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.Sim == (sim.Config{}) {
		c.Sim = d.Sim
	}
	if c.TopPaths == 0 {
		c.TopPaths = d.TopPaths
	}
	if c.ColdFraction == 0 {
		c.ColdFraction = d.ColdFraction
	}
	if c.SelectTopK == 0 {
		c.SelectTopK = d.SelectTopK
	}
	return c
}

// InlineArtifact is the Inline stage's output: the program instance with
// its hot function aggressively inlined (Section II-A), plus the analysis
// manager that owns every cached analysis of that function. Args and Memory
// are the pristine initial state; stages that execute the function copy
// them first, so the artifact can be shared across runs.
type InlineArtifact struct {
	AM     *pm.Manager
	F      *ir.Function
	Args   []uint64
	Memory []uint64
}

// OptArtifact is the Opt stage's output: the inlined function after the
// `-O` pipeline (SCCP folding, DCE, CFG simplification to a fixed point),
// with its own analysis manager. Produced only when Config.Opt is set.
type OptArtifact struct {
	AM *pm.Manager
	F  *ir.Function
	// InstrsBefore/InstrsAfter and BlocksBefore/BlocksAfter summarize what
	// the optimizer removed, for reports and spans.
	InstrsBefore, InstrsAfter int
	BlocksBefore, BlocksAfter int
}

// ProfileArtifact is the Profile stage's output: the captured baseline
// execution (Ball-Larus path profile, per-occurrence cycle attribution,
// branch histories, host energy).
type ProfileArtifact struct {
	Trace *sim.Trace
}

// SelectArtifact is the Select stage's output: the static control-flow
// characterization (Table I) and every braid ranked by weight (Table IV).
type SelectArtifact struct {
	CFStats region.ControlFlowStats
	Braids  []*region.Braid
}

// FrameArtifact is the Frame stage's output: the software frame of the top
// braid. HotBraidFrame is nil when the program formed no braids or when
// frame construction failed; FrameErr distinguishes the two (it records the
// frame.Build error, and is nil when no build was attempted or the build
// succeeded).
type FrameArtifact struct {
	HotBraidFrame *frame.Frame
	FrameErr      error
}

// TargetArtifact is the Target stage's output: one typed Report per
// registered backend, in registration order.
type TargetArtifact struct {
	Reports []Report
}

// Artifacts is the artifact context threaded through the stages: the run's
// identity (program + normalized config), its observability span, and one
// typed artifact per completed stage. When a Cache is in use, upstream
// artifacts may be shared with other runs — stages treat them as read-only.
type Artifacts struct {
	Program *program.Program
	Config  Config
	// Span is the run's observability span; stages and backends parent
	// their spans under it. The run's pm.Manager travels in Inline.AM.
	Span *obs.Span

	Inline  *InlineArtifact
	Opt     *OptArtifact
	Profile *ProfileArtifact
	Select  *SelectArtifact
	Frame   *FrameArtifact
	Target  *TargetArtifact
}

// HotFunc returns the function downstream stages profile and select over,
// with the analysis manager that owns its cached analyses: the optimized
// function when the Opt stage ran, the inlined function otherwise.
func (a *Artifacts) HotFunc() (*pm.Manager, *ir.Function) {
	if a.Opt != nil {
		return a.Opt.AM, a.Opt.F
	}
	return a.Inline.AM, a.Inline.F
}

// Report returns the named backend's report, or nil if the Target stage has
// not run or the backend is not registered.
func (a *Artifacts) Report(name string) Report {
	if a.Target == nil {
		return nil
	}
	for _, r := range a.Target.Reports {
		if r.BackendName() == name {
			return r
		}
	}
	return nil
}

// Stage is one named step of the pipeline.
type Stage struct {
	// Name identifies the stage ("inline", "profile", "select", "frame",
	// "target") in spans, cache statistics, and documentation.
	Name string
	// Fingerprint serializes exactly the Config fields this stage reads.
	// A stage's cache key is the program key plus the cumulative
	// fingerprints of itself and every upstream stage, so two configs that
	// agree on the upstream knobs share upstream artifacts.
	Fingerprint func(Config) string
	// cacheable marks stages whose artifact a Cache may share across runs.
	// The Target stage always evaluates fresh: it is the downstream end of
	// every sweep and memoizing it would hide exactly the work ablations
	// measure.
	cacheable bool
	// run computes the stage artifact from the upstream artifacts. It must
	// not mutate them. sp is the stage's span.
	run func(a *Artifacts, sp *obs.Span) (any, error)
	// apply installs the (possibly cached) artifact into the context.
	apply func(a *Artifacts, out any)
	// encode/decode are the stage's persistent codec (codec.go): encode
	// serializes the artifact's pure data; decode rehydrates attached state
	// against the in-context upstream artifacts. Stages without a codec
	// (Target, which is never cached) are served by the memory tier only.
	encode func(a *Artifacts, out any) ([]byte, error)
	decode func(a *Artifacts, data []byte) (any, error)
	// skip, when non-nil and true for a config, elides the stage entirely
	// for that run (no span, no cache entry, no artifact). The stage's
	// fingerprint still participates in every downstream cache key, so
	// skipped and unskipped runs can never share downstream artifacts.
	skip func(Config) bool
}

// stages is the pipeline in execution order.
var stages = []Stage{inlineStage, optStage, profileStage, selectStage, frameStage, targetStage}

// StageNames lists the pipeline's stages in execution order.
func StageNames() []string {
	names := make([]string, len(stages))
	for i, st := range stages {
		names[i] = st.Name
	}
	return names
}

// stageKeys returns the cumulative cache key of every stage for a normalized
// config: the program key ("<name>@<content digest>") plus the fingerprints
// of the stage and everything upstream of it, in execution order. Keying on
// the digest rather than the bare name is what makes persisted artifacts
// safe across binary versions: two different bodies behind one name can
// never serve each other's artifacts, and the name stays in the key so
// entries remain debuggable (and name-bearing cached errors never leak
// across same-content programs).
func stageKeys(p *program.Program, cfg Config) []string {
	keys := make([]string, len(stages))
	key := p.Key()
	for i := range stages {
		key += "|" + stages[i].Name + "{" + stages[i].Fingerprint(cfg) + "}"
		keys[i] = key
	}
	return keys
}

// Fingerprint returns the full cumulative fingerprint of a run: the program
// key plus every stage's config fingerprint, after the same normalization
// Run applies. Two runs with equal fingerprints produce byte-identical
// artifacts and summaries, so request-collapsing layers (the serve daemon's
// singleflight) key on it.
func Fingerprint(p *program.Program, cfg Config) string {
	keys := stageKeys(p, cfg.WithDefaults())
	return keys[len(keys)-1]
}

var inlineStage = Stage{
	Name: "inline",
	// N selects which instance a workload materializes as a Program, and it
	// is reported verbatim in summaries. The program digest already
	// separates different instances, but N=0 ("the default size") and an
	// explicit N=default produce the same Program with different summary
	// bytes — the fingerprint keeps them distinct for request-collapsing
	// layers that key on the full Fingerprint.
	Fingerprint: func(c Config) string { return fmt.Sprintf("n=%d", c.N) },
	cacheable:   true,
	run: func(a *Artifacts, sp *obs.Span) (any, error) {
		p := a.Program
		// The artifact owns a fresh analysis manager: every cached analysis
		// of the inlined function (dominators, liveness, execution plans)
		// is computed once and shared by every run that reuses the
		// artifact. The manager carries the creating run's span, parenting
		// the pass-manager and capture spans recorded below it.
		am := pm.NewManager()
		am.SetSpan(a.Span)
		f, err := pm.NewPassManager(am).Add(passes.InlinePass(0)).Run(p.F)
		if err != nil {
			return nil, fmt.Errorf("pipeline: inlining %s: %w", p.Name, err)
		}
		return &InlineArtifact{AM: am, F: f, Args: p.Args, Memory: p.Memory}, nil
	},
	apply:  func(a *Artifacts, out any) { a.Inline = out.(*InlineArtifact) },
	encode: inlineEncode,
	decode: inlineDecode,
}

var optStage = Stage{
	Name: "opt",
	// The flag itself is the whole fingerprint: with Opt off the stage is
	// skipped, and the "opt=false" key segment keeps unoptimized runs from
	// ever sharing downstream artifacts with optimized ones.
	Fingerprint: func(c Config) string { return fmt.Sprintf("opt=%t", c.Opt) },
	cacheable:   true,
	skip:        func(c Config) bool { return !c.Opt },
	run: func(a *Artifacts, sp *obs.Span) (any, error) {
		in := a.Inline
		am := pm.NewManager()
		am.SetSpan(a.Span)
		// Clone first: the inline artifact may be shared with other runs
		// (including unoptimized ones) through the store.
		clone := ir.CloneFunction(in.F)
		f, err := pm.NewPassManager(am).Add(passes.SCCPPasses()...).RunFixedPoint(clone)
		if err != nil {
			return nil, fmt.Errorf("pipeline: optimizing %s: %w", a.Program.Name, err)
		}
		if verr := ir.Verify(f); verr != nil {
			return nil, fmt.Errorf("pipeline: optimizer broke %s: %w", a.Program.Name, verr)
		}
		art := &OptArtifact{
			AM: am, F: f,
			InstrsBefore: in.F.NumInstrs(), InstrsAfter: f.NumInstrs(),
			BlocksBefore: len(in.F.Blocks), BlocksAfter: len(f.Blocks),
		}
		obsOptRuns.Add(1)
		obsOptRemoved.Add(int64(art.InstrsBefore - art.InstrsAfter))
		sp.SetArg("instrs", fmt.Sprintf("%d->%d", art.InstrsBefore, art.InstrsAfter)).
			SetArg("blocks", fmt.Sprintf("%d->%d", art.BlocksBefore, art.BlocksAfter))
		return art, nil
	},
	apply:  func(a *Artifacts, out any) { a.Opt = out.(*OptArtifact) },
	encode: optEncode,
	decode: optDecode,
}

var profileStage = Stage{
	Name: "profile",
	Fingerprint: func(c Config) string {
		// Capture reads the host model only: OOO core, cache hierarchy,
		// CPU energy constants, and the step bound. CGRA/frame/predictor
		// parameters are downstream knobs and must not fragment the key.
		return fmt.Sprintf("ooo=%+v mem=%+v cpu=%+v maxsteps=%d",
			c.Sim.OOO, c.Sim.Mem, c.Sim.CPU, c.Sim.MaxSteps)
	},
	cacheable: true,
	run: func(a *Artifacts, sp *obs.Span) (any, error) {
		in := a.Inline
		am, f := a.HotFunc()
		// Execution consumes the memory image; copy the pristine state so
		// the shared InlineArtifact stays reusable.
		args := append([]uint64(nil), in.Args...)
		memory := append([]uint64(nil), in.Memory...)
		tr, err := sim.Capture(am, f, args, memory, a.Config.Sim)
		if err != nil {
			return nil, fmt.Errorf("pipeline: capturing %s: %w", a.Program.Name, err)
		}
		return &ProfileArtifact{Trace: tr}, nil
	},
	apply:  func(a *Artifacts, out any) { a.Profile = out.(*ProfileArtifact) },
	encode: profileEncode,
	decode: profileDecode,
}

var selectStage = Stage{
	Name: "select",
	// Characterization and braid formation depend only on the profile.
	Fingerprint: func(Config) string { return "" },
	cacheable:   true,
	run: func(a *Artifacts, sp *obs.Span) (any, error) {
		csp := sp.Child("characterize")
		am, f := a.HotFunc()
		stats := region.Characterize(am, f)
		csp.End()
		bsp := sp.Child("braids")
		braids := region.BuildBraids(a.Profile.Trace.Profile, 0)
		bsp.End()
		return &SelectArtifact{CFStats: stats, Braids: braids}, nil
	},
	apply:  func(a *Artifacts, out any) { a.Select = out.(*SelectArtifact) },
	encode: selectEncode,
	decode: selectDecode,
}

var frameStage = Stage{
	Name:        "frame",
	Fingerprint: func(c Config) string { return fmt.Sprintf("opts=%+v", c.Sim.Frame) },
	cacheable:   true,
	run: func(a *Artifacts, sp *obs.Span) (any, error) {
		out := &FrameArtifact{}
		if len(a.Select.Braids) == 0 {
			return out, nil
		}
		am, _ := a.HotFunc()
		fr, err := frame.Build(am, &a.Select.Braids[0].Region, a.Config.Sim.Frame)
		if err != nil {
			// Frame construction failing for the hot braid is survivable —
			// the target evaluations run regardless — but it must not be
			// silent: record it for the caller (the FrameErr contract).
			out.FrameErr = fmt.Errorf("pipeline: framing hot braid of %s: %w", a.Program.Name, err)
			obsFrameErrs.Add(1)
			sp.SetArg("error", err.Error())
			return out, nil
		}
		out.HotBraidFrame = fr
		return out, nil
	},
	apply:  func(a *Artifacts, out any) { a.Frame = out.(*FrameArtifact) },
	encode: frameEncode,
	decode: frameDecode,
}

var targetStage = Stage{
	Name: "target",
	Fingerprint: func(c Config) string {
		return fmt.Sprintf("cgra=%+v cpu=%+v hist=%d topk=%d cold=%g top=%d",
			c.Sim.CGRA, c.Sim.CPU, c.Sim.HistBits, c.SelectTopK, c.ColdFraction, c.TopPaths)
	},
	cacheable: false,
	run: func(a *Artifacts, sp *obs.Span) (any, error) {
		bs := Backends()
		out := &TargetArtifact{Reports: make([]Report, 0, len(bs))}
		for _, b := range bs {
			bsp := sp.Child("target: " + b.Name())
			rep, err := b.Evaluate(a)
			bsp.End()
			if err != nil {
				return nil, fmt.Errorf("pipeline: target %s on %s: %w", b.Name(), a.Program.Name, err)
			}
			out.Reports = append(out.Reports, rep)
		}
		return out, nil
	},
	apply: func(a *Artifacts, out any) { a.Target = out.(*TargetArtifact) },
}

// RunOptions configures one pipeline run.
type RunOptions struct {
	// Parent is the observability span the run's span is parented under
	// (nil for a root span).
	Parent *obs.Span
	// Store shares cacheable stage artifacts across runs — an in-memory
	// Cache or a persistent DiskStore; nil computes everything fresh
	// (unless Cache is set).
	Store Store
	// Cache is the pre-Store way to share artifacts, kept for
	// compatibility; it is consulted only when Store is nil.
	Cache *Cache
	// Ctx cancels the run between stages: when it is non-nil and done, Run
	// returns ctx.Err() instead of starting the next stage. A stage already
	// in flight runs to completion (the same granularity the sweep's
	// cancellation has always had), and a cancellation never poisons the
	// artifact store — the ctx check happens outside Store.Do, and the
	// memory tier additionally refuses to memoize cancellation errors.
	Ctx context.Context
}

// store returns the effective artifact store: Store wins, then Cache, then
// nothing.
func (o RunOptions) store() Store {
	if o.Store != nil {
		return o.Store
	}
	if o.Cache != nil {
		return o.Cache
	}
	return nil
}

// Run executes the staged pipeline on one program. Zero-valued Config
// fields are filled from DefaultConfig field by field. With a Store, the
// Inline/Profile/Select/Frame artifacts are reused whenever the program key
// (name + content digest) and the cumulative upstream fingerprint match a
// prior run — from the memory tier, or (for a DiskStore) rehydrated from a
// previous process's persisted artifacts; the Target stage always evaluates
// fresh against the (possibly shared) upstream artifacts. Output is
// byte-identical whichever tier the artifacts come from. With a Ctx, the
// run stops between stages once the context is done and returns its error.
func Run(p *program.Program, cfg Config, opts RunOptions) (*Artifacts, error) {
	cfg = cfg.WithDefaults()
	sp := opts.Parent.Child("analyze " + p.Name)
	defer sp.End()
	obsRuns.Add(1)

	store := opts.store()
	a := &Artifacts{Program: p, Config: cfg, Span: sp}
	keys := stageKeys(p, cfg)
	for i := range stages {
		st := &stages[i]
		if st.skip != nil && st.skip(cfg) {
			continue
		}
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		key := keys[i]
		ssp := sp.Child(st.Name)
		var out any
		var err error
		if store != nil && st.cacheable {
			var hit bool
			out, err, hit = store.Do(st, a, key, func() (any, error) {
				return st.run(a, ssp)
			})
			ssp.SetArg("cached", hit)
		} else {
			out, err = st.run(a, ssp)
		}
		ssp.End()
		if err != nil {
			return nil, err
		}
		st.apply(a, out)
	}
	return a, nil
}
