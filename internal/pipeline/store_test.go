package pipeline

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"needle/internal/program"
	"needle/internal/workloads"
)

// testWorkload returns a small, fast program for store tests (470.lbm at
// the testConfig problem size).
func testWorkload(t *testing.T) *program.Program {
	t.Helper()
	w := workloads.ByName("470.lbm")
	if w == nil {
		t.Fatal("workload 470.lbm not registered")
	}
	p, err := w.Program(testConfig().N)
	if err != nil {
		t.Fatalf("program: %v", err)
	}
	return p
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.N = 400
	return cfg
}

// artifactSignature summarizes the observable outputs of a run for equality
// comparison across cache tiers.
func artifactSignature(a *Artifacts) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "f=%s blocks=%d regs=%d\n", a.Inline.F.Name, len(a.Inline.F.Blocks), a.Inline.F.NumRegs())
	tr := a.Profile.Trace
	fmt.Fprintf(&sb, "cycles=%d energy=%.6f occ=%d paths=%d tw=%d mix=%+v mem=%+v\n",
		tr.BaselineCycles, tr.BaselineEnergyPJ, len(tr.Occ), len(tr.Profile.Paths), tr.Profile.TotalWeight, tr.Mix, tr.CacheStats)
	for _, p := range tr.Profile.Paths {
		fmt.Fprintf(&sb, "path id=%d freq=%d ops=%d w=%d br=%d mem=%d blocks=%d\n",
			p.ID, p.Freq, p.Ops, p.Weight, p.Branches, p.MemOps, len(p.Blocks))
	}
	fmt.Fprintf(&sb, "cf=%+v braids=%d\n", a.Select.CFStats, len(a.Select.Braids))
	for _, br := range a.Select.Braids {
		fmt.Fprintf(&sb, "braid paths=%d blocks=%d guards=%d ifs=%d entry=%d exit=%d\n",
			len(br.Paths), len(br.Blocks), br.Guards, br.IFs, br.Entry.Index, br.Exit.Index)
	}
	if fr := a.Frame.HotBraidFrame; fr != nil {
		fmt.Fprintf(&sb, "frame ops=%d cp=%d guards=%d selects=%d cancelled=%d stores=%d undo=%d hoisted=%d livein=%v liveout=%v carried=%v unroll=%d opts=%+v\n",
			fr.NumOps(), fr.CriticalPath(), fr.Guards, fr.Selects, fr.Cancelled, fr.Stores, fr.UndoOps,
			fr.HoistedMemOps, fr.LiveIn, fr.LiveOut, fr.Carried, fr.Unroll, fr.BuildOptions())
		for i, op := range fr.Ops {
			fmt.Fprintf(&sb, "op %d %s deps=%v g=%v s=%v\n", i, op.Instr.Op, op.Deps, op.Guard, op.Select)
		}
	}
	if a.Frame.FrameErr != nil {
		fmt.Fprintf(&sb, "frameerr=%q\n", a.Frame.FrameErr.Error())
	}
	for _, rep := range a.Target.Reports {
		fmt.Fprintf(&sb, "report %s %+v\n", rep.BackendName(), rep)
	}
	return sb.String()
}

// TestDiskStoreWarmStartIdentical is the heart of the persistent-store
// contract: a second store opened on the same directory (a fresh process's
// view: empty memory tier) serves every cacheable stage from disk and the
// run's observable outputs are identical to the cold run's.
func TestDiskStoreWarmStartIdentical(t *testing.T) {
	dir := t.TempDir()
	w, cfg := testWorkload(t), testConfig()

	cold, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := Run(w, cfg, RunOptions{Store: cold})
	if err != nil {
		t.Fatal(err)
	}
	if n := cold.DiskLen(); n != 4 {
		t.Fatalf("cold run persisted %d artifacts, want 4", n)
	}

	warm, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Run(w, cfg, RunOptions{Store: warm})
	if err != nil {
		t.Fatal(err)
	}
	var diskHits int64
	for _, cs := range warm.Stats() {
		diskHits += cs.DiskHits
	}
	if diskHits != 4 {
		t.Fatalf("warm run had %d disk hits, want 4 (stats %+v)", diskHits, warm.Stats())
	}

	s1, s2 := artifactSignature(a1), artifactSignature(a2)
	if s1 != s2 {
		t.Errorf("warm-start run diverged from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", s1, s2)
	}

	// And both must match a storeless fresh run.
	a3, err := Run(w, cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s3 := artifactSignature(a3); s3 != s1 {
		t.Errorf("fresh run diverged from stored runs:\n--- fresh ---\n%s\n--- stored ---\n%s", s3, s1)
	}
}

// TestDiskStoreCorruptEntriesAreMisses flips bytes in every persisted
// artifact and expects the next run to silently recompute — same outputs,
// zero disk hits.
func TestDiskStoreCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	w, cfg := testWorkload(t), testConfig()

	cold, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := Run(w, cfg, RunOptions{Store: cold})
	if err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), artifactExt) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted != 4 {
		t.Fatalf("corrupted %d artifacts, want 4", corrupted)
	}

	warm, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Run(w, cfg, RunOptions{Store: warm})
	if err != nil {
		t.Fatalf("run over corrupt store must recompute, got %v", err)
	}
	for stage, cs := range warm.Stats() {
		if cs.DiskHits != 0 {
			t.Errorf("stage %s had %d disk hits off corrupt artifacts", stage, cs.DiskHits)
		}
	}
	if s1, s2 := artifactSignature(a1), artifactSignature(a2); s1 != s2 {
		t.Errorf("recomputed run diverged:\n%s\nvs\n%s", s1, s2)
	}
}

// TestDiskStoreTruncatedHeaderIsMiss covers the torn-write shape separately
// from payload corruption.
func TestDiskStoreTruncatedHeaderIsMiss(t *testing.T) {
	dir := t.TempDir()
	w, cfg := testWorkload(t), testConfig()
	cold, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(w, cfg, RunOptions{Store: cold}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), artifactExt) {
			if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("needle-art"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(w, cfg, RunOptions{Store: warm}); err != nil {
		t.Fatalf("truncated artifacts must be misses, got %v", err)
	}
	for stage, cs := range warm.Stats() {
		if cs.DiskHits != 0 {
			t.Errorf("stage %s hit a truncated artifact", stage)
		}
	}
}

// TestDiskStoreEviction caps the store at 0 MB (everything over budget) and
// expects artifacts to be evicted after each write.
func TestDiskStoreEviction(t *testing.T) {
	dir := t.TempDir()
	w, cfg := testWorkload(t), testConfig()
	s, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.maxBytes = 1 // effectively: keep nothing
	if _, err := Run(w, cfg, RunOptions{Store: s}); err != nil {
		t.Fatal(err)
	}
	if n := s.DiskLen(); n != 0 {
		t.Errorf("store kept %d artifacts under a 1-byte cap", n)
	}
	var evictions int64
	for _, cs := range s.Stats() {
		evictions += cs.Evictions
	}
	if evictions == 0 {
		t.Error("no evictions recorded")
	}
	// The run itself must be unaffected (memory tier served it), and a
	// subsequent store finds nothing — all misses, no failures.
	warm, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm.maxBytes = 1
	if _, err := Run(w, cfg, RunOptions{Store: warm}); err != nil {
		t.Fatal(err)
	}
}

// TestDiskStoreStatsShape pins the merged Stats view: memory hits/misses
// from the front tier, DiskHits from the persistent tier.
func TestDiskStoreStatsShape(t *testing.T) {
	dir := t.TempDir()
	w, cfg := testWorkload(t), testConfig()
	s, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(w, cfg, RunOptions{Store: s}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(w, cfg, RunOptions{Store: s}); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	for _, stage := range []string{"inline", "profile", "select", "frame"} {
		cs := stats[stage]
		if cs.Misses != 1 || cs.Hits != 1 {
			t.Errorf("stage %s: %+v, want 1 miss (cold) + 1 memory hit (second run)", stage, cs)
		}
		if cs.DiskHits != 0 {
			t.Errorf("stage %s: %d disk hits within one process, want 0", stage, cs.DiskHits)
		}
	}
	if _, ok := stats["target"]; ok {
		t.Error("target stage must never touch the store")
	}
}

// TestCacheDoesNotCacheCancellation is the regression test for the
// ctx-error poisoning bug: a cancelled stage must not memoize its
// cancellation for later runs.
func TestCacheDoesNotCacheCancellation(t *testing.T) {
	for _, ctxErr := range []error{context.Canceled, context.DeadlineExceeded} {
		c := NewCache()
		calls := 0
		wrapped := fmt.Errorf("pipeline: capturing x: %w", ctxErr)
		if _, err, _ := c.do("profile", "k", func() (any, error) { calls++; return nil, wrapped }); !errors.Is(err, ctxErr) {
			t.Fatalf("want %v, got %v", ctxErr, err)
		}
		v, err, _ := c.do("profile", "k", func() (any, error) { calls++; return "artifact", nil })
		if err != nil || v != "artifact" {
			t.Fatalf("%v poisoned the key: v=%v err=%v", ctxErr, v, err)
		}
		if calls != 2 {
			t.Fatalf("compute ran %d times, want 2 (cancellation must not memoize)", calls)
		}
	}
	// Deterministic failures still memoize (the documented contract).
	c := NewCache()
	calls := 0
	boom := errors.New("boom")
	c.do("profile", "k", func() (any, error) { calls++; return nil, boom })
	if _, err, hit := c.do("profile", "k", func() (any, error) { calls++; return nil, nil }); !errors.Is(err, boom) || !hit {
		t.Fatalf("deterministic error not cached: err=%v hit=%v", err, hit)
	}
	if calls != 1 {
		t.Fatalf("deterministic failure recomputed (%d calls)", calls)
	}
}

// TestStagesDeclareCodecs pins which stages are persistable: every
// cacheable stage must have a codec, the Target stage must not.
func TestStagesDeclareCodecs(t *testing.T) {
	for i := range stages {
		st := &stages[i]
		hasCodec := st.encode != nil && st.decode != nil
		if st.cacheable && !hasCodec {
			t.Errorf("cacheable stage %q has no persistent codec", st.Name)
		}
		if !st.cacheable && hasCodec {
			t.Errorf("uncacheable stage %q declares a codec it can never use", st.Name)
		}
	}
}

// TestDiskStoreMixedTiers decodes downstream artifacts against a freshly
// computed upstream: delete only the inline artifact from disk, warm-start,
// and expect profile/select/frame to decode against the recomputed function
// with identical results.
func TestDiskStoreMixedTiers(t *testing.T) {
	dir := t.TempDir()
	w, cfg := testWorkload(t), testConfig()
	cold, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := Run(w, cfg, RunOptions{Store: cold})
	if err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	removed := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "inline-") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
			removed++
		}
	}
	if removed != 1 {
		t.Fatalf("removed %d inline artifacts, want 1", removed)
	}
	warm, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Run(w, cfg, RunOptions{Store: warm})
	if err != nil {
		t.Fatal(err)
	}
	stats := warm.Stats()
	if stats["inline"].DiskHits != 0 || stats["profile"].DiskHits != 1 {
		t.Fatalf("unexpected tier mix: %+v", stats)
	}
	if s1, s2 := artifactSignature(a1), artifactSignature(a2); s1 != s2 {
		t.Errorf("mixed-tier run diverged:\n%s\nvs\n%s", s1, s2)
	}
	if !reflect.DeepEqual(stats["select"].DiskHits, int64(1)) {
		t.Errorf("select stage not served from disk: %+v", stats["select"])
	}
}
