package pipeline

import (
	"testing"

	"needle/internal/program"
)

// Two different programs that share an entry-function name. Before the
// digest-keyed cache this was the silent-staleness hazard: artifacts were
// keyed by bare name, so the second program would be served the first
// program's cached stages.
const collisionSrcA = `func @kernel(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [body: r4]
  r5 = cmp.lt r3, r1
  condbr r5, %body, %exit
body:
  r6 = const.i64 1
  r4 = add r3, r6
  br %head
exit:
  ret r3
}
`

const collisionSrcB = `func @kernel(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [body: r4]
  r5 = cmp.lt r3, r1
  condbr r5, %body, %exit
body:
  r6 = const.i64 2
  r4 = add r3, r6
  br %head
exit:
  ret r3
}
`

func loadCollision(t *testing.T, src string, arg string) *program.Program {
	t.Helper()
	p, err := program.Load(src, program.LoadOptions{Args: []string{arg}})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

// TestNameCollisionDistinctFingerprints: same name, different bodies (or
// different setup) must never share a run fingerprint.
func TestNameCollisionDistinctFingerprints(t *testing.T) {
	cfg := DefaultConfig()
	pA := loadCollision(t, collisionSrcA, "50")
	pB := loadCollision(t, collisionSrcB, "50")
	if pA.Name != pB.Name {
		t.Fatalf("test setup: names diverge (%s vs %s)", pA.Name, pB.Name)
	}
	if Fingerprint(pA, cfg) == Fingerprint(pB, cfg) {
		t.Error("different program bodies under one name share a fingerprint")
	}
	// Same body, different arguments is also a different computation.
	pA2 := loadCollision(t, collisionSrcA, "51")
	if Fingerprint(pA, cfg) == Fingerprint(pA2, cfg) {
		t.Error("different arguments under one name share a fingerprint")
	}
	// And the digest must be deterministic: an independently loaded copy
	// maps onto the same key, or warm starts would never hit.
	pA3 := loadCollision(t, collisionSrcA, "50")
	if Fingerprint(pA, cfg) != Fingerprint(pA3, cfg) {
		t.Error("identical programs do not share a fingerprint")
	}
}

// TestNameCollisionNoWarmStoreCrossHit is the disk-tier regression test: a
// warm DiskStore populated by one program must serve zero artifacts to a
// different program with the same name, and both runs must produce their
// own (distinct) results.
func TestNameCollisionNoWarmStoreCrossHit(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	pA := loadCollision(t, collisionSrcA, "50")
	pB := loadCollision(t, collisionSrcB, "50")

	cold, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	aA, err := Run(pA, cfg, RunOptions{Store: cold})
	if err != nil {
		t.Fatal(err)
	}
	if n := cold.DiskLen(); n != 4 {
		t.Fatalf("cold run persisted %d artifacts, want 4", n)
	}

	warm, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	aB, err := Run(pB, cfg, RunOptions{Store: warm})
	if err != nil {
		t.Fatal(err)
	}
	for stage, cs := range warm.Stats() {
		if cs.DiskHits != 0 {
			t.Errorf("stage %s served %d artifacts across the name collision", stage, cs.DiskHits)
		}
	}
	// The two kernels count by 1 vs by 2, so a cross-hit would also be
	// visible in the profile: equal dynamic weight means B ran A's capture.
	wA := aA.Profile.Trace.Profile.TotalWeight
	wB := aB.Profile.Trace.Profile.TotalWeight
	if wA == wB {
		t.Errorf("collision run reproduced the other program's profile (weight %d)", wA)
	}

	// The genuinely identical program still warm-starts from the same dir.
	warm2, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(loadCollision(t, collisionSrcA, "50"), cfg, RunOptions{Store: warm2}); err != nil {
		t.Fatal(err)
	}
	var diskHits int64
	for _, cs := range warm2.Stats() {
		diskHits += cs.DiskHits
	}
	if diskHits != 4 {
		t.Errorf("identical program warm-started %d stages from disk, want 4", diskHits)
	}
}
