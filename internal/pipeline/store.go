// Persistent artifact storage: the Store interface the pipeline caches
// behind, and the content-addressed on-disk tier that lets a sweep warm-start
// from a previous process's artifacts.
//
// On-disk layout: one file per stage artifact, named
//
//	<stage>-<sha256(codec version | cumulative cache key)[:32]>.art
//
// so the codec version and the full cumulative config fingerprint are part
// of the address — a stale-version or different-config entry is simply never
// found. Each file carries a header line (magic, codec version, stage name,
// payload CRC32) ahead of the encoded payload; anything that fails header,
// CRC, or decode validation is silently treated as a miss and recomputed.
// Writes go to a temp file in the same directory and rename into place, so
// concurrent processes sharing a cache directory never observe a torn
// artifact.
package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"needle/internal/obs"
)

// Observability counters (no-ops until obs.Enable): persistent-tier
// behaviour across every DiskStore in the process.
var (
	obsDiskHits      = obs.GetCounter("pipeline.cache.disk.hits")
	obsDiskMisses    = obs.GetCounter("pipeline.cache.disk.misses")
	obsDiskWrites    = obs.GetCounter("pipeline.cache.disk.writes")
	obsDiskEvictions = obs.GetCounter("pipeline.cache.disk.evictions")
)

// Store shares cacheable stage artifacts across pipeline runs. Run consults
// the store for every cacheable stage; compute produces the artifact on a
// miss. Implementations must be safe for concurrent use and must return
// artifacts that downstream stages can treat as read-only shared state.
//
// Two tiers ship with the pipeline: Cache (in-memory, dies with the
// process) and DiskStore (memory tier plus a persistent content-addressed
// directory that later processes warm-start from).
type Store interface {
	// Do returns the artifact for key, computing it on a miss. a carries
	// the upstream artifacts a persistent tier needs to rehydrate attached
	// state (functions, analysis managers). hit reports whether any tier
	// already held the artifact.
	Do(st *Stage, a *Artifacts, key string, compute func() (any, error)) (val any, err error, hit bool)
	// Stats returns per-stage cache behaviour, keyed by stage name.
	Stats() map[string]CacheStats
}

const (
	artifactMagic = "needle-artifact"
	artifactExt   = ".art"
)

// DiskStore is the two-tier persistent artifact store: an in-memory Cache
// in front of a content-addressed directory of encoded artifacts. Within a
// process it behaves exactly like a Cache (singleflight, shared rehydrated
// artifacts); across processes, a memory miss is served by decoding the
// on-disk artifact instead of recomputing, which skips the expensive
// inline/profile work entirely on a warm start.
type DiskStore struct {
	dir      string
	maxBytes int64
	mem      *Cache

	mu   sync.Mutex
	disk map[string]*CacheStats // per-stage DiskHits/Evictions
}

// NewDiskStore opens (creating if needed) a persistent artifact store in
// dir. maxMB bounds the directory's total artifact size: after each write,
// least-recently-used artifacts are evicted until the total fits (<= 0
// means unbounded). Safe for concurrent use, including by concurrent
// processes sharing dir.
func NewDiskStore(dir string, maxMB int) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: opening artifact store: %w", err)
	}
	return &DiskStore{
		dir:      dir,
		maxBytes: int64(maxMB) * 1 << 20,
		mem:      NewCache(),
		disk:     make(map[string]*CacheStats),
	}, nil
}

// Dir returns the store's directory.
func (s *DiskStore) Dir() string { return s.dir }

// Do implements Store: memory tier first, then disk, then compute+persist.
func (s *DiskStore) Do(st *Stage, a *Artifacts, key string, compute func() (any, error)) (any, error, bool) {
	if st.encode == nil || st.decode == nil {
		// No codec for this stage: memory tier only.
		return s.mem.do(st.Name, key, compute)
	}
	diskHit := false
	val, err, hit := s.mem.do(st.Name, key, func() (any, error) {
		if data, ok := s.load(st.Name, key); ok {
			if out, derr := st.decode(a, data); derr == nil {
				diskHit = true
				s.noteDisk(st.Name, func(cs *CacheStats) { cs.DiskHits++ })
				obsDiskHits.Add(1)
				return out, nil
			}
			// Present but undecodable (stale layout, IR drift the version
			// bump missed, bit rot the CRC missed): fall through to a fresh
			// computation, which overwrites the entry.
		}
		obsDiskMisses.Add(1)
		out, cerr := compute()
		if cerr == nil {
			if data, eerr := st.encode(a, out); eerr == nil {
				s.save(st.Name, key, data)
			}
			// Encoding failures are not fatal: the run proceeds on the
			// in-memory artifact and later processes recompute.
		}
		return out, cerr
	})
	return val, err, hit || diskHit
}

// noteDisk updates the per-stage disk-tier stats entry under the lock.
func (s *DiskStore) noteDisk(stage string, update func(*CacheStats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.disk[stage]
	if cs == nil {
		cs = &CacheStats{}
		s.disk[stage] = cs
	}
	update(cs)
}

// Stats implements Store: the memory tier's hits/misses merged with the
// disk tier's hits and evictions.
func (s *DiskStore) Stats() map[string]CacheStats {
	out := s.mem.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	for stage, d := range s.disk {
		cs := out[stage]
		cs.DiskHits = d.DiskHits
		cs.Evictions = d.Evictions
		out[stage] = cs
	}
	return out
}

// path returns the content address of a (stage, key) artifact. The codec
// version participates in the hash, so a version bump orphans old entries
// rather than misreading them.
func (s *DiskStore) path(stage, key string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("v%d|%s", codecVersion, key)))
	return filepath.Join(s.dir, stage+"-"+hex.EncodeToString(sum[:])[:32]+artifactExt)
}

// header builds the artifact file's first line.
func header(stage string, payload []byte) string {
	return fmt.Sprintf("%s v%d %s crc32=%08x\n", artifactMagic, codecVersion, stage, crc32.ChecksumIEEE(payload))
}

// load reads and validates the on-disk artifact, returning ok=false on any
// problem (absent, torn, corrupt, stale) — persistent-tier misses are
// always silent.
func (s *DiskStore) load(stage, key string) ([]byte, bool) {
	path := s.path(stage, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	nl := strings.IndexByte(string(raw[:min(len(raw), 128)]), '\n')
	if nl < 0 {
		return nil, false
	}
	payload := raw[nl+1:]
	if string(raw[:nl+1]) != header(stage, payload) {
		return nil, false
	}
	// LRU bookkeeping: a hit refreshes the artifact's eviction clock.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return payload, true
}

// save atomically persists an encoded artifact: write to a temp file in the
// store directory, then rename into place. Failures are silent — the store
// is an accelerator, never a correctness dependency.
func (s *DiskStore) save(stage, key string, payload []byte) {
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.WriteString(header(stage, payload))
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(stage, key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	obsDiskWrites.Add(1)
	s.evict()
}

// evict removes least-recently-used artifacts until the directory fits the
// size cap. Concurrent processes may race an eviction against a read; the
// loser sees a vanished file, which is an ordinary miss.
func (s *DiskStore) evict() {
	if s.maxBytes <= 0 {
		return
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type fileInfo struct {
		name  string
		size  int64
		mtime time.Time
	}
	var files []fileInfo
	var total int64
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), artifactExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{e.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= s.maxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(filepath.Join(s.dir, f.name)) != nil {
			continue
		}
		total -= f.size
		obsDiskEvictions.Add(1)
		stage := f.name
		if i := strings.IndexByte(stage, '-'); i > 0 {
			stage = stage[:i]
		}
		s.noteDisk(stage, func(cs *CacheStats) { cs.Evictions++ })
	}
}

// Len returns the number of artifacts resident in the memory tier.
func (s *DiskStore) Len() int { return s.mem.Len() }

// DiskLen returns the number of artifacts currently on disk.
func (s *DiskStore) DiskLen() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), artifactExt) {
			n++
		}
	}
	return n
}
