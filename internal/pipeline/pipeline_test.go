package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"needle/internal/program"
	"needle/internal/workloads"
)

// prog materializes a workload at size n as the pipeline's Program input.
func prog(t *testing.T, w *workloads.Workload, n int) *program.Program {
	t.Helper()
	p, err := w.Program(n)
	if err != nil {
		t.Fatalf("program %s: %v", w.Name, err)
	}
	return p
}

func TestStageNamesInOrder(t *testing.T) {
	want := []string{"inline", "opt", "profile", "select", "frame", "target"}
	got := StageNames()
	if len(got) != len(want) {
		t.Fatalf("StageNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestOnlyTargetStageUncached(t *testing.T) {
	for _, st := range stages {
		wantCacheable := st.Name != "target"
		if st.cacheable != wantCacheable {
			t.Errorf("stage %q cacheable = %v, want %v", st.Name, st.cacheable, wantCacheable)
		}
	}
}

// fingerprintOf returns the named stage's fingerprint of cfg.
func fingerprintOf(t *testing.T, name string, cfg Config) string {
	t.Helper()
	for _, st := range stages {
		if st.Name == name {
			return st.Fingerprint(cfg)
		}
	}
	t.Fatalf("no stage %q", name)
	return ""
}

func TestStageFingerprintsIsolateKnobs(t *testing.T) {
	base := DefaultConfig()

	// A downstream-only knob (predictor history bits) must leave every
	// upstream fingerprint unchanged — that is what makes ablation sweeps
	// share the expensive artifacts — while changing the target's.
	hist := base
	hist.Sim.HistBits = 16
	for _, stage := range []string{"inline", "profile", "select", "frame"} {
		if a, b := fingerprintOf(t, stage, base), fingerprintOf(t, stage, hist); a != b {
			t.Errorf("HistBits changed %s fingerprint: %q vs %q", stage, a, b)
		}
	}
	if a, b := fingerprintOf(t, "target", base), fingerprintOf(t, "target", hist); a == b {
		t.Error("HistBits did not change the target fingerprint")
	}

	// The problem size feeds the very first stage.
	n := base
	n.N = 1234
	if a, b := fingerprintOf(t, "inline", base), fingerprintOf(t, "inline", n); a == b {
		t.Error("N did not change the inline fingerprint")
	}

	// Host-model knobs invalidate the captured profile.
	ooo := base
	ooo.Sim.OOO.Width = 2
	if a, b := fingerprintOf(t, "profile", base), fingerprintOf(t, "profile", ooo); a == b {
		t.Error("OOO width did not change the profile fingerprint")
	}

	// CGRA geometry is downstream of the profile.
	cg := base
	cg.Sim.CGRA.Rows = 9
	if a, b := fingerprintOf(t, "profile", base), fingerprintOf(t, "profile", cg); a != b {
		t.Errorf("CGRA geometry changed the profile fingerprint: %q vs %q", a, b)
	}
	if a, b := fingerprintOf(t, "target", base), fingerprintOf(t, "target", cg); a == b {
		t.Error("CGRA geometry did not change the target fingerprint")
	}

	// Frame options invalidate the frame but not the profile.
	fo := base
	fo.Sim.Frame.UndoOpsPerStore = 9
	if a, b := fingerprintOf(t, "frame", base), fingerprintOf(t, "frame", fo); a == b {
		t.Error("frame options did not change the frame fingerprint")
	}
	if a, b := fingerprintOf(t, "profile", base), fingerprintOf(t, "profile", fo); a != b {
		t.Errorf("frame options changed the profile fingerprint: %q vs %q", a, b)
	}
}

func TestCacheHitMissAndStats(t *testing.T) {
	c := NewCache()
	calls := 0
	f := func() (any, error) { calls++; return 42, nil }

	v, err, hit := c.do("profile", "k1", f)
	if err != nil || hit || v.(int) != 42 {
		t.Fatalf("first do: v=%v err=%v hit=%v", v, err, hit)
	}
	v, err, hit = c.do("profile", "k1", f)
	if err != nil || !hit || v.(int) != 42 {
		t.Fatalf("second do: v=%v err=%v hit=%v", v, err, hit)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if _, _, hit := c.do("profile", "k2", f); hit {
		t.Fatal("distinct key reported a hit")
	}
	st := c.Stats()["profile"]
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", c.Len())
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache()
	calls := 0
	boom := errors.New("boom")
	f := func() (any, error) { calls++; return nil, boom }
	if _, err, _ := c.do("inline", "bad", f); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if _, err, hit := c.do("inline", "bad", f); !errors.Is(err, boom) || !hit {
		t.Fatalf("cached error: err=%v hit=%v", err, hit)
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1", calls)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	var mu sync.Mutex
	calls := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, _ := c.do("select", "same", func() (any, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				return "artifact", nil
			})
			if err != nil || v.(string) != "artifact" {
				t.Errorf("do: v=%v err=%v", v, err)
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", calls)
	}
	st := c.Stats()["select"]
	if st.Hits+st.Misses != 16 {
		t.Fatalf("stats lost calls: %+v", st)
	}
}

func TestWithDefaultsIdempotent(t *testing.T) {
	cfg := Config{N: 700}.WithDefaults()
	if cfg != cfg.WithDefaults() {
		t.Fatal("WithDefaults not idempotent")
	}
	d := DefaultConfig()
	if cfg.TopPaths != d.TopPaths || cfg.Sim != d.Sim {
		t.Fatalf("zero fields not filled: %+v", cfg)
	}
	if cfg.N != 700 {
		t.Fatalf("caller N lost: %d", cfg.N)
	}
}

// TestCumulativeKeysEmbedUpstream pins the cache-key construction: a
// stage's key embeds every upstream fingerprint, so an upstream knob change
// can never collide downstream artifacts.
func TestCumulativeKeysEmbedUpstream(t *testing.T) {
	cfg := DefaultConfig()
	key := "w"
	for _, st := range stages {
		key += "|" + st.Name + "{" + st.Fingerprint(cfg) + "}"
		if st.Name == "frame" {
			for _, up := range []string{"inline{", "profile{", "select{"} {
				if !strings.Contains(key, up) {
					t.Errorf("frame key %q missing upstream %q", key, up)
				}
			}
			if !strings.Contains(key, fmt.Sprintf("n=%d", cfg.N)) {
				t.Errorf("frame key %q missing problem size", key)
			}
		}
	}
}

// TestFingerprintNormalizesAndDiscriminates pins the exported run
// fingerprint the serve daemon's singleflight keys on: the zero Config and
// an explicit DefaultConfig() collapse to the same key, while workload or
// config changes (upstream or downstream) produce distinct keys.
func TestFingerprintNormalizesAndDiscriminates(t *testing.T) {
	ws := workloads.All()
	p, p2 := prog(t, ws[0], 0), prog(t, ws[1], 0)
	if Fingerprint(p, Config{}) != Fingerprint(p, DefaultConfig()) {
		t.Error("zero config and DefaultConfig() must share a fingerprint")
	}
	if Fingerprint(p, Config{}) == Fingerprint(p2, Config{}) {
		t.Error("different programs must not share a fingerprint")
	}
	big := DefaultConfig()
	big.N = 4096
	if Fingerprint(p, big) == Fingerprint(p, DefaultConfig()) {
		t.Error("problem size must change the fingerprint")
	}
	hist := DefaultConfig()
	hist.Sim.HistBits = 16
	if Fingerprint(p, hist) == Fingerprint(p, DefaultConfig()) {
		t.Error("a downstream knob must still change the full fingerprint")
	}
	last := stageKeys(p, DefaultConfig().WithDefaults())
	if Fingerprint(p, DefaultConfig()) != last[len(last)-1] {
		t.Error("Fingerprint must equal the final cumulative stage key Run uses")
	}
}

// TestRunCtxCancelsBetweenStages: a done RunOptions.Ctx stops the run
// before the next stage, returns the context's error, and leaves no
// memoized cancellation behind in the store.
func TestRunCtxCancelsBetweenStages(t *testing.T) {
	p := prog(t, workloads.All()[0], 600)
	cfg := DefaultConfig()
	cfg.N = 600
	cache := NewCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(p, cfg, RunOptions{Store: cache, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("cancelled run memoized %d artifacts before its first stage", n)
	}
	arts, err := Run(p, cfg, RunOptions{Store: cache, Ctx: context.Background()})
	if err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
	if arts.Target == nil || arts.Frame == nil {
		t.Fatal("post-cancellation run incomplete")
	}
}
