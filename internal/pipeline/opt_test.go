package pipeline

import (
	"strings"
	"testing"

	"needle/internal/workloads"
)

func TestOptChangesFingerprint(t *testing.T) {
	p := prog(t, workloads.All()[0], 0)
	off := DefaultConfig()
	on := off
	on.Opt = true
	fpOff, fpOn := Fingerprint(p, off), Fingerprint(p, on)
	if fpOff == fpOn {
		t.Fatalf("Opt did not change the fingerprint: %q", fpOff)
	}
	if !strings.Contains(fpOff, "opt=false") || !strings.Contains(fpOn, "opt=true") {
		t.Fatalf("opt key segment missing: off=%q on=%q", fpOff, fpOn)
	}
	// Downstream stages must see the opt segment in their cumulative keys
	// even when the stage is skipped, so optimized and unoptimized runs
	// can never share a profile.
	keys := stageKeys(p, off.WithDefaults())
	for i, st := range stages {
		if st.Name == "profile" && !strings.Contains(keys[i], "opt=false") {
			t.Fatalf("profile key %q missing the opt segment", keys[i])
		}
	}
}

func TestOptStageSkippedByDefault(t *testing.T) {
	p := prog(t, workloads.All()[0], 400)
	cfg := DefaultConfig()
	cfg.N = 400
	cache := NewCache()
	a, err := Run(p, cfg, RunOptions{Store: cache})
	if err != nil {
		t.Fatal(err)
	}
	if a.Opt != nil {
		t.Fatal("Opt artifact produced with Opt off")
	}
	if _, ok := cache.Stats()["opt"]; ok {
		t.Fatal("skipped opt stage left cache statistics")
	}
	am, f := a.HotFunc()
	if am != a.Inline.AM || f != a.Inline.F {
		t.Fatal("HotFunc must be the inline artifact when Opt is off")
	}
}

func TestOptRunEndToEnd(t *testing.T) {
	p := prog(t, workloads.All()[0], 400)
	cfg := DefaultConfig()
	cfg.N = 400
	cfg.Opt = true
	a, err := Run(p, cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Opt == nil {
		t.Fatal("no Opt artifact with Opt on")
	}
	if a.Opt.F == a.Inline.F {
		t.Fatal("opt stage must work on a clone, not the shared inline function")
	}
	if a.Opt.InstrsAfter > a.Opt.InstrsBefore {
		t.Fatalf("optimization grew the function: %d -> %d instructions",
			a.Opt.InstrsBefore, a.Opt.InstrsAfter)
	}
	am, f := a.HotFunc()
	if am != a.Opt.AM || f != a.Opt.F {
		t.Fatal("HotFunc must be the opt artifact when Opt is on")
	}
	if a.Target == nil || a.Frame == nil {
		t.Fatal("run incomplete")
	}
}

// TestOptWarmStoreRoundTrip: optimized artifacts persist and rehydrate —
// in particular, the profile decoded from disk must attach to the decoded
// optimized function, not the inline one.
func TestOptWarmStoreRoundTrip(t *testing.T) {
	p := prog(t, workloads.All()[0], 400)
	cfg := DefaultConfig()
	cfg.N = 400
	cfg.Opt = true
	store, err := NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(p, cfg, RunOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh memory tier over the same disk directory forces the disk
	// path for every cacheable stage.
	warmStore, err := NewDiskStore(store.Dir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(p, cfg, RunOptions{Store: warmStore})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Opt == nil {
		t.Fatal("warm run lost the Opt artifact")
	}
	if warm.Opt.InstrsAfter != cold.Opt.InstrsAfter || warm.Opt.BlocksAfter != cold.Opt.BlocksAfter {
		t.Fatalf("opt artifact drifted through the store: %+v vs %+v", warm.Opt, cold.Opt)
	}
	_, f := warm.HotFunc()
	if f != warm.Opt.F {
		t.Fatal("warm profile attached to the wrong function")
	}
	if got, want := len(warm.Target.Reports), len(cold.Target.Reports); got != want {
		t.Fatalf("warm target reports = %d, want %d", got, want)
	}
}

// TestOptAndBaselineNeverCrossHit: with one shared store, an optimized and
// an unoptimized run of the same program at the same size must not share
// any stage artifact downstream of inline.
func TestOptAndBaselineNeverCrossHit(t *testing.T) {
	p := prog(t, workloads.All()[0], 400)
	cache := NewCache()
	base := DefaultConfig()
	base.N = 400
	opt := base
	opt.Opt = true
	aBase, err := Run(p, base, RunOptions{Store: cache})
	if err != nil {
		t.Fatal(err)
	}
	aOpt, err := Run(p, opt, RunOptions{Store: cache})
	if err != nil {
		t.Fatal(err)
	}
	// The inline artifact is upstream of opt and must be shared; the
	// profile must not be.
	if aBase.Inline != aOpt.Inline {
		t.Fatal("inline artifact not shared across opt on/off")
	}
	if aBase.Profile == aOpt.Profile {
		t.Fatal("profile artifact cross-hit between opt on and off")
	}
	if st := cache.Stats()["profile"]; st.Misses != 2 {
		t.Fatalf("profile stats = %+v, want 2 misses (one per mode)", st)
	}
}
