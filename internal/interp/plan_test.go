package interp

import (
	"errors"
	"testing"

	"needle/internal/ir"
)

// TestStepLimitExactAtEveryInstruction pins the step budget to every
// position of the dynamic stream in turn: execution must stop with
// ErrStepLimit exactly one instruction past the budget no matter what kind
// of instruction the limit lands on. Phis count as instructions, so a limit
// landing mid-phi-sequence must trip there, not at the next body check.
func TestStepLimitExactAtEveryInstruction(t *testing.T) {
	f := buildSumLoop(t)
	full, err := Run(f, []uint64{IBits(5)}, nil, nil, 0)
	if err != nil {
		t.Fatalf("unlimited run: %v", err)
	}
	for limit := int64(1); limit < full.Steps; limit++ {
		res, err := Run(f, []uint64{IBits(5)}, nil, nil, limit)
		if !errors.Is(err, ErrStepLimit) {
			t.Fatalf("limit %d: want ErrStepLimit, got %v", limit, err)
		}
		if res.Steps != limit+1 {
			t.Fatalf("limit %d: stopped at step %d, want %d (limit not enforced at that instruction)",
				limit, res.Steps, limit+1)
		}
	}
}

func TestBuildPlanSumLoop(t *testing.T) {
	f := buildSumLoop(t)
	p := BuildPlan(f)
	if !p.Runnable() {
		t.Fatal("sum loop should have a runnable plan")
	}
	if p.F() != f {
		t.Error("plan function mismatch")
	}
	// entry->head, head->body, head->exit, body->head.
	if p.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", p.NumEdges())
	}
	seen := make(map[[2]int]bool)
	for s := 0; s < p.NumEdges(); s++ {
		from, to := p.Edge(s)
		if from < 0 || from >= len(f.Blocks) || to < 0 || to >= len(f.Blocks) {
			t.Fatalf("edge %d = (%d,%d) out of range", s, from, to)
		}
		seen[[2]int{from, to}] = true
	}
	if len(seen) != 4 {
		t.Errorf("edges not distinct: %v", seen)
	}
}

func TestBuildPlanDeclinesCalls(t *testing.T) {
	src := `func @leaf(i64) {
entry:
  ret r1
}

func @main(i64) {
entry:
  r2 = call.i64 @leaf r1
  ret r2
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if p := BuildPlan(m.Func("main")); p.Runnable() {
		t.Error("call-bearing function must not get a runnable plan")
	}
	if p := BuildPlan(m.Func("leaf")); !p.Runnable() {
		t.Error("leaf function should plan fine")
	}
}
