// Compiled execution plans: a per-function "plan" precomputes everything the
// interpreter's inner loop otherwise rediscovers on every iteration — phi
// move tables per (predecessor, block) pair, flattened per-block instruction
// arrays, and dense successor-slot tables — so the profiling fast path
// (RunProfiled) can collect block counts, edge counts, Ball-Larus path counts,
// and the path trace by direct array increments with zero hook closures.
//
// The plan plays the role the instrumented binary plays in the original
// Needle system: the Ball-Larus instrumentation is "a handful of adds per
// edge", and the plan brings the reproduction's profiling cost to the same
// shape. The hook-based Run remains the fully-general slow path and the
// differential-testing oracle (see profile's fast-path property tests).
package interp

import (
	"fmt"
	"math"

	"needle/internal/ir"
	"needle/internal/obs"
)

// Fast-path observability counters, the complement of interp.go's hook-path
// pair. One Add per run keeps the profiled inner loop untouched.
var (
	obsFastRuns   = obs.GetCounter("interp.runs.fast")
	obsFastInstrs = obs.GetCounter("interp.instrs.fast")
	obsPlanBuilds = obs.GetCounter("interp.plan.builds")
)

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// Terminator kinds of a planned block.
const (
	termBr   = iota // unconditional branch: succ slot 0
	termCond        // conditional branch: slot 0 taken, slot 1 fall-through
	termRet         // function return
)

// phiMove is one precompiled phi assignment: dst receives src when control
// arrives over the move table's edge.
type phiMove struct {
	dst, src ir.Reg
}

// planSucc is one successor slot of a planned block.
type planSucc struct {
	to       int32 // target block index
	edgeSlot int32 // dense edge-counter index (parallel edges share a slot)
	predSlot int32 // index of this edge's source in the target's move tables
	taken    uint8 // 1 when this slot is Blocks[0] of the terminator
}

// planBlock is the flattened form of one basic block.
type planBlock struct {
	phis []*ir.Instr // phi prefix (kept for timing-model feeds)
	body []*ir.Instr // non-phi, non-terminator instructions
	term *ir.Instr   // the terminator
	// moves[predSlot] lists the phi assignments to perform when control
	// arrives from the predSlot-th unique predecessor. A nil entry for a
	// block with phis reproduces the interpreter's missing-edge error.
	moves   [][]phiMove
	succs   [2]planSucc
	kind    uint8
	condReg ir.Reg // condition register for termCond
	retReg  ir.Reg // returned register for termRet (NoReg for void)
	// packet is the block's precompiled timing packet (phi prefix, body,
	// terminator in feed order); built for runnable plans only.
	packet *TimingPacket
	// code mirrors body as dense records (opcode, registers, immediate) so
	// the fast-path dispatch reads one contiguous struct per instruction
	// instead of chasing an *ir.Instr and its Args slice; built for
	// runnable plans only, backed by a per-plan arena.
	code []execEntry
}

// Plan is the compiled execution plan of one function. Plans are immutable
// once built and safe for concurrent use; they are cached per function by
// pm.Manager (KindExecPlan) and invalidated with the CFG.
type Plan struct {
	f        *ir.Function
	blocks   []planBlock
	preds    [][]*ir.Block // unique predecessors per block, for error paths
	edgeFrom []int32       // dense edge slot -> source block index
	edgeTo   []int32       // dense edge slot -> target block index
	maxPhis  int
	maxMem   int // most memory ops in any one block (address-scratch size)
	runnable bool
}

// execEntry is one body instruction flattened for the fast-path dispatch:
// opcode, destination, up to three argument registers, and the immediate,
// in 32 contiguous bytes. Rare opcodes still consult the original
// *ir.Instr (the eval fallback needs it), but the hot switch never does.
type execEntry struct {
	op         ir.Op
	dst        int32
	a0, a1, a2 int32
	imm        int64
}

// BuildPlan compiles f into a Plan. Building always succeeds; Runnable
// reports whether the fast path may execute it (call-free, verified shape).
func BuildPlan(f *ir.Function) *Plan {
	obsPlanBuilds.Add(1)
	p := &Plan{f: f, runnable: true}
	if len(f.Blocks) == 0 {
		p.runnable = false
		return p
	}
	// The fast path resolves entry phis against no predecessor, which the
	// general interpreter reports as a runtime error; decline such plans so
	// callers keep the hook path's behaviour.
	if len(f.Entry().Phis()) > 0 {
		p.runnable = false
	}
	p.blocks = make([]planBlock, len(f.Blocks))
	p.preds = make([][]*ir.Block, len(f.Blocks))

	// Unique predecessor lists index the phi move tables.
	for i, b := range f.Blocks {
		seen := make(map[*ir.Block]bool, len(b.Preds))
		for _, pr := range b.Preds {
			if !seen[pr] {
				seen[pr] = true
				p.preds[i] = append(p.preds[i], pr)
			}
		}
	}
	predSlotOf := func(to *ir.Block, from *ir.Block) int32 {
		for k, pr := range p.preds[to.Index] {
			if pr == from {
				return int32(k)
			}
		}
		return -1
	}

	for i, b := range f.Blocks {
		pb := &p.blocks[i]
		phis := b.Phis()
		pb.phis = phis
		if len(phis) > p.maxPhis {
			p.maxPhis = len(phis)
		}
		term := b.Term()
		if term == nil {
			p.runnable = false
			continue
		}
		pb.term = term
		pb.body = b.Instrs[len(phis) : len(b.Instrs)-1]
		for _, in := range pb.body {
			// Calls recurse through the general executor and fire hook events
			// for callee blocks; a mid-block terminator would cut the body
			// short. Either shape sends callers to the hook path.
			if in.Op == ir.OpCall || in.Op.IsTerminator() {
				p.runnable = false
			}
		}

		// Move tables: for each unique predecessor, the parallel-copy the
		// phi prefix performs. A phi lacking an incoming edge leaves a nil
		// table, reproducing the interpreter's runtime error on traversal.
		if len(phis) > 0 {
			pb.moves = make([][]phiMove, len(p.preds[i]))
			for slot, pr := range p.preds[i] {
				moves := make([]phiMove, 0, len(phis))
				ok := true
				for _, phi := range phis {
					idx := -1
					for k, from := range phi.Blocks {
						if from == pr {
							idx = k
							break
						}
					}
					if idx < 0 {
						ok = false
						break
					}
					moves = append(moves, phiMove{dst: phi.Dst, src: phi.Args[idx]})
				}
				if ok {
					pb.moves[slot] = moves
				}
			}
		}

		switch term.Op {
		case ir.OpRet:
			pb.kind = termRet
			pb.retReg = ir.NoReg
			if len(term.Args) == 1 {
				pb.retReg = term.Args[0]
			}
		case ir.OpBr, ir.OpCondBr:
			if term.Op == ir.OpBr {
				pb.kind = termBr
			} else {
				pb.kind = termCond
				pb.condReg = term.Args[0]
			}
			for k, target := range term.Blocks {
				slot := int32(len(p.edgeFrom))
				// Parallel condbr edges (both targets identical) are one CFG
				// edge: reuse the slot allocated for the first arm.
				if k == 1 && term.Blocks[0] == target {
					slot = p.blocks[i].succs[0].edgeSlot
				} else {
					p.edgeFrom = append(p.edgeFrom, int32(i))
					p.edgeTo = append(p.edgeTo, int32(target.Index))
				}
				taken := uint8(0)
				if term.Blocks[0] == target {
					taken = 1
				}
				pb.succs[k] = planSucc{
					to:       int32(target.Index),
					edgeSlot: slot,
					predSlot: predSlotOf(target, b),
					taken:    taken,
				}
			}
		default:
			p.runnable = false
		}
	}

	// Timing packets: the dynamic feed sequence of each block (phi prefix,
	// body, terminator) flattened into dense arrays, so the batched capture
	// path hands the timing model one FeedBlock per executed block. Only
	// runnable plans execute, so only they pay for packets.
	if p.runnable {
		var seq []*ir.Instr
		pks := make([]*TimingPacket, len(p.blocks))
		nBody := 0
		for i := range p.blocks {
			pb := &p.blocks[i]
			seq = seq[:0]
			seq = append(seq, pb.phis...)
			seq = append(seq, pb.body...)
			seq = append(seq, pb.term)
			pb.packet = NewTimingPacket(seq)
			pks[i] = pb.packet
			if pb.packet.NumMem > p.maxMem {
				p.maxMem = pb.packet.NumMem
			}
			nBody += len(pb.body)
		}
		compactPackets(pks)

		// Dense execution records for the body dispatch, one arena for the
		// whole plan.
		code := make([]execEntry, nBody)
		n := 0
		for i := range p.blocks {
			pb := &p.blocks[i]
			pb.code = code[n : n+len(pb.body) : n+len(pb.body)]
			for j, in := range pb.body {
				e := &pb.code[j]
				e.op = in.Op
				e.dst = int32(in.Dst)
				e.imm = in.Imm
				switch len(in.Args) {
				case 0:
				case 1:
					e.a0 = int32(in.Args[0])
				case 2:
					e.a0, e.a1 = int32(in.Args[0]), int32(in.Args[1])
				default:
					e.a0, e.a1, e.a2 = int32(in.Args[0]), int32(in.Args[1]), int32(in.Args[2])
				}
			}
			n += len(pb.body)
		}
	}
	return p
}

// BlockPacket returns the timing packet of block i, or nil for non-runnable
// plans. Exposed for the packet equivalence tests.
func (p *Plan) BlockPacket(i int) *TimingPacket { return p.blocks[i].packet }

// F returns the planned function.
func (p *Plan) F() *ir.Function { return p.f }

// Runnable reports whether RunProfiled may execute this plan. Non-runnable plans
// (call-bearing or structurally unusual functions) must go through the
// hook-based Run.
func (p *Plan) Runnable() bool { return p.runnable }

// NumEdges returns the number of dense edge-counter slots.
func (p *Plan) NumEdges() int { return len(p.edgeFrom) }

// Edge returns the (from, to) block indices of a dense edge slot.
func (p *Plan) Edge(slot int) (from, to int) {
	return int(p.edgeFrom[slot]), int(p.edgeTo[slot])
}

// NumSuccs returns the number of successor slots of block i (0 for ret).
func (p *Plan) NumSuccs(i int) int {
	switch p.blocks[i].kind {
	case termBr:
		return 1
	case termCond:
		return 2
	}
	return 0
}

// Succ returns the target block index of successor slot k of block i.
func (p *Plan) Succ(i, k int) int { return int(p.blocks[i].succs[k].to) }

// BLEdge carries the Ball-Larus annotation of one successor slot: the path
// register increment, and for back edges the flush/reset behaviour.
type BLEdge struct {
	Inc   int64 // value added to the path register (Val of the DAG edge)
	Reset int64 // path register value after a back-edge flush
	Flush bool  // true for back edges: record(reg+Inc), reg = Reset
}

// BLPlan overlays Ball-Larus path numbering onto a Plan. It is built by
// ballarus.DAG.CompilePlan and is immutable after construction.
type BLPlan struct {
	EntryVal int64       // initial path register value
	NumPaths int64       // distinct acyclic paths (sizes the dense counters)
	Succs    [][2]BLEdge // per block, parallel to the plan's successor slots
	RetVal   []int64     // per block: Val(b->EXIT) for returning blocks
}

// MaxDensePaths bounds the path-count table a PathState allocates densely;
// functions with more acyclic paths fall back to a sparse map, mirroring how
// real path profilers degrade to hashing.
const MaxDensePaths = int64(1) << 17

// PathState accumulates one collector's dense profile across any number of
// RunPlan invocations: block counts, edge counts, path counts, and the
// optional path trace. It replaces the map[Edge]int64 / map[int64]int64
// bookkeeping of the hook path on the common (< MaxDensePaths) case.
type PathState struct {
	Blocks []int64 // indexed by block index
	Edges  []int64 // indexed by dense edge slot
	Trace  []int64 // completed path IDs in execution order

	dense       []int64
	sparse      map[int64]int64
	recordTrace bool
}

// NewPathState sizes a state for the plan. numPaths selects dense versus
// sparse path counting; recordTrace enables trace capture.
func NewPathState(p *Plan, numPaths int64, recordTrace bool) *PathState {
	st := &PathState{
		Blocks:      make([]int64, len(p.blocks)),
		Edges:       make([]int64, len(p.edgeFrom)),
		recordTrace: recordTrace,
	}
	if numPaths > 0 && numPaths <= MaxDensePaths {
		st.dense = make([]int64, numPaths)
	} else {
		st.sparse = make(map[int64]int64)
	}
	return st
}

// EachPath calls fn for every executed path ID with its frequency.
func (st *PathState) EachPath(fn func(id, freq int64)) {
	if st.dense != nil {
		for id, n := range st.dense {
			if n != 0 {
				fn(int64(id), n)
			}
		}
		return
	}
	for id, n := range st.sparse {
		fn(id, n)
	}
}

// Reset zeroes every accumulated counter and drops the trace, so the state
// can be reused after its contents have been drained elsewhere.
func (st *PathState) Reset() {
	for i := range st.Blocks {
		st.Blocks[i] = 0
	}
	for i := range st.Edges {
		st.Edges[i] = 0
	}
	for i := range st.dense {
		st.dense[i] = 0
	}
	if st.sparse != nil {
		st.sparse = make(map[int64]int64)
	}
	st.Trace = nil
}

func (st *PathState) record(id int64, onPath func(int64)) {
	if st.dense != nil {
		st.dense[id]++
	} else {
		st.sparse[id]++
	}
	if st.recordTrace {
		st.Trace = append(st.Trace, id)
	}
	if onPath != nil {
		onPath(id)
	}
}

// Timing consumes the dynamic instruction stream of a planned run, exactly
// as the Instr/Mem/Edge hook combination feeds the host timing model on the
// slow path. *ooo.Model implements it.
type Timing interface {
	// Feed schedules one dynamic instruction; addr is the effective word
	// address for memory operations (0 otherwise).
	Feed(in *ir.Instr, addr int64)
	// NoteBranch reports a conditional branch outcome, after the branch
	// instruction has been fed.
	NoteBranch(taken bool)
}

// PlanOpts configures RunProfiled.
type PlanOpts struct {
	// MaxSteps bounds dynamic instructions (<= 0: the Run default).
	MaxSteps int64
	// Timing, when non-nil, receives every executed instruction in program
	// order plus conditional-branch outcomes (the fused host-model feed).
	Timing Timing
	// History, when non-nil, is a branch-history shift register updated at
	// every conditional branch: 1 shifted in when the taken arm ran.
	History *uint64
	// OnPath fires at every path completion with the completed path ID,
	// after counters update but before the history register shifts the
	// completing edge's bit (matching the hook ordering the system
	// simulator's cycle attribution depends on).
	OnPath func(id int64)
}

// RunProfiled executes a planned function over the fused profiling fast path:
// block, edge, and Ball-Larus path counters update by direct array
// increments, with no hook closures in the inner loop. Results, step counts,
// errors, and the collected profile are identical to running the hook-based
// Run with a profile.Collector attached — the property the differential
// tests pin down.
func RunProfiled(p *Plan, bl *BLPlan, args, mem []uint64, st *PathState, opts PlanOpts) (Result, error) {
	res, err := runProfiled(p, bl, args, mem, st, opts)
	obsFastRuns.Add(1)
	obsFastInstrs.Add(res.Steps)
	return res, err
}

func runProfiled(p *Plan, bl *BLPlan, args, mem []uint64, st *PathState, opts PlanOpts) (Result, error) {
	if !p.runnable {
		return Result{}, fmt.Errorf("interp: plan for %s is not runnable", p.f.Name)
	}
	f := p.f
	if len(args) != f.NumParams() {
		return Result{}, fmt.Errorf("interp: %s wants %d args, got %d", f.Name, f.NumParams(), len(args))
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1 << 32
	}
	timing := opts.Timing
	hist := opts.History
	onPath := opts.OnPath

	// Batched timing: a BlockTiming consumer receives one FeedBlock per
	// executed block (walking the precompiled packet) instead of one virtual
	// Feed per instruction. Error paths feed the partial packet up to the
	// last completed instruction, so the model's state matches the
	// per-instruction oracle even on runs that fault mid-block. The address
	// scratch is reused across every block of the run.
	bt, batch := timing.(BlockTiming)
	feedEach := timing != nil && !batch
	var addrs []int64
	if batch && p.maxMem > 0 {
		addrs = make([]int64, 0, p.maxMem)
	}

	regs := make([]uint64, len(f.RegType))
	for i, a := range args {
		regs[f.Param(i)] = a
	}
	var phiTmp []uint64
	if p.maxPhis > 0 {
		phiTmp = make([]uint64, p.maxPhis)
	}

	var steps int64
	// pend mirrors the hook path's address capture: the Mem hook only fires
	// for memory ops and nothing clears it, so a timing model sees the last
	// memory address alongside every subsequent non-memory instruction. The
	// value is only meaningful for memory ops, but the fast path reproduces
	// the stale reads too so the two event streams are indistinguishable.
	var pend int64
	cur := 0
	predSlot := int32(0)
	pathReg := bl.EntryVal
	blocks := p.blocks

	for {
		b := &blocks[cur]
		st.Blocks[cur]++
		// One bounds check per block: when the whole block fits under the
		// step budget, the per-instruction limit checks are skipped.
		careful := steps+int64(len(b.phis)+len(b.body)+1) > maxSteps
		nPhis := len(b.phis)
		if batch {
			addrs = addrs[:0]
		}

		if nPhis > 0 {
			moves := b.moves[predSlot]
			if moves == nil {
				return Result{Steps: steps}, p.phiEdgeError(cur, predSlot)
			}
			for i := range moves {
				phiTmp[i] = regs[moves[i].src]
			}
			for i := range moves {
				regs[moves[i].dst] = phiTmp[i]
				steps++
				if careful && steps > maxSteps {
					if batch {
						bt.FeedBlock(b.packet, i, addrs)
					}
					return Result{Steps: steps}, fmt.Errorf("%w (limit %d) in %s", ErrStepLimit, maxSteps, f.Name)
				}
				if feedEach {
					timing.Feed(b.phis[i], pend)
				}
			}
		}

		for j := range b.code {
			c := &b.code[j]
			steps++
			if careful && steps > maxSteps {
				if batch {
					bt.FeedBlock(b.packet, nPhis+j, addrs)
				}
				return Result{Steps: steps}, fmt.Errorf("%w (limit %d) in %s", ErrStepLimit, maxSteps, f.Name)
			}
			// The common opcodes are inlined below with arithmetic identical
			// to eval's (two's-complement add/sub/mul/shl are the same bits
			// signed or unsigned; shr stays an arithmetic int64 shift); rare
			// opcodes and every error path fall back to eval so results and
			// error messages cannot drift.
			switch c.op {
			case ir.OpAdd:
				regs[c.dst] = regs[c.a0] + regs[c.a1]
			case ir.OpSub:
				regs[c.dst] = regs[c.a0] - regs[c.a1]
			case ir.OpMul:
				regs[c.dst] = regs[c.a0] * regs[c.a1]
			case ir.OpAnd:
				regs[c.dst] = regs[c.a0] & regs[c.a1]
			case ir.OpOr:
				regs[c.dst] = regs[c.a0] | regs[c.a1]
			case ir.OpXor:
				regs[c.dst] = regs[c.a0] ^ regs[c.a1]
			case ir.OpShl:
				regs[c.dst] = regs[c.a0] << (regs[c.a1] & 63)
			case ir.OpShr:
				regs[c.dst] = uint64(int64(regs[c.a0]) >> (regs[c.a1] & 63))
			case ir.OpCmpEQ:
				regs[c.dst] = b2u(regs[c.a0] == regs[c.a1])
			case ir.OpCmpNE:
				regs[c.dst] = b2u(regs[c.a0] != regs[c.a1])
			case ir.OpCmpLT:
				regs[c.dst] = b2u(int64(regs[c.a0]) < int64(regs[c.a1]))
			case ir.OpCmpLE:
				regs[c.dst] = b2u(int64(regs[c.a0]) <= int64(regs[c.a1]))
			case ir.OpCmpGT:
				regs[c.dst] = b2u(int64(regs[c.a0]) > int64(regs[c.a1]))
			case ir.OpCmpGE:
				regs[c.dst] = b2u(int64(regs[c.a0]) >= int64(regs[c.a1]))
			case ir.OpFAdd:
				regs[c.dst] = math.Float64bits(math.Float64frombits(regs[c.a0]) + math.Float64frombits(regs[c.a1]))
			case ir.OpFSub:
				regs[c.dst] = math.Float64bits(math.Float64frombits(regs[c.a0]) - math.Float64frombits(regs[c.a1]))
			case ir.OpFMul:
				regs[c.dst] = math.Float64bits(math.Float64frombits(regs[c.a0]) * math.Float64frombits(regs[c.a1]))
			case ir.OpFDiv:
				regs[c.dst] = math.Float64bits(math.Float64frombits(regs[c.a0]) / math.Float64frombits(regs[c.a1]))
			case ir.OpConst:
				regs[c.dst] = uint64(c.imm)
			case ir.OpCopy:
				regs[c.dst] = regs[c.a0]
			case ir.OpSelect:
				if regs[c.a0] != 0 {
					regs[c.dst] = regs[c.a1]
				} else {
					regs[c.dst] = regs[c.a2]
				}
			case ir.OpLoad:
				addr := int64(regs[c.a0])
				pend = addr
				if batch {
					addrs = append(addrs, addr)
				}
				if uint64(addr) < uint64(len(mem)) {
					regs[c.dst] = mem[addr]
				} else if _, err := eval(b.body[j], regs, mem); err != nil {
					if batch {
						bt.FeedBlock(b.packet, nPhis+j, addrs)
					}
					return Result{Steps: steps}, fmt.Errorf("%w in %s.%s", err, f.Name, f.Blocks[cur].Name)
				}
			case ir.OpStore:
				addr := int64(regs[c.a0])
				pend = addr
				if batch {
					addrs = append(addrs, addr)
				}
				if uint64(addr) < uint64(len(mem)) {
					mem[addr] = regs[c.a1]
				} else if _, err := eval(b.body[j], regs, mem); err != nil {
					if batch {
						bt.FeedBlock(b.packet, nPhis+j, addrs)
					}
					return Result{Steps: steps}, fmt.Errorf("%w in %s.%s", err, f.Name, f.Blocks[cur].Name)
				}
			default:
				in := b.body[j]
				if in.Op.IsMemory() {
					pend = int64(regs[c.a0])
					if batch {
						addrs = append(addrs, pend)
					}
				}
				v, err := eval(in, regs, mem)
				if err != nil {
					if batch {
						bt.FeedBlock(b.packet, nPhis+j, addrs)
					}
					return Result{Steps: steps}, fmt.Errorf("%w in %s.%s", err, f.Name, f.Blocks[cur].Name)
				}
				if in.Op.HasDest() {
					regs[in.Dst] = v
				}
			}
			if feedEach {
				timing.Feed(b.body[j], pend)
			}
		}

		steps++
		if careful && steps > maxSteps {
			if batch {
				bt.FeedBlock(b.packet, nPhis+len(b.body), addrs)
			}
			return Result{Steps: steps}, fmt.Errorf("%w (limit %d) in %s", ErrStepLimit, maxSteps, f.Name)
		}
		if batch {
			bt.FeedBlock(b.packet, b.packet.Len(), addrs)
		} else if timing != nil {
			timing.Feed(b.term, pend)
		}
		switch b.kind {
		case termRet:
			var ret uint64
			if b.retReg != ir.NoReg {
				ret = regs[b.retReg]
			}
			st.record(pathReg+bl.RetVal[cur], onPath)
			return Result{Ret: ret, Steps: steps}, nil
		case termBr:
			s := &b.succs[0]
			e := &bl.Succs[cur][0]
			st.Edges[s.edgeSlot]++
			if e.Flush {
				st.record(pathReg+e.Inc, onPath)
				pathReg = e.Reset
			} else {
				pathReg += e.Inc
			}
			cur, predSlot = int(s.to), s.predSlot
		default: // termCond
			k := 1
			if regs[b.condReg] != 0 {
				k = 0
			}
			s := &b.succs[k]
			e := &bl.Succs[cur][k]
			st.Edges[s.edgeSlot]++
			if e.Flush {
				st.record(pathReg+e.Inc, onPath)
				pathReg = e.Reset
			} else {
				pathReg += e.Inc
			}
			if timing != nil {
				timing.NoteBranch(s.taken != 0)
			}
			if hist != nil {
				*hist = *hist<<1 | uint64(s.taken)
			}
			cur, predSlot = int(s.to), s.predSlot
		}
	}
}

// phiEdgeError reproduces the general interpreter's missing-phi-edge error
// for the (block, predecessor slot) pair.
func (p *Plan) phiEdgeError(cur int, predSlot int32) error {
	b := p.f.Blocks[cur]
	pred := p.preds[cur][predSlot]
	for _, phi := range b.Phis() {
		found := false
		for _, from := range phi.Blocks {
			if from == pred {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("interp: %s.%s: phi %s has no incoming edge from %s",
				p.f.Name, b.Name, phi.Dst, pred)
		}
	}
	return fmt.Errorf("interp: %s.%s: phi resolution failed from %s", p.f.Name, b.Name, pred)
}
