package interp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"needle/internal/ir"
)

func parse(t testing.TB, src string) *ir.Function {
	t.Helper()
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatalf("ParseFunction: %v", err)
	}
	return f
}

func buildSumLoop(t testing.TB) *ir.Function {
	// Written with the builder to keep the source honest against typos.
	b := ir.NewBuilder("sum", ir.I64)
	n := b.Param(0)
	zero := b.ConstI(0)
	one := b.ConstI(1)
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	entry := b.Block()
	b.Br(head)

	b.SetBlock(head)
	sum := b.Phi(ir.I64)
	i := b.Phi(ir.I64)
	c := b.CmpLT(i, n)
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	sum2 := b.Add(sum, i)
	i2 := b.Add(i, one)
	b.Br(head)

	b.AddIncoming(sum, entry, zero)
	b.AddIncoming(sum, body, sum2)
	b.AddIncoming(i, entry, zero)
	b.AddIncoming(i, body, i2)

	b.SetBlock(exit)
	b.Ret(sum)
	f, err := b.Finish()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return f
}

func TestRunSumLoop(t *testing.T) {
	f := buildSumLoop(t)
	res, err := Run(f, []uint64{IBits(10)}, nil, nil, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if I(res.Ret) != 45 {
		t.Fatalf("sum(10) = %d, want 45", I(res.Ret))
	}
	if res.Steps == 0 {
		t.Fatal("no steps counted")
	}
}

func TestRunSumLoopProperty(t *testing.T) {
	f := buildSumLoop(t)
	check := func(n uint8) bool {
		res, err := Run(f, []uint64{IBits(int64(n))}, nil, nil, 0)
		if err != nil {
			return false
		}
		return I(res.Ret) == int64(n)*int64(n-1)/2 || n == 0 && res.Ret == 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunFloatKernel(t *testing.T) {
	src := `func @dist(f64, f64) {
entry:
  r3 = fmul r1, r1
  r4 = fmul r2, r2
  r5 = fadd r3, r4
  r6 = sqrt r5
  ret r6
}
`
	f := parse(t, src)
	res, err := Run(f, []uint64{FBits(3), FBits(4)}, nil, nil, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := F(res.Ret); math.Abs(got-5) > 1e-12 {
		t.Fatalf("dist(3,4) = %v, want 5", got)
	}
}

func TestRunMemoryOps(t *testing.T) {
	src := `func @scale(i64, i64) {
entry:
  r3 = const.i64 0
  br %head
head:
  r4 = phi.i64 [entry: r3] [body: r8]
  r5 = cmp.lt r4, r2
  condbr r5, %body, %exit
body:
  r6 = add r1, r4
  r7 = load.i64 r6
  r9 = mul r7, r7
  store.i64 r6, r9
  r10 = const.i64 1
  r8 = add r4, r10
  br %head
exit:
  ret
}
`
	f := parse(t, src)
	mem := []uint64{IBits(2), IBits(3), IBits(4)}
	if _, err := Run(f, []uint64{IBits(0), IBits(3)}, mem, nil, 0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int64{4, 9, 16}
	for i, w := range want {
		if I(mem[i]) != w {
			t.Errorf("mem[%d] = %d, want %d", i, I(mem[i]), w)
		}
	}
}

func TestRunErrors(t *testing.T) {
	divSrc := `func @d(i64, i64) {
entry:
  r3 = div r1, r2
  ret r3
}
`
	f := parse(t, divSrc)
	if _, err := Run(f, []uint64{IBits(1), IBits(0)}, nil, nil, 0); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("want ErrDivideByZero, got %v", err)
	}

	oobSrc := `func @o(i64) {
entry:
  r2 = load.i64 r1
  ret r2
}
`
	g := parse(t, oobSrc)
	if _, err := Run(g, []uint64{IBits(99)}, make([]uint64, 4), nil, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("want ErrOutOfBounds, got %v", err)
	}
	if _, err := Run(g, []uint64{IBits(-1)}, make([]uint64, 4), nil, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("negative address: want ErrOutOfBounds, got %v", err)
	}

	loop := buildSumLoop(t)
	if _, err := Run(loop, []uint64{IBits(1 << 40)}, nil, nil, 100); !errors.Is(err, ErrStepLimit) {
		t.Errorf("want ErrStepLimit, got %v", err)
	}

	if _, err := Run(loop, nil, nil, nil, 0); err == nil {
		t.Error("want arity error")
	}
}

func TestHooksFireInOrder(t *testing.T) {
	f := buildSumLoop(t)
	var blocks []string
	var edges []string
	var instrs int
	exited := ""
	hooks := &Hooks{
		Block: func(b *ir.Block) { blocks = append(blocks, b.Name) },
		Edge:  func(from, to *ir.Block) { edges = append(edges, from.Name+"->"+to.Name) },
		Instr: func(in *ir.Instr) { instrs++ },
		Exit:  func(b *ir.Block) { exited = b.Name },
	}
	res, err := Run(f, []uint64{IBits(2)}, nil, hooks, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantBlocks := []string{"entry", "head", "body", "head", "body", "head", "exit"}
	if len(blocks) != len(wantBlocks) {
		t.Fatalf("blocks = %v, want %v", blocks, wantBlocks)
	}
	for i := range blocks {
		if blocks[i] != wantBlocks[i] {
			t.Fatalf("blocks = %v, want %v", blocks, wantBlocks)
		}
	}
	if len(edges) != len(wantBlocks)-1 {
		t.Fatalf("edges = %v", edges)
	}
	if edges[0] != "entry->head" || edges[len(edges)-1] != "head->exit" {
		t.Fatalf("edges = %v", edges)
	}
	if int64(instrs) != res.Steps {
		t.Fatalf("instr hook fired %d times, steps = %d", instrs, res.Steps)
	}
	if exited != "exit" {
		t.Fatalf("exit block = %q", exited)
	}
}

func TestSelectAndConversions(t *testing.T) {
	src := `func @sel(i64) {
entry:
  r2 = const.i64 10
  r3 = cmp.ge r1, r2
  r4 = sitofp r1
  r5 = const.f64 2.5
  r6 = fmul r4, r5
  r7 = fptosi r6
  r8 = select.i64 r3, r7, r2
  ret r8
}
`
	f := parse(t, src)
	res, err := Run(f, []uint64{IBits(20)}, nil, nil, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if I(res.Ret) != 50 {
		t.Fatalf("sel(20) = %d, want 50", I(res.Ret))
	}
	res, err = Run(f, []uint64{IBits(3)}, nil, nil, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if I(res.Ret) != 10 {
		t.Fatalf("sel(3) = %d, want 10", I(res.Ret))
	}
}

func TestBitwiseOpsProperty(t *testing.T) {
	src := `func @bits(i64, i64) {
entry:
  r3 = and r1, r2
  r4 = or r1, r2
  r5 = xor r3, r4
  ret r5
}
`
	f := parse(t, src)
	// a&b ^ a|b == a^b for all a, b.
	check := func(x, y int64) bool {
		res, err := Run(f, []uint64{IBits(x), IBits(y)}, nil, nil, 0)
		return err == nil && I(res.Ret) == x^y
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCallExecution(t *testing.T) {
	src := `func @sq(i64) {
entry:
  r2 = mul r1, r1
  ret r2
}

func @main(i64) {
entry:
  r2 = call.i64 @sq r1
  r3 = const.i64 1
  r4 = add r2, r3
  r5 = call.i64 @sq r4
  ret r5
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m.Func("main"), []uint64{IBits(3)}, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if I(res.Ret) != 100 { // (3*3+1)^2
		t.Fatalf("main(3) = %d, want 100", I(res.Ret))
	}
}

func TestCallDepthLimit(t *testing.T) {
	// Build infinite recursion by hand and confirm the depth guard fires.
	f := &ir.Function{Name: "rec", Params: []ir.Type{ir.I64}, RegType: []ir.Type{ir.I64, ir.I64, ir.I64}}
	blk := &ir.Block{Name: "entry"}
	blk.Instrs = []*ir.Instr{
		{Op: ir.OpCall, Type: ir.I64, Dst: 2, Args: []ir.Reg{1}, Callee: f},
		{Op: ir.OpRet, Type: ir.I64, Args: []ir.Reg{2}},
	}
	f.Blocks = []*ir.Block{blk}
	f.Finish()
	if _, err := Run(f, []uint64{0}, nil, nil, 0); !errors.Is(err, ErrCallDepth) {
		t.Fatalf("want ErrCallDepth, got %v", err)
	}
}

func TestCallHooksFireForCallee(t *testing.T) {
	src := `func @id(i64) {
entry:
  ret r1
}

func @main(i64) {
entry:
  r2 = call.i64 @id r1
  ret r2
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []string
	hooks := &Hooks{Block: func(b *ir.Block) { blocks = append(blocks, b.Name) }}
	if _, err := Run(m.Func("main"), []uint64{IBits(7)}, nil, hooks, 0); err != nil {
		t.Fatal(err)
	}
	// Both functions' entry blocks fire (same name, two functions).
	if len(blocks) != 2 {
		t.Fatalf("block events = %v, want 2 entries", blocks)
	}
}
