// Package interp executes IR functions and exposes the profiling hooks the
// Needle pipeline consumes (block, edge, and instruction events). It plays
// the role the natively-executed, instrumented binary plays in the original
// LLVM-based system: the source of dynamic profiles.
package interp

import (
	"errors"
	"fmt"
	"math"

	"needle/internal/ir"
	"needle/internal/obs"
)

// Observability counters (no-ops until obs.Enable): dynamic instructions and
// run counts, split by execution path. The fast-path counters live in
// plan.go's RunProfiled; together they answer "how much execution went
// through the compiled plans versus the general hook interpreter".
var (
	obsHookRuns   = obs.GetCounter("interp.runs.hook")
	obsHookInstrs = obs.GetCounter("interp.instrs.hook")
)

// Errors returned by Run.
var (
	ErrDivideByZero = errors.New("interp: integer divide by zero")
	ErrOutOfBounds  = errors.New("interp: memory access out of bounds")
	ErrStepLimit    = errors.New("interp: step limit exceeded")
)

// Hooks receives dynamic execution events. Any field may be nil. Events fire
// in program order: Block when control enters a block (including the entry
// block), Edge on every control transfer between blocks (before the Block
// event of the target), Instr after each executed instruction (terminators
// included), and Exit when the function returns, identifying the returning
// block.
type Hooks struct {
	Block func(b *ir.Block)
	Edge  func(from, to *ir.Block)
	Instr func(in *ir.Instr)
	Exit  func(from *ir.Block)
	// Store fires just before a store commits, exposing the old value so a
	// speculation runtime can maintain an undo log.
	Store func(in *ir.Instr, addr int64, old, new uint64)
	// Mem fires for every load and store, just before the Instr event of the
	// same operation, exposing the effective word address for cache and
	// timing models.
	Mem func(in *ir.Instr, addr int64)
}

// Result summarizes one execution.
type Result struct {
	Ret   uint64 // raw bits of the return value; 0 for void
	Steps int64  // dynamically executed instructions, terminators included
}

// F converts raw bits to float64.
func F(bits uint64) float64 { return math.Float64frombits(bits) }

// FBits converts a float64 to raw bits.
func FBits(v float64) uint64 { return math.Float64bits(v) }

// I converts raw bits to int64.
func I(bits uint64) int64 { return int64(bits) }

// IBits converts an int64 to raw bits.
func IBits(v int64) uint64 { return uint64(v) }

// maxCallDepth bounds recursion through OpCall.
const maxCallDepth = 256

// ErrCallDepth is returned when call nesting exceeds maxCallDepth.
var ErrCallDepth = errors.New("interp: call depth exceeded")

// Run executes f with the given arguments over mem, firing hooks, bounded by
// maxSteps dynamic instructions (<= 0 means a generous default of 1<<32).
// Argument and return values are raw 64-bit patterns; use F/FBits for
// float parameters. Calls execute recursively; hook events fire for callee
// blocks and instructions too, so per-function consumers (like the
// Ball-Larus profiler) filter by block membership.
func Run(f *ir.Function, args []uint64, mem []uint64, hooks *Hooks, maxSteps int64) (Result, error) {
	if maxSteps <= 0 {
		maxSteps = 1 << 32
	}
	if hooks == nil {
		hooks = &Hooks{}
	}
	ex := &executor{mem: mem, hooks: hooks, maxSteps: maxSteps}
	ret, err := ex.exec(f, args, 0)
	obsHookRuns.Add(1)
	obsHookInstrs.Add(ex.steps)
	return Result{Ret: ret, Steps: ex.steps}, err
}

// executor carries the state shared across nested calls.
type executor struct {
	mem      []uint64
	hooks    *Hooks
	maxSteps int64
	steps    int64
}

func (ex *executor) exec(f *ir.Function, args []uint64, depth int) (uint64, error) {
	if depth > maxCallDepth {
		return 0, fmt.Errorf("%w in %s", ErrCallDepth, f.Name)
	}
	if len(args) != f.NumParams() {
		return 0, fmt.Errorf("interp: %s wants %d args, got %d", f.Name, f.NumParams(), len(args))
	}
	hooks := ex.hooks
	mem := ex.mem
	regs := make([]uint64, len(f.RegType))
	for i, a := range args {
		regs[f.Param(i)] = a
	}

	cur := f.Entry()
	var prev *ir.Block
	if hooks.Block != nil {
		hooks.Block(cur)
	}
	// phiTmp buffers phi reads so that all incoming values are read before
	// any phi destination is written (parallel-copy semantics).
	var phiTmp []uint64

	for {
		// Resolve phis relative to the predecessor we arrived from.
		phis := cur.Phis()
		if len(phis) > 0 {
			phiTmp = phiTmp[:0]
			for _, phi := range phis {
				idx := -1
				for i, from := range phi.Blocks {
					if from == prev {
						idx = i
						break
					}
				}
				if idx < 0 {
					return 0, fmt.Errorf("interp: %s.%s: phi %s has no incoming edge from %s",
						f.Name, cur.Name, phi.Dst, prev)
				}
				phiTmp = append(phiTmp, regs[phi.Args[idx]])
			}
			for i, phi := range phis {
				regs[phi.Dst] = phiTmp[i]
				ex.steps++
				if ex.steps > ex.maxSteps {
					return 0, fmt.Errorf("%w (limit %d) in %s", ErrStepLimit, ex.maxSteps, f.Name)
				}
				if hooks.Instr != nil {
					hooks.Instr(phi)
				}
			}
		}

		for _, in := range cur.Instrs[len(phis):] {
			ex.steps++
			if ex.steps > ex.maxSteps {
				return 0, fmt.Errorf("%w (limit %d) in %s", ErrStepLimit, ex.maxSteps, f.Name)
			}
			switch in.Op {
			case ir.OpBr:
				if hooks.Instr != nil {
					hooks.Instr(in)
				}
				next := in.Blocks[0]
				if hooks.Edge != nil {
					hooks.Edge(cur, next)
				}
				prev, cur = cur, next
				if hooks.Block != nil {
					hooks.Block(cur)
				}
			case ir.OpCondBr:
				if hooks.Instr != nil {
					hooks.Instr(in)
				}
				next := in.Blocks[1]
				if regs[in.Args[0]] != 0 {
					next = in.Blocks[0]
				}
				if hooks.Edge != nil {
					hooks.Edge(cur, next)
				}
				prev, cur = cur, next
				if hooks.Block != nil {
					hooks.Block(cur)
				}
			case ir.OpRet:
				if hooks.Instr != nil {
					hooks.Instr(in)
				}
				var ret uint64
				if len(in.Args) == 1 {
					ret = regs[in.Args[0]]
				}
				if hooks.Exit != nil {
					hooks.Exit(cur)
				}
				return ret, nil
			case ir.OpCall:
				callArgs := make([]uint64, len(in.Args))
				for i, a := range in.Args {
					callArgs[i] = regs[a]
				}
				if hooks.Instr != nil {
					hooks.Instr(in)
				}
				v, err := ex.exec(in.Callee, callArgs, depth+1)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = v
			default:
				if in.Op.IsMemory() {
					addr := int64(regs[in.Args[0]])
					if in.Op == ir.OpStore && hooks.Store != nil && addr >= 0 && addr < int64(len(mem)) {
						hooks.Store(in, addr, mem[addr], regs[in.Args[1]])
					}
					if hooks.Mem != nil {
						hooks.Mem(in, addr)
					}
				}
				v, err := eval(in, regs, mem)
				if err != nil {
					return 0, fmt.Errorf("%w in %s.%s", err, f.Name, cur.Name)
				}
				if in.Op.HasDest() {
					regs[in.Dst] = v
				}
				if hooks.Instr != nil {
					hooks.Instr(in)
				}
			}
			if in.Op.IsTerminator() {
				break
			}
		}
	}
}

// Eval executes one non-control instruction against a register file and
// memory, returning the raw result bits. It is the single-instruction
// building block reused by the speculation runtime's frame executor.
func Eval(in *ir.Instr, regs []uint64, mem []uint64) (uint64, error) {
	return eval(in, regs, mem)
}

// eval executes one non-control instruction against the register file and
// memory, returning the raw result bits.
func eval(in *ir.Instr, regs []uint64, mem []uint64) (uint64, error) {
	a := func(i int) uint64 { return regs[in.Args[i]] }
	ai := func(i int) int64 { return int64(regs[in.Args[i]]) }
	af := func(i int) float64 { return math.Float64frombits(regs[in.Args[i]]) }
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}

	switch in.Op {
	case ir.OpAdd:
		return uint64(ai(0) + ai(1)), nil
	case ir.OpSub:
		return uint64(ai(0) - ai(1)), nil
	case ir.OpMul:
		return uint64(ai(0) * ai(1)), nil
	case ir.OpDiv:
		d := ai(1)
		if d == 0 {
			return 0, ErrDivideByZero
		}
		return uint64(ai(0) / d), nil
	case ir.OpRem:
		d := ai(1)
		if d == 0 {
			return 0, ErrDivideByZero
		}
		return uint64(ai(0) % d), nil
	case ir.OpAnd:
		return a(0) & a(1), nil
	case ir.OpOr:
		return a(0) | a(1), nil
	case ir.OpXor:
		return a(0) ^ a(1), nil
	case ir.OpShl:
		return uint64(ai(0) << (a(1) & 63)), nil
	case ir.OpShr:
		return uint64(ai(0) >> (a(1) & 63)), nil
	case ir.OpFAdd:
		return math.Float64bits(af(0) + af(1)), nil
	case ir.OpFSub:
		return math.Float64bits(af(0) - af(1)), nil
	case ir.OpFMul:
		return math.Float64bits(af(0) * af(1)), nil
	case ir.OpFDiv:
		return math.Float64bits(af(0) / af(1)), nil
	case ir.OpSqrt:
		return math.Float64bits(math.Sqrt(af(0))), nil
	case ir.OpExp:
		return math.Float64bits(math.Exp(af(0))), nil
	case ir.OpLog:
		return math.Float64bits(math.Log(af(0))), nil
	case ir.OpSIToFP:
		return math.Float64bits(float64(ai(0))), nil
	case ir.OpFPToSI:
		return uint64(int64(af(0))), nil
	case ir.OpCmpEQ:
		return b(ai(0) == ai(1)), nil
	case ir.OpCmpNE:
		return b(ai(0) != ai(1)), nil
	case ir.OpCmpLT:
		return b(ai(0) < ai(1)), nil
	case ir.OpCmpLE:
		return b(ai(0) <= ai(1)), nil
	case ir.OpCmpGT:
		return b(ai(0) > ai(1)), nil
	case ir.OpCmpGE:
		return b(ai(0) >= ai(1)), nil
	case ir.OpFCmpEQ:
		return b(af(0) == af(1)), nil
	case ir.OpFCmpNE:
		return b(af(0) != af(1)), nil
	case ir.OpFCmpLT:
		return b(af(0) < af(1)), nil
	case ir.OpFCmpLE:
		return b(af(0) <= af(1)), nil
	case ir.OpFCmpGT:
		return b(af(0) > af(1)), nil
	case ir.OpFCmpGE:
		return b(af(0) >= af(1)), nil
	case ir.OpConst:
		return uint64(in.Imm), nil
	case ir.OpCopy:
		return a(0), nil
	case ir.OpSelect:
		if a(0) != 0 {
			return a(1), nil
		}
		return a(2), nil
	case ir.OpLoad:
		addr := ai(0)
		if addr < 0 || addr >= int64(len(mem)) {
			return 0, fmt.Errorf("%w: load of word %d (mem size %d)", ErrOutOfBounds, addr, len(mem))
		}
		return mem[addr], nil
	case ir.OpStore:
		addr := ai(0)
		if addr < 0 || addr >= int64(len(mem)) {
			return 0, fmt.Errorf("%w: store to word %d (mem size %d)", ErrOutOfBounds, addr, len(mem))
		}
		mem[addr] = a(1)
		return 0, nil
	}
	return 0, fmt.Errorf("interp: unhandled opcode %s", in.Op)
}

// CombineHooks merges several hook sets into one; each event fans out to
// every non-nil handler in order. Nil entries are skipped.
func CombineHooks(hooks ...*Hooks) *Hooks {
	out := &Hooks{}
	var blocks []func(*ir.Block)
	var edges []func(*ir.Block, *ir.Block)
	var instrs []func(*ir.Instr)
	var exits []func(*ir.Block)
	var stores []func(*ir.Instr, int64, uint64, uint64)
	var mems []func(*ir.Instr, int64)
	for _, h := range hooks {
		if h == nil {
			continue
		}
		if h.Store != nil {
			stores = append(stores, h.Store)
		}
		if h.Mem != nil {
			mems = append(mems, h.Mem)
		}
		if h.Block != nil {
			blocks = append(blocks, h.Block)
		}
		if h.Edge != nil {
			edges = append(edges, h.Edge)
		}
		if h.Instr != nil {
			instrs = append(instrs, h.Instr)
		}
		if h.Exit != nil {
			exits = append(exits, h.Exit)
		}
	}
	if len(blocks) > 0 {
		out.Block = func(b *ir.Block) {
			for _, fn := range blocks {
				fn(b)
			}
		}
	}
	if len(edges) > 0 {
		out.Edge = func(from, to *ir.Block) {
			for _, fn := range edges {
				fn(from, to)
			}
		}
	}
	if len(instrs) > 0 {
		out.Instr = func(in *ir.Instr) {
			for _, fn := range instrs {
				fn(in)
			}
		}
	}
	if len(exits) > 0 {
		out.Exit = func(b *ir.Block) {
			for _, fn := range exits {
				fn(b)
			}
		}
	}
	if len(stores) > 0 {
		out.Store = func(in *ir.Instr, addr int64, old, new uint64) {
			for _, fn := range stores {
				fn(in, addr, old, new)
			}
		}
	}
	if len(mems) > 0 {
		out.Mem = func(in *ir.Instr, addr int64) {
			for _, fn := range mems {
				fn(in, addr)
			}
		}
	}
	return out
}

// StepBlock executes exactly one basic block — phi resolution against prev,
// the body, and the terminator — mutating regs and mem. It returns the
// successor block, or returned=true with the return bits when the block
// ends in ret. Calls inside the block execute to completion recursively.
//
// StepBlock is the building block for drivers that interleave host
// execution with accelerator frames (sim.FunctionalOffload): the driver
// owns the program counter and can hand whole regions to a frame executor
// between steps. Hooks fire Edge/Exit events (no Block/Instr events, which
// block-level drivers do not need).
func StepBlock(f *ir.Function, cur, prev *ir.Block, regs, mem []uint64, hooks *Hooks) (next *ir.Block, ret uint64, returned bool, err error) {
	var bx BlockExec
	return bx.Step(f, cur, prev, regs, mem, hooks)
}

// BlockExec holds the scratch buffers StepBlock needs, so drivers that step
// many blocks (sim.FunctionalOffload) reuse one allocation instead of
// allocating a phi temp slice and call-argument slice per block. The zero
// value is ready to use; a BlockExec must not be shared across goroutines.
type BlockExec struct {
	phiTmp   []uint64
	callArgs []uint64
}

// Step executes exactly one basic block with the semantics of StepBlock,
// reusing the BlockExec's scratch buffers.
func (bx *BlockExec) Step(f *ir.Function, cur, prev *ir.Block, regs, mem []uint64, hooks *Hooks) (next *ir.Block, ret uint64, returned bool, err error) {
	if hooks == nil {
		hooks = &Hooks{}
	}
	phis := cur.Phis()
	if len(phis) > 0 {
		tmp := bx.phiTmp
		if cap(tmp) < len(phis) {
			tmp = make([]uint64, len(phis))
			bx.phiTmp = tmp
		} else {
			tmp = tmp[:len(phis)]
		}
		for i, phi := range phis {
			idx := -1
			for k, from := range phi.Blocks {
				if from == prev {
					idx = k
					break
				}
			}
			if idx < 0 {
				return nil, 0, false, fmt.Errorf("interp: %s.%s: phi %s has no incoming edge from %v",
					f.Name, cur.Name, phi.Dst, prev)
			}
			tmp[i] = regs[phi.Args[idx]]
		}
		for i, phi := range phis {
			regs[phi.Dst] = tmp[i]
		}
	}
	for _, in := range cur.Instrs[len(phis):] {
		switch in.Op {
		case ir.OpBr:
			nb := in.Blocks[0]
			if hooks.Edge != nil {
				hooks.Edge(cur, nb)
			}
			return nb, 0, false, nil
		case ir.OpCondBr:
			nb := in.Blocks[1]
			if regs[in.Args[0]] != 0 {
				nb = in.Blocks[0]
			}
			if hooks.Edge != nil {
				hooks.Edge(cur, nb)
			}
			return nb, 0, false, nil
		case ir.OpRet:
			var v uint64
			if len(in.Args) == 1 {
				v = regs[in.Args[0]]
			}
			if hooks.Exit != nil {
				hooks.Exit(cur)
			}
			return nil, v, true, nil
		case ir.OpCall:
			callArgs := bx.callArgs
			if cap(callArgs) < len(in.Args) {
				callArgs = make([]uint64, len(in.Args))
				bx.callArgs = callArgs
			} else {
				callArgs = callArgs[:len(in.Args)]
			}
			for i, a := range in.Args {
				callArgs[i] = regs[a]
			}
			res, err := Run(in.Callee, callArgs, mem, nil, 0)
			if err != nil {
				return nil, 0, false, err
			}
			regs[in.Dst] = res.Ret
		default:
			v, err := eval(in, regs, mem)
			if err != nil {
				return nil, 0, false, fmt.Errorf("%w in %s.%s", err, f.Name, cur.Name)
			}
			if in.Op.HasDest() {
				regs[in.Dst] = v
			}
		}
	}
	return nil, 0, false, fmt.Errorf("interp: %s.%s: block fell off the end", f.Name, cur.Name)
}
