// Timing packets: the per-block half of the batched capture fast path. A
// packet is the timing model's view of one planned basic block — opcode,
// unit class, destination register, and source registers of every dynamic
// instruction the block issues (phi-move prefix, body, terminator) — laid
// out as a dense array of compact fixed-size entries. BuildPlan derives one
// packet per block (backed by a single per-plan arena, so hot blocks walk
// contiguous memory), and the capture loop hands the whole block to the
// timing model in a single FeedBlock call: the model walks flat entries
// instead of chasing *ir.Instr pointers one virtual Feed at a time.
package interp

import "needle/internal/ir"

// Timing-packet unit classes. They partition opcodes exactly as the host
// timing model's per-instruction dispatch does: memory ops take their
// latency from the cache model, float ops issue to FPUs, everything else
// (compares, moves, branches included) to ALUs.
const (
	TimingClassInt = iota // integer ALU ops
	TimingClassFP         // floating-point ops
	TimingClassMem        // loads and stores
)

// TimingEntry is one dynamic instruction in a packet, packed into 16 bytes
// so the scheduling loop touches one cache line per couple of entries. The
// first two source registers are inlined (Src0/Src1, the common case for
// binary ops) with absent slots holding ir.NoReg (register 0) — NoReg is
// never a destination in verified IR, so its ready time is always zero and
// consumers can read both slots unconditionally instead of branching on the
// source count. NSrc is min(count, 3); entries with three or more sources
// (phi moves with many incoming values) spill the full list to the packet's
// SrcOff/Srcs overflow arrays.
type TimingEntry struct {
	Op    uint8 // ir.Op (latency-table index)
	Class uint8 // TimingClass*
	NSrc  uint8 // min(number of sources, 3); 3 means "consult SrcOff/Srcs"
	Dst   int32 // destination register; -1 when the entry defines none
	Src0  int32 // first source register (ir.NoReg when absent)
	Src1  int32 // second source register (ir.NoReg when absent)
}

// TimingPacket is the flattened dynamic-instruction sequence of one planned
// block. Entries appear in feed order: the phi-move prefix, the body, then
// the terminator. Packets are immutable after construction and safe to share
// across concurrent runs (plans are cached per function).
//
// A conditional branch may only appear as the final entry — the invariant
// verified IR guarantees — which lets consumers track the model's
// last-branch timestamp without a per-entry opcode test.
type TimingPacket struct {
	Ent    []TimingEntry
	SrcOff []int32 // len(Ent)+1 offsets into Srcs, one span per entry
	Srcs   []int32 // flattened source registers (NoReg pre-filtered)
	NumMem int     // number of TimingClassMem entries (address-scratch size)
	CondBr bool    // the final entry is a conditional branch
}

// NewTimingPacket compiles an instruction sequence into a packet. The
// sequence must list the instructions in dynamic feed order; phi entries
// carry every incoming register as a source, exactly as the per-instruction
// feed exposes them.
func NewTimingPacket(instrs []*ir.Instr) *TimingPacket {
	n := len(instrs)
	pk := &TimingPacket{
		Ent:    make([]TimingEntry, n),
		SrcOff: make([]int32, n+1),
	}
	for i, in := range instrs {
		e := &pk.Ent[i]
		e.Op = uint8(in.Op)
		switch {
		case in.Op.IsMemory():
			e.Class = TimingClassMem
			pk.NumMem++
		case in.Op.IsFloat():
			e.Class = TimingClassFP
		default:
			e.Class = TimingClassInt
		}
		e.Dst = -1
		if in.Op.HasDest() {
			e.Dst = int32(in.Dst)
		}
		pk.SrcOff[i] = int32(len(pk.Srcs))
		for _, r := range in.Args {
			if r != ir.NoReg {
				pk.Srcs = append(pk.Srcs, int32(r))
			}
		}
		switch ns := int(pk.SrcOff[i]); len(pk.Srcs) - ns {
		case 0:
		case 1:
			e.NSrc = 1
			e.Src0 = pk.Srcs[ns]
		case 2:
			e.NSrc = 2
			e.Src0, e.Src1 = pk.Srcs[ns], pk.Srcs[ns+1]
		default:
			e.NSrc = 3
			e.Src0, e.Src1 = pk.Srcs[ns], pk.Srcs[ns+1]
		}
	}
	pk.SrcOff[n] = int32(len(pk.Srcs))
	pk.CondBr = n > 0 && instrs[n-1].Op == ir.OpCondBr
	return pk
}

// Len returns the number of entries in the packet.
func (pk *TimingPacket) Len() int { return len(pk.Ent) }

// compactPackets re-backs the packets of a plan's blocks with shared arenas
// so consecutive blocks' entries are contiguous: the capture loop bounces
// between a handful of hot blocks, and one arena keeps all of them in a few
// cache lines instead of one tiny allocation per parallel array per block.
func compactPackets(pks []*TimingPacket) {
	var totE, totS int
	for _, pk := range pks {
		totE += len(pk.Ent)
		totS += len(pk.Srcs)
	}
	entArena := make([]TimingEntry, 0, totE)
	srcArena := make([]int32, 0, totS)
	offArena := make([]int32, 0, totE+len(pks))
	for _, pk := range pks {
		e0 := len(entArena)
		entArena = append(entArena, pk.Ent...)
		pk.Ent = entArena[e0:len(entArena):len(entArena)]
		s0 := len(srcArena)
		srcArena = append(srcArena, pk.Srcs...)
		pk.Srcs = srcArena[s0:len(srcArena):len(srcArena)]
		o0 := len(offArena)
		offArena = append(offArena, pk.SrcOff...)
		pk.SrcOff = offArena[o0:len(offArena):len(offArena)]
	}
}

// BlockTiming is a Timing that can consume a whole planned block in one
// call. The batched capture loop prefers it over per-instruction Feed;
// *ooo.Model implements it, and the hooked per-instruction path remains the
// equivalence oracle (feeding a packet must be indistinguishable from
// feeding its instructions sequentially).
type BlockTiming interface {
	Timing
	// FeedBlock schedules the first n entries of the packet. addrs holds the
	// effective word addresses of the memory entries among them, in entry
	// order (extra trailing addresses are ignored, which lets a partial feed
	// after a faulting memory op reuse the caller's scratch as-is).
	FeedBlock(pk *TimingPacket, n int, addrs []int64)
}
