package profile

import (
	"testing"

	"needle/internal/interp"
	"needle/internal/ir"
)

// biasedLoop executes a loop where iterations i%4 != 0 take the "common"
// side and every fourth iteration takes the "rare" side, so the hot path is
// strongly but not fully biased.
const biasedLoopSrc = `func @biased(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [latch: r9]
  r4 = phi.i64 [entry: r2] [latch: r10]
  r5 = cmp.lt r3, r1
  condbr r5, %body, %exit
body:
  r6 = const.i64 4
  r7 = rem r3, r6
  r8 = cmp.eq r7, r2
  condbr r8, %rare, %common
rare:
  r11 = mul r4, r6
  br %latch
common:
  r12 = add r4, r3
  br %latch
latch:
  r13 = phi.i64 [rare: r11] [common: r12]
  r10 = add r13, r2
  r14 = const.i64 1
  r9 = add r3, r14
  br %head
exit:
  ret r4
}
`

func collect(t testing.TB, src string, n int64) *FunctionProfile {
	t.Helper()
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatalf("ParseFunction: %v", err)
	}
	fp, err := CollectFunction(nil, f, []uint64{interp.IBits(n)}, nil, true, 0)
	if err != nil {
		t.Fatalf("CollectFunction: %v", err)
	}
	return fp
}

func TestRankingHottestFirst(t *testing.T) {
	fp := collect(t, biasedLoopSrc, 100)
	if len(fp.Paths) < 2 {
		t.Fatalf("executed paths = %d, want >= 2", len(fp.Paths))
	}
	for i := 0; i+1 < len(fp.Paths); i++ {
		if fp.Paths[i].Weight < fp.Paths[i+1].Weight {
			t.Fatalf("paths not sorted by weight at %d", i)
		}
	}
	hot := fp.HottestPath()
	// The common side runs 75 of 100 iterations.
	foundCommon := false
	for _, b := range hot.Blocks {
		if b.Name == "common" {
			foundCommon = true
		}
	}
	if !foundCommon {
		t.Errorf("hottest path should traverse the common block, got %v", hot.Blocks)
	}
}

func TestWeightsPartitionDynamicInstructions(t *testing.T) {
	f, err := ir.ParseFunction(biasedLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector(nil, f, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(f, []uint64{interp.IBits(37)}, nil, c.Hooks(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if fp.TotalWeight != res.Steps {
		t.Fatalf("TotalWeight = %d, interpreter steps = %d", fp.TotalWeight, res.Steps)
	}
	var cov float64
	for _, p := range fp.Paths {
		cov += p.Coverage(fp)
	}
	if cov < 0.999 || cov > 1.001 {
		t.Fatalf("coverages sum to %v, want 1", cov)
	}
}

func TestCoverageTopK(t *testing.T) {
	fp := collect(t, biasedLoopSrc, 100)
	c1 := fp.CoverageTopK(1)
	cAll := fp.CoverageTopK(len(fp.Paths))
	if c1 <= 0 || c1 > 1 {
		t.Fatalf("top-1 coverage = %v", c1)
	}
	if cAll < 0.999 {
		t.Fatalf("full coverage = %v, want ~1", cAll)
	}
	if fp.CoverageTopK(2) < c1 {
		t.Fatal("coverage must be monotonic in k")
	}
}

func TestBranchBiases(t *testing.T) {
	fp := collect(t, biasedLoopSrc, 100)
	biases := fp.BranchBiases()
	if len(biases) != 2 { // head and body branches
		t.Fatalf("branches = %d, want 2", len(biases))
	}
	var bodyBias float64
	for _, b := range biases {
		if b.Block.Name == "body" {
			bodyBias = b.Bias()
		}
	}
	// body branch: 25% rare vs 75% common.
	if bodyBias < 0.74 || bodyBias > 0.76 {
		t.Fatalf("body bias = %v, want 0.75", bodyBias)
	}
	if frac := fp.FractionBelow80(); frac < 0.49 || frac > 0.51 {
		t.Fatalf("FractionBelow80 = %v, want 0.5 (1 of 2 branches)", frac)
	}
	h := fp.BiasHistogram()
	var sum float64
	for _, v := range h {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("histogram sums to %v", sum)
	}
}

func TestSequenceBias(t *testing.T) {
	fp := collect(t, biasedLoopSrc, 100)
	hot := fp.HottestPath()
	st, ok := fp.SequenceBias(hot.ID)
	if !ok {
		t.Fatal("no sequence data for hottest path")
	}
	// Pattern: rare,common,common,common,... so the common path follows
	// itself 2 of every 3 within-group transitions; bias should be
	// comfortably above 0.5 and the best successor is itself.
	if !st.SamePath {
		t.Errorf("best successor should be the same path (got %d after %d)", st.BestNext, st.PathID)
	}
	if st.Bias <= 0.5 {
		t.Errorf("sequence bias = %v, want > 0.5", st.Bias)
	}
	if st.ExpandFrac < 1.99 || st.ExpandFrac > 2.01 {
		t.Errorf("self-repeating path expansion = %v, want 2.0", st.ExpandFrac)
	}
}

func TestSequenceBiasMissingPath(t *testing.T) {
	fp := collect(t, biasedLoopSrc, 4)
	if _, ok := fp.SequenceBias(99999); ok {
		t.Fatal("expected no sequence data for unknown path")
	}
}

func TestPathMetrics(t *testing.T) {
	fp := collect(t, biasedLoopSrc, 100)
	hot := fp.HottestPath()
	if hot.Branches != 2 { // head condbr + body condbr
		t.Errorf("hot path branches = %d, want 2", hot.Branches)
	}
	if hot.MemOps != 0 {
		t.Errorf("hot path mem ops = %d, want 0", hot.MemOps)
	}
	if hot.Ops <= 0 || hot.Weight != hot.Ops*hot.Freq {
		t.Errorf("weight bookkeeping wrong: ops=%d freq=%d weight=%d", hot.Ops, hot.Freq, hot.Weight)
	}
}

func TestOverlapCount(t *testing.T) {
	fp := collect(t, biasedLoopSrc, 100)
	// Top paths share head/latch blocks, so overlap among top-5 >= 2.
	if got := fp.OverlapCount(5); got < 2 {
		t.Fatalf("overlap = %d, want >= 2", got)
	}
	if fp.OverlapCount(1) != 1 {
		t.Fatal("hottest path must overlap itself")
	}
}

func TestPathByID(t *testing.T) {
	fp := collect(t, biasedLoopSrc, 10)
	hot := fp.HottestPath()
	if fp.PathByID(hot.ID) != hot {
		t.Fatal("PathByID lookup failed")
	}
	if fp.PathByID(1<<40) != nil {
		t.Fatal("PathByID returned phantom path")
	}
}

func TestNumExecutedPathsBounded(t *testing.T) {
	fp := collect(t, biasedLoopSrc, 100)
	if fp.NumExecutedPaths() > int(fp.DAG.NumPaths()) {
		t.Fatalf("executed %d paths, but DAG has only %d", fp.NumExecutedPaths(), fp.DAG.NumPaths())
	}
}
