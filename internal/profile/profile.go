// Package profile aggregates dynamic execution data into the artifacts the
// Needle pipeline ranks and selects from: Ball-Larus path profiles with
// weights and coverage (Section III-A), edge and block profiles for the
// Superblock/Hyperblock baselines, branch bias distributions (Figure 4),
// and path-sequence statistics for target expansion (Table III).
package profile

import (
	"fmt"
	"sort"

	"needle/internal/ballarus"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/obs"
	"needle/internal/pm"
)

// Observability counters (no-ops until obs.Enable): which execution path
// collector-driven runs took. A hook-committed collector (Hooks() handed
// out) is counted under neither — its runs go through interp.Run directly.
var (
	obsRunsFast = obs.GetCounter("profile.runs.fast")
	obsRunsHook = obs.GetCounter("profile.runs.hook")
)

// Edge identifies a CFG edge by block indices within one function.
type Edge struct{ From, To int }

// Path is one executed Ball-Larus path with its profile-derived metrics.
type Path struct {
	ID     int64
	Freq   int64       // number of times the path executed
	Blocks []*ir.Block // decoded block sequence
	Ops    int64       // instructions per occurrence (phis+terminators included)
	Weight int64       // Pwt = Freq * Ops (Section III-A)

	Branches int // conditional branches traversed by the path
	MemOps   int // loads+stores along the path
}

// Coverage returns the fraction of the function's dynamic instructions this
// path accounts for (Pwt / Fwt).
func (p *Path) Coverage(fp *FunctionProfile) float64 {
	if fp.TotalWeight == 0 {
		return 0
	}
	return float64(p.Weight) / float64(fp.TotalWeight)
}

// FunctionProfile is the complete dynamic profile of one function.
type FunctionProfile struct {
	F   *ir.Function
	DAG *ballarus.DAG

	// Paths holds every executed path ranked by Weight, descending
	// (ties broken by ascending ID for determinism).
	Paths []*Path
	// TotalWeight is Fwt: the sum of all path weights, which equals the
	// function's total dynamic instruction count.
	TotalWeight int64
	// Trace is the sequence of executed path IDs, when trace recording was
	// enabled on the collector.
	Trace []int64

	EdgeCounts  map[Edge]int64
	BlockCounts []int64 // indexed by block index

	byID map[int64]*Path

	opsD []int64 // lazy dense path-ID -> op count mirror (DenseOps)
}

// PathByID returns the executed path with the given ID, or nil.
func (fp *FunctionProfile) PathByID(id int64) *Path { return fp.byID[id] }

// DenseOps returns a path-ID-indexed array of per-path dynamic op counts,
// or nil when the function's path-ID space is larger than maxPaths. The
// array is built once and shared: every offload target evaluated against
// this profile replays the same trace, so per-target copies would only
// multiply identical allocations. Not safe for concurrent first calls; the
// evaluation pipeline builds targets sequentially per function.
func (fp *FunctionProfile) DenseOps(maxPaths int64) []int64 {
	if fp.opsD != nil {
		return fp.opsD
	}
	n := fp.DAG.NumPaths()
	if n <= 0 || n > maxPaths {
		return nil
	}
	fp.opsD = make([]int64, n)
	for _, p := range fp.Paths {
		fp.opsD[p.ID] = p.Ops
	}
	return fp.opsD
}

// Collector gathers a function profile across any number of interpreter
// runs. Create with NewCollector, then either drive it with Run/RunTimed
// (which take the compiled fast path when eligible) or pass Hooks() to
// interp.Run for fully-general execution, and finally call Finish. A single
// collector must stick to one style: its first use commits it.
type Collector struct {
	dag      *ballarus.DAG
	profiler *ballarus.Profiler
	edges    map[Edge]int64
	blocks   []int64
	// member is dense by Block.Index with an identity check (callee blocks
	// have their own index ranges, so the index alone is ambiguous).
	member []*ir.Block

	// Fast-path state: the structural plan (shared, immutable, served by the
	// analysis manager), its Ball-Larus overlay, and the dense counters.
	plan   *interp.Plan
	bl     *interp.BLPlan
	state  *interp.PathState
	onPath func(id int64)
	hooked bool // Hooks() was handed out: stay on the hook path
}

// NewCollector prepares profiling for f. recordTrace enables path-trace
// capture (needed for Table III sequence analysis and the system
// simulator). Analyses are served by am (nil for a one-shot manager).
func NewCollector(am *pm.Manager, f *ir.Function, recordTrace bool) (*Collector, error) {
	am = pm.Ensure(am)
	dag, err := ballarus.Build(am, f)
	if err != nil {
		return nil, err
	}
	p := ballarus.NewProfiler(dag)
	p.RecordTrace = recordTrace
	member := make([]*ir.Block, len(f.Blocks))
	for _, b := range f.Blocks {
		member[b.Index] = b
	}
	c := &Collector{
		dag:      dag,
		profiler: p,
		edges:    make(map[Edge]int64),
		blocks:   make([]int64, len(f.Blocks)),
		member:   member,
	}
	if plan := am.ExecPlan(f); plan.Runnable() {
		c.plan = plan
		c.bl = dag.CompilePlan(plan)
		c.state = interp.NewPathState(plan, dag.NumPaths(), recordTrace)
	}
	return c, nil
}

// SetOnPath registers a callback fired at every path completion with the
// completed path's ID; the system simulator uses it to attribute host
// cycles and branch history to path occurrences.
func (c *Collector) SetOnPath(fn func(id int64)) {
	c.profiler.OnPath = fn
	c.onPath = fn
}

// Fast reports whether Run/RunTimed will use the compiled fast path: the
// function has a runnable plan and no hooks have been handed out. Callers
// needing extra events (Store/Mem/Instr consumers beyond a Timing model)
// must use Hooks() with interp.Run instead.
func (c *Collector) Fast() bool { return c.plan != nil && !c.hooked }

// Run profiles one invocation of the function on args and mem, taking the
// compiled fast path when Fast() holds and the hook path otherwise. Results,
// errors, and the collected profile are identical either way.
func (c *Collector) Run(args, mem []uint64, maxSteps int64) (interp.Result, error) {
	return c.RunTimed(args, mem, nil, nil, maxSteps)
}

// RunTimed is Run with an attached timing model and optional branch-history
// register, the system simulator's configuration. On the fast path the
// model is fed by direct calls — one block-batched FeedBlock per executed
// block when the model implements interp.BlockTiming (the OOO model does),
// falling back to per-instruction Feed otherwise; on the hook path it is
// wired through interp.CombineHooks exactly as before. All three feeds are
// observably identical; the capture differential tests pin that.
func (c *Collector) RunTimed(args, mem []uint64, timing interp.Timing, hist *uint64, maxSteps int64) (interp.Result, error) {
	if c.Fast() {
		obsRunsFast.Add(1)
		return interp.RunProfiled(c.plan, c.bl, args, mem, c.state, interp.PlanOpts{
			MaxSteps: maxSteps,
			Timing:   timing,
			History:  hist,
			OnPath:   c.onPath,
		})
	}
	obsRunsHook.Add(1)
	hooks := c.Hooks()
	if timing != nil || hist != nil {
		extra := []*interp.Hooks{hooks}
		if timing != nil {
			extra = append(extra, timingHooks(timing))
		}
		if hist != nil {
			extra = append(extra, histHooks(hist))
		}
		hooks = interp.CombineHooks(extra...)
	}
	return interp.Run(c.dag.F, args, mem, hooks, maxSteps)
}

// timingHooks adapts a Timing to interpreter hooks exactly as ooo.Model
// wires itself: the Mem event captures the effective address for the Instr
// event that follows, and condbr edges report the branch outcome.
func timingHooks(tm interp.Timing) *interp.Hooks {
	var pend int64
	return &interp.Hooks{
		Mem:   func(_ *ir.Instr, addr int64) { pend = addr },
		Instr: func(in *ir.Instr) { tm.Feed(in, pend) },
		Edge: func(from, to *ir.Block) {
			t := from.Term()
			if t == nil || t.Op != ir.OpCondBr {
				return
			}
			tm.NoteBranch(t.Blocks[0] == to)
		},
	}
}

// histHooks updates an external branch-history shift register from edge
// events, mirroring spec.HistoryTracker (which cannot be imported here).
func histHooks(h *uint64) *interp.Hooks {
	return &interp.Hooks{
		Edge: func(from, to *ir.Block) {
			t := from.Term()
			if t == nil || t.Op != ir.OpCondBr {
				return
			}
			bit := uint64(0)
			if t.Blocks[0] == to {
				bit = 1
			}
			*h = *h<<1 | bit
		},
	}
}

// isMember reports whether b belongs to the profiled function.
func (c *Collector) isMember(b *ir.Block) bool {
	return b.Index < len(c.member) && c.member[b.Index] == b
}

// Hooks returns the interpreter hooks that feed this collector, committing
// it to the fully-general hook path (Fast() reports false afterwards, so the
// profile keeps a single consistent event stream).
func (c *Collector) Hooks() *interp.Hooks {
	c.hooked = true
	own := &interp.Hooks{
		Block: func(b *ir.Block) {
			if c.isMember(b) {
				c.blocks[b.Index]++
			}
		},
		Edge: func(from, to *ir.Block) {
			if c.isMember(from) {
				c.edges[Edge{from.Index, to.Index}]++
			}
		},
	}
	return interp.CombineHooks(own, c.profiler.Hooks())
}

// drainFast folds the dense fast-path counters into the hook-path
// accumulators and clears them, so Finish sees one consistent profile no
// matter which path produced it. Fast runs all precede the first hook run
// (handing out hooks turns the fast path off for good), so concatenating
// traces fast-first preserves execution order.
func (c *Collector) drainFast() {
	st := c.state
	if st == nil {
		return
	}
	st.EachPath(func(id, n int64) { c.profiler.Counts[id] += n })
	for i, n := range st.Blocks {
		c.blocks[i] += n
	}
	for slot, n := range st.Edges {
		if n != 0 {
			from, to := c.plan.Edge(slot)
			c.edges[Edge{from, to}] += n
		}
	}
	if len(st.Trace) > 0 {
		c.profiler.Trace = append(st.Trace, c.profiler.Trace...)
	}
	st.Reset()
}

// Finish decodes and ranks the collected paths into a FunctionProfile,
// merging the dense fast-path counters with any hook-path accumulation.
func (c *Collector) Finish() (*FunctionProfile, error) {
	c.drainFast()
	fp := &FunctionProfile{
		F:           c.dag.F,
		DAG:         c.dag,
		Trace:       c.profiler.Trace,
		EdgeCounts:  c.edges,
		BlockCounts: c.blocks,
		byID:        make(map[int64]*Path),
	}
	if err := fp.rankCounts(c.profiler.Counts); err != nil {
		return nil, err
	}
	return fp, nil
}

// rankCounts decodes raw (path ID -> count) accumulators into ranked Path
// entries: the shared recipe behind Finish and FromData, so a profile
// rehydrated from serialized counts is bit-identical to one built live.
func (fp *FunctionProfile) rankCounts(counts map[int64]int64) error {
	for id, freq := range counts {
		blocks, err := fp.DAG.Decode(id)
		if err != nil {
			return fmt.Errorf("profile: decoding path %d of %s: %w", id, fp.F.Name, err)
		}
		p := &Path{ID: id, Freq: freq, Blocks: blocks, Ops: ballarus.PathOps(blocks)}
		p.Weight = p.Freq * p.Ops
		for _, b := range blocks {
			t := b.Term()
			if t != nil && t.Op == ir.OpCondBr {
				p.Branches++
			}
			for _, in := range b.Instrs {
				if in.Op.IsMemory() {
					p.MemOps++
				}
			}
		}
		fp.Paths = append(fp.Paths, p)
		fp.TotalWeight += p.Weight
		fp.byID[p.ID] = p
	}
	sort.Slice(fp.Paths, func(i, j int) bool {
		if fp.Paths[i].Weight != fp.Paths[j].Weight {
			return fp.Paths[i].Weight > fp.Paths[j].Weight
		}
		return fp.Paths[i].ID < fp.Paths[j].ID
	})
	return nil
}

// CollectFunction profiles a single invocation of f on the given arguments
// and memory. Most workloads wrap their whole kernel in one function call,
// so this is the common entry point.
func CollectFunction(am *pm.Manager, f *ir.Function, args []uint64, mem []uint64, recordTrace bool, maxSteps int64) (*FunctionProfile, error) {
	c, err := NewCollector(am, f, recordTrace)
	if err != nil {
		return nil, err
	}
	if _, err := c.Run(args, mem, maxSteps); err != nil {
		return nil, err
	}
	return c.Finish()
}

// TopK returns the k highest-weight paths (fewer if fewer executed).
func (fp *FunctionProfile) TopK(k int) []*Path {
	if k > len(fp.Paths) {
		k = len(fp.Paths)
	}
	return fp.Paths[:k]
}

// CoverageTopK returns the cumulative coverage of the top k paths
// (the Σ5 Cov. statistic of Table II when k=5, and Figure 6's stacks).
func (fp *FunctionProfile) CoverageTopK(k int) float64 {
	var w int64
	for _, p := range fp.TopK(k) {
		w += p.Weight
	}
	if fp.TotalWeight == 0 {
		return 0
	}
	return float64(w) / float64(fp.TotalWeight)
}

// NumExecutedPaths returns C1 of Table II: the count of distinct paths that
// executed at least once.
func (fp *FunctionProfile) NumExecutedPaths() int { return len(fp.Paths) }

// BranchBias describes the bias of one conditional branch: the fraction of
// executions that followed its more frequent side.
type BranchBias struct {
	Block *ir.Block
	Taken int64 // executions that took Blocks[0]
	Not   int64 // executions that took Blocks[1]
}

// Total returns the branch's dynamic execution count.
func (b *BranchBias) Total() int64 { return b.Taken + b.Not }

// Bias returns max(taken, not)/total in [0.5, 1], or 1 for unexecuted
// branches.
func (b *BranchBias) Bias() float64 {
	t := b.Total()
	if t == 0 {
		return 1
	}
	m := b.Taken
	if b.Not > m {
		m = b.Not
	}
	return float64(m) / float64(t)
}

// BranchBiases returns the bias of every conditional branch that executed
// at least once, in block order. This feeds Figure 4.
func (fp *FunctionProfile) BranchBiases() []BranchBias {
	var out []BranchBias
	for _, b := range fp.F.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		bb := BranchBias{
			Block: b,
			Taken: fp.EdgeCounts[Edge{b.Index, t.Blocks[0].Index}],
			Not:   fp.EdgeCounts[Edge{b.Index, t.Blocks[1].Index}],
		}
		if t.Blocks[0] == t.Blocks[1] {
			// Parallel edge: the single edge count covers both sides.
			bb.Taken = fp.EdgeCounts[Edge{b.Index, t.Blocks[0].Index}]
			bb.Not = 0
		}
		if bb.Total() > 0 {
			out = append(out, bb)
		}
	}
	return out
}

// BiasHistogram buckets executed branches by bias: the returned slice holds
// the fraction of branches with bias in [0.5,0.6), [0.6,0.7), [0.7,0.8),
// and [0.8,1.0]. Figure 4 highlights the fraction below 0.8.
func (fp *FunctionProfile) BiasHistogram() [4]float64 {
	var hist [4]float64
	biases := fp.BranchBiases()
	if len(biases) == 0 {
		return hist
	}
	for _, b := range biases {
		switch v := b.Bias(); {
		case v < 0.6:
			hist[0]++
		case v < 0.7:
			hist[1]++
		case v < 0.8:
			hist[2]++
		default:
			hist[3]++
		}
	}
	for i := range hist {
		hist[i] /= float64(len(biases))
	}
	return hist
}

// FractionBelow80 returns the fraction of executed branches with <80% bias,
// the headline statistic of Figure 4.
func (fp *FunctionProfile) FractionBelow80() float64 {
	h := fp.BiasHistogram()
	return h[0] + h[1] + h[2]
}

// SequenceStats summarizes back-to-back path behaviour from the path trace
// (Section IV-A, Table III).
type SequenceStats struct {
	PathID     int64   // the analyzed (hottest) path
	Follows    int64   // occurrences that had a successor in the trace
	BestNext   int64   // most common successor path ID
	BestCount  int64   // occurrences of that successor
	Bias       float64 // BestCount / Follows
	SamePath   bool    // the best successor is the path itself
	GrowthOps  int64   // ops of path + ops of best successor
	ExpandFrac float64 // GrowthOps / ops(path): 2.0 when the same path repeats
}

// SequenceBias analyzes the trace successor distribution of the given path.
// It returns ok=false if the path never has a successor in the trace.
func (fp *FunctionProfile) SequenceBias(pathID int64) (SequenceStats, bool) {
	succ := make(map[int64]int64)
	var follows int64
	for i := 0; i+1 < len(fp.Trace); i++ {
		if fp.Trace[i] == pathID {
			succ[fp.Trace[i+1]]++
			follows++
		}
	}
	if follows == 0 {
		return SequenceStats{PathID: pathID}, false
	}
	var bestNext, bestCount int64
	first := true
	for id, c := range succ {
		if first || c > bestCount || (c == bestCount && id < bestNext) {
			bestNext, bestCount = id, c
			first = false
		}
	}
	st := SequenceStats{
		PathID:    pathID,
		Follows:   follows,
		BestNext:  bestNext,
		BestCount: bestCount,
		Bias:      float64(bestCount) / float64(follows),
		SamePath:  bestNext == pathID,
	}
	self := fp.PathByID(pathID)
	next := fp.PathByID(bestNext)
	if self != nil && next != nil && self.Ops > 0 {
		st.GrowthOps = self.Ops + next.Ops
		st.ExpandFrac = float64(st.GrowthOps) / float64(self.Ops)
	}
	return st, true
}

// HottestPath returns the top-ranked path, or nil if nothing executed.
func (fp *FunctionProfile) HottestPath() *Path {
	if len(fp.Paths) == 0 {
		return nil
	}
	return fp.Paths[0]
}

// OverlapCount returns C8 of Table II: for the top-k paths, the number of
// executed paths (across the whole profile) sharing at least one basic
// block with the hottest path. The paper quantifies block overlap across
// the top five paths; we report, for the hottest path, how many executed
// paths overlap it.
func (fp *FunctionProfile) OverlapCount(k int) int {
	if len(fp.Paths) == 0 {
		return 0
	}
	inHot := make(map[*ir.Block]bool)
	for _, b := range fp.Paths[0].Blocks {
		inHot[b] = true
	}
	limit := len(fp.Paths)
	if k > 0 && k < limit {
		limit = k
	}
	n := 0
	for _, p := range fp.Paths[:limit] {
		for _, b := range p.Blocks {
			if inHot[b] {
				n++
				break
			}
		}
	}
	return n
}
