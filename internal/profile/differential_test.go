package profile

import (
	"reflect"
	"testing"

	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/irgen"
)

// feedEvent is one Timing.Feed observation.
type feedEvent struct {
	op   ir.Op
	dst  ir.Reg
	addr int64
}

// recTiming records the exact event stream a timing model would see, so the
// fast path and the hook path can be compared instruction by instruction.
type recTiming struct {
	feeds    []feedEvent
	branches []bool
}

func (r *recTiming) Feed(in *ir.Instr, addr int64) {
	r.feeds = append(r.feeds, feedEvent{in.Op, in.Dst, addr})
}

func (r *recTiming) NoteBranch(taken bool) { r.branches = append(r.branches, taken) }

// runStyle profiles p once and returns everything observable: the result,
// the final memory, the timing event stream, the branch-history register,
// the OnPath ID sequence, and the finished profile. hooked forces the
// fully-general hook path by handing out Hooks() before running.
func runStyle(t *testing.T, f *ir.Function, initMem []uint64, args []uint64, hooked bool, maxSteps int64) (
	interp.Result, error, []uint64, *recTiming, uint64, []int64, *FunctionProfile,
) {
	t.Helper()
	c, err := NewCollector(nil, f, true)
	if err != nil {
		t.Fatalf("NewCollector: %v", err)
	}
	if hooked {
		c.Hooks() // commit to the hook path
		if c.Fast() {
			t.Fatal("collector still fast after Hooks()")
		}
	}
	var ids []int64
	c.SetOnPath(func(id int64) { ids = append(ids, id) })
	mem := append([]uint64(nil), initMem...)
	tm := &recTiming{}
	var hist uint64
	res, runErr := c.RunTimed(args, mem, tm, &hist, maxSteps)
	var fp *FunctionProfile
	if runErr == nil {
		fp, err = c.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
	}
	return res, runErr, mem, tm, hist, ids, fp
}

func compareProfiles(t *testing.T, seed int64, fast, hook *FunctionProfile) {
	t.Helper()
	if fast.TotalWeight != hook.TotalWeight {
		t.Fatalf("seed %d: TotalWeight fast=%d hook=%d", seed, fast.TotalWeight, hook.TotalWeight)
	}
	if len(fast.Paths) != len(hook.Paths) {
		t.Fatalf("seed %d: path count fast=%d hook=%d", seed, len(fast.Paths), len(hook.Paths))
	}
	for i := range fast.Paths {
		a, b := fast.Paths[i], hook.Paths[i]
		if a.ID != b.ID || a.Freq != b.Freq || a.Ops != b.Ops || a.Weight != b.Weight {
			t.Fatalf("seed %d: path %d differs: fast={id %d freq %d ops %d} hook={id %d freq %d ops %d}",
				seed, i, a.ID, a.Freq, a.Ops, b.ID, b.Freq, b.Ops)
		}
	}
	if !reflect.DeepEqual(fast.Trace, hook.Trace) {
		t.Fatalf("seed %d: traces differ (fast %d entries, hook %d)", seed, len(fast.Trace), len(hook.Trace))
	}
	if !reflect.DeepEqual(fast.BlockCounts, hook.BlockCounts) {
		t.Fatalf("seed %d: block counts differ\nfast %v\nhook %v", seed, fast.BlockCounts, hook.BlockCounts)
	}
	if !reflect.DeepEqual(fast.EdgeCounts, hook.EdgeCounts) {
		t.Fatalf("seed %d: edge counts differ\nfast %v\nhook %v", seed, fast.EdgeCounts, hook.EdgeCounts)
	}
}

// TestFastPathMatchesHooksOnRandomCFGs is the differential oracle for the
// compiled-plan fast path: across hundreds of random structured CFGs,
// RunProfiled must be observationally identical to hook-based interp.Run —
// same return value and step count, same final memory, same timing event
// stream (Feed arguments and branch outcomes in order), same history
// register, same OnPath sequence, and a byte-identical finished profile.
func TestFastPathMatchesHooksOnRandomCFGs(t *testing.T) {
	const seeds = 300
	cfg := irgen.DefaultConfig()
	fastCount := 0
	for seed := int64(0); seed < seeds; seed++ {
		p := irgen.Generate(seed, cfg)
		args := []uint64{uint64(seed*7 + 3)}

		if c, err := NewCollector(nil, p.F, true); err != nil {
			t.Fatalf("seed %d: NewCollector: %v", seed, err)
		} else if c.Fast() {
			fastCount++
		}

		resF, errF, memF, tmF, histF, idsF, fpF := runStyle(t, p.F, p.Mem, args, false, 0)
		resH, errH, memH, tmH, histH, idsH, fpH := runStyle(t, p.F, p.Mem, args, true, 0)
		if errF != nil || errH != nil {
			t.Fatalf("seed %d: run errors: fast=%v hook=%v", seed, errF, errH)
		}
		if resF != resH {
			t.Fatalf("seed %d: result fast=%+v hook=%+v", seed, resF, resH)
		}
		if !reflect.DeepEqual(memF, memH) {
			t.Fatalf("seed %d: final memory differs", seed)
		}
		if !reflect.DeepEqual(tmF.feeds, tmH.feeds) {
			t.Fatalf("seed %d: timing feed streams differ (fast %d events, hook %d)",
				seed, len(tmF.feeds), len(tmH.feeds))
		}
		if !reflect.DeepEqual(tmF.branches, tmH.branches) {
			t.Fatalf("seed %d: branch outcome streams differ", seed)
		}
		if histF != histH {
			t.Fatalf("seed %d: history register fast=%#x hook=%#x", seed, histF, histH)
		}
		if !reflect.DeepEqual(idsF, idsH) {
			t.Fatalf("seed %d: OnPath sequences differ", seed)
		}
		compareProfiles(t, seed, fpF, fpH)
	}
	// The oracle is vacuous if the generator mostly produces plans the fast
	// path declines; irgen emits call-free reducible CFGs, so nearly all
	// should compile.
	if fastCount < seeds*9/10 {
		t.Fatalf("only %d/%d generated programs took the fast path", fastCount, seeds)
	}
}

// TestFastPathParallelCondBr covers the degenerate condbr whose two targets
// are the same block: the CFG has a single edge (and a single Ball-Larus
// annotation) for it, and the hook path reports the branch as taken on
// either side. The fast path must agree on counts, history bits, and the
// timing model's branch stream.
func TestFastPathParallelCondBr(t *testing.T) {
	src := `func @par(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [step: r8]
  r4 = cmp.lt r3, r1
  condbr r4, %body, %exit
body:
  r5 = and r3, r4
  condbr r5, %step, %step
step:
  r7 = const.i64 1
  r8 = add r3, r7
  br %head
exit:
  ret r3
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatalf("ParseFunction: %v", err)
	}
	args := []uint64{interp.IBits(25)}
	resF, errF, _, tmF, histF, idsF, fpF := runStyle(t, f, nil, args, false, 0)
	resH, errH, _, tmH, histH, idsH, fpH := runStyle(t, f, nil, args, true, 0)
	if errF != nil || errH != nil {
		t.Fatalf("run errors: fast=%v hook=%v", errF, errH)
	}
	if resF != resH {
		t.Fatalf("result fast=%+v hook=%+v", resF, resH)
	}
	if histF != histH {
		t.Fatalf("history fast=%#x hook=%#x", histF, histH)
	}
	if !reflect.DeepEqual(tmF.branches, tmH.branches) {
		t.Fatalf("branch streams differ:\nfast %v\nhook %v", tmF.branches, tmH.branches)
	}
	if !reflect.DeepEqual(idsF, idsH) {
		t.Fatal("OnPath sequences differ")
	}
	compareProfiles(t, -1, fpF, fpH)
}

// TestFastPathStepLimitMatchesHooks checks that the fast path enforces the
// step budget at exactly the same instruction as the hook interpreter, with
// the same error message — phis and terminators included.
func TestFastPathStepLimitMatchesHooks(t *testing.T) {
	cfg := irgen.DefaultConfig()
	for seed := int64(0); seed < 40; seed++ {
		p := irgen.Generate(seed, cfg)
		args := []uint64{uint64(seed + 11)}
		for _, limit := range []int64{1, 2, 3, 7, 50, 1000} {
			resF, errF, _, _, _, _, _ := runStyle(t, p.F, p.Mem, args, false, limit)
			resH, errH, _, _, _, _, _ := runStyle(t, p.F, p.Mem, args, true, limit)
			if (errF == nil) != (errH == nil) {
				t.Fatalf("seed %d limit %d: fast err %v, hook err %v", seed, limit, errF, errH)
			}
			if errF != nil && errF.Error() != errH.Error() {
				t.Fatalf("seed %d limit %d: error text differs:\nfast: %v\nhook: %v", seed, limit, errF, errH)
			}
			if resF.Steps != resH.Steps {
				t.Fatalf("seed %d limit %d: steps fast=%d hook=%d", seed, limit, resF.Steps, resH.Steps)
			}
		}
	}
}
