package profile

import (
	"fmt"

	"needle/internal/ballarus"
	"needle/internal/ir"
	"needle/internal/pm"
)

// Data is the pure serializable core of a FunctionProfile: everything the
// profile records about an execution, with no pointers into the profiled
// function. Paths are reduced to their (ID, Freq) counts — the decoded block
// sequences, per-path op counts, weights, and ranking are all deterministic
// functions of the counts and the function's Ball-Larus DAG, so FromData
// reconstructs them bit-for-bit.
type Data struct {
	// Counts maps executed path ID to its execution count (the profiler's
	// raw accumulator, and the seed Finish ranks from).
	Counts map[int64]int64
	// Trace is the executed path-ID sequence (empty when trace recording
	// was off).
	Trace []int64

	EdgeCounts  map[Edge]int64
	BlockCounts []int64
}

// Data extracts the serializable core of the profile.
func (fp *FunctionProfile) Data() *Data {
	d := &Data{
		Counts:      make(map[int64]int64, len(fp.Paths)),
		Trace:       fp.Trace,
		EdgeCounts:  fp.EdgeCounts,
		BlockCounts: fp.BlockCounts,
	}
	for _, p := range fp.Paths {
		d.Counts[p.ID] = p.Freq
	}
	return d
}

// FromData rehydrates a FunctionProfile against f: it rebuilds the
// Ball-Larus DAG (served by am; nil for a one-shot manager), decodes every
// counted path to its block sequence, and ranks exactly as Collector.Finish
// does. The result is indistinguishable from the profile the collector
// produced in the process that ran the workload, provided f is structurally
// identical to the profiled function (same blocks in the same order).
func FromData(am *pm.Manager, f *ir.Function, d *Data) (*FunctionProfile, error) {
	dag, err := ballarus.Build(pm.Ensure(am), f)
	if err != nil {
		return nil, fmt.Errorf("profile: rebuilding DAG for %s: %w", f.Name, err)
	}
	if len(d.BlockCounts) != len(f.Blocks) {
		return nil, fmt.Errorf("profile: data has %d block counts, %s has %d blocks",
			len(d.BlockCounts), f.Name, len(f.Blocks))
	}
	fp := &FunctionProfile{
		F:           f,
		DAG:         dag,
		Trace:       d.Trace,
		EdgeCounts:  d.EdgeCounts,
		BlockCounts: d.BlockCounts,
		byID:        make(map[int64]*Path),
	}
	if err := fp.rankCounts(d.Counts); err != nil {
		return nil, err
	}
	return fp, nil
}
