package spec

import (
	"testing"
	"testing/quick"

	"needle/internal/frame"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/profile"
	"needle/internal/region"
)

// storeThenBranchSrc stores an incremented value before a data-dependent
// branch that can leave the loop: a failing invocation has externally
// visible state to revert.
const storeThenBranchSrc = `func @stb(i64, i64) {
entry:
  r3 = const.i64 0
  br %head
head:
  r4 = phi.i64 [entry: r3] [latch: r5]
  r6 = cmp.lt r4, r2
  condbr r6, %body, %exit
body:
  r7 = add r1, r4
  r8 = load.i64 r7
  r9 = const.i64 1
  r10 = add r8, r9
  store.i64 r7, r10
  r11 = const.i64 100
  r12 = cmp.lt r8, r11
  condbr r12, %latch, %abort
abort:
  ret r8
latch:
  r5 = add r4, r9
  br %head
exit:
  ret r4
}
`

func buildHotFrame(t testing.TB, mem []uint64) (*ir.Function, *frame.Frame) {
	t.Helper()
	f, err := ir.ParseFunction(storeThenBranchSrc)
	if err != nil {
		t.Fatal(err)
	}
	work := make([]uint64, len(mem))
	copy(work, mem)
	fp, err := profile.CollectFunction(nil, f,
		[]uint64{interp.IBits(0), interp.IBits(int64(len(mem)))}, work, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := fp.HottestPath()
	fr, err := frame.Build(nil, region.FromPath(f, hot), frame.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return f, fr
}

// seedRegs prepares a register file as if the interpreter had just executed
// the entry block: params set, r3 = 0.
func seedRegs(f *ir.Function, base, n int64) []uint64 {
	regs := make([]uint64, len(f.RegType))
	regs[1] = interp.IBits(base)
	regs[2] = interp.IBits(n)
	regs[3] = 0
	return regs
}

func TestExecuteFrameSuccessCommitsStores(t *testing.T) {
	mem := make([]uint64, 8) // all zeros: branch to latch always taken
	f, fr := buildHotFrame(t, mem)
	regs := seedRegs(f, 0, 8)
	out, err := ExecuteFrame(fr, regs, mem, f.Entry())
	if err != nil {
		t.Fatalf("ExecuteFrame: %v", err)
	}
	if !out.Success {
		t.Fatalf("invocation failed at %v", out.FailedAt)
	}
	if out.Stores != 1 {
		t.Fatalf("stores = %d, want 1", out.Stores)
	}
	if interp.I(mem[0]) != 1 {
		t.Fatalf("mem[0] = %d, want 1 (committed)", interp.I(mem[0]))
	}
}

func TestExecuteFrameFailureRollsBack(t *testing.T) {
	mem := make([]uint64, 8)
	f, fr := buildHotFrame(t, mem)

	// Poison element 0 so the guarded branch aborts AFTER the store ran.
	mem[0] = interp.IBits(500)
	snapshot := make([]uint64, len(mem))
	copy(snapshot, mem)

	regs := seedRegs(f, 0, 8)
	out, err := ExecuteFrame(fr, regs, mem, f.Entry())
	if err != nil {
		t.Fatalf("ExecuteFrame: %v", err)
	}
	if out.Success {
		t.Fatal("invocation should have failed")
	}
	if out.FailedAt == nil || out.FailedAt.Name != "body" {
		t.Fatalf("failed at %v, want body", out.FailedAt)
	}
	if out.Stores != 1 {
		t.Fatalf("stores before failure = %d, want 1", out.Stores)
	}
	for i := range mem {
		if mem[i] != snapshot[i] {
			t.Fatalf("mem[%d] = %d not rolled back to %d", i, mem[i], snapshot[i])
		}
	}
}

// TestExecuteFrameRollbackProperty: for arbitrary memory contents, a failed
// invocation must leave memory bit-identical to the pre-invocation state.
func TestExecuteFrameRollbackProperty(t *testing.T) {
	base := make([]uint64, 8)
	f, fr := buildHotFrame(t, base)
	check := func(vals [8]uint16, poison uint8) bool {
		mem := make([]uint64, 8)
		for i, v := range vals {
			mem[i] = interp.IBits(int64(v))
		}
		mem[0] = interp.IBits(int64(poison) + 100) // force failure
		snapshot := make([]uint64, len(mem))
		copy(snapshot, mem)
		regs := seedRegs(f, 0, 8)
		out, err := ExecuteFrame(fr, regs, mem, f.Entry())
		if err != nil || out.Success {
			return false
		}
		for i := range mem {
			if mem[i] != snapshot[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUndoLogRollbackOrder(t *testing.T) {
	mem := []uint64{1, 2, 3}
	var log UndoLog
	// Two writes to the same address: rollback must restore the first old
	// value, exercising reverse-order restoration.
	log.Record(1, mem[1])
	mem[1] = 50
	log.Record(1, mem[1])
	mem[1] = 60
	log.Record(2, mem[2])
	mem[2] = 70
	if log.Len() != 3 {
		t.Fatalf("len = %d", log.Len())
	}
	log.Rollback(mem)
	if mem[1] != 2 || mem[2] != 3 {
		t.Fatalf("rollback wrong: %v", mem)
	}
	if log.Len() != 0 {
		t.Fatal("log not cleared after rollback")
	}
}

func TestUndoLogIgnoresOutOfRangeOnRollback(t *testing.T) {
	mem := []uint64{1}
	var log UndoLog
	log.Record(5, 99) // bogus address must not panic
	log.Record(0, mem[0])
	mem[0] = 7
	log.Rollback(mem)
	if mem[0] != 1 {
		t.Fatal("valid entry not restored")
	}
}

func TestAlwaysPredictor(t *testing.T) {
	var p Always
	if !p.Predict(0) || !p.Predict(^uint64(0)) {
		t.Fatal("Always must always predict invoke")
	}
	p.Update(0, false) // no-op, must not panic
	if p.Name() != "always" {
		t.Fatal("name")
	}
}

func TestHistoryPredictorLearns(t *testing.T) {
	h := NewHistory(4)
	histBad := uint64(0b1010)
	histGood := uint64(0b0101)
	// Train: histBad always fails, histGood always succeeds.
	for i := 0; i < 8; i++ {
		h.Update(histBad, false)
		h.Update(histGood, true)
	}
	if h.Predict(histBad) {
		t.Error("history predictor failed to learn a failing pattern")
	}
	if !h.Predict(histGood) {
		t.Error("history predictor unlearned a succeeding pattern")
	}
	// Saturation: more updates must not overflow.
	for i := 0; i < 100; i++ {
		h.Update(histGood, true)
		h.Update(histBad, false)
	}
	if !h.Predict(histGood) || h.Predict(histBad) {
		t.Error("saturating counters misbehaved")
	}
	// Recovery: a failing pattern that starts succeeding is re-learned.
	for i := 0; i < 4; i++ {
		h.Update(histBad, true)
	}
	if !h.Predict(histBad) {
		t.Error("history predictor cannot recover")
	}
}

func TestHistoryPredictorIndexMasking(t *testing.T) {
	h := NewHistory(2)
	// Indices 0b00 and 0b100 alias (2-bit table).
	h.Update(0b00, false)
	h.Update(0b00, false)
	if h.Predict(0b100) {
		t.Error("aliased entries should share state")
	}
}

func TestOraclePredictor(t *testing.T) {
	var o Oracle
	o.SetNext(true)
	if !o.Predict(0) {
		t.Fatal("oracle should follow SetNext(true)")
	}
	o.SetNext(false)
	if o.Predict(0) {
		t.Fatal("oracle should follow SetNext(false)")
	}
}

func TestHistoryTracker(t *testing.T) {
	f, err := ir.ParseFunction(storeThenBranchSrc)
	if err != nil {
		t.Fatal(err)
	}
	ht := &HistoryTracker{}
	mem := make([]uint64, 4)
	if _, err := interp.Run(f, []uint64{interp.IBits(0), interp.IBits(4)}, mem, ht.Hooks(), 0); err != nil {
		t.Fatal(err)
	}
	// 4 iterations: head taken x4 (1), body latch-taken x4 (1), final head
	// not-taken (0). History = ...11111111 0 => low bit must be 0, and the
	// prior 8 bits all 1.
	if ht.H&1 != 0 {
		t.Fatalf("history = %b, want trailing 0 (loop exit)", ht.H)
	}
	if (ht.H>>1)&0xff != 0xff {
		t.Fatalf("history = %b, want 8 taken bits before exit", ht.H)
	}
}
