// Package spec implements the speculation runtime around software frames:
// the undo log that makes frames atomic, a functional frame executor with
// rollback, the global branch-history tracker, and the accelerator
// invocation predictors of Section V ("When to invoke a BL-Path
// accelerator?").
package spec

import (
	"fmt"

	"needle/internal/frame"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/region"
)

// UndoLog records old memory values so a failed frame can revert every
// externally visible store (Figure 8's "Undo log").
type UndoLog struct {
	addrs []int64
	olds  []uint64
}

// Record logs the value about to be overwritten at addr.
func (l *UndoLog) Record(addr int64, old uint64) {
	l.addrs = append(l.addrs, addr)
	l.olds = append(l.olds, old)
}

// Len returns the number of logged stores.
func (l *UndoLog) Len() int { return len(l.addrs) }

// Rollback restores logged values in reverse order and clears the log.
func (l *UndoLog) Rollback(mem []uint64) {
	for i := len(l.addrs) - 1; i >= 0; i-- {
		a := l.addrs[i]
		if a >= 0 && a < int64(len(mem)) {
			mem[a] = l.olds[i]
		}
	}
	l.Reset()
}

// Reset discards the log (frame committed).
func (l *UndoLog) Reset() {
	l.addrs = l.addrs[:0]
	l.olds = l.olds[:0]
}

// Outcome describes one functional frame invocation.
type Outcome struct {
	Success  bool
	Ops      int       // instructions executed inside the region
	Stores   int       // stores performed (and logged)
	FailedAt *ir.Block // block whose branch left the region, on failure

	// On success: where control resumes. Returned is set when the region
	// exited via ret (Ret holds the raw bits); otherwise Next is the block
	// the host continues at and Prev the region block that branched there.
	Next     *ir.Block
	Prev     *ir.Block
	Returned bool
	Ret      uint64
}

// ExecuteFrame functionally executes one invocation of a frame against the
// given register file and memory, starting at the region entry as if
// control arrived from prev (which resolves the entry block's phis; pass
// nil when the entry has none). Stores are written through an undo log; if
// control leaves the region anywhere other than through the exit block the
// invocation fails and memory is rolled back to its pre-invocation state.
//
// Path frames additionally require control to follow the exact block
// sequence of the path; braid frames accept any flow that stays within the
// region from entry to exit, which is precisely the coverage advantage
// Section IV-B claims for braids.
func ExecuteFrame(fr *frame.Frame, regs []uint64, mem []uint64, prev *ir.Block) (Outcome, error) {
	r := fr.Region
	var log UndoLog
	var out Outcome
	cur := r.Entry
	pathIdx := 0

	fail := func(at *ir.Block) (Outcome, error) {
		log.Rollback(mem)
		out.Success = false
		out.FailedAt = at
		return out, nil
	}

	var phiTmp []uint64
	for {
		phis := cur.Phis()
		if len(phis) > 0 {
			phiTmp = phiTmp[:0]
			for _, phi := range phis {
				idx := -1
				for i, from := range phi.Blocks {
					if from == prev {
						idx = i
						break
					}
				}
				if idx < 0 {
					return out, fmt.Errorf("spec: %s.%s: phi %s has no incoming from %v",
						r.F.Name, cur.Name, phi.Dst, prev)
				}
				phiTmp = append(phiTmp, regs[phi.Args[idx]])
			}
			for i, phi := range phis {
				regs[phi.Dst] = phiTmp[i]
				out.Ops++
			}
		}
		for _, in := range cur.Instrs[len(phis):] {
			out.Ops++
			switch in.Op {
			case ir.OpBr, ir.OpCondBr, ir.OpRet:
				// handled below
			case ir.OpStore:
				addr := int64(regs[in.Args[0]])
				if addr < 0 || addr >= int64(len(mem)) {
					log.Rollback(mem)
					return out, fmt.Errorf("spec: store out of bounds at word %d", addr)
				}
				log.Record(addr, mem[addr])
				out.Stores++
				mem[addr] = regs[in.Args[1]]
			default:
				v, err := interp.Eval(in, regs, mem)
				if err != nil {
					log.Rollback(mem)
					return out, err
				}
				if in.Op.HasDest() {
					regs[in.Dst] = v
				}
			}
		}

		t := cur.Term()
		if t.Op == ir.OpRet {
			if cur != r.Exit {
				return fail(cur)
			}
			out.Success = true
			out.Returned = true
			if len(t.Args) == 1 {
				out.Ret = regs[t.Args[0]]
			}
			return out, nil
		}
		next := t.Blocks[0]
		if t.Op == ir.OpCondBr && regs[t.Args[0]] == 0 {
			next = t.Blocks[1]
		}
		if cur == r.Exit {
			// Leaving through the exit completes the frame regardless of
			// direction: all of the region's work is done.
			out.Success = true
			out.Next = next
			out.Prev = cur
			return out, nil
		}
		switch r.Kind {
		case region.KindPath:
			if pathIdx+1 >= len(r.Blocks) || r.Blocks[pathIdx+1] != next {
				return fail(cur)
			}
			pathIdx++
		default:
			if !r.Set[next] || next == r.Entry {
				return fail(cur)
			}
		}
		prev, cur = cur, next
	}
}

// Predictor decides whether to invoke the accelerator for an upcoming
// region entry, based on the global branch history observed before it.
type Predictor interface {
	// Predict reports whether to offload given the current branch history.
	Predict(history uint64) bool
	// Update trains the predictor with the invocation's actual outcome
	// (Update is also called for entries where Predict said no, so the
	// predictor can learn missed opportunities).
	Update(history uint64, success bool)
	Name() string
}

// Always invokes the accelerator on every region entry. Nine of the paper's
// applications effectively run in this mode.
type Always struct{}

func (Always) Predict(uint64) bool { return true }
func (Always) Update(uint64, bool) {}
func (Always) Name() string        { return "always" }

// History is the accelerator invocation history table of Section V: a table
// of 2-bit saturating counters indexed by the low bits of the global branch
// history preceding the region entry.
type History struct {
	bits  uint
	table []int8
}

// NewHistory creates a history predictor indexed by `bits` bits of branch
// history (table size 2^bits). Counters start at the invocation threshold;
// the predictor only offloads from strongly-confident entries, so noisy
// patterns quickly stop invoking (rollback is far more expensive than a
// missed opportunity).
func NewHistory(bits uint) *History {
	if bits == 0 || bits > 20 {
		bits = 12
	}
	t := make([]int8, 1<<bits)
	for i := range t {
		t[i] = 3
	}
	return &History{bits: bits, table: t}
}

func (h *History) idx(history uint64) uint64 { return history & ((1 << h.bits) - 1) }

func (h *History) Predict(history uint64) bool { return h.table[h.idx(history)] >= 3 }

func (h *History) Update(history uint64, success bool) {
	i := h.idx(history)
	if success {
		if h.table[i] < 3 {
			h.table[i]++
		}
	} else if h.table[i] > 0 {
		h.table[i]--
	}
}

func (h *History) Name() string { return "history" }

// Oracle invokes exactly when the invocation would succeed. The system
// simulator resolves the future for it; Predict is driven through SetNext.
type Oracle struct{ next bool }

// SetNext primes the oracle with the known outcome of the next invocation.
func (o *Oracle) SetNext(success bool) { o.next = success }

func (o *Oracle) Predict(uint64) bool { return o.next }
func (o *Oracle) Update(uint64, bool) {}
func (o *Oracle) Name() string        { return "oracle" }

// HistoryTracker maintains the global branch-history shift register from
// interpreter edge events: a 1 bit is shifted in when a conditional branch
// is taken, 0 when it falls through.
type HistoryTracker struct {
	H uint64
}

// Shift records one conditional-branch outcome: a 1 bit is shifted in for
// taken, 0 for fall-through. The interpreter's compiled fast path calls it
// directly; the hook path goes through Hooks.
func (ht *HistoryTracker) Shift(taken bool) {
	bit := uint64(0)
	if taken {
		bit = 1
	}
	ht.H = ht.H<<1 | bit
}

// Hooks returns interpreter hooks that update the history register.
func (ht *HistoryTracker) Hooks() *interp.Hooks {
	return &interp.Hooks{
		Edge: func(from, to *ir.Block) {
			t := from.Term()
			if t == nil || t.Op != ir.OpCondBr {
				return
			}
			ht.Shift(t.Blocks[0] == to)
		},
	}
}
