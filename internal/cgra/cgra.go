// Package cgra models the coarse-grained reconfigurable array accelerator
// of Table V: a 16x8 grid of function units with a 16-cycle reconfiguration
// time, cache-coherent memory access through the shared L2, and the paper's
// per-event dynamic energy constants (12 pJ per switch+link traversal,
// 8 pJ per integer FU op, 25 pJ per FP op, 5 pJ per latch).
//
// A software frame maps onto the fabric as a spatial dataflow graph. A
// single invocation costs the resource-constrained schedule length plus
// live-value marshalling; *consecutive* invocations of a resident frame
// pipeline at the initiation interval (II) — the larger of the resource
// bound and the loop-carried recurrence bound — which is what makes
// coarse-grained offload profitable (Sections IV-A and VI-A). Energy
// accrues per executed operation and routed operand with no instruction
// fetch; operations whose predicates are off burn only latch (gating)
// energy.
package cgra

import (
	"needle/internal/frame"
	"needle/internal/ir"
)

// Config describes the fabric.
type Config struct {
	Rows, Cols     int   // FU grid (16x8)
	ReconfigCycles int64 // one-time cost to load a frame's configuration
	MemPorts       int   // memory operations issued per cycle
	MemLatency     int64 // effective accelerator load-use latency: the fabric
	// streams through small coherent line buffers in front of the shared L2,
	// so the common case lands between an L1 hit and a full L2 round trip
	TransferRate int // live values marshalled per cycle at entry/exit

	// UniformRouting charges every operand edge exactly one switch+link
	// traversal instead of its placed Manhattan hop count. Kept for the
	// routing ablation; the default uses the placement-derived hops.
	UniformRouting bool

	// Dynamic energy, picojoules.
	SwitchLinkPJ float64 // per switch+link hop an operand traverses
	IntPJ        float64 // per integer FU op
	FPPJ         float64 // per FP op
	LatchPJ      float64 // per op result latched; also the gating cost of a
	// predicated-off op
	MemPJ      float64 // L2-side energy per accelerator memory access
	TransferPJ float64 // per live value moved between host and fabric
}

// DefaultConfig returns the Table V CGRA.
func DefaultConfig() Config {
	return Config{
		Rows: 16, Cols: 8,
		ReconfigCycles: 16,
		MemPorts:       4,
		MemLatency:     16,
		TransferRate:   2,
		SwitchLinkPJ:   12,
		IntPJ:          8,
		FPPJ:           25,
		LatchPJ:        5,
		MemPJ:          34, // L2 bank access
		TransferPJ:     18, // network + L2 buffering per live value
	}
}

// FULatency returns the latency of an op on a fabric function unit
// (memory ops take Config.MemLatency instead).
func FULatency(op ir.Op) int64 {
	switch op {
	case ir.OpMul:
		return 3
	case ir.OpDiv, ir.OpRem:
		return 12
	case ir.OpFAdd, ir.OpFSub:
		return 4
	case ir.OpFMul:
		return 5
	case ir.OpFDiv, ir.OpSqrt:
		return 12
	case ir.OpExp, ir.OpLog:
		return 20
	case ir.OpSIToFP, ir.OpFPToSI:
		return 4
	}
	return 1
}

// Sched is the mapping of one frame onto the fabric.
type Sched struct {
	Frame *frame.Frame

	// DataflowCycles is the resource-constrained schedule length of one
	// invocation's dataflow graph, memory latencies included.
	DataflowCycles int64
	// TransferIn/TransferOut are the live-value marshalling cycles paid at
	// the start and end of a resident run.
	TransferIn, TransferOut int64
	// UndoCycles is undo-log port pressure not overlapped with dataflow.
	UndoCycles int64
	// II is the initiation interval: the cycles between consecutive
	// pipelined invocations of the resident frame.
	II int64
	// AvgHops is the mean operand route length from the spatial placement.
	AvgHops float64
	// RecurrenceII and ResourceII are the two components of II.
	RecurrenceII, ResourceII int64

	// OpPJ is the average energy of one *executed* operation (FU + latch +
	// routed operands). GatePJ is the cost of a predicated-off op.
	OpPJ   float64
	GatePJ float64
	// TransferPJ is the marshalling energy per resident run; UndoPJ the
	// log-write energy per invocation; RollbackPJ the log-restore energy
	// per failure.
	TransferPJ float64
	UndoPJ     float64
	RollbackPJ float64
	// RollbackCycles is the time to restore the undo log on failure.
	RollbackCycles int64
}

// Schedule maps a frame onto the fabric configuration.
func Schedule(fr *frame.Frame, cfg Config) *Sched {
	if cfg.Rows == 0 {
		cfg = DefaultConfig()
	}
	capacity := cfg.Rows * cfg.Cols
	s := &Sched{Frame: fr}

	finish := make([]int64, len(fr.Ops))
	fuUsed := make(map[int64]int)
	memUsed := make(map[int64]int)

	// Spatial placement decides how far operands travel.
	var placement *Placement
	if !cfg.UniformRouting {
		placement = Place(fr, cfg)
		s.AvgHops = placement.AvgHops
	} else {
		s.AvgHops = 1
	}
	hops := func(i int, dep int) float64 {
		if placement == nil {
			return 1
		}
		a, b := placement.Pos[dep], placement.Pos[i]
		ar, ac := a/cfg.Cols, a%cfg.Cols
		br, bc := b/cfg.Cols, b%cfg.Cols
		d := ar - br
		if d < 0 {
			d = -d
		}
		e := ac - bc
		if e < 0 {
			e = -e
		}
		if d+e == 0 {
			return 0.5 // same unit: local forwarding latch
		}
		return float64(d + e)
	}

	var makespan int64
	var totalOpPJ float64
	memOps := 0
	for i, op := range fr.Ops {
		var ready int64
		for _, d := range op.Deps {
			if finish[d] > ready {
				ready = finish[d]
			}
		}
		isMem := op.Instr.Op.IsMemory()
		at := ready
		for {
			if fuUsed[at] < capacity && (!isMem || memUsed[at] < cfg.MemPorts) {
				break
			}
			at++
		}
		fuUsed[at]++
		if isMem {
			memUsed[at]++
			memOps++
		}
		lat := FULatency(op.Instr.Op)
		if isMem {
			lat = cfg.MemLatency
		}
		finish[i] = at + lat
		if finish[i] > makespan {
			makespan = finish[i]
		}

		var fu float64
		switch {
		case isMem:
			fu = cfg.MemPJ
		case op.Instr.Op.IsFloat():
			fu = cfg.FPPJ
		default:
			fu = cfg.IntPJ
		}
		routePJ := 0.0
		for _, d := range op.Deps {
			routePJ += hops(i, d) * cfg.SwitchLinkPJ
		}
		totalOpPJ += fu + cfg.LatchPJ + routePJ
	}
	s.DataflowCycles = makespan
	if len(fr.Ops) > 0 {
		s.OpPJ = totalOpPJ / float64(len(fr.Ops))
	}
	s.GatePJ = cfg.LatchPJ

	// Initiation interval: the recurrence bound is the longest dependence
	// *cycle* through a loop-carried value — the chain from a carried phi's
	// uses to the op producing that same phi's next value. Chains that start
	// at one carried value and end at a different one are forward paths and
	// pipeline freely, so each carried pair is measured independently.
	s.RecurrenceII = 1
	for _, cp := range fr.Carried {
		if d := recurrenceDepth(fr, cfg, cp); d > s.RecurrenceII {
			s.RecurrenceII = d
		}
	}
	s.ResourceII = 1
	if capacity > 0 {
		if v := int64((len(fr.Ops) + capacity - 1) / capacity); v > s.ResourceII {
			s.ResourceII = v
		}
	}
	if cfg.MemPorts > 0 {
		if v := int64((memOps + fr.UndoOps + cfg.MemPorts - 1) / cfg.MemPorts); v > s.ResourceII {
			s.ResourceII = v
		}
	}
	s.II = s.RecurrenceII
	if s.ResourceII > s.II {
		s.II = s.ResourceII
	}
	// Per-invocation host synchronization floor: even fully pipelined
	// invocations exchange completion/guard status with the host through
	// the shared L2 queue.
	if s.II < 6 {
		s.II = 6
	}

	// Undo-log bookkeeping shares the memory ports.
	if fr.UndoOps > 0 {
		s.UndoCycles = int64((fr.UndoOps + cfg.MemPorts - 1) / cfg.MemPorts)
		s.UndoPJ = float64(fr.UndoOps) * cfg.MemPJ
	}

	rate := cfg.TransferRate
	if rate <= 0 {
		rate = 1
	}
	s.TransferIn = int64((len(fr.LiveIn) + rate - 1) / rate)
	s.TransferOut = int64((len(fr.LiveOut) + rate - 1) / rate)
	s.TransferPJ = float64(len(fr.LiveIn)+len(fr.LiveOut)) * cfg.TransferPJ

	s.RollbackCycles = int64(fr.Stores) * cfg.MemLatency
	s.RollbackPJ = float64(fr.Stores) * cfg.MemPJ
	return s
}

// recurrenceDepth returns the latency of the dependence cycle through one
// carried pair: the longest chain starting at a use of cp.Phi and ending at
// the op that defines cp.Next (0 when the next value does not depend on the
// phi, i.e. no true cycle).
func recurrenceDepth(fr *frame.Frame, cfg Config, cp frame.CarriedPair) int64 {
	target, ok := fr.Def[cp.Next]
	if !ok {
		return 0
	}
	depth := make([]int64, len(fr.Ops))
	for i := range depth {
		depth[i] = -1
	}
	for i, op := range fr.Ops {
		d := int64(-1)
		op.Instr.Uses(func(r ir.Reg) {
			if r == cp.Phi {
				d = 0
			}
		})
		for _, dep := range op.Deps {
			if depth[dep] >= 0 && depth[dep] > d {
				d = depth[dep]
			}
		}
		if d >= 0 {
			lat := FULatency(op.Instr.Op)
			if op.Instr.Op.IsMemory() {
				lat = cfg.MemLatency
			}
			depth[i] = d + lat
		}
	}
	if depth[target] < 0 {
		return 0
	}
	return depth[target]
}

// InvokeCycles returns the latency of one cold (non-pipelined) invocation,
// excluding reconfiguration.
func (s *Sched) InvokeCycles() int64 {
	return s.TransferIn + s.DataflowCycles + s.UndoCycles + s.TransferOut
}

// FailCycles returns the latency wasted by a failed invocation under the
// paper's conservative model: the failure is detected only at the end, and
// the undo log is rolled back before the host re-executes.
func (s *Sched) FailCycles() int64 {
	return s.InvokeCycles() + s.RollbackCycles
}

// InvokeEnergyPJ returns the energy of one successful invocation that
// executed execOps of the frame's operations (the rest are gated off), not
// counting run-level transfer energy.
func (s *Sched) InvokeEnergyPJ(execOps int64) float64 {
	total := int64(len(s.Frame.Ops))
	if execOps > total {
		execOps = total
	}
	idle := total - execOps
	return float64(execOps)*s.OpPJ + float64(idle)*s.GatePJ + s.UndoPJ
}

// FailEnergyPJ returns the energy of a failed invocation: the whole frame
// ran, plus the rollback walk of the undo log.
func (s *Sched) FailEnergyPJ() float64 {
	return s.InvokeEnergyPJ(int64(len(s.Frame.Ops))) + s.RollbackPJ
}

// ILP returns the average ops per cycle of one invocation's schedule.
func (s *Sched) ILP() float64 {
	if s.DataflowCycles == 0 {
		return 0
	}
	return float64(len(s.Frame.Ops)) / float64(s.DataflowCycles)
}
