package cgra

import (
	"sync"

	"needle/internal/frame"
)

// Placement is a spatial mapping of a frame's dataflow graph onto the FU
// grid: each op gets a function unit, and operand routes are charged their
// Manhattan hop distance through the switched network. When a frame has
// more ops than FUs, units are time-multiplexed (ops wrap around the grid),
// exactly what the 16-cycle reconfigurable fabric does for large frames.
type Placement struct {
	Rows, Cols int
	// Pos assigns op i the FU at (Pos[i]/Cols, Pos[i]%Cols).
	Pos []int
	// TotalHops is the summed Manhattan length of all operand routes;
	// AvgHops the mean per route (0 when there are no routes).
	TotalHops int
	AvgHops   float64
	// Multiplexed counts ops sharing an FU with an earlier op.
	Multiplexed int
}

// spiralOrders[want] lists every slot of a rows×cols grid sorted by
// (Manhattan distance from want, slot index) — the exact visit order of the
// original linear nearest-free scan, precomputed so each placement walks
// only as far as the first free slot instead of scoring the whole grid.
// Orders are cached per geometry: the sweep places every frame on the same
// fabric, so the table is built once.
var (
	spiralMu    sync.Mutex
	spiralCache = map[int][][]uint16{}
)

func spiralOrders(rows, cols int) [][]uint16 {
	key := rows<<16 | cols
	spiralMu.Lock()
	defer spiralMu.Unlock()
	if o := spiralCache[key]; o != nil {
		return o
	}
	capacity := rows * cols
	maxD := rows + cols
	orders := make([][]uint16, capacity)
	flat := make([]uint16, capacity*capacity) // one backing array for all wants
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	for want := 0; want < capacity; want++ {
		o := flat[want*capacity : want*capacity : (want+1)*capacity]
		wr, wc := want/cols, want%cols
		for d := 0; d <= maxD; d++ {
			for s := 0; s < capacity; s++ {
				if abs(s/cols-wr)+abs(s%cols-wc) == d {
					o = append(o, uint16(s))
				}
			}
		}
		orders[want] = o
	}
	spiralCache[key] = orders
	return orders
}

// Place maps the frame greedily: ops are placed in dependence order at the
// free FU nearest the centroid of their producers (network locality), with
// a spiral search for the nearest free slot. This mirrors the locality-
// driven placement CGRA compilers use and makes the 12 pJ "switch+link"
// energy a per-hop cost instead of a per-edge constant.
func Place(fr *frame.Frame, cfg Config) *Placement {
	if cfg.Rows == 0 {
		cfg = DefaultConfig()
	}
	rows, cols := cfg.Rows, cfg.Cols
	capacity := rows * cols
	p := &Placement{Rows: rows, Cols: cols, Pos: make([]int, len(fr.Ops))}
	used := make([]bool, capacity)
	placed := 0
	orders := spiralOrders(rows, cols)

	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	dist := func(a, b int) int {
		ar, ac := a/cols, a%cols
		br, bc := b/cols, b%cols
		return abs(ar-br) + abs(ac-bc)
	}
	// nearestFree finds the unused FU closest to want: the first free slot
	// in the precomputed (distance, index) spiral order, which matches the
	// original full-grid scan's lowest-index-at-minimum-distance choice.
	nearestFree := func(want int) int {
		for _, s := range orders[want] {
			if !used[s] {
				return int(s)
			}
		}
		return -1
	}

	routes := 0
	for i, op := range fr.Ops {
		want := capacity / 2 // default: middle of the fabric
		if len(op.Deps) > 0 {
			var sr, sc int
			for _, d := range op.Deps {
				sr += p.Pos[d] / cols
				sc += p.Pos[d] % cols
			}
			want = (sr/len(op.Deps))*cols + sc/len(op.Deps)
		}
		slot := -1
		if placed < capacity {
			slot = nearestFree(want)
		}
		if slot < 0 {
			// Grid full: time-multiplex onto the desired unit.
			slot = want % capacity
			p.Multiplexed++
		} else {
			used[slot] = true
			placed++
		}
		p.Pos[i] = slot
		for _, d := range op.Deps {
			p.TotalHops += dist(p.Pos[d], slot)
			routes++
		}
	}
	if routes > 0 {
		p.AvgHops = float64(p.TotalHops) / float64(routes)
	}
	return p
}
