package cgra

import (
	"math/rand"
	"testing"

	"needle/internal/frame"
	"needle/internal/profile"
	"needle/internal/region"
	"needle/internal/workloads"
)

func workloadFrame(t testing.TB, name string, n int) *frame.Frame {
	t.Helper()
	w := workloads.ByName(name)
	f, args, memory := w.Instance(n)
	fp, err := profile.CollectFunction(nil, f, args, memory, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := frame.Build(nil, region.FromPath(f, fp.HottestPath()), frame.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func TestPlaceAssignsDistinctFUsWhenTheyFit(t *testing.T) {
	fr := workloadFrame(t, "429.mcf", 600) // small frame
	cfg := DefaultConfig()
	pl := Place(fr, cfg)
	if pl.Multiplexed != 0 {
		t.Fatalf("small frame multiplexed %d ops on a %d-FU grid", pl.Multiplexed, cfg.Rows*cfg.Cols)
	}
	seen := make(map[int]bool)
	for _, pos := range pl.Pos {
		if seen[pos] {
			t.Fatal("two ops share an FU despite free capacity")
		}
		seen[pos] = true
		if pos < 0 || pos >= cfg.Rows*cfg.Cols {
			t.Fatalf("position %d outside the grid", pos)
		}
	}
}

func TestPlaceTimeMultiplexesLargeFrames(t *testing.T) {
	fr := workloadFrame(t, "470.lbm", 400) // ~380 ops > 128 FUs
	cfg := DefaultConfig()
	pl := Place(fr, cfg)
	if pl.Multiplexed == 0 {
		t.Fatal("lbm's frame exceeds the grid; expected multiplexing")
	}
	if got := len(fr.Ops) - pl.Multiplexed; got != cfg.Rows*cfg.Cols {
		t.Fatalf("placed %d ops on a %d-FU grid", got, cfg.Rows*cfg.Cols)
	}
}

func TestPlaceBeatsRandomPlacement(t *testing.T) {
	fr := workloadFrame(t, "456.hmmer", 600)
	cfg := DefaultConfig()
	pl := Place(fr, cfg)

	// Random placement baseline (averaged over a few shuffles).
	r := rand.New(rand.NewSource(1))
	capacity := cfg.Rows * cfg.Cols
	var randHops float64
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		perm := r.Perm(capacity)
		total, routes := 0, 0
		for i, op := range fr.Ops {
			for _, d := range op.Deps {
				a, b := perm[d%capacity], perm[i%capacity]
				dr := a/cfg.Cols - b/cfg.Cols
				if dr < 0 {
					dr = -dr
				}
				dc := a%cfg.Cols - b%cfg.Cols
				if dc < 0 {
					dc = -dc
				}
				total += dr + dc
				routes++
			}
		}
		randHops += float64(total) / float64(routes)
	}
	randHops /= trials
	if pl.AvgHops >= randHops {
		t.Fatalf("greedy placement (%.2f avg hops) should beat random (%.2f)", pl.AvgHops, randHops)
	}
}

func TestRoutingEnergyAblation(t *testing.T) {
	fr := workloadFrame(t, "456.hmmer", 600)
	placed := Schedule(fr, DefaultConfig())
	uniformCfg := DefaultConfig()
	uniformCfg.UniformRouting = true
	uniform := Schedule(fr, uniformCfg)
	// With ~2 average hops, placement-aware routing costs more energy per
	// op than the optimistic one-hop assumption.
	if placed.OpPJ <= uniform.OpPJ {
		t.Fatalf("placed routing (%.1f pJ/op) should exceed uniform (%.1f pJ/op)", placed.OpPJ, uniform.OpPJ)
	}
	if placed.AvgHops <= 1 || placed.AvgHops > 6 {
		t.Fatalf("avg hops = %.2f out of the plausible band", placed.AvgHops)
	}
	if uniform.AvgHops != 1 {
		t.Fatalf("uniform routing should report 1 hop, got %v", uniform.AvgHops)
	}
	// Timing is placement-independent in this model.
	if placed.DataflowCycles != uniform.DataflowCycles {
		t.Fatal("routing model must not change the schedule length")
	}
}
