package cgra

import (
	"testing"

	"needle/internal/frame"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/profile"
	"needle/internal/region"
)

func hotPathFrame(t testing.TB, src string, args ...uint64) *frame.Frame {
	t.Helper()
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := profile.CollectFunction(nil, f, args, make([]uint64, 256), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := frame.Build(nil, region.FromPath(f, fp.HottestPath()), frame.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

const wideSrc = `func @wide(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [body: r4]
  r5 = cmp.lt r3, r1
  condbr r5, %body, %exit
body:
  r6 = add r3, r3
  r7 = mul r3, r3
  r8 = xor r3, r3
  r9 = and r3, r3
  r10 = or r6, r7
  r11 = add r8, r9
  r12 = const.i64 1
  r4 = add r3, r12
  br %head
exit:
  ret r3
}
`

func TestScheduleBasics(t *testing.T) {
	fr := hotPathFrame(t, wideSrc, interp.IBits(10))
	s := Schedule(fr, DefaultConfig())
	if s.DataflowCycles <= 0 {
		t.Fatal("no cycles")
	}
	if s.DataflowCycles > int64(len(fr.Ops))*3 {
		t.Fatalf("schedule %d cycles for %d ops looks unconstrained", s.DataflowCycles, len(fr.Ops))
	}
	if s.OpPJ <= 0 {
		t.Fatal("no per-op energy")
	}
	// II is at least the sync floor and never exceeds a cold invocation.
	if s.II < 1 || s.II > s.InvokeCycles() {
		t.Fatalf("II = %d out of band (invoke %d)", s.II, s.InvokeCycles())
	}
	if s.InvokeCycles() < s.DataflowCycles {
		t.Fatal("invoke cycles must include dataflow time")
	}
	if s.FailCycles() < s.InvokeCycles() {
		t.Fatal("failures cannot be cheaper than successes")
	}
	// The dataflow schedule must beat the critical path only by resource
	// limits, never the other way: cycles >= weighted critical path length.
	if s.DataflowCycles < int64(fr.CriticalPath()) {
		t.Fatalf("schedule %d beat the critical path %d", s.DataflowCycles, fr.CriticalPath())
	}
}

func TestScheduleExploitsParallelism(t *testing.T) {
	fr := hotPathFrame(t, wideSrc, interp.IBits(10))
	s := Schedule(fr, DefaultConfig())
	if ilp := s.ILP(); ilp <= 1.0 {
		t.Fatalf("CGRA ILP = %v, want > 1 on a wide body", ilp)
	}
}

func TestResourceConstraintLengthensSchedule(t *testing.T) {
	fr := hotPathFrame(t, wideSrc, interp.IBits(10))
	wide := Schedule(fr, DefaultConfig())
	narrowCfg := DefaultConfig()
	narrowCfg.Rows, narrowCfg.Cols = 1, 1 // one FU
	narrow := Schedule(fr, narrowCfg)
	if narrow.DataflowCycles <= wide.DataflowCycles {
		t.Fatalf("1 FU (%d cycles) should be slower than 128 FUs (%d)",
			narrow.DataflowCycles, wide.DataflowCycles)
	}
}

const memSrc = `func @m(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [body: r4]
  r5 = cmp.lt r3, r1
  condbr r5, %body, %exit
body:
  r6 = load.i64 r3
  r7 = add r6, r3
  store.i64 r3, r7
  r8 = const.i64 1
  r4 = add r3, r8
  br %head
exit:
  ret
}
`

func TestMemoryOpsPayUncoreLatency(t *testing.T) {
	fr := hotPathFrame(t, memSrc, interp.IBits(10))
	s := Schedule(fr, DefaultConfig())
	// load -> add -> store chain: at least two memory latencies plus the add.
	cfg := DefaultConfig()
	if want := 2*cfg.MemLatency + 1; s.DataflowCycles < want {
		t.Fatalf("cycles = %d, want >= %d for the memory chain", s.DataflowCycles, want)
	}
	if s.UndoCycles <= 0 {
		t.Fatal("store-bearing frame must pay undo bookkeeping")
	}
	if s.RollbackCycles <= 0 || s.FailEnergyPJ() <= s.InvokeEnergyPJ(int64(len(fr.Ops)))-1e-9 {
		t.Fatal("failure costs must exceed success costs for stores")
	}
}

func TestMemPortLimit(t *testing.T) {
	fr := hotPathFrame(t, memSrc, interp.IBits(10))
	cfg := DefaultConfig()
	cfg.MemPorts = 1
	one := Schedule(fr, cfg)
	four := Schedule(fr, DefaultConfig())
	if one.DataflowCycles < four.DataflowCycles {
		t.Fatal("fewer ports cannot be faster")
	}
}

func TestTransferCosts(t *testing.T) {
	fr := hotPathFrame(t, wideSrc, interp.IBits(10))
	cfg := DefaultConfig()
	s := Schedule(fr, cfg)
	wantIn := int64((len(fr.LiveIn) + cfg.TransferRate - 1) / cfg.TransferRate)
	if s.TransferIn != wantIn {
		t.Fatalf("transfer-in = %d, want %d", s.TransferIn, wantIn)
	}
	cfg.TransferRate = 100
	fast := Schedule(fr, cfg)
	if fast.TransferIn > s.TransferIn {
		t.Fatal("higher transfer rate cannot be slower")
	}
}

func TestFULatencyTable(t *testing.T) {
	if FULatency(ir.OpAdd) != 1 || FULatency(ir.OpFMul) != 5 {
		t.Fatal("FULatency table broken")
	}
}

func TestEnergyScalesWithOps(t *testing.T) {
	small := hotPathFrame(t, memSrc, interp.IBits(10))
	big := hotPathFrame(t, wideSrc, interp.IBits(10))
	// wide frame has more ops than mem frame minus memory energy skew; just
	// check both positive and that per-op energy is in a sane pJ band.
	for _, fr := range []*frame.Frame{small, big} {
		s := Schedule(fr, DefaultConfig())
		if s.OpPJ < 5 || s.OpPJ > 200 {
			t.Fatalf("per-op energy %v pJ out of band", s.OpPJ)
		}
		// Gating an op must be cheaper than executing it.
		if s.GatePJ >= s.OpPJ {
			t.Fatal("gated ops should cost less than executed ops")
		}
		// Executing fewer ops costs less energy.
		if s.InvokeEnergyPJ(1) >= s.InvokeEnergyPJ(int64(len(fr.Ops))) {
			t.Fatal("InvokeEnergyPJ not monotonic in executed ops")
		}
	}
}

func TestRecurrenceIIDistinguishesCarriedChains(t *testing.T) {
	// A loop with an FP accumulator (4-cycle recurrence) and a long
	// induction-driven address chain (pipelinable): the recurrence II must
	// reflect the accumulator, not the address chain.
	src := `func @acc(i64, i64) {
entry:
  r3 = const.f64 0
  r4 = const.i64 0
  br %head
head:
  r5 = phi.f64 [entry: r3] [body: r6]
  r7 = phi.i64 [entry: r4] [body: r8]
  r9 = cmp.lt r7, r2
  condbr r9, %body, %exit
body:
  r10 = mul r7, r7
  r11 = add r10, r1
  r12 = and r11, r2
  r13 = load.f64 r12
  r14 = fmul r13, r13
  r6 = fadd r5, r14
  r15 = const.i64 1
  r8 = add r7, r15
  br %head
exit:
  ret r5
}
`
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]uint64, 64)
	fp, err := profile.CollectFunction(nil, f, []uint64{interp.IBits(0), interp.IBits(32)}, mem, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := frame.Build(nil, region.FromPath(f, fp.HottestPath()), frame.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := Schedule(fr, DefaultConfig())
	// Accumulator cycle: fadd only = 4 cycles. The induction-chained
	// mul/add/and/load path (3+1+1+16 = 21+) must NOT bound the recurrence.
	if s.RecurrenceII > 8 {
		t.Fatalf("recurrence II = %d; the induction-fed load chain leaked into the cycle bound", s.RecurrenceII)
	}
	if s.RecurrenceII < 4 {
		t.Fatalf("recurrence II = %d; the FP accumulator cycle (4) is a hard bound", s.RecurrenceII)
	}
}
