package ir

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// typedOps is the set of opcodes whose mnemonic carries an explicit type
// suffix in the textual format because the type is not implied by the
// opcode itself.
func opNeedsTypeSuffix(op Op) bool {
	switch op {
	case OpConst, OpLoad, OpStore, OpPhi, OpCopy, OpSelect, OpCall:
		return true
	}
	return false
}

// Mnemonic returns the textual mnemonic for an instruction, including the
// type suffix where the format requires one (e.g. "load.i64").
func (in *Instr) Mnemonic() string {
	if opNeedsTypeSuffix(in.Op) {
		return in.Op.String() + "." + in.Type.String()
	}
	return in.Op.String()
}

// String renders a single instruction in the textual format.
func (in *Instr) String() string {
	var sb strings.Builder
	if in.Op.HasDest() {
		fmt.Fprintf(&sb, "%s = ", in.Dst)
	}
	sb.WriteString(in.Mnemonic())
	switch in.Op {
	case OpConst:
		if in.Type == F64 {
			f := math.Float64frombits(uint64(in.Imm))
			if math.IsNaN(f) || math.IsInf(f, 0) {
				fmt.Fprintf(&sb, " bits:%#x", uint64(in.Imm))
			} else {
				sb.WriteString(" " + strconv.FormatFloat(f, 'g', -1, 64))
			}
		} else {
			fmt.Fprintf(&sb, " %d", in.Imm)
		}
	case OpPhi:
		for i, a := range in.Args {
			fmt.Fprintf(&sb, " [%s: %s]", in.Blocks[i].Name, a)
		}
	case OpBr:
		fmt.Fprintf(&sb, " %%%s", in.Blocks[0].Name)
	case OpCondBr:
		fmt.Fprintf(&sb, " %s, %%%s, %%%s", in.Args[0], in.Blocks[0].Name, in.Blocks[1].Name)
	case OpCall:
		fmt.Fprintf(&sb, " @%s", in.Callee.Name)
		for _, a := range in.Args {
			fmt.Fprintf(&sb, " %s", a)
		}
	default:
		for i, a := range in.Args {
			if i == 0 {
				sb.WriteString(" ")
			} else {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
	}
	return sb.String()
}

// Print renders the function in the textual .nir format understood by Parse.
func Print(f *Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func @%s(", f.Name)
	for i, t := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	sb.WriteString(") {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// PrintModule renders every function in the module.
func PrintModule(m *Module) string {
	var sb strings.Builder
	for i, f := range m.Funcs {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(Print(f))
	}
	return sb.String()
}
