package ir

import (
	"errors"
	"testing"
)

// mustParseOne parses a single-function module and returns the function.
func mustParseOne(t *testing.T, src string) *Function {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m.Funcs[0]
}

// asVerifyError asserts err carries a *VerifyError for the given function.
func asVerifyError(t *testing.T, err error, wantFunc string) *VerifyError {
	t.Helper()
	if err == nil {
		t.Fatal("Verify accepted a malformed function")
	}
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("Verify error is %T, want *VerifyError: %v", err, err)
	}
	if ve.Func != wantFunc {
		t.Errorf("VerifyError.Func = %q, want %q", ve.Func, wantFunc)
	}
	if ve.Msg != err.Error() {
		t.Errorf("Error() = %q diverges from Msg %q", err.Error(), ve.Msg)
	}
	return ve
}

// TestVerifyReturnsTypedErrors pins the *VerifyError contract the serve
// layer's 422 mapping depends on: every structural rejection must surface
// the typed error with the function (and, where known, block) names.
func TestVerifyReturnsTypedErrors(t *testing.T) {
	f := &Function{Name: "empty"}
	ve := asVerifyError(t, Verify(f), "empty")
	if ve.Block != "" {
		t.Errorf("function-level failure recorded block %q", ve.Block)
	}

	g := mustParseOne(t, "func @g() {\nentry:\n  r1 = const.i64 0\n  ret r1\n}\n")
	// Corrupt an operand register to point far out of range.
	g.Blocks[0].Instrs[1].Args[0] = Reg(9999)
	ve = asVerifyError(t, Verify(g), "g")
	if ve.Block != "entry" {
		t.Errorf("VerifyError.Block = %q, want %q", ve.Block, "entry")
	}
}

// TestVerifyOutOfRangeRegisters covers hand-assembled functions whose
// register references exceed (or underflow) the register table — the shapes
// that used to panic instead of erroring.
func TestVerifyOutOfRangeRegisters(t *testing.T) {
	src := "func @f() {\nentry:\n  r1 = const.i64 7\n  ret r1\n}\n"

	f := mustParseOne(t, src)
	f.Blocks[0].Instrs[1].Args[0] = Reg(len(f.RegType))
	asVerifyError(t, Verify(f), "f")

	f = mustParseOne(t, src)
	f.Blocks[0].Instrs[1].Args[0] = Reg(-3)
	asVerifyError(t, Verify(f), "f")

	f = mustParseOne(t, src)
	f.Blocks[0].Instrs[0].Dst = Reg(len(f.RegType) + 5)
	asVerifyError(t, Verify(f), "f")

	// An undersized register table must not panic the parameter check.
	f = mustParseOne(t, "func @f(i64, i64) {\nentry:\n  ret r1\n}\n")
	f.RegType = f.RegType[:2] // covers NoReg + one of two params
	asVerifyError(t, Verify(f), "f")
}

// TestVerifyMalformedPhiArity: a phi whose value list disagrees with its
// block list, or with the block's predecessors, is rejected.
func TestVerifyMalformedPhiArity(t *testing.T) {
	src := `func @f(i64) {
entry:
  br %head
head:
  r2 = phi.i64 [entry: r1] [body: r3]
  r4 = cmp.lt r2, r1
  condbr r4, %body, %exit
body:
  r5 = const.i64 1
  r3 = add r2, r5
  br %head
exit:
  ret r2
}
`
	f := mustParseOne(t, src)
	phi := f.BlockByName("head").Instrs[0]
	phi.Args = phi.Args[:1] // one value, two incoming blocks
	asVerifyError(t, Verify(f), "f")

	f = mustParseOne(t, src)
	phi = f.BlockByName("head").Instrs[0]
	phi.Args = phi.Args[:1]
	phi.Blocks = phi.Blocks[:1] // consistent with each other, not with Preds
	ve := asVerifyError(t, Verify(f), "f")
	if ve.Block != "head" {
		t.Errorf("VerifyError.Block = %q, want %q", ve.Block, "head")
	}

	f = mustParseOne(t, src)
	phi = f.BlockByName("head").Instrs[0]
	phi.Blocks[1] = phi.Blocks[0] // duplicate incoming block
	asVerifyError(t, Verify(f), "f")
}

// TestVerifyUnreachableSuccessorRefs: branch targets outside the function
// (or nil) are rejected, as are predecessor lists that no longer match the
// successor edges (a CFG mutated without re-running Finish).
func TestVerifyUnreachableSuccessorRefs(t *testing.T) {
	src := "func @f() {\nentry:\n  br %exit\nexit:\n  ret\n}\n"

	f := mustParseOne(t, src)
	f.Blocks[0].Term().Blocks[0] = &Block{Name: "elsewhere"}
	asVerifyError(t, Verify(f), "f")

	f = mustParseOne(t, src)
	f.Blocks[0].Term().Blocks[0] = nil
	asVerifyError(t, Verify(f), "f")

	// Rewire the terminator without Finish: Preds are now stale.
	f = mustParseOne(t, "func @f() {\nentry:\n  br %a\na:\n  br %b\nb:\n  ret\n}\n")
	f.Blocks[0].Term().Blocks[0] = f.Blocks[2]
	asVerifyError(t, Verify(f), "f")
}

// TestParseRejectsDuplicateFunctions: two functions sharing a name cannot
// coexist in one module (Func lookups and call resolution would be
// ambiguous).
func TestParseRejectsDuplicateFunctions(t *testing.T) {
	_, err := Parse("func @f() {\nentry:\n  ret\n}\nfunc @f() {\nentry:\n  ret\n}\n")
	if err == nil {
		t.Fatal("Parse accepted duplicate function names")
	}
}
