// Package ir defines the compiler intermediate representation that the
// Needle pipeline analyzes and transforms.
//
// The IR is deliberately close in shape to the subset of LLVM IR the
// original Needle system consumed: functions are explicit control-flow
// graphs of basic blocks; instructions are typed, SSA-form (each virtual
// register is defined exactly once); control joins carry phi nodes; and
// memory is accessed only through explicit load/store instructions. Those
// are precisely the properties the paper's analyses (Ball-Larus path
// profiling, region formation, frame construction) rely on.
//
// Memory is word addressed: an address operand selects a 64-bit cell, which
// a load or store interprets as either an int64 or a float64 depending on
// the instruction type. This keeps the interpreter and the workload kernels
// free of byte-alignment bookkeeping without changing any control-flow or
// dependence property the paper measures.
package ir

import "fmt"

// Type is the type of a value held in a virtual register or memory cell.
type Type uint8

// Value types. Comparisons and boolean guards produce I64 values of 0 or 1.
const (
	I64 Type = iota // 64-bit signed integer
	F64             // IEEE-754 double
)

func (t Type) String() string {
	switch t {
	case I64:
		return "i64"
	case F64:
		return "f64"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Reg names a virtual register. Register 0 (NoReg) means "no register";
// real registers are numbered from 1. Function parameters occupy the first
// registers.
type Reg int32

// NoReg is the absent register, used for instructions without a destination
// and for void returns.
const NoReg Reg = 0

func (r Reg) String() string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("r%d", int32(r))
}

// Op enumerates instruction opcodes.
type Op uint8

const (
	// Integer arithmetic (binary, I64).
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv // signed division; divide-by-zero is a runtime error
	OpRem // signed remainder; remainder-by-zero is a runtime error
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // arithmetic shift right

	// Floating-point arithmetic (binary, F64).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Floating-point unary intrinsics (F64). These model FPU library calls
	// that real accelerators map to pipelined units.
	OpSqrt
	OpExp
	OpLog

	// Conversions.
	OpSIToFP // I64 -> F64
	OpFPToSI // F64 -> I64 (truncating)

	// Integer comparisons: produce I64 0 or 1.
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE

	// Floating-point comparisons: produce I64 0 or 1.
	OpFCmpEQ
	OpFCmpNE
	OpFCmpLT
	OpFCmpLE
	OpFCmpGT
	OpFCmpGE

	// Data movement.
	OpConst  // materialize Imm (bit pattern; Type selects interpretation)
	OpCopy   // Dst = Args[0]
	OpSelect // Dst = Args[0] != 0 ? Args[1] : Args[2]
	OpPhi    // Dst = value from Args[i] where Blocks[i] was the predecessor

	// Memory. Addresses are word indices into the interpreter's memory.
	OpLoad  // Dst = Mem[Args[0]]
	OpStore // Mem[Args[0]] = Args[1]

	// Calls. Dst = Callee(Args...). Needle's analyses run on fully inlined
	// hot functions (Section II-A), so the pipeline inlines these away with
	// passes.Inline before profiling.
	OpCall

	// Terminators.
	OpBr     // unconditional branch to Blocks[0]
	OpCondBr // branch to Blocks[0] if Args[0] != 0, else Blocks[1]
	OpRet    // return Args[0] if present

	opCount // sentinel
)

var opNames = [opCount]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpSqrt: "sqrt", OpExp: "exp", OpLog: "log",
	OpSIToFP: "sitofp", OpFPToSI: "fptosi",
	OpCmpEQ: "cmp.eq", OpCmpNE: "cmp.ne", OpCmpLT: "cmp.lt",
	OpCmpLE: "cmp.le", OpCmpGT: "cmp.gt", OpCmpGE: "cmp.ge",
	OpFCmpEQ: "fcmp.eq", OpFCmpNE: "fcmp.ne", OpFCmpLT: "fcmp.lt",
	OpFCmpLE: "fcmp.le", OpFCmpGT: "fcmp.gt", OpFCmpGE: "fcmp.ge",
	OpConst: "const", OpCopy: "copy", OpSelect: "select", OpPhi: "phi",
	OpLoad: "load", OpStore: "store", OpCall: "call",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool {
	return o == OpBr || o == OpCondBr || o == OpRet
}

// IsBranch reports whether the opcode is a conditional branch. Conditional
// branches are what region formation converts into guards or predicates.
func (o Op) IsBranch() bool { return o == OpCondBr }

// IsMemory reports whether the opcode accesses memory.
func (o Op) IsMemory() bool { return o == OpLoad || o == OpStore }

// IsFloat reports whether the opcode executes on a floating-point unit.
func (o Op) IsFloat() bool {
	switch o {
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpSqrt, OpExp, OpLog,
		OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE, OpFCmpGT, OpFCmpGE,
		OpSIToFP, OpFPToSI:
		return true
	}
	return false
}

// IsCompare reports whether the opcode is an integer or float comparison.
func (o Op) IsCompare() bool {
	return o >= OpCmpEQ && o <= OpFCmpGE
}

// HasDest reports whether instructions with this opcode define a register.
func (o Op) HasDest() bool {
	switch o {
	case OpStore, OpBr, OpCondBr, OpRet:
		return false
	}
	return true
}

// ResultType returns the type of the value an opcode produces given the
// instruction's declared type. Comparisons always produce I64.
func (o Op) ResultType(declared Type) Type {
	switch {
	case o.IsCompare():
		return I64
	case o == OpFPToSI:
		return I64
	case o == OpSIToFP:
		return F64
	}
	return declared
}

// OpByName resolves a textual opcode name as produced by Instr.String.
// It returns opCount and false for unknown names.
func OpByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return Op(op), true
		}
	}
	return opCount, false
}

// Instr is a single IR instruction.
//
// The operand fields are interpreted per opcode:
//
//   - Binary/unary ops: Args holds the operand registers; Dst the result.
//   - OpConst: Imm holds the raw 64-bit pattern; Type selects i64 vs f64.
//   - OpPhi: Args[i] is the incoming value when control arrived from
//     Blocks[i].
//   - OpLoad: Args[0] is the address; OpStore: Args[0] address, Args[1] value.
//   - OpBr: Blocks[0] is the target. OpCondBr: Args[0] is the condition,
//     Blocks[0] the taken target, Blocks[1] the fall-through.
//   - OpRet: Args is empty for a void return, else Args[0] is the value.
type Instr struct {
	Op     Op
	Type   Type
	Dst    Reg
	Args   []Reg
	Imm    int64
	Blocks []*Block
	// Callee is the called function for OpCall instructions.
	Callee *Function
}

// Uses calls fn for each register the instruction reads.
func (in *Instr) Uses(fn func(Reg)) {
	for _, a := range in.Args {
		if a != NoReg {
			fn(a)
		}
	}
}

// Block is a basic block: a straight-line sequence of instructions ending in
// exactly one terminator.
type Block struct {
	Name   string
	Index  int // position within Function.Blocks, assigned by Finish
	Instrs []*Instr

	// Preds is the list of predecessor blocks, computed by Function.Finish.
	Preds []*Block
}

// Term returns the block terminator, or nil if the block is empty or
// unterminated (only possible before verification).
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the successor blocks in terminator order (taken target
// first for conditional branches).
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Blocks
}

// Phis returns the phi instructions at the top of the block.
func (b *Block) Phis() []*Instr {
	var n int
	for n < len(b.Instrs) && b.Instrs[n].Op == OpPhi {
		n++
	}
	return b.Instrs[:n]
}

// NumOps returns the number of non-terminator instructions in the block.
// This is the operation count used throughout path weighting: terminators
// are control transfers that an accelerator elides, while everything else
// (including phis, which become selects or cancel entirely) is real work.
func (b *Block) NumOps() int {
	n := len(b.Instrs)
	if t := b.Term(); t != nil {
		n--
	}
	return n
}

func (b *Block) String() string { return b.Name }

// Function is a single-entry control-flow graph of basic blocks.
//
// Parameters occupy registers 1..NumParams. All register types are recorded
// in RegType, indexed by register number (index 0 is unused).
type Function struct {
	Name    string
	Params  []Type
	Blocks  []*Block // Blocks[0] is the entry block
	RegType []Type   // RegType[r] is the type of register r; len = NumRegs+1

	blockByName map[string]*Block
}

// NumRegs returns the number of virtual registers (excluding NoReg).
func (f *Function) NumRegs() int { return len(f.RegType) - 1 }

// NumParams returns the number of parameters.
func (f *Function) NumParams() int { return len(f.Params) }

// Param returns the register holding parameter i (0-based).
func (f *Function) Param(i int) Reg { return Reg(i + 1) }

// Entry returns the entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// BlockByName returns the block with the given name, or nil.
func (f *Function) BlockByName(name string) *Block {
	if f.blockByName == nil {
		return nil
	}
	return f.blockByName[name]
}

// Finish recomputes derived CFG state: block indices, the name lookup table,
// and predecessor lists. It must be called after any structural mutation and
// before analyses run. Builders and the parser call it automatically.
func (f *Function) Finish() {
	f.blockByName = make(map[string]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		b.Index = i
		b.Preds = b.Preds[:0]
		f.blockByName[b.Name] = b
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			s.Preds = append(s.Preds, b)
		}
	}
}

// NumInstrs returns the static instruction count across all blocks.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// ReturnType reports the type returned by the function and whether it
// returns a value at all (false = void). Mixed-type returns are rejected by
// the verifier, so inspecting any one returning block suffices.
func (f *Function) ReturnType() (Type, bool) {
	for _, b := range f.Blocks {
		if t := b.Term(); t != nil && t.Op == OpRet && len(t.Args) == 1 {
			return t.Type, true
		}
	}
	return I64, false
}

// Module is an ordered collection of functions.
type Module struct {
	Funcs []*Function
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Function {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Add appends a function to the module.
func (m *Module) Add(f *Function) { m.Funcs = append(m.Funcs, f) }

// CloneFunction returns a deep copy of f: fresh blocks and instructions
// with identical structure, register numbering, and call targets (callees
// are shared, not cloned). The clone is finished and ready for analysis;
// transformations can mutate it without touching the original.
func CloneFunction(f *Function) *Function {
	out := &Function{
		Name:    f.Name,
		Params:  append([]Type(nil), f.Params...),
		RegType: append([]Type(nil), f.RegType...),
	}
	blockMap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name}
		blockMap[b] = nb
		out.Blocks = append(out.Blocks, nb)
	}
	for _, b := range f.Blocks {
		nb := blockMap[b]
		for _, in := range b.Instrs {
			ni := &Instr{Op: in.Op, Type: in.Type, Dst: in.Dst, Imm: in.Imm, Callee: in.Callee}
			ni.Args = append(ni.Args, in.Args...)
			for _, t := range in.Blocks {
				ni.Blocks = append(ni.Blocks, blockMap[t])
			}
			nb.Instrs = append(nb.Instrs, ni)
		}
	}
	out.Finish()
	return out
}

// ModuleOf returns a module containing f and every function it
// (transitively) calls, in deterministic order with f first. Printing this
// module produces parseable .nir source even for call-bearing functions.
func ModuleOf(f *Function) *Module {
	m := &Module{}
	seen := map[*Function]bool{}
	var add func(fn *Function)
	add = func(fn *Function) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		m.Add(fn)
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op == OpCall {
					add(in.Callee)
				}
			}
		}
	}
	add(f)
	return m
}
