package ir

import "fmt"

// VerifyError is the typed error Verify returns for every structural
// rejection. Callers that ingest untrusted source (the needled service)
// match it with errors.As to distinguish "your program is malformed" from
// internal failures; Msg carries the full human-readable diagnostic.
type VerifyError struct {
	// Func is the name of the offending function.
	Func string
	// Block is the name of the offending block, or "" for function-level
	// failures (no blocks, inconsistent returns).
	Block string
	// Msg is the complete formatted diagnostic.
	Msg string
}

func (e *VerifyError) Error() string { return e.Msg }

// verifyErr builds a VerifyError with a pre-formatted message. The format
// strings embed the function/block names themselves (matching the
// historical fmt.Errorf diagnostics byte for byte); Func/Block carry them
// structurally for callers.
func verifyErr(fn, blk, format string, args ...any) error {
	return &VerifyError{Func: fn, Block: blk, Msg: fmt.Sprintf(format, args...)}
}

// Verify checks the structural well-formedness of a function:
//
//   - there is at least one block and the entry block has no predecessors
//     that would make it a loop header target of itself via fallthrough
//     (entry may still be a loop target via explicit branches);
//   - every block ends with exactly one terminator and contains no interior
//     terminators;
//   - phi instructions appear only as a prefix of their block and have one
//     incoming value per predecessor, matching Preds exactly;
//   - every register is defined exactly once (SSA), operand registers are in
//     range, and operand/destination types are consistent with opcodes;
//   - branch targets belong to the function.
//
// Verify requires Finish to have run (it relies on Preds and blockByName).
// Dominance (every use dominated by its def) is checked separately by
// analysis.VerifySSA because it needs a dominator tree.
//
// Verify is safe on arbitrary (adversarial) function values: it never
// panics on out-of-range registers, undersized RegType tables, or stale
// predecessor lists — every such malformation comes back as a *VerifyError.
func Verify(f *Function) error {
	if len(f.Blocks) == 0 {
		return verifyErr(f.Name, "", "ir: function %s has no blocks", f.Name)
	}
	if f.blockByName == nil {
		return verifyErr(f.Name, "", "ir: function %s not finished (call Finish)", f.Name)
	}
	// Parameters occupy registers 1..NumParams; the RegType table must cover
	// them (and slot 0 for NoReg) or the defined[] marking below would panic
	// on hand-assembled inputs.
	if len(f.RegType) < f.NumParams()+1 {
		return verifyErr(f.Name, "", "ir: function %s has %d parameters but register table covers only %d registers",
			f.Name, f.NumParams(), len(f.RegType)-1)
	}
	for i := 0; i < f.NumParams(); i++ {
		if want := f.Params[i]; f.RegType[f.Param(i)] != want {
			return verifyErr(f.Name, "", "ir: function %s: parameter %d register has type %s, want %s",
				f.Name, i, f.RegType[f.Param(i)], want)
		}
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	names := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if names[b.Name] {
			return verifyErr(f.Name, b.Name, "ir: %s: duplicate block name %q", f.Name, b.Name)
		}
		names[b.Name] = true
		inFunc[b] = true
	}

	// Finish computes Preds; a caller that mutated the CFG without
	// re-running it would let the phi/pred matching below validate against
	// stale edges, so recheck that the recorded predecessors are consistent
	// with the successor lists before trusting them.
	predCount := make(map[*Block]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if inFunc[s] {
				predCount[s]++
			}
		}
	}
	for _, b := range f.Blocks {
		if len(b.Preds) != predCount[b] {
			return verifyErr(f.Name, b.Name, "ir: %s.%s: predecessor list is stale (call Finish)", f.Name, b.Name)
		}
		for _, p := range b.Preds {
			if !inFunc[p] {
				return verifyErr(f.Name, b.Name, "ir: %s.%s: predecessor %q outside function", f.Name, b.Name, p.Name)
			}
		}
	}

	defined := make([]bool, len(f.RegType))
	for i := 0; i < f.NumParams(); i++ {
		defined[f.Param(i)] = true
	}
	checkReg := func(b *Block, r Reg) error {
		if r <= NoReg || int(r) >= len(f.RegType) {
			return verifyErr(f.Name, b.Name, "ir: %s.%s: operand register %d out of range", f.Name, b.Name, r)
		}
		return nil
	}

	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return verifyErr(f.Name, b.Name, "ir: %s.%s: empty block", f.Name, b.Name)
		}
		sawNonPhi := false
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if isLast {
					return verifyErr(f.Name, b.Name, "ir: %s.%s: block does not end in a terminator", f.Name, b.Name)
				}
				return verifyErr(f.Name, b.Name, "ir: %s.%s: interior terminator %s", f.Name, b.Name, in.Op)
			}
			if in.Op == OpPhi {
				if sawNonPhi {
					return verifyErr(f.Name, b.Name, "ir: %s.%s: phi after non-phi", f.Name, b.Name)
				}
			} else {
				sawNonPhi = true
			}
			for _, a := range in.Args {
				if err := checkReg(b, a); err != nil {
					return err
				}
			}
			for _, t := range in.Blocks {
				if t == nil || !inFunc[t] {
					name := "<nil>"
					if t != nil {
						name = t.Name
					}
					return verifyErr(f.Name, b.Name, "ir: %s.%s: %s targets block %q outside function", f.Name, b.Name, in.Op, name)
				}
			}
			if err := verifyShape(f, b, in); err != nil {
				return err
			}
			if in.Op.HasDest() {
				if in.Dst == NoReg {
					return verifyErr(f.Name, b.Name, "ir: %s.%s: %s missing destination", f.Name, b.Name, in.Op)
				}
				if in.Dst < NoReg || int(in.Dst) >= len(f.RegType) {
					return verifyErr(f.Name, b.Name, "ir: %s.%s: destination %s out of range", f.Name, b.Name, in.Dst)
				}
				if defined[in.Dst] {
					return verifyErr(f.Name, b.Name, "ir: %s.%s: register %s defined more than once", f.Name, b.Name, in.Dst)
				}
				defined[in.Dst] = true
				if want := in.Op.ResultType(in.Type); f.RegType[in.Dst] != want {
					return verifyErr(f.Name, b.Name, "ir: %s.%s: %s destination %s has type %s, want %s",
						f.Name, b.Name, in.Op, in.Dst, f.RegType[in.Dst], want)
				}
			} else if in.Dst != NoReg {
				return verifyErr(f.Name, b.Name, "ir: %s.%s: %s must not have a destination", f.Name, b.Name, in.Op)
			}
		}
		// Phi incoming edges must match predecessors exactly.
		for _, phi := range b.Phis() {
			if len(phi.Args) != len(phi.Blocks) {
				return verifyErr(f.Name, b.Name, "ir: %s.%s: phi %s has %d values for %d blocks",
					f.Name, b.Name, phi.Dst, len(phi.Args), len(phi.Blocks))
			}
			if len(phi.Args) != len(b.Preds) {
				return verifyErr(f.Name, b.Name, "ir: %s.%s: phi %s has %d incoming edges, block has %d predecessors",
					f.Name, b.Name, phi.Dst, len(phi.Args), len(b.Preds))
			}
			seen := make(map[*Block]bool, len(phi.Blocks))
			for _, from := range phi.Blocks {
				if seen[from] {
					return verifyErr(f.Name, b.Name, "ir: %s.%s: phi %s has duplicate incoming block %s",
						f.Name, b.Name, phi.Dst, from.Name)
				}
				seen[from] = true
				found := false
				for _, p := range b.Preds {
					if p == from {
						found = true
						break
					}
				}
				if !found {
					return verifyErr(f.Name, b.Name, "ir: %s.%s: phi %s names non-predecessor %s",
						f.Name, b.Name, phi.Dst, from.Name)
				}
			}
		}
	}

	// All returning blocks must agree on arity and type.
	retArity := -1
	var retType Type
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != OpRet {
			continue
		}
		if retArity == -1 {
			retArity = len(t.Args)
			retType = t.Type
		} else if retArity != len(t.Args) || (retArity == 1 && retType != t.Type) {
			return verifyErr(f.Name, "", "ir: %s: inconsistent return types across blocks", f.Name)
		}
	}

	// Every used register must be defined somewhere (full dominance checking
	// lives in analysis.VerifySSA).
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if !defined[a] {
					return verifyErr(f.Name, b.Name, "ir: %s.%s: register %s used but never defined", f.Name, b.Name, a)
				}
			}
		}
	}
	return nil
}

// verifyShape checks per-opcode operand counts and types.
func verifyShape(f *Function, b *Block, in *Instr) error {
	bad := func(format string, args ...any) error {
		prefix := fmt.Sprintf("ir: %s.%s: %s: ", f.Name, b.Name, in.Op)
		return &VerifyError{Func: f.Name, Block: b.Name, Msg: prefix + fmt.Sprintf(format, args...)}
	}
	wantArgs := func(n int) error {
		if len(in.Args) != n {
			return bad("want %d operands, have %d", n, len(in.Args))
		}
		return nil
	}
	wantArgType := func(i int, t Type) error {
		if f.RegType[in.Args[i]] != t {
			return bad("operand %d is %s, want %s", i, f.RegType[in.Args[i]], t)
		}
		return nil
	}
	wantBlocks := func(n int) error {
		if len(in.Blocks) != n {
			return bad("want %d block targets, have %d", n, len(in.Blocks))
		}
		return nil
	}

	switch in.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE:
		if err := wantArgs(2); err != nil {
			return err
		}
		for i := range in.Args {
			if err := wantArgType(i, I64); err != nil {
				return err
			}
		}
	case OpFAdd, OpFSub, OpFMul, OpFDiv,
		OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE, OpFCmpGT, OpFCmpGE:
		if err := wantArgs(2); err != nil {
			return err
		}
		for i := range in.Args {
			if err := wantArgType(i, F64); err != nil {
				return err
			}
		}
	case OpSqrt, OpExp, OpLog, OpFPToSI:
		if err := wantArgs(1); err != nil {
			return err
		}
		if err := wantArgType(0, F64); err != nil {
			return err
		}
	case OpSIToFP:
		if err := wantArgs(1); err != nil {
			return err
		}
		if err := wantArgType(0, I64); err != nil {
			return err
		}
	case OpConst:
		if err := wantArgs(0); err != nil {
			return err
		}
	case OpCopy:
		if err := wantArgs(1); err != nil {
			return err
		}
		if err := wantArgType(0, in.Type); err != nil {
			return err
		}
	case OpSelect:
		if err := wantArgs(3); err != nil {
			return err
		}
		if err := wantArgType(0, I64); err != nil {
			return err
		}
		if err := wantArgType(1, in.Type); err != nil {
			return err
		}
		if err := wantArgType(2, in.Type); err != nil {
			return err
		}
	case OpPhi:
		for i := range in.Args {
			if err := wantArgType(i, in.Type); err != nil {
				return err
			}
		}
	case OpLoad:
		if err := wantArgs(1); err != nil {
			return err
		}
		if err := wantArgType(0, I64); err != nil {
			return err
		}
	case OpCall:
		if in.Callee == nil {
			return bad("unresolved callee")
		}
		if len(in.Args) != in.Callee.NumParams() {
			return bad("callee %s wants %d args, have %d", in.Callee.Name, in.Callee.NumParams(), len(in.Args))
		}
		for i, pt := range in.Callee.Params {
			if err := wantArgType(i, pt); err != nil {
				return err
			}
		}
		rt, hasRet := in.Callee.ReturnType()
		if !hasRet {
			return bad("callee %s returns no value", in.Callee.Name)
		}
		if rt != in.Type {
			return bad("callee %s returns %s, call declared %s", in.Callee.Name, rt, in.Type)
		}
	case OpStore:
		if err := wantArgs(2); err != nil {
			return err
		}
		if err := wantArgType(0, I64); err != nil {
			return err
		}
		if err := wantArgType(1, in.Type); err != nil {
			return err
		}
	case OpBr:
		if err := wantArgs(0); err != nil {
			return err
		}
		if err := wantBlocks(1); err != nil {
			return err
		}
	case OpCondBr:
		if err := wantArgs(1); err != nil {
			return err
		}
		if err := wantArgType(0, I64); err != nil {
			return err
		}
		if err := wantBlocks(2); err != nil {
			return err
		}
	case OpRet:
		if len(in.Args) > 1 {
			return bad("want at most 1 operand, have %d", len(in.Args))
		}
		if err := wantBlocks(0); err != nil {
			return err
		}
	default:
		return bad("unknown opcode")
	}
	return nil
}
