package ir

import (
	"fmt"
	"math"
)

// Builder constructs a Function incrementally. It tracks a current insertion
// block; emit methods append to that block and return the destination
// register of the new instruction.
//
// The builder panics on structural misuse (emitting into a terminated block,
// adding incoming values to a non-phi). Misuse is a programming error in the
// kernel under construction, not a runtime condition, so a panic with a
// precise message is the most useful failure mode; Finish additionally runs
// the verifier and returns any semantic error.
type Builder struct {
	f    *Function
	cur  *Block
	phis map[Reg]*Instr // phi instructions awaiting incoming edges
}

// NewBuilder starts a function with the given name and parameter types.
// The entry block is created and selected for insertion.
func NewBuilder(name string, params ...Type) *Builder {
	f := &Function{
		Name:    name,
		Params:  params,
		RegType: make([]Type, 1+len(params)), // index 0 unused
	}
	for i, t := range params {
		f.RegType[1+i] = t
	}
	b := &Builder{f: f, phis: make(map[Reg]*Instr)}
	entry := b.NewBlock("entry")
	b.SetBlock(entry)
	return b
}

// Func returns the function under construction.
func (b *Builder) Func() *Function { return b.f }

// Param returns the register holding parameter i (0-based).
func (b *Builder) Param(i int) Reg {
	if i < 0 || i >= len(b.f.Params) {
		panic(fmt.Sprintf("ir: function %s has no parameter %d", b.f.Name, i))
	}
	return Reg(i + 1)
}

// NewBlock appends a new empty block with the given name.
func (b *Builder) NewBlock(name string) *Block {
	blk := &Block{Name: name}
	b.f.Blocks = append(b.f.Blocks, blk)
	return blk
}

// SetBlock selects the block that subsequent emissions append to.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.cur }

func (b *Builder) newReg(t Type) Reg {
	b.f.RegType = append(b.f.RegType, t)
	return Reg(len(b.f.RegType) - 1)
}

func (b *Builder) emit(in *Instr) {
	if b.cur == nil {
		panic("ir: no insertion block selected")
	}
	if t := b.cur.Term(); t != nil {
		panic(fmt.Sprintf("ir: block %s of %s already terminated", b.cur.Name, b.f.Name))
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
}

// ConstI emits an i64 constant.
func (b *Builder) ConstI(v int64) Reg {
	dst := b.newReg(I64)
	b.emit(&Instr{Op: OpConst, Type: I64, Dst: dst, Imm: v})
	return dst
}

// ConstF emits an f64 constant.
func (b *Builder) ConstF(v float64) Reg {
	dst := b.newReg(F64)
	b.emit(&Instr{Op: OpConst, Type: F64, Dst: dst, Imm: int64(math.Float64bits(v))})
	return dst
}

// Bin emits a binary operation. The result type follows the opcode.
func (b *Builder) Bin(op Op, x, y Reg) Reg {
	t := I64
	if op.IsFloat() && !op.IsCompare() {
		t = F64
	}
	dst := b.newReg(op.ResultType(t))
	b.emit(&Instr{Op: op, Type: t, Dst: dst, Args: []Reg{x, y}})
	return dst
}

// Integer arithmetic shorthands.

func (b *Builder) Add(x, y Reg) Reg { return b.Bin(OpAdd, x, y) }
func (b *Builder) Sub(x, y Reg) Reg { return b.Bin(OpSub, x, y) }
func (b *Builder) Mul(x, y Reg) Reg { return b.Bin(OpMul, x, y) }
func (b *Builder) Div(x, y Reg) Reg { return b.Bin(OpDiv, x, y) }
func (b *Builder) Rem(x, y Reg) Reg { return b.Bin(OpRem, x, y) }
func (b *Builder) And(x, y Reg) Reg { return b.Bin(OpAnd, x, y) }
func (b *Builder) Or(x, y Reg) Reg  { return b.Bin(OpOr, x, y) }
func (b *Builder) Xor(x, y Reg) Reg { return b.Bin(OpXor, x, y) }
func (b *Builder) Shl(x, y Reg) Reg { return b.Bin(OpShl, x, y) }
func (b *Builder) Shr(x, y Reg) Reg { return b.Bin(OpShr, x, y) }

// Floating-point arithmetic shorthands.

func (b *Builder) FAdd(x, y Reg) Reg { return b.Bin(OpFAdd, x, y) }
func (b *Builder) FSub(x, y Reg) Reg { return b.Bin(OpFSub, x, y) }
func (b *Builder) FMul(x, y Reg) Reg { return b.Bin(OpFMul, x, y) }
func (b *Builder) FDiv(x, y Reg) Reg { return b.Bin(OpFDiv, x, y) }

// Unary emits a unary floating-point intrinsic (sqrt, exp, log) or a
// conversion.
func (b *Builder) Unary(op Op, x Reg) Reg {
	t := F64
	if op == OpFPToSI {
		t = I64
	}
	dst := b.newReg(t)
	b.emit(&Instr{Op: op, Type: t, Dst: dst, Args: []Reg{x}})
	return dst
}

func (b *Builder) Sqrt(x Reg) Reg   { return b.Unary(OpSqrt, x) }
func (b *Builder) Exp(x Reg) Reg    { return b.Unary(OpExp, x) }
func (b *Builder) Log(x Reg) Reg    { return b.Unary(OpLog, x) }
func (b *Builder) SIToFP(x Reg) Reg { return b.Unary(OpSIToFP, x) }
func (b *Builder) FPToSI(x Reg) Reg { return b.Unary(OpFPToSI, x) }

// Cmp emits an integer comparison producing 0 or 1.
func (b *Builder) Cmp(op Op, x, y Reg) Reg { return b.Bin(op, x, y) }

// Comparison shorthands.

func (b *Builder) CmpEQ(x, y Reg) Reg  { return b.Bin(OpCmpEQ, x, y) }
func (b *Builder) CmpNE(x, y Reg) Reg  { return b.Bin(OpCmpNE, x, y) }
func (b *Builder) CmpLT(x, y Reg) Reg  { return b.Bin(OpCmpLT, x, y) }
func (b *Builder) CmpLE(x, y Reg) Reg  { return b.Bin(OpCmpLE, x, y) }
func (b *Builder) CmpGT(x, y Reg) Reg  { return b.Bin(OpCmpGT, x, y) }
func (b *Builder) CmpGE(x, y Reg) Reg  { return b.Bin(OpCmpGE, x, y) }
func (b *Builder) FCmpLT(x, y Reg) Reg { return b.Bin(OpFCmpLT, x, y) }
func (b *Builder) FCmpLE(x, y Reg) Reg { return b.Bin(OpFCmpLE, x, y) }
func (b *Builder) FCmpGT(x, y Reg) Reg { return b.Bin(OpFCmpGT, x, y) }
func (b *Builder) FCmpGE(x, y Reg) Reg { return b.Bin(OpFCmpGE, x, y) }
func (b *Builder) FCmpEQ(x, y Reg) Reg { return b.Bin(OpFCmpEQ, x, y) }
func (b *Builder) FCmpNE(x, y Reg) Reg { return b.Bin(OpFCmpNE, x, y) }

// Copy emits a register copy.
func (b *Builder) Copy(x Reg) Reg {
	t := b.f.RegType[x]
	dst := b.newReg(t)
	b.emit(&Instr{Op: OpCopy, Type: t, Dst: dst, Args: []Reg{x}})
	return dst
}

// Select emits Dst = cond != 0 ? x : y.
func (b *Builder) Select(cond, x, y Reg) Reg {
	t := b.f.RegType[x]
	dst := b.newReg(t)
	b.emit(&Instr{Op: OpSelect, Type: t, Dst: dst, Args: []Reg{cond, x, y}})
	return dst
}

// Load emits a typed load from the word address in addr.
func (b *Builder) Load(t Type, addr Reg) Reg {
	dst := b.newReg(t)
	b.emit(&Instr{Op: OpLoad, Type: t, Dst: dst, Args: []Reg{addr}})
	return dst
}

// Store emits a store of val to the word address in addr. The stored type is
// taken from val's register type.
func (b *Builder) Store(addr, val Reg) {
	b.emit(&Instr{Op: OpStore, Type: b.f.RegType[val], Args: []Reg{addr, val}})
}

// Call emits a call to callee with the given arguments. The callee must
// return a value; its type becomes the destination type.
func (b *Builder) Call(callee *Function, args ...Reg) Reg {
	t, ok := callee.ReturnType()
	if !ok {
		panic(fmt.Sprintf("ir: call to void function %s", callee.Name))
	}
	dst := b.newReg(t)
	b.emit(&Instr{Op: OpCall, Type: t, Dst: dst, Args: args, Callee: callee})
	return dst
}

// Phi emits a phi node of the given type with no incoming edges yet; use
// AddIncoming to attach them once predecessor values exist.
func (b *Builder) Phi(t Type) Reg {
	dst := b.newReg(t)
	in := &Instr{Op: OpPhi, Type: t, Dst: dst}
	if b.cur == nil {
		panic("ir: no insertion block selected")
	}
	// Phis must stay grouped at the top of the block.
	n := 0
	for n < len(b.cur.Instrs) && b.cur.Instrs[n].Op == OpPhi {
		n++
	}
	if n != len(b.cur.Instrs) {
		panic(fmt.Sprintf("ir: phi emitted after non-phi in block %s", b.cur.Name))
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
	b.phis[dst] = in
	return dst
}

// AddIncoming attaches an incoming (predecessor block, value) pair to a phi
// created by Phi.
func (b *Builder) AddIncoming(phi Reg, from *Block, val Reg) {
	in, ok := b.phis[phi]
	if !ok {
		panic(fmt.Sprintf("ir: %s is not a phi register", phi))
	}
	in.Args = append(in.Args, val)
	in.Blocks = append(in.Blocks, from)
}

// Br terminates the current block with an unconditional branch.
func (b *Builder) Br(target *Block) {
	b.emit(&Instr{Op: OpBr, Blocks: []*Block{target}})
}

// CondBr terminates the current block with a conditional branch: taken if
// cond != 0, otherwise not-taken.
func (b *Builder) CondBr(cond Reg, taken, notTaken *Block) {
	b.emit(&Instr{Op: OpCondBr, Args: []Reg{cond}, Blocks: []*Block{taken, notTaken}})
}

// Ret terminates the current block returning val; pass NoReg for void.
func (b *Builder) Ret(val Reg) {
	in := &Instr{Op: OpRet}
	if val != NoReg {
		in.Args = []Reg{val}
		in.Type = b.f.RegType[val]
	}
	b.emit(in)
}

// Finish completes construction: it recomputes CFG state and verifies the
// function, returning it alongside any verification error.
func (b *Builder) Finish() (*Function, error) {
	b.f.Finish()
	if err := Verify(b.f); err != nil {
		return nil, err
	}
	return b.f, nil
}

// MustFinish is Finish for statically known-good construction code (the
// workload kernels); it panics on verification failure.
func (b *Builder) MustFinish() *Function {
	f, err := b.Finish()
	if err != nil {
		panic(fmt.Sprintf("ir: %s failed verification: %v", b.f.Name, err))
	}
	return f
}
