package ir

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseVerify drives untrusted text through the full ingestion
// contract the inline-source endpoint depends on: Parse either rejects the
// input or yields a module every function of which passes Verify, and
// whose printed form re-parses to the identical printed form. A panic
// anywhere in Parse/Verify/Print is a bug — the service feeds these
// functions attacker-controlled bytes.
func FuzzParseVerify(f *testing.F) {
	for _, dir := range []string{"testdata", filepath.Join("..", "..", "examples", "nir")} {
		paths, err := filepath.Glob(filepath.Join(dir, "*.nir"))
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
	// Hand-picked adversarial shapes: huge register indices, phi arity
	// mismatches, dangling block refs, duplicate functions.
	f.Add("func @f(i64) {\nentry:\n  ret r1\n}\n")
	f.Add("func @f() {\nentry:\n  r1048577 = const.i64 0\n  ret\n}\n")
	f.Add("func @f() {\nentry:\n  br %nope\n}\n")
	f.Add("func @f() {\na:\n  r1 = phi.i64 [a: r1]\n  ret\n}\n")
	f.Add("func @f() {\nentry:\n  ret\n}\nfunc @f() {\nentry:\n  ret\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, fn := range m.Funcs {
			if verr := Verify(fn); verr != nil {
				t.Fatalf("Parse accepted a function Verify rejects: %v\nsource:\n%s", verr, src)
			}
		}
		printed := PrintModule(m)
		m2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\nprinted:\n%s", err, printed)
		}
		if again := PrintModule(m2); again != printed {
			t.Fatalf("print not a fixed point:\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
	})
}
