package ir

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse reads the textual .nir format produced by Print and reconstructs a
// module. The format is line oriented:
//
//	func @name(i64, f64) {
//	entry:
//	  r3 = const.i64 42
//	  r4 = add r1, r3
//	  condbr r4, %body, %exit
//	body:
//	  ...
//	}
//
// Comments run from ';' to end of line. Register names are arbitrary
// identifiers. A canonical name of the form r<N> (as the printer emits)
// keeps register number N, so Parse(Print(f)) reproduces f's register
// numbering exactly — the property the on-disk artifact codec relies on to
// reference registers positionally across processes. Any other identifier
// is assigned the lowest free number in definition order, parameters first.
func Parse(src string) (*Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	m := &Module{}
	var pendingCalls []pendingCall
	for {
		p.skipBlank()
		if p.eof() {
			break
		}
		f, calls, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		if m.Func(f.Name) != nil {
			return nil, fmt.Errorf("ir: duplicate function @%s", f.Name)
		}
		m.Add(f)
		pendingCalls = append(pendingCalls, calls...)
	}
	// Resolve call targets module-wide (forward references allowed), then
	// verify every function.
	for _, pc := range pendingCalls {
		callee := m.Func(pc.name)
		if callee == nil {
			return nil, fmt.Errorf("ir: line %d: call to undefined function @%s", pc.line+1, pc.name)
		}
		pc.instr.Callee = callee
	}
	for _, f := range m.Funcs {
		if err := Verify(f); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// pendingCall records a call instruction awaiting module-level resolution.
type pendingCall struct {
	instr *Instr
	name  string
	line  int
}

// ParseFunction parses a source containing exactly one function.
func ParseFunction(src string) (*Function, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(m.Funcs) != 1 {
		return nil, fmt.Errorf("ir: expected exactly one function, found %d", len(m.Funcs))
	}
	return m.Funcs[0], nil
}

type parser struct {
	lines []string
	pos   int
}

func (p *parser) eof() bool { return p.pos >= len(p.lines) }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ir: line %d: %s", p.pos+1, fmt.Sprintf(format, args...))
}

func (p *parser) cur() string {
	line := p.lines[p.pos]
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func (p *parser) skipBlank() {
	for !p.eof() && p.cur() == "" {
		p.pos++
	}
}

// rawInstr is an instruction parsed into names, before register resolution.
type rawInstr struct {
	line     int
	dst      string
	mnemonic string
	args     []string // register names
	imm      int64
	blocks   []string // branch targets / phi incoming blocks
	callee   string   // called function name for call instructions
}

func (p *parser) parseFunc() (*Function, []pendingCall, error) {
	header := p.cur()
	if !strings.HasPrefix(header, "func @") {
		return nil, nil, p.errf("expected 'func @name(...)', got %q", header)
	}
	open := strings.IndexByte(header, '(')
	closeP := strings.LastIndexByte(header, ')')
	if open < 0 || closeP < open || !strings.HasSuffix(header, "{") {
		return nil, nil, p.errf("malformed function header %q", header)
	}
	name := strings.TrimSpace(header[len("func @"):open])
	if name == "" {
		return nil, nil, p.errf("missing function name")
	}
	var params []Type
	paramSrc := strings.TrimSpace(header[open+1 : closeP])
	if paramSrc != "" {
		for _, ps := range strings.Split(paramSrc, ",") {
			t, err := parseType(strings.TrimSpace(ps))
			if err != nil {
				return nil, nil, p.errf("%v", err)
			}
			params = append(params, t)
		}
	}
	p.pos++

	// Collect blocks of raw instructions.
	type rawBlock struct {
		name   string
		instrs []rawInstr
	}
	var blocks []*rawBlock
	var cur *rawBlock
	for {
		p.skipBlank()
		if p.eof() {
			return nil, nil, p.errf("unexpected end of input in function %s", name)
		}
		line := p.cur()
		if line == "}" {
			p.pos++
			break
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			cur = &rawBlock{name: strings.TrimSuffix(line, ":")}
			blocks = append(blocks, cur)
			p.pos++
			continue
		}
		if cur == nil {
			return nil, nil, p.errf("instruction before first block label")
		}
		ri, err := p.parseInstrLine(line)
		if err != nil {
			return nil, nil, err
		}
		cur.instrs = append(cur.instrs, ri)
		p.pos++
	}
	if len(blocks) == 0 {
		return nil, nil, p.errf("function %s has no blocks", name)
	}

	// Pass 1: create function, blocks, and assign registers to definitions.
	f := &Function{Name: name, Params: params, RegType: make([]Type, 1+len(params))}
	for i, t := range params {
		f.RegType[1+i] = t
	}
	blockByName := make(map[string]*Block, len(blocks))
	for _, rb := range blocks {
		if blockByName[rb.name] != nil {
			return nil, nil, fmt.Errorf("ir: %s: duplicate block %q", name, rb.name)
		}
		b := &Block{Name: rb.name}
		f.Blocks = append(f.Blocks, b)
		blockByName[rb.name] = b
	}
	var calls []pendingCall
	regByName := make(map[string]Reg)
	used := make(map[Reg]bool)
	for i := range params {
		regByName[fmt.Sprintf("r%d", i+1)] = Reg(i + 1)
		used[Reg(i+1)] = true
	}
	next := Reg(1 + len(params))
	defReg := func(nm string, t Type, line int) (Reg, error) {
		if _, ok := regByName[nm]; ok {
			return NoReg, fmt.Errorf("ir: line %d: register %s defined more than once", line+1, nm)
		}
		var r Reg
		if n, ok := canonicalRegNumber(nm); ok {
			// Canonical r<N> names pin their number, preserving the printed
			// function's numbering across a round trip.
			if used[n] {
				return NoReg, fmt.Errorf("ir: line %d: register %s conflicts with an earlier definition", line+1, nm)
			}
			r = n
		} else {
			for used[next] {
				next++
			}
			r = next
		}
		for len(f.RegType) <= int(r) {
			f.RegType = append(f.RegType, I64)
		}
		f.RegType[r] = t
		regByName[nm] = r
		used[r] = true
		return r, nil
	}
	type pending struct {
		instr *Instr
		raw   *rawInstr
	}
	var pendings []pending
	for bi, rb := range blocks {
		b := f.Blocks[bi]
		for i := range rb.instrs {
			ri := &rb.instrs[i]
			op, declared, err := parseMnemonic(ri.mnemonic)
			if err != nil {
				return nil, nil, fmt.Errorf("ir: line %d: %v", ri.line+1, err)
			}
			in := &Instr{Op: op, Type: declared, Imm: ri.imm}
			if op.HasDest() {
				if ri.dst == "" {
					return nil, nil, fmt.Errorf("ir: line %d: %s requires a destination", ri.line+1, op)
				}
				r, err := defReg(ri.dst, op.ResultType(declared), ri.line)
				if err != nil {
					return nil, nil, err
				}
				in.Dst = r
			} else if ri.dst != "" {
				return nil, nil, fmt.Errorf("ir: line %d: %s must not have a destination", ri.line+1, op)
			}
			b.Instrs = append(b.Instrs, in)
			pendings = append(pendings, pending{in, ri})
		}
	}

	// Pass 2: resolve operand registers and block targets.
	for _, pd := range pendings {
		for _, an := range pd.raw.args {
			r, ok := regByName[an]
			if !ok {
				return nil, nil, fmt.Errorf("ir: line %d: undefined register %s", pd.raw.line+1, an)
			}
			pd.instr.Args = append(pd.instr.Args, r)
		}
		for _, bn := range pd.raw.blocks {
			t, ok := blockByName[bn]
			if !ok {
				return nil, nil, fmt.Errorf("ir: line %d: undefined block %%%s", pd.raw.line+1, bn)
			}
			pd.instr.Blocks = append(pd.instr.Blocks, t)
		}
		if pd.raw.callee != "" {
			calls = append(calls, pendingCall{instr: pd.instr, name: pd.raw.callee, line: pd.raw.line})
		}
		// Returns carry the type of their operand (the mnemonic has no
		// suffix to declare it).
		if pd.instr.Op == OpRet && len(pd.instr.Args) == 1 {
			pd.instr.Type = f.RegType[pd.instr.Args[0]]
		}
	}

	f.Finish()
	return f, calls, nil
}

func (p *parser) parseInstrLine(line string) (rawInstr, error) {
	ri := rawInstr{line: p.pos}
	rest := line
	if eq := strings.Index(rest, " = "); eq >= 0 {
		ri.dst = strings.TrimSpace(rest[:eq])
		rest = strings.TrimSpace(rest[eq+3:])
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ri, p.errf("empty instruction")
	}
	ri.mnemonic = fields[0]
	operands := strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))

	base := ri.mnemonic
	if dot := strings.LastIndexByte(base, '.'); dot > 0 {
		if suf := base[dot+1:]; suf == "i64" || suf == "f64" {
			base = base[:dot]
		}
	}
	switch base {
	case "call":
		fields := strings.Fields(operands)
		if len(fields) == 0 || !strings.HasPrefix(fields[0], "@") {
			return ri, p.errf("call wants '@callee args...'")
		}
		ri.callee = strings.TrimPrefix(fields[0], "@")
		ri.args = fields[1:]
		return ri, nil
	case "const":
		return p.parseConst(ri, operands)
	case "phi":
		return p.parsePhi(ri, operands)
	case "br":
		t, err := parseBlockRef(operands)
		if err != nil {
			return ri, p.errf("%v", err)
		}
		ri.blocks = []string{t}
		return ri, nil
	case "condbr":
		parts := splitOperands(operands)
		if len(parts) != 3 {
			return ri, p.errf("condbr wants 'cond, %%then, %%else'")
		}
		ri.args = []string{parts[0]}
		for _, bp := range parts[1:] {
			t, err := parseBlockRef(bp)
			if err != nil {
				return ri, p.errf("%v", err)
			}
			ri.blocks = append(ri.blocks, t)
		}
		return ri, nil
	default:
		if operands != "" {
			ri.args = splitOperands(operands)
		}
		return ri, nil
	}
}

func (p *parser) parseConst(ri rawInstr, operands string) (rawInstr, error) {
	operands = strings.TrimSpace(operands)
	if operands == "" {
		return ri, p.errf("const requires a literal")
	}
	if strings.HasSuffix(ri.mnemonic, ".f64") {
		if strings.HasPrefix(operands, "bits:") {
			bits, err := strconv.ParseUint(strings.TrimPrefix(operands, "bits:"), 0, 64)
			if err != nil {
				return ri, p.errf("bad f64 bit pattern: %v", err)
			}
			ri.imm = int64(bits)
			return ri, nil
		}
		v, err := strconv.ParseFloat(operands, 64)
		if err != nil {
			return ri, p.errf("bad f64 literal: %v", err)
		}
		ri.imm = int64(math.Float64bits(v))
		return ri, nil
	}
	v, err := strconv.ParseInt(operands, 0, 64)
	if err != nil {
		return ri, p.errf("bad i64 literal: %v", err)
	}
	ri.imm = v
	return ri, nil
}

func (p *parser) parsePhi(ri rawInstr, operands string) (rawInstr, error) {
	rest := strings.TrimSpace(operands)
	for rest != "" {
		if rest[0] != '[' {
			return ri, p.errf("phi incoming must look like [block: reg]")
		}
		end := strings.IndexByte(rest, ']')
		if end < 0 {
			return ri, p.errf("unterminated phi incoming")
		}
		inner := rest[1:end]
		colon := strings.IndexByte(inner, ':')
		if colon < 0 {
			return ri, p.errf("phi incoming missing ':'")
		}
		ri.blocks = append(ri.blocks, strings.TrimSpace(inner[:colon]))
		ri.args = append(ri.args, strings.TrimSpace(inner[colon+1:]))
		rest = strings.TrimSpace(rest[end+1:])
	}
	if len(ri.args) == 0 {
		return ri, p.errf("phi requires at least one incoming edge")
	}
	return ri, nil
}

// maxCanonicalReg bounds the register number a canonical r<N> name may pin,
// so a hand-written file cannot force an absurd RegType allocation.
const maxCanonicalReg = 1 << 20

// canonicalRegNumber reports whether a register name is the printer's
// canonical r<N> form (no leading zeros) and, if so, its number.
func canonicalRegNumber(nm string) (Reg, bool) {
	if len(nm) < 2 || nm[0] != 'r' || nm[1] == '0' {
		return NoReg, false
	}
	n := 0
	for i := 1; i < len(nm); i++ {
		c := nm[i]
		if c < '0' || c > '9' {
			return NoReg, false
		}
		n = n*10 + int(c-'0')
		if n > maxCanonicalReg {
			return NoReg, false
		}
	}
	return Reg(n), true
}

func splitOperands(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func parseBlockRef(s string) (string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "%") || len(s) < 2 {
		return "", fmt.Errorf("expected block reference %%name, got %q", s)
	}
	return s[1:], nil
}

func parseType(s string) (Type, error) {
	switch s {
	case "i64":
		return I64, nil
	case "f64":
		return F64, nil
	}
	return I64, fmt.Errorf("unknown type %q", s)
}

// parseMnemonic splits a mnemonic like "load.i64" into opcode and type.
func parseMnemonic(m string) (Op, Type, error) {
	declared := I64
	base := m
	if dot := strings.LastIndexByte(m, '.'); dot > 0 {
		suf := m[dot+1:]
		if suf == "i64" || suf == "f64" {
			base = m[:dot]
			t, _ := parseType(suf)
			declared = t
		}
	}
	op, ok := OpByName(base)
	if !ok {
		return 0, I64, fmt.Errorf("unknown opcode %q", m)
	}
	if opNeedsTypeSuffix(op) && base == m {
		return 0, I64, fmt.Errorf("opcode %q requires a type suffix", m)
	}
	// Float binary ops carry F64 type implicitly.
	if op.IsFloat() && !op.IsCompare() && op != OpFPToSI {
		declared = F64
	}
	return op, declared, nil
}
