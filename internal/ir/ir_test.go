package ir

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildLoop constructs the canonical counting-loop function used across the
// package tests:
//
//	func @loop(i64) : sums 0..n-1 with an if-diamond on parity.
func buildLoop(t testing.TB) *Function {
	t.Helper()
	b := NewBuilder("loop", I64)
	n := b.Param(0)
	zero := b.ConstI(0)
	one := b.ConstI(1)
	two := b.ConstI(2)

	head := b.NewBlock("head")
	even := b.NewBlock("even")
	odd := b.NewBlock("odd")
	latch := b.NewBlock("latch")
	exit := b.NewBlock("exit")

	entry := b.Block()
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi(I64)
	sum := b.Phi(I64)
	cond := b.CmpLT(i, n)
	b.CondBr(cond, even, exit)

	b.SetBlock(even)
	par := b.Rem(i, two)
	isOdd := b.CmpNE(par, zero)
	b.CondBr(isOdd, odd, latch)

	b.SetBlock(odd)
	tripled := b.Mul(i, b.ConstI(3))
	b.Br(latch)

	b.SetBlock(latch)
	contrib := b.Phi(I64)
	b.AddIncoming(contrib, even, i)
	b.AddIncoming(contrib, odd, tripled)
	sum2 := b.Add(sum, contrib)
	i2 := b.Add(i, one)
	b.Br(head)

	b.AddIncoming(i, entry, zero)
	b.AddIncoming(i, latch, i2)
	b.AddIncoming(sum, entry, zero)
	b.AddIncoming(sum, latch, sum2)

	b.SetBlock(exit)
	b.Ret(sum)

	f, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return f
}

func TestBuilderProducesVerifiedFunction(t *testing.T) {
	f := buildLoop(t)
	if got := len(f.Blocks); got != 6 {
		t.Fatalf("blocks = %d, want 6", got)
	}
	if f.Entry().Name != "entry" {
		t.Fatalf("entry block = %q", f.Entry().Name)
	}
	head := f.BlockByName("head")
	if head == nil {
		t.Fatal("missing head block")
	}
	if len(head.Preds) != 2 {
		t.Fatalf("head preds = %d, want 2", len(head.Preds))
	}
	if len(head.Phis()) != 2 {
		t.Fatalf("head phis = %d, want 2", len(head.Phis()))
	}
	if got := head.Succs(); len(got) != 2 || got[0].Name != "even" || got[1].Name != "exit" {
		t.Fatalf("head succs = %v", got)
	}
}

func TestVerifyCatchesUnterminatedBlock(t *testing.T) {
	b := NewBuilder("bad")
	b.ConstI(1)
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected error for unterminated block")
	}
}

func TestVerifyCatchesPhiPredMismatch(t *testing.T) {
	b := NewBuilder("bad")
	next := b.NewBlock("next")
	b.Br(next)
	b.SetBlock(next)
	p := b.Phi(I64)
	_ = p // no incoming edges though next has one predecessor
	b.Ret(NoReg)
	if _, err := b.Finish(); err == nil || !strings.Contains(err.Error(), "incoming") {
		t.Fatalf("expected phi incoming mismatch, got %v", err)
	}
}

func TestVerifyCatchesTypeMismatch(t *testing.T) {
	b := NewBuilder("bad", I64, F64)
	b.Bin(OpFAdd, b.Param(0), b.Param(1)) // param 0 is i64
	b.Ret(NoReg)
	if _, err := b.Finish(); err == nil || !strings.Contains(err.Error(), "operand") {
		t.Fatalf("expected operand type error, got %v", err)
	}
}

func TestVerifyCatchesUseOfUndefined(t *testing.T) {
	f := &Function{Name: "bad", RegType: []Type{I64, I64}}
	blk := &Block{Name: "entry"}
	blk.Instrs = append(blk.Instrs, &Instr{Op: OpRet, Args: []Reg{1}, Type: I64})
	// Register 1 looks like a param but the function declares none.
	f.Blocks = []*Block{blk}
	f.Finish()
	if err := Verify(f); err == nil {
		t.Fatal("expected use-of-undefined error")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	f := buildLoop(t)
	text := Print(f)
	g, err := ParseFunction(text)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, text)
	}
	text2 := Print(g)
	if text != text2 {
		t.Fatalf("round trip mismatch:\n--- first ---\n%s--- second ---\n%s", text, text2)
	}
}

func TestParseFloatConstants(t *testing.T) {
	src := `func @f(f64) {
entry:
  r2 = const.f64 3.25
  r3 = fadd r1, r2
  r4 = fcmp.lt r3, r2
  ret r4
}
`
	f, err := ParseFunction(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.RegType[2] != F64 || f.RegType[4] != I64 {
		t.Fatalf("register types wrong: %v", f.RegType)
	}
	round := Print(f)
	if !strings.Contains(round, "const.f64 3.25") {
		t.Fatalf("float constant did not round trip:\n%s", round)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"func @f() {\nentry:\n  r1 = bogus r0\n}\n",
		"func @f() {\nentry:\n  br %nowhere\n}\n",
		"func @f() {\nentry:\n  r1 = const.i64 zz\n  ret\n}\n",
		"func @f() {\n  ret\n}\n", // instruction before label
		"no header",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted invalid source %q", src)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpCondBr.IsTerminator() || !OpRet.IsTerminator() || OpAdd.IsTerminator() {
		t.Error("IsTerminator misclassifies")
	}
	if !OpLoad.IsMemory() || !OpStore.IsMemory() || OpAdd.IsMemory() {
		t.Error("IsMemory misclassifies")
	}
	if !OpFAdd.IsFloat() || OpAdd.IsFloat() {
		t.Error("IsFloat misclassifies")
	}
	if !OpCmpEQ.IsCompare() || !OpFCmpGE.IsCompare() || OpAdd.IsCompare() {
		t.Error("IsCompare misclassifies")
	}
	if OpStore.HasDest() || !OpLoad.HasDest() {
		t.Error("HasDest misclassifies")
	}
	if OpCmpLT.ResultType(I64) != I64 || OpSIToFP.ResultType(I64) != F64 {
		t.Error("ResultType wrong")
	}
}

func TestOpByNameCoversAllOps(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpByName("nope"); ok {
		t.Error("OpByName accepted unknown name")
	}
}

func TestBlockNumOps(t *testing.T) {
	f := buildLoop(t)
	head := f.BlockByName("head")
	// head: 2 phis + cmp + condbr -> 3 ops excluding terminator.
	if got := head.NumOps(); got != 3 {
		t.Fatalf("NumOps = %d, want 3", got)
	}
}

func TestModuleLookup(t *testing.T) {
	m := &Module{}
	f := buildLoop(t)
	m.Add(f)
	if m.Func("loop") != f {
		t.Fatal("Func lookup failed")
	}
	if m.Func("missing") != nil {
		t.Fatal("Func returned non-nil for missing name")
	}
	if !strings.Contains(PrintModule(m), "func @loop") {
		t.Fatal("PrintModule missing function")
	}
}

func TestCallPrintParseRoundTrip(t *testing.T) {
	src := `func @helper(i64, i64) {
entry:
  r3 = add r1, r2
  ret r3
}

func @main(f64, i64) {
entry:
  r3 = const.i64 5
  r4 = call.i64 @helper r2 r3
  r5 = sitofp r4
  r6 = fadd r1, r5
  ret r6
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	text := PrintModule(m)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if PrintModule(m2) != text {
		t.Fatal("call round trip mismatch")
	}
	main := m2.Func("main")
	var call *Instr
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpCall {
				call = in
			}
		}
	}
	if call == nil || call.Callee != m2.Func("helper") {
		t.Fatal("callee not resolved to the module's helper")
	}
}

func TestParseRejectsBadCalls(t *testing.T) {
	cases := []string{
		// unknown callee
		"func @f(i64) {\nentry:\n  r2 = call.i64 @nope r1\n  ret r2\n}\n",
		// arity mismatch
		"func @g(i64, i64) {\nentry:\n  r3 = add r1, r2\n  ret r3\n}\nfunc @f(i64) {\nentry:\n  r2 = call.i64 @g r1\n  ret r2\n}\n",
		// type mismatch: callee returns i64, call declared f64
		"func @g(i64) {\nentry:\n  ret r1\n}\nfunc @f(i64) {\nentry:\n  r2 = call.f64 @g r1\n  ret r2\n}\n",
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: accepted invalid call", i)
		}
	}
}

func TestVerifyInconsistentReturns(t *testing.T) {
	src := `func @f(i64, f64) {
entry:
  r3 = const.i64 0
  r4 = cmp.lt r1, r3
  condbr r4, %a, %b
a:
  ret r1
b:
  ret r2
}
`
	if _, err := Parse(src); err == nil {
		t.Fatal("expected inconsistent-return error")
	}
}

func TestReturnType(t *testing.T) {
	f, err := ParseFunction("func @f(f64) {\nentry:\n  ret r1\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if rt, ok := f.ReturnType(); !ok || rt != F64 {
		t.Fatalf("ReturnType = %v,%v", rt, ok)
	}
	g, err := ParseFunction("func @g() {\nentry:\n  ret\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.ReturnType(); ok {
		t.Fatal("void function should report no return type")
	}
}

func TestParseTestdataCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.nir")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata corpus: %v", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			// Round trip through the printer.
			text := PrintModule(m)
			m2, err := Parse(text)
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			if PrintModule(m2) != text {
				t.Fatal("corpus round trip mismatch")
			}
		})
	}
}

func TestTestdataPrograms(t *testing.T) {
	// The corpus programs are also semantically meaningful; spot-check fib.
	src, err := os.ReadFile("testdata/fib.nir")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("fib")
	if f == nil {
		t.Fatal("missing fib")
	}
	// fib(10) = 55 computed by hand-walking is checked in interp-level
	// tests; here confirm the structure: 2 loop-carried pairs + induction.
	head := f.BlockByName("head")
	if len(head.Phis()) != 3 {
		t.Fatalf("fib head has %d phis, want 3", len(head.Phis()))
	}
}

func TestCloneFunction(t *testing.T) {
	f := buildLoop(t)
	g := CloneFunction(f)
	if Print(f) != Print(g) {
		t.Fatal("clone prints differently")
	}
	// Mutating the clone must not touch the original.
	g.Blocks[0].Instrs[0].Imm = 999
	if f.Blocks[0].Instrs[0].Imm == 999 {
		t.Fatal("clone shares instructions with the original")
	}
	if g.BlockByName("head") == f.BlockByName("head") {
		t.Fatal("clone shares blocks with the original")
	}
	if err := Verify(g); err != nil {
		t.Fatalf("clone fails verification: %v", err)
	}
}
