package energy

import (
	"testing"

	"needle/internal/mem"
	"needle/internal/ooo"
)

func TestHostEnergyComposition(t *testing.T) {
	c := DefaultCPU()
	mix := ooo.OpMix{Int: 60, FP: 20, Mem: 20, Total: 100}
	stats := mem.Stats{Accesses: 20, L1Hits: 18, L1Misses: 2}
	got := HostEnergyPJ(c, mix, stats)
	want := 100*c.FrontEndPJ + 60*c.IntPJ + 20*c.FPPJ + 20*c.LSQPJ + 20*c.L1PJ + 2*c.L2PJ
	if got != want {
		t.Fatalf("HostEnergyPJ = %v, want %v", got, want)
	}
}

func TestFrontEndDominates(t *testing.T) {
	// The paper's premise: the front-end tax is the largest per-instruction
	// charge on the host, which is what the accelerator elides.
	c := DefaultCPU()
	if c.FrontEndPJ <= c.IntPJ || c.FrontEndPJ <= c.FPPJ {
		t.Fatalf("front-end (%v pJ) should dominate execute energy", c.FrontEndPJ)
	}
}

func TestPerOpPJ(t *testing.T) {
	c := DefaultCPU()
	mix := ooo.OpMix{Int: 100, Total: 100}
	got := PerOpPJ(c, mix, mem.Stats{})
	if got != c.FrontEndPJ+c.IntPJ {
		t.Fatalf("PerOpPJ = %v", got)
	}
	if PerOpPJ(c, ooo.OpMix{}, mem.Stats{}) != 0 {
		t.Fatal("empty mix should cost nothing per op")
	}
}

func TestMemoryOpsCostMore(t *testing.T) {
	c := DefaultCPU()
	intMix := ooo.OpMix{Int: 100, Total: 100}
	memMix := ooo.OpMix{Mem: 100, Total: 100}
	memStats := mem.Stats{Accesses: 100, L1Hits: 100}
	if HostEnergyPJ(c, memMix, memStats) <= HostEnergyPJ(c, intMix, mem.Stats{}) {
		t.Fatal("memory ops should cost more than ALU ops")
	}
}

func TestReduction(t *testing.T) {
	cases := []struct {
		base, with, want float64
	}{
		{100, 80, 0.2},
		{100, 100, 0},
		{100, 120, -0.2},
		{0, 50, 0},
	}
	for _, c := range cases {
		if got := Reduction(c.base, c.with); got != c.want {
			t.Errorf("Reduction(%v,%v) = %v, want %v", c.base, c.with, got, c.want)
		}
	}
}
