// Package energy provides the host-side energy model (McPAT-style ARM-class
// per-event constants, per Table V's "Mcpat; ARM 1GHz Template") and the
// accounting used by the Figure 10 evaluation. The central premise it
// encodes is the paper's: every instruction a conventional core executes
// pays a front-end tax (fetch, decode, rename, schedule) that a spatially
// configured accelerator elides.
package energy

import (
	"needle/internal/mem"
	"needle/internal/ooo"
)

// CPU holds per-event dynamic energy constants for the host core, in pJ.
type CPU struct {
	FrontEndPJ float64 // fetch/decode/rename/dispatch, per instruction
	IntPJ      float64 // integer execute
	FPPJ       float64 // floating-point execute
	LSQPJ      float64 // load/store queue + AGU, per memory op
	L1PJ       float64 // per L1 access
	L2PJ       float64 // per L2 access (L1 miss fill)
}

// DefaultCPU returns ARM-class constants. The absolute values matter less
// than the ratio to the CGRA's per-op energy; the front-end charge (fetch,
// decode, rename, ROB wakeup/select) dominates, in line with the McPAT
// breakdowns for out-of-order cores the paper relies on. The 62 pJ
// front-end figure is calibrated jointly with the CGRA's placement-derived
// routing energy (~2-3 switch+link hops per operand) so that braid offload
// lands at the paper's ~20% net energy reduction at the paper's coverages.
func DefaultCPU() CPU {
	return CPU{
		FrontEndPJ: 62,
		IntPJ:      8,
		FPPJ:       25,
		LSQPJ:      10,
		L1PJ:       20,
		L2PJ:       50,
	}
}

// HostEnergyPJ returns the energy of executing the given instruction mix on
// the host, with cache behaviour from stats.
func HostEnergyPJ(c CPU, mix ooo.OpMix, stats mem.Stats) float64 {
	e := float64(mix.Total) * c.FrontEndPJ
	e += float64(mix.Int) * c.IntPJ
	e += float64(mix.FP) * c.FPPJ
	e += float64(mix.Mem) * c.LSQPJ
	e += float64(stats.Accesses) * c.L1PJ
	e += float64(stats.L1Misses) * c.L2PJ
	return e
}

// PerOpPJ returns the average host energy per instruction for a mix; useful
// for quick comparisons and the examples.
func PerOpPJ(c CPU, mix ooo.OpMix, stats mem.Stats) float64 {
	if mix.Total == 0 {
		return 0
	}
	return HostEnergyPJ(c, mix, stats) / float64(mix.Total)
}

// Reduction returns the relative saving of `with` versus `baseline`
// (positive = improvement), the quantity Figures 9 and 10 report.
func Reduction(baseline, with float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - with) / baseline
}
