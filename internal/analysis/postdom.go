package analysis

import "needle/internal/ir"

// PostDomTree holds immediate post-dominator information. Returning blocks
// (and blocks on endless paths, which verified functions do not have)
// post-dominate to a virtual exit node.
type PostDomTree struct {
	f     *ir.Function
	ipdom []int // indexed by block index; exit sentinel = len(blocks)
	exit  int
	order []int // blocks in reverse-graph RPO (i.e. postorder-ish) numbering
	rpoN  []int
}

// PostDominators computes the post-dominator tree using the iterative
// algorithm over the reverse CFG with a virtual exit joining all returns.
func PostDominators(f *ir.Function) *PostDomTree {
	n := len(f.Blocks)
	exit := n
	// Reverse-graph successors are preds; reverse-graph entry is exit.
	// Build reverse postorder of the reverse graph starting at exit.
	preds := make([][]int, n+1) // reverse-graph edges: preds[v] in reverse graph = succs of v in CFG
	succs := make([][]int, n+1) // reverse-graph adjacency: from exit through preds
	for _, b := range f.Blocks {
		if t := b.Term(); t != nil && t.Op == ir.OpRet {
			succs[exit] = append(succs[exit], b.Index)
			preds[b.Index] = append(preds[b.Index], exit)
		}
		for _, s := range b.Succs() {
			// CFG edge b->s is reverse edge s->b.
			succs[s.Index] = append(succs[s.Index], b.Index)
			preds[b.Index] = append(preds[b.Index], s.Index)
		}
	}

	seen := make([]bool, n+1)
	var post []int
	var dfs func(v int)
	dfs = func(v int) {
		seen[v] = true
		for _, w := range succs[v] {
			if !seen[w] {
				dfs(w)
			}
		}
		post = append(post, v)
	}
	dfs(exit)
	order := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	rpoN := make([]int, n+1)
	for i := range rpoN {
		rpoN[i] = -1
	}
	for i, v := range order {
		rpoN[v] = i
	}

	ipdom := make([]int, n+1)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[exit] = exit

	intersect := func(a, b int) int {
		for a != b {
			for rpoN[a] > rpoN[b] {
				a = ipdom[a]
			}
			for rpoN[b] > rpoN[a] {
				b = ipdom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, v := range order {
			if v == exit {
				continue
			}
			newIdom := -1
			for _, p := range preds[v] { // predecessors in the reverse graph
				if rpoN[p] < 0 || ipdom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && ipdom[v] != newIdom {
				ipdom[v] = newIdom
				changed = true
			}
		}
	}
	return &PostDomTree{f: f, ipdom: ipdom, exit: exit, order: order, rpoN: rpoN}
}

// Ipdom returns the immediate post-dominator of b, or nil when it is the
// virtual exit.
func (d *PostDomTree) Ipdom(b *ir.Block) *ir.Block {
	p := d.ipdom[b.Index]
	if p < 0 || p == d.exit {
		return nil
	}
	return d.f.Blocks[p]
}

// PostDominates reports whether a post-dominates b (reflexively).
func (d *PostDomTree) PostDominates(a, b *ir.Block) bool {
	ai := a.Index
	v := b.Index
	for {
		if v == ai {
			return true
		}
		next := d.ipdom[v]
		if next < 0 || next == v || next == d.exit {
			return v == ai
		}
		v = next
	}
}

// ControlDependents returns, for each conditional-branch block, the set of
// blocks control dependent on it: following Ferrante/Ottenstein/Warren, a
// block n is control dependent on branch b when n post-dominates some
// successor of b but does not post-dominate b itself.
func ControlDependents(f *ir.Function, pdom *PostDomTree) map[*ir.Block][]*ir.Block {
	out := make(map[*ir.Block][]*ir.Block)
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		depSet := make(map[*ir.Block]bool)
		for _, s := range t.Blocks {
			// Walk the post-dominator chain from s up to (but excluding)
			// b's post-dominator set.
			for n := s; n != nil && !pdom.PostDominates(n, b); n = pdom.Ipdom(n) {
				depSet[n] = true
			}
		}
		deps := make([]*ir.Block, 0, len(depSet))
		for _, blk := range f.Blocks { // deterministic order
			if depSet[blk] {
				deps = append(deps, blk)
			}
		}
		out[b] = deps
	}
	return out
}
