package analysis

import (
	"math"
	"testing"

	"needle/internal/ir"
)

// --- SCCP ---

func TestSCCPFoldsThroughConstantBranch(t *testing.T) {
	f := parse(t, `func @f(i64) {
entry:
  r2 = const.i64 1
  r3 = const.i64 10
  condbr r2, %left, %right
left:
  r4 = add r3, r3
  br %join
right:
  r5 = mul r3, r3
  br %join
join:
  r6 = phi.i64 [left: r4] [right: r5]
  ret r6
}`)
	s := ComputeSCCP(f)
	// The branch condition is the constant 1: right is unreachable, and the
	// phi sees only the left incoming, so it is the constant 20 — the fact
	// a pessimistic (non-conditional) propagator cannot prove.
	if v := s.Value(6); !v.IsConst() || int64(v.Bits) != 20 {
		t.Fatalf("phi value = %+v, want const 20", v)
	}
	var right *ir.Block
	for _, b := range f.Blocks {
		if b.Name == "right" {
			right = b
		}
	}
	if s.BlockExecutable(right) {
		t.Fatal("right must be non-executable behind a constant-true branch")
	}
	if taken, ok := s.ConstBranch(f.Entry()); !ok || taken != 0 {
		t.Fatalf("ConstBranch(entry) = %d, %v; want 0, true", taken, ok)
	}
}

func TestSCCPParamsAndLoadsAreBottom(t *testing.T) {
	f := parse(t, `func @f(i64) {
entry:
  r2 = load.i64 r1
  r3 = add r1, r2
  ret r3
}`)
	s := ComputeSCCP(f)
	for _, r := range []ir.Reg{1, 2, 3} {
		if v := s.Value(r); v.State != LatBottom {
			t.Fatalf("r%d = %v, want bottom", r, v.State)
		}
	}
}

func TestSCCPDivByConstZeroIsBottom(t *testing.T) {
	f := parse(t, `func @f() {
entry:
  r1 = const.i64 7
  r2 = const.i64 0
  r3 = div r1, r2
  r4 = rem r1, r2
  ret r3
}`)
	s := ComputeSCCP(f)
	// The interpreter traps here; SCCP must not claim a constant that a
	// folder would then use to erase the trap.
	if v := s.Value(3); v.State != LatBottom {
		t.Fatalf("div by const zero = %v, want bottom", v.State)
	}
	if v := s.Value(4); v.State != LatBottom {
		t.Fatalf("rem by const zero = %v, want bottom", v.State)
	}
}

func TestSCCPEvalMatchesInterpShiftMasking(t *testing.T) {
	f := parse(t, `func @f() {
entry:
  r1 = const.i64 1
  r2 = const.i64 65
  r3 = shl r1, r2
  r4 = const.i64 -8
  r5 = shr r4, r1
  ret r3
}`)
	s := ComputeSCCP(f)
	// shl masks the shift amount to 6 bits (65 & 63 == 1) and shr is
	// arithmetic — both mirroring internal/interp.
	if v := s.Value(3); !v.IsConst() || int64(v.Bits) != 2 {
		t.Fatalf("1 << 65 = %+v, want const 2", v)
	}
	if v := s.Value(5); !v.IsConst() || int64(v.Bits) != -4 {
		t.Fatalf("-8 >> 1 = %+v, want const -4 (arithmetic)", v)
	}
}

func TestSCCPLoopInvariantStaysConstant(t *testing.T) {
	f := parse(t, `func @f(i64) {
entry:
  r2 = const.i64 5
  br %head
head:
  r3 = phi.i64 [entry: r2] [body: r3]
  r4 = cmp.lt r3, r1
  condbr r4, %body, %exit
body:
  br %head
exit:
  ret r3
}`)
	s := ComputeSCCP(f)
	if v := s.Value(3); !v.IsConst() || int64(v.Bits) != 5 {
		t.Fatalf("loop-invariant phi = %+v, want const 5", v)
	}
}

func TestSCCPFloatConstants(t *testing.T) {
	f := parse(t, `func @f() {
entry:
  r1 = const.f64 2.5
  r2 = const.f64 1.5
  r3 = fadd r1, r2
  r4 = fptosi r3
  ret r4
}`)
	s := ComputeSCCP(f)
	if v := s.Value(3); !v.IsConst() || math.Float64frombits(v.Bits) != 4.0 {
		t.Fatalf("fadd = %+v, want const 4.0", v)
	}
	if v := s.Value(4); !v.IsConst() || int64(v.Bits) != 4 {
		t.Fatalf("fptosi = %+v, want const 4", v)
	}
}

func TestDeriveDeadCode(t *testing.T) {
	f := parse(t, `func @f(i64) {
entry:
  r2 = const.i64 0
  r3 = const.i64 3
  r4 = mul r3, r3
  r5 = add r1, r1
  condbr r2, %dead, %live
dead:
  r6 = add r1, r3
  br %live
live:
  ret r4
}`)
	s := ComputeSCCP(f)
	facts := DeriveDeadCode(f, s)
	if len(facts.UnreachableBlocks) != 1 || facts.UnreachableBlocks[0].Name != "dead" {
		t.Fatalf("unreachable = %v, want [dead]", facts.UnreachableBlocks)
	}
	// r5 is a pure def nothing reads.
	foundDead := false
	for _, in := range facts.DeadDefs {
		if in.Dst == 5 {
			foundDead = true
		}
	}
	if !foundDead {
		t.Fatalf("dead defs %v missing r5", facts.DeadDefs)
	}
	// r4 = mul of constants is foldable.
	foundFold := false
	for _, in := range facts.Foldable {
		if in.Dst == 4 {
			foundFold = true
		}
	}
	if !foundFold {
		t.Fatalf("foldable %v missing r4", facts.Foldable)
	}
}

// --- value ranges ---

func TestRangesLoopCounterWidens(t *testing.T) {
	f := parse(t, loopSrc)
	rg := ComputeRanges(f, Dominators(f))
	// r3 starts at 0 and grows by a param-sized stride: the lower bound is
	// provable, the upper is widened away.
	iv := rg.At(3)
	if iv.Hi != math.MaxInt64 {
		t.Fatalf("loop counter Hi = %d, want widened to MaxInt64", iv.Hi)
	}
}

func TestRangesConstAndMask(t *testing.T) {
	f := parse(t, `func @f(i64) {
entry:
  r2 = const.i64 255
  r3 = and r1, r2
  r4 = const.i64 7
  r5 = add r3, r4
  r6 = rem r1, r2
  ret r5
}`)
	rg := ComputeRanges(f, Dominators(f))
	if iv := rg.At(2); iv != (Interval{255, 255}) {
		t.Fatalf("const range = %+v", iv)
	}
	if iv := rg.At(3); iv != (Interval{0, 255}) {
		t.Fatalf("and-mask range = %+v, want [0,255]", iv)
	}
	if iv := rg.At(5); iv != (Interval{7, 262}) {
		t.Fatalf("add range = %+v, want [7,262]", iv)
	}
	if iv := rg.At(6); iv != (Interval{-254, 254}) {
		t.Fatalf("rem range = %+v, want [-254,254]", iv)
	}
}

func TestRangesBoundedLoopViaCmp(t *testing.T) {
	// Widening is deliberately simple (no narrowing pass): a counted loop's
	// index widens to +inf rather than the loop bound, but a provable lower
	// bound (start 0, constant positive stride) survives. This pins the
	// policy so the vet OOB check's "finite bounds only" rule stays honest.
	f := parse(t, `func @f(i64) {
entry:
  r2 = const.i64 0
  r3 = const.i64 1
  br %head
head:
  r4 = phi.i64 [entry: r2] [body: r5]
  r6 = cmp.lt r4, r1
  condbr r6, %body, %exit
body:
  r5 = add r4, r3
  br %head
exit:
  ret r4
}`)
	rg := ComputeRanges(f, Dominators(f))
	iv := rg.At(4)
	if iv.Lo != 0 {
		t.Fatalf("counter Lo = %d, want 0 (provable)", iv.Lo)
	}
	if iv.Hi != math.MaxInt64 {
		t.Fatalf("counter Hi = %d, want widened", iv.Hi)
	}
}

func TestRangesTerminatesOnIrreducibleCFG(t *testing.T) {
	// Two blocks jumping into each other's middle — legal, verifies, and has
	// no single loop header for the widening policy to anchor on. The pass
	// cap plus widen-all fallback must still converge.
	f := parse(t, `func @f(i64) {
entry:
  r2 = const.i64 0
  r3 = const.i64 1
  condbr r1, %a, %b
a:
  r4 = phi.i64 [entry: r2] [b: r6]
  r5 = add r4, r3
  condbr r5, %b, %exit
b:
  r6 = phi.i64 [entry: r3] [a: r5]
  br %a
exit:
  ret r5
}`)
	rg := ComputeRanges(f, Dominators(f))
	if iv := rg.At(5); iv.IsFull() {
		return // widened to full: fine
	}
	// Any result is acceptable as long as ComputeRanges returned at all;
	// reaching here means it converged to something finite, also fine.
	_ = rg
}

// --- memory dependence ---

func TestMemDepClassify(t *testing.T) {
	f := parse(t, `func @f(i64, i64) {
entry:
  r3 = const.i64 1
  r4 = const.i64 2
  r5 = add r1, r3
  r6 = add r1, r4
  r7 = add r1, r3
  r8 = add r1, r2
  r9 = load.i64 r5
  store.i64 r9, r6
  ret r9
}`)
	md := ComputeMemDep(f)
	if c := md.ClassifyRegs(5, 7); c != MustAlias {
		t.Fatalf("r1+1 vs r1+1 = %v, want must", c)
	}
	if c := md.ClassifyRegs(5, 6); c != NoAlias {
		t.Fatalf("r1+1 vs r1+2 = %v, want no", c)
	}
	if c := md.ClassifyRegs(5, 8); c != MayAlias {
		t.Fatalf("r1+1 vs r1+r2 = %v, want may", c)
	}
	// Constant addresses classify by offset alone.
	if c := Classify(AddrForm{Offset: 4}, AddrForm{Offset: 4}); c != MustAlias {
		t.Fatalf("const 4 vs 4 = %v, want must", c)
	}
	if c := Classify(AddrForm{Offset: 4}, AddrForm{Offset: 5}); c != NoAlias {
		t.Fatalf("const 4 vs 5 = %v, want no", c)
	}
}

func TestMemDepCommutativeBases(t *testing.T) {
	f := parse(t, `func @f(i64, i64) {
entry:
  r3 = add r1, r2
  r4 = add r2, r1
  r5 = load.i64 r3
  store.i64 r5, r4
  ret r5
}`)
	md := ComputeMemDep(f)
	if c := md.ClassifyRegs(3, 4); c != MustAlias {
		t.Fatalf("r1+r2 vs r2+r1 = %v, want must (sorted base multiset)", c)
	}
}

func TestMemDepLoadDerived(t *testing.T) {
	f := parse(t, `func @f(i64) {
entry:
  r2 = load.i64 r1
  r3 = const.i64 4
  r4 = add r2, r3
  r5 = add r1, r3
  store.i64 r3, r4
  ret r2
}`)
	md := ComputeMemDep(f)
	if !md.LoadDerived(4) {
		t.Fatal("r4 (load + const) must be load-derived")
	}
	if md.LoadDerived(5) {
		t.Fatal("r5 (param + const) must not be load-derived")
	}
}

func TestMemDepLoadDerivedThroughPhi(t *testing.T) {
	f := parse(t, loopChaseSrc)
	md := ComputeMemDep(f)
	if !md.LoadDerived(3) {
		t.Fatal("pointer-chasing phi must be load-derived")
	}
}

// loopChaseSrc walks a linked structure: the next address is loaded from
// memory, the canonical self-aliasing pattern.
const loopChaseSrc = `func @chase(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r1] [body: r4]
  r4 = load.i64 r3
  r5 = cmp.ne r4, r2
  condbr r5, %body, %exit
body:
  br %head
exit:
  ret r3
}
`
