// Value-range analysis: an interval lattice over I64 registers, computed
// by round-robin iteration in reverse postorder with widening at loop
// headers. The client is `needle -vet`'s out-of-bounds check — ranges for
// the registers feeding load/store address operands — so the transfer
// functions are deliberately conservative: anything that could wrap, trap,
// or mix float bits goes straight to the full interval.
package analysis

import (
	"math"

	"needle/internal/ir"
)

// Interval is an inclusive signed range [Lo, Hi]. The full interval
// [MinInt64, MaxInt64] means "unknown". Intervals never represent the
// empty set: transfer functions produce facts about values that exist.
type Interval struct {
	Lo, Hi int64
}

// FullInterval is the top of the interval lattice: no information.
var FullInterval = Interval{math.MinInt64, math.MaxInt64}

// IsFull reports whether the interval carries no information.
func (iv Interval) IsFull() bool { return iv == FullInterval }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

// hull is the smallest interval containing both a and b.
func hull(a, b Interval) Interval {
	if b.Lo < a.Lo {
		a.Lo = b.Lo
	}
	if b.Hi > a.Hi {
		a.Hi = b.Hi
	}
	return a
}

// widen returns old widened against next: any bound that moved jumps to
// infinity in the direction of movement. Classic interval widening — it
// guarantees each register changes at most twice more after its first
// widening, which bounds the fixpoint iteration.
func widen(old, next Interval) Interval {
	w := old
	if next.Lo < old.Lo {
		w.Lo = math.MinInt64
	}
	if next.Hi > old.Hi {
		w.Hi = math.MaxInt64
	}
	return w
}

// addSat is a+b clamped to the int64 range (used for interval bounds, not
// value arithmetic — bound saturation is sound because it only widens).
func addSat(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < a) || (a < 0 && b < 0 && s > a) {
		if a > 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return s
}

func subSat(a, b int64) int64 {
	if b == math.MinInt64 {
		if a >= 0 {
			return math.MaxInt64
		}
		return addSat(a+math.MinInt64, math.MaxInt64) + 1 // a - MinInt64 without overflow
	}
	return addSat(a, -b)
}

// mulCheck returns a*b and whether it did not overflow.
func mulCheck(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) {
		return 0, false
	}
	return p, true
}

// Ranges holds per-register intervals for one function. Registers the
// analysis has no fact for report the full interval.
type Ranges struct {
	f   *ir.Function
	ivs []Interval
}

// At returns the interval for r.
func (rg *Ranges) At(r ir.Reg) Interval {
	if r <= ir.NoReg || int(r) >= len(rg.ivs) {
		return FullInterval
	}
	return rg.ivs[r]
}

// maxRangePasses caps round-robin iteration before the fallback kicks in.
// Widening at loop-header phis bounds iteration on reducible CFGs; for
// irreducible ones (legal NIR — untrusted input can ship them) any
// register still changing after the cap is forced to full, after which
// one more pass reaches a fixpoint because full never changes.
const maxRangePasses = 10

// ComputeRanges computes intervals for every register in f. dom supplies
// the dominator tree used to find loop headers (back-edge targets);
// blocks unreachable in the CFG are skipped.
func ComputeRanges(f *ir.Function, dom *DomTree) *Ranges {
	rg := &Ranges{f: f, ivs: make([]Interval, len(f.RegType))}
	for i := range rg.ivs {
		rg.ivs[i] = FullInterval
	}
	// known tracks registers with at least one computed fact: a phi hull
	// must distinguish "operand not yet visited" (skip it, optimistic)
	// from "operand unknown" (full, pessimistic).
	known := make([]bool, len(f.RegType))
	for i := 0; i < f.NumParams(); i++ {
		known[f.Param(i)] = true // params are full but decided
	}

	isHeader := make([]bool, len(f.Blocks))
	for _, e := range BackEdges(f, dom) {
		isHeader[e.To.Index] = true
	}
	rpo := dom.RPO()

	widenAll := false
	for pass := 1; ; pass++ {
		changed := false
		for _, b := range rpo {
			header := isHeader[b.Index]
			for _, in := range b.Instrs {
				if !in.Op.HasDest() {
					continue
				}
				nv := rg.transfer(b, in, known)
				old := rg.ivs[in.Dst]
				if known[in.Dst] && nv != old {
					switch {
					case widenAll:
						nv = FullInterval
					case header && in.Op == ir.OpPhi && pass >= 2:
						nv = widen(old, nv)
					default:
						nv = hull(old, nv)
					}
				}
				if !known[in.Dst] || nv != old {
					known[in.Dst] = true
					rg.ivs[in.Dst] = nv
					changed = true
				}
			}
		}
		if !changed {
			return rg
		}
		if pass >= maxRangePasses {
			widenAll = true
		}
	}
}

// transfer computes the interval of in's destination from current facts.
func (rg *Ranges) transfer(b *ir.Block, in *ir.Instr, known []bool) Interval {
	at := func(i int) Interval { return rg.At(in.Args[i]) }
	switch in.Op {
	case ir.OpConst:
		if in.Type == ir.F64 {
			return FullInterval
		}
		return Interval{in.Imm, in.Imm}
	case ir.OpCopy:
		return at(0)
	case ir.OpAdd:
		a, c := at(0), at(1)
		if a.IsFull() || c.IsFull() {
			return FullInterval
		}
		return Interval{addSat(a.Lo, c.Lo), addSat(a.Hi, c.Hi)}
	case ir.OpSub:
		a, c := at(0), at(1)
		if a.IsFull() || c.IsFull() {
			return FullInterval
		}
		return Interval{subSat(a.Lo, c.Hi), subSat(a.Hi, c.Lo)}
	case ir.OpMul:
		a, c := at(0), at(1)
		if a.IsFull() || c.IsFull() {
			return FullInterval
		}
		lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
		for _, x := range [2]int64{a.Lo, a.Hi} {
			for _, y := range [2]int64{c.Lo, c.Hi} {
				p, ok := mulCheck(x, y)
				if !ok {
					return FullInterval
				}
				if p < lo {
					lo = p
				}
				if p > hi {
					hi = p
				}
			}
		}
		return Interval{lo, hi}
	case ir.OpAnd:
		a, c := at(0), at(1)
		// Masking with a known-nonnegative value bounds the result.
		if a.Lo >= 0 && c.Lo >= 0 {
			hi := a.Hi
			if c.Hi < hi {
				hi = c.Hi
			}
			return Interval{0, hi}
		}
		if c.Lo >= 0 && c.Lo == c.Hi {
			return Interval{0, c.Hi} // x & mask with any x
		}
		if a.Lo >= 0 && a.Lo == a.Hi {
			return Interval{0, a.Hi}
		}
		return FullInterval
	case ir.OpOr, ir.OpXor:
		a, c := at(0), at(1)
		if a.Lo >= 0 && c.Lo >= 0 && a.Hi < math.MaxInt64 && c.Hi < math.MaxInt64 {
			// Result stays within the combined bit width.
			m := a.Hi | c.Hi
			hi := int64(1)
			for hi <= m && hi > 0 {
				hi <<= 1
			}
			if hi <= 0 {
				return FullInterval
			}
			return Interval{0, hi - 1}
		}
		return FullInterval
	case ir.OpShl:
		a, c := at(0), at(1)
		if c.Lo == c.Hi && c.Lo >= 0 && c.Lo < 63 && a.Lo >= 0 && !a.IsFull() {
			sh := uint(c.Lo)
			hi, ok := mulCheck(a.Hi, 1<<sh)
			if !ok {
				return FullInterval
			}
			lo, _ := mulCheck(a.Lo, 1<<sh)
			return Interval{lo, hi}
		}
		return FullInterval
	case ir.OpShr:
		a, c := at(0), at(1)
		if c.Lo == c.Hi && c.Lo >= 0 && c.Lo < 64 && a.Lo >= 0 {
			sh := uint(c.Lo & 63)
			return Interval{a.Lo >> sh, a.Hi >> sh}
		}
		return FullInterval
	case ir.OpRem:
		d := at(1)
		if d.Lo == d.Hi && d.Lo != 0 && d.Lo != math.MinInt64 {
			m := d.Lo
			if m < 0 {
				m = -m
			}
			if at(0).Lo >= 0 {
				return Interval{0, m - 1}
			}
			return Interval{-(m - 1), m - 1}
		}
		return FullInterval
	case ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE,
		ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE:
		return Interval{0, 1}
	case ir.OpSelect:
		return hull(at(1), at(2))
	case ir.OpPhi:
		nv := Interval{}
		have := false
		for _, r := range in.Args {
			if r > ir.NoReg && int(r) < len(known) && !known[r] {
				continue // optimistic: unvisited incoming, refined later
			}
			iv := rg.At(r)
			if !have {
				nv, have = iv, true
			} else {
				nv = hull(nv, iv)
			}
			if nv.IsFull() {
				return FullInterval
			}
		}
		if !have {
			// All incomings unvisited (dead loop): stay optimistic with a
			// point interval at zero; later passes refine it.
			return Interval{0, 0}
		}
		return nv
	}
	// Loads, calls, division, float ops, conversions: unknown.
	return FullInterval
}
