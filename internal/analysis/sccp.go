// Sparse conditional constant propagation (Wegman/Zadeck) over NIR: the
// optimistic combination of constant propagation and reachability. Every
// register carries a three-level lattice value (top → constant → bottom)
// and every CFG edge an executable flag; the two worklists feed each other,
// so a branch whose condition folds to a constant stops propagation into
// the untaken side, which in turn keeps phis on the taken side constant
// where a pessimistic pass would have given up.
//
// The constant evaluator mirrors internal/interp's eval exactly (shift
// masking, Go signed division semantics, float ops through package math),
// so folding a lattice constant can never change an observable result. The
// one deliberate asymmetry: a division or remainder whose divisor is a
// constant zero is bottom, never a constant — the interpreter traps there,
// and an analysis result must not erase a trap.
package analysis

import (
	"fmt"
	"math"

	"needle/internal/ir"
)

// LatticeState is the level of an SCCP lattice value.
type LatticeState uint8

const (
	// LatTop is the optimistic initial state: no evidence about the value
	// yet. At a fixpoint, top survives only in dead code.
	LatTop LatticeState = iota
	// LatConst is a proven run-time constant (Bits holds the raw pattern).
	LatConst
	// LatBottom is overdefined: the value varies at run time.
	LatBottom
)

func (s LatticeState) String() string {
	switch s {
	case LatTop:
		return "top"
	case LatConst:
		return "const"
	case LatBottom:
		return "bottom"
	}
	return fmt.Sprintf("lattice(%d)", uint8(s))
}

// LatticeValue is one register's SCCP fact: its state and, when the state
// is LatConst, the constant's raw 64-bit pattern (interpreted per the
// register's type, exactly like ir.Instr.Imm).
type LatticeValue struct {
	State LatticeState
	Bits  uint64
}

// IsConst reports whether the value is a proven constant.
func (v LatticeValue) IsConst() bool { return v.State == LatConst }

func constVal(bits uint64) LatticeValue { return LatticeValue{State: LatConst, Bits: bits} }

var bottomVal = LatticeValue{State: LatBottom}

// meet is the lattice meet: top is the identity, bottom absorbs, and two
// constants agree only on identical bit patterns.
func meet(a, b LatticeValue) LatticeValue {
	switch {
	case a.State == LatTop:
		return b
	case b.State == LatTop:
		return a
	case a.State == LatBottom || b.State == LatBottom:
		return bottomVal
	case a.Bits == b.Bits:
		return a
	default:
		return bottomVal
	}
}

// SCCP is the fixpoint result for one function.
type SCCP struct {
	f         *ir.Function
	values    []LatticeValue // indexed by register
	blockExec []bool         // indexed by block index
	edgeExec  [][]bool       // [block index][terminator successor slot]
}

// Value returns the lattice value of r. Parameters are bottom (unknown at
// analysis time); registers defined only in dead code stay top.
func (s *SCCP) Value(r ir.Reg) LatticeValue {
	if r <= ir.NoReg || int(r) >= len(s.values) {
		return bottomVal
	}
	return s.values[r]
}

// BlockExecutable reports whether any run of the function can reach b.
// It is reachability refined by constant branches: a CFG-reachable block
// behind a provably-untaken edge is not executable.
func (s *SCCP) BlockExecutable(b *ir.Block) bool {
	return b.Index < len(s.blockExec) && s.blockExec[b.Index]
}

// EdgeExecutable reports whether the edge from b through terminator
// successor slot `slot` can ever be taken.
func (s *SCCP) EdgeExecutable(b *ir.Block, slot int) bool {
	if b.Index >= len(s.edgeExec) || slot >= len(s.edgeExec[b.Index]) {
		return false
	}
	return s.edgeExec[b.Index][slot]
}

// ConstBranch reports whether b ends in a conditional branch whose
// condition is a proven constant, and if so which successor slot is taken
// (0 = condition non-zero, 1 = zero). Only meaningful for executable
// blocks.
func (s *SCCP) ConstBranch(b *ir.Block) (taken int, ok bool) {
	t := b.Term()
	if t == nil || t.Op != ir.OpCondBr || !s.BlockExecutable(b) {
		return 0, false
	}
	v := s.Value(t.Args[0])
	if !v.IsConst() {
		return 0, false
	}
	if v.Bits != 0 {
		return 0, true
	}
	return 1, true
}

// useSite is one instruction reading a register, with its block (uses in
// non-executable blocks are not re-evaluated).
type useSite struct {
	b  *ir.Block
	in *ir.Instr
}

// flowEdge identifies a CFG edge by source block and terminator slot.
type flowEdge struct {
	b    *ir.Block
	slot int
}

// ComputeSCCP runs sparse conditional constant propagation on f. The
// function must be verified IR; f is not mutated.
func ComputeSCCP(f *ir.Function) *SCCP {
	s := &SCCP{
		f:         f,
		values:    make([]LatticeValue, len(f.RegType)),
		blockExec: make([]bool, len(f.Blocks)),
		edgeExec:  make([][]bool, len(f.Blocks)),
	}
	for _, b := range f.Blocks {
		s.edgeExec[b.Index] = make([]bool, len(b.Succs()))
	}
	// Parameters are runtime inputs: overdefined from the start.
	for i := 0; i < f.NumParams(); i++ {
		s.values[f.Param(i)] = bottomVal
	}

	uses := make([][]useSite, len(f.RegType))
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			bb, ii := b, in
			in.Uses(func(r ir.Reg) { uses[r] = append(uses[r], useSite{bb, ii}) })
		}
	}

	var flowWL []flowEdge
	var ssaWL []ir.Reg
	var blockWL []*ir.Block

	// lower installs a new value for in.Dst if it lowers the lattice, and
	// queues the SSA worklist on change. Evaluation is monotone, so a
	// "raise" can only come from re-evaluating with stale inputs — those
	// are ignored.
	lower := func(in *ir.Instr, nv LatticeValue) {
		old := s.values[in.Dst]
		if nv.State == LatTop || old.State == LatBottom {
			return
		}
		if old.State == nv.State && old.Bits == nv.Bits {
			return
		}
		if old.State == LatConst && nv.State == LatConst {
			nv = bottomVal // conflicting constants
		}
		s.values[in.Dst] = nv
		ssaWL = append(ssaWL, in.Dst)
	}

	val := func(r ir.Reg) LatticeValue {
		if r == ir.NoReg {
			return bottomVal
		}
		return s.values[r]
	}

	// predEdgeExecutable: is any edge from p into b executable?
	predEdgeExecutable := func(p, b *ir.Block) bool {
		for slot, t := range p.Succs() {
			if t == b && s.edgeExec[p.Index][slot] {
				return true
			}
		}
		return false
	}

	visit := func(b *ir.Block, in *ir.Instr) {
		switch in.Op {
		case ir.OpPhi:
			nv := LatticeValue{State: LatTop}
			for i, from := range in.Blocks {
				if predEdgeExecutable(from, b) {
					nv = meet(nv, val(in.Args[i]))
				}
			}
			lower(in, nv)
		case ir.OpLoad, ir.OpCall:
			// Memory contents and call results are runtime facts.
			lower(in, bottomVal)
		case ir.OpStore:
			// No destination, no flow effect.
		case ir.OpBr:
			flowWL = append(flowWL, flowEdge{b, 0})
		case ir.OpCondBr:
			switch c := val(in.Args[0]); c.State {
			case LatConst:
				if c.Bits != 0 {
					flowWL = append(flowWL, flowEdge{b, 0})
				} else {
					flowWL = append(flowWL, flowEdge{b, 1})
				}
			case LatBottom:
				flowWL = append(flowWL, flowEdge{b, 0}, flowEdge{b, 1})
			}
		case ir.OpRet:
			// No successors.
		case ir.OpConst:
			lower(in, constVal(uint64(in.Imm)))
		case ir.OpSelect:
			c, t, e := val(in.Args[0]), val(in.Args[1]), val(in.Args[2])
			switch c.State {
			case LatConst:
				if c.Bits != 0 {
					lower(in, t)
				} else {
					lower(in, e)
				}
			case LatBottom:
				lower(in, meet(t, e))
			}
		case ir.OpDiv, ir.OpRem:
			d := val(in.Args[1])
			if d.IsConst() && d.Bits == 0 {
				// Guaranteed trap: never a constant.
				lower(in, bottomVal)
				return
			}
			a := val(in.Args[0])
			switch {
			case a.State == LatBottom || d.State == LatBottom:
				lower(in, bottomVal)
			case a.IsConst() && d.IsConst():
				bits, ok := evalConstOp(in.Op, in.Imm, []uint64{a.Bits, d.Bits})
				if ok {
					lower(in, constVal(bits))
				} else {
					lower(in, bottomVal)
				}
			}
		default:
			// Pure value computation: constant when every operand is.
			nv := LatticeValue{State: LatTop}
			vals := make([]uint64, len(in.Args))
			allConst := true
			for i, a := range in.Args {
				av := val(a)
				if av.State == LatBottom {
					nv = bottomVal
					allConst = false
					break
				}
				if av.State == LatTop {
					allConst = false
					continue
				}
				vals[i] = av.Bits
			}
			if allConst {
				if bits, ok := evalConstOp(in.Op, in.Imm, vals); ok {
					nv = constVal(bits)
				} else {
					nv = bottomVal
				}
			}
			lower(in, nv)
		}
	}

	markBlock := func(b *ir.Block) {
		if !s.blockExec[b.Index] {
			s.blockExec[b.Index] = true
			blockWL = append(blockWL, b)
		}
	}
	markBlock(f.Entry())

	for len(flowWL) > 0 || len(ssaWL) > 0 || len(blockWL) > 0 {
		switch {
		case len(blockWL) > 0:
			b := blockWL[len(blockWL)-1]
			blockWL = blockWL[:len(blockWL)-1]
			for _, in := range b.Instrs {
				visit(b, in)
			}
		case len(flowWL) > 0:
			e := flowWL[len(flowWL)-1]
			flowWL = flowWL[:len(flowWL)-1]
			if s.edgeExec[e.b.Index][e.slot] {
				continue
			}
			s.edgeExec[e.b.Index][e.slot] = true
			to := e.b.Succs()[e.slot]
			if !s.blockExec[to.Index] {
				markBlock(to)
			} else {
				// A new incoming edge can only change the phis.
				for _, phi := range to.Phis() {
					visit(to, phi)
				}
			}
		default:
			r := ssaWL[len(ssaWL)-1]
			ssaWL = ssaWL[:len(ssaWL)-1]
			for _, u := range uses[r] {
				if s.blockExec[u.b.Index] {
					visit(u.b, u.in)
				}
			}
		}
	}
	return s
}

// evalConstOp evaluates one pure opcode over constant operand bit
// patterns, mirroring internal/interp's eval exactly. It reports false for
// opcodes it cannot evaluate (memory, calls, control flow). Callers must
// pre-screen div/rem by zero — this function assumes a non-zero divisor.
func evalConstOp(op ir.Op, imm int64, v []uint64) (uint64, bool) {
	ai := func(i int) int64 { return int64(v[i]) }
	af := func(i int) float64 { return math.Float64frombits(v[i]) }
	b := func(c bool) uint64 {
		if c {
			return 1
		}
		return 0
	}
	switch op {
	case ir.OpConst:
		return uint64(imm), true
	case ir.OpAdd:
		return uint64(ai(0) + ai(1)), true
	case ir.OpSub:
		return uint64(ai(0) - ai(1)), true
	case ir.OpMul:
		return uint64(ai(0) * ai(1)), true
	case ir.OpDiv:
		if ai(1) == 0 {
			return 0, false
		}
		return uint64(ai(0) / ai(1)), true
	case ir.OpRem:
		if ai(1) == 0 {
			return 0, false
		}
		return uint64(ai(0) % ai(1)), true
	case ir.OpAnd:
		return v[0] & v[1], true
	case ir.OpOr:
		return v[0] | v[1], true
	case ir.OpXor:
		return v[0] ^ v[1], true
	case ir.OpShl:
		return uint64(ai(0) << (v[1] & 63)), true
	case ir.OpShr:
		return uint64(ai(0) >> (v[1] & 63)), true
	case ir.OpFAdd:
		return math.Float64bits(af(0) + af(1)), true
	case ir.OpFSub:
		return math.Float64bits(af(0) - af(1)), true
	case ir.OpFMul:
		return math.Float64bits(af(0) * af(1)), true
	case ir.OpFDiv:
		return math.Float64bits(af(0) / af(1)), true
	case ir.OpSqrt:
		return math.Float64bits(math.Sqrt(af(0))), true
	case ir.OpExp:
		return math.Float64bits(math.Exp(af(0))), true
	case ir.OpLog:
		return math.Float64bits(math.Log(af(0))), true
	case ir.OpSIToFP:
		return math.Float64bits(float64(ai(0))), true
	case ir.OpFPToSI:
		return uint64(int64(af(0))), true
	case ir.OpCmpEQ:
		return b(ai(0) == ai(1)), true
	case ir.OpCmpNE:
		return b(ai(0) != ai(1)), true
	case ir.OpCmpLT:
		return b(ai(0) < ai(1)), true
	case ir.OpCmpLE:
		return b(ai(0) <= ai(1)), true
	case ir.OpCmpGT:
		return b(ai(0) > ai(1)), true
	case ir.OpCmpGE:
		return b(ai(0) >= ai(1)), true
	case ir.OpFCmpEQ:
		return b(af(0) == af(1)), true
	case ir.OpFCmpNE:
		return b(af(0) != af(1)), true
	case ir.OpFCmpLT:
		return b(af(0) < af(1)), true
	case ir.OpFCmpLE:
		return b(af(0) <= af(1)), true
	case ir.OpFCmpGT:
		return b(af(0) > af(1)), true
	case ir.OpFCmpGE:
		return b(af(0) >= af(1)), true
	case ir.OpCopy:
		return v[0], true
	case ir.OpSelect:
		if v[0] != 0 {
			return v[1], true
		}
		return v[2], true
	}
	return 0, false
}

// DeadCodeFacts is the reachability/dead-code summary derived from an SCCP
// fixpoint: the facts `needle -vet` reports and the Opt stage acts on.
type DeadCodeFacts struct {
	// UnreachableBlocks lists blocks no execution reaches (CFG-unreachable
	// blocks plus blocks behind provably-untaken branches), in block order.
	UnreachableBlocks []*ir.Block
	// DeadDefs lists pure value definitions in executable blocks whose
	// results no instruction reads, in program order. Loads, calls, and
	// potentially-trapping div/rem are excluded: removing them would change
	// observable behaviour.
	DeadDefs []*ir.Instr
	// Foldable lists non-const instructions in executable blocks whose
	// lattice value is a proven constant, in program order.
	Foldable []*ir.Instr
}

// DeriveDeadCode computes the dead-code summary of f from an SCCP result.
func DeriveDeadCode(f *ir.Function, s *SCCP) *DeadCodeFacts {
	facts := &DeadCodeFacts{}
	used := NewRegSet(f.NumRegs())
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.Uses(func(r ir.Reg) { used.Add(r) })
		}
	}
	for _, b := range f.Blocks {
		if !s.BlockExecutable(b) {
			facts.UnreachableBlocks = append(facts.UnreachableBlocks, b)
			continue
		}
		for _, in := range b.Instrs {
			if !in.Op.HasDest() {
				continue
			}
			removable := in.Op != ir.OpCall && in.Op != ir.OpLoad &&
				in.Op != ir.OpDiv && in.Op != ir.OpRem
			if removable && !used.Has(in.Dst) {
				facts.DeadDefs = append(facts.DeadDefs, in)
			}
			if in.Op != ir.OpConst && s.Value(in.Dst).IsConst() {
				facts.Foldable = append(facts.Foldable, in)
			}
		}
	}
	return facts
}
