// Package analysis provides the control-flow and dataflow analyses the
// Needle pipeline builds on: reverse postorder, dominator trees, natural
// loop detection, liveness, and an SSA dominance verifier.
package analysis

import (
	"fmt"
	"math/bits"

	"needle/internal/ir"
)

// ReversePostorder returns the blocks of f reachable from the entry in
// reverse postorder. Unreachable blocks are omitted.
func ReversePostorder(f *ir.Function) []*ir.Block {
	seen := make([]bool, len(f.Blocks))
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b.Index] = true
		for _, s := range b.Succs() {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if e := f.Entry(); e != nil {
		dfs(e)
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// DomTree holds immediate-dominator information for a function.
type DomTree struct {
	f    *ir.Function
	idom []*ir.Block // indexed by block index; entry's idom is itself
	rpo  []*ir.Block
	rpoN []int // rpo number per block index, -1 if unreachable
}

// Dominators computes the dominator tree using the Cooper-Harvey-Kennedy
// iterative algorithm over reverse postorder.
func Dominators(f *ir.Function) *DomTree {
	rpo := ReversePostorder(f)
	rpoN := make([]int, len(f.Blocks))
	for i := range rpoN {
		rpoN[i] = -1
	}
	for i, b := range rpo {
		rpoN[b.Index] = i
	}
	idom := make([]*ir.Block, len(f.Blocks))
	entry := f.Entry()
	idom[entry.Index] = entry

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for rpoN[a.Index] > rpoN[b.Index] {
				a = idom[a.Index]
			}
			for rpoN[b.Index] > rpoN[a.Index] {
				b = idom[b.Index]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if rpoN[p.Index] < 0 || idom[p.Index] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	return &DomTree{f: f, idom: idom, rpo: rpo, rpoN: rpoN}
}

// Idom returns the immediate dominator of b, or nil for the entry block and
// unreachable blocks.
func (d *DomTree) Idom(b *ir.Block) *ir.Block {
	id := d.idom[b.Index]
	if id == b {
		return nil
	}
	return id
}

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b *ir.Block) bool {
	if d.rpoN[b.Index] < 0 {
		return false // unreachable blocks are dominated by nothing
	}
	for {
		if a == b {
			return true
		}
		next := d.idom[b.Index]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// RPO returns the reverse postorder computed alongside the tree.
func (d *DomTree) RPO() []*ir.Block { return d.rpo }

// Reachable reports whether the block is reachable from the entry.
func (d *DomTree) Reachable(b *ir.Block) bool { return d.rpoN[b.Index] >= 0 }

// Edge is a directed CFG edge.
type Edge struct {
	From, To *ir.Block
}

// BackEdges returns the back edges of f: edges u->v where v dominates u.
// These are exactly the edges the Ball-Larus transformation removes, and the
// "backward branches" Table I counts.
func BackEdges(f *ir.Function, dom *DomTree) []Edge {
	var edges []Edge
	for _, b := range dom.RPO() {
		for _, s := range b.Succs() {
			if dom.Dominates(s, b) {
				edges = append(edges, Edge{From: b, To: s})
			}
		}
	}
	return edges
}

// Loop is a natural loop: a header plus the set of blocks that can reach a
// back edge into the header without leaving the loop.
type Loop struct {
	Header *ir.Block
	Blocks map[*ir.Block]bool
}

// Contains reports whether the loop body includes b.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// NaturalLoops finds all natural loops of f, merging loops that share a
// header. Loops are returned in header RPO order.
func NaturalLoops(f *ir.Function, dom *DomTree) []*Loop {
	byHeader := make(map[*ir.Block]*Loop)
	var order []*ir.Block
	for _, e := range BackEdges(f, dom) {
		l := byHeader[e.To]
		if l == nil {
			l = &Loop{Header: e.To, Blocks: map[*ir.Block]bool{e.To: true}}
			byHeader[e.To] = l
			order = append(order, e.To)
		}
		// Walk predecessors from the back-edge source until the header.
		stack := []*ir.Block{e.From}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if l.Blocks[b] {
				continue
			}
			l.Blocks[b] = true
			for _, p := range b.Preds {
				stack = append(stack, p)
			}
		}
	}
	loops := make([]*Loop, 0, len(order))
	for _, h := range order {
		loops = append(loops, byHeader[h])
	}
	return loops
}

// DefBlock returns, for each register, the block defining it (nil for
// parameters and undefined registers). Indexed by register number.
func DefBlock(f *ir.Function) []*ir.Block {
	defs := make([]*ir.Block, len(f.RegType))
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op.HasDest() {
				defs[in.Dst] = b
			}
		}
	}
	return defs
}

// RegSet is a dense register bitset, indexed by ir.Reg. Sets produced by one
// analysis share a word width, so whole-set operations are straight word
// loops with no bounds reconciliation.
type RegSet []uint64

// NewRegSet returns an empty set wide enough for a function with numRegs
// virtual registers (registers are 1-based, so the set spans [0, numRegs]).
func NewRegSet(numRegs int) RegSet { return make(RegSet, (numRegs+64)>>6) }

// Has reports whether r is in the set.
func (s RegSet) Has(r ir.Reg) bool {
	i := uint(r) >> 6
	return int(i) < len(s) && s[i]&(1<<(uint(r)&63)) != 0
}

// Add inserts r into the set.
func (s RegSet) Add(r ir.Reg) {
	s[uint(r)>>6] |= 1 << (uint(r) & 63)
}

// Regs returns the set's members in increasing order.
func (s RegSet) Regs() []ir.Reg {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	out := make([]ir.Reg, 0, n)
	s.ForEach(func(r ir.Reg) { out = append(out, r) })
	return out
}

// ForEach calls fn for every register in the set, in increasing order.
func (s RegSet) ForEach(fn func(ir.Reg)) {
	for i, w := range s {
		for w != 0 {
			fn(ir.Reg(i<<6 + bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// Liveness holds per-block live-in/live-out register sets.
type Liveness struct {
	In  []RegSet // indexed by block index
	Out []RegSet
}

// ComputeLiveness runs backward dataflow liveness over the function.
// Phi semantics: a phi's operand for predecessor P is live-out of P (not
// live-in of the phi's block); the phi's destination is defined at the top
// of its block.
//
// The transfer function is evaluated on register bitsets — the fixpoint
// loop is pure word arithmetic (out |= in[succ]; in = use | (out &^ def)),
// which keeps the pass linear-ish in practice where the old map-based
// version paid a hash probe per register per round.
func ComputeLiveness(f *ir.Function) *Liveness {
	n := len(f.Blocks)
	words := (f.NumRegs() + 64) >> 6 // registers are 1-based; bit 0 unused
	arena := make([]uint64, 4*n*words)
	sets := func(k int) []RegSet {
		out := make([]RegSet, n)
		for i := range out {
			out[i] = RegSet(arena[(k*n+i)*words : (k*n+i+1)*words])
		}
		return out
	}
	lv := &Liveness{In: sets(0), Out: sets(1)}

	// use[b]: registers read in b before any redefinition, excluding phi
	// operands (attributed to predecessors). def[b]: registers defined in b,
	// including phi destinations.
	use := sets(2)
	def := sets(3)
	// phiUse[p][s]: registers that predecessor p must supply to successor s's
	// phis.
	phiUse := make(map[*ir.Block]map[*ir.Block][]ir.Reg)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				for i, from := range in.Blocks {
					m := phiUse[from]
					if m == nil {
						m = make(map[*ir.Block][]ir.Reg)
						phiUse[from] = m
					}
					m[b] = append(m[b], in.Args[i])
				}
				def[b.Index].Add(in.Dst)
				continue
			}
			in.Uses(func(r ir.Reg) {
				if !def[b.Index].Has(r) {
					use[b.Index].Add(r)
				}
			})
			if in.Op.HasDest() {
				def[b.Index].Add(in.Dst)
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.Out[b.Index]
			for _, s := range b.Succs() {
				for w, v := range lv.In[s.Index] {
					if v&^out[w] != 0 {
						out[w] |= v
						changed = true
					}
				}
				for _, r := range phiUse[b][s] {
					if !out.Has(r) {
						out.Add(r)
						changed = true
					}
				}
			}
			in, u, d := lv.In[b.Index], use[b.Index], def[b.Index]
			for w := range in {
				v := u[w] | out[w]&^d[w]
				if v&^in[w] != 0 {
					in[w] |= v
					changed = true
				}
			}
		}
	}
	return lv
}

// VerifySSA checks the dominance property: every non-phi use of a register
// is dominated by its definition, and every phi operand's definition
// dominates the corresponding predecessor's exit. Parameters dominate
// everything.
func VerifySSA(f *ir.Function) error {
	dom := Dominators(f)
	defs := DefBlock(f)
	defPos := make(map[ir.Reg]int) // instruction index within def block
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op.HasDest() {
				defPos[in.Dst] = i
			}
		}
	}
	isParam := func(r ir.Reg) bool { return int(r) <= f.NumParams() }

	for _, b := range f.Blocks {
		if !dom.Reachable(b) {
			continue
		}
		for i, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				for k, from := range in.Blocks {
					r := in.Args[k]
					if isParam(r) {
						continue
					}
					db := defs[r]
					if db == nil || !dom.Dominates(db, from) {
						return fmt.Errorf("analysis: %s.%s: phi operand %s (from %s) not dominated by its definition",
							f.Name, b.Name, r, from.Name)
					}
				}
				continue
			}
			var err error
			in.Uses(func(r ir.Reg) {
				if err != nil || isParam(r) {
					return
				}
				db := defs[r]
				if db == nil {
					err = fmt.Errorf("analysis: %s.%s: %s used but never defined", f.Name, b.Name, r)
					return
				}
				if db == b {
					if defPos[r] >= i {
						err = fmt.Errorf("analysis: %s.%s: %s used before its definition in the same block", f.Name, b.Name, r)
					}
					return
				}
				if !dom.Dominates(db, b) {
					err = fmt.Errorf("analysis: %s.%s: use of %s not dominated by its definition in %s", f.Name, b.Name, r, db.Name)
				}
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}
