package analysis

import (
	"testing"

	"needle/internal/ir"
)

// parse builds a function from source, failing the test on error.
func parse(t testing.TB, src string) *ir.Function {
	t.Helper()
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatalf("ParseFunction: %v", err)
	}
	return f
}

const diamondSrc = `func @diamond(i64) {
entry:
  r2 = const.i64 0
  r3 = cmp.lt r1, r2
  condbr r3, %left, %right
left:
  r4 = add r1, r1
  br %join
right:
  r5 = mul r1, r1
  br %join
join:
  r6 = phi.i64 [left: r4] [right: r5]
  ret r6
}
`

const loopSrc = `func @loop(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [body: r5]
  r4 = cmp.lt r3, r1
  condbr r4, %body, %exit
body:
  r5 = add r3, r1
  br %head
exit:
  ret r3
}
`

func TestReversePostorderDiamond(t *testing.T) {
	f := parse(t, diamondSrc)
	rpo := ReversePostorder(f)
	if len(rpo) != 4 {
		t.Fatalf("rpo length = %d, want 4", len(rpo))
	}
	if rpo[0].Name != "entry" || rpo[3].Name != "join" {
		t.Fatalf("rpo order wrong: %v", rpo)
	}
}

func TestReversePostorderSkipsUnreachable(t *testing.T) {
	src := `func @f() {
entry:
  ret
dead:
  br %dead
}
`
	f := parse(t, src)
	rpo := ReversePostorder(f)
	if len(rpo) != 1 || rpo[0].Name != "entry" {
		t.Fatalf("rpo = %v, want [entry]", rpo)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f := parse(t, diamondSrc)
	dom := Dominators(f)
	entry := f.BlockByName("entry")
	left := f.BlockByName("left")
	right := f.BlockByName("right")
	join := f.BlockByName("join")

	if dom.Idom(entry) != nil {
		t.Error("entry should have no idom")
	}
	if dom.Idom(left) != entry || dom.Idom(right) != entry {
		t.Error("left/right idom should be entry")
	}
	if dom.Idom(join) != entry {
		t.Errorf("join idom = %v, want entry", dom.Idom(join))
	}
	if !dom.Dominates(entry, join) || dom.Dominates(left, join) {
		t.Error("Dominates wrong on diamond")
	}
	if !dom.Dominates(join, join) {
		t.Error("Dominates should be reflexive")
	}
}

func TestBackEdgesAndLoops(t *testing.T) {
	f := parse(t, loopSrc)
	dom := Dominators(f)
	back := BackEdges(f, dom)
	if len(back) != 1 {
		t.Fatalf("back edges = %d, want 1", len(back))
	}
	if back[0].From.Name != "body" || back[0].To.Name != "head" {
		t.Fatalf("back edge = %s->%s", back[0].From, back[0].To)
	}
	loops := NaturalLoops(f, dom)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Header.Name != "head" {
		t.Fatalf("loop header = %s", l.Header)
	}
	if !l.Contains(f.BlockByName("body")) || l.Contains(f.BlockByName("exit")) {
		t.Fatal("loop membership wrong")
	}
}

func TestNestedLoops(t *testing.T) {
	src := `func @nest(i64) {
entry:
  r2 = const.i64 0
  br %outer
outer:
  r3 = phi.i64 [entry: r2] [olatch: r8]
  r4 = cmp.lt r3, r1
  condbr r4, %inner, %exit
inner:
  r5 = phi.i64 [outer: r2] [inner: r6]
  r6 = add r5, r3
  r7 = cmp.lt r6, r1
  condbr r7, %inner, %olatch
olatch:
  r8 = add r3, r6
  br %outer
exit:
  ret r3
}
`
	f := parse(t, src)
	dom := Dominators(f)
	loops := NaturalLoops(f, dom)
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	var outer, inner *Loop
	for _, l := range loops {
		switch l.Header.Name {
		case "outer":
			outer = l
		case "inner":
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("missing loop headers")
	}
	if !outer.Contains(f.BlockByName("inner")) {
		t.Error("outer loop should contain inner block")
	}
	if inner.Contains(f.BlockByName("olatch")) {
		t.Error("inner loop should not contain olatch")
	}
}

func TestLivenessDiamond(t *testing.T) {
	f := parse(t, diamondSrc)
	lv := ComputeLiveness(f)
	left := f.BlockByName("left")
	join := f.BlockByName("join")
	// r1 (param) is live into left; r4 is live out of left (phi operand).
	if !lv.In[left.Index].Has(1) {
		t.Error("r1 should be live-in to left")
	}
	if !lv.Out[left.Index].Has(4) {
		t.Error("r4 should be live-out of left (phi use)")
	}
	// Phi operands are not live-in to the join block itself.
	if lv.In[join.Index].Has(4) || lv.In[join.Index].Has(5) {
		t.Error("phi operands must not be live-in to the phi block")
	}
}

func TestLivenessLoop(t *testing.T) {
	f := parse(t, loopSrc)
	lv := ComputeLiveness(f)
	body := f.BlockByName("body")
	head := f.BlockByName("head")
	if !lv.In[body.Index].Has(3) || !lv.In[body.Index].Has(1) {
		t.Error("r3 and r1 should be live into body")
	}
	if !lv.Out[body.Index].Has(5) {
		t.Error("r5 should be live out of body (loop phi)")
	}
	if !lv.In[head.Index].Has(1) {
		t.Error("r1 should be live into head")
	}
}

func TestDefBlock(t *testing.T) {
	f := parse(t, diamondSrc)
	defs := DefBlock(f)
	if defs[1] != nil {
		t.Error("parameter should have nil def block")
	}
	if defs[4] == nil || defs[4].Name != "left" {
		t.Errorf("r4 def block = %v, want left", defs[4])
	}
	if defs[6] == nil || defs[6].Name != "join" {
		t.Errorf("r6 def block = %v, want join", defs[6])
	}
}

func TestVerifySSAAcceptsValid(t *testing.T) {
	for _, src := range []string{diamondSrc, loopSrc} {
		f := parse(t, src)
		if err := VerifySSA(f); err != nil {
			t.Errorf("VerifySSA rejected valid function: %v", err)
		}
	}
}

func TestVerifySSARejectsNonDominatedUse(t *testing.T) {
	// r4 defined in left but used in right: not dominated.
	src := `func @bad(i64) {
entry:
  r2 = const.i64 0
  r3 = cmp.lt r1, r2
  condbr r3, %left, %right
left:
  r4 = add r1, r1
  br %join
right:
  r5 = mul r4, r1
  br %join
join:
  r6 = phi.i64 [left: r4] [right: r5]
  ret r6
}
`
	f := parse(t, src)
	if err := VerifySSA(f); err == nil {
		t.Fatal("VerifySSA accepted non-dominated use")
	}
}

func TestVerifySSARejectsBadPhiOperand(t *testing.T) {
	// Phi operand r5 comes "from left" but is defined in right.
	src := `func @bad(i64) {
entry:
  r2 = const.i64 0
  r3 = cmp.lt r1, r2
  condbr r3, %left, %right
left:
  r4 = add r1, r1
  br %join
right:
  r5 = mul r1, r1
  br %join
join:
  r6 = phi.i64 [left: r5] [right: r4]
  ret r6
}
`
	f := parse(t, src)
	if err := VerifySSA(f); err == nil {
		t.Fatal("VerifySSA accepted phi operand not dominating its edge")
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	f := parse(t, diamondSrc)
	pdom := PostDominators(f)
	entry := f.BlockByName("entry")
	left := f.BlockByName("left")
	right := f.BlockByName("right")
	join := f.BlockByName("join")

	if !pdom.PostDominates(join, entry) || !pdom.PostDominates(join, left) {
		t.Error("join should post-dominate entry and left")
	}
	if pdom.PostDominates(left, entry) {
		t.Error("left must not post-dominate entry")
	}
	if pdom.Ipdom(left) != join || pdom.Ipdom(right) != join {
		t.Error("ipdom of branch sides should be join")
	}
	if pdom.Ipdom(join) != nil {
		t.Error("returning block should post-dominate to the virtual exit")
	}
}

func TestPostDominatorsLoop(t *testing.T) {
	f := parse(t, loopSrc)
	pdom := PostDominators(f)
	head := f.BlockByName("head")
	body := f.BlockByName("body")
	exit := f.BlockByName("exit")
	if !pdom.PostDominates(exit, head) || !pdom.PostDominates(head, body) {
		t.Error("loop post-dominance wrong")
	}
	if pdom.PostDominates(body, head) {
		t.Error("body must not post-dominate head (the loop may exit)")
	}
}

func TestControlDependents(t *testing.T) {
	f := parse(t, diamondSrc)
	pdom := PostDominators(f)
	deps := ControlDependents(f, pdom)
	entry := f.BlockByName("entry")
	got := deps[entry]
	if len(got) != 2 {
		t.Fatalf("entry controls %v, want left and right", got)
	}
	names := map[string]bool{}
	for _, b := range got {
		names[b.Name] = true
	}
	if !names["left"] || !names["right"] {
		t.Fatalf("entry controls %v, want left+right", names)
	}
}

func TestControlDependentsLoop(t *testing.T) {
	f := parse(t, loopSrc)
	pdom := PostDominators(f)
	deps := ControlDependents(f, pdom)
	head := f.BlockByName("head")
	// body is control dependent on head's branch; head itself is too (the
	// back edge makes head's next iteration contingent on the branch).
	names := map[string]bool{}
	for _, b := range deps[head] {
		names[b.Name] = true
	}
	if !names["body"] {
		t.Fatalf("head controls %v, want body included", names)
	}
}
