// Static memory dependence: a base+offset classifier over load/store
// address expressions. Each address register is normalized to a multiset
// of opaque base registers plus a constant offset (offsets wrap mod 2^64,
// exactly like the interpreter's address arithmetic); two accesses with
// identical bases and equal offsets must alias, identical bases and
// different offsets cannot alias, and anything else may alias.
package analysis

import (
	"sort"

	"needle/internal/ir"
)

// AliasClass classifies a pair of memory accesses.
type AliasClass uint8

const (
	// MayAlias: the analysis cannot decide.
	MayAlias AliasClass = iota
	// MustAlias: the two addresses are provably equal in every execution.
	MustAlias
	// NoAlias: the two addresses are provably distinct in every execution.
	NoAlias
)

func (c AliasClass) String() string {
	switch c {
	case MustAlias:
		return "must"
	case NoAlias:
		return "no"
	default:
		return "may"
	}
}

// AddrForm is a normalized address expression: the sum of the values of
// Bases (a sorted multiset of registers the analysis treats as opaque)
// plus Offset, with int64 wrapping semantics. Two forms with the same
// base multiset differ by exactly (Offset1 - Offset2) in every execution.
type AddrForm struct {
	Bases  []ir.Reg
	Offset int64
}

// maxAddrBases caps the multiset size; larger expressions collapse to a
// single opaque base (the defining register itself).
const maxAddrBases = 8

// sameBases reports whether two sorted multisets are identical.
func sameBases(a, b []ir.Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Classify compares two normalized address forms.
func Classify(a, b AddrForm) AliasClass {
	if !sameBases(a.Bases, b.Bases) {
		return MayAlias
	}
	if a.Offset == b.Offset {
		return MustAlias
	}
	// Same opaque sum, different constant offsets: the addresses differ by
	// a non-zero constant mod 2^64, so they are never equal. (Both sides
	// wrap identically — the interpreter computes addresses with the same
	// wrapping int64 arithmetic.)
	return NoAlias
}

// MemDep holds normalized address forms for one function, indexed by the
// defining register of each address expression.
type MemDep struct {
	f     *ir.Function
	forms []AddrForm
	have  []bool
	// loadDerived marks registers whose value (transitively) depends on a
	// load result — the signature of pointer-chasing / data-dependent
	// addresses, which the Needle paper treats as self-aliasing offload
	// candidates.
	loadDerived []bool
}

// Addr returns the normalized form of the address register r.
func (md *MemDep) Addr(r ir.Reg) AddrForm {
	if r > ir.NoReg && int(r) < len(md.forms) && md.have[r] {
		return md.forms[r]
	}
	if r <= ir.NoReg {
		return AddrForm{}
	}
	return AddrForm{Bases: []ir.Reg{r}}
}

// LoadDerived reports whether r's value transitively depends on a load.
func (md *MemDep) LoadDerived(r ir.Reg) bool {
	return r > ir.NoReg && int(r) < len(md.loadDerived) && md.loadDerived[r]
}

// ClassifyRegs classifies the accesses addressed by registers a and b.
func (md *MemDep) ClassifyRegs(a, b ir.Reg) AliasClass {
	return Classify(md.Addr(a), md.Addr(b))
}

// ComputeMemDep normalizes every register's address form in f and runs the
// load-derived fixpoint. f must be verified IR; it is not mutated.
func ComputeMemDep(f *ir.Function) *MemDep {
	md := &MemDep{
		f:           f,
		forms:       make([]AddrForm, len(f.RegType)),
		have:        make([]bool, len(f.RegType)),
		loadDerived: make([]bool, len(f.RegType)),
	}

	def := make([]*ir.Instr, len(f.RegType))
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op.HasDest() && in.Dst != ir.NoReg {
				def[in.Dst] = in
			}
		}
	}

	// formOf normalizes r's expression. visiting guards against cycles
	// through phis (a phi is always its own opaque base, but operand
	// recursion could still loop through unverified self-references).
	visiting := make([]bool, len(f.RegType))
	var formOf func(r ir.Reg) AddrForm
	opaque := func(r ir.Reg) AddrForm { return AddrForm{Bases: []ir.Reg{r}} }
	formOf = func(r ir.Reg) AddrForm {
		if r <= ir.NoReg || int(r) >= len(def) {
			return AddrForm{}
		}
		if md.have[r] {
			return md.forms[r]
		}
		if visiting[r] {
			return opaque(r)
		}
		visiting[r] = true
		defer func() {
			visiting[r] = false
			md.have[r] = true
		}()
		in := def[r]
		if in == nil {
			md.forms[r] = opaque(r) // parameter
			return md.forms[r]
		}
		switch in.Op {
		case ir.OpConst:
			if in.Type == ir.I64 {
				md.forms[r] = AddrForm{Offset: in.Imm}
				return md.forms[r]
			}
		case ir.OpCopy:
			md.forms[r] = formOf(in.Args[0])
			return md.forms[r]
		case ir.OpAdd:
			a, b := formOf(in.Args[0]), formOf(in.Args[1])
			bases := make([]ir.Reg, 0, len(a.Bases)+len(b.Bases))
			bases = append(bases, a.Bases...)
			bases = append(bases, b.Bases...)
			if len(bases) <= maxAddrBases {
				sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
				md.forms[r] = AddrForm{Bases: bases, Offset: a.Offset + b.Offset}
				return md.forms[r]
			}
		case ir.OpSub:
			a, b := formOf(in.Args[0]), formOf(in.Args[1])
			if len(b.Bases) == 0 { // x - const
				md.forms[r] = AddrForm{Bases: a.Bases, Offset: a.Offset - b.Offset}
				return md.forms[r]
			}
		}
		md.forms[r] = opaque(r)
		return md.forms[r]
	}
	for r := ir.Reg(1); int(r) < len(def); r++ {
		formOf(r)
	}

	// Load-derived fixpoint: seed with load destinations, then propagate
	// through any instruction (including phis) reading a derived register.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad && in.Dst != ir.NoReg {
				md.loadDerived[in.Dst] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.Op.HasDest() || in.Dst == ir.NoReg || md.loadDerived[in.Dst] {
					continue
				}
				derived := false
				in.Uses(func(r ir.Reg) {
					if md.loadDerived[r] {
						derived = true
					}
				})
				if derived {
					md.loadDerived[in.Dst] = true
					changed = true
				}
			}
		}
	}
	return md
}
