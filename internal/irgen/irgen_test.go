package irgen

import (
	"testing"

	"needle/internal/analysis"
	"needle/internal/ballarus"
	"needle/internal/cgra"
	"needle/internal/frame"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/passes"
	"needle/internal/profile"
	"needle/internal/region"
	"needle/internal/sim"
	"needle/internal/spec"
)

const seeds = 150

// TestGeneratedProgramsAreWellFormed: every generated program passes the
// verifier and the SSA dominance check, parses back from its printed form,
// and runs to completion deterministically.
func TestGeneratedProgramsAreWellFormed(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		p := Generate(seed, Config{})
		if err := analysis.VerifySSA(p.F); err != nil {
			t.Fatalf("seed %d: SSA: %v", seed, err)
		}
		text := ir.Print(p.F)
		if _, err := ir.ParseFunction(text); err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, text)
		}
		r1, err := interp.Run(p.F, []uint64{interp.IBits(seed)}, p.NewMem(), nil, 1<<22)
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		r2, err := interp.Run(p.F, []uint64{interp.IBits(seed)}, p.NewMem(), nil, 1<<22)
		if err != nil || r1.Ret != r2.Ret || r1.Steps != r2.Steps {
			t.Fatalf("seed %d: nondeterministic", seed)
		}
	}
}

// TestBallLarusPartitionInvariant: on random programs, path-attributed ops
// must equal the interpreter's step count exactly, every executed path must
// decode, and encode(decode(id)) must round-trip.
func TestBallLarusPartitionInvariant(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		p := Generate(seed, Config{})
		dag, err := ballarus.Build(nil, p.F)
		if err != nil {
			t.Fatalf("seed %d: Build: %v", seed, err)
		}
		prof := ballarus.NewProfiler(dag)
		res, err := interp.Run(p.F, []uint64{interp.IBits(seed * 7)}, p.NewMem(), prof.Hooks(), 1<<22)
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		var ops int64
		for id, c := range prof.Counts {
			blocks, err := dag.Decode(id)
			if err != nil {
				t.Fatalf("seed %d: decode %d: %v", seed, id, err)
			}
			back, err := dag.Encode(blocks)
			if err != nil || back != id {
				t.Fatalf("seed %d: encode(decode(%d)) = %d, %v", seed, id, back, err)
			}
			ops += c * ballarus.PathOps(blocks)
		}
		if ops != res.Steps {
			t.Fatalf("seed %d: attributed %d ops, interpreter ran %d", seed, ops, res.Steps)
		}
	}
}

// TestOptimizePreservesSemanticsOnRandomPrograms: the cleanup pipeline must
// not change results or memory effects.
func TestOptimizePreservesSemanticsOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		p := Generate(seed, Config{})
		mem1 := p.NewMem()
		r1, err := interp.Run(p.F, []uint64{interp.IBits(11)}, mem1, nil, 1<<22)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		clone := ir.CloneFunction(p.F)
		passes.Optimize(nil, clone)
		if err := analysis.VerifySSA(clone); err != nil {
			t.Fatalf("seed %d: optimized SSA: %v", seed, err)
		}
		mem2 := p.NewMem()
		r2, err := interp.Run(clone, []uint64{interp.IBits(11)}, mem2, nil, 1<<22)
		if err != nil {
			t.Fatalf("seed %d: optimized run: %v", seed, err)
		}
		if r1.Ret != r2.Ret {
			t.Fatalf("seed %d: Optimize changed result %d -> %d", seed, interp.I(r1.Ret), interp.I(r2.Ret))
		}
		for i := range mem1 {
			if mem1[i] != mem2[i] {
				t.Fatalf("seed %d: Optimize changed memory at %d", seed, i)
			}
		}
		if r2.Steps > r1.Steps {
			t.Fatalf("seed %d: Optimize made execution longer (%d -> %d)", seed, r1.Steps, r2.Steps)
		}
	}
}

// TestProfilePipelineOnRandomPrograms: profiles collect, rank, and the
// coverage identities hold.
func TestProfilePipelineOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < seeds; seed += 3 {
		p := Generate(seed, Config{})
		fp, err := profile.CollectFunction(nil, p.F, []uint64{interp.IBits(5)}, p.NewMem(), true, 1<<22)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fp.NumExecutedPaths() == 0 {
			t.Fatalf("seed %d: no paths", seed)
		}
		full := fp.CoverageTopK(fp.NumExecutedPaths())
		if full < 0.999 || full > 1.001 {
			t.Fatalf("seed %d: full coverage = %v", seed, full)
		}
		// Ranking is by weight, descending.
		for i := 0; i+1 < len(fp.Paths); i++ {
			if fp.Paths[i].Weight < fp.Paths[i+1].Weight {
				t.Fatalf("seed %d: ranking violated at %d", seed, i)
			}
		}
	}
}

// TestRegionAndFramePipelineOnRandomPrograms: braids group paths by
// entry/exit with coverage equal to the sum of their constituents, and every
// path/braid region frames with topologically ordered dependences and a
// finite CGRA schedule.
func TestRegionAndFramePipelineOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < seeds; seed += 5 {
		p := Generate(seed, Config{})
		fp, err := profile.CollectFunction(nil, p.F, []uint64{interp.IBits(9)}, p.NewMem(), true, 1<<22)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		braids := region.BuildBraids(fp, 0)
		var braidCov float64
		for _, br := range braids {
			braidCov += br.Coverage(fp)
			for _, pp := range br.Paths {
				if pp.Blocks[0] != br.Entry || pp.Blocks[len(pp.Blocks)-1] != br.Exit {
					t.Fatalf("seed %d: braid grouping violated", seed)
				}
			}
		}
		// Braids partition all executed paths, so their coverage sums to 1.
		if braidCov < 0.999 || braidCov > 1.001 {
			t.Fatalf("seed %d: braid coverage sums to %v", seed, braidCov)
		}

		// Frame every braid and the top paths.
		var frames []*frame.Frame
		for _, br := range braids {
			fr, err := frame.Build(nil, &br.Region, frame.Options{})
			if err != nil {
				t.Fatalf("seed %d: braid frame: %v", seed, err)
			}
			frames = append(frames, fr)
		}
		for _, pp := range fp.TopK(3) {
			fr, err := frame.Build(nil, region.FromPath(p.F, pp), frame.Options{})
			if err != nil {
				t.Fatalf("seed %d: path frame: %v", seed, err)
			}
			frames = append(frames, fr)
		}
		for _, fr := range frames {
			for i, op := range fr.Ops {
				for _, d := range op.Deps {
					if d >= i {
						t.Fatalf("seed %d: non-topological dep", seed)
					}
				}
			}
			s := cgra.Schedule(fr, cgra.DefaultConfig())
			if len(fr.Ops) > 0 && s.DataflowCycles <= 0 {
				t.Fatalf("seed %d: empty schedule for %d ops", seed, len(fr.Ops))
			}
			if s.II < 1 {
				t.Fatalf("seed %d: II = %d", seed, s.II)
			}
		}
	}
}

// TestSpecRollbackOnRandomPrograms: running the hottest path's frame
// speculatively from the function entry either succeeds or leaves memory
// bit-identical to the pre-invocation state.
func TestSpecRollbackOnRandomPrograms(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < seeds; seed++ {
		p := Generate(seed, Config{})
		fp, err := profile.CollectFunction(nil, p.F, []uint64{interp.IBits(3)}, p.NewMem(), false, 1<<22)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		hot := fp.HottestPath()
		// Only frames whose region starts at the entry block can be seeded
		// with just the parameter (no preceding state).
		if hot.Blocks[0] != p.F.Entry() || len(hot.Blocks[0].Phis()) > 0 {
			continue
		}
		fr, err := frame.Build(nil, region.FromPath(p.F, hot), frame.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mem := p.NewMem()
		snapshot := append([]uint64(nil), mem...)
		regs := make([]uint64, len(p.F.RegType))
		regs[1] = interp.IBits(99) // a different argument than profiling used
		out, err := spec.ExecuteFrame(fr, regs, mem, nil)
		if err != nil {
			t.Fatalf("seed %d: ExecuteFrame: %v", seed, err)
		}
		checked++
		if !out.Success {
			for i := range mem {
				if mem[i] != snapshot[i] {
					t.Fatalf("seed %d: rollback left memory dirty at %d", seed, i)
				}
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d seeds produced checkable frames", checked)
	}
}

// TestFunctionalOffloadOnRandomPrograms: the full speculation loop (frames,
// undo log, rollback, host re-execution) must be observationally identical
// to pure interpretation on random programs, for both path and braid
// targets.
func TestFunctionalOffloadOnRandomPrograms(t *testing.T) {
	cfg := sim.DefaultConfig()
	checked := 0
	for seed := int64(0); seed < seeds; seed += 2 {
		p := Generate(seed, Config{})
		memPure := p.NewMem()
		pure, err := interp.Run(p.F, []uint64{interp.IBits(21)}, memPure, nil, 1<<22)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		tr, err := sim.Capture(nil, p.F, []uint64{interp.IBits(21)}, p.NewMem(), cfg)
		if err != nil {
			t.Fatalf("seed %d: capture: %v", seed, err)
		}
		targets := []*sim.Target{}
		if tgt, err := sim.NewPathTarget(nil, tr.Profile, tr.Profile.HottestPath(), cfg); err == nil {
			targets = append(targets, tgt)
		}
		if braids := region.BuildBraids(tr.Profile, 0); len(braids) > 0 {
			if tgt, err := sim.NewBraidTarget(nil, tr.Profile, braids[0], cfg); err == nil {
				targets = append(targets, tgt)
			}
		}
		for ti, tgt := range targets {
			memOff := p.NewMem()
			res, err := sim.FunctionalOffload(p.F, []uint64{interp.IBits(21)}, memOff, tgt, spec.Always{}, 1<<22)
			if err != nil {
				t.Fatalf("seed %d target %d: %v", seed, ti, err)
			}
			if res.Ret != pure.Ret {
				t.Fatalf("seed %d target %d: result %d != pure %d", seed, ti, res.Ret, pure.Ret)
			}
			for i := range memPure {
				if memPure[i] != memOff[i] {
					t.Fatalf("seed %d target %d: memory diverged at %d", seed, ti, i)
				}
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d target runs checked", checked)
	}
}
