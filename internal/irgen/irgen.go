// Package irgen generates random structured IR programs for property-based
// testing: reducible CFGs built from nested loops, diamonds, early-exit
// chains, and switch trees over deterministic pseudo-random data. The
// pipeline's core invariants (Ball-Larus paths partition execution, frames
// roll back exactly, passes preserve semantics) are checked against these
// programs in the package test suites.
package irgen

import (
	"fmt"
	"math/rand"

	"needle/internal/ir"
)

// Config bounds the generated program shapes.
type Config struct {
	MaxDepth    int // nesting depth of structured constructs
	MaxStmts    int // statements per block sequence
	MaxLoopTrip int // loop trip counts (kept small: programs are executed)
	MemWords    int // memory size the program may address
}

// DefaultConfig returns bounds that keep generated runs in the tens of
// thousands of steps.
func DefaultConfig() Config {
	return Config{MaxDepth: 3, MaxStmts: 4, MaxLoopTrip: 6, MemWords: 64}
}

// Program is a generated function plus the memory image it expects.
type Program struct {
	F   *ir.Function
	Mem []uint64
}

// NewMem returns a fresh copy of the program's initial memory.
func (p *Program) NewMem() []uint64 {
	m := make([]uint64, len(p.Mem))
	copy(m, p.Mem)
	return m
}

// gen carries generation state.
type gen struct {
	r    *rand.Rand
	b    *ir.Builder
	cfg  Config
	vals []ir.Reg // live i64 values usable as operands
	uniq int
}

// Generate builds a random structured program from the seed. The function
// takes one i64 parameter (folded into the computation) and returns an i64.
func Generate(seed int64, cfg Config) *Program {
	if cfg.MaxDepth == 0 {
		cfg = DefaultConfig()
	}
	r := rand.New(rand.NewSource(seed))
	g := &gen{r: r, b: ir.NewBuilder(fmt.Sprintf("rand%d", seed), ir.I64), cfg: cfg}
	p := g.b.Param(0)
	// Seed the value pool with the parameter and a few constants.
	g.vals = []ir.Reg{p, g.b.ConstI(1), g.b.ConstI(3), g.b.ConstI(int64(r.Intn(50)))}

	acc := g.seq(cfg.MaxDepth, g.b.ConstI(0))
	g.b.Ret(acc)

	mem := make([]uint64, cfg.MemWords)
	for i := range mem {
		mem[i] = uint64(r.Intn(97))
	}
	return &Program{F: g.b.MustFinish(), Mem: mem}
}

func (g *gen) name(kind string) string {
	g.uniq++
	return fmt.Sprintf("%s%d", kind, g.uniq)
}

func (g *gen) pick() ir.Reg { return g.vals[g.r.Intn(len(g.vals))] }

// addr produces an in-bounds memory address register.
func (g *gen) addr() ir.Reg {
	v := g.pick()
	masked := g.b.And(v, g.b.ConstI(int64(g.cfg.MemWords-1)))
	// And of a possibly-negative value with a positive mask is >= 0.
	return masked
}

// stmt emits one straight-line statement, returning a new value.
func (g *gen) stmt(acc ir.Reg) ir.Reg {
	b := g.b
	switch g.r.Intn(8) {
	case 0:
		return b.Add(acc, g.pick())
	case 1:
		return b.Sub(acc, g.pick())
	case 2:
		v := b.Mul(g.pick(), b.ConstI(int64(1+g.r.Intn(7))))
		g.vals = append(g.vals, v)
		return b.Xor(acc, v)
	case 3:
		return b.And(b.Add(acc, g.pick()), b.ConstI(1<<40-1))
	case 4:
		v := b.Load(ir.I64, g.addr())
		g.vals = append(g.vals, v)
		return b.Add(acc, v)
	case 5:
		b.Store(g.addr(), b.And(acc, b.ConstI(1<<30-1)))
		return acc
	case 6:
		v := b.Shr(acc, b.ConstI(int64(1+g.r.Intn(5))))
		return b.Add(v, g.pick())
	default:
		return b.Or(acc, b.And(g.pick(), b.ConstI(255)))
	}
}

// seq emits a sequence of statements and nested constructs, threading acc.
func (g *gen) seq(depth int, acc ir.Reg) ir.Reg {
	n := 1 + g.r.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		if depth > 0 && g.r.Intn(3) == 0 {
			switch g.r.Intn(3) {
			case 0:
				acc = g.diamond(depth-1, acc)
			case 1:
				acc = g.loop(depth-1, acc)
			default:
				acc = g.earlyExitChain(depth-1, acc)
			}
		} else {
			acc = g.stmt(acc)
		}
	}
	return acc
}

// diamond emits an if/else on a data-dependent condition.
func (g *gen) diamond(depth int, acc ir.Reg) ir.Reg {
	b := g.b
	nm := g.name("d")
	cond := b.Cmp(randCmp(g.r), b.And(acc, b.ConstI(63)), b.ConstI(int64(g.r.Intn(64))))
	tb := b.NewBlock(nm + ".t")
	fb := b.NewBlock(nm + ".f")
	join := b.NewBlock(nm + ".j")
	b.CondBr(cond, tb, fb)

	// Values defined inside either arm do not dominate code after the join;
	// keep the operand pool scoped to each arm.
	saved := len(g.vals)
	b.SetBlock(tb)
	tv := g.seq(depth, acc)
	tEnd := b.Block()
	b.Br(join)
	g.vals = g.vals[:saved]

	b.SetBlock(fb)
	fv := g.seq(depth, acc)
	fEnd := b.Block()
	b.Br(join)
	g.vals = g.vals[:saved]

	b.SetBlock(join)
	p := b.Phi(ir.I64)
	b.AddIncoming(p, tEnd, tv)
	b.AddIncoming(p, fEnd, fv)
	return p
}

// loop emits a small counted loop whose body is a nested sequence.
func (g *gen) loop(depth int, acc ir.Reg) ir.Reg {
	b := g.b
	nm := g.name("l")
	trip := b.ConstI(int64(1 + g.r.Intn(g.cfg.MaxLoopTrip)))
	zero := b.ConstI(0)
	one := b.ConstI(1)

	head := b.NewBlock(nm + ".head")
	body := b.NewBlock(nm + ".body")
	exit := b.NewBlock(nm + ".exit")
	pre := b.Block()
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi(ir.I64)
	a := b.Phi(ir.I64)
	b.AddIncoming(i, pre, zero)
	b.AddIncoming(a, pre, acc)
	c := b.CmpLT(i, trip)
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	// The loop body may use i; register it in the pool for the body only.
	saved := len(g.vals)
	g.vals = append(g.vals, i)
	next := g.seq(depth, a)
	g.vals = g.vals[:saved]
	i2 := b.Add(i, one)
	latch := b.Block()
	b.Br(head)
	b.AddIncoming(i, latch, i2)
	b.AddIncoming(a, latch, next)

	b.SetBlock(exit)
	return a
}

// earlyExitChain emits a gzip/bzip2-style compare chain with a merge phi.
func (g *gen) earlyExitChain(depth int, acc ir.Reg) ir.Reg {
	b := g.b
	nm := g.name("c")
	k := 2 + g.r.Intn(3)
	latch := b.NewBlock(nm + ".m")
	type inc struct {
		from *ir.Block
		val  ir.Reg
	}
	var incs []inc
	cur := acc
	saved := len(g.vals)
	for s := 0; s < k; s++ {
		cond := b.CmpLT(b.And(cur, b.ConstI(31)), b.ConstI(int64(g.r.Intn(32))))
		next := b.NewBlock(fmt.Sprintf("%s.s%d", nm, s))
		incs = append(incs, inc{b.Block(), cur})
		b.CondBr(cond, next, latch)
		b.SetBlock(next)
		cur = g.stmt(cur)
	}
	incs = append(incs, inc{b.Block(), cur})
	b.Br(latch)
	// Chain-interior defs do not dominate the merge's continuation.
	g.vals = g.vals[:saved]
	b.SetBlock(latch)
	p := b.Phi(ir.I64)
	for _, in := range incs {
		b.AddIncoming(p, in.from, in.val)
	}
	_ = depth
	return p
}

func randCmp(r *rand.Rand) ir.Op {
	ops := []ir.Op{ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE}
	return ops[r.Intn(len(ops))]
}
