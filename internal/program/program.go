// Package program defines the pipeline's first-class input: an arbitrary
// NIR program plus the deterministic initial state it runs against, and a
// content digest that identifies exactly that. Every layer above the IR —
// the staged pipeline, the core Analyzer, the CLI, and the needled service
// — consumes a *Program, so "analyze this workload" and "analyze this file
// the user just POSTed" are the same operation.
//
// The digest is the load-bearing part. Stage artifacts (and their on-disk
// persisted forms) used to be keyed by workload *name*, which silently
// reused stale artifacts whenever a same-named kernel's body changed across
// binary versions. A Program is content-addressed instead: the digest is a
// SHA-256 over the canonical ir.Print rendering of the entry function and
// everything it transitively calls, plus the entry point and the full
// initial state (arguments and memory image). Two programs share a digest
// exactly when the pipeline would produce byte-identical artifacts for
// them; two different bodies behind one name never collide.
package program

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"

	"needle/internal/ir"
)

// Program is one analyzable unit: a verified entry function (with its
// transitive callees reachable through the IR), the pristine initial state
// a run starts from, and identity metadata. Programs are immutable after
// New; Args and Memory are the pristine images — every consumer that
// executes the program copies them first, so one Program can back any
// number of concurrent runs.
type Program struct {
	// Name labels the program in reports, spans, and summaries (a workload
	// name like "164.gzip", or the entry function's name for loaded files).
	Name string
	// Suite groups related programs ("SPEC", "PARSEC", "PERFECT" for the
	// built-in workloads; SuiteUser for programs loaded from source).
	Suite string
	// F is the entry function. It and its transitive callees have passed
	// ir.Verify.
	F *ir.Function
	// Args holds the entry function's argument values (read-only).
	Args []uint64
	// Memory is the initial memory image (read-only).
	Memory []uint64

	digestOnce sync.Once
	digest     string
}

// SuiteUser is the suite label of programs loaded from user-supplied
// source rather than the built-in workload registry.
const SuiteUser = "user"

// digestDomain separates program digests from any other SHA-256 use; bump
// the version if the digested byte layout ever changes.
const digestDomain = "needle-program-v1"

// New builds a Program after verifying the entry function and every
// function it transitively calls. The argument count must match the entry
// function's parameter count. args and memory are retained, not copied —
// the caller hands over ownership of pristine, henceforth read-only state.
func New(name, suite string, f *ir.Function, args, memory []uint64) (*Program, error) {
	if f == nil {
		return nil, fmt.Errorf("program: %s: no entry function", name)
	}
	for _, fn := range ir.ModuleOf(f).Funcs {
		if err := ir.Verify(fn); err != nil {
			return nil, fmt.Errorf("program: %s: %w", name, err)
		}
	}
	if len(args) != f.NumParams() {
		return nil, fmt.Errorf("program: %s: entry @%s wants %d arguments, have %d",
			name, f.Name, f.NumParams(), len(args))
	}
	return &Program{Name: name, Suite: suite, F: f, Args: args, Memory: memory}, nil
}

// Digest returns the program's content digest: 32 hex characters of a
// SHA-256 over the canonical printed module (entry first), the entry
// function's name, and the full initial state. It is deterministic across
// processes and binary versions — the property the persistent artifact
// store's cache keys rely on — and is computed once, lazily.
func (p *Program) Digest() string {
	p.digestOnce.Do(func() {
		h := sha256.New()
		var word [8]byte
		writeUint := func(v uint64) {
			binary.LittleEndian.PutUint64(word[:], v)
			h.Write(word[:])
		}
		fmt.Fprintf(h, "%s\nentry=%s\n", digestDomain, p.F.Name)
		h.Write([]byte(ir.PrintModule(ir.ModuleOf(p.F))))
		fmt.Fprintf(h, "\nargs=%d\n", len(p.Args))
		for _, a := range p.Args {
			writeUint(a)
		}
		fmt.Fprintf(h, "\nmem=%d\n", len(p.Memory))
		for _, m := range p.Memory {
			writeUint(m)
		}
		p.digest = hex.EncodeToString(h.Sum(nil))[:32]
	})
	return p.digest
}

// Key returns the human-readable cache-key base the pipeline uses:
// "<name>@<digest>". The name keeps store entries and span labels
// debuggable; the digest is what makes the key content-addressed.
func (p *Program) Key() string { return p.Name + "@" + p.Digest() }

func (p *Program) String() string { return p.Key() }
