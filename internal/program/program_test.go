package program

import (
	"errors"
	"math"
	"strings"
	"testing"

	"needle/internal/ir"
)

const countSrc = `func @count(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [body: r4]
  r5 = cmp.lt r3, r1
  condbr r5, %body, %exit
body:
  r6 = const.i64 1
  r4 = add r3, r6
  br %head
exit:
  ret r3
}
`

func mustLoad(t *testing.T, src string, opts LoadOptions) *Program {
	t.Helper()
	p, err := Load(src, opts)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

func TestDigestDeterministicAndContentAddressed(t *testing.T) {
	opts := LoadOptions{Args: []string{"10"}}
	p1 := mustLoad(t, countSrc, opts)
	p2 := mustLoad(t, countSrc, opts)
	if p1.Digest() != p2.Digest() {
		t.Errorf("identical loads digest differently: %s vs %s", p1.Digest(), p2.Digest())
	}
	if len(p1.Digest()) != 32 {
		t.Errorf("digest length %d, want 32 hex chars", len(p1.Digest()))
	}
	if p1.Key() != p1.Name+"@"+p1.Digest() {
		t.Errorf("Key() = %q, want name@digest", p1.Key())
	}

	// Any change to body, args, or memory is a different digest.
	body := mustLoad(t, strings.Replace(countSrc, "const.i64 1", "const.i64 2", 1), opts)
	if body.Digest() == p1.Digest() {
		t.Error("changed body shares a digest")
	}
	args := mustLoad(t, countSrc, LoadOptions{Args: []string{"11"}})
	if args.Digest() == p1.Digest() {
		t.Error("changed arguments share a digest")
	}
	mem := mustLoad(t, countSrc, LoadOptions{Args: []string{"10"}, MemWords: 8192})
	if mem.Digest() == p1.Digest() {
		t.Error("changed memory image shares a digest")
	}
}

func TestLoadDefaultsAndEntrySelection(t *testing.T) {
	p := mustLoad(t, countSrc, LoadOptions{})
	if p.Name != "count" || p.Suite != SuiteUser {
		t.Errorf("identity = %s/%s, want count/%s", p.Name, p.Suite, SuiteUser)
	}
	if len(p.Memory) != DefaultMemWords {
		t.Errorf("memory defaulted to %d words, want %d", len(p.Memory), DefaultMemWords)
	}
	if len(p.Args) != 1 || p.Args[0] != 0 {
		t.Errorf("missing args must zero-fill, got %v", p.Args)
	}

	two := countSrc + "\nfunc @other() {\nentry:\n  r1 = const.i64 9\n  ret r1\n}\n"
	p = mustLoad(t, two, LoadOptions{Entry: "other"})
	if p.Name != "other" || p.F.Name != "other" {
		t.Errorf("entry selection picked %s", p.F.Name)
	}
	if _, err := Load(two, LoadOptions{Entry: "missing"}); !errors.Is(err, ErrInvalid) {
		t.Errorf("unknown entry: %v, want ErrInvalid", err)
	}
}

func TestLoadTypedErrors(t *testing.T) {
	if _, err := Load("not nir at all", LoadOptions{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("parse failure: %v, want ErrInvalid", err)
	}
	// Verifier rejections surface both the sentinel and the typed error
	// (inconsistent returns pass the parser's own checks but fail Verify).
	_, err := Load("func @f(i64) {\nentry:\n  condbr r1, %a, %b\na:\n  ret r1\nb:\n  ret\n}\n", LoadOptions{})
	if !errors.Is(err, ErrInvalid) {
		t.Errorf("verifier failure: %v, want ErrInvalid", err)
	}
	var ve *ir.VerifyError
	if !errors.As(err, &ve) {
		t.Errorf("verifier failure does not carry *ir.VerifyError: %v", err)
	}

	lim := Limits{MaxSourceBytes: 8}
	if _, err := Load(countSrc, LoadOptions{Limits: lim}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("source cap: %v, want ErrTooLarge", err)
	}
	lim = Limits{MaxInstrs: 3}
	if _, err := Load(countSrc, LoadOptions{Limits: lim}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("instruction cap: %v, want ErrTooLarge", err)
	}
	lim = Limits{MaxMemWords: 100}
	if _, err := Load(countSrc, LoadOptions{MemWords: 4096, Limits: lim}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("memory cap: %v, want ErrTooLarge", err)
	}
	if _, err := Load(countSrc, LoadOptions{Args: []string{"1", "2"}}); !errors.Is(err, ErrInvalid) {
		t.Errorf("excess arguments: %v, want ErrInvalid", err)
	}
	if _, err := Load(countSrc, LoadOptions{Args: []string{"not-a-number"}}); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad literal: %v, want ErrInvalid", err)
	}
}

func TestArgValues(t *testing.T) {
	m, err := ParseModule("func @f(i64, f64, f64) {\nentry:\n  ret r1\n}\n", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	f := m.Funcs[0]
	got, err := ArgValues(f, []string{"-7", "f:2.5", "3.5"})
	if err != nil {
		t.Fatal(err)
	}
	if int64(got[0]) != -7 {
		t.Errorf("int arg = %d, want -7", int64(got[0]))
	}
	if math.Float64frombits(got[1]) != 2.5 {
		t.Errorf("f: arg = %g, want 2.5", math.Float64frombits(got[1]))
	}
	// A float-typed parameter accepts a bare float literal.
	if math.Float64frombits(got[2]) != 3.5 {
		t.Errorf("typed float arg = %g, want 3.5", math.Float64frombits(got[2]))
	}
	// Hex and underscore-free base-0 int parsing.
	got, err = ArgValues(f, []string{"0x10"})
	if err != nil || got[0] != 16 {
		t.Errorf("hex literal: %v %v", got, err)
	}
}

func TestNewRejectsMismatchedArgs(t *testing.T) {
	m, err := ParseModule(countSrc, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New("x", SuiteUser, m.Funcs[0], nil, nil); err == nil {
		t.Error("New accepted an argument-count mismatch")
	}
	if _, err := New("x", SuiteUser, nil, nil, nil); err == nil {
		t.Error("New accepted a nil entry function")
	}
}
