// The shared .nir loader: one path from untrusted program text to a
// verified, bounded Program, used by `needle -nir`, the nir tool, and the
// needled service's inline-source endpoint. Loading enforces the caller's
// Limits so a hostile input cannot force an unbounded parse, memory image,
// or register file; violations and malformed source come back as typed
// errors (ErrTooLarge, ErrInvalid) the serve layer maps to 413/422.
package program

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"needle/internal/ir"
)

var (
	// ErrInvalid wraps every "the source is malformed" failure: parse
	// errors, verifier rejections, unknown entry functions, bad argument
	// literals, argument-count mismatches. HTTP ingestion maps it to 422.
	ErrInvalid = errors.New("invalid program")
	// ErrTooLarge wraps every limit violation: source bytes, instruction
	// count, or memory-image size over the configured cap.
	ErrTooLarge = errors.New("program exceeds limits")
)

// DefaultMemWords is the memory image size a load falls back to when the
// caller does not specify one (matching the nir tool's historical default).
const DefaultMemWords = 4096

// Limits bounds what a loaded program may cost. Zero-valued fields are
// unlimited, so the trusted CLI path can pass the zero Limits while the
// service configures every cap.
type Limits struct {
	// MaxSourceBytes caps the .nir source text length.
	MaxSourceBytes int
	// MaxInstrs caps the static instruction count across the module.
	MaxInstrs int
	// MaxMemWords caps the requested memory image size.
	MaxMemWords int
	// MaxSteps caps the interpreter step bound an untrusted request may
	// run with. It is not enforced by Load (which never executes anything)
	// — the serve layer applies it to the analysis config.
	MaxSteps int64
}

// LoadOptions selects the entry point and initial state of a loaded
// program.
type LoadOptions struct {
	// Entry names the entry function; empty selects the module's first.
	Entry string
	// MemWords is the memory image size in words; <= 0 selects
	// DefaultMemWords.
	MemWords int
	// Args are the entry function's arguments as text: int64 literals, or
	// float literals prefixed with "f:" (e.g. "f:3.5"). Missing arguments
	// default to zero values of the parameter types.
	Args []string
	// Limits bounds the load; the zero value is unlimited.
	Limits Limits
}

// ParseModule parses .nir source under the given limits. It is the one
// module-parsing entry point the commands and the service share; ir.Parse
// verifies every function, and this wrapper adds the size gates and typed
// errors.
func ParseModule(src string, lim Limits) (*ir.Module, error) {
	if lim.MaxSourceBytes > 0 && len(src) > lim.MaxSourceBytes {
		return nil, fmt.Errorf("%w: source is %d bytes, cap is %d", ErrTooLarge, len(src), lim.MaxSourceBytes)
	}
	m, err := ir.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	if lim.MaxInstrs > 0 {
		total := 0
		for _, f := range m.Funcs {
			total += f.NumInstrs()
		}
		if total > lim.MaxInstrs {
			return nil, fmt.Errorf("%w: module has %d instructions, cap is %d", ErrTooLarge, total, lim.MaxInstrs)
		}
	}
	return m, nil
}

// Load parses .nir source and materializes the selected entry function as
// a Program named after it, in SuiteUser.
func Load(src string, opts LoadOptions) (*Program, error) {
	m, err := ParseModule(src, opts.Limits)
	if err != nil {
		return nil, err
	}
	return FromModule(m, opts)
}

// LoadFile is Load over a file's contents.
func LoadFile(path string, opts LoadOptions) (*Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("program: %w", err)
	}
	return Load(string(src), opts)
}

// FromModule materializes a parsed module's entry function as a Program.
// The module must come from ParseModule (or otherwise verify).
func FromModule(m *ir.Module, opts LoadOptions) (*Program, error) {
	if len(m.Funcs) == 0 {
		return nil, fmt.Errorf("%w: module has no functions", ErrInvalid)
	}
	f := m.Funcs[0]
	if opts.Entry != "" {
		if f = m.Func(opts.Entry); f == nil {
			return nil, fmt.Errorf("%w: no function @%s in module", ErrInvalid, opts.Entry)
		}
	}
	memWords := opts.MemWords
	if memWords <= 0 {
		memWords = DefaultMemWords
	}
	if opts.Limits.MaxMemWords > 0 && memWords > opts.Limits.MaxMemWords {
		return nil, fmt.Errorf("%w: memory image of %d words, cap is %d", ErrTooLarge, memWords, opts.Limits.MaxMemWords)
	}
	if len(opts.Args) > f.NumParams() {
		return nil, fmt.Errorf("%w: entry @%s wants %d arguments, have %d", ErrInvalid, f.Name, f.NumParams(), len(opts.Args))
	}
	args, err := ArgValues(f, opts.Args)
	if err != nil {
		return nil, err
	}
	p, err := New(f.Name, SuiteUser, f, args, make([]uint64, memWords))
	if err != nil {
		// New re-verifies; a module from ParseModule already passed, so this
		// is only reachable for hand-assembled modules.
		return nil, fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	return p, nil
}

// ArgValues parses textual argument literals into the raw register values
// the interpreter consumes, one per entry-function parameter. Integer
// parameters take int64 literals; float parameters (and any literal with
// the explicit "f:" prefix) take float literals. Parameters beyond the
// provided literals default to zero.
func ArgValues(f *ir.Function, raw []string) ([]uint64, error) {
	out := make([]uint64, f.NumParams())
	for i, s := range raw {
		if fs, ok := strings.CutPrefix(s, "f:"); ok {
			v, err := strconv.ParseFloat(fs, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad float argument %q: %v", ErrInvalid, s, err)
			}
			out[i] = math.Float64bits(v)
			continue
		}
		if f.RegType[f.Param(i)] == ir.F64 {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad float argument %q: %v", ErrInvalid, s, err)
			}
			out[i] = math.Float64bits(v)
			continue
		}
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad int argument %q: %v", ErrInvalid, s, err)
		}
		out[i] = uint64(v)
	}
	return out, nil
}
