// Package ballarus implements Ball-Larus efficient path profiling
// (Ball & Larus, MICRO 1996), the enumeration Needle uses to discover
// "what to specialize".
//
// The control-flow graph of a function is made acyclic by replacing every
// back edge u->w with two dummy edges ENTRY->w and u->EXIT. Every acyclic
// source-to-sink path in the resulting DAG receives a unique integer in
// [0, NumPaths) by assigning each edge a value such that the sum of edge
// values along a path is its ID. At run time a single counter accumulates
// edge values; the counter is flushed to a path ID at back edges and
// function exits, so every dynamically executed instruction is attributed
// to exactly one path occurrence.
package ballarus

import (
	"errors"
	"fmt"

	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/obs"
	"needle/internal/pm"
)

// Observability counters (no-ops until obs.Enable).
var (
	obsDAGBuilds    = obs.GetCounter("ballarus.dag.builds")
	obsPlanCompiles = obs.GetCounter("ballarus.plan.compiles")
)

// ErrTooManyPaths is returned when a function's acyclic path count exceeds
// the representable limit. Real path profilers degrade to hashing in this
// case; Needle simply declines to profile such functions.
var ErrTooManyPaths = errors.New("ballarus: path count overflow")

// ErrIrreducible is returned when removing dominance back edges does not
// make the CFG acyclic (an irreducible loop).
var ErrIrreducible = errors.New("ballarus: irreducible control flow")

// maxPaths bounds NumPaths per function; sums of edge values stay well
// within int64.
const maxPaths = int64(1) << 40

type edgeKey struct{ from, to int } // block indices

type backInfo struct {
	exitVal  int64 // Val(u->EXIT dummy)
	resetVal int64 // Val(ENTRY->w dummy)
}

// dagEdge is an ordered out-edge of a DAG node used for path decoding.
type dagEdge struct {
	to  int // node id
	val int64
}

// DAG is the Ball-Larus path-numbering structure for one function.
type DAG struct {
	F *ir.Function

	numPaths int64
	entryVal int64 // Val(ENTRY -> real entry block)

	normVal map[edgeKey]int64    // forward CFG edges
	backVal map[edgeKey]backInfo // back edges
	retVal  map[int]int64        // Val(b->EXIT) for returning blocks

	// Decoding structures. Node ids: 0 = ENTRY, 1+i = block with Index i,
	// len(blocks)+1 = EXIT.
	out      [][]dagEdge
	nPaths   []int64 // paths from node to EXIT
	exitNode int
}

// Build computes the path numbering for f. The function must be finished
// and verified. Dominance facts come from am (nil for a one-shot manager).
func Build(am *pm.Manager, f *ir.Function) (*DAG, error) {
	obsDAGBuilds.Add(1)
	am = pm.Ensure(am)
	dom := am.Dominators(f)
	back := make(map[edgeKey]bool)
	for _, e := range am.BackEdges(f) {
		back[edgeKey{e.From.Index, e.To.Index}] = true
	}

	nBlocks := len(f.Blocks)
	entryNode := 0
	exitNode := nBlocks + 1
	node := func(b *ir.Block) int { return b.Index + 1 }

	d := &DAG{
		F:        f,
		normVal:  make(map[edgeKey]int64),
		backVal:  make(map[edgeKey]backInfo),
		retVal:   make(map[int]int64),
		out:      make([][]dagEdge, nBlocks+2),
		nPaths:   make([]int64, nBlocks+2),
		exitNode: exitNode,
	}

	// Assemble ordered DAG out-edges. Reachability matters: unreachable
	// blocks contribute no edges and no paths.
	reachable := make([]bool, nBlocks)
	for _, b := range dom.RPO() {
		reachable[b.Index] = true
	}

	type rawEdge struct {
		from, to int
		key      edgeKey // original CFG edge this DAG edge represents
		kind     int     // 0 normal, 1 backExit, 2 backReset, 3 retExit, 4 entry
	}
	var raw []rawEdge
	raw = append(raw, rawEdge{entryNode, node(f.Entry()), edgeKey{}, 4})
	// ENTRY -> back-edge targets, ordered by block index, deduplicated.
	seenTarget := make(map[int]bool)
	for _, b := range f.Blocks {
		if !reachable[b.Index] {
			continue
		}
		for _, s := range b.Succs() {
			k := edgeKey{b.Index, s.Index}
			if back[k] && !seenTarget[s.Index] {
				seenTarget[s.Index] = true
				raw = append(raw, rawEdge{entryNode, node(s), edgeKey{-1, s.Index}, 2})
			}
		}
	}
	for _, b := range f.Blocks {
		if !reachable[b.Index] {
			continue
		}
		term := b.Term()
		if term.Op == ir.OpRet {
			raw = append(raw, rawEdge{node(b), exitNode, edgeKey{b.Index, -1}, 3})
			continue
		}
		// Normal successors in terminator order, back-edge exits afterward.
		var backs []rawEdge
		seen := make(map[int]bool)
		for _, s := range b.Succs() {
			if seen[s.Index] {
				continue // parallel edge: both condbr targets identical
			}
			seen[s.Index] = true
			k := edgeKey{b.Index, s.Index}
			if back[k] {
				backs = append(backs, rawEdge{node(b), exitNode, k, 1})
			} else {
				raw = append(raw, rawEdge{node(b), node(s), k, 0})
			}
		}
		raw = append(raw, backs...)
	}

	outRaw := make([][]rawEdge, nBlocks+2)
	indeg := make([]int, nBlocks+2)
	for _, e := range raw {
		outRaw[e.from] = append(outRaw[e.from], e)
		indeg[e.to]++
	}

	// Topological order via Kahn's algorithm; a leftover node means the
	// graph stayed cyclic after back-edge removal (irreducible CFG).
	order := make([]int, 0, nBlocks+2)
	queue := []int{entryNode}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range outRaw[n] {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	nodesInGraph := 2 // ENTRY + EXIT
	for i := 0; i < nBlocks; i++ {
		if reachable[i] {
			nodesInGraph++
		}
	}
	if len(order) != nodesInGraph {
		return nil, fmt.Errorf("%w in %s", ErrIrreducible, f.Name)
	}

	// NumPaths and edge values in reverse topological order.
	d.nPaths[exitNode] = 1
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n == exitNode {
			continue
		}
		var sum int64
		for _, e := range outRaw[n] {
			val := sum
			tp := d.nPaths[e.to]
			if tp > maxPaths || sum > maxPaths-tp {
				return nil, fmt.Errorf("%w in %s", ErrTooManyPaths, f.Name)
			}
			sum += tp
			d.out[n] = append(d.out[n], dagEdge{to: e.to, val: val})
			switch e.kind {
			case 0:
				d.normVal[e.key] = val
			case 1:
				bi := d.backVal[e.key]
				bi.exitVal = val
				d.backVal[e.key] = bi
			case 2:
				// Reset values are shared by every back edge targeting the
				// same header; record per-target and fan out below.
				d.retVal[-2-e.key.to] = val // stashed temporarily
			case 3:
				d.retVal[e.key.from] = val
			case 4:
				d.entryVal = val
			}
		}
		d.nPaths[n] = sum
		if sum == 0 {
			// A node with no out-edges other than through cycles; cannot
			// happen in verified functions (every block terminates and EXIT
			// is reachable), but guard anyway.
			return nil, fmt.Errorf("ballarus: block %d of %s reaches no exit", n-1, f.Name)
		}
	}
	d.numPaths = d.nPaths[entryNode]

	// Fan reset values out to the individual back edges.
	for k := range back {
		stash := -2 - k.to
		bi := d.backVal[k]
		bi.resetVal = d.retVal[stash]
		d.backVal[k] = bi
	}
	for k := range d.retVal {
		if k < 0 {
			delete(d.retVal, k)
		}
	}
	return d, nil
}

// NumPaths returns the number of distinct acyclic paths through the DAG.
func (d *DAG) NumPaths() int64 { return d.numPaths }

// EntryVal returns the initial path-register value on function entry.
func (d *DAG) EntryVal() int64 { return d.entryVal }

// IsBackEdge reports whether u->v is a back edge in the profiled CFG.
func (d *DAG) IsBackEdge(u, v *ir.Block) bool {
	_, ok := d.backVal[edgeKey{u.Index, v.Index}]
	return ok
}

// Decode expands a path ID into its sequence of basic blocks.
func (d *DAG) Decode(id int64) ([]*ir.Block, error) {
	if id < 0 || id >= d.numPaths {
		return nil, fmt.Errorf("ballarus: path id %d out of range [0,%d) for %s", id, d.numPaths, d.F.Name)
	}
	var blocks []*ir.Block
	n := 0 // ENTRY
	rem := id
	for n != d.exitNode {
		edges := d.out[n]
		if len(edges) == 0 {
			return nil, fmt.Errorf("ballarus: decode stuck at node %d in %s", n, d.F.Name)
		}
		// Choose the last edge whose value is <= rem.
		chosen := edges[0]
		for _, e := range edges[1:] {
			if e.val <= rem {
				chosen = e
			} else {
				break
			}
		}
		rem -= chosen.val
		n = chosen.to
		if n != d.exitNode {
			blocks = append(blocks, d.F.Blocks[n-1])
		}
	}
	return blocks, nil
}

// Encode computes the path ID of a block sequence (the inverse of Decode);
// used mainly by tests and region validation. The sequence must be a valid
// DAG path from a path start (function entry or loop header) to a path end
// (back-edge source or returning block).
func (d *DAG) Encode(blocks []*ir.Block) (int64, error) {
	if len(blocks) == 0 {
		return 0, errors.New("ballarus: empty path")
	}
	var id int64
	first := blocks[0]
	if first == d.F.Entry() {
		id += d.entryVal
	} else {
		// Must be a back-edge target: find any back edge into it.
		found := false
		for k, bi := range d.backVal {
			if k.to == first.Index {
				id += bi.resetVal
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("ballarus: %s is not a valid path start", first.Name)
		}
	}
	for i := 0; i+1 < len(blocks); i++ {
		v, ok := d.normVal[edgeKey{blocks[i].Index, blocks[i+1].Index}]
		if !ok {
			return 0, fmt.Errorf("ballarus: %s->%s is not a forward edge", blocks[i].Name, blocks[i+1].Name)
		}
		id += v
	}
	last := blocks[len(blocks)-1]
	if v, ok := d.retVal[last.Index]; ok {
		id += v
		return id, nil
	}
	// Otherwise the path must end at a back-edge source.
	for k, bi := range d.backVal {
		if k.from == last.Index {
			return id + bi.exitVal, nil
		}
	}
	return 0, fmt.Errorf("ballarus: %s is not a valid path end", last.Name)
}

// CompilePlan overlays this DAG's path numbering onto a compiled execution
// plan for the same function, producing the per-successor-slot edge
// annotations interp.RunPlan consumes. The overlay is a separate object so
// the structural Plan cached by the analysis manager stays immutable and
// shareable. Edges absent from the numbering (out of unreachable blocks)
// get a zero annotation, matching the hook-path behaviour of leaving the
// path register untouched.
func (d *DAG) CompilePlan(p *interp.Plan) *interp.BLPlan {
	if p.F() != d.F {
		panic("ballarus: CompilePlan called with a plan for a different function")
	}
	obsPlanCompiles.Add(1)
	n := len(d.F.Blocks)
	bl := &interp.BLPlan{
		EntryVal: d.entryVal,
		NumPaths: d.numPaths,
		Succs:    make([][2]interp.BLEdge, n),
		RetVal:   make([]int64, n),
	}
	for i := 0; i < n; i++ {
		if v, ok := d.retVal[i]; ok {
			bl.RetVal[i] = v
		}
		for k := 0; k < p.NumSuccs(i); k++ {
			key := edgeKey{i, p.Succ(i, k)}
			if bi, ok := d.backVal[key]; ok {
				bl.Succs[i][k] = interp.BLEdge{Inc: bi.exitVal, Reset: bi.resetVal, Flush: true}
			} else if v, ok := d.normVal[key]; ok {
				bl.Succs[i][k] = interp.BLEdge{Inc: v}
			}
		}
	}
	return bl
}

// Profiler accumulates a Ball-Larus path profile while a function executes.
// Attach it to the interpreter via Hooks. A single Profiler may observe many
// invocations of the same function.
type Profiler struct {
	dag *DAG

	// Counts maps path ID to execution frequency.
	Counts map[int64]int64
	// Trace, when RecordTrace is set, is the sequence of completed path IDs
	// in execution order (the "path trace" of Section IV-A).
	Trace       []int64
	RecordTrace bool
	// OnPath, when non-nil, fires at every path completion with the path ID,
	// letting the system simulator attribute costs to path occurrences.
	OnPath func(id int64)

	cur    int64
	inside bool
	// member is dense by Block.Index with an identity check: callee blocks
	// carry their own (overlapping) index ranges, so the index alone is not
	// enough, but the compare replaces a map lookup per event.
	member []*ir.Block
}

// NewProfiler creates a profiler for the function described by dag.
func NewProfiler(dag *DAG) *Profiler {
	member := make([]*ir.Block, len(dag.F.Blocks))
	for _, b := range dag.F.Blocks {
		member[b.Index] = b
	}
	return &Profiler{dag: dag, Counts: make(map[int64]int64), member: member}
}

// isMember reports whether b belongs to the profiled function.
func (p *Profiler) isMember(b *ir.Block) bool {
	return b.Index < len(p.member) && p.member[b.Index] == b
}

// DAG returns the underlying path numbering.
func (p *Profiler) DAG() *DAG { return p.dag }

func (p *Profiler) record(id int64) {
	p.Counts[id]++
	if p.RecordTrace {
		p.Trace = append(p.Trace, id)
	}
	if p.OnPath != nil {
		p.OnPath(id)
	}
}

// Hooks returns interpreter hooks that drive this profiler. The hooks only
// react to blocks of the profiled function (membership-checked), so they are
// safe to use even when other functions — callees included — run on the same
// interpreter. Recursive invocations of the profiled function itself are not
// supported; the pipeline inlines calls before profiling.
func (p *Profiler) Hooks() *interp.Hooks {
	f := p.dag.F
	return &interp.Hooks{
		Block: func(b *ir.Block) {
			if !p.inside && b == f.Entry() {
				p.inside = true
				p.cur = p.dag.entryVal
			}
		},
		Edge: func(from, to *ir.Block) {
			if !p.inside || !p.isMember(from) {
				return
			}
			if bi, ok := p.dag.backVal[edgeKey{from.Index, to.Index}]; ok {
				p.record(p.cur + bi.exitVal)
				p.cur = bi.resetVal
				return
			}
			if v, ok := p.dag.normVal[edgeKey{from.Index, to.Index}]; ok {
				p.cur += v
			}
		},
		Exit: func(from *ir.Block) {
			if !p.inside || !p.isMember(from) {
				return
			}
			if v, ok := p.dag.retVal[from.Index]; ok {
				p.record(p.cur + v)
			}
			p.inside = false
		},
	}
}

// TotalOccurrences returns the total number of recorded path executions.
func (p *Profiler) TotalOccurrences() int64 {
	var n int64
	for _, c := range p.Counts {
		n += c
	}
	return n
}

// PathOps returns the number of instructions attributed to one occurrence
// of the path: the sum of all instructions (phis and terminators included)
// across its blocks. Because Ball-Larus paths partition dynamic execution,
// summing freq*PathOps over all executed paths equals the interpreter's
// step count exactly.
func PathOps(blocks []*ir.Block) int64 {
	var n int64
	for _, b := range blocks {
		n += int64(len(b.Instrs))
	}
	return n
}
