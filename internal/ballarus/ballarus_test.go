package ballarus

import (
	"testing"
	"testing/quick"

	"needle/internal/interp"
	"needle/internal/ir"
)

func parse(t testing.TB, src string) *ir.Function {
	t.Helper()
	f, err := ir.ParseFunction(src)
	if err != nil {
		t.Fatalf("ParseFunction: %v", err)
	}
	return f
}

// diamond has 2 paths: entry->left->join and entry->right->join.
const diamondSrc = `func @diamond(i64) {
entry:
  r2 = const.i64 0
  r3 = cmp.lt r1, r2
  condbr r3, %left, %right
left:
  r4 = add r1, r1
  br %join
right:
  r5 = mul r1, r1
  br %join
join:
  r6 = phi.i64 [left: r4] [right: r5]
  ret r6
}
`

// loopDiamond: a loop whose body is an if-diamond. Acyclic paths:
//
//	entry->head->exit                    (enter, zero iterations)
//	entry->head->even/odd->latch         (first iteration)  x2
//	head->even/odd->latch                (middle iteration) x2
//	head->exit                           (loop exit)
const loopDiamondSrc = `func @loopdiamond(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [latch: r10]
  r4 = phi.i64 [entry: r2] [latch: r9]
  r5 = cmp.lt r4, r1
  condbr r5, %body, %exit
body:
  r6 = const.i64 2
  r7 = rem r4, r6
  r8 = cmp.ne r7, r2
  condbr r8, %odd, %latch
odd:
  r11 = const.i64 3
  r12 = mul r4, r11
  br %latch
latch:
  r13 = phi.i64 [body: r4] [odd: r12]
  r10 = add r3, r13
  r14 = const.i64 1
  r9 = add r4, r14
  br %head
exit:
  ret r3
}
`

func TestNumPathsDiamond(t *testing.T) {
	d, err := Build(nil, parse(t, diamondSrc))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if d.NumPaths() != 2 {
		t.Fatalf("NumPaths = %d, want 2", d.NumPaths())
	}
}

func TestNumPathsLoopDiamond(t *testing.T) {
	d, err := Build(nil, parse(t, loopDiamondSrc))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// From entry: head->exit, head->body->{latch,odd->latch} = 3.
	// From dummy entry at head: same 3.
	if d.NumPaths() != 6 {
		t.Fatalf("NumPaths = %d, want 6", d.NumPaths())
	}
}

func TestDecodeAllPathsUniqueAndValid(t *testing.T) {
	d, err := Build(nil, parse(t, loopDiamondSrc))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	seen := make(map[string]int64)
	for id := int64(0); id < d.NumPaths(); id++ {
		blocks, err := d.Decode(id)
		if err != nil {
			t.Fatalf("Decode(%d): %v", id, err)
		}
		key := ""
		for _, b := range blocks {
			key += b.Name + ">"
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("paths %d and %d decode to the same sequence %s", prev, id, key)
		}
		seen[key] = id
		// Consecutive blocks must be connected by real CFG edges.
		for i := 0; i+1 < len(blocks); i++ {
			ok := false
			for _, s := range blocks[i].Succs() {
				if s == blocks[i+1] {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("path %d: %s does not branch to %s", id, blocks[i], blocks[i+1])
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, src := range []string{diamondSrc, loopDiamondSrc} {
		d, err := Build(nil, parse(t, src))
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		for id := int64(0); id < d.NumPaths(); id++ {
			blocks, err := d.Decode(id)
			if err != nil {
				t.Fatalf("Decode(%d): %v", id, err)
			}
			back, err := d.Encode(blocks)
			if err != nil {
				t.Fatalf("Encode(%v): %v", blocks, err)
			}
			if back != id {
				t.Fatalf("Encode(Decode(%d)) = %d", id, back)
			}
		}
	}
}

func TestDecodeRejectsOutOfRange(t *testing.T) {
	d, err := Build(nil, parse(t, diamondSrc))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := d.Decode(-1); err == nil {
		t.Error("Decode(-1) should fail")
	}
	if _, err := d.Decode(d.NumPaths()); err == nil {
		t.Error("Decode(NumPaths) should fail")
	}
}

func TestProfilerCountsMatchExecution(t *testing.T) {
	f := parse(t, loopDiamondSrc)
	d, err := Build(nil, f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p := NewProfiler(d)
	p.RecordTrace = true
	res, err := interp.Run(f, []uint64{interp.IBits(6)}, nil, p.Hooks(), 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 6 iterations + 1 exit path = 7 path occurrences.
	if got := p.TotalOccurrences(); got != 7 {
		t.Fatalf("occurrences = %d, want 7", got)
	}
	if len(p.Trace) != 7 {
		t.Fatalf("trace length = %d, want 7", len(p.Trace))
	}
	// Every counted path must decode, and attributed ops must sum exactly to
	// the interpreter's dynamic step count (paths partition execution).
	var ops int64
	for id, c := range p.Counts {
		blocks, err := d.Decode(id)
		if err != nil {
			t.Fatalf("Decode(%d): %v", id, err)
		}
		ops += c * PathOps(blocks)
	}
	if ops != res.Steps {
		t.Fatalf("attributed ops = %d, interpreter steps = %d", ops, res.Steps)
	}
}

// TestProfilerPartitionProperty: for random loop bounds, path-attributed ops
// must always equal interpreter steps, and iteration paths must alternate
// between the even and odd body paths.
func TestProfilerPartitionProperty(t *testing.T) {
	f := parse(t, loopDiamondSrc)
	d, err := Build(nil, f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	check := func(nRaw uint8) bool {
		n := int64(nRaw % 50)
		p := NewProfiler(d)
		res, err := interp.Run(f, []uint64{interp.IBits(n)}, nil, p.Hooks(), 0)
		if err != nil {
			return false
		}
		var ops int64
		for id, c := range p.Counts {
			blocks, err := d.Decode(id)
			if err != nil {
				return false
			}
			ops += c * PathOps(blocks)
		}
		return ops == res.Steps && p.TotalOccurrences() == n+1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfilerMultipleInvocations(t *testing.T) {
	f := parse(t, loopDiamondSrc)
	d, err := Build(nil, f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p := NewProfiler(d)
	for i := 0; i < 3; i++ {
		if _, err := interp.Run(f, []uint64{interp.IBits(4)}, nil, p.Hooks(), 0); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	if got := p.TotalOccurrences(); got != 15 { // 3 * (4 iterations + exit)
		t.Fatalf("occurrences = %d, want 15", got)
	}
}

func TestBuildRejectsIrreducible(t *testing.T) {
	// Two blocks jumping into each other's middle from the entry: neither
	// dominates the other, so the cycle has no dominance back edge.
	src := `func @irr(i64) {
entry:
  r2 = const.i64 0
  r3 = cmp.lt r1, r2
  condbr r3, %a, %b
a:
  r4 = cmp.gt r1, r2
  condbr r4, %b, %exit
b:
  r5 = cmp.eq r1, r2
  condbr r5, %a, %exit
exit:
  ret
}
`
	if _, err := Build(nil, parse(t, src)); err == nil {
		t.Fatal("expected irreducible CFG error")
	}
}

func TestIsBackEdge(t *testing.T) {
	f := parse(t, loopDiamondSrc)
	d, err := Build(nil, f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	latch := f.BlockByName("latch")
	head := f.BlockByName("head")
	body := f.BlockByName("body")
	if !d.IsBackEdge(latch, head) {
		t.Error("latch->head should be a back edge")
	}
	if d.IsBackEdge(head, body) {
		t.Error("head->body should not be a back edge")
	}
}

func TestPathOpsCountsAllInstrs(t *testing.T) {
	f := parse(t, diamondSrc)
	d, err := Build(nil, f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for id := int64(0); id < 2; id++ {
		blocks, _ := d.Decode(id)
		// entry(3) + side(2) + join(2) = 7 instructions either way.
		if got := PathOps(blocks); got != 7 {
			t.Errorf("PathOps(path %d) = %d, want 7", id, got)
		}
	}
}

func TestBuildRejectsPathExplosion(t *testing.T) {
	// 50 sequential diamonds = 2^50 paths, beyond the representable bound.
	b := ir.NewBuilder("boom", ir.I64)
	zero := b.ConstI(0)
	v := b.Param(0)
	for k := 0; k < 50; k++ {
		cond := b.CmpGT(v, zero)
		tb := b.NewBlock("t")
		fb := b.NewBlock("f")
		join := b.NewBlock("j")
		// Unique names required:
		tb.Name = tb.Name + string(rune('a'+k%26)) + string(rune('0'+k/26))
		fb.Name = fb.Name + string(rune('a'+k%26)) + string(rune('0'+k/26))
		join.Name = join.Name + string(rune('a'+k%26)) + string(rune('0'+k/26))
		b.CondBr(cond, tb, fb)
		b.SetBlock(tb)
		tv := b.Add(v, zero)
		b.Br(join)
		b.SetBlock(fb)
		fv := b.Sub(v, zero)
		b.Br(join)
		b.SetBlock(join)
		p := b.Phi(ir.I64)
		b.AddIncoming(p, tb, tv)
		b.AddIncoming(p, fb, fv)
		v = p
	}
	b.Ret(v)
	f := b.MustFinish()
	if _, err := Build(nil, f); err == nil {
		t.Fatal("expected path-count overflow error")
	}
}
