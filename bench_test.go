// Benchmarks regenerating every table and figure of the paper's evaluation,
// micro-benchmarks of the pipeline's hot building blocks, and ablation
// benchmarks for the design choices called out in DESIGN.md.
//
// The table/figure benchmarks run the full 29-workload sweep at a reduced
// problem size per iteration and report the paper's headline metrics via
// b.ReportMetric, so `go test -bench=.` both exercises and summarizes the
// reproduction.
package needle_test

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"needle/internal/ballarus"
	"needle/internal/cgra"
	"needle/internal/core"
	"needle/internal/frame"
	"needle/internal/interp"
	"needle/internal/mem"
	"needle/internal/ooo"
	"needle/internal/pipeline"
	"needle/internal/pm"
	"needle/internal/profile"
	"needle/internal/program"
	"needle/internal/region"
	"needle/internal/sim"
	"needle/internal/spec"
	"needle/internal/tables"
	"needle/internal/vet"
	"needle/internal/workloads"
)

// benchN is the problem size for sweep benchmarks: large enough for the
// shapes to hold, small enough that each iteration stays subsecond.
const benchN = 1500

var (
	suiteOnce sync.Once
	suiteVal  *tables.Suite
	suiteErr  error
)

// sharedSuite amortizes one sweep across the render-only benchmarks.
func sharedSuite(b *testing.B) *tables.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.N = benchN
		suiteVal, suiteErr = tables.Run(cfg)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

func benchTable(b *testing.B, render func(*tables.Suite) string) {
	s := sharedSuite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = render(s)
	}
	if len(out) < 50 {
		b.Fatalf("table output too short:\n%s", out)
	}
	b.ReportMetric(float64(strings.Count(out, "\n")), "rows")
}

func BenchmarkTableI(b *testing.B)  { benchTable(b, (*tables.Suite).TableI) }
func BenchmarkTableII(b *testing.B) { benchTable(b, (*tables.Suite).TableII) }
func BenchmarkTableIII(b *testing.B) {
	benchTable(b, (*tables.Suite).TableIII)
}
func BenchmarkTableIV(b *testing.B) { benchTable(b, (*tables.Suite).TableIV) }
func BenchmarkTableV(b *testing.B)  { benchTable(b, (*tables.Suite).TableV) }
func BenchmarkTableHLS(b *testing.B) {
	benchTable(b, (*tables.Suite).TableHLS)
}
func BenchmarkFigure4(b *testing.B) { benchTable(b, (*tables.Suite).Figure4) }
func BenchmarkFigure5(b *testing.B) { benchTable(b, (*tables.Suite).Figure5) }
func BenchmarkFigure6(b *testing.B) { benchTable(b, (*tables.Suite).Figure6) }

// BenchmarkFigure3 regenerates the infeasible-superblock demonstration from
// scratch each iteration (profiling included).
func BenchmarkFigure3(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = tables.Figure3()
	}
	if !strings.Contains(out, "feasible=false") {
		b.Fatalf("figure 3 lost its point:\n%s", out)
	}
}

// BenchmarkFigure9 re-runs the full offload evaluation sweep per iteration
// and reports the paper's headline means.
func BenchmarkFigure9(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.N = benchN
	var braidMean, oracleMean float64
	for i := 0; i < b.N; i++ {
		s, err := tables.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		braidMean, oracleMean = 0, 0
		for _, a := range s.Analyses {
			braidMean += a.BraidChoice.Result.Improvement
			oracleMean += a.PathOracle.Improvement
		}
		braidMean /= float64(len(s.Analyses))
		oracleMean /= float64(len(s.Analyses))
	}
	b.ReportMetric(braidMean*100, "braid-%")
	b.ReportMetric(oracleMean*100, "path-oracle-%")
}

// BenchmarkFigure10 reports the mean braid energy reduction.
func BenchmarkFigure10(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.N = benchN
	var energyMean float64
	for i := 0; i < b.N; i++ {
		s, err := tables.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		energyMean = 0
		for _, a := range s.Analyses {
			energyMean += a.BraidChoice.Result.EnergyReduction
		}
		energyMean /= float64(len(s.Analyses))
	}
	b.ReportMetric(energyMean*100, "energy-%")
}

// BenchmarkSweep runs the full 29-workload analysis sweep per iteration:
// profile every workload (block, edge, and Ball-Larus path counts plus the
// path trace), pick paths and braids, build frames, and evaluate offload.
// This is the end-to-end number the compiled-plan fast path targets;
// scripts/bench.sh gates regressions against its checked-in baseline.
func BenchmarkSweep(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.N = benchN
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := tables.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Analyses) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkVet measures the static-analysis diagnostic suite (SCCP, value
// ranges, memory dependence, and the vet walk) over the whole workload set.
// scripts/bench.sh records it as vet_ns_per_op; its companion gate is the
// tightened sweep gate — vet's analyses are lazy and demand-computed, so a
// sweep that never asks for them must not pay for their existence.
func BenchmarkVet(b *testing.B) {
	ws := workloads.All()
	progs := make([]*program.Program, len(ws))
	for i, w := range ws {
		p, err := w.Program(benchN)
		if err != nil {
			b.Fatal(err)
		}
		progs[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			rep := vet.Check(nil, p)
			if rep.HasErrors() {
				b.Fatalf("workload %s has vet errors", p.Name)
			}
		}
	}
}

// BenchmarkSweepWarmStart measures the persistent artifact store's
// fresh-process warm-start win. "cold" runs the full sweep against an empty
// cache directory per iteration (every stage computed and persisted);
// "warm" opens a fresh DiskStore — empty memory tier, a new process's view —
// on a pre-populated directory per iteration, so every cacheable stage is
// decoded off disk instead of recomputed. scripts/bench.sh records both and
// gates on the cold/warm ratio.
func BenchmarkSweepWarmStart(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.N = benchN
	ctx := context.Background()
	sweep := func(b *testing.B, store pipeline.Store) {
		b.Helper()
		as, err := core.AnalyzeAllCtx(ctx, cfg, core.Options{Store: store})
		if err != nil {
			b.Fatal(err)
		}
		if len(as) == 0 {
			b.Fatal("empty sweep")
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "needle-bench-cold-*")
			if err != nil {
				b.Fatal(err)
			}
			store, err := pipeline.NewDiskStore(dir, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			sweep(b, store)
			b.StopTimer()
			os.RemoveAll(dir)
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir, err := os.MkdirTemp("", "needle-bench-warm-*")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		seed, err := pipeline.NewDiskStore(dir, 0)
		if err != nil {
			b.Fatal(err)
		}
		sweep(b, seed) // populate the directory once
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store, err := pipeline.NewDiskStore(dir, 0)
			if err != nil {
				b.Fatal(err)
			}
			sweep(b, store)
		}
	})
}

// ---- micro-benchmarks of the pipeline building blocks ----

// BenchmarkCapture measures the system-simulator capture alone — the
// compiled interpreter fast path feeding the OOO model one block-batched
// timing packet per executed block — on the heaviest workload. The analysis
// manager is shared across iterations so plan compilation is cached and the
// loop isolates steady-state capture cost; scripts/bench.sh records this as
// capture_ns_per_op and gates it against the checked-in baseline.
func BenchmarkCapture(b *testing.B) {
	w := workloads.ByName("456.hmmer")
	f, args, memory := w.Instance(2000)
	am := pm.NewManager()
	cfg := sim.DefaultConfig()
	work := make([]uint64, len(memory))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, memory)
		tr, err := sim.Capture(am, f, args, work, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if tr.BaselineCycles == 0 {
			b.Fatal("capture produced no cycles")
		}
	}
}

// BenchmarkInterpreter measures raw interpretation throughput.
func BenchmarkInterpreter(b *testing.B) {
	w := workloads.ByName("456.hmmer")
	f, args, memory := w.Instance(2000)
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		work := make([]uint64, len(memory))
		copy(work, memory)
		res, err := interp.Run(f, args, work, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Steps
	}
	b.ReportMetric(float64(steps), "instrs/run")
}

// BenchmarkPathProfiling measures Ball-Larus profiling overhead on top of
// interpretation.
func BenchmarkPathProfiling(b *testing.B) {
	w := workloads.ByName("456.hmmer")
	f, args, memory := w.Instance(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([]uint64, len(memory))
		copy(work, memory)
		if _, err := profile.CollectFunction(nil, f, args, work, false, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathDecode measures path-ID decoding.
func BenchmarkPathDecode(b *testing.B) {
	f := workloads.ByName("186.crafty").Function()
	dag, err := ballarus.Build(nil, f)
	if err != nil {
		b.Fatal(err)
	}
	n := dag.NumPaths()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dag.Decode(int64(i) % n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBraidConstruction measures braid formation on a rich profile.
func BenchmarkBraidConstruction(b *testing.B) {
	w := workloads.ByName("453.povray")
	f, args, memory := w.Instance(3000)
	fp, err := profile.CollectFunction(nil, f, args, memory, true, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if braids := region.BuildBraids(fp, 0); len(braids) == 0 {
			b.Fatal("no braids")
		}
	}
}

// BenchmarkFrameBuild measures software frame construction.
func BenchmarkFrameBuild(b *testing.B) {
	w := workloads.ByName("470.lbm")
	f, args, memory := w.Instance(500)
	fp, err := profile.CollectFunction(nil, f, args, memory, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	r := region.FromPath(f, fp.HottestPath())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := frame.Build(nil, r, frame.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCGRASchedule measures dataflow scheduling of a large frame.
func BenchmarkCGRASchedule(b *testing.B) {
	w := workloads.ByName("swaptions")
	f, args, memory := w.Instance(1000)
	fp, err := profile.CollectFunction(nil, f, args, memory, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	fr, err := frame.Build(nil, region.FromPath(f, fp.HottestPath()), frame.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := cgra.Schedule(fr, cgra.DefaultConfig())
		if s.DataflowCycles == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// BenchmarkOOOModel measures the host timing model's streaming throughput.
func BenchmarkOOOModel(b *testing.B) {
	w := workloads.ByName("183.equake")
	f, args, memory := w.Instance(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([]uint64, len(memory))
		copy(work, memory)
		m := ooo.New(ooo.DefaultConfig(), f.NumRegs(), mem.New(mem.Config{}))
		if _, err := interp.Run(f, args, work, m.Hooks(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablation benchmarks (design choices from DESIGN.md) ----

func captureFor(b *testing.B, name string, n int) *sim.Trace {
	b.Helper()
	w := workloads.ByName(name)
	f, args, memory := w.Instance(n)
	tr, err := sim.Capture(nil, f, args, memory, sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkAblationGuardPlacement compares async guards (full hoisting)
// against serialized guards on the hottest lbm path frame.
func BenchmarkAblationGuardPlacement(b *testing.B) {
	tr := captureFor(b, "470.lbm", 500)
	r := region.FromPath(tr.Profile.F, tr.Profile.HottestPath())
	for _, pc := range []struct {
		name string
		p    frame.GuardPlacement
	}{{"async", frame.GuardsAsync}, {"serialize", frame.GuardsSerialize}} {
		b.Run(pc.name, func(b *testing.B) {
			var cp int
			for i := 0; i < b.N; i++ {
				fr, err := frame.Build(nil, r, frame.Options{Placement: pc.p})
				if err != nil {
					b.Fatal(err)
				}
				cp = fr.CriticalPath()
			}
			b.ReportMetric(float64(cp), "critical-path")
		})
	}
}

// BenchmarkAblationMemOrdering compares speculative versus conservative
// in-frame memory ordering (the paper's full memory speculation claim).
func BenchmarkAblationMemOrdering(b *testing.B) {
	tr := captureFor(b, "470.lbm", 500)
	r := region.FromPath(tr.Profile.F, tr.Profile.HottestPath())
	for _, mo := range []struct {
		name string
		o    frame.MemOrdering
	}{{"speculative", frame.MemSpeculative}, {"conservative", frame.MemConservative}} {
		b.Run(mo.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				fr, err := frame.Build(nil, r, frame.Options{Ordering: mo.o})
				if err != nil {
					b.Fatal(err)
				}
				cycles = cgra.Schedule(fr, cgra.DefaultConfig()).DataflowCycles
			}
			b.ReportMetric(float64(cycles), "dataflow-cycles")
		})
	}
}

// BenchmarkAblationPredictor sweeps the invocation predictor's history
// depth — a knob only the pipeline's Target stage reads — across the full
// pipeline, fresh versus through a shared artifact cache. The fresh/cached
// ratio is the staged pipeline's reuse win: with a cache, the sweep inlines
// and profiles bodytrack once and re-evaluates only the predictor per
// configuration. scripts/bench.sh records both and gates on the ratio.
func BenchmarkAblationPredictor(b *testing.B) {
	w := workloads.ByName("bodytrack")
	histBits := []uint{2, 4, 8, 12, 16}
	sweep := func(b *testing.B, cache *pipeline.Cache) float64 {
		b.Helper()
		var imp float64
		for _, hb := range histBits {
			cfg := core.DefaultConfig()
			cfg.N = 2000
			cfg.Sim.HistBits = hb
			a, err := core.AnalyzeWith(cache, w, cfg)
			if err != nil {
				b.Fatal(err)
			}
			imp = a.PathHistory.Improvement
		}
		return imp
	}
	b.Run("fresh", func(b *testing.B) {
		var imp float64
		for i := 0; i < b.N; i++ {
			imp = sweep(b, nil)
		}
		b.ReportMetric(imp*100, "improvement-%")
	})
	b.Run("cached", func(b *testing.B) {
		cache := pipeline.NewCache()
		sweep(b, cache) // warm: the gate measures the steady reuse state
		b.ResetTimer()
		var imp float64
		for i := 0; i < b.N; i++ {
			imp = sweep(b, cache)
		}
		b.ReportMetric(imp*100, "improvement-%")
	})
}

// BenchmarkAblationPredictorPolicy compares invocation policies on a noisy
// workload (bodytrack) where prediction decides profitability.
func BenchmarkAblationPredictorPolicy(b *testing.B) {
	tr := captureFor(b, "bodytrack", 2000)
	cfg := sim.DefaultConfig()
	tgt, err := sim.NewPathTarget(nil, tr.Profile, tr.Profile.HottestPath(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	preds := []struct {
		name string
		mk   func() spec.Predictor
	}{
		{"always", func() spec.Predictor { return spec.Always{} }},
		{"history", func() spec.Predictor { return spec.NewHistory(12) }},
		{"oracle", func() spec.Predictor { return &spec.Oracle{} }},
	}
	for _, pd := range preds {
		b.Run(pd.name, func(b *testing.B) {
			var imp float64
			for i := 0; i < b.N; i++ {
				res := sim.Evaluate(tr, tgt, pd.mk(), cfg)
				imp = res.Improvement
			}
			b.ReportMetric(imp*100, "improvement-%")
		})
	}
}

// BenchmarkAblationBraidMergeBound compares unlimited merging against
// merging only the top 2 paths per braid.
func BenchmarkAblationBraidMergeBound(b *testing.B) {
	tr := captureFor(b, "453.povray", 2000)
	for _, bound := range []struct {
		name string
		k    int
	}{{"unbounded", 0}, {"top2", 2}} {
		b.Run(bound.name, func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				braids := region.BuildBraids(tr.Profile, bound.k)
				cov = braids[0].Coverage(tr.Profile)
			}
			b.ReportMetric(cov*100, "coverage-%")
		})
	}
}

// BenchmarkAblationUndoCost sweeps the undo-log overhead per store.
func BenchmarkAblationUndoCost(b *testing.B) {
	tr := captureFor(b, "456.hmmer", 2000)
	r := region.FromPath(tr.Profile.F, tr.Profile.HottestPath())
	for _, undo := range []int{1, 2, 4} {
		name := []string{"", "light", "default", "", "heavy"}[undo]
		b.Run(name, func(b *testing.B) {
			var invoke int64
			for i := 0; i < b.N; i++ {
				fr, err := frame.Build(nil, r, frame.Options{UndoOpsPerStore: undo})
				if err != nil {
					b.Fatal(err)
				}
				invoke = cgra.Schedule(fr, cgra.DefaultConfig()).InvokeCycles()
			}
			b.ReportMetric(float64(invoke), "invoke-cycles")
		})
	}
}

// BenchmarkAblationPathExpansion measures Section IV-A target expansion:
// cycles per loop iteration of a cold invocation shrink as more path
// instances are sequenced into one offload unit.
func BenchmarkAblationPathExpansion(b *testing.B) {
	tr := captureFor(b, "183.equake", 1000)
	r := region.FromPath(tr.Profile.F, tr.Profile.HottestPath())
	base, err := frame.Build(nil, r, frame.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, unroll := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("x%d", unroll), func(b *testing.B) {
			var perIter float64
			for i := 0; i < b.N; i++ {
				ex, err := frame.Expand(base, unroll)
				if err != nil {
					b.Fatal(err)
				}
				s := cgra.Schedule(ex, cgra.DefaultConfig())
				perIter = float64(s.InvokeCycles()) / float64(unroll)
			}
			b.ReportMetric(perIter, "cycles/iter")
		})
	}
}

// BenchmarkAblationRankingMetric compares the paper's frequency-times-ops
// path weight against pure frequency ranking: the Pwt pick must cover at
// least as much dynamic execution.
func BenchmarkAblationRankingMetric(b *testing.B) {
	tr := captureFor(b, "453.povray", 2000)
	fp := tr.Profile
	var covWeight, covFreq float64
	for i := 0; i < b.N; i++ {
		covWeight = fp.HottestPath().Coverage(fp)
		best := fp.Paths[0]
		for _, p := range fp.Paths {
			if p.Freq > best.Freq {
				best = p
			}
		}
		covFreq = best.Coverage(fp)
	}
	b.ReportMetric(covWeight*100, "Pwt-coverage-%")
	b.ReportMetric(covFreq*100, "freq-coverage-%")
	if covWeight < covFreq-1e-9 {
		b.Fatal("weight ranking must not lose to frequency ranking on coverage")
	}
}

// BenchmarkFigure2 regenerates the design-space comparison (non-speculative
// hyperblock vs speculative path/braid offload).
func BenchmarkFigure2(b *testing.B) { benchTable(b, (*tables.Suite).Figure2) }

// BenchmarkAblationHostBranchPredictor compares the paper's perfect-BP host
// baseline against a gshare host: a weaker host makes offload look better,
// which is why the paper's conservative choice matters.
func BenchmarkAblationHostBranchPredictor(b *testing.B) {
	w := workloads.ByName("186.crafty")
	f, args, memory := w.Instance(3000)
	for _, pc := range []struct {
		name string
		real bool
	}{{"perfect", false}, {"gshare", true}} {
		b.Run(pc.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cfg := ooo.DefaultConfig()
				cfg.RealBranchPredictor = pc.real
				m := ooo.New(cfg, f.NumRegs(), mem.New(mem.Config{}))
				work := make([]uint64, len(memory))
				copy(work, memory)
				if _, err := interp.Run(f, args, work, m.Hooks(), 0); err != nil {
					b.Fatal(err)
				}
				cycles = m.Cycles()
			}
			b.ReportMetric(float64(cycles), "host-cycles")
		})
	}
}

// BenchmarkAblationRouting compares placement-derived routing energy with
// the optimistic uniform one-hop assumption.
func BenchmarkAblationRouting(b *testing.B) {
	tr := captureFor(b, "456.hmmer", 2000)
	fr, err := frame.Build(nil, region.FromPath(tr.Profile.F, tr.Profile.HottestPath()), frame.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, rc := range []struct {
		name    string
		uniform bool
	}{{"placed", false}, {"uniform", true}} {
		b.Run(rc.name, func(b *testing.B) {
			cfg := cgra.DefaultConfig()
			cfg.UniformRouting = rc.uniform
			var opPJ float64
			for i := 0; i < b.N; i++ {
				opPJ = cgra.Schedule(fr, cfg).OpPJ
			}
			b.ReportMetric(opPJ, "pJ/op")
		})
	}
}

// BenchmarkAblationMergePolicy compares the paper's braid policy (shared
// entry AND exit) against DySER-style path trees (shared entry only):
// trees buy coverage at the cost of multiple exits and live-out sets.
func BenchmarkAblationMergePolicy(b *testing.B) {
	tr := captureFor(b, "175.vpr", 2000)
	for _, pol := range []struct {
		name  string
		build func() []*region.Braid
	}{
		{"braid", func() []*region.Braid { return region.BuildBraids(tr.Profile, 0) }},
		{"path-tree", func() []*region.Braid { return region.BuildPathTrees(tr.Profile, 0) }},
	} {
		b.Run(pol.name, func(b *testing.B) {
			var cov float64
			var exits int
			for i := 0; i < b.N; i++ {
				top := pol.build()[0]
				cov = top.Coverage(tr.Profile)
				exits = top.LiveOutSpread()
			}
			b.ReportMetric(cov*100, "coverage-%")
			b.ReportMetric(float64(exits), "exit-blocks")
		})
	}
}
