// Inlining: why Needle profiles the *fully inlined* hot function.
//
// The paper's Table I notes that its predication statistics differ from
// prior work "because of aggressive inlining of call sequences": analyses
// that stop at call boundaries miss the control flow hiding inside callees.
// This example builds a hot loop that calls two helpers, profiles it before
// and after inlining, and shows how the real path structure (and the
// braid) only becomes visible once the calls are gone.
//
// Run with: go run ./examples/inlining
package main

import (
	"fmt"
	"log"

	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/passes"
	"needle/internal/profile"
	"needle/internal/region"
)

const moduleSrc = `func @classify(i64) {
entry:
  r2 = const.i64 16
  r3 = rem r1, r2
  r4 = const.i64 3
  r5 = cmp.lt r3, r4
  condbr r5, %small, %big
small:
  r6 = mul r3, r3
  ret r6
big:
  r7 = const.i64 100
  r8 = add r3, r7
  ret r8
}

func @weight(i64, i64) {
entry:
  r3 = cmp.gt r1, r2
  condbr r3, %hi, %lo
hi:
  r4 = sub r1, r2
  ret r4
lo:
  r5 = const.i64 1
  ret r5
}

func @hot(i64) {
entry:
  r2 = const.i64 0
  br %head
head:
  r3 = phi.i64 [entry: r2] [latch: r4]
  r5 = phi.i64 [entry: r2] [latch: r6]
  r7 = cmp.lt r3, r1
  condbr r7, %body, %exit
body:
  r8 = call.i64 @classify r3
  r9 = const.i64 50
  r10 = call.i64 @weight r8 r9
  r6 = add r5, r10
  br %latch
latch:
  r11 = const.i64 1
  r4 = add r3, r11
  br %head
exit:
  ret r5
}
`

func summarize(label string, f *ir.Function) {
	fp, err := profile.CollectFunction(nil, f, []uint64{interp.IBits(600)}, nil, true, 0)
	if err != nil {
		log.Fatal(err)
	}
	branches := 0
	for _, b := range f.Blocks {
		if t := b.Term(); t != nil && t.Op == ir.OpCondBr {
			branches++
		}
	}
	braids := region.BuildBraids(fp, 0)
	top := braids[0]
	fmt.Printf("%-16s blocks=%-3d branches=%-2d executed-paths=%-3d hot-path-ops=%-3d braid: %d paths merged, %d IFs\n",
		label, len(f.Blocks), branches, fp.NumExecutedPaths(),
		fp.HottestPath().Ops, top.MergedPathCount(), top.IFs)
}

func main() {
	m, err := ir.Parse(moduleSrc)
	if err != nil {
		log.Fatal(err)
	}
	hot := m.Func("hot")

	// Semantics are identical before and after inlining.
	before, err := interp.Run(hot, []uint64{interp.IBits(600)}, nil, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	inlined, err := passes.InlineAll(hot, 0)
	if err != nil {
		log.Fatal(err)
	}
	passes.Optimize(nil, inlined)
	after, err := interp.Run(inlined, []uint64{interp.IBits(600)}, nil, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot(600) = %d before inlining, %d after (%d -> %d dynamic instructions)\n\n",
		interp.I(before.Ret), interp.I(after.Ret), before.Steps, after.Steps)

	fmt.Println("what the profiler sees:")
	summarize("with calls", hot)
	summarize("fully inlined", inlined)

	fmt.Println("\nwith calls, the loop body is one opaque path: the branches inside")
	fmt.Println("classify() and weight() are invisible to region formation. Inlining")
	fmt.Println("exposes them, the path profile splits into the real variants, and")
	fmt.Println("the braid can merge them with internal IFs — which is why Needle")
	fmt.Println("(and this pipeline's core.Analyze) inlines before profiling.")
}
