// Braids: why path profiles beat edge profiles, and what merging paths buys.
//
// This example reproduces the paper's Figure 3 scenario — two sequential
// branches whose outcomes are perfectly anti-correlated — and shows:
//
//  1. the edge-profile Superblock splices together a block sequence that
//     never executes (an "infeasible" superblock);
//  2. the Hyperblock folds in everything and wastes operations;
//  3. Ball-Larus paths identify exactly the two real flows; and
//  4. the Braid merges them into one offload region whose coverage is the
//     sum of both paths, with fewer guards than the two path frames.
//
// Run with: go run ./examples/braids
package main

import (
	"fmt"
	"log"

	"needle/internal/frame"
	"needle/internal/interp"
	"needle/internal/profile"
	"needle/internal/region"
	"needle/internal/workloads"
)

func main() {
	f := workloads.BuildFigure3Kernel()
	fp, err := profile.CollectFunction(nil, f, []uint64{interp.IBits(2000)}, nil, true, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("kernel %s: %d executed paths\n\n", f.Name, fp.NumExecutedPaths())
	for rank, p := range fp.TopK(4) {
		fmt.Printf("path #%d: freq=%-5d coverage=%4.1f%%  blocks:", rank+1, p.Freq, p.Coverage(fp)*100)
		for _, b := range p.Blocks {
			fmt.Printf(" %s", b.Name)
		}
		fmt.Println()
	}

	// Superblock: grown from the hottest path's entry by edge frequency.
	hot := fp.HottestPath()
	sb := region.BuildSuperblock(fp, hot.Blocks[0], 0)
	fmt.Printf("\nsuperblock from %s: %d blocks, feasible=%v\n", hot.Blocks[0], len(sb.Blocks), sb.Feasible)
	if !sb.Feasible {
		fmt.Println("  -> the edge profile spliced two anti-correlated branches into a")
		fmt.Println("     sequence that never executes; offloading it would always roll back")
	}

	// Hyperblock: if-converts both sides everywhere.
	hb := region.BuildHyperblock(nil, fp, hot.Blocks[0], 0.1)
	fmt.Printf("\nhyperblock from %s: %d ops, %d predicates, %d cold ops\n",
		hot.Blocks[0], hb.NumOps(), hb.PredBits, hb.ColdOps)

	// Braid: merge the two real paths.
	braids := region.BuildBraids(fp, 0)
	top := braids[0]
	fmt.Printf("\nhot braid: merges %d paths, coverage %.1f%%, %d ops, %d guards, %d internal IFs\n",
		top.MergedPathCount(), top.Coverage(fp)*100, top.NumOps(), top.Guards, top.IFs)

	pathGuards := 0
	for _, p := range top.Paths {
		pathGuards += p.Branches
	}
	fmt.Printf("constituent paths carry %d guards in total; the braid needs %d\n", pathGuards, top.Guards)

	bf, err := frame.Build(nil, &top.Region, frame.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbraid frame: %d dataflow ops, %d selects (merge phis), live %d in / %d out\n",
		bf.NumOps(), bf.Selects, len(bf.LiveIn), len(bf.LiveOut))
	fmt.Println("\nany in-region flow — including block combinations never profiled —")
	fmt.Println("completes on the accelerator: that is the braid coverage bonus.")
}
