// Quickstart: the complete Needle flow on a small hand-built kernel.
//
// It builds a dot-product-with-clipping loop in the IR, profiles its
// Ball-Larus paths, ranks them by weight, extracts the hottest path into a
// software frame, and estimates the CGRA offload of one invocation —
// everything Figure 1's Step 1 and Step 2 do, in ~100 lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"needle/internal/cgra"
	"needle/internal/frame"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/profile"
	"needle/internal/region"
)

// buildKernel constructs:
//
//	for i in 0..n-1 {
//	    v := a[i] * b[i]
//	    if v > 100 { v = 100 }       // clipping, rarely taken
//	    sum += v
//	}
func buildKernel() *ir.Function {
	b := ir.NewBuilder("dot_clip", ir.I64, ir.I64, ir.I64)
	n, aBase, bBase := b.Param(0), b.Param(1), b.Param(2)
	zero := b.ConstI(0)
	one := b.ConstI(1)

	head := b.NewBlock("head")
	body := b.NewBlock("body")
	clip := b.NewBlock("clip")
	join := b.NewBlock("join")
	exit := b.NewBlock("exit")

	entry := b.Block()
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi(ir.I64)
	sum := b.Phi(ir.I64)
	b.CondBr(b.CmpLT(i, n), body, exit)

	b.SetBlock(body)
	av := b.Load(ir.I64, b.Add(aBase, i))
	bv := b.Load(ir.I64, b.Add(bBase, i))
	v := b.Mul(av, bv)
	b.CondBr(b.CmpGT(v, b.ConstI(100)), clip, join)

	b.SetBlock(clip)
	clipped := b.ConstI(100)
	b.Br(join)

	b.SetBlock(join)
	vj := b.Phi(ir.I64)
	b.AddIncoming(vj, body, v)
	b.AddIncoming(vj, clip, clipped)
	sum2 := b.Add(sum, vj)
	i2 := b.Add(i, one)
	b.Br(head)

	b.AddIncoming(i, entry, zero)
	b.AddIncoming(i, join, i2)
	b.AddIncoming(sum, entry, zero)
	b.AddIncoming(sum, join, sum2)

	b.SetBlock(exit)
	b.Ret(sum)
	return b.MustFinish()
}

func main() {
	f := buildKernel()
	fmt.Println("=== the kernel in textual IR ===")
	fmt.Println(ir.Print(f))

	// Input: values 0..63, so a[i]*b[i] > 100 for i >= 11 — a biased branch.
	mem := make([]uint64, 128)
	for i := 0; i < 64; i++ {
		mem[i] = interp.IBits(int64(i))
		mem[64+i] = interp.IBits(int64(i % 13))
	}

	// Step 1: profile Ball-Larus paths.
	fp, err := profile.CollectFunction(nil, f,
		[]uint64{interp.IBits(64), interp.IBits(0), interp.IBits(64)}, mem, true, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== path profile: %d executed paths, %d dynamic instructions ===\n",
		fp.NumExecutedPaths(), fp.TotalWeight)
	for rank, p := range fp.TopK(5) {
		var blocks []string
		for _, blk := range p.Blocks {
			blocks = append(blocks, blk.Name)
		}
		fmt.Printf("  #%d  freq=%-4d ops=%-3d coverage=%5.1f%%  %s\n",
			rank+1, p.Freq, p.Ops, p.Coverage(fp)*100, strings.Join(blocks, " > "))
	}

	// Step 2: extract the hottest path into a software frame.
	hot := fp.HottestPath()
	fr, err := frame.Build(nil, region.FromPath(f, hot), frame.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== software frame of the hottest path ===\n")
	fmt.Printf("dataflow ops: %d  guards: %d  phis cancelled: %d\n",
		fr.NumOps(), fr.Guards, fr.Cancelled)
	fmt.Printf("live-in: %v  live-out: %v\n", fr.LiveIn, fr.LiveOut)
	fmt.Printf("undo-log bookkeeping ops: %d (for %d stores)\n", fr.UndoOps, fr.Stores)
	fmt.Printf("critical path: %d ops  ->  dataflow ILP %.1f\n", fr.CriticalPath(), fr.ILP())

	// Step 3: map onto the Table V CGRA.
	sched := cgra.Schedule(fr, cgra.DefaultConfig())
	fmt.Printf("\n=== CGRA mapping ===\n")
	fmt.Printf("one invocation: %d cycles (transfer %d+%d, dataflow %d)\n",
		sched.InvokeCycles(), sched.TransferIn, sched.TransferOut, sched.DataflowCycles)
	fmt.Printf("pipelined initiation interval: %d cycles (recurrence %d, resources %d)\n",
		sched.II, sched.RecurrenceII, sched.ResourceII)
	fmt.Printf("energy: %.0f pJ per executed op (host front-end elided)\n", sched.OpPJ)
}
