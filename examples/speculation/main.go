// Speculation: atomic software frames, the undo log, and rollback.
//
// A frame may execute stores before a guard resolves; if the guard fires,
// every externally visible write must be reverted (Figure 8). This example
// builds a kernel that stores an updated value *before* a data-dependent
// branch can abort the iteration, runs one successful and one failing frame
// invocation, and shows memory being restored bit-for-bit on failure.
//
// Run with: go run ./examples/speculation
package main

import (
	"fmt"
	"log"

	"needle/internal/frame"
	"needle/internal/interp"
	"needle/internal/ir"
	"needle/internal/profile"
	"needle/internal/region"
	"needle/internal/spec"
)

const kernelSrc = `func @update_or_abort(i64, i64) {
entry:
  r3 = const.i64 0
  br %head
head:
  r4 = phi.i64 [entry: r3] [latch: r5]
  r6 = cmp.lt r4, r2
  condbr r6, %body, %exit
body:
  r7 = add r1, r4
  r8 = load.i64 r7
  r9 = const.i64 1
  r10 = add r8, r9
  store.i64 r7, r10        ; speculative store, before the guard
  r11 = const.i64 100
  r12 = cmp.lt r8, r11
  condbr r12, %latch, %abort
abort:
  ret r8
latch:
  r5 = add r4, r9
  br %head
exit:
  ret r4
}
`

func main() {
	f, err := ir.ParseFunction(kernelSrc)
	if err != nil {
		log.Fatal(err)
	}

	// Profile on clean data to find the hot iteration path.
	train := make([]uint64, 8)
	fp, err := profile.CollectFunction(nil, f, []uint64{interp.IBits(0), interp.IBits(8)}, train, false, 0)
	if err != nil {
		log.Fatal(err)
	}
	hot := fp.HottestPath()
	fr, err := frame.Build(nil, region.FromPath(f, hot), frame.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot path frame: %d ops, %d guards, %d store(s) instrumented with undo logging\n\n",
		fr.NumOps(), fr.Guards, fr.Stores)

	seed := func(mem []uint64) []uint64 {
		regs := make([]uint64, len(f.RegType))
		regs[1] = interp.IBits(0) // base
		regs[2] = interp.IBits(8) // n
		regs[3] = 0               // r3 = const 0 from the entry block
		return regs
	}

	// Case 1: a clean invocation commits its store.
	mem := make([]uint64, 8)
	mem[0] = interp.IBits(41)
	out, err := spec.ExecuteFrame(fr, seed(mem), mem, f.Entry())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean invocation: success=%v ops=%d stores=%d  -> mem[0] = %d (committed)\n",
		out.Success, out.Ops, out.Stores, interp.I(mem[0]))

	// Case 2: poisoned data makes the guard fire AFTER the store executed.
	mem2 := make([]uint64, 8)
	mem2[0] = interp.IBits(500) // >= 100: the guard aborts this iteration
	before := interp.I(mem2[0])
	out2, err := spec.ExecuteFrame(fr, seed(mem2), mem2, f.Entry())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npoisoned invocation: success=%v failedAt=%s stores-before-failure=%d\n",
		out2.Success, out2.FailedAt, out2.Stores)
	fmt.Printf("  mem[0] before=%d after=%d  -> rollback restored the speculative store\n",
		before, interp.I(mem2[0]))

	// The invocation predictor learns which histories fail.
	fmt.Println("\ntraining the invocation history table:")
	h := spec.NewHistory(4)
	badHistory := uint64(0b0110)
	for i := 0; i < 4; i++ {
		h.Update(badHistory, false)
	}
	fmt.Printf("  after 4 failures at history %04b: invoke? %v\n", badHistory, h.Predict(badHistory))
	goodHistory := uint64(0b1111)
	fmt.Printf("  untrained history %04b:           invoke? %v\n", goodHistory, h.Predict(goodHistory))
}
