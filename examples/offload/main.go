// Offload: the whole-system evaluation of Section VI on one workload.
//
// It captures a baseline run on the Table V host model, then compares
// offload targets (hottest BL-Path under oracle and history prediction; the
// filter-and-rank braid selection) on cycles, energy, coverage, and
// predictor precision — the per-workload view behind Figures 9 and 10.
//
// Run with: go run ./examples/offload [workload]   (default 456.hmmer)
package main

import (
	"fmt"
	"log"
	"os"

	"needle/internal/core"
	"needle/internal/workloads"
)

func main() {
	name := "456.hmmer"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w := workloads.ByName(name)
	if w == nil {
		log.Fatalf("unknown workload %q; try one of %v", name, workloads.Names())
	}

	a, err := core.Analyze(w, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s — %s\n", w.Name, w.Notes)
	fmt.Printf("baseline: %d host cycles, %.1f uJ\n\n",
		a.Trace.BaselineCycles, a.Trace.BaselineEnergyPJ/1e6)

	fmt.Printf("%-24s %12s %12s %10s %10s\n", "target", "cycles", "improvement", "precision", "coverage")
	row := func(label string, cycles int64, imp, prec, cov float64) {
		fmt.Printf("%-24s %12d %+11.1f%% %10.2f %9.0f%%\n", label, cycles, imp*100, prec, cov*100)
	}
	row("hottest path + oracle", a.PathOracle.OffloadCycles, a.PathOracle.Improvement,
		a.PathOracle.Precision, a.PathOracle.Coverage)
	row("hottest path + history", a.PathHistory.OffloadCycles, a.PathHistory.Improvement,
		a.PathHistory.Precision, a.PathHistory.Coverage)
	bc := a.BraidChoice
	row("braid ("+bc.Policy+")", bc.Result.OffloadCycles, bc.Result.Improvement,
		bc.Result.Precision, bc.Result.Coverage)

	fmt.Printf("\nbraid energy: %.1f uJ -> %.1f uJ (%.1f%% reduction)\n",
		bc.Result.BaselineEnergyPJ/1e6, bc.Result.OffloadEnergyPJ/1e6, bc.Result.EnergyReduction*100)

	if br := bc.Braid; br != nil {
		fmt.Printf("\nselected braid: merges %d paths, %d ops, %d guards, %d IFs\n",
			br.MergedPathCount(), br.NumOps(), br.Guards, br.IFs)
		fmt.Printf("invocations: %d of %d opportunities, %d committed\n",
			bc.Result.Invocations, bc.Result.Opportunities, bc.Result.Successes)
	} else {
		fmt.Println("\nfilter stage declined to offload: no braid candidate profits here")
	}

	if a.HotBraidFrame != nil {
		fmt.Printf("\nHLS estimate for the hot braid: %d ALMs (%.0f%%), %.0f mW, fits=%v\n",
			a.HLS.ALMs, a.HLS.Utilization*100, a.HLS.PowerMW, a.HLS.Fits)
	}
}
