module needle

go 1.22
