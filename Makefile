.PHONY: check build test bench

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go run ./cmd/needle -bench-json
