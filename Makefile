.PHONY: check build test bench bench-json

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

# bench runs the sweep benchmarks, writes BENCH_<date>.json, and fails if
# BenchmarkSweep regresses >15% against scripts/bench_baseline.json.
bench:
	./scripts/bench.sh

bench-json:
	go run ./cmd/needle -bench-json
