.PHONY: check static build test bench bench-json

check:
	./scripts/check.sh

# static runs just the Go static analyzers (both also run under `make
# check`); staticcheck is skipped with a warning when not installed.
static:
	go vet ./...
	@if command -v staticcheck > /dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not on PATH; skipped (go install honnef.co/go/tools/cmd/staticcheck@2025.1)" >&2; \
	fi

build:
	go build ./...

test:
	go test ./...

# bench runs the sweep benchmarks, writes BENCH_<date>.json, and fails if
# BenchmarkSweep regresses >15% against scripts/bench_baseline.json.
bench:
	./scripts/bench.sh

bench-json:
	go run ./cmd/needle -bench-json
