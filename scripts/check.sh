#!/bin/sh
# check.sh — the repo's full verification gate. Run before every commit:
#
#   ./scripts/check.sh        (or: make check)
#
# Fails on unformatted files, vet diagnostics, build errors, or any test
# failure (the suite runs under the race detector to exercise the parallel
# analysis harness).
set -eu

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l -s . 2>&1)
if [ -n "$unformatted" ]; then
    echo "gofmt: unformatted (or unsimplified) files:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "gofmt  ok"

go vet ./...
echo "vet    ok"

# staticcheck (honnef.co/go/tools, pinned: 2025.1 or newer) when the binary
# is on PATH; skipped with a warning otherwise so the gate stays runnable on
# machines that cannot install tools. Install with:
#   go install honnef.co/go/tools/cmd/staticcheck@2025.1
if command -v staticcheck > /dev/null 2>&1; then
    staticcheck ./...
    echo "static ok (staticcheck $(staticcheck -version 2> /dev/null | head -n 1))"
else
    echo "static SKIPPED — staticcheck not on PATH (go install honnef.co/go/tools/cmd/staticcheck@2025.1)" >&2
fi

go build ./...
echo "build  ok"

# The service stack first: the serving layer and the pipeline/core API it
# fronts are the most concurrency-sensitive packages (worker pools,
# singleflight, cancellation), so their race-detector run fails fast and
# in isolation before the long full-suite run.
go test -race ./internal/serve ./internal/pipeline ./internal/core
echo "serve  ok (serve/pipeline/core under -race)"

# Everything else (the three packages above are excluded so they don't run
# twice).
go test -race $(go list ./... | grep -vE '^needle/internal/(serve|pipeline|core)$')
echo "tests  ok"

# Every checked-in .nir program must parse and verify: the examples are
# the documented entry points for `needle -nir` and the ir testdata seeds
# the parser fuzzer, so a malformed file is a broken contract either way.
nir_bin=$(mktemp)
go build -o "$nir_bin" ./cmd/nir
find examples internal/ir/testdata -name '*.nir' | sort | while read -r f; do
    "$nir_bin" verify "$f" > /dev/null || {
        echo "check: FAIL — $f does not verify" >&2
        rm -f "$nir_bin"
        exit 1
    }
done
rm -f "$nir_bin"
echo "nir    ok (all checked-in .nir programs verify)"

# Opt-in fuzz smoke: CHECK_FUZZ=1 ./scripts/check.sh runs the parser/
# verifier/printer round-trip fuzzer briefly on top of its corpus.
if [ "${CHECK_FUZZ:-0}" = "1" ]; then
    go test -run '^$' -fuzz '^FuzzParseVerify$' -fuzztime 10s ./internal/ir
    echo "fuzz   ok (FuzzParseVerify, 10s smoke)"
fi

# Opt-in performance gate: CHECK_BENCH=1 ./scripts/check.sh also runs the
# sweep benchmarks and fails on a >15% BenchmarkSweep regression.
if [ "${CHECK_BENCH:-0}" = "1" ]; then
    ./scripts/bench.sh
    echo "bench  ok"
fi

# Opt-in persistent-cache differential: CHECK_CACHE=1 ./scripts/check.sh
# runs the full sweep twice against a temporary artifact store and fails
# unless the warm (second) run's JSON output is byte-identical to the cold
# run's — the persistent store must be invisible in the results.
if [ "${CHECK_CACHE:-0}" = "1" ]; then
    cachedir=$(mktemp -d)
    trap 'rm -rf "$cachedir"' EXIT
    go run ./cmd/needle -json -n 2000 -cache-dir "$cachedir/store" > "$cachedir/cold.json"
    go run ./cmd/needle -json -n 2000 -cache-dir "$cachedir/store" > "$cachedir/warm.json"
    if ! cmp -s "$cachedir/cold.json" "$cachedir/warm.json"; then
        echo "check: FAIL — warm-start sweep output differs from cold run" >&2
        exit 1
    fi
    echo "cache  ok (warm-start sweep byte-identical)"
fi

# Opt-in service smoke test: CHECK_SERVE=1 ./scripts/check.sh builds
# needled, starts it against a temporary cache dir, waits for /healthz,
# and fails unless POST /v1/analyze responds with exactly the bytes
# `needle -json -workload` prints for the same workload and config.
if [ "${CHECK_SERVE:-0}" = "1" ]; then
    servedir=$(mktemp -d)
    # This trap replaces the CHECK_CACHE one, so it must clean up both.
    trap 'rm -rf "$servedir" "${cachedir:-}"; [ -n "${needled_pid:-}" ] && kill "$needled_pid" 2>/dev/null' EXIT
    go build -o "$servedir/needled" ./cmd/needled
    addr="127.0.0.1:8957"
    "$servedir/needled" -addr "$addr" -cache-dir "$servedir/store" 2> "$servedir/needled.log" &
    needled_pid=$!
    for _ in $(seq 1 50); do
        if curl -fsS "http://$addr/healthz" > /dev/null 2>&1; then
            break
        fi
        sleep 0.2
    done
    curl -fsS "http://$addr/healthz" > /dev/null || {
        echo "check: FAIL — needled did not become healthy" >&2
        cat "$servedir/needled.log" >&2
        exit 1
    }
    curl -fsS -d '{"workload":"456.hmmer","n":2000}' "http://$addr/v1/analyze" > "$servedir/served.json"
    go run ./cmd/needle -json -workload 456.hmmer -n 2000 > "$servedir/cli.json"
    if ! cmp -s "$servedir/served.json" "$servedir/cli.json"; then
        echo "check: FAIL — /v1/analyze response differs from needle -json" >&2
        exit 1
    fi
    kill "$needled_pid"
    wait "$needled_pid" 2>/dev/null || true
    needled_pid=""
    echo "serve  ok (needled analyze byte-identical to CLI)"
fi
