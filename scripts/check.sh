#!/bin/sh
# check.sh — the repo's full verification gate. Run before every commit:
#
#   ./scripts/check.sh        (or: make check)
#
# Fails on unformatted files, vet diagnostics, build errors, or any test
# failure (the suite runs under the race detector to exercise the parallel
# analysis harness).
set -eu

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l -s . 2>&1)
if [ -n "$unformatted" ]; then
    echo "gofmt: unformatted (or unsimplified) files:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "gofmt  ok"

go vet ./...
echo "vet    ok"

go build ./...
echo "build  ok"

go test -race ./...
echo "tests  ok"

# Opt-in performance gate: CHECK_BENCH=1 ./scripts/check.sh also runs the
# sweep benchmarks and fails on a >15% BenchmarkSweep regression.
if [ "${CHECK_BENCH:-0}" = "1" ]; then
    ./scripts/bench.sh
    echo "bench  ok"
fi

# Opt-in persistent-cache differential: CHECK_CACHE=1 ./scripts/check.sh
# runs the full sweep twice against a temporary artifact store and fails
# unless the warm (second) run's JSON output is byte-identical to the cold
# run's — the persistent store must be invisible in the results.
if [ "${CHECK_CACHE:-0}" = "1" ]; then
    cachedir=$(mktemp -d)
    trap 'rm -rf "$cachedir"' EXIT
    go run ./cmd/needle -json -n 2000 -cache-dir "$cachedir/store" > "$cachedir/cold.json"
    go run ./cmd/needle -json -n 2000 -cache-dir "$cachedir/store" > "$cachedir/warm.json"
    if ! cmp -s "$cachedir/cold.json" "$cachedir/warm.json"; then
        echo "check: FAIL — warm-start sweep output differs from cold run" >&2
        exit 1
    fi
    echo "cache  ok (warm-start sweep byte-identical)"
fi
