#!/bin/sh
# check.sh — the repo's full verification gate. Run before every commit:
#
#   ./scripts/check.sh        (or: make check)
#
# Fails on unformatted files, vet diagnostics, build errors, or any test
# failure (the suite runs under the race detector to exercise the parallel
# analysis harness).
set -eu

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l -s . 2>&1)
if [ -n "$unformatted" ]; then
    echo "gofmt: unformatted (or unsimplified) files:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "gofmt  ok"

go vet ./...
echo "vet    ok"

go build ./...
echo "build  ok"

go test -race ./...
echo "tests  ok"

# Opt-in performance gate: CHECK_BENCH=1 ./scripts/check.sh also runs the
# sweep benchmarks and fails on a >15% BenchmarkSweep regression.
if [ "${CHECK_BENCH:-0}" = "1" ]; then
    ./scripts/bench.sh
    echo "bench  ok"
fi
