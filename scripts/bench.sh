#!/bin/sh
# bench.sh — the repo's performance gate. Runs the sweep benchmarks, writes
# the results to BENCH_<date>.json (the perf-trajectory artifact), and fails
# if BenchmarkSweep — the end-to-end 29-workload profiling+evaluation sweep —
# regresses more than 15% against the checked-in baseline in
# scripts/bench_baseline.json.
#
#   ./scripts/bench.sh            (or: make bench)
#   BENCH_TIME=10x ./scripts/bench.sh   # more iterations, less noise
#   BENCH_TRACE=trace.json ./scripts/bench.sh
#       also runs the needle CLI's -bench-json sweep with observability on
#       and writes a Chrome trace timeline of it (the benchmarks themselves
#       always run with observability off, so the gate measures the no-op
#       cost the paper pipeline pays by default)
#
# To accept a new baseline after an intentional change, update
# scripts/bench_baseline.json with the sweep_ns_per_op this script reports.
set -eu

cd "$(dirname "$0")/.."

benches='^(BenchmarkSweep|BenchmarkInterpreter|BenchmarkPathProfiling|BenchmarkPathDecode|BenchmarkOOOModel)$'
benchtime="${BENCH_TIME:-5x}"

echo "running sweep benchmarks (benchtime $benchtime)..."
out=$(go test -run '^$' -bench "$benches" -benchtime "$benchtime" .)
echo "$out"

# Benchmark lines look like:  BenchmarkSweep[-N]  5  132523001 ns/op [...]
ns_of() {
    echo "$out" | awk -v name="$1" '$1 ~ "^"name"(-[0-9]+)?$" { print $3; exit }'
}

sweep=$(ns_of BenchmarkSweep)
if [ -z "$sweep" ]; then
    echo "bench: BenchmarkSweep produced no result" >&2
    exit 1
fi

date=$(date +%Y-%m-%d)
file="BENCH_${date}.json"
{
    echo "{"
    echo "  \"date\": \"${date}\","
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"benchtime\": \"${benchtime}\","
    echo "  \"sweep_ns_per_op\": ${sweep},"
    echo "  \"benchmarks\": {"
    first=1
    for b in BenchmarkSweep BenchmarkInterpreter BenchmarkPathProfiling BenchmarkPathDecode BenchmarkOOOModel; do
        ns=$(ns_of "$b")
        [ -z "$ns" ] && continue
        [ "$first" = 1 ] || echo ","
        first=0
        printf '    "%s": %s' "$b" "$ns"
    done
    echo ""
    echo "  }"
    echo "}"
} > "$file"
echo "wrote $file"

# Optional observability artifact: a Chrome trace of the CLI's bench sweep.
if [ -n "${BENCH_TRACE:-}" ]; then
    echo "tracing bench sweep to ${BENCH_TRACE}..."
    go run ./cmd/needle -bench-json -trace "$BENCH_TRACE" > /dev/null
fi

baseline=scripts/bench_baseline.json
if [ ! -f "$baseline" ]; then
    echo "bench: no baseline ($baseline); skipping regression gate"
    exit 0
fi
base=$(sed -n 's/.*"sweep_ns_per_op": *\([0-9][0-9]*\).*/\1/p' "$baseline" | head -n 1)
if [ -z "$base" ]; then
    echo "bench: baseline $baseline has no sweep_ns_per_op" >&2
    exit 1
fi

echo "BenchmarkSweep: ${sweep} ns/op (baseline ${base} ns/op)"
awk -v cur="$sweep" -v base="$base" 'BEGIN {
    limit = base * 1.15
    if (cur > limit) {
        printf "bench: FAIL — sweep regressed %.1f%% (>15%% over baseline)\n", (cur/base - 1) * 100
        exit 1
    }
    if (cur < base) printf "bench: ok — %.1f%% faster than baseline\n", (1 - cur/base) * 100
    else            printf "bench: ok — within noise (%.1f%% over baseline)\n", (cur/base - 1) * 100
}'
