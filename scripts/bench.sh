#!/bin/sh
# bench.sh — the repo's performance gate. Runs the sweep benchmarks, writes
# the results to BENCH_<date>.json (the perf-trajectory artifact), and fails
# if either gate regresses against the checked-in baseline in
# scripts/bench_baseline.json:
#
#   - BenchmarkSweep — the end-to-end 29-workload profiling+evaluation
#     sweep — more than 15% slower than sweep_ns_per_op;
#   - BenchmarkCapture — the system-simulator capture alone (compiled
#     interpreter fast path + block-batched timing packets) — more than 15%
#     slower than capture_ns_per_op;
#   - BenchmarkAblationPredictor/cached — the downstream-knob ablation sweep
#     through the shared artifact cache — more than 15% slower than
#     ablation_cached_ns_per_op, or less than 1.5x faster than its own
#     /fresh variant (the staged pipeline's artifact-reuse win);
#   - BenchmarkSweepWarmStart/warm — the full sweep warm-started from a
#     persistent artifact store (fresh memory tier, as a new process would
#     see it) — more than 15% slower than warmstart_warm_ns_per_op, or less
#     than 1.5x faster than its own /cold variant (the disk tier's win);
#   - BenchmarkVet — the static-analysis diagnostic suite over the whole
#     workload set — more than 15% slower than vet_ns_per_op; additionally
#     BenchmarkSweep gets a tight 2% gate against sweep_ns_per_op, pinning
#     that the lazily-computed vet analyses cost a default sweep nothing.
#
#   ./scripts/bench.sh            (or: make bench)
#   BENCH_TIME=10x ./scripts/bench.sh   # more iterations, less noise
#   BENCH_TRACE=trace.json ./scripts/bench.sh
#       also runs the needle CLI's -bench-json sweep with observability on
#       and writes a Chrome trace timeline of it (the benchmarks themselves
#       always run with observability off, so the gate measures the no-op
#       cost the paper pipeline pays by default)
#
# To accept a new baseline after an intentional change, update
# scripts/bench_baseline.json with the sweep_ns_per_op, capture_ns_per_op,
# ablation_cached_ns_per_op, warmstart_warm_ns_per_op, and vet_ns_per_op
# this script reports.
set -eu

cd "$(dirname "$0")/.."

benches='^(BenchmarkSweep|BenchmarkSweepWarmStart|BenchmarkCapture|BenchmarkInterpreter|BenchmarkPathProfiling|BenchmarkPathDecode|BenchmarkOOOModel|BenchmarkAblationPredictor|BenchmarkVet)$'
benchtime="${BENCH_TIME:-5x}"

echo "running sweep benchmarks (benchtime $benchtime)..."
out=$(go test -run '^$' -bench "$benches" -benchtime "$benchtime" .)
echo "$out"

# Benchmark lines look like:  BenchmarkSweep[-N]  5  132523001 ns/op [...]
# Sub-benchmark names pass through verbatim (e.g. BenchmarkAblationPredictor/cached).
ns_of() {
    echo "$out" | awk -v name="$1" '$1 ~ "^"name"(-[0-9]+)?$" { print $3; exit }'
}

sweep=$(ns_of BenchmarkSweep)
if [ -z "$sweep" ]; then
    echo "bench: BenchmarkSweep produced no result" >&2
    exit 1
fi
cap=$(ns_of BenchmarkCapture)
if [ -z "$cap" ]; then
    echo "bench: BenchmarkCapture produced no result" >&2
    exit 1
fi
abl_fresh=$(ns_of 'BenchmarkAblationPredictor/fresh')
abl_cached=$(ns_of 'BenchmarkAblationPredictor/cached')
if [ -z "$abl_fresh" ] || [ -z "$abl_cached" ]; then
    echo "bench: BenchmarkAblationPredictor produced no result" >&2
    exit 1
fi
ws_cold=$(ns_of 'BenchmarkSweepWarmStart/cold')
ws_warm=$(ns_of 'BenchmarkSweepWarmStart/warm')
if [ -z "$ws_cold" ] || [ -z "$ws_warm" ]; then
    echo "bench: BenchmarkSweepWarmStart produced no result" >&2
    exit 1
fi
vet=$(ns_of BenchmarkVet)
if [ -z "$vet" ]; then
    echo "bench: BenchmarkVet produced no result" >&2
    exit 1
fi

date=$(date +%Y-%m-%d)
file="BENCH_${date}.json"
{
    echo "{"
    echo "  \"date\": \"${date}\","
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"benchtime\": \"${benchtime}\","
    echo "  \"sweep_ns_per_op\": ${sweep},"
    echo "  \"capture_ns_per_op\": ${cap},"
    echo "  \"ablation_fresh_ns_per_op\": ${abl_fresh},"
    echo "  \"ablation_cached_ns_per_op\": ${abl_cached},"
    echo "  \"warmstart_cold_ns_per_op\": ${ws_cold},"
    echo "  \"warmstart_warm_ns_per_op\": ${ws_warm},"
    echo "  \"vet_ns_per_op\": ${vet},"
    echo "  \"benchmarks\": {"
    first=1
    for b in BenchmarkSweep BenchmarkCapture BenchmarkInterpreter BenchmarkPathProfiling BenchmarkPathDecode BenchmarkOOOModel \
             BenchmarkAblationPredictor/fresh BenchmarkAblationPredictor/cached \
             BenchmarkSweepWarmStart/cold BenchmarkSweepWarmStart/warm BenchmarkVet; do
        ns=$(ns_of "$b")
        [ -z "$ns" ] && continue
        [ "$first" = 1 ] || echo ","
        first=0
        printf '    "%s": %s' "$b" "$ns"
    done
    echo ""
    echo "  }"
    echo "}"
} > "$file"
echo "wrote $file"

# Optional observability artifact: a Chrome trace of the CLI's bench sweep.
if [ -n "${BENCH_TRACE:-}" ]; then
    echo "tracing bench sweep to ${BENCH_TRACE}..."
    go run ./cmd/needle -bench-json -trace "$BENCH_TRACE" > /dev/null
fi

# Reuse gate: the cached ablation sweep must beat the fresh one by >= 1.5x,
# independent of any baseline — this pins the artifact-cache win itself.
echo "AblationPredictor: fresh ${abl_fresh} ns/op, cached ${abl_cached} ns/op"
awk -v fresh="$abl_fresh" -v cached="$abl_cached" 'BEGIN {
    ratio = fresh / cached
    if (ratio < 1.5) {
        printf "bench: FAIL — cached ablation sweep only %.2fx faster than fresh (need >= 1.5x)\n", ratio
        exit 1
    }
    printf "bench: ok — artifact reuse %.1fx faster than fresh\n", ratio
}'

# Warm-start gate: a sweep warm-started from the persistent store must beat
# the cold (compute + persist) sweep by >= 1.5x — the disk tier's win.
echo "SweepWarmStart: cold ${ws_cold} ns/op, warm ${ws_warm} ns/op"
awk -v cold="$ws_cold" -v warm="$ws_warm" 'BEGIN {
    ratio = cold / warm
    if (ratio < 1.5) {
        printf "bench: FAIL — warm-start sweep only %.2fx faster than cold (need >= 1.5x)\n", ratio
        exit 1
    }
    printf "bench: ok — persistent-store warm start %.1fx faster than cold\n", ratio
}'

baseline=scripts/bench_baseline.json
if [ ! -f "$baseline" ]; then
    echo "bench: no baseline ($baseline); skipping regression gate"
    exit 0
fi

# gate NAME CURRENT BASELINE-KEY [PCT]: fail if CURRENT is more than PCT%
# (default 15) over the baseline.
gate() {
    name=$1; cur=$2; key=$3; pct=${4:-15}
    base=$(sed -n 's/.*"'"$key"'": *\([0-9][0-9]*\).*/\1/p' "$baseline" | head -n 1)
    if [ -z "$base" ]; then
        echo "bench: baseline $baseline has no $key" >&2
        exit 1
    fi
    echo "$name: ${cur} ns/op (baseline ${base} ns/op, gate ${pct}%)"
    awk -v cur="$cur" -v base="$base" -v name="$name" -v pct="$pct" 'BEGIN {
        limit = base * (1 + pct / 100)
        if (cur > limit) {
            printf "bench: FAIL — %s regressed %.1f%% (>%d%% over baseline)\n", name, (cur/base - 1) * 100, pct
            exit 1
        }
        if (cur < base) printf "bench: ok — %s %.1f%% faster than baseline\n", name, (1 - cur/base) * 100
        else            printf "bench: ok — %s within noise (%.1f%% over baseline)\n", name, (cur/base - 1) * 100
    }'
}

gate sweep "$sweep" sweep_ns_per_op
gate capture "$cap" capture_ns_per_op
gate ablation-cached "$abl_cached" ablation_cached_ns_per_op
gate warmstart-warm "$ws_warm" warmstart_warm_ns_per_op
gate vet "$vet" vet_ns_per_op

# Vet-overhead gate: the semantic analyses are registered pm.Kinds that a
# default (-O off) sweep never requests, so their existence must be close to
# free — the sweep gets a 2% gate against the same baseline, far tighter
# than the generic 15% regression gate above.
gate sweep-vet-overhead "$sweep" sweep_ns_per_op 2
